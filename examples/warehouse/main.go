// Warehouse: multi-table analytics with the paper's §7 JOIN workaround
// (materialized views) plus holistic repair. A patients table joins a
// wards table through a pre-computed view; constraints synthesized on the
// joined view guard an ML-integrated aggregate, and rows that plain
// rectify cannot fix (two corrupted cells) fall through to the holistic
// minimal-edit repairer.
package main

import (
	"fmt"
	"log"

	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/core"
	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/repair"
	"github.com/guardrail-db/guardrail/internal/sqlexec"
)

func main() {
	// Two base tables: admissions (fact) and wards (dimension).
	admissions, err := bn.Asia().Sample(6000, 1)
	if err != nil {
		log.Fatal(err)
	}
	admissions.SetName("admissions")
	wardOf := map[string]string{"asia_v0": "isolation", "asia_v1": "general"}
	withWard := dataset.New("admissions", append(admissions.Attrs(), "ward"))
	for i := 0; i < admissions.NumRows(); i++ {
		row := append(admissions.RowStrings(i), wardOf[admissions.Value(i, 0)])
		if err := withWard.AppendRow(row); err != nil {
			log.Fatal(err)
		}
	}
	wards := dataset.New("wards", []string{"wname", "building"})
	for _, w := range [][]string{{"isolation", "east"}, {"general", "west"}} {
		if err := wards.AppendRow(w); err != nil {
			log.Fatal(err)
		}
	}

	catalog := sqlexec.NewCatalog()
	catalog.Register("admissions", withWard)
	catalog.Register("wards", wards)

	// The paper's JOIN workaround: pre-compute a materialized view.
	joined, err := catalog.MaterializeJoin("adm_wards", "admissions", "wards", "ward", "wname")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized join: %d rows x %d attrs\n", joined.NumRows(), joined.NumAttrs())

	// Synthesize constraints on the joined view (recovers tub,lung -> either
	// and the ward/building dependency).
	res, err := core.Synthesize(joined, core.Options{Epsilon: 0.02, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %d constraints (coverage %.2f)\n\n", len(res.Program.Stmts), res.Coverage)

	// A doubly-corrupted row arrives: either AND xray mangled.
	row := joined.Row(0, nil)
	eitherIdx := joined.AttrIndex("either")
	row[eitherIdx] = 1 - row[eitherIdx]
	bldIdx := joined.AttrIndex("building")
	row[bldIdx] = joined.Intern(bldIdx, "atlantis")

	violations := res.Program.Detect(row)
	fmt.Printf("incoming row has %d violation(s)\n", len(violations))

	fixer := repair.New(res.Program, repair.Options{MaxEdits: 2})
	edits, ok := fixer.Repair(row)
	if !ok {
		fmt.Println("row is unrepairable within 2 edits")
		return
	}
	fmt.Printf("holistic repair applied %d edit(s):\n", len(edits))
	for _, e := range edits {
		fmt.Println("  ", repair.Explain(e, joined))
	}
	fmt.Printf("violations after repair: %d\n\n", len(res.Program.Detect(row)))

	// Aggregate over the guarded view.
	q := `SELECT building, COUNT(*) AS admissions FROM adm_wards GROUP BY building ORDER BY building`
	out, err := catalog.Exec(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range out.Rows {
		fmt.Printf("%-8s %v\n", r[0], r[1])
	}
}
