// Quickstart: synthesize integrity constraints from a small noisy CSV,
// detect a corrupted row, and rectify it — the paper's §2 example.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/guardrail-db/guardrail/internal/core"
	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
)

const zipData = `PostalCode,City,State
94704,Berkeley,CA
94705,Berkeley,CA
94601,Oakland,CA
94602,Oakland,CA
10001,NewYork,NY
10002,NewYork,NY
14201,Buffalo,NY
14202,Buffalo,NY
60601,Chicago,IL
60602,Chicago,IL
62701,Springfield,IL
62702,Springfield,IL
`

func main() {
	// Load training data. A real deployment would read a large table; the
	// synthesizer only needs enough rows to see the structure repeat.
	var rows strings.Builder
	for i := 0; i < 40; i++ {
		rows.WriteString(strings.SplitAfterN(zipData, "\n", 2)[1])
	}
	rel, err := dataset.FromCSV(strings.NewReader("PostalCode,City,State\n"+rows.String()), "zip")
	if err != nil {
		log.Fatal(err)
	}

	// Offline: synthesize the constraint program.
	res, err := core.Synthesize(rel, core.Options{Epsilon: 0.02, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Synthesized constraints:")
	fmt.Println(dsl.Format(res.Program, rel))

	// Online: a corrupted row arrives — City mangled to "gibbon".
	bad := []string{"94704", "gibbon", "CA"}
	row := make([]int32, rel.NumAttrs())
	for i, v := range bad {
		row[i] = rel.Intern(i, v)
	}
	guard := core.NewGuard(res.Program, core.Rectify)
	violations, err := guard.CheckRow(row)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Row %v: %d violation(s) detected\n", bad, len(violations))
	fixed := make([]string, len(row))
	for i, c := range row {
		fixed[i] = rel.Dict(i).Value(c)
	}
	fmt.Printf("After rectify: %v\n", fixed)
}
