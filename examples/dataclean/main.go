// Dataclean: batch-clean a corrupted business dataset with each of the
// four error-handling strategies (§7): raise aborts on the first bad row,
// ignore only reports, coerce nulls out bad cells, rectify repairs them.
package main

import (
	"errors"
	"fmt"
	"log"

	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/core"
	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/errgen"
)

func main() {
	spec, err := bn.SpecByID(2) // Lung Cancer analog
	if err != nil {
		log.Fatal(err)
	}
	rel, err := spec.Generate(0.25, 1)
	if err != nil {
		log.Fatal(err)
	}
	train, test := rel.Split(0.6, 1)

	res, err := core.Synthesize(train, core.Options{Epsilon: 0.01, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Synthesized %d constraints from %d clean rows (%s)\n\n",
		len(res.Program.Stmts), train.NumRows(), spec.Name)

	// Corrupt the attributes the constraints govern — the "typo in a
	// derived field" scenario of the paper's case study. (Errors in
	// determinant attributes are detectable but not always repairable;
	// see the paper's Appendix F discussion.)
	var governed []int
	for _, st := range res.Program.Stmts {
		governed = append(governed, st.On)
	}
	dirty := test.Clone()
	mask, err := errgen.Inject(dirty, errgen.Options{Rate: 0.05, Columns: governed, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Injected %d errors into %d incoming rows\n\n", mask.NumErrors(), dirty.NumRows())

	for _, strategy := range []core.Strategy{core.Raise, core.Ignore, core.Coerce, core.Rectify} {
		work := dirty.Clone()
		rep, err := core.NewGuard(res.Program, strategy).Apply(work)
		switch {
		case errors.Is(err, core.ErrViolation):
			fmt.Printf("%-8s -> aborted on first violation: %v\n", strategy, err)
		case err != nil:
			log.Fatal(err)
		default:
			fmt.Printf("%-8s -> %d/%d rows flagged, %d cells changed, %d cells now NaN, %d cells repaired\n",
				strategy, rep.RowsFlagged, rep.RowsChecked, rep.CellsChanged,
				countMissing(work)-countMissing(dirty), countMatching(work, test)-countMatching(dirty, test))
		}
	}
}

func countMissing(rel *dataset.Relation) int {
	n := 0
	for c := 0; c < rel.NumAttrs(); c++ {
		for _, v := range rel.Column(c) {
			if v == dataset.Missing {
				n++
			}
		}
	}
	return n
}

// countMatching counts cells equal to the clean reference.
func countMatching(rel, ref *dataset.Relation) int {
	n := 0
	for i := 0; i < rel.NumRows(); i++ {
		for c := 0; c < rel.NumAttrs(); c++ {
			if rel.Value(i, c) == ref.Value(i, c) {
				n++
			}
		}
	}
	return n
}
