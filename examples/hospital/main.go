// Hospital: the paper's Fig. 1 scenario end-to-end. Bob the administrator
// wants the dyspnea rate per hospital floor from an ML-integrated SQL
// query. Noisy rows corrupt the model's inputs; Guardrail synthesizes
// constraints offline and vets every row at query time, rectifying errors
// before they reach the model.
package main

import (
	"fmt"
	"log"

	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/core"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/errgen"
	"github.com/guardrail-db/guardrail/internal/ml"
	"github.com/guardrail-db/guardrail/internal/sqlexec"
)

func main() {
	// The hospital database (synthetic analog of Fig. 1's tables).
	table, err := bn.Hospital().Sample(8000, 1)
	if err != nil {
		log.Fatal(err)
	}
	table.SetName("hospital")
	history, live := table.Split(0.5, 1)

	// A third-party ML model predicting dyspnea, trained on history.
	model, err := ml.Train(history, history.AttrIndex("dysp"))
	if err != nil {
		log.Fatal(err)
	}

	// Offline: Bob synthesizes integrity constraints ahead of time.
	res, err := core.Synthesize(history, core.Options{Epsilon: 0.05, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Constraints synthesized from the hospital database:")
	fmt.Println(dsl.Format(res.Program, history))

	// The live table picks up data-entry errors in the disease-code column
	// ("incorrect disease codes", Example 1.1).
	dirty := live.Clone()
	if _, err := errgen.Inject(dirty, errgen.Options{
		Rate:    0.15,
		Columns: []int{dirty.AttrIndex("either")},
		Seed:    2,
	}); err != nil {
		log.Fatal(err)
	}

	// Bob's ML-integrated SQL query (Fig. 1).
	query := `SELECT floor, AVG(CASE WHEN PREDICT(dysp) = 'dysp_v0' THEN 1 ELSE 0 END) AS dysp_rate
	          FROM hospital GROUP BY floor`
	models := map[string]ml.Model{"dysp": model}

	truth, err := sqlexec.Exec(query, live, &sqlexec.Env{Models: models})
	if err != nil {
		log.Fatal(err)
	}
	noisy, err := sqlexec.Exec(query, dirty, &sqlexec.Env{Models: models})
	if err != nil {
		log.Fatal(err)
	}
	guarded, err := sqlexec.Exec(query, dirty, &sqlexec.Env{
		Models: models,
		Guard:  core.NewGuard(res.Program, core.Rectify),
	})
	if err != nil {
		log.Fatal(err)
	}

	byFloor := func(r *sqlexec.Result) map[string]float64 {
		out := map[string]float64{}
		for _, row := range r.Rows {
			out[row[0].String()] = row[1].Num
		}
		return out
	}
	nm, gm := byFloor(noisy), byFloor(guarded)
	fmt.Printf("%-10s  %-12s  %-12s  %-12s\n", "floor", "clean data", "dirty data", "guardrail")
	for _, row := range truth.Rows {
		floor := row[0].String()
		fmt.Printf("%-10s  %-12.4f  %-12.4f  %-12.4f\n", floor, row[1].Num, nm[floor], gm[floor])
	}
	fmt.Printf("\nguard time %.3fms, inference time %.3fms\n",
		guarded.Stats.GuardTime.Seconds()*1000, guarded.Stats.InferenceTime.Seconds()*1000)
}
