// Postal: Example 3.1 from the paper. The ground-truth DGP is the chain
// PostalCode -> City -> State -> Country. An empty program is trivially
// ε-valid, and a saturated program stuffed with redundant statements
// (PostalCode -> State, ...) is ε-valid too — the MEC-based synthesis must
// recover exactly the succinct (GNT) chain.
package main

import (
	"fmt"
	"log"

	"github.com/guardrail-db/guardrail/internal/auxdist"
	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/core"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/sketch"
)

func main() {
	rel, err := bn.PostalChain(12).Sample(6000, 1)
	if err != nil {
		log.Fatal(err)
	}

	res, err := core.Synthesize(rel, core.Options{Epsilon: 0.01, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Synthesized %d statements (MEC had %d DAGs, coverage %.3f):\n\n",
		len(res.Program.Stmts), res.NumDAGs, res.Coverage)
	for _, s := range res.Program.Stmts {
		given := ""
		for i, g := range s.Given {
			if i > 0 {
				given += ", "
			}
			given += rel.Attr(g)
		}
		fmt.Printf("  GIVEN %-22s ON %-10s (%d branches)\n", given, rel.Attr(s.On), len(s.Branches))
	}

	// Global non-triviality rules out the saturated sketch of Example 4.1:
	// PostalCode -> State is individually informative (LNT) but redundant
	// once City -> State is present.
	data := auxdist.Identity(rel)
	redundant := sketch.Stmt{Given: []int{0}, On: 2} // PostalCode -> State
	lnt, err := sketch.LNT(redundant, data, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	saturated := sketch.Prog{Stmts: []sketch.Stmt{
		{Given: []int{0}, On: 1}, // PostalCode -> City
		{Given: []int{1}, On: 2}, // City -> State
		redundant,                // PostalCode -> State (transitive)
	}}
	gnt, err := sketch.GNT(saturated, data, 0.01, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPostalCode -> State alone: locally non-trivial = %v\n", lnt)
	fmt.Printf("Saturated program with the transitive statement: globally non-trivial = %v\n", gnt)

	// The synthesized program detects a corrupted row.
	row := rel.Row(0, nil)
	row[1] = rel.Intern(1, "gibbon")
	violations := res.Program.Detect(row)
	res.Program.Rectify(row)
	fmt.Printf("\nCorrupted row triggers %d violation(s); rectified City = %q\n",
		len(violations), rel.Dict(1).Value(row[1]))

	fmt.Println("\nFull program text:")
	fmt.Println(dsl.Format(res.Program, rel))
}
