// Package errgen injects synthetic cell-level errors into relations,
// following the evaluation protocol of the Guardrail paper (§8): errors are
// introduced at a fixed rate (default 1% of rows, slightly higher — capped —
// for small datasets), each error corrupting one randomly chosen cell with
// either a different in-domain value or a fresh random string.
package errgen

import (
	"fmt"
	"math/rand"

	"github.com/guardrail-db/guardrail/internal/dataset"
)

// Options controls error injection.
type Options struct {
	// Rate is the fraction of rows to corrupt (default 0.01).
	Rate float64
	// MinErrors raises the error count on small datasets (default 30,
	// mirroring the paper's "capped at 30 errors" protocol).
	MinErrors int
	// RandomStringProb is the probability a corrupted cell receives a fresh
	// out-of-domain random string (like "gibbon" in the paper's example)
	// instead of a different in-domain value (default 0.3).
	RandomStringProb float64
	// Columns restricts corruption to these attribute indices; nil means all.
	Columns []int
	// Seed drives the generator; runs are deterministic per seed.
	Seed int64
}

func (o *Options) defaults() {
	if o.Rate == 0 {
		o.Rate = 0.01
	}
	if o.MinErrors == 0 {
		o.MinErrors = 30
	}
	if o.RandomStringProb == 0 {
		o.RandomStringProb = 0.3
	}
}

// Mask records which cells were corrupted. RowDirty[i] is true if any cell
// of row i was corrupted; Cells holds (row, col) pairs.
type Mask struct {
	RowDirty []bool
	Cells    []Cell
}

// Cell identifies one corrupted cell and remembers the clean code.
type Cell struct {
	Row, Col int
	Clean    int32
	Dirty    int32
}

// NumErrors reports the number of corrupted rows.
func (m *Mask) NumErrors() int {
	n := 0
	for _, d := range m.RowDirty {
		if d {
			n++
		}
	}
	return n
}

// Inject corrupts rel in place and returns the gold mask. The number of
// corrupted rows is max(Rate*NumRows, min(MinErrors, NumRows/2)): the floor
// keeps the signal measurable on small relations, matching the paper's
// protocol of using a slightly higher rate capped at a small absolute count.
func Inject(rel *dataset.Relation, opts Options) (*Mask, error) {
	opts.defaults()
	n := rel.NumRows()
	if n == 0 {
		return &Mask{RowDirty: nil}, nil
	}
	cols := opts.Columns
	if cols == nil {
		for c := 0; c < rel.NumAttrs(); c++ {
			cols = append(cols, c)
		}
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("errgen: no columns to corrupt")
	}
	target := int(float64(n) * opts.Rate)
	floor := opts.MinErrors
	if floor > n/2 {
		floor = n / 2
	}
	if target < floor {
		target = floor
	}
	if target > n {
		target = n
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	perm := rng.Perm(n)
	mask := &Mask{RowDirty: make([]bool, n)}
	for _, row := range perm[:target] {
		col := cols[rng.Intn(len(cols))]
		clean := rel.Code(row, col)
		dirty := corrupt(rel, col, clean, rng, opts.RandomStringProb)
		for dirty == clean {
			// corrupt can reproduce the clean code (e.g. the cell already
			// holds a random string from an earlier injection pass). Retry
			// with a fresh random string rather than dropping the
			// corruption — the §8 protocol promises exactly target errors,
			// and a fresh draw eventually interns a new code.
			dirty = rel.Intern(col, randomString(rng))
		}
		rel.SetCode(row, col, dirty)
		mask.RowDirty[row] = true
		mask.Cells = append(mask.Cells, Cell{Row: row, Col: col, Clean: clean, Dirty: dirty})
	}
	return mask, nil
}

// corrupt picks a replacement code for (col, clean): either a fresh random
// string interned into the column's dictionary, or a different existing code.
func corrupt(rel *dataset.Relation, col int, clean int32, rng *rand.Rand, pStr float64) int32 {
	card := rel.Cardinality(col)
	if rng.Float64() < pStr || card < 2 {
		return rel.Intern(col, randomString(rng))
	}
	for tries := 0; tries < 16; tries++ {
		c := int32(rng.Intn(card))
		if c != clean {
			return c
		}
	}
	return rel.Intern(col, randomString(rng))
}

func randomString(rng *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, 6)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return "err_" + string(b)
}
