package errgen

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/guardrail-db/guardrail/internal/dataset"
)

func makeRel(n int) *dataset.Relation {
	r := dataset.New("t", []string{"a", "b", "c"})
	for i := 0; i < n; i++ {
		r.AppendRow([]string{
			fmt.Sprintf("a%d", i%5),
			fmt.Sprintf("b%d", i%3),
			fmt.Sprintf("c%d", i%7),
		})
	}
	return r
}

func TestInjectCountsAndMask(t *testing.T) {
	r := makeRel(1000)
	clean := r.Clone()
	mask, err := Inject(r, Options{Rate: 0.05, MinErrors: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// The target is exact: Inject retries a corruption that reproduced the
	// clean code instead of silently dropping it.
	want := 50
	if got := mask.NumErrors(); got != want {
		t.Fatalf("NumErrors = %d, want exactly %d", got, want)
	}
	if got := len(mask.Cells); got != want {
		t.Fatalf("mask has %d cells, want exactly %d", got, want)
	}
	// Every masked cell must differ from the clean relation; every unmasked
	// row must be identical.
	dirtyRows := map[int]bool{}
	for _, c := range mask.Cells {
		if r.Code(c.Row, c.Col) == clean.Code(c.Row, c.Col) {
			t.Fatalf("cell (%d,%d) flagged dirty but unchanged", c.Row, c.Col)
		}
		if c.Clean != clean.Code(c.Row, c.Col) {
			t.Fatalf("cell (%d,%d) clean code mismatch", c.Row, c.Col)
		}
		dirtyRows[c.Row] = true
	}
	for i := 0; i < r.NumRows(); i++ {
		if dirtyRows[i] {
			continue
		}
		for j := 0; j < r.NumAttrs(); j++ {
			if r.Code(i, j) != clean.Code(i, j) {
				t.Fatalf("unflagged row %d changed at col %d", i, j)
			}
		}
	}
}

// TestInjectRetriesCleanCollision is the regression test for the dropped
// corruption bug: injecting twice with the same seed makes the second
// pass draw the same random string the cell already holds (dirty ==
// clean), which the old code skipped, delivering 0 of the 1 promised
// error.
func TestInjectRetriesCleanCollision(t *testing.T) {
	r := dataset.New("t", []string{"a"})
	for i := 0; i < 2; i++ {
		if err := r.AppendRow([]string{"x"}); err != nil {
			t.Fatal(err)
		}
	}
	opts := Options{Rate: 0.5, MinErrors: 1, RandomStringProb: 1, Seed: 11}
	m1, err := Inject(r, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m1.NumErrors() != 1 {
		t.Fatalf("first pass: NumErrors = %d, want 1", m1.NumErrors())
	}
	// Same seed → same row, same random string → the cell already holds it.
	m2, err := Inject(r, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumErrors() != 1 {
		t.Fatalf("second pass: NumErrors = %d, want 1 (collision must retry, not drop)", m2.NumErrors())
	}
	c := m2.Cells[0]
	if c.Clean == c.Dirty {
		t.Fatalf("mask records a no-op corruption: %+v", c)
	}
}

func TestInjectSmallDatasetFloor(t *testing.T) {
	r := makeRel(100)
	mask, err := Inject(r, Options{Rate: 0.01, MinErrors: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 1% of 100 is 1, but the floor is min(30, n/2) = 30.
	if got := mask.NumErrors(); got < 25 {
		t.Fatalf("NumErrors = %d, want >= 25 (floored)", got)
	}
}

func TestInjectDeterministic(t *testing.T) {
	a, b := makeRel(200), makeRel(200)
	ma, _ := Inject(a, Options{Seed: 42})
	mb, _ := Inject(b, Options{Seed: 42})
	if len(ma.Cells) != len(mb.Cells) {
		t.Fatalf("different cell counts: %d vs %d", len(ma.Cells), len(mb.Cells))
	}
	for i := range ma.Cells {
		if ma.Cells[i] != mb.Cells[i] {
			t.Fatalf("cell %d differs: %v vs %v", i, ma.Cells[i], mb.Cells[i])
		}
	}
}

func TestInjectColumnRestriction(t *testing.T) {
	r := makeRel(500)
	mask, err := Inject(r, Options{Columns: []int{2}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range mask.Cells {
		if c.Col != 2 {
			t.Fatalf("corrupted column %d, restricted to 2", c.Col)
		}
	}
	if len(mask.Cells) == 0 {
		t.Fatal("no cells corrupted")
	}
}

func TestInjectEmptyRelation(t *testing.T) {
	r := dataset.New("t", []string{"a"})
	mask, err := Inject(r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mask.NumErrors() != 0 {
		t.Fatal("errors injected into empty relation")
	}
}

// Property: injection never corrupts more rows than the relation has, and
// the mask is internally consistent for any rate and seed.
func TestInjectProperty(t *testing.T) {
	f := func(seed int64, rateRaw uint8) bool {
		r := makeRel(120)
		mask, err := Inject(r, Options{Rate: float64(rateRaw) / 255, Seed: seed})
		if err != nil {
			return false
		}
		if mask.NumErrors() > r.NumRows() {
			return false
		}
		for _, c := range mask.Cells {
			if !mask.RowDirty[c.Row] || c.Clean == c.Dirty {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
