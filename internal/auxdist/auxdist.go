// Package auxdist implements the auxiliary distribution of Def. 4.5: for a
// pair of rows t1, t2 ~ P_D, the binary vector I with I_k = 1 iff
// t1(a_k) == t2(a_k). Proposition 5 of the paper shows P_I preserves the
// conditional-independence structure of P_D, so the PGM can be learned from
// I-samples instead — far denser and friendlier to CI testing on
// high-cardinality attributes.
//
// Sampling uses the circular-shift trick of FDX [43]: pairing every row i
// with row (i+s) mod n for a handful of random shifts s produces n samples
// per shift in O(n) without materializing the quadratic pair space.
package auxdist

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/obs"
	"github.com/guardrail-db/guardrail/internal/obs/trace"
	"github.com/guardrail-db/guardrail/internal/par"
)

// Binary is a dense binary dataset implementing stats.Data.
type Binary struct {
	names []string
	cols  [][]int32
	n     int
}

// NumVars reports the number of variables.
func (b *Binary) NumVars() int { return len(b.cols) }

// N reports the number of samples.
func (b *Binary) N() int { return b.n }

// Card is always 2.
func (b *Binary) Card(i int) int { return 2 }

// Codes returns column i.
func (b *Binary) Codes(i int) []int32 { return b.cols[i] }

// Name returns the originating attribute name of variable i.
func (b *Binary) Name(i int) string { return b.names[i] }

// Options controls sampling.
type Options struct {
	// Shifts is the number of circular shifts (default 8); the sample size
	// is Shifts * NumRows.
	Shifts int
	// MaxSamples caps the total sample count (default 200000).
	MaxSamples int
	// Seed drives shift selection.
	Seed int64
	// Workers bounds the concurrency of per-shift sample filling; <= 0
	// uses every core, 1 forces the serial path. The shifts and their
	// start offsets are drawn serially before the fan-out and every shift
	// writes a disjoint pre-sized slice segment, so the output is
	// byte-identical at any worker count.
	Workers int
	// Obs receives aux.shifts / aux.samples counters and the aux.sample
	// stage timing; nil disables instrumentation at zero cost.
	Obs *obs.Registry
	// Trace parents the sampler's span tree (aux.sample → aux.shift); the
	// zero scope disables tracing at zero cost.
	Trace trace.Scope
}

func (o *Options) defaults() {
	if o.Shifts == 0 {
		o.Shifts = 8
	}
	if o.MaxSamples == 0 {
		o.MaxSamples = 200000
	}
}

// Sample draws from the auxiliary distribution of rel.
func Sample(rel *dataset.Relation, opts Options) (*Binary, error) {
	opts.defaults()
	span := opts.Obs.Histogram("aux.sample").Start()
	defer span.Stop()
	tsp := opts.Trace.Start("aux.sample")
	defer tsp.End()
	n := rel.NumRows()
	if n < 2 {
		return nil, fmt.Errorf("auxdist: need at least 2 rows, have %d", n)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	shifts := pickShifts(n, opts.Shifts, rng)

	perShift := n
	total := perShift * len(shifts)
	if total > opts.MaxSamples {
		perShift = opts.MaxSamples / len(shifts)
		if perShift < 1 {
			perShift = 1
		}
		total = perShift * len(shifts)
	}

	m := rel.NumAttrs()
	out := &Binary{names: append([]string(nil), rel.Attrs()...), cols: make([][]int32, m), n: total}
	for c := 0; c < m; c++ {
		out.cols[c] = make([]int32, total)
	}
	// Start offsets consume the RNG in shift order before the fan-out, so
	// the sample is independent of the worker schedule.
	starts := make([]int, len(shifts))
	for si := range shifts {
		if perShift < n {
			starts[si] = rng.Intn(n)
		}
	}
	if _, err := par.Map(trace.ContextWithScope(context.Background(), opts.Trace.Under(tsp)),
		opts.Workers, len(shifts),
		func(ctx context.Context, si int) (struct{}, error) {
			ssp := trace.FromContext(ctx).Start("aux.shift").
				Int("shift", int64(shifts[si])).Int("samples", int64(perShift))
			s, base := shifts[si], si*perShift
			for k := 0; k < perShift; k++ {
				i := (starts[si] + k) % n
				j := (i + s) % n
				for c := 0; c < m; c++ {
					col := rel.Column(c)
					if col[i] == col[j] {
						out.cols[c][base+k] = 1
					}
				}
			}
			ssp.End()
			return struct{}{}, nil
		}); err != nil {
		return nil, err
	}
	opts.Obs.Counter("aux.shifts").Add(int64(len(shifts)))
	opts.Obs.Counter("aux.samples").Add(int64(total))
	return out, nil
}

// pickShifts draws k distinct shifts in [1, n-1].
func pickShifts(n, k int, rng *rand.Rand) []int {
	if k >= n-1 {
		out := make([]int, 0, n-1)
		for s := 1; s < n; s++ {
			out = append(out, s)
		}
		return out
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		s := 1 + rng.Intn(n-1)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// Identity converts rel into a stats.Data view without the auxiliary
// transform — the "identity sampler" ablated in Table 8.
func Identity(rel *dataset.Relation) *Raw { return &Raw{rel: rel} }

// Raw adapts a Relation to stats.Data directly.
type Raw struct {
	rel *dataset.Relation
}

// NumVars reports the number of attributes.
func (r *Raw) NumVars() int { return r.rel.NumAttrs() }

// N reports the number of rows.
func (r *Raw) N() int { return r.rel.NumRows() }

// Card reports the attribute's dictionary size.
func (r *Raw) Card(i int) int { return r.rel.Cardinality(i) }

// Codes returns attribute i's codes.
func (r *Raw) Codes(i int) []int32 { return r.rel.Column(i) }

// Name returns attribute i's name.
func (r *Raw) Name(i int) string { return r.rel.Attr(i) }
