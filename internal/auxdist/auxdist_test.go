package auxdist

import (
	"testing"
	"testing/quick"

	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/dataset"
)

func rel(t *testing.T) *dataset.Relation {
	t.Helper()
	r, err := bn.PostalChain(8).Sample(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSampleShape(t *testing.T) {
	r := rel(t)
	b, err := Sample(r, Options{Shifts: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.NumVars() != r.NumAttrs() {
		t.Fatalf("vars = %d, want %d", b.NumVars(), r.NumAttrs())
	}
	if b.N() != 4*r.NumRows() {
		t.Fatalf("samples = %d, want %d", b.N(), 4*r.NumRows())
	}
	for i := 0; i < b.NumVars(); i++ {
		if b.Card(i) != 2 {
			t.Fatalf("card = %d", b.Card(i))
		}
		if b.Name(i) != r.Attr(i) {
			t.Fatalf("name %q != %q", b.Name(i), r.Attr(i))
		}
		for _, c := range b.Codes(i) {
			if c != 0 && c != 1 {
				t.Fatalf("non-binary code %d", c)
			}
		}
	}
}

func TestSampleCap(t *testing.T) {
	r := rel(t)
	b, err := Sample(r, Options{Shifts: 8, MaxSamples: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if b.N() > 100 {
		t.Fatalf("cap exceeded: %d", b.N())
	}
	if b.N() == 0 {
		t.Fatal("no samples drawn")
	}
}

func TestSampleDeterministicPerSeed(t *testing.T) {
	r := rel(t)
	a, _ := Sample(r, Options{Shifts: 4, Seed: 9})
	b, _ := Sample(r, Options{Shifts: 4, Seed: 9})
	for v := 0; v < a.NumVars(); v++ {
		ca, cb := a.Codes(v), b.Codes(v)
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("sampling not deterministic at var %d row %d", v, i)
			}
		}
	}
}

func TestSampleTooFewRows(t *testing.T) {
	r := dataset.New("t", []string{"a"})
	r.AppendRow([]string{"x"})
	if _, err := Sample(r, Options{}); err == nil {
		t.Fatal("expected error for single-row relation")
	}
}

func TestSampleFunctionalDependencyPreserved(t *testing.T) {
	// City is a function of PostalCode, so whenever the indicator for
	// PostalCode is 1, the indicator for City must also be 1 (Def. 4.5:
	// equal inputs force equal deterministic outputs).
	r := rel(t)
	b, err := Sample(r, Options{Shifts: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pc, city := b.Codes(0), b.Codes(1)
	for i := range pc {
		if pc[i] == 1 && city[i] != 1 {
			t.Fatalf("FD broken in aux sample %d: PostalCode equal but City differs", i)
		}
	}
}

func TestIdentityAdapter(t *testing.T) {
	r := rel(t)
	id := Identity(r)
	if id.NumVars() != r.NumAttrs() || id.N() != r.NumRows() {
		t.Fatal("identity shape mismatch")
	}
	if id.Card(0) != r.Cardinality(0) {
		t.Fatal("identity cardinality mismatch")
	}
	if id.Name(2) != r.Attr(2) {
		t.Fatal("identity name mismatch")
	}
	if &id.Codes(1)[0] != &r.Column(1)[0] {
		t.Fatal("identity should share column storage")
	}
}

// Property: sample count never exceeds both Shifts*NumRows and MaxSamples.
func TestSampleSizeProperty(t *testing.T) {
	r := rel(t)
	f := func(shiftsRaw, capRaw uint8) bool {
		shifts := 1 + int(shiftsRaw)%10
		maxS := 10 + int(capRaw)*10
		b, err := Sample(r, Options{Shifts: shifts, MaxSamples: maxS, Seed: 5})
		if err != nil {
			return false
		}
		return b.N() <= shifts*r.NumRows() && b.N() <= maxS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
