package auxdist

import (
	"testing"

	"github.com/guardrail-db/guardrail/internal/bn"
)

// TestSampleParallelMatchesSerial: the auxiliary sample must be
// byte-identical at every worker count — same shifts, same start offsets,
// same column layout — because the RNG draws happen serially before the
// per-shift fan-out and each shift writes a disjoint segment.
func TestSampleParallelMatchesSerial(t *testing.T) {
	rel, err := bn.PostalChain(12).Sample(2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{Shifts: 8, Seed: 21},
		// MaxSamples below Shifts*NumRows forces perShift < n, covering the
		// random start-offset path.
		{Shifts: 8, Seed: 21, MaxSamples: 4000},
	} {
		serialOpts := opts
		serialOpts.Workers = 1
		serial, err := Sample(rel, serialOpts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			parOpts := opts
			parOpts.Workers = workers
			got, err := Sample(rel, parOpts)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if got.N() != serial.N() || got.NumVars() != serial.NumVars() {
				t.Fatalf("workers=%d: shape %dx%d, want %dx%d", workers, got.N(), got.NumVars(), serial.N(), serial.NumVars())
			}
			for c := 0; c < serial.NumVars(); c++ {
				sc, gc := serial.Codes(c), got.Codes(c)
				for r := range sc {
					if sc[r] != gc[r] {
						t.Fatalf("workers=%d: column %d row %d = %d, serial %d (maxSamples=%d)",
							workers, c, r, gc[r], sc[r], opts.MaxSamples)
					}
				}
			}
		}
	}
}
