package synth

import (
	"context"
	"fmt"
	"time"

	"github.com/guardrail-db/guardrail/internal/auxdist"
	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/dsl/analysis"
	"github.com/guardrail-db/guardrail/internal/dsl/verify"
	"github.com/guardrail-db/guardrail/internal/graph"
	"github.com/guardrail-db/guardrail/internal/obs"
	"github.com/guardrail-db/guardrail/internal/obs/trace"
	"github.com/guardrail-db/guardrail/internal/par"
	"github.com/guardrail-db/guardrail/internal/pc"
	"github.com/guardrail-db/guardrail/internal/sketch"
	"github.com/guardrail-db/guardrail/internal/smt/sat"
	"github.com/guardrail-db/guardrail/internal/stats"
)

// Options configures the end-to-end synthesizer.
type Options struct {
	// Epsilon is the ε-validity threshold (recommended 0.01–0.05, §8.3).
	Epsilon float64
	// MinSupport is the branch support floor (see FillOptions).
	MinSupport int
	// Alpha is the significance level of the structure learner's CI tests
	// (default 0.01).
	Alpha float64
	// MaxCond caps PC conditioning-set size (default 3).
	MaxCond int
	// MaxDAGs caps the MEC enumeration of Alg. 2 (default 256).
	MaxDAGs int
	// UseAux enables the auxiliary-distribution sampler (§4.6); the
	// identity sampler is the Table 8 ablation (default true — set
	// IdentitySampler to disable).
	IdentitySampler bool
	// AuxShifts / AuxMaxSamples tune auxdist.Sample.
	AuxShifts     int
	AuxMaxSamples int
	// CheckGNT prunes sketches that fail global non-triviality before
	// filling (default true — set SkipGNT to disable).
	SkipGNT bool
	// NoDedup disables equivalence-driven candidate dedup before coverage
	// scoring (the ablation baseline). The selected program is identical
	// either way: dedup keeps the first member of each semantic
	// equivalence class in enumeration order — exactly the candidate the
	// full scan would pick, since class members share coverage and
	// statement count.
	NoDedup bool
	// Seed drives sampling.
	Seed int64
	// Workers bounds the worker pool each pipeline stage fans out on: the
	// PC conditional-independence sweeps, the per-DAG sketch filling, and
	// the auxiliary-distribution sampling. <= 0 uses every core
	// (runtime.GOMAXPROCS); 1 forces the fully serial pipeline. The
	// synthesized program is byte-identical at every worker count.
	Workers int
	// Obs receives pipeline counters (synth.*, pc.*, aux.*) and stage
	// timings (synth.learn/enum/fill); nil disables instrumentation at
	// zero cost. Counter content is schedule-independent: identical at
	// every worker count on the same seed.
	Obs *obs.Registry
	// Trace parents the pipeline's span tree (synth.run → stage spans →
	// per-DAG / per-edge / per-shift work, attributed to worker lanes); the
	// zero scope disables tracing at zero cost. Spans record wall-clock
	// only and never influence the synthesized program.
	Trace trace.Scope
	// CI overrides the structure learner's test provider. When set, PC
	// draws its G² tests from here — typically a merged windowed
	// contingency table (internal/stats/incr) — instead of re-scanning the
	// sampled columns. Sketch screening and filling still run over the
	// relation's rows. Implies the identity sampler's variable space: the
	// tester must index variables exactly as rel indexes attributes.
	CI stats.CITester
	// WarmStart re-learns from a previous PC result, re-deciding only the
	// edges Dirty marks (see pc.LearnWarm). Nil means a cold start.
	WarmStart *pc.Result
	// Dirty flags the variables whose statistics drifted since WarmStart
	// was learned; ignored when WarmStart is nil.
	Dirty []bool
}

func (o *Options) defaults() {
	if o.Epsilon == 0 {
		o.Epsilon = 0.02
	}
	if o.Alpha == 0 {
		o.Alpha = 0.01
	}
	if o.MaxCond == 0 {
		o.MaxCond = 3
	}
	if o.MaxDAGs == 0 {
		o.MaxDAGs = 256
	}
	o.Workers = par.Resolve(o.Workers)
}

// Result is the synthesis outcome plus the bookkeeping the evaluation
// tables report.
type Result struct {
	Program *dsl.Program
	CPDAG   *graph.PDAG
	// Coverage of the selected program on the training relation.
	Coverage float64
	// NumDAGs is the number of MEC members enumerated (Table 7).
	NumDAGs int
	// EnumTruncated is set when MaxDAGs stopped the enumeration early.
	EnumTruncated bool
	// Timing breakdown.
	LearnTime time.Duration // structure learning (incl. aux sampling)
	EnumTime  time.Duration // MEC enumeration
	FillTime  time.Duration // sketch filling + selection
	// CacheHits/CacheMisses report statement-cache effectiveness.
	CacheHits, CacheMisses int
	// PrunedPrograms counts candidate programs the semantic verifier
	// rejected before coverage scoring (contradictory, dead, or
	// domain-violating fills).
	PrunedPrograms int
	// DedupedPrograms counts candidates skipped because an earlier
	// candidate had the same canonical semantic form.
	DedupedPrograms int
	// SolverCalls counts the finite-domain solver queries spent on
	// canonicalization.
	SolverCalls int64
	// CITests is the number of independence tests run by PC.
	CITests int
	// Learned is the full PC result, kept so a later re-synthesis can
	// warm-start from this run's skeleton and separating sets.
	Learned *pc.Result
}

// TotalTime is the summed pipeline time (Table 4).
func (r *Result) TotalTime() time.Duration { return r.LearnTime + r.EnumTime + r.FillTime }

// Synthesize runs the full Guardrail pipeline on rel: sample the auxiliary
// distribution, learn the CPDAG with PC, enumerate the MEC, fill each DAG's
// sketch (with the statement-level cache), and return the maximum-coverage
// ε-valid program (Alg. 2).
func Synthesize(rel *dataset.Relation, opts Options) (*Result, error) {
	opts.defaults()
	if rel.NumRows() < 2 {
		return nil, fmt.Errorf("synth: need at least 2 rows, have %d", rel.NumRows())
	}
	res := &Result{}
	opts.Obs.Gauge("synth.workers").Set(int64(opts.Workers))
	run := opts.Trace.Start("synth.run").Int("workers", int64(opts.Workers))
	defer run.End()
	stage := opts.Trace.Under(run)

	// Stage 1: structure learning.
	t0 := time.Now()
	lsp := stage.Start("synth.learn")
	var data stats.Data
	if opts.IdentitySampler {
		data = auxdist.Identity(rel)
	} else {
		aux, err := auxdist.Sample(rel, auxdist.Options{
			Shifts:     opts.AuxShifts,
			MaxSamples: opts.AuxMaxSamples,
			Seed:       opts.Seed,
			Workers:    opts.Workers,
			Obs:        opts.Obs,
			Trace:      stage.Under(lsp),
		})
		if err != nil {
			lsp.End()
			return nil, fmt.Errorf("synth: auxiliary sampling: %w", err)
		}
		data = aux
	}
	ci := opts.CI
	if ci == nil {
		ci = stats.Tester(data)
	}
	pcOpts := pc.Options{Alpha: opts.Alpha, MaxCond: opts.MaxCond,
		Workers: opts.Workers, Obs: opts.Obs, Trace: stage.Under(lsp)}
	var learned *pc.Result
	var err error
	if opts.WarmStart != nil {
		learned, err = pc.LearnWarm(ci, opts.WarmStart, opts.Dirty, pcOpts)
	} else {
		learned, err = pc.LearnFrom(ci, pcOpts)
	}
	if err != nil {
		lsp.End()
		return nil, fmt.Errorf("synth: structure learning: %w", err)
	}
	lsp.End()
	res.CPDAG = learned.CPDAG
	res.CITests = learned.Tests
	res.Learned = learned
	res.LearnTime = time.Since(t0)
	opts.Obs.Histogram("synth.learn").Observe(int64(res.LearnTime))

	// Stage 2: MEC enumeration (Alg. 2 outer loop).
	t1 := time.Now()
	esp := stage.Start("synth.enum")
	dags, err := graph.EnumerateMEC(learned.CPDAG, opts.MaxDAGs)
	if err == graph.ErrEnumLimit {
		res.EnumTruncated = true
	} else if err != nil {
		esp.End()
		return nil, fmt.Errorf("synth: MEC enumeration: %w", err)
	}
	esp.Int("dags", int64(len(dags))).End()
	res.NumDAGs = len(dags)
	res.EnumTime = time.Since(t1)
	opts.Obs.Counter("synth.dags").Add(int64(res.NumDAGs))
	opts.Obs.Histogram("synth.enum").Observe(int64(res.EnumTime))

	// Stage 3: fill sketches and pick the maximum-coverage program.
	t2 := time.Now()
	fsp := stage.Start("synth.fill")
	selOpts := opts
	selOpts.Trace = stage.Under(fsp)
	sel, err := SelectProgram(rel, dags, data, selOpts)
	fsp.End()
	if err != nil {
		return nil, fmt.Errorf("synth: program selection: %w", err)
	}
	res.Program = sel.Program
	res.Coverage = sel.Coverage
	res.PrunedPrograms = sel.PrunedPrograms
	res.DedupedPrograms = sel.DedupedPrograms
	res.SolverCalls = sel.SolverCalls
	res.CacheHits, res.CacheMisses = sel.CacheHits, sel.CacheMisses
	res.FillTime = time.Since(t2)
	opts.Obs.Histogram("synth.fill").Observe(int64(res.FillTime))
	return res, nil
}

// Selection is the outcome of the Alg. 2 inner loop over one MEC.
type Selection struct {
	Program  *dsl.Program
	Coverage float64
	// PrunedPrograms counts candidates the semantic verifier rejected.
	PrunedPrograms int
	// DedupedPrograms counts candidates skipped before coverage scoring
	// because an earlier candidate had the same canonical semantic form.
	DedupedPrograms int
	// SolverCalls counts the finite-domain solver queries spent on
	// canonicalization.
	SolverCalls int64
	// CacheHits/CacheMisses report statement-cache effectiveness.
	CacheHits, CacheMisses int
}

// candidate is one DAG's fill outcome, reduced at the barrier in DAG order.
type candidate struct {
	prog   *dsl.Program
	canon  string
	calls  int64
	pruned bool
}

// SelectProgram fills each enumerated DAG's sketch and returns the
// maximum-coverage ε-valid program (Alg. 2 inner loop). The DAGs fan out
// across opts.Workers workers: each candidate is screened for local
// non-triviality, filled through the shared statement cache (identical
// GIVEN…ON… holes are concretized once across DAGs, §7), gated by the
// semantic verifier, and canonicalized (internal/dsl/analysis). At the
// barrier candidates whose canonical semantic form already appeared are
// dropped — distinct DAGs frequently fill to equivalent programs once
// unsupported statements fall away — and only the surviving
// representatives fan out again for coverage scoring. Dropping a
// duplicate cannot change the selection: equal canonical forms imply
// identical coverage and statement count, and the kept representative is
// the earliest class member, which is the candidate the full scan would
// have selected. Both caches are singleflight and every per-DAG outcome
// depends only on that DAG and the shared read-only inputs, so counters
// and the selected program are identical at every worker count.
func SelectProgram(rel *dataset.Relation, dags []*graph.DAG, data stats.Data, opts Options) (*Selection, error) {
	opts.defaults()
	fill := FillOptions{Epsilon: opts.Epsilon, MinSupport: opts.MinSupport}
	cache := &StatementCache{}
	lnt := &sketch.LNTCache{}
	dom := sat.DomainsOf(rel)
	cands, err := par.Map(trace.ContextWithScope(context.Background(), opts.Trace),
		opts.Workers, len(dags),
		func(ctx context.Context, k int) (candidate, error) {
			dsp := trace.FromContext(ctx).Start("synth.dag").Int("dag", int64(k))
			dctx := trace.ContextWithScope(ctx, trace.FromContext(ctx).Under(dsp))
			sk := sketch.FromDAG(dags[k])
			if !opts.SkipGNT {
				sk = pruneNonLNT(dctx, sk, data, opts.Alpha, lnt)
			}
			prog := FillProgramCtx(dctx, rel, sk, fill, cache)
			// Static verification gate: a candidate whose fill is degenerate
			// (contradictory branches, dead statements, out-of-domain
			// literals) would silently weaken the runtime guardrail, so it
			// is pruned before it can win coverage scoring.
			if fs := verify.Program(prog, rel); verify.HasErrors(fs) {
				dsp.Bool("pruned", true).End()
				return candidate{pruned: true}, nil
			}
			c := candidate{prog: prog}
			if !opts.NoDedup {
				c.canon, c.calls = analysis.Canon(prog, dom)
			}
			dsp.Int("stmts", int64(len(prog.Stmts))).End()
			return c, nil
		})
	if err != nil {
		return nil, err
	}

	// Dedup at the barrier, in enumeration order: the first candidate of
	// each semantic-equivalence class survives. Keys are full canonical
	// strings, never hashes, so a collision cannot merge inequivalent
	// programs.
	sel := &Selection{Program: &dsl.Program{}}
	seen := make(map[string]bool, len(cands))
	var uniq []int
	for i, c := range cands {
		if c.pruned {
			sel.PrunedPrograms++
			continue
		}
		sel.SolverCalls += c.calls
		if !opts.NoDedup {
			if seen[c.canon] {
				sel.DedupedPrograms++
				opts.Trace.EventInt("synth.dedup", "dag", int64(i))
				continue
			}
			seen[c.canon] = true
		}
		uniq = append(uniq, i)
	}

	// Coverage-score the unique representatives only.
	covs, err := par.Map(trace.ContextWithScope(context.Background(), opts.Trace),
		opts.Workers, len(uniq),
		func(ctx context.Context, k int) (float64, error) {
			csp := trace.FromContext(ctx).Start("synth.coverage").Int("dag", int64(uniq[k]))
			cov := dsl.Coverage(cands[uniq[k]].prog, rel)
			csp.End()
			return cov, nil
		})
	if err != nil {
		return nil, err
	}
	bestCov := -1.0
	for k, i := range uniq {
		c := cands[i]
		if covs[k] > bestCov || (covs[k] == bestCov && len(c.prog.Stmts) > len(sel.Program.Stmts)) {
			sel.Program, bestCov = c.prog, covs[k]
		}
	}
	if bestCov < 0 {
		bestCov = 0
	}
	sel.Coverage = bestCov
	sel.CacheHits, sel.CacheMisses = cache.Stats()
	opts.Obs.Counter("synth.programs_pruned").Add(int64(sel.PrunedPrograms))
	opts.Obs.Counter("synth.programs_deduped").Add(int64(sel.DedupedPrograms))
	opts.Obs.Counter("analysis.solver_calls").Add(sel.SolverCalls)
	opts.Obs.Counter("synth.stmt_cache_hits").Add(int64(sel.CacheHits))
	opts.Obs.Counter("synth.stmt_cache_misses").Add(int64(sel.CacheMisses))
	lntHits, lntMisses := lnt.Stats()
	opts.Obs.Counter("synth.lnt_cache_hits").Add(int64(lntHits))
	opts.Obs.Counter("synth.lnt_cache_misses").Add(int64(lntMisses))
	return sel, nil
}

// pruneNonLNT drops statement sketches that fail local non-triviality —
// conservative screening before the expensive fill. (Sketches extracted
// from the learned CPDAG are GNT by Theorem 4.1 when the CPDAG is faithful;
// the LNT re-check guards against finite-sample artifacts.) Outcomes are
// memoized in lnt: the same (GIVEN set, ON) pair recurs across the DAGs of
// a MEC and its screen depends only on that pair.
func pruneNonLNT(ctx context.Context, p sketch.Prog, d stats.Data, alpha float64, lnt *sketch.LNTCache) sketch.Prog {
	var out sketch.Prog
	for _, s := range p.Stmts {
		ok, err := lnt.LNTCtx(ctx, s, d, alpha)
		if err == nil && ok {
			out.Stmts = append(out.Stmts, s)
		}
	}
	return out
}
