package synth_test

import (
	"reflect"
	"testing"

	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/obs"
	"github.com/guardrail-db/guardrail/internal/synth"
)

// TestObsCountersDeterministicAcrossWorkers: every counter the pipeline
// records — CI tests, edges removed, aux samples, DAGs, pruned programs,
// cache hits/misses — must be schedule-independent: identical at workers
// 1, 4, and 8 on the same seed. Gauges are excluded (synth.workers
// legitimately differs) and stage timings are wall-clock by design.
func TestObsCountersDeterministicAcrossWorkers(t *testing.T) {
	spec, err := bn.SpecByID(6)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) map[string]int64 {
		rel, err := spec.Generate(0.05, 5)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.New()
		if _, err := synth.Synthesize(rel, synth.Options{Epsilon: 0.02, Seed: 11, Workers: workers, Obs: reg}); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot().Counters
	}
	serial := run(1)
	for _, key := range []string{"pc.ci_tests", "aux.samples", "synth.dags", "synth.stmt_cache_misses", "synth.programs_deduped", "analysis.solver_calls"} {
		if _, ok := serial[key]; !ok {
			t.Errorf("counter %q missing from instrumented run: %v", key, serial)
		}
	}
	for _, workers := range []int{4, 8} {
		if got := run(workers); !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d counters differ from serial:\nserial: %v\ngot:    %v", workers, serial, got)
		}
	}
}
