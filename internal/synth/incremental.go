package synth

import (
	"fmt"

	"github.com/guardrail-db/guardrail/internal/auxdist"
	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/dsl/analysis"
	"github.com/guardrail-db/guardrail/internal/pc"
	"github.com/guardrail-db/guardrail/internal/smt/sat"
	"github.com/guardrail-db/guardrail/internal/stats/incr"
)

// IncrOptions tunes the incremental synthesis driver.
type IncrOptions struct {
	// WindowRows is how many observed rows fill one window (default 256).
	WindowRows int
	// MaxWindows caps the sliding ring; older windows are subtracted out
	// of the aggregate statistics (default 8).
	MaxWindows int
	// DriftAlpha is the p-value threshold of the per-variable
	// baseline-vs-window homogeneity test; at or below it a variable
	// counts as drifted and re-synthesis triggers (default 1e-3).
	DriftAlpha float64
	// Synth configures the underlying synthesis runs. Obs and Trace also
	// receive the driver's drift.* counters and window spans.
	Synth Options
}

func (o *IncrOptions) defaults() {
	if o.WindowRows <= 0 {
		o.WindowRows = 256
	}
	if o.MaxWindows <= 0 {
		o.MaxWindows = 8
	}
	if o.DriftAlpha == 0 {
		o.DriftAlpha = 1e-3
	}
}

// ChangeEvent records one re-synthesis trigger: which columns drifted
// and whether the constraint program actually changed, identified by
// semantic fingerprints comparable with `guardrail analyze`.
type ChangeEvent struct {
	// Seq numbers events from 1 in trigger order.
	Seq int `json:"seq"`
	// Row is the total number of observed rows when the trigger fired.
	Row int `json:"row"`
	// DriftedColumns names the attributes whose marginals drifted.
	DriftedColumns []string `json:"drifted_columns"`
	// OldFingerprint / NewFingerprint are the semantic fingerprints of
	// the program before and after re-synthesis.
	OldFingerprint string `json:"old_fingerprint"`
	NewFingerprint string `json:"new_fingerprint"`
	// Changed reports whether the fingerprints differ — a constraint
	// genuinely changed, not just a re-learn that confirmed the old one.
	Changed bool `json:"changed"`
}

// IncrStatus is a point-in-time snapshot of the driver, the payload of
// `guardrail resynth -json` and the serve /v1/drift endpoint.
type IncrStatus struct {
	Rows        int    `json:"rows"`
	LiveRows    int    `json:"live_rows"`
	Windows     int    `json:"windows"`
	Triggers    int    `json:"triggers"`
	Resyntheses int    `json:"resyntheses"`
	Changes     int    `json:"changes"`
	Synthesized bool   `json:"synthesized"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// Events lists every re-synthesis trigger in order.
	Events []ChangeEvent `json:"events,omitempty"`
}

// Incremental drives drift-aware synthesis over a growing relation:
// rows stream in, every WindowRows of them snapshot into a mergeable
// contingency table pushed onto a sliding ring, and each window is
// tested for marginal drift against the baseline statistics behind the
// current program. On drift it re-synthesizes over the live window view
// — PC reads its G² tests straight off the merged ring aggregate and
// warm-starts from the previous skeleton, re-deciding only edges with a
// drifted endpoint — and emits a ChangeEvent diffing old and new
// programs by semantic fingerprint.
//
// Not safe for concurrent use; callers serialize access (the serve
// drift monitor wraps one in a mutex).
type Incremental struct {
	rel  *dataset.Relation
	opts IncrOptions

	ring     *incr.Ring
	baseline *incr.Table // statistics behind the current program
	prev     *pc.Result  // warm-start seed from the last synthesis
	program  *dsl.Program
	fp       uint64

	start  int // first row of the window currently filling
	events []ChangeEvent

	windows, triggers, resyntheses, changes int
}

// NewIncremental builds a driver observing into rel. Rows already in
// rel count toward the first window.
func NewIncremental(rel *dataset.Relation, opts IncrOptions) *Incremental {
	opts.defaults()
	return &Incremental{
		rel:  rel,
		opts: opts,
		ring: incr.NewRing(opts.MaxWindows),
	}
}

// Rel exposes the growing relation (for encoders that intern through
// the same dictionaries).
func (inc *Incremental) Rel() *dataset.Relation { return inc.rel }

// Program returns the current synthesized program (nil before the first
// window completes).
func (inc *Incremental) Program() *dsl.Program { return inc.program }

// FingerprintHex renders the current program's semantic fingerprint the
// way `guardrail analyze -json` does.
func (inc *Incremental) FingerprintHex() string {
	if inc.program == nil {
		return ""
	}
	return fmt.Sprintf("%016x", inc.fp)
}

// Events returns every re-synthesis trigger so far.
func (inc *Incremental) Events() []ChangeEvent { return inc.events }

// Status snapshots the driver.
func (inc *Incremental) Status() IncrStatus {
	return IncrStatus{
		Rows:        inc.rel.NumRows(),
		LiveRows:    inc.ring.N(),
		Windows:     inc.windows,
		Triggers:    inc.triggers,
		Resyntheses: inc.resyntheses,
		Changes:     inc.changes,
		Synthesized: inc.program != nil,
		Fingerprint: inc.FingerprintHex(),
		Events:      append([]ChangeEvent(nil), inc.events...),
	}
}

// Observe appends one row (string values, "" for missing) and flushes a
// window when enough rows accumulated. It returns the change events the
// observation produced — nil on the vast majority of calls.
func (inc *Incremental) Observe(values []string) ([]ChangeEvent, error) {
	if err := inc.rel.AppendRow(values); err != nil {
		return nil, err
	}
	if inc.rel.NumRows()-inc.start < inc.opts.WindowRows {
		return nil, nil
	}
	return inc.flushWindow()
}

// Flush forces the partially filled window through the pipeline — used
// at end of stream so trailing rows still participate.
func (inc *Incremental) Flush() ([]ChangeEvent, error) {
	if inc.rel.NumRows() == inc.start {
		return nil, nil
	}
	return inc.flushWindow()
}

// flushWindow snapshots rows [start, NumRows) into a table, slides the
// ring, and runs drift detection against the baseline.
func (inc *Incremental) flushWindow() ([]ChangeEvent, error) {
	obsReg := inc.opts.Synth.Obs
	lo, hi := inc.start, inc.rel.NumRows()
	sp := inc.opts.Synth.Trace.Start("drift.window").
		Int("lo", int64(lo)).Int("hi", int64(hi))
	defer sp.End()
	hsp := obsReg.Histogram("drift.window_merge").Start()
	win := incr.FromRows(auxdist.Identity(inc.rel), lo, hi)
	if _, err := inc.ring.Push(win); err != nil {
		hsp.Stop()
		return nil, fmt.Errorf("synth: window merge: %w", err)
	}
	hsp.Stop()
	inc.start = hi
	inc.windows++
	obsReg.Counter("drift.windows").Inc()

	if inc.program == nil {
		// First complete window: cold initial synthesis. Not counted as a
		// re-synthesis — there was no program to change.
		if err := inc.synthesize(nil, nil); err != nil {
			return nil, err
		}
		return nil, nil
	}

	rep := incr.DetectDrift(inc.baseline, win, inc.opts.DriftAlpha)
	if !rep.Any() {
		return nil, nil
	}
	inc.triggers++
	obsReg.Counter("drift.triggers").Inc()
	sp.Bool("drift", true)

	oldFP := inc.fp
	drifted := make([]string, 0, 1)
	for _, v := range rep.DriftedVars() {
		drifted = append(drifted, inc.rel.Attr(v))
	}
	if err := inc.synthesize(inc.prev, rep.Dirty(inc.rel.NumAttrs())); err != nil {
		return nil, err
	}
	inc.resyntheses++
	obsReg.Counter("drift.resyntheses").Inc()
	ev := ChangeEvent{
		Seq:            len(inc.events) + 1,
		Row:            hi,
		DriftedColumns: drifted,
		OldFingerprint: fmt.Sprintf("%016x", oldFP),
		NewFingerprint: fmt.Sprintf("%016x", inc.fp),
		Changed:        inc.fp != oldFP,
	}
	if ev.Changed {
		inc.changes++
		obsReg.Counter("drift.changes").Inc()
	}
	inc.events = append(inc.events, ev)
	return []ChangeEvent{ev}, nil
}

// synthesize (re-)runs the pipeline over the live window view: the rows
// still inside the ring, with PC testing against the merged aggregate
// table. The baseline statistics reset to that aggregate afterwards.
func (inc *Incremental) synthesize(warm *pc.Result, dirty []bool) error {
	hi := inc.rel.NumRows()
	lo := hi - inc.ring.N()
	rows := make([]int, 0, hi-lo)
	for r := lo; r < hi; r++ {
		rows = append(rows, r)
	}
	view := inc.rel.SelectRows(rows)

	sOpts := inc.opts.Synth
	sOpts.IdentitySampler = true // PC reads the tables, which hold raw rows
	sOpts.CI = inc.ring.Aggregate()
	sOpts.WarmStart = warm
	sOpts.Dirty = dirty
	res, err := Synthesize(view, sOpts)
	if err != nil {
		return fmt.Errorf("synth: incremental synthesis: %w", err)
	}
	inc.program = res.Program
	inc.prev = res.Learned
	inc.baseline = inc.ring.Aggregate().Clone()
	// Fingerprint over the full relation's domains — exactly what
	// `guardrail analyze` computes for a batch-synthesized program, so
	// the stationary-stream e2e can compare the two directly.
	canon, _ := analysis.Canon(inc.program, sat.DomainsOf(inc.rel))
	inc.fp = analysis.Fingerprint(canon)
	return nil
}
