package synth_test

import (
	"testing"

	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/synth"
)

// TestSynthesizeDeterministic asserts end-to-end reproducibility: two runs
// on the same seeded dataset must synthesize byte-identical programs. This
// guards the class of bug vetguard's maprange check exists for —
// nondeterministic map iteration leaking into synthesis output.
func TestSynthesizeDeterministic(t *testing.T) {
	spec, err := bn.SpecByID(2)
	if err != nil {
		t.Fatal(err)
	}
	opts := synth.Options{Epsilon: 0.02, Seed: 7}

	run := func() (string, float64) {
		rel, err := spec.Generate(0.05, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := synth.Synthesize(rel, opts)
		if err != nil {
			t.Fatal(err)
		}
		return dsl.Format(res.Program, rel), res.Coverage
	}

	prog1, cov1 := run()
	prog2, cov2 := run()
	if prog1 != prog2 {
		t.Fatalf("synthesis not deterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", prog1, prog2)
	}
	if cov1 != cov2 {
		t.Fatalf("coverage not deterministic: %v vs %v", cov1, cov2)
	}
	if prog1 == "" {
		t.Fatal("synthesized program is empty; determinism check is vacuous")
	}
}

// TestSynthesizeDeterministicAcrossWorkers is the parallel-pipeline
// regression gate: the serialized synthesized program must be identical at
// every worker count — workers=1 (the serial pipeline), 4, and 8 — along
// with coverage, pruning, and statement-cache counters. Any scheduling
// leak into the output (unordered merges, cache races, RNG draws inside a
// fan-out) shows up here as a program diff.
func TestSynthesizeDeterministicAcrossWorkers(t *testing.T) {
	spec, err := bn.SpecByID(2)
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		prog         string
		cov          float64
		pruned       int
		hits, misses int
	}
	run := func(workers int) outcome {
		rel, err := spec.Generate(0.05, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := synth.Synthesize(rel, synth.Options{Epsilon: 0.02, Seed: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return outcome{
			prog:   dsl.Format(res.Program, rel),
			cov:    res.Coverage,
			pruned: res.PrunedPrograms,
			hits:   res.CacheHits,
			misses: res.CacheMisses,
		}
	}
	serial := run(1)
	if serial.prog == "" {
		t.Fatal("serial synthesis produced an empty program; the cross-worker diff is vacuous")
	}
	for _, workers := range []int{4, 8} {
		got := run(workers)
		if got.prog != serial.prog {
			t.Errorf("workers=%d synthesized a different program:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
				workers, serial.prog, workers, got.prog)
		}
		if got.cov != serial.cov {
			t.Errorf("workers=%d coverage %v != serial %v", workers, got.cov, serial.cov)
		}
		if got.pruned != serial.pruned {
			t.Errorf("workers=%d pruned %d != serial %d", workers, got.pruned, serial.pruned)
		}
		if got.hits != serial.hits || got.misses != serial.misses {
			t.Errorf("workers=%d cache stats %d/%d != serial %d/%d",
				workers, got.hits, got.misses, serial.hits, serial.misses)
		}
	}
}

// TestSynthesizeDeterministicAcrossWorkersAux repeats the cross-worker
// diff with the auxiliary-distribution sampler, covering the parallel
// shift-filling path and its hoisted RNG draws.
func TestSynthesizeDeterministicAcrossWorkersAux(t *testing.T) {
	spec, err := bn.SpecByID(6)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) string {
		rel, err := spec.Generate(0.05, 5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := synth.Synthesize(rel, synth.Options{Epsilon: 0.02, Seed: 11, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return dsl.Format(res.Program, rel)
	}
	serial := run(1)
	for _, workers := range []int{4, 8} {
		if got := run(workers); got != serial {
			t.Errorf("workers=%d aux-sampler program differs from serial:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
				workers, serial, workers, got)
		}
	}
}

// TestSynthesizeDeterministicAuxSampler repeats the check with the
// auxiliary-distribution sampler enabled, which exercises the seeded RNG
// path as well.
func TestSynthesizeDeterministicAuxSampler(t *testing.T) {
	spec, err := bn.SpecByID(6)
	if err != nil {
		t.Fatal(err)
	}
	opts := synth.Options{Epsilon: 0.02, Seed: 11, IdentitySampler: false}

	run := func() string {
		rel, err := spec.Generate(0.05, 5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := synth.Synthesize(rel, opts)
		if err != nil {
			t.Fatal(err)
		}
		return dsl.Format(res.Program, rel)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("aux-sampler synthesis not deterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}
