package synth_test

import (
	"testing"

	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/synth"
)

// TestSynthesizeDeterministic asserts end-to-end reproducibility: two runs
// on the same seeded dataset must synthesize byte-identical programs. This
// guards the class of bug vetguard's maprange check exists for —
// nondeterministic map iteration leaking into synthesis output.
func TestSynthesizeDeterministic(t *testing.T) {
	spec, err := bn.SpecByID(2)
	if err != nil {
		t.Fatal(err)
	}
	opts := synth.Options{Epsilon: 0.02, Seed: 7}

	run := func() (string, float64) {
		rel, err := spec.Generate(0.05, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := synth.Synthesize(rel, opts)
		if err != nil {
			t.Fatal(err)
		}
		return dsl.Format(res.Program, rel), res.Coverage
	}

	prog1, cov1 := run()
	prog2, cov2 := run()
	if prog1 != prog2 {
		t.Fatalf("synthesis not deterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", prog1, prog2)
	}
	if cov1 != cov2 {
		t.Fatalf("coverage not deterministic: %v vs %v", cov1, cov2)
	}
	if prog1 == "" {
		t.Fatal("synthesized program is empty; determinism check is vacuous")
	}
}

// TestSynthesizeDeterministicAuxSampler repeats the check with the
// auxiliary-distribution sampler enabled, which exercises the seeded RNG
// path as well.
func TestSynthesizeDeterministicAuxSampler(t *testing.T) {
	spec, err := bn.SpecByID(6)
	if err != nil {
		t.Fatal(err)
	}
	opts := synth.Options{Epsilon: 0.02, Seed: 11, IdentitySampler: false}

	run := func() string {
		rel, err := spec.Generate(0.05, 5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := synth.Synthesize(rel, opts)
		if err != nil {
			t.Fatal(err)
		}
		return dsl.Format(res.Program, rel)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("aux-sampler synthesis not deterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}
