package synth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/sketch"
)

// Property: every statement FillStatement produces is ε-valid on the
// training data by construction, and its coverage lies in [0, 1].
func TestFillStatementEpsValidProperty(t *testing.T) {
	f := func(seed int64, epsRaw uint8) bool {
		eps := 0.001 + float64(epsRaw)/255*0.2
		nw := bn.RandomSEM(bn.SEMSpec{Attrs: 5, Seed: seed})
		rel, err := nw.Sample(400, seed)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		on := rng.Intn(5)
		given := []int{(on + 1 + rng.Intn(4)) % 5}
		stmt, ok := FillStatement(rel, sketch.Stmt{Given: given, On: on}, FillOptions{Epsilon: eps})
		if !ok {
			return true // nothing to check
		}
		if !dsl.EpsValidStatement(stmt, rel, eps) {
			return false
		}
		cov := dsl.StatementCoverage(stmt, rel)
		return cov >= 0 && cov <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: synthesized programs validate against their training relation
// and their reported coverage matches dsl.Coverage.
func TestSynthesizeValidProgramProperty(t *testing.T) {
	f := func(seed int64) bool {
		nw := bn.RandomSEM(bn.SEMSpec{Attrs: 5, Seed: seed})
		rel, err := nw.Sample(600, seed)
		if err != nil {
			return false
		}
		res, err := Synthesize(rel, Options{Seed: seed})
		if err != nil {
			return false
		}
		if len(res.Program.Stmts) > 0 {
			if err := res.Program.Validate(rel); err != nil {
				return false
			}
		}
		cov := dsl.Coverage(res.Program, rel)
		return cov >= res.Coverage-1e-9 && cov <= res.Coverage+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: the cache never changes fill results.
func TestCacheTransparencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		nw := bn.RandomSEM(bn.SEMSpec{Attrs: 4, Seed: seed})
		rel, err := nw.Sample(300, seed)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		cache := &StatementCache{}
		for i := 0; i < 6; i++ {
			on := rng.Intn(4)
			given := []int{(on + 1 + rng.Intn(3)) % 4}
			sk := sketch.Stmt{Given: given, On: on}
			a, okA := cache.Fill(rel, sk, FillOptions{})
			b, okB := FillStatement(rel, sk, FillOptions{})
			if okA != okB || len(a.Branches) != len(b.Branches) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
