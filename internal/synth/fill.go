// Package synth implements Guardrail's two-stage synthesis: filling program
// sketches with ε-valid branches (Alg. 1) and selecting the
// maximum-coverage concrete program across the DAGs of a Markov
// equivalence class (Alg. 2), with the statement-level cache described in
// §7. The end-to-end Synthesizer (synthesizer.go) composes these with the
// PC structure learner and the auxiliary-distribution sampler.
package synth

import (
	"context"
	"sort"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/par"
	"github.com/guardrail-db/guardrail/internal/sketch"
)

// FillOptions tunes Alg. 1.
type FillOptions struct {
	// Epsilon is the per-branch loss tolerance (Eqn. 3); default 0.02.
	Epsilon float64
	// MinSupport drops branches whose condition matches fewer rows; a
	// branch learned from a single example is rarely a constraint
	// (default 2).
	MinSupport int
}

func (o *FillOptions) defaults() {
	if o.Epsilon == 0 {
		o.Epsilon = 0.02
	}
	if o.MinSupport == 0 {
		o.MinSupport = 2
	}
}

// FillStatement concretizes one statement sketch over rel (Alg. 1,
// FillStmtSketch): the warranted conditions are the determinant-value
// combinations observed in the data; each condition's best-fit literal is
// the mode of the dependent attribute within the matching rows; a branch is
// kept iff its 0/1 loss is within |D^b|·ε. It returns false when no branch
// survives (the ⊥ case).
func FillStatement(rel *dataset.Relation, sk sketch.Stmt, opts FillOptions) (dsl.Statement, bool) {
	opts.defaults()
	n := rel.NumRows()
	if n == 0 || len(sk.Given) == 0 {
		return dsl.Statement{}, false
	}
	givenCols := make([][]int32, len(sk.Given))
	for i, g := range sk.Given {
		givenCols[i] = rel.Column(g)
	}
	onCol := rel.Column(sk.On)

	// Group rows by their determinant tuple; per group count dependent
	// values to find the mode.
	type group struct {
		cond   []int32       // determinant values, aligned with sk.Given
		counts map[int32]int // dependent value -> count
		size   int
	}
	groups := map[string]*group{}
	keyBuf := make([]byte, 0, len(sk.Given)*5)
	for r := 0; r < n; r++ {
		keyBuf = keyBuf[:0]
		skip := false
		for _, col := range givenCols {
			v := col[r]
			if v == dataset.Missing {
				skip = true // a condition cannot test a missing determinant
				break
			}
			keyBuf = append(keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ':')
		}
		if skip {
			continue
		}
		g := groups[string(keyBuf)]
		if g == nil {
			cond := make([]int32, len(sk.Given))
			for i, col := range givenCols {
				cond[i] = col[r]
			}
			g = &group{cond: cond, counts: map[int32]int{}}
			groups[string(keyBuf)] = g
		}
		g.size++
		g.counts[onCol[r]]++
	}

	// Iterate groups in sorted key order: map order is randomized, and the
	// branch list must be byte-stable across runs for reproducible synthesis.
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var branches []dsl.Branch
	for _, k := range keys {
		g := groups[k]
		if g.size < opts.MinSupport {
			continue
		}
		mode, modeCount := int32(dataset.Missing), -1
		for v, c := range g.counts {
			if c > modeCount || (c == modeCount && v < mode) {
				mode, modeCount = v, c
			}
		}
		if mode == dataset.Missing {
			continue // refusing to assert "must be missing"
		}
		loss := g.size - modeCount
		if float64(loss) > float64(g.size)*opts.Epsilon {
			continue
		}
		cond := make(dsl.Condition, len(sk.Given))
		for i, a := range sk.Given {
			cond[i] = dsl.Pred{Attr: a, Value: g.cond[i]}
		}
		branches = append(branches, dsl.Branch{Cond: cond, Value: mode})
	}
	if len(branches) == 0 {
		return dsl.Statement{}, false
	}
	// Deterministic output order: sort by condition values.
	sort.Slice(branches, func(i, j int) bool {
		a, b := branches[i].Cond, branches[j].Cond
		for k := range a {
			if a[k].Value != b[k].Value {
				return a[k].Value < b[k].Value
			}
		}
		return branches[i].Value < branches[j].Value
	})
	return dsl.Statement{
		Given:    append([]int(nil), sk.Given...),
		On:       sk.On,
		Branches: branches,
	}, true
}

// StatementCache memoizes FillStatement results across the DAGs of a MEC:
// two DAGs sharing a (GIVEN set, ON) pair concretize it identically, so the
// cache eliminates the redundant concretizations noted in §7. It is safe
// for concurrent use — the parallel MEC fill shares one cache across
// workers, and an identical hole requested by two DAGs at once is still
// filled exactly once (sharded singleflight, see par.Cache). The zero
// value is ready to use.
type StatementCache struct {
	cache par.Cache[cachedStmt]
}

type cachedStmt struct {
	stmt dsl.Statement
	ok   bool
}

// Fill returns the cached concretization of sk, computing it on a miss.
func (c *StatementCache) Fill(rel *dataset.Relation, sk sketch.Stmt, opts FillOptions) (dsl.Statement, bool) {
	return c.FillCtx(context.Background(), rel, sk, opts)
}

// FillCtx is Fill plus cache hit/miss trace instants on the scope carried
// by ctx (see par.Cache.DoTraced); behavior is otherwise identical.
func (c *StatementCache) FillCtx(ctx context.Context, rel *dataset.Relation, sk sketch.Stmt, opts FillOptions) (dsl.Statement, bool) {
	e := c.cache.DoTraced(ctx, "stmt", sk.Key(), func() cachedStmt {
		stmt, ok := FillStatement(rel, sk, opts)
		return cachedStmt{stmt: stmt, ok: ok}
	})
	return e.stmt, e.ok
}

// Stats reports cache effectiveness. The counts are schedule-independent:
// one miss per distinct statement key, hits for every other access.
func (c *StatementCache) Stats() (hits, misses int) { return c.cache.Stats() }

// FillProgram concretizes every statement of a program sketch (Alg. 1,
// outer loop), dropping statements that concretize to ⊥. cache may be nil.
func FillProgram(rel *dataset.Relation, p sketch.Prog, opts FillOptions, cache *StatementCache) *dsl.Program {
	return FillProgramCtx(context.Background(), rel, p, opts, cache)
}

// FillProgramCtx is FillProgram with per-statement cache trace events
// attributed to the scope carried by ctx.
func FillProgramCtx(ctx context.Context, rel *dataset.Relation, p sketch.Prog, opts FillOptions, cache *StatementCache) *dsl.Program {
	prog := &dsl.Program{}
	for _, sk := range p.Stmts {
		var stmt dsl.Statement
		var ok bool
		if cache != nil {
			stmt, ok = cache.FillCtx(ctx, rel, sk, opts)
		} else {
			stmt, ok = FillStatement(rel, sk, opts)
		}
		if ok {
			prog.Stmts = append(prog.Stmts, stmt)
		}
	}
	return prog
}
