package synth

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/sketch"
)

// formatStmt renders one statement for comparison.
func formatStmt(s dsl.Statement, rel *dataset.Relation) string {
	var b strings.Builder
	dsl.FormatStatement(&b, s, rel)
	return b.String()
}

// TestStatementCacheConcurrent is the -race stress test of the sharded
// statement cache: many goroutines fill an overlapping set of statement
// sketches through one cache. Every result must match a direct
// FillStatement call, each distinct key must be computed exactly once
// (misses == distinct keys, singleflight), and the hit count must equal
// the remaining accesses — the same ledger a serial memo table keeps.
func TestStatementCacheConcurrent(t *testing.T) {
	rel, err := bn.PostalChain(8).Sample(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sketches []sketch.Stmt
	for on := 1; on < rel.NumAttrs(); on++ {
		sketches = append(sketches, sketch.Stmt{Given: []int{on - 1}, On: on})
		if on >= 2 {
			sketches = append(sketches, sketch.Stmt{Given: []int{on - 2, on - 1}, On: on})
		}
	}
	opts := FillOptions{Epsilon: 0.02, MinSupport: 2}
	want := make([]dsl.Statement, len(sketches))
	wantOK := make([]bool, len(sketches))
	for i, sk := range sketches {
		want[i], wantOK[i] = FillStatement(rel, sk, opts)
	}

	cache := &StatementCache{}
	const goroutines = 16
	const rounds = 50
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Offset the walk per goroutine so different keys collide
				// in-flight across goroutines.
				for i := range sketches {
					k := (i + g) % len(sketches)
					stmt, ok := cache.Fill(rel, sketches[k], opts)
					if ok != wantOK[k] {
						errs <- fmt.Errorf("sketch %d: ok = %v, want %v", k, ok, wantOK[k])
						return
					}
					if ok && formatStmt(stmt, rel) != formatStmt(want[k], rel) {
						errs <- fmt.Errorf("sketch %d: concurrent fill differs from serial fill", k)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	hits, misses := cache.Stats()
	total := goroutines * rounds * len(sketches)
	if misses != len(sketches) {
		t.Errorf("misses = %d, want one per distinct key (%d): duplicate fills slipped through the singleflight", misses, len(sketches))
	}
	if hits != total-len(sketches) {
		t.Errorf("hits = %d, want %d", hits, total-len(sketches))
	}
}
