package synth

import (
	"fmt"
	"strings"
	"testing"

	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl/analysis"
	"github.com/guardrail-db/guardrail/internal/obs"
	"github.com/guardrail-db/guardrail/internal/smt/sat"
)

// streamRelation builds an empty relation with src's header, ready for
// Observe to grow.
func streamRelation(t *testing.T, src *dataset.Relation) *dataset.Relation {
	t.Helper()
	header := make([]string, src.NumAttrs())
	for i := range header {
		header[i] = src.Attr(i)
	}
	rel, err := dataset.FromCSV(strings.NewReader(strings.Join(header, ",")+"\n"), src.Name())
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestIncrementalStationaryStream(t *testing.T) {
	src, err := bn.PostalChain(6).Sample(3000, 31)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	inc := NewIncremental(streamRelation(t, src), IncrOptions{
		WindowRows: 500,
		MaxWindows: 4,
		Synth:      Options{IdentitySampler: true, Obs: reg},
	})
	for r := 0; r < src.NumRows(); r++ {
		evs, err := inc.Observe(src.RowStrings(r))
		if err != nil {
			t.Fatal(err)
		}
		if len(evs) != 0 {
			t.Fatalf("stationary stream emitted change event at row %d: %+v", r, evs)
		}
	}
	st := inc.Status()
	if st.Resyntheses != 0 || st.Triggers != 0 {
		t.Fatalf("stationary stream re-synthesized: %+v", st)
	}
	if !st.Synthesized || st.Windows != 6 {
		t.Fatalf("driver state off: %+v", st)
	}
	if got := reg.Counter("drift.windows").Value(); got != 6 {
		t.Fatalf("drift.windows = %d", got)
	}
	if reg.Counter("drift.triggers").Value() != 0 {
		t.Fatal("drift.triggers fired on stationary data")
	}

	// The streamed program is fingerprint-identical to a batch synthesis
	// over the full data: deterministic chain constraints do not depend on
	// which (sufficiently large) sample they were learned from. The batch
	// side loads the same stream into a fresh relation, as the CLI would
	// load a CSV, so both sides intern codes in row order.
	whole := streamRelation(t, src)
	for r := 0; r < src.NumRows(); r++ {
		if err := whole.AppendRow(src.RowStrings(r)); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := Synthesize(whole, Options{IdentitySampler: true})
	if err != nil {
		t.Fatal(err)
	}
	canon, _ := analysis.Canon(batch.Program, sat.DomainsOf(whole))
	if want := fmt.Sprintf("%016x", analysis.Fingerprint(canon)); inc.FingerprintHex() != want {
		t.Fatalf("streamed fingerprint %s != batch %s", inc.FingerprintHex(), want)
	}
}

func TestIncrementalShiftTriggersResynthesis(t *testing.T) {
	src, err := bn.PostalChain(6).Sample(3000, 32)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	inc := NewIncremental(streamRelation(t, src), IncrOptions{
		WindowRows: 500,
		MaxWindows: 4,
		Synth:      Options{IdentitySampler: true, Obs: reg},
	})
	// Clean prefix.
	for r := 0; r < 1500; r++ {
		if _, err := inc.Observe(src.RowStrings(r)); err != nil {
			t.Fatal(err)
		}
	}
	before := inc.FingerprintHex()
	if before == "" {
		t.Fatal("no baseline program after clean prefix")
	}
	// Shifted suffix: City decouples from PostalCode and lands on fresh
	// out-of-dictionary strings.
	cityAt := src.AttrIndex("City")
	var events []ChangeEvent
	for r := 1500; r < 3000; r++ {
		vals := src.RowStrings(r)
		vals[cityAt] = fmt.Sprintf("junk-%d", r%17)
		evs, err := inc.Observe(vals)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, evs...)
	}
	st := inc.Status()
	if st.Triggers == 0 || st.Resyntheses == 0 {
		t.Fatalf("shifted suffix did not trigger re-synthesis: %+v", st)
	}
	if len(events) == 0 {
		t.Fatal("no change events emitted")
	}
	named := false
	for _, ev := range events {
		for _, c := range ev.DriftedColumns {
			if c == "City" {
				named = true
			}
		}
	}
	if !named {
		t.Fatalf("change events do not name the shifted column: %+v", events)
	}
	changed := false
	for _, ev := range events {
		if ev.Changed && ev.OldFingerprint != ev.NewFingerprint {
			changed = true
		}
	}
	if !changed {
		t.Fatalf("constraints did not change under a hard shift: %+v", events)
	}
	if reg.Counter("drift.triggers").Value() != int64(st.Triggers) ||
		reg.Counter("drift.resyntheses").Value() != int64(st.Resyntheses) {
		t.Fatal("drift counters diverge from status")
	}
	if reg.Counter("drift.changes").Value() == 0 {
		t.Fatal("drift.changes never fired")
	}
}
