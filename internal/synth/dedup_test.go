package synth_test

import (
	"reflect"
	"testing"

	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/obs"
	"github.com/guardrail-db/guardrail/internal/synth"
)

// TestDedupPreservesSelection: equivalence-driven dedup must skip work,
// never change the answer — the program selected with dedup on is
// byte-identical to the ablation baseline, on a config where dedup
// actually fires.
func TestDedupPreservesSelection(t *testing.T) {
	spec, err := bn.SpecByID(2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(noDedup bool) *synth.Result {
		rel, err := spec.Generate(0.1, 7)
		if err != nil {
			t.Fatal(err)
		}
		res, err := synth.Synthesize(rel, synth.Options{Epsilon: 0.02, Seed: 7, Workers: 4, NoDedup: noDedup})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with, without := run(false), run(true)
	if with.DedupedPrograms == 0 {
		t.Fatal("expected dedup to fire on this config (it did at authoring time)")
	}
	if without.DedupedPrograms != 0 || without.SolverCalls != 0 {
		t.Errorf("ablation baseline must not dedup: deduped=%d calls=%d",
			without.DedupedPrograms, without.SolverCalls)
	}
	if with.SolverCalls == 0 {
		t.Error("dedup should account its solver calls")
	}
	if !reflect.DeepEqual(with.Program, without.Program) {
		t.Errorf("dedup changed the selected program:\nwith:    %+v\nwithout: %+v", with.Program, without.Program)
	}
	if with.Coverage != without.Coverage {
		t.Errorf("dedup changed coverage: %v vs %v", with.Coverage, without.Coverage)
	}
}

// TestDedupCountersScheduleIndependent pins the new counters at workers
// 1, 4, and 8 on the CI benchmark config.
func TestDedupCountersScheduleIndependent(t *testing.T) {
	spec, err := bn.SpecByID(2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) (int64, int64) {
		rel, err := spec.Generate(0.1, 7)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.New()
		if _, err := synth.Synthesize(rel, synth.Options{Epsilon: 0.02, Seed: 7, Workers: workers, Obs: reg}); err != nil {
			t.Fatal(err)
		}
		c := reg.Snapshot().Counters
		return c["synth.programs_deduped"], c["analysis.solver_calls"]
	}
	d1, s1 := run(1)
	if d1 == 0 || s1 == 0 {
		t.Fatalf("expected non-zero dedup counters, got deduped=%d solver_calls=%d", d1, s1)
	}
	for _, w := range []int{4, 8} {
		if d, s := run(w); d != d1 || s != s1 {
			t.Errorf("workers=%d: counters (%d, %d) differ from serial (%d, %d)", w, d, s, d1, s1)
		}
	}
}
