package synth

import (
	"testing"

	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/errgen"
	"github.com/guardrail-db/guardrail/internal/sketch"
)

func postalRel(t *testing.T, n int, seed int64) *dataset.Relation {
	t.Helper()
	rel, err := bn.PostalChain(8).Sample(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestFillStatementExactFD(t *testing.T) {
	rel := postalRel(t, 2000, 1)
	stmt, ok := FillStatement(rel, sketch.Stmt{Given: []int{0}, On: 1}, FillOptions{Epsilon: 0.01})
	if !ok {
		t.Fatal("exact FD failed to concretize")
	}
	if len(stmt.Branches) == 0 {
		t.Fatal("no branches")
	}
	if !dsl.EpsValidStatement(stmt, rel, 0.01) {
		t.Fatal("filled statement not ε-valid")
	}
	if cov := dsl.StatementCoverage(stmt, rel); cov < 0.99 {
		t.Fatalf("coverage = %g, want ~1", cov)
	}
}

func TestFillStatementNoisyData(t *testing.T) {
	rel := postalRel(t, 2000, 2)
	if _, err := errgen.Inject(rel, errgen.Options{Rate: 0.01, MinErrors: 5, Columns: []int{1}, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	// With ε=0.05 the mode still wins in every large group.
	stmt, ok := FillStatement(rel, sketch.Stmt{Given: []int{0}, On: 1}, FillOptions{Epsilon: 0.05})
	if !ok {
		t.Fatal("noisy FD failed to concretize")
	}
	if cov := dsl.StatementCoverage(stmt, rel); cov < 0.9 {
		t.Fatalf("coverage = %g under 1%% noise", cov)
	}
	// With ε=0 the corrupted groups drop out, shrinking coverage.
	strict, ok := FillStatement(rel, sketch.Stmt{Given: []int{0}, On: 1}, FillOptions{Epsilon: 1e-9})
	if ok {
		if dsl.StatementCoverage(strict, rel) >= dsl.StatementCoverage(stmt, rel) {
			t.Fatal("stricter ε should not increase coverage")
		}
	}
}

func TestFillStatementUnrelatedAttrs(t *testing.T) {
	// Country has 2 values; PostalCode groups all map deterministically to
	// Country transitively, so this fills — but a truly random target with
	// high-cardinality conditions should fail at low ε.
	nw := &bn.Network{Nodes: []bn.Node{
		{Name: "a", Card: 4, CPT: []float64{0.25, 0.25, 0.25, 0.25}},
		{Name: "b", Card: 4, CPT: []float64{0.25, 0.25, 0.25, 0.25}},
	}}
	rel, err := nw.Sample(4000, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, ok := FillStatement(rel, sketch.Stmt{Given: []int{0}, On: 1}, FillOptions{Epsilon: 0.02})
	if ok {
		t.Fatal("independent attributes produced an ε-valid statement at ε=0.02")
	}
}

func TestFillStatementEdgeCases(t *testing.T) {
	rel := postalRel(t, 100, 4)
	if _, ok := FillStatement(rel, sketch.Stmt{Given: nil, On: 1}, FillOptions{}); ok {
		t.Fatal("empty GIVEN filled")
	}
	empty := dataset.New("e", []string{"a", "b"})
	if _, ok := FillStatement(empty, sketch.Stmt{Given: []int{0}, On: 1}, FillOptions{}); ok {
		t.Fatal("empty relation filled")
	}
}

func TestFillStatementSkipsMissingDeterminants(t *testing.T) {
	rel := dataset.New("m", []string{"a", "b"})
	rel.AppendRow([]string{"", "y"})
	rel.AppendRow([]string{"", "y"})
	rel.AppendRow([]string{"x", "y"})
	rel.AppendRow([]string{"x", "y"})
	stmt, ok := FillStatement(rel, sketch.Stmt{Given: []int{0}, On: 1}, FillOptions{Epsilon: 0.01, MinSupport: 2})
	if !ok {
		t.Fatal("statement should fill from the non-missing rows")
	}
	if len(stmt.Branches) != 1 {
		t.Fatalf("missing determinants should not form branches: %+v", stmt.Branches)
	}
}

func TestFillStatementMinSupport(t *testing.T) {
	rel := dataset.New("s", []string{"a", "b"})
	rel.AppendRow([]string{"x", "p"})
	rel.AppendRow([]string{"x", "p"})
	rel.AppendRow([]string{"y", "q"}) // singleton group
	stmt, ok := FillStatement(rel, sketch.Stmt{Given: []int{0}, On: 1}, FillOptions{Epsilon: 0.01, MinSupport: 2})
	if !ok || len(stmt.Branches) != 1 {
		t.Fatalf("MinSupport not enforced: %+v ok=%v", stmt, ok)
	}
}

func TestStatementCache(t *testing.T) {
	rel := postalRel(t, 500, 5)
	cache := &StatementCache{}
	sk := sketch.Stmt{Given: []int{0}, On: 1}
	a, ok1 := cache.Fill(rel, sk, FillOptions{})
	b, ok2 := cache.Fill(rel, sk, FillOptions{})
	if !ok1 || !ok2 {
		t.Fatal("cache fill failed")
	}
	if len(a.Branches) != len(b.Branches) {
		t.Fatal("cache returned different statement")
	}
	hits, misses := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	// Reordered GIVEN hits the same entry.
	cache.Fill(rel, sketch.Stmt{Given: []int{0}, On: 2}, FillOptions{})
	cache.Fill(rel, sketch.Stmt{Given: []int{0}, On: 2}, FillOptions{})
	hits, _ = cache.Stats()
	if hits != 2 {
		t.Fatalf("hits=%d", hits)
	}
}

func TestSynthesizeRecoversPostalChain(t *testing.T) {
	rel := postalRel(t, 4000, 6)
	res, err := Synthesize(rel, Options{Epsilon: 0.02, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Program.Stmts) == 0 {
		t.Fatal("no statements synthesized")
	}
	if res.Coverage < 0.9 {
		t.Fatalf("coverage = %g", res.Coverage)
	}
	if !dsl.EpsValid(res.Program, rel, 0.02) {
		t.Fatal("synthesized program not ε-valid on training data")
	}
	if res.NumDAGs < 1 {
		t.Fatal("no DAGs enumerated")
	}
	// The synthesized program must detect injected corruption.
	dirty := rel.Clone()
	mask, err := errgen.Inject(dirty, errgen.Options{Rate: 0.02, MinErrors: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	for i := 0; i < dirty.NumRows(); i++ {
		if len(res.Program.Detect(dirty.Row(i, nil))) > 0 && mask.RowDirty[i] {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("synthesized program detected none of the injected errors")
	}
}

func TestSynthesizeIdentityVsAux(t *testing.T) {
	rel := postalRel(t, 1500, 8)
	aux, err := Synthesize(rel, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	id, err := Synthesize(rel, Options{Seed: 8, IdentitySampler: true})
	if err != nil {
		t.Fatal(err)
	}
	if aux.Coverage < id.Coverage-0.05 {
		t.Fatalf("aux sampler (%g) should not trail identity (%g) badly", aux.Coverage, id.Coverage)
	}
}

func TestSynthesizeTooFewRows(t *testing.T) {
	rel := dataset.New("t", []string{"a"})
	rel.AppendRow([]string{"x"})
	if _, err := Synthesize(rel, Options{}); err == nil {
		t.Fatal("expected error for tiny relation")
	}
}

func TestSynthesizeCacheEffectiveAcrossMEC(t *testing.T) {
	rel := postalRel(t, 2000, 9)
	res, err := Synthesize(rel, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumDAGs > 1 && res.CacheHits == 0 {
		t.Fatalf("MEC of %d DAGs produced no cache hits", res.NumDAGs)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	rel := postalRel(t, 1000, 10)
	a, err := Synthesize(rel, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(rel, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := dsl.Format(a.Program, rel), dsl.Format(b.Program, rel)
	if fa != fb {
		t.Fatalf("synthesis not deterministic:\n%s\nvs\n%s", fa, fb)
	}
}
