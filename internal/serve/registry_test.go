package serve

import (
	"errors"
	"strings"
	"testing"

	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/dsl/compile"
	"github.com/guardrail-db/guardrail/internal/obs"
)

// TestLoadAndGet: a first load registers version 1 on the compiled
// engine with a nonzero fingerprint.
func TestLoadAndGet(t *testing.T) {
	r := NewRegistry(obs.New())
	e, changed, err := r.Load("postal", []byte(postalCSV), []byte(postalProg))
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Error("first load reported changed=false")
	}
	if e.Version != 1 || e.Fingerprint == 0 || e.CompileErr != "" {
		t.Errorf("entry = version %d fingerprint %d compileErr %q", e.Version, e.Fingerprint, e.CompileErr)
	}
	if e.EngineName() != "compiled" || e.Compiled == nil {
		t.Errorf("engine = %s, want compiled", e.EngineName())
	}
	got, ok := r.Get("postal")
	if !ok || got != e {
		t.Errorf("Get returned %p, want %p", got, e)
	}
	if names := r.Names(); len(names) != 1 || names[0] != "postal" {
		t.Errorf("Names = %v", names)
	}
}

// TestNoopReload: reloading byte-identical source keeps the live entry —
// same pointer, version unchanged, warmed engine preserved — and counts a
// serve.reload_noops instead of a serve.reloads.
func TestNoopReload(t *testing.T) {
	reg := obs.New()
	r := NewRegistry(reg)
	e1, _, err := r.Load("postal", []byte(postalCSV), []byte(postalProg))
	if err != nil {
		t.Fatal(err)
	}
	e2, changed, err := r.Load("postal", []byte(postalCSV), []byte(postalProg))
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("identical reload reported changed=true")
	}
	if e2 != e1 {
		t.Errorf("no-op reload replaced the entry: %p -> %p", e1, e2)
	}
	snap := reg.Snapshot()
	if snap.Counters["serve.reloads"] != 1 || snap.Counters["serve.reload_noops"] != 1 {
		t.Errorf("reloads=%d noops=%d, want 1/1", snap.Counters["serve.reloads"], snap.Counters["serve.reload_noops"])
	}
}

// TestSemanticNoopReload: the fingerprint is over the solver-canonical
// form, so spelling changes that do not change meaning — a duplicated or
// reordered condition atom, a dead branch — are no-op reloads.
// (Reordered *statements* are a real change: Rectify mutates the row
// sequentially, so statement order is semantics.)
func TestSemanticNoopReload(t *testing.T) {
	base := `GIVEN PostalCode ON City HAVING
  IF PostalCode = "94704" AND State = "CA" THEN City <- "Berkeley";
GIVEN City ON State HAVING
  IF City = "Berkeley" THEN State <- "CA";
`
	equivalents := map[string]string{
		"duplicated atom": `GIVEN PostalCode ON City HAVING
  IF PostalCode = "94704" AND State = "CA" AND PostalCode = "94704" THEN City <- "Berkeley";
GIVEN City ON State HAVING
  IF City = "Berkeley" THEN State <- "CA";
`,
		"reordered atoms": `GIVEN PostalCode ON City HAVING
  IF State = "CA" AND PostalCode = "94704" THEN City <- "Berkeley";
GIVEN City ON State HAVING
  IF City = "Berkeley" THEN State <- "CA";
`,
		"dead branch erased": `GIVEN PostalCode ON City HAVING
  IF PostalCode = "94704" AND State = "CA" THEN City <- "Berkeley";
  IF PostalCode = "94704" AND PostalCode = "94110" THEN City <- "Oakland";
GIVEN City ON State HAVING
  IF City = "Berkeley" THEN State <- "CA";
`,
	}
	for name, src := range equivalents {
		r := NewRegistry(obs.New())
		if _, _, err := r.Load("postal", []byte(postalCSV), []byte(base)); err != nil {
			t.Fatal(err)
		}
		_, changed, err := r.Load("postal", []byte(postalCSV), []byte(src))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if changed {
			t.Errorf("%s: semantically-equivalent reload reported changed=true", name)
		}
	}
}

// TestDictCollisionChangesFingerprint: two schema CSVs can intern
// different literals at the same dictionary codes, making the code-level
// canonical strings identical. The fingerprint must still differ — it
// hashes the decoded literal table, not just the codes.
func TestDictCollisionChangesFingerprint(t *testing.T) {
	schemaA := "PostalCode,City\n94704,Berkeley\n"
	progA := "GIVEN PostalCode ON City HAVING\n  IF PostalCode = \"94704\" THEN City <- \"Berkeley\";\n"
	schemaB := "PostalCode,City\n94704,Albany\n"
	progB := "GIVEN PostalCode ON City HAVING\n  IF PostalCode = \"94704\" THEN City <- \"Albany\";\n"

	r := NewRegistry(obs.New())
	e1, _, err := r.Load("postal", []byte(schemaA), []byte(progA))
	if err != nil {
		t.Fatal(err)
	}
	e2, changed, err := r.Load("postal", []byte(schemaB), []byte(progB))
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("reload with different literals at the same codes reported changed=false")
	}
	if e1.Fingerprint == e2.Fingerprint {
		t.Errorf("fingerprints collide across dictionary encodings: %016x", e1.Fingerprint)
	}
	if e2.Version != 2 {
		t.Errorf("version = %d, want 2", e2.Version)
	}
}

// TestCompileFallback: when compilation fails, the entry serves on the
// AST (fail-closed — the guard is never dropped), records why, and bumps
// serve.compile_fallbacks.
func TestCompileFallback(t *testing.T) {
	orig := compileFn
	compileFn = func(*dsl.Program, compile.Options) (*compile.Prog, *compile.Validation, error) {
		return nil, nil, errors.New("forced compile failure")
	}
	defer func() { compileFn = orig }()

	reg := obs.New()
	r := NewRegistry(reg)
	e, _, err := r.Load("postal", []byte(postalCSV), []byte(postalProg))
	if err != nil {
		t.Fatal(err)
	}
	if e.EngineName() != "ast" || e.Compiled != nil {
		t.Errorf("engine = %s, want ast fallback", e.EngineName())
	}
	if !strings.Contains(e.CompileErr, "forced compile failure") {
		t.Errorf("CompileErr = %q", e.CompileErr)
	}
	if n := reg.Snapshot().Counters["serve.compile_fallbacks"]; n != 1 {
		t.Errorf("serve.compile_fallbacks = %d, want 1", n)
	}

	// The AST path still detects: codes for 94704/Oakland in the fixture
	// schema.
	row := make([]int32, e.Schema.NumAttrs())
	pc, _ := e.Schema.Dict(0).Lookup("94704")
	city, _ := e.Schema.Dict(1).Lookup("Oakland")
	state, _ := e.Schema.Dict(2).Lookup("CA")
	row[0], row[1], row[2] = pc, city, state
	if vs := e.Detect(row, nil); len(vs) != 1 {
		t.Errorf("AST fallback Detect returned %d violations, want 1", len(vs))
	}
}

// TestLoadErrorsLeaveRegistryUntouched: parse and schema errors surface
// without disturbing the live entry.
func TestLoadErrorsLeaveRegistryUntouched(t *testing.T) {
	r := NewRegistry(obs.New())
	e1, _, err := r.Load("postal", []byte(postalCSV), []byte(postalProg))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Load("postal", []byte(postalCSV), []byte("GIVEN Bogus ON")); err == nil {
		t.Error("bad program source loaded without error")
	}
	if _, _, err := r.Load("postal", []byte("not,a\nvalid"), []byte(postalProg)); err == nil {
		t.Error("ragged schema CSV loaded without error")
	}
	if e, _ := r.Get("postal"); e != e1 {
		t.Errorf("failed load disturbed the live entry: %p -> %p", e1, e)
	}
}

// TestRemove: removal unregisters the name; a second remove reports
// absence.
func TestRemove(t *testing.T) {
	reg := obs.New()
	r := NewRegistry(reg)
	if _, _, err := r.Load("postal", []byte(postalCSV), []byte(postalProg)); err != nil {
		t.Fatal(err)
	}
	if !r.Remove("postal") {
		t.Error("Remove = false for a registered name")
	}
	if _, ok := r.Get("postal"); ok {
		t.Error("entry still live after Remove")
	}
	if r.Remove("postal") {
		t.Error("second Remove = true")
	}
	if n := reg.Snapshot().Gauges["serve.programs"]; n != 0 {
		t.Errorf("serve.programs = %d, want 0", n)
	}
}

// TestLoadFiles: the CLI's disk-based load path against the repository's
// example fixture.
func TestLoadFiles(t *testing.T) {
	r := NewRegistry(obs.New())
	e, changed, err := r.LoadFiles("postal",
		"../../examples/constraints/postal.csv", "../../examples/constraints/postal.gr")
	if err != nil {
		t.Fatal(err)
	}
	if !changed || e.EngineName() != "compiled" {
		t.Errorf("changed=%v engine=%s", changed, e.EngineName())
	}
	if _, _, err := r.LoadFiles("postal", "no-such.csv", "no-such.gr"); err == nil {
		t.Error("missing files loaded without error")
	}
}
