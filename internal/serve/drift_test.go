package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/guardrail-db/guardrail/internal/dataset"
)

func getDrift(t *testing.T, url string) driftResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/drift")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/drift status = %d\n%s", resp.StatusCode, body)
	}
	var out driftResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("/v1/drift body does not parse: %v\n%s", err, body)
	}
	return out
}

// TestDriftDisabled: without Drift config the endpoint stays mounted and
// reports the monitor off, and validation requests pay nothing.
func TestDriftDisabled(t *testing.T) {
	s, _ := newPostalServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, _ = postJSON(t, ts.URL+"/v1/check?dataset=postal", `{"PostalCode":"94704","City":"Berkeley","State":"CA"}`)
	out := getDrift(t, ts.URL)
	if out.Enabled || len(out.Datasets) != 0 {
		t.Fatalf("disabled monitor reported state: %+v", out)
	}
}

// TestDriftMonitorObservesRows: validated rows feed the per-dataset
// incremental driver; /v1/drift reports rows, windows, and the initial
// synthesis, and the drift.* counters land on the shared registry.
func TestDriftMonitorObservesRows(t *testing.T) {
	s, reg := newPostalServer(t, Config{
		Drift: DriftConfig{Enabled: true, WindowRows: 4, MaxWindows: 3},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// 9 rows via the streaming and single-row paths: 2 full windows of 4,
	// 1 row still filling.
	rows := strings.Repeat(`{"PostalCode":"94704","City":"Berkeley","State":"CA"}`+"\n", 8)
	resp, err := http.Post(ts.URL+"/v1/check?dataset=postal", "application/x-ndjson", strings.NewReader(rows))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	_, _ = postJSON(t, ts.URL+"/v1/check?dataset=postal", `{"PostalCode":"10001","City":"New York","State":"NY"}`)

	out := getDrift(t, ts.URL)
	if !out.Enabled || out.WindowRows != 4 || out.MaxWindows != 3 {
		t.Fatalf("drift config echo off: %+v", out)
	}
	if len(out.Datasets) != 1 {
		t.Fatalf("datasets = %+v, want one", out.Datasets)
	}
	d := out.Datasets[0]
	if d.Dataset != "postal" || d.Rows != 9 || d.Windows != 2 {
		t.Fatalf("monitor state = %+v, want postal/9 rows/2 windows", d)
	}
	if !d.Synthesized || d.Fingerprint == "" {
		t.Fatalf("first window did not synthesize: %+v", d)
	}
	if d.LastError != "" {
		t.Fatalf("monitor error: %s", d.LastError)
	}
	e, _ := s.Registry().Get("postal")
	if d.ProgramFingerprint != e.FingerprintHex() {
		t.Fatalf("monitor pinned to %s, served program is %s", d.ProgramFingerprint, e.FingerprintHex())
	}
	if got := reg.Counter("drift.windows").Value(); got != 2 {
		t.Fatalf("drift.windows = %d, want 2", got)
	}
}

// TestDriftMonitorResetsOnReload: a hot reload that changes the program
// restarts the dataset's monitor — drift is relative to the statistics
// behind the currently served constraints.
func TestDriftMonitorResetsOnReload(t *testing.T) {
	s, _ := newPostalServer(t, Config{
		Drift: DriftConfig{Enabled: true, WindowRows: 100},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		_, _ = postJSON(t, ts.URL+"/v1/check?dataset=postal", `{"PostalCode":"94704","City":"Berkeley","State":"CA"}`)
	}
	if d := getDrift(t, ts.URL).Datasets[0]; d.Rows != 3 {
		t.Fatalf("rows = %d, want 3", d.Rows)
	}

	// Reload with a semantically different program.
	short := "GIVEN PostalCode ON City HAVING\n  IF PostalCode = \"94704\" THEN City <- \"Berkeley\";\n"
	body, err := json.Marshal(map[string]string{"schema_csv": postalCSV, "program": short})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/programs/postal", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d", resp.StatusCode)
	}

	_, _ = postJSON(t, ts.URL+"/v1/check?dataset=postal", `{"PostalCode":"94704","City":"Berkeley","State":"CA"}`)
	d := getDrift(t, ts.URL).Datasets[0]
	if d.Rows != 1 {
		t.Fatalf("monitor did not reset on reload: %+v", d)
	}
	e, _ := s.Registry().Get("postal")
	if d.ProgramFingerprint != e.FingerprintHex() {
		t.Fatalf("monitor not re-pinned to the reloaded program: %+v", d)
	}
}

// TestCodecDistinctUnseenCodes is the regression test for the sentinel
// collision: the codec used to encode every out-of-dictionary value to
// the single code Cardinality(attr), making two different unseen strings
// equal under engine comparisons. Distinct unseen strings must get
// distinct per-request codes, and repeats of the same string must reuse
// theirs.
func TestCodecDistinctUnseenCodes(t *testing.T) {
	rel, err := dataset.FromCSV(strings.NewReader(postalCSV), "postal")
	if err != nil {
		t.Fatal(err)
	}
	city := rel.AttrIndex("City")
	card := int32(rel.Cardinality(city))

	buf := newRowBuf(rel.NumAttrs())
	a := buf.encode(rel, city, "Atlantis")
	b := buf.encode(rel, city, "El Dorado")
	if a == b {
		t.Fatalf("distinct unseen strings share code %d", a)
	}
	if a < card || b < card {
		t.Fatalf("unseen codes %d/%d collide with the dictionary (card %d)", a, b, card)
	}
	if again := buf.encode(rel, city, "Atlantis"); again != a {
		t.Fatalf("repeated unseen string moved: %d then %d", a, again)
	}
	if in, ok := rel.Dict(city).Lookup("Berkeley"); !ok || buf.encode(rel, city, "Berkeley") != in {
		t.Fatal("interned value no longer encodes to its dictionary code")
	}
	// Codes are per-request: a fresh buffer restarts the assignment, so
	// nothing leaks into the shared Entry or across requests.
	if first := newRowBuf(rel.NumAttrs()).encode(rel, city, "El Dorado"); first != card {
		t.Fatalf("fresh request first unseen code = %d, want %d", first, card)
	}

	// End to end through /v1/check: distinct unseen values in one batch
	// each decode back to their own raw string in the verdict stream, and
	// grown codes never match program literals (every row still flags
	// against its expected City).
	s, _ := newPostalServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rows := strings.Join([]string{
		`{"PostalCode":"94704","City":"Atlantis","State":"CA"}`,
		`{"PostalCode":"94704","City":"El Dorado","State":"CA"}`,
		`{"PostalCode":"94704","City":"Atlantis","State":"CA"}`,
	}, "\n") + "\n"
	resp, err := http.Post(ts.URL+"/v1/check?dataset=postal", "application/x-ndjson", strings.NewReader(rows))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 3 verdicts + summary:\n%s", len(lines), body)
	}
	want := []string{"Atlantis", "El Dorado", "Atlantis"}
	for i, raw := range want {
		var v verdict
		if err := json.Unmarshal([]byte(lines[i]), &v); err != nil {
			t.Fatal(err)
		}
		if !v.Flagged || len(v.Violations) != 1 {
			t.Fatalf("row %d: %+v, want one City violation", i, v)
		}
		if got := v.Violations[0]; got.Attr != "City" || got.Actual != raw || got.Expected != "Berkeley" {
			t.Fatalf("row %d violation = %+v, want City %s->Berkeley", i, got, raw)
		}
	}
}
