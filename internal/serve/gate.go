package serve

// gate is the bounded-concurrency admission controller: a channel
// pre-filled with slot indices. A request that cannot take a slot
// immediately is rejected with 429 rather than queued — under overload
// the daemon sheds load at the door instead of accumulating goroutines
// and request state until memory or tail latency gives out.
//
// The slot index doubles as a trace-lane ticket: at most one in-flight
// request holds a given slot, so writing that request's spans to lane
// slot+1 preserves the tracer's single-writer-per-lane invariant.
type gate struct {
	slots chan int
}

func newGate(n int) *gate {
	g := &gate{slots: make(chan int, n)}
	for i := 0; i < n; i++ {
		g.slots <- i
	}
	return g
}

// tryAcquire takes a slot without blocking; ok is false when the gate is
// saturated.
func (g *gate) tryAcquire() (slot int, ok bool) {
	select {
	case slot = <-g.slots:
		return slot, true
	default:
		return 0, false
	}
}

// release returns a slot taken by tryAcquire.
func (g *gate) release(slot int) {
	g.slots <- slot
}
