package serve

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"

	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/obs/debug"
)

// fingerprintHeader echoes the program version a response was computed
// with, so clients (and the hot-reload tests) can pin every verdict to
// exactly one registered version.
const fingerprintHeader = "X-Guardrail-Fingerprint"

// engineHeader reports which execution backend served the request.
const engineHeader = "X-Guardrail-Engine"

// apiViolation is the wire form of one constraint violation, decoded to
// schema names and string values.
type apiViolation struct {
	Stmt     int    `json:"stmt"`
	Attr     string `json:"attr"`
	Expected string `json:"expected"`
	Actual   string `json:"actual"`
}

// verdict is one row's NDJSON result line.
type verdict struct {
	Row        int               `json:"row"`
	Flagged    bool              `json:"flagged"`
	Violations []apiViolation    `json:"violations"`
	Changed    int               `json:"changed,omitempty"`
	Values     map[string]string `json:"values,omitempty"`
	Error      string            `json:"error,omitempty"`
}

// batchSummary is the final NDJSON line of a streaming response.
type batchSummary struct {
	Rows       int `json:"rows"`
	Flagged    int `json:"flagged"`
	Violations int `json:"violations"`
	Changed    int `json:"changed"`
}

// singleResponse is the /v1/check and /v1/rectify single-row JSON body.
type singleResponse struct {
	Dataset     string            `json:"dataset"`
	Fingerprint string            `json:"fingerprint"`
	Engine      string            `json:"engine"`
	Flagged     bool              `json:"flagged"`
	Violations  []apiViolation    `json:"violations"`
	Changed     int               `json:"changed,omitempty"`
	Row         map[string]string `json:"row,omitempty"`
}

func writeJSONError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics renders the shared obs registry in Prometheus text
// format on the service port itself, so the daemon is scrapeable without
// a separate -debug-addr. Ungated: liveness probes and scrapes must keep
// working while validation traffic saturates the gate.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	debug.WriteMetrics(w, s.cfg.Obs.Snapshot())
}

// resolveEntry picks the program for a validation request: the ?dataset
// query parameter, or the sole registered program when unambiguous.
func (s *Server) resolveEntry(w http.ResponseWriter, r *http.Request) (*Entry, bool) {
	name := r.URL.Query().Get("dataset")
	if name == "" {
		names := s.registry.Names()
		if len(names) == 1 {
			name = names[0]
		} else {
			s.metrics.errors.Inc()
			writeJSONError(w, http.StatusBadRequest, "dataset parameter required (registered: %s)", strings.Join(names, ", "))
			return nil, false
		}
	}
	e, ok := s.registry.Get(name)
	if !ok {
		s.metrics.errors.Inc()
		writeJSONError(w, http.StatusNotFound, "no program registered for dataset %q", name)
		return nil, false
	}
	return e, true
}

// handleValidate is the shared core of /v1/check and /v1/rectify. The
// entry is resolved once and used for the whole request, so every row of
// a batch is validated by the same program version even if a hot reload
// lands mid-stream.
func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request, rc *reqInfo, rectify bool) {
	// Record the requested dataset before resolution, so a 404's log
	// entry still says what the client asked for.
	rc.dataset = r.URL.Query().Get("dataset")
	e, ok := s.resolveEntry(w, r)
	if !ok {
		return
	}
	rc.dataset, rc.fingerprint, rc.engine = e.Name, e.FingerprintHex(), e.EngineName()
	w.Header().Set(fingerprintHeader, e.FingerprintHex())
	w.Header().Set(engineHeader, e.EngineName())
	rc.Scope.EventStr("serve.program", "fingerprint", e.FingerprintHex())

	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil {
		ct = mt
	}
	switch ct {
	case "application/x-ndjson", "application/ndjson", "application/jsonlines":
		s.streamNDJSON(w, r, e, rc, rectify)
	case "text/csv":
		s.streamCSV(w, r, e, rc, rectify)
	default:
		s.singleJSON(w, r, e, rc, rectify)
	}
}

// singleJSON validates one row sent as a JSON object keyed by attribute
// name. The body is size-limited by Config.MaxBody.
func (s *Server) singleJSON(w http.ResponseWriter, r *http.Request, e *Entry, rc *reqInfo, rectify bool) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBody())
	var row map[string]string
	if err := json.NewDecoder(body).Decode(&row); err != nil {
		s.metrics.errors.Inc()
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSONError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
			return
		}
		writeJSONError(w, http.StatusBadRequest, "decoding row: %v", err)
		return
	}
	buf := newRowBuf(e.Schema.NumAttrs())
	if err := buf.setFromMap(e.Schema, row); err != nil {
		s.metrics.errors.Inc()
		writeJSONError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.observeDrift(e, buf.raw)
	vs := e.Detect(buf.codes, nil)
	resp := singleResponse{
		Dataset:     e.Name,
		Fingerprint: e.FingerprintHex(),
		Engine:      e.EngineName(),
		Flagged:     len(vs) > 0,
		Violations:  s.decodeViolations(e, vs, buf.raw),
	}
	s.countRow(rc, resp.Flagged)
	if rectify {
		resp.Changed = e.RectifyRow(buf.codes)
		s.metrics.cellsChanged.Add(int64(resp.Changed))
		resp.Row = buf.decodeMap(e.Schema)
	}
	writeJSON(w, http.StatusOK, resp)
}

// countRow updates the per-request row tallies alongside the aggregate
// and dataset-labeled row counters. The labeled children are resolved
// once per request (a vec lookup allocates its joined key), keeping the
// per-row cost at plain atomic increments.
func (s *Server) countRow(rc *reqInfo, flagged bool) {
	if !rc.rowCounters {
		rc.rowCounters = true
		rc.rowsOKCounter = s.metrics.dsRows.With(rc.dataset, rc.endpoint, rc.engine, "ok")
		rc.rowsFlaggedCounter = s.metrics.dsRows.With(rc.dataset, rc.endpoint, rc.engine, "flagged")
	}
	rc.rowsIn++
	s.metrics.rows.Inc()
	if flagged {
		rc.rowsFlagged++
		s.metrics.flagged.Inc()
		rc.rowsFlaggedCounter.Inc()
	} else {
		rc.rowsOKCounter.Inc()
	}
}

// streamNDJSON validates a newline-delimited stream of JSON row objects,
// writing one verdict line per row and a final {"summary": ...} line.
// Rows are processed in constant memory as they arrive; the body is not
// size-limited.
func (s *Server) streamNDJSON(w http.ResponseWriter, r *http.Request, e *Entry, rc *reqInfo, rectify bool) {
	// HTTP/1.x is half-duplex by default: after the first response write
	// the server closes the request body, which would kill a batch whose
	// rows aren't fully buffered before the first verdict flushes.
	// NewResponseController (rather than a Flusher type assertion)
	// reaches the real writer through the telemetry wrapper's Unwrap.
	ctrl := http.NewResponseController(w)
	_ = ctrl.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	dec := json.NewDecoder(r.Body)
	enc := json.NewEncoder(w)
	buf := newRowBuf(e.Schema.NumAttrs())
	var vbuf []dsl.Violation
	var sum batchSummary
	for i := 0; ; i++ {
		var row map[string]string
		if err := dec.Decode(&row); err == io.EOF {
			break
		} else if err != nil {
			s.metrics.errors.Inc()
			_ = enc.Encode(verdict{Row: i, Violations: []apiViolation{}, Error: fmt.Sprintf("decoding row: %v", err)})
			break
		}
		if err := buf.setFromMap(e.Schema, row); err != nil {
			s.metrics.errors.Inc()
			_ = enc.Encode(verdict{Row: i, Violations: []apiViolation{}, Error: err.Error()})
			break
		}
		v := s.checkOne(e, buf, &vbuf, rc, rectify, i)
		if rectify {
			v.Values = buf.decodeMap(e.Schema)
		}
		sum.Rows++
		if v.Flagged {
			sum.Flagged++
		}
		sum.Violations += len(v.Violations)
		sum.Changed += v.Changed
		_ = enc.Encode(v)
		_ = ctrl.Flush()
	}
	_ = enc.Encode(struct {
		Summary batchSummary `json:"summary"`
	}{sum})
}

// streamCSV validates a CSV batch (header row first, columns in any
// order covering the schema). Check responses are NDJSON verdict lines
// like streamNDJSON; rectify responses are the repaired CSV — the
// streaming twin of `guardrail rectify -out`.
func (s *Server) streamCSV(w http.ResponseWriter, r *http.Request, e *Entry, rc *reqInfo, rectify bool) {
	ctrl := http.NewResponseController(w)
	_ = ctrl.EnableFullDuplex() // see streamNDJSON
	cr := csv.NewReader(r.Body)
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		s.metrics.errors.Inc()
		writeJSONError(w, http.StatusBadRequest, "reading CSV header: %v", err)
		return
	}
	header = append([]string(nil), header...) // ReuseRecord overwrites it
	colOf, err := mapHeader(e.Schema, header)
	if err != nil {
		s.metrics.errors.Inc()
		writeJSONError(w, http.StatusBadRequest, "%v", err)
		return
	}

	var cw *csv.Writer
	var enc *json.Encoder
	if rectify {
		w.Header().Set("Content-Type", "text/csv")
		cw = csv.NewWriter(w)
		if err := cw.Write(header); err != nil {
			return
		}
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc = json.NewEncoder(w)
	}

	buf := newRowBuf(e.Schema.NumAttrs())
	out := make([]string, len(header))
	var vbuf []dsl.Violation
	var sum batchSummary
	for i := 0; ; i++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil || len(rec) != len(header) {
			s.metrics.errors.Inc()
			msg := fmt.Sprintf("row %d has %d fields, want %d", i, len(rec), len(header))
			if err != nil {
				msg = fmt.Sprintf("reading CSV row %d: %v", i, err)
			}
			if enc != nil {
				_ = enc.Encode(verdict{Row: i, Violations: []apiViolation{}, Error: msg})
			}
			break
		}
		buf.setFromRecord(e.Schema, colOf, rec)
		v := s.checkOne(e, buf, &vbuf, rc, rectify, i)
		sum.Rows++
		if v.Flagged {
			sum.Flagged++
		}
		sum.Violations += len(v.Violations)
		sum.Changed += v.Changed
		if rectify {
			for c := range rec {
				a := colOf[c]
				out[c] = decodeCell(e.Schema, a, buf.codes[a], buf.raw[a])
			}
			if err := cw.Write(out); err != nil {
				return
			}
		} else {
			_ = enc.Encode(v)
			_ = ctrl.Flush()
		}
	}
	if rectify {
		cw.Flush()
		return
	}
	_ = enc.Encode(struct {
		Summary batchSummary `json:"summary"`
	}{sum})
}

// checkOne detects (and under rectify repairs) the row in buf, updating
// the serve.* row counters and the request's row tallies.
func (s *Server) checkOne(e *Entry, buf *rowBuf, vbuf *[]dsl.Violation, rc *reqInfo, rectify bool, i int) verdict {
	s.observeDrift(e, buf.raw)
	*vbuf = e.Detect(buf.codes, *vbuf)
	v := verdict{Row: i, Flagged: len(*vbuf) > 0, Violations: s.decodeViolations(e, *vbuf, buf.raw)}
	s.countRow(rc, v.Flagged)
	if rectify {
		v.Changed = e.RectifyRow(buf.codes)
		s.metrics.cellsChanged.Add(int64(v.Changed))
	}
	return v
}

// decodeViolations renders violations with schema attribute names and
// string values. Expected values are always program literals (interned),
// actual values fall back to the raw client string for codes outside the
// dictionary.
func (s *Server) decodeViolations(e *Entry, vs []dsl.Violation, raw []string) []apiViolation {
	out := make([]apiViolation, 0, len(vs))
	for _, v := range vs {
		out = append(out, apiViolation{
			Stmt:     v.Stmt,
			Attr:     e.Schema.Attr(v.Attr),
			Expected: e.Schema.Dict(v.Attr).Value(v.Expected),
			Actual:   decodeCell(e.Schema, v.Attr, v.Actual, raw[v.Attr]),
		})
	}
	s.metrics.violations.Add(int64(len(vs)))
	return out
}

// programInfo is the wire form of one registry entry.
type programInfo struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	Engine      string `json:"engine"`
	Statements  int    `json:"statements"`
	Attrs       int    `json:"attrs"`
	Version     int    `json:"version"`
	LoadedAt    string `json:"loaded_at"`
	CompileErr  string `json:"compile_error,omitempty"`
}

func infoOf(e *Entry) programInfo {
	return programInfo{
		Name:        e.Name,
		Fingerprint: e.FingerprintHex(),
		Engine:      e.EngineName(),
		Statements:  len(e.Program.Stmts),
		Attrs:       e.Schema.NumAttrs(),
		Version:     e.Version,
		LoadedAt:    e.LoadedAt.UTC().Format("2006-01-02T15:04:05.000Z"),
		CompileErr:  e.CompileErr,
	}
}

func (s *Server) handleProgramList(w http.ResponseWriter, _ *http.Request, _ *reqInfo) {
	entries := s.registry.Entries()
	infos := make([]programInfo, 0, len(entries))
	for _, e := range entries {
		infos = append(infos, infoOf(e))
	}
	writeJSON(w, http.StatusOK, struct {
		Programs []programInfo `json:"programs"`
	}{infos})
}

func (s *Server) handleProgramGet(w http.ResponseWriter, r *http.Request, _ *reqInfo) {
	e, ok := s.registry.Get(r.PathValue("name"))
	if !ok {
		s.metrics.errors.Inc()
		writeJSONError(w, http.StatusNotFound, "no program registered for dataset %q", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		programInfo
		Program string   `json:"program"`
		Schema  []string `json:"schema"`
	}{infoOf(e), dsl.Format(e.Program, e.Schema), e.Schema.Attrs()})
}

// handleProgramPut hot-reloads a program: the body carries the schema CSV
// and the program source, and the registry swap is atomic — requests
// admitted before the swap finish on the version they resolved.
func (s *Server) handleProgramPut(w http.ResponseWriter, r *http.Request, rc *reqInfo) {
	name := r.PathValue("name")
	rc.dataset = name
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBody())
	var req struct {
		SchemaCSV string `json:"schema_csv"`
		Program   string `json:"program"`
	}
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.metrics.errors.Inc()
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSONError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
			return
		}
		writeJSONError(w, http.StatusBadRequest, "decoding program upload: %v", err)
		return
	}
	if req.SchemaCSV == "" || req.Program == "" {
		s.metrics.errors.Inc()
		writeJSONError(w, http.StatusBadRequest, "schema_csv and program are both required")
		return
	}
	e, changed, err := s.registry.Load(name, []byte(req.SchemaCSV), []byte(req.Program))
	if err != nil {
		s.metrics.errors.Inc()
		writeJSONError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	rc.fingerprint, rc.engine = e.FingerprintHex(), e.EngineName()
	rc.Scope.EventStr("serve.reload", "fingerprint", e.FingerprintHex())
	w.Header().Set(fingerprintHeader, e.FingerprintHex())
	writeJSON(w, http.StatusOK, struct {
		programInfo
		Changed bool `json:"changed"`
	}{infoOf(e), changed})
}

func (s *Server) handleProgramDelete(w http.ResponseWriter, r *http.Request, rc *reqInfo) {
	name := r.PathValue("name")
	rc.dataset = name
	if !s.registry.Remove(name) {
		s.metrics.errors.Inc()
		writeJSONError(w, http.StatusNotFound, "no program registered for dataset %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": name})
}
