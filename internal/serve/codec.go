package serve

import (
	"fmt"

	"github.com/guardrail-db/guardrail/internal/dataset"
)

// The codec encodes request rows against an entry's frozen schema without
// interning. core.Guard.StreamCSV interns unseen values into its schema's
// dictionaries, which is fine for a single-owner CLI pass but a data race
// for concurrent requests sharing one Entry. Instead, values absent from
// the dictionary get per-request codes starting at Cardinality(attr) —
// one past the last interned code, a fresh code per distinct raw string.
// Distinct codes matter: collapsing every unseen value onto one sentinel
// made two different unseen strings equal under engine comparisons,
// which a multi-row window or any future cross-attribute predicate could
// observe. Grown codes are sound for guard evaluation: program literals
// are interned, so their codes are strictly below Cardinality(attr), and
// the compiled engine's dispatch short-circuits any code beyond its
// compiled radix to no-match. The raw strings are kept alongside so
// responses can decode grown codes back to what the client sent.

// decodeCell renders a code back to its string value. raw is the value
// the client originally sent for the attribute, which is what an
// out-of-dictionary code decodes to; Missing decodes to "" (the CSV
// round-trip form, matching StreamCSV output).
func decodeCell(schema *dataset.Relation, attr int, code int32, raw string) string {
	if code == dataset.Missing {
		return ""
	}
	if int(code) < schema.Cardinality(attr) {
		return schema.Dict(attr).Value(code)
	}
	return raw
}

// rowBuf holds one request row in both encoded and raw form, reused
// across the rows of a streaming request. It also owns the request's
// out-of-dictionary code assignments: the buffer is per-request, so the
// grown codes never leak between requests or into the shared Entry.
type rowBuf struct {
	codes []int32
	raw   []string
	// unk maps each attribute's unseen raw strings to their per-request
	// codes, allocated lazily; repeats of the same string across a
	// streaming request reuse their code.
	unk []map[string]int32
}

func newRowBuf(n int) *rowBuf {
	return &rowBuf{codes: make([]int32, n), raw: make([]string, n), unk: make([]map[string]int32, n)}
}

// encode encodes one cell: "" is Missing, interned values keep their
// code, and each distinct unseen string gets the next code past the
// frozen dictionary.
func (b *rowBuf) encode(schema *dataset.Relation, attr int, v string) int32 {
	if v == "" {
		return dataset.Missing
	}
	if c, ok := schema.Dict(attr).Lookup(v); ok {
		return c
	}
	m := b.unk[attr]
	if m == nil {
		m = make(map[string]int32, 1)
		b.unk[attr] = m
	}
	if c, ok := m[v]; ok {
		return c
	}
	c := int32(schema.Cardinality(attr) + len(m))
	m[v] = c
	return c
}

// setFromMap fills the buffer from a JSON object keyed by attribute name.
// Absent attributes encode as Missing; unknown keys are an error so a
// typo'd column name cannot silently pass validation.
func (b *rowBuf) setFromMap(schema *dataset.Relation, m map[string]string) error {
	for k := range m {
		if schema.AttrIndex(k) < 0 {
			return fmt.Errorf("unknown attribute %q", k)
		}
	}
	for i := 0; i < schema.NumAttrs(); i++ {
		v := m[schema.Attr(i)]
		b.raw[i] = v
		b.codes[i] = b.encode(schema, i, v)
	}
	return nil
}

// setFromRecord fills the buffer from a CSV record whose column i maps to
// schema attribute colOf[i].
func (b *rowBuf) setFromRecord(schema *dataset.Relation, colOf []int, rec []string) {
	for i, v := range rec {
		a := colOf[i]
		b.raw[a] = v
		b.codes[a] = b.encode(schema, a, v)
	}
}

// decodeMap renders the (possibly rectified) codes as an attribute-keyed
// map for JSON responses.
func (b *rowBuf) decodeMap(schema *dataset.Relation) map[string]string {
	out := make(map[string]string, len(b.codes))
	for i, c := range b.codes {
		out[schema.Attr(i)] = decodeCell(schema, i, c, b.raw[i])
	}
	return out
}

// mapHeader maps CSV header columns onto schema attributes, rejecting
// unknown and duplicate names. Width match plus no-duplicates guarantees
// every schema attribute is covered (same contract as core.StreamCSV).
func mapHeader(schema *dataset.Relation, header []string) ([]int, error) {
	if len(header) != schema.NumAttrs() {
		return nil, fmt.Errorf("stream has %d columns, schema has %d", len(header), schema.NumAttrs())
	}
	colOf := make([]int, len(header))
	seen := make([]bool, schema.NumAttrs())
	for i, h := range header {
		idx := schema.AttrIndex(h)
		if idx < 0 {
			return nil, fmt.Errorf("stream column %q not in schema", h)
		}
		if seen[idx] {
			return nil, fmt.Errorf("duplicate stream column %q", h)
		}
		seen[idx] = true
		colOf[i] = idx
	}
	return colOf, nil
}
