package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"github.com/guardrail-db/guardrail/internal/obs"
	"github.com/guardrail-db/guardrail/internal/obs/trace"
)

// Config parameterizes a Server. The zero value of each field selects a
// production-safe default.
type Config struct {
	// Registry holds the programs to serve. Required.
	Registry *Registry
	// MaxInflight caps concurrently-admitted validation requests; excess
	// requests get 429. Default 64.
	MaxInflight int
	// MaxBody bounds single-row JSON and program-upload request bodies in
	// bytes (streaming batch bodies are unbounded — they are processed
	// row by row in constant memory). Default 1 MiB.
	MaxBody int64
	// DrainTimeout bounds how long Run waits for in-flight requests after
	// its context is cancelled before force-closing. Default 10s.
	DrainTimeout time.Duration
	// Obs receives the serve.* metrics; nil disables instrumentation.
	Obs *obs.Registry
	// Tracer records one span per admitted request when non-nil. Each
	// request's spans go to lane slot+1 (the admission slot is exclusive
	// while the request is in flight, preserving single-writer lanes);
	// slots beyond the tracer's lane count are served untraced.
	Tracer *trace.Tracer
	// Drift configures the observed-row drift monitor behind GET
	// /v1/drift. Disabled by the zero value.
	Drift DriftConfig
	// AccessLog receives one NDJSON record per gated request — including
	// 429 rejections — with request ID, dataset, row counts, admission
	// wait, and latency. Nil disables access logging.
	AccessLog io.Writer
	// FlightSize caps the flight recorder's recent-request ring; 0
	// selects 256, negative disables the recorder entirely.
	FlightSize int
	// FlightDump, when non-nil, receives an indented JSON flight dump
	// each time the process gets SIGQUIT while Run is live.
	FlightDump io.Writer
}

func (c Config) maxInflight() int {
	if c.MaxInflight > 0 {
		return c.MaxInflight
	}
	return 64
}

func (c Config) maxBody() int64 {
	if c.MaxBody > 0 {
		return c.MaxBody
	}
	return 1 << 20
}

func (c Config) drainTimeout() time.Duration {
	if c.DrainTimeout > 0 {
		return c.DrainTimeout
	}
	return 10 * time.Second
}

// serveMetrics holds the server's pre-resolved metric handles; nil
// handles (from a nil registry) make every update a free no-op.
//
// The unlabeled serve.* counters are the stable aggregate families the
// run-report and CI assert on; the labeled families alongside them split
// the same traffic by dimension. Request latencies live in exact
// mergeable histograms (obs.Hist) — lock-free on the hot path, quantiles
// over every request ever served — while CLI pipeline stages keep the
// bounded-ring Histogram.
type serveMetrics struct {
	requests     *obs.Counter
	rows         *obs.Counter
	flagged      *obs.Counter
	violations   *obs.Counter
	cellsChanged *obs.Counter
	rejected     *obs.Counter
	errors       *obs.Counter
	logDrops     *obs.Counter
	inflight     *obs.Gauge
	histCheck    *obs.Hist
	histRectify  *obs.Hist
	histPrograms *obs.Hist
	histDrift    *obs.Hist
	epRequests   *obs.CounterVec   // {endpoint, status}
	epRejected   *obs.CounterVec   // {endpoint}
	dsRows       *obs.CounterVec   // {dataset, endpoint, engine, verdict}
	latency      *obs.HistogramVec // {dataset, endpoint, engine}
}

// Server is the validation daemon: an http.Handler plus the lifecycle
// that runs it with backpressure and graceful drain.
type Server struct {
	cfg      Config
	registry *Registry
	gate     *gate
	mux      *http.ServeMux
	http     *http.Server
	metrics  serveMetrics
	drift    *driftMonitor
	access   *accessLogger
	flight   *flightRecorder
}

// New builds a Server from cfg. The handler is ready immediately (tests
// mount Handler() on httptest); Run adds the listener lifecycle.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry(cfg.Obs)
	}
	reg := cfg.Obs
	s := &Server{
		cfg:      cfg,
		registry: cfg.Registry,
		gate:     newGate(cfg.maxInflight()),
		mux:      http.NewServeMux(),
		metrics: serveMetrics{
			requests:     reg.Counter("serve.requests"),
			rows:         reg.Counter("serve.rows"),
			flagged:      reg.Counter("serve.flagged"),
			violations:   reg.Counter("serve.violations"),
			cellsChanged: reg.Counter("serve.cells_changed"),
			rejected:     reg.Counter("serve.rejected"),
			errors:       reg.Counter("serve.errors"),
			logDrops:     reg.Counter("serve.accesslog.drops"),
			inflight:     reg.Gauge("serve.inflight"),
			histCheck:    reg.Exact("serve.request.check"),
			histRectify:  reg.Exact("serve.request.rectify"),
			histPrograms: reg.Exact("serve.request.programs"),
			histDrift:    reg.Exact("serve.request.drift"),
			epRequests:   reg.CounterVec("serve.endpoint.requests", "endpoint", "status"),
			epRejected:   reg.CounterVec("serve.endpoint.rejected", "endpoint"),
			dsRows:       reg.CounterVec("serve.dataset.rows", "dataset", "endpoint", "engine", "verdict"),
			latency:      reg.HistogramVec("serve.request.latency", "dataset", "endpoint", "engine"),
		},
	}
	if cfg.Drift.Enabled {
		s.drift = newDriftMonitor(cfg.Drift)
	}
	s.access = newAccessLogger(cfg.AccessLog, s.metrics.logDrops)
	s.flight = newFlightRecorder(cfg.FlightSize)
	s.routes()
	s.http = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	return s
}

// Handler returns the daemon's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the program registry the server validates against.
func (s *Server) Registry() *Registry { return s.registry }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/flight", s.handleFlight)
	s.mux.Handle("POST /v1/check", s.gated("check", s.metrics.histCheck,
		func(w http.ResponseWriter, r *http.Request, rc *reqInfo) { s.handleValidate(w, r, rc, false) }))
	s.mux.Handle("POST /v1/rectify", s.gated("rectify", s.metrics.histRectify,
		func(w http.ResponseWriter, r *http.Request, rc *reqInfo) { s.handleValidate(w, r, rc, true) }))
	s.mux.Handle("GET /v1/drift", s.gated("drift", s.metrics.histDrift, s.handleDrift))
	s.mux.Handle("GET /v1/programs", s.gated("programs", s.metrics.histPrograms, s.handleProgramList))
	s.mux.Handle("GET /v1/programs/{name}", s.gated("programs", s.metrics.histPrograms, s.handleProgramGet))
	s.mux.Handle("PUT /v1/programs/{name}", s.gated("programs", s.metrics.histPrograms, s.handleProgramPut))
	s.mux.Handle("POST /v1/programs/{name}", s.gated("programs", s.metrics.histPrograms, s.handleProgramPut))
	s.mux.Handle("DELETE /v1/programs/{name}", s.gated("programs", s.metrics.histPrograms, s.handleProgramDelete))
}

// gated wraps a handler with the admission gate, per-request telemetry
// (exact latency histograms, labeled counters, access log, flight
// recorder), and — when tracing — a per-request span on the slot's lane.
//
// The admission slot doubles as the histogram shard ticket: at most one
// in-flight request holds a slot, so ObserveShard(slot) gives each
// concurrent request its own cache line with zero coordination, the same
// single-writer discipline the tracer's lanes use. Rejected requests
// (429) never hold a slot and are observed through the access log and
// labeled counters only — the latency histograms measure served work.
func (s *Server) gated(endpoint string, hist *obs.Hist, h func(http.ResponseWriter, *http.Request, *reqInfo)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rc := &reqInfo{endpoint: endpoint, id: requestID(r), method: r.Method, path: r.URL.Path}
		w.Header().Set(requestHeader, rc.id)
		sw := &statusWriter{ResponseWriter: w}
		slot, ok := s.gate.tryAcquire()
		rc.waitNS = int64(time.Since(t0))
		if !ok {
			s.metrics.rejected.Inc()
			s.metrics.epRejected.With(endpoint).Inc()
			sw.Header().Set("Retry-After", "1")
			writeJSONError(sw, http.StatusTooManyRequests, "server at max in-flight requests")
			s.finishRequest(rc, sw, t0)
			return
		}
		func() {
			defer s.gate.release(slot)
			s.metrics.inflight.Add(1)
			defer s.metrics.inflight.Add(-1)
			s.metrics.requests.Inc()

			sc := s.requestScope(slot)
			sp := sc.Start("serve."+endpoint).Str("method", r.Method).Str("path", r.URL.Path).Str("request", rc.id)
			defer sp.End()
			rc.Scope = sc.Under(sp)
			rc.slot = slot
			h(sw, r, rc)

			rc.latencyNS = int64(time.Since(t0))
			hist.ObserveShard(slot, rc.latencyNS)
			s.metrics.latency.With(rc.dataset, endpoint, rc.engine).ObserveShard(slot, rc.latencyNS)
		}()
		s.finishRequest(rc, sw, t0)
	})
}

// finishRequest turns a completed (or rejected) request into its
// telemetry records: the per-endpoint/status counter, the access-log
// line, and the flight-recorder entry.
func (s *Server) finishRequest(rc *reqInfo, sw *statusWriter, t0 time.Time) {
	if rc.latencyNS == 0 {
		rc.latencyNS = int64(time.Since(t0))
	}
	s.metrics.epRequests.With(rc.endpoint, strconv.Itoa(sw.Status())).Inc()
	if s.access == nil && s.flight == nil {
		return
	}
	rec := reqRecord{
		Time:        t0.UTC().Format(time.RFC3339Nano),
		ID:          rc.id,
		Method:      rc.method,
		Path:        rc.path,
		Endpoint:    rc.endpoint,
		Dataset:     rc.dataset,
		Fingerprint: rc.fingerprint,
		Engine:      rc.engine,
		Status:      sw.Status(),
		RowsIn:      rc.rowsIn,
		RowsFlagged: rc.rowsFlagged,
		Bytes:       sw.bytes,
		WaitNS:      rc.waitNS,
		LatencyNS:   rc.latencyNS,
		Error:       sw.errNote(),
	}
	s.access.log(rec)
	s.flight.record(rec)
}

// requestScope returns the trace scope for the request holding slot, or
// the zero (disabled) scope when untraced.
func (s *Server) requestScope(slot int) trace.Scope {
	tr := s.cfg.Tracer
	if tr == nil || slot+1 >= tr.NumLanes() {
		return trace.Scope{}
	}
	return tr.Root().OnLane(tr.Lane(slot + 1))
}

// Run serves on ln until ctx is cancelled, then drains: the listener
// closes, in-flight requests get up to DrainTimeout to finish, and only
// then does Run return. A nil return means every admitted request
// completed — the clean-drain contract the CI serve-e2e job asserts. An
// exceeded drain deadline force-closes remaining connections and returns
// an error.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	if s.cfg.FlightDump != nil {
		// Flight-dump-on-SIGQUIT: the classic "what was the daemon just
		// doing" signal. The watcher lives exactly as long as Run — after
		// ctx cancels, signal delivery reverts to the default disposition.
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		defer signal.Stop(quit)
		go func() { // nakedgo-exempt package: watcher spans Run's lifetime
			for {
				select {
				case <-quit:
					s.flight.writeTo(s.cfg.FlightDump)
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	errc := make(chan error, 1)
	go func() { errc <- s.http.Serve(ln) }() // nakedgo-exempt package: the goroutine spans the server's lifetime

	select {
	case err := <-errc:
		// The listener failed before shutdown was requested.
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.drainTimeout())
	defer cancel()
	if err := s.http.Shutdown(sctx); err != nil {
		_ = s.http.Close()
		<-errc
		return fmt.Errorf("serve: drain deadline exceeded: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}
