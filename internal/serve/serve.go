package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"github.com/guardrail-db/guardrail/internal/obs"
	"github.com/guardrail-db/guardrail/internal/obs/trace"
)

// Config parameterizes a Server. The zero value of each field selects a
// production-safe default.
type Config struct {
	// Registry holds the programs to serve. Required.
	Registry *Registry
	// MaxInflight caps concurrently-admitted validation requests; excess
	// requests get 429. Default 64.
	MaxInflight int
	// MaxBody bounds single-row JSON and program-upload request bodies in
	// bytes (streaming batch bodies are unbounded — they are processed
	// row by row in constant memory). Default 1 MiB.
	MaxBody int64
	// DrainTimeout bounds how long Run waits for in-flight requests after
	// its context is cancelled before force-closing. Default 10s.
	DrainTimeout time.Duration
	// Obs receives the serve.* metrics; nil disables instrumentation.
	Obs *obs.Registry
	// Tracer records one span per admitted request when non-nil. Each
	// request's spans go to lane slot+1 (the admission slot is exclusive
	// while the request is in flight, preserving single-writer lanes);
	// slots beyond the tracer's lane count are served untraced.
	Tracer *trace.Tracer
	// Drift configures the observed-row drift monitor behind GET
	// /v1/drift. Disabled by the zero value.
	Drift DriftConfig
}

func (c Config) maxInflight() int {
	if c.MaxInflight > 0 {
		return c.MaxInflight
	}
	return 64
}

func (c Config) maxBody() int64 {
	if c.MaxBody > 0 {
		return c.MaxBody
	}
	return 1 << 20
}

func (c Config) drainTimeout() time.Duration {
	if c.DrainTimeout > 0 {
		return c.DrainTimeout
	}
	return 10 * time.Second
}

// serveMetrics holds the server's pre-resolved metric handles; nil
// handles (from a nil registry) make every update a free no-op.
type serveMetrics struct {
	requests     *obs.Counter
	rows         *obs.Counter
	flagged      *obs.Counter
	violations   *obs.Counter
	cellsChanged *obs.Counter
	rejected     *obs.Counter
	errors       *obs.Counter
	inflight     *obs.Gauge
	histCheck    *obs.Histogram
	histRectify  *obs.Histogram
	histPrograms *obs.Histogram
	histDrift    *obs.Histogram
}

// Server is the validation daemon: an http.Handler plus the lifecycle
// that runs it with backpressure and graceful drain.
type Server struct {
	cfg      Config
	registry *Registry
	gate     *gate
	mux      *http.ServeMux
	http     *http.Server
	metrics  serveMetrics
	drift    *driftMonitor
}

// New builds a Server from cfg. The handler is ready immediately (tests
// mount Handler() on httptest); Run adds the listener lifecycle.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry(cfg.Obs)
	}
	reg := cfg.Obs
	s := &Server{
		cfg:      cfg,
		registry: cfg.Registry,
		gate:     newGate(cfg.maxInflight()),
		mux:      http.NewServeMux(),
		metrics: serveMetrics{
			requests:     reg.Counter("serve.requests"),
			rows:         reg.Counter("serve.rows"),
			flagged:      reg.Counter("serve.flagged"),
			violations:   reg.Counter("serve.violations"),
			cellsChanged: reg.Counter("serve.cells_changed"),
			rejected:     reg.Counter("serve.rejected"),
			errors:       reg.Counter("serve.errors"),
			inflight:     reg.Gauge("serve.inflight"),
			histCheck:    reg.Histogram("serve.request.check"),
			histRectify:  reg.Histogram("serve.request.rectify"),
			histPrograms: reg.Histogram("serve.request.programs"),
			histDrift:    reg.Histogram("serve.request.drift"),
		},
	}
	if cfg.Drift.Enabled {
		s.drift = newDriftMonitor(cfg.Drift)
	}
	s.routes()
	s.http = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	return s
}

// Handler returns the daemon's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the program registry the server validates against.
func (s *Server) Registry() *Registry { return s.registry }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.Handle("POST /v1/check", s.gated("check", s.metrics.histCheck,
		func(w http.ResponseWriter, r *http.Request, sc trace.Scope) { s.handleValidate(w, r, sc, false) }))
	s.mux.Handle("POST /v1/rectify", s.gated("rectify", s.metrics.histRectify,
		func(w http.ResponseWriter, r *http.Request, sc trace.Scope) { s.handleValidate(w, r, sc, true) }))
	s.mux.Handle("GET /v1/drift", s.gated("drift", s.metrics.histDrift, s.handleDrift))
	s.mux.Handle("GET /v1/programs", s.gated("programs", s.metrics.histPrograms, s.handleProgramList))
	s.mux.Handle("GET /v1/programs/{name}", s.gated("programs", s.metrics.histPrograms, s.handleProgramGet))
	s.mux.Handle("PUT /v1/programs/{name}", s.gated("programs", s.metrics.histPrograms, s.handleProgramPut))
	s.mux.Handle("POST /v1/programs/{name}", s.gated("programs", s.metrics.histPrograms, s.handleProgramPut))
	s.mux.Handle("DELETE /v1/programs/{name}", s.gated("programs", s.metrics.histPrograms, s.handleProgramDelete))
}

// gated wraps a handler with the admission gate, the per-endpoint latency
// histogram, and (when tracing) a per-request span on the slot's lane.
func (s *Server) gated(endpoint string, hist *obs.Histogram, h func(http.ResponseWriter, *http.Request, trace.Scope)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		slot, ok := s.gate.tryAcquire()
		if !ok {
			s.metrics.rejected.Inc()
			w.Header().Set("Retry-After", "1")
			writeJSONError(w, http.StatusTooManyRequests, "server at max in-flight requests")
			return
		}
		defer s.gate.release(slot)
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		s.metrics.requests.Inc()

		sc := s.requestScope(slot)
		sp := sc.Start("serve."+endpoint).Str("method", r.Method).Str("path", r.URL.Path)
		defer sp.End()
		t := hist.Start()
		defer t.Stop()
		h(w, r, sc.Under(sp))
	})
}

// requestScope returns the trace scope for the request holding slot, or
// the zero (disabled) scope when untraced.
func (s *Server) requestScope(slot int) trace.Scope {
	tr := s.cfg.Tracer
	if tr == nil || slot+1 >= tr.NumLanes() {
		return trace.Scope{}
	}
	return tr.Root().OnLane(tr.Lane(slot + 1))
}

// Run serves on ln until ctx is cancelled, then drains: the listener
// closes, in-flight requests get up to DrainTimeout to finish, and only
// then does Run return. A nil return means every admitted request
// completed — the clean-drain contract the CI serve-e2e job asserts. An
// exceeded drain deadline force-closes remaining connections and returns
// an error.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	errc := make(chan error, 1)
	go func() { errc <- s.http.Serve(ln) }() // nakedgo-exempt package: the goroutine spans the server's lifetime

	select {
	case err := <-errc:
		// The listener failed before shutdown was requested.
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.drainTimeout())
	defer cancel()
	if err := s.http.Shutdown(sctx); err != nil {
		_ = s.http.Close()
		<-errc
		return fmt.Errorf("serve: drain deadline exceeded: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}
