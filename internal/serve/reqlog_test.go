package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing the access
// log from concurrent handlers.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func decodeAccessLog(t *testing.T, raw string) []reqRecord {
	t.Helper()
	var out []reqRecord
	for _, line := range strings.Split(strings.TrimRight(raw, "\n"), "\n") {
		if line == "" {
			continue
		}
		var rec reqRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("access log line %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

// TestAccessLog: every gated request writes one NDJSON record carrying
// the request ID, dataset, program fingerprint, row counts, and latency.
func TestAccessLog(t *testing.T) {
	var buf syncBuffer
	s, _ := newPostalServer(t, Config{AccessLog: &buf})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, err := http.NewRequest("POST", ts.URL+"/v1/check?dataset=postal",
		strings.NewReader(`{"PostalCode":"94704","City":"Oakland"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(requestHeader, "client-id-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if got := resp.Header.Get(requestHeader); got != "client-id-1" {
		t.Errorf("request header echo = %q, want client-id-1", got)
	}

	// Batch: 3 NDJSON rows, one flagged.
	batch := `{"PostalCode":"94704","City":"Berkeley","State":"CA"}
{"PostalCode":"94110","City":"San Francisco","State":"CA"}
{"PostalCode":"94704","City":"Oakland","State":"CA"}
`
	bresp, err := http.Post(ts.URL+"/v1/check?dataset=postal", "application/x-ndjson", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, bresp.Body)
	_ = bresp.Body.Close()

	recs := decodeAccessLog(t, buf.String())
	if len(recs) != 2 {
		t.Fatalf("access log has %d records, want 2:\n%s", len(recs), buf.String())
	}
	one := recs[0]
	if one.ID != "client-id-1" || one.Endpoint != "check" || one.Dataset != "postal" ||
		one.Status != 200 || one.RowsIn != 1 || one.RowsFlagged != 1 {
		t.Errorf("single-row record = %+v", one)
	}
	if one.Fingerprint == "" || one.Engine == "" || one.LatencyNS <= 0 || one.Bytes <= 0 {
		t.Errorf("record missing fingerprint/engine/latency/bytes: %+v", one)
	}
	two := recs[1]
	if two.RowsIn != 3 || two.RowsFlagged != 1 {
		t.Errorf("batch record rows = %d/%d, want 3/1", two.RowsIn, two.RowsFlagged)
	}
	if two.ID == "" || two.ID == one.ID {
		t.Errorf("generated ID %q should be unique and non-empty", two.ID)
	}
}

// TestAccessLogRejected: a 429 shed at the gate still produces an access
// log record (status 429, error note) — rejections are exactly the
// traffic an operator greps for.
func TestAccessLogRejected(t *testing.T) {
	var buf syncBuffer
	s, reg := newPostalServer(t, Config{MaxInflight: 1, AccessLog: &buf})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the only slot with a stalled streaming request.
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", ts.URL+"/v1/check?dataset=postal", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
	}()
	if _, err := pw.Write([]byte(`{"PostalCode":"94704","City":"Berkeley"}` + "\n")); err != nil {
		t.Fatal(err)
	}

	rej, err := http.NewRequest("POST", ts.URL+"/v1/check?dataset=postal", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	rej.Header.Set(requestHeader, "rejected-req")
	resp, err := http.DefaultClient.Do(rej)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get(requestHeader); got != "rejected-req" {
		t.Errorf("429 response should still echo the request ID, got %q", got)
	}
	_ = pw.Close()
	<-done

	var rec *reqRecord
	for _, r := range decodeAccessLog(t, buf.String()) {
		if r.ID == "rejected-req" {
			r := r
			rec = &r
		}
	}
	if rec == nil {
		t.Fatalf("429 not in access log:\n%s", buf.String())
	}
	if rec.Status != 429 || !strings.Contains(rec.Error, "max in-flight") {
		t.Errorf("429 record = %+v", rec)
	}
	snap := reg.Snapshot()
	found := false
	for _, lc := range snap.LabeledCounters {
		if lc.Name == "serve.endpoint.rejected" && lc.Labels[0].Value == "check" && lc.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("serve.endpoint.rejected{endpoint=check} missing: %+v", snap.LabeledCounters)
	}
}

// TestFlightRecorder: /debug/flight returns recent requests, retains
// errors past ring churn, and tracks the slowest requests.
func TestFlightRecorder(t *testing.T) {
	s, _ := newPostalServer(t, Config{FlightSize: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One error (unknown dataset → 404), then enough OK traffic to evict
	// it from the 4-slot recent ring.
	resp, _ := postJSON(t, ts.URL+"/v1/check?dataset=nope", `{}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	for i := 0; i < 6; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/check?dataset=postal", `{"PostalCode":"94704","City":"Berkeley"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}

	fresp, err := http.Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(fresp.Body)
	if cerr := fresp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	var dump flightDump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("flight dump: %v\n%s", err, body)
	}
	if dump.Size != 4 || len(dump.Recent) != 4 {
		t.Errorf("recent ring = %d/%d, want 4/4", len(dump.Recent), dump.Size)
	}
	for _, r := range dump.Recent {
		if r.Status != 200 {
			t.Errorf("recent ring should hold only the latest OK requests, got %+v", r)
		}
	}
	found404 := false
	for _, r := range dump.Errors {
		if r.Status == 404 && r.Dataset == "nope" {
			found404 = true
		}
	}
	if !found404 {
		t.Errorf("404 evicted from error sub-ring: %+v", dump.Errors)
	}
	if len(dump.Slowest) != 7 {
		t.Errorf("slowest = %d records, want all 7", len(dump.Slowest))
	}
	for i := 1; i < len(dump.Slowest); i++ {
		if dump.Slowest[i].LatencyNS > dump.Slowest[i-1].LatencyNS {
			t.Errorf("slowest not in descending latency order at %d", i)
		}
	}
}

// TestFlightDisabled: negative FlightSize turns the recorder off; the
// endpoint still answers with empty sections.
func TestFlightDisabled(t *testing.T) {
	s, _ := newPostalServer(t, Config{FlightSize: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	_, _ = postJSON(t, ts.URL+"/v1/check?dataset=postal", `{"PostalCode":"94704"}`)
	resp, err := http.Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	var dump flightDump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Size != 0 || len(dump.Recent) != 0 || len(dump.Errors) != 0 || len(dump.Slowest) != 0 {
		t.Errorf("disabled recorder dumped %+v", dump)
	}
}

// TestTelemetryByteIdentical: with client-supplied request IDs, response
// status, headers, and body are byte-identical whether telemetry (access
// log + flight recorder + obs registry) is on or off — instrumentation
// must never leak into the API surface.
func TestTelemetryByteIdentical(t *testing.T) {
	var buf syncBuffer
	// The quiet server has no obs registry, no access log, no recorder.
	quietReg := NewRegistry(nil)
	if _, _, err := quietReg.Load("postal", []byte(postalCSV), []byte(postalProg)); err != nil {
		t.Fatal(err)
	}
	quiet := New(Config{Registry: quietReg, FlightSize: -1})
	loud, _ := newPostalServer(t, Config{AccessLog: &buf, FlightSize: 8})
	tsQuiet := httptest.NewServer(quiet.Handler())
	defer tsQuiet.Close()
	tsLoud := httptest.NewServer(loud.Handler())
	defer tsLoud.Close()

	cases := []struct {
		name, path, ct, body string
	}{
		{"single-ok", "/v1/check?dataset=postal", "application/json", `{"PostalCode":"94110","City":"San Francisco"}`},
		{"single-flagged", "/v1/rectify?dataset=postal", "application/json", `{"PostalCode":"94704","City":"Oakland"}`},
		{"batch-ndjson", "/v1/check?dataset=postal", "application/x-ndjson",
			`{"PostalCode":"94704","City":"Berkeley"}` + "\n" + `{"PostalCode":"94704","City":"Oakland"}` + "\n"},
		{"batch-csv", "/v1/check?dataset=postal", "text/csv", "PostalCode,City\n94704,Berkeley\n94704,Oakland\n"},
		{"bad-dataset", "/v1/check?dataset=nope", "application/json", `{}`},
	}
	fetch := func(base string, i int, c struct{ name, path, ct, body string }) (int, http.Header, string) {
		req, err := http.NewRequest("POST", base+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", c.ct)
		req.Header.Set(requestHeader, fmt.Sprintf("id-%d", i))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatal(err)
		}
		h := resp.Header.Clone()
		h.Del("Date") // wall clock, not API surface
		return resp.StatusCode, h, string(body)
	}
	for i, c := range cases {
		qs, qh, qb := fetch(tsQuiet.URL, i, c)
		ls, lh, lb := fetch(tsLoud.URL, i, c)
		if qs != ls {
			t.Errorf("%s: status %d (telemetry off) != %d (on)", c.name, qs, ls)
		}
		if qb != lb {
			t.Errorf("%s: body differs:\noff: %q\non:  %q", c.name, qb, lb)
		}
		if fmt.Sprint(qh) != fmt.Sprint(lh) {
			t.Errorf("%s: headers differ:\noff: %v\non:  %v", c.name, qh, lh)
		}
	}
	if len(decodeAccessLog(t, buf.String())) != len(cases) {
		t.Errorf("telemetry-on server should have logged %d requests", len(cases))
	}
}

// TestRequestIDSanitized: hostile client IDs are truncated and stripped
// of control characters before reaching headers and logs.
func TestRequestIDSanitized(t *testing.T) {
	var buf syncBuffer
	s, _ := newPostalServer(t, Config{AccessLog: &buf})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	long := strings.Repeat("x", 500)
	req, err := http.NewRequest("POST", ts.URL+"/v1/check?dataset=postal", strings.NewReader(`{"PostalCode":"94704"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(requestHeader, long)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if got := resp.Header.Get(requestHeader); len(got) != reqIDMax {
		t.Errorf("echoed ID length = %d, want truncated to %d", len(got), reqIDMax)
	}
	recs := decodeAccessLog(t, buf.String())
	if len(recs) != 1 || len(recs[0].ID) != reqIDMax {
		t.Errorf("logged ID not truncated: %d records", len(recs))
	}
}

// TestAccessLogDropCounted: a failing log writer increments the drop
// counter instead of failing the request.
func TestAccessLogDropCounted(t *testing.T) {
	s, reg := newPostalServer(t, Config{AccessLog: failWriter{}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _ := postJSON(t, ts.URL+"/v1/check?dataset=postal", `{"PostalCode":"94704"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request failed with broken access log: %d", resp.StatusCode)
	}
	if n := reg.Snapshot().Counters["serve.accesslog.drops"]; n != 1 {
		t.Errorf("serve.accesslog.drops = %d, want 1", n)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

// TestStatusWriterFlush: the telemetry wrapper must not break streaming —
// NDJSON verdicts arrive row by row before the request body is closed,
// which only works when ResponseController reaches the real Flusher
// through Unwrap.
func TestStatusWriterFlush(t *testing.T) {
	var buf syncBuffer
	s, _ := newPostalServer(t, Config{AccessLog: &buf})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", ts.URL+"/v1/check?dataset=postal", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, errc := func() (*http.Response, chan error) {
		errc := make(chan error, 1)
		respc := make(chan *http.Response, 1)
		go func() {
			resp, err := http.DefaultClient.Do(req)
			respc <- resp
			errc <- err
		}()
		if _, err := pw.Write([]byte(`{"PostalCode":"94704","City":"Oakland"}` + "\n")); err != nil {
			t.Fatal(err)
		}
		return <-respc, errc
	}()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	// The first verdict must be readable while the request body is still
	// open — proof the flush reached the wire.
	line := make([]byte, 4096)
	n, err := resp.Body.Read(line)
	if err != nil {
		t.Fatalf("reading first verdict: %v", err)
	}
	if !bytes.Contains(line[:n], []byte(`"flagged":true`)) {
		t.Errorf("first verdict = %q", line[:n])
	}
	_ = pw.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
}
