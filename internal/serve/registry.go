// Package serve is the long-running validation daemon behind `guardrail
// serve`: an HTTP service that checks and rectifies rows against a
// registry of loaded guard programs. It is the online counterpart of the
// one-shot check/rectify verbs — the endpoint a telegraf-style agent
// polling live databases ships rows through.
//
// The package is built around three production concerns:
//
//   - Hot reload. Programs live in a copy-on-write registry behind an
//     atomic.Pointer; a reload parses, compiles, and fingerprints the new
//     program off to the side and swaps the whole map in one store.
//     In-flight requests resolved their entry before the swap and finish
//     on the old version; every response echoes the version it used in
//     the X-Guardrail-Fingerprint header. A reload whose semantic
//     fingerprint matches the live entry is a no-op — the old entry (and
//     its warmed compiled engine) stays.
//
//   - Backpressure. A bounded admission gate caps in-flight validation
//     requests; excess load is rejected immediately with 429 rather than
//     queued into memory. Single-row request bodies are size-limited.
//
//   - Drain. Run serves until its context is cancelled (the CLI wires
//     SIGTERM/SIGINT), then stops accepting and drains in-flight
//     requests with a deadline, so a rolling restart never drops a row
//     mid-validation.
//
// Like the rest of the pipeline, serving is observable for free: per-
// endpoint latency histograms and request/row/violation counters land on
// the shared internal/obs registry, which the Prometheus /metrics
// endpoint (mounted here and on -debug-addr) renders for scraping.
package serve

import (
	"bytes"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/dsl/analysis"
	"github.com/guardrail-db/guardrail/internal/dsl/compile"
	"github.com/guardrail-db/guardrail/internal/obs"
)

// Entry is one immutable registered program version. All fields are
// frozen at Load time: the schema's dictionaries are never interned into
// while serving (the codec encodes unseen values to an out-of-dictionary
// sentinel instead), so a single Entry is safe for any number of
// concurrent requests.
type Entry struct {
	// Name is the dataset name the entry is registered under.
	Name string
	// Program is the parsed AST — always present, and the execution
	// engine when compilation failed (the fail-closed contract: a guard
	// never goes un-enforced because the optimizer could not prove its
	// rewrite).
	Program *dsl.Program
	// Compiled is the translation-validated engine, nil on compile
	// failure.
	Compiled *compile.Prog
	// Schema is the relation the program was parsed against; its
	// dictionaries decode response values and encode request rows.
	Schema *dataset.Relation
	// Fingerprint identifies the program version a response was computed
	// with. It hashes the solver-canonical form of the program plus the
	// decoded string of every (attribute, code) the program mentions, so
	// two loads collide only when they are semantically equivalent at the
	// string level — code-level canon alone could collide across
	// different dictionary encodings.
	Fingerprint uint64
	// CompileErr records why compilation fell back to the AST ("" when
	// compiled).
	CompileErr string
	// LoadedAt is when this version was swapped in.
	LoadedAt time.Time
	// Version counts swaps of this name, starting at 1. No-op reloads do
	// not advance it.
	Version int
}

// FingerprintHex renders the fingerprint as the 16-digit hex string used
// in response headers and the programs API.
func (e *Entry) FingerprintHex() string { return fmt.Sprintf("%016x", e.Fingerprint) }

// EngineName reports which engine serves this entry's rows.
func (e *Entry) EngineName() string {
	if e.Compiled != nil {
		return "compiled"
	}
	return "ast"
}

// Detect appends row's violations to buf[:0] and returns it, using the
// compiled engine when available. Safe for concurrent use: the engines
// are immutable and buf is caller-owned.
func (e *Entry) Detect(row []int32, buf []dsl.Violation) []dsl.Violation {
	if e.Compiled != nil {
		return e.Compiled.DetectInto(row, buf[:0])
	}
	return append(buf[:0], e.Program.Detect(row)...)
}

// RectifyRow overwrites each violated dependent attribute in place and
// reports how many cells changed.
func (e *Entry) RectifyRow(row []int32) int {
	if e.Compiled != nil {
		return e.Compiled.Rectify(row)
	}
	return e.Program.Rectify(row)
}

// compileFn lowers a parsed program to the compiled engine. It is a
// variable so registry tests can force the AST fallback path without
// having to construct a program the optimizer genuinely cannot prove.
var compileFn = func(p *dsl.Program, opts compile.Options) (*compile.Prog, *compile.Validation, error) {
	return compile.Compile(p, opts)
}

// Registry maps dataset names to their live program entries. Reads are a
// single atomic load of a copy-on-write map — the request hot path takes
// no lock and sees a consistent version for its whole lifetime. Writers
// serialize on a mutex and swap the full map.
type Registry struct {
	mu   sync.Mutex // serializes Load/Remove
	live atomic.Pointer[map[string]*Entry]

	obs         *obs.Registry
	reloads     *obs.Counter
	reloadNoops *obs.Counter
	fallbacks   *obs.Counter
	programs    *obs.Gauge

	// now is a clock seam for tests; nil means time.Now.
	now func() time.Time
}

// NewRegistry builds an empty registry. reg receives the serve.reload*
// counters and the serve.programs gauge, and is forwarded to each
// compilation for the compile.* counters; nil disables instrumentation.
func NewRegistry(reg *obs.Registry) *Registry {
	r := &Registry{
		obs:         reg,
		reloads:     reg.Counter("serve.reloads"),
		reloadNoops: reg.Counter("serve.reload_noops"),
		fallbacks:   reg.Counter("serve.compile_fallbacks"),
		programs:    reg.Gauge("serve.programs"),
	}
	m := map[string]*Entry{}
	r.live.Store(&m)
	return r
}

// Get returns the live entry for name.
func (r *Registry) Get(name string) (*Entry, bool) {
	e, ok := (*r.live.Load())[name]
	return e, ok
}

// Names returns the registered dataset names, sorted.
func (r *Registry) Names() []string {
	m := *r.live.Load()
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Entries returns the live entries sorted by name.
func (r *Registry) Entries() []*Entry {
	m := *r.live.Load()
	out := make([]*Entry, 0, len(m))
	for _, e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Load parses schemaCSV and progSrc, compiles the program (falling back
// to the AST on failure), and registers the result under name. When the
// new version's semantic fingerprint matches the live entry the reload is
// a no-op: the existing entry is returned with changed=false and stays
// live, keeping its warmed compiled engine. Parse errors leave the live
// entry untouched.
func (r *Registry) Load(name string, schemaCSV, progSrc []byte) (e *Entry, changed bool, err error) {
	rel, err := dataset.FromCSV(bytes.NewReader(schemaCSV), name)
	if err != nil {
		return nil, false, fmt.Errorf("serve: load %s: %w", name, err)
	}
	prog, err := dsl.Parse(string(progSrc), rel)
	if err != nil {
		return nil, false, fmt.Errorf("serve: load %s: parse program: %w", name, err)
	}
	fp := semanticFingerprint(prog, rel)

	r.mu.Lock()
	defer r.mu.Unlock()
	old := (*r.live.Load())[name]
	if old != nil && old.Fingerprint == fp {
		r.reloadNoops.Inc()
		return old, false, nil
	}

	entry := &Entry{
		Name:        name,
		Program:     prog,
		Schema:      rel,
		Fingerprint: fp,
		LoadedAt:    r.clock(),
		Version:     1,
	}
	if old != nil {
		entry.Version = old.Version + 1
	}
	// Compile once per version over the open universe: request rows may
	// carry values the schema never interned, which is exactly the
	// grown-code regime the open-universe engine handles.
	if cp, _, cerr := compileFn(prog, compile.Options{Obs: r.obs}); cerr != nil {
		entry.CompileErr = cerr.Error()
		r.fallbacks.Inc()
	} else {
		entry.Compiled = cp
	}
	r.swap(func(m map[string]*Entry) { m[name] = entry })
	r.reloads.Inc()
	return entry, true, nil
}

// LoadFiles is Load reading the schema CSV and program from disk.
func (r *Registry) LoadFiles(name, csvPath, progPath string) (*Entry, bool, error) {
	schemaCSV, err := os.ReadFile(csvPath)
	if err != nil {
		return nil, false, fmt.Errorf("serve: load %s: %w", name, err)
	}
	progSrc, err := os.ReadFile(progPath)
	if err != nil {
		return nil, false, fmt.Errorf("serve: load %s: %w", name, err)
	}
	return r.Load(name, schemaCSV, progSrc)
}

// Remove unregisters name, reporting whether it was present. In-flight
// requests holding the entry finish normally.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := (*r.live.Load())[name]; !ok {
		return false
	}
	r.swap(func(m map[string]*Entry) { delete(m, name) })
	return true
}

// swap clones the live map, applies mutate, and publishes the clone.
// Callers hold r.mu.
func (r *Registry) swap(mutate func(map[string]*Entry)) {
	oldM := *r.live.Load()
	m := make(map[string]*Entry, len(oldM)+1)
	for k, v := range oldM {
		m[k] = v
	}
	mutate(m)
	r.live.Store(&m)
	r.programs.Set(int64(len(m)))
}

func (r *Registry) clock() time.Time {
	if r.now != nil {
		return r.now()
	}
	return time.Now()
}

// semanticFingerprint hashes what a program means, not how it is spelled:
// the solver-canonical form from analysis.Canon (dead branches dropped,
// atoms sorted and deduplicated) concatenated with the schema's attribute
// names and the decoded string of every (attribute, code) pair the
// program mentions. The decode table is what makes cross-load comparison
// sound — canon strings are over dictionary codes, and two different
// programs parsed against the same schema CSV can intern different
// literals at the same code.
func semanticFingerprint(p *dsl.Program, rel *dataset.Relation) uint64 {
	// Minimize first so the literal table below only covers cells a live
	// branch can touch: Canon erases dead branches, and a literal only a
	// dead branch mentions must not perturb the fingerprint. Falls back to
	// the unminimized program if the minimizer's self-proof fails — then
	// the fingerprint is merely conservative (extra literals can force a
	// swap, never suppress one).
	if min, proved, _ := analysis.Minimize(p, nil); proved {
		p = min
	}
	canon, _ := analysis.Canon(p, nil)
	var b strings.Builder
	b.WriteString(canon)
	b.WriteString("\n#schema:")
	for i := 0; i < rel.NumAttrs(); i++ {
		fmt.Fprintf(&b, "%q,", rel.Attr(i))
	}
	b.WriteString("\n#dict:")
	type cell struct {
		attr int
		code int32
	}
	seen := map[cell]bool{}
	cells := []cell{}
	add := func(attr int, code int32) {
		c := cell{attr, code}
		if code == dataset.Missing || seen[c] {
			return
		}
		seen[c] = true
		cells = append(cells, c)
	}
	for _, st := range p.Stmts {
		for _, br := range st.Branches {
			add(st.On, br.Value)
			for _, atom := range br.Cond {
				add(atom.Attr, atom.Value)
			}
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].attr != cells[j].attr {
			return cells[i].attr < cells[j].attr
		}
		return cells[i].code < cells[j].code
	})
	for _, c := range cells {
		fmt.Fprintf(&b, "%d=%d:%q;", c.attr, c.code, rel.Dict(c.attr).Value(c.code))
	}
	return analysis.Fingerprint(b.String())
}
