package serve

import (
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/guardrail-db/guardrail/internal/obs"
	"github.com/guardrail-db/guardrail/internal/obs/trace"
)

// requestHeader carries the request ID: echoed back verbatim when the
// client supplies one (making responses reproducible byte for byte), or
// filled with a generated process-unique ID otherwise. The same ID tags
// the request's access-log record, flight-recorder entry, and trace
// spans, so one slow request can be followed across all three.
const requestHeader = "X-Guardrail-Request"

// reqIDMax caps a client-supplied request ID; longer IDs are truncated
// so a hostile header cannot bloat logs.
const reqIDMax = 128

// reqIDBase is the per-process random prefix of generated request IDs;
// combined with a sequence number, IDs are unique across restarts
// without coordination. crypto/rand because vetguard bans the global
// math/rand state; on read failure the prefix degrades to a clock value.
var reqIDBase = func() string {
	var b [6]byte
	if _, err := crand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}()

var reqIDSeq atomic.Int64

// requestID returns the client-supplied ID (truncated to reqIDMax, with
// control characters replaced) or generates one.
func requestID(r *http.Request) string {
	id := r.Header.Get(requestHeader)
	if id == "" {
		return fmt.Sprintf("%s-%d", reqIDBase, reqIDSeq.Add(1))
	}
	if len(id) > reqIDMax {
		id = id[:reqIDMax]
	}
	clean := []byte(id)
	for i, c := range clean {
		if c < 0x20 || c == 0x7f {
			clean[i] = '_'
		}
	}
	return string(clean)
}

// reqInfo is the per-request telemetry context threaded through every
// gated handler: the trace scope plus the fields handlers fill in as the
// request reveals them (dataset, program fingerprint, row counts). The
// gate builds one per request and finishRequest turns it into the
// access-log record and flight-recorder entry.
type reqInfo struct {
	Scope trace.Scope

	id          string
	method      string
	path        string
	endpoint    string
	slot        int
	dataset     string
	fingerprint string
	engine      string
	rowsIn      int64
	rowsFlagged int64
	waitNS      int64
	latencyNS   int64

	// Lazily-resolved labeled row counters (see Server.countRow).
	rowCounters        bool
	rowsOKCounter      *obs.Counter
	rowsFlaggedCounter *obs.Counter
}

// errBodyMax bounds how much of an error response body is kept as the
// access-log error note.
const errBodyMax = 256

// statusWriter records the response status and size, and retains the
// first errBodyMax bytes of an error (>= 400) body as a log note. It
// implements Unwrap so http.NewResponseController reaches the underlying
// writer's Flush — a plain embedded interface would not promote it.
type statusWriter struct {
	http.ResponseWriter
	status  int
	bytes   int64
	errBody []byte
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	if w.status >= 400 && len(w.errBody) < errBodyMax {
		keep := errBodyMax - len(w.errBody)
		if keep > len(p) {
			keep = len(p)
		}
		w.errBody = append(w.errBody, p[:keep]...)
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Status returns the response status, 200 when the handler never called
// WriteHeader explicitly.
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// errNote renders the retained error-body prefix as a single-line note.
func (w *statusWriter) errNote() string {
	if len(w.errBody) == 0 {
		return ""
	}
	note := make([]byte, len(w.errBody))
	for i, c := range w.errBody {
		if c == '\n' || c == '\r' {
			c = ' '
		}
		note[i] = c
	}
	return string(note)
}

// reqRecord is one structured access-log line (NDJSON) and one flight
// recorder entry. All durations are nanoseconds.
type reqRecord struct {
	Time        string `json:"time"`
	ID          string `json:"id"`
	Method      string `json:"method"`
	Path        string `json:"path"`
	Endpoint    string `json:"endpoint"`
	Dataset     string `json:"dataset,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Engine      string `json:"engine,omitempty"`
	Status      int    `json:"status"`
	RowsIn      int64  `json:"rows_in"`
	RowsFlagged int64  `json:"rows_flagged"`
	Bytes       int64  `json:"bytes"`
	WaitNS      int64  `json:"wait_ns"`
	LatencyNS   int64  `json:"latency_ns"`
	Error       string `json:"error,omitempty"`
}

// accessLogger serializes reqRecords to one writer as NDJSON. Writes are
// mutex-serialized so concurrent requests never interleave mid-line; a
// failed write drops that record (counted) rather than blocking or
// killing the request that triggered it.
type accessLogger struct {
	mu    sync.Mutex
	w     io.Writer
	drops *obs.Counter
}

func newAccessLogger(w io.Writer, drops *obs.Counter) *accessLogger {
	if w == nil {
		return nil
	}
	return &accessLogger{w: w, drops: drops}
}

func (l *accessLogger) log(rec reqRecord) {
	if l == nil {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		l.drops.Inc()
		return
	}
	data = append(data, '\n')
	l.mu.Lock()
	_, werr := l.w.Write(data)
	l.mu.Unlock()
	if werr != nil {
		l.drops.Inc()
	}
}
