package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/guardrail-db/guardrail/internal/core"
	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/obs"
)

// The in-test twin of examples/constraints/postal.{csv,gr}: the last row
// violates the PostalCode→City dependency.
const postalCSV = `PostalCode,City,State
94704,Berkeley,CA
94704,Berkeley,CA
94110,San Francisco,CA
94110,San Francisco,CA
10001,New York,NY
10001,New York,NY
94704,Oakland,CA
`

const postalProg = `GIVEN PostalCode ON City HAVING
  IF PostalCode = "94704" THEN City <- "Berkeley";
  IF PostalCode = "94110" THEN City <- "San Francisco";
  IF PostalCode = "10001" THEN City <- "New York";
GIVEN City ON State HAVING
  IF City = "Berkeley" THEN State <- "CA";
  IF City = "San Francisco" THEN State <- "CA";
  IF City = "New York" THEN State <- "NY";
`

// newPostalServer builds a Server with the postal program registered and
// a fresh obs registry, leaving any cfg overrides in place.
func newPostalServer(t *testing.T, cfg Config) (*Server, *obs.Registry) {
	t.Helper()
	reg := obs.New()
	if cfg.Obs == nil {
		cfg.Obs = reg
	} else {
		reg = cfg.Obs
	}
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry(reg)
	}
	if _, _, err := cfg.Registry.Load("postal", []byte(postalCSV), []byte(postalProg)); err != nil {
		t.Fatal(err)
	}
	return New(cfg), reg
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestSingleJSONCheck: one violating row as a bare JSON object comes back
// flagged with the violation decoded to schema names and string values,
// and the response pins the program version in headers and body.
func TestSingleJSONCheck(t *testing.T) {
	s, _ := newPostalServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/check?dataset=postal",
		`{"PostalCode":"94704","City":"Oakland","State":"CA"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(engineHeader); got != "compiled" {
		t.Errorf("%s = %q, want compiled", engineHeader, got)
	}
	var out singleResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("response does not parse: %v\n%s", err, body)
	}
	if out.Dataset != "postal" || !out.Flagged {
		t.Errorf("dataset=%q flagged=%v, want postal/true", out.Dataset, out.Flagged)
	}
	if out.Fingerprint != resp.Header.Get(fingerprintHeader) {
		t.Errorf("body fingerprint %q != header %q", out.Fingerprint, resp.Header.Get(fingerprintHeader))
	}
	want := apiViolation{Stmt: 0, Attr: "City", Expected: "Berkeley", Actual: "Oakland"}
	if len(out.Violations) != 1 || out.Violations[0] != want {
		t.Errorf("violations = %+v, want [%+v]", out.Violations, want)
	}
	if out.Changed != 0 || out.Row != nil {
		t.Errorf("check response carries rectify fields: %+v", out)
	}

	// A clean row: not flagged, no violations.
	_, body = postJSON(t, ts.URL+"/v1/check?dataset=postal",
		`{"PostalCode":"94110","City":"San Francisco","State":"CA"}`)
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Flagged || len(out.Violations) != 0 {
		t.Errorf("clean row flagged: %+v", out)
	}

	// The sole registered program is the default dataset.
	resp, body = postJSON(t, ts.URL+"/v1/check", `{"PostalCode":"94704","City":"Oakland"}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("default-dataset status = %d\n%s", resp.StatusCode, body)
	}
}

// TestSingleJSONRectify: the violating cell is overwritten and the
// repaired row is echoed back.
func TestSingleJSONRectify(t *testing.T) {
	s, _ := newPostalServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/rectify?dataset=postal",
		`{"PostalCode":"94704","City":"Oakland","State":"CA"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	var out singleResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Flagged || out.Changed != 1 {
		t.Errorf("flagged=%v changed=%d, want true/1", out.Flagged, out.Changed)
	}
	want := map[string]string{"PostalCode": "94704", "City": "Berkeley", "State": "CA"}
	if len(out.Row) != len(want) {
		t.Fatalf("row = %v, want %v", out.Row, want)
	}
	for k, v := range want {
		if out.Row[k] != v {
			t.Errorf("row[%s] = %q, want %q", k, out.Row[k], v)
		}
	}
}

// TestNDJSONBatch: a newline-delimited batch streams one verdict per row
// plus a final summary line; out-of-dictionary values round-trip through
// the sentinel code back to the client's raw string.
func TestNDJSONBatch(t *testing.T) {
	s, _ := newPostalServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rows := strings.Join([]string{
		`{"PostalCode":"94704","City":"Berkeley","State":"CA"}`,
		`{"PostalCode":"94704","City":"Oakland","State":"CA"}`,
		`{"PostalCode":"94704","City":"Nowheresville","State":"CA"}`, // not in any dictionary
	}, "\n") + "\n"
	resp, err := http.Post(ts.URL+"/v1/check?dataset=postal", "application/x-ndjson", strings.NewReader(rows))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 3 verdicts + summary:\n%s", len(lines), body)
	}
	var vs [3]verdict
	for i := 0; i < 3; i++ {
		if err := json.Unmarshal([]byte(lines[i]), &vs[i]); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", i, err, lines[i])
		}
		if vs[i].Row != i || vs[i].Error != "" {
			t.Errorf("line %d: row=%d error=%q", i, vs[i].Row, vs[i].Error)
		}
	}
	if vs[0].Flagged {
		t.Errorf("clean row flagged: %+v", vs[0])
	}
	if !vs[1].Flagged || vs[1].Violations[0].Actual != "Oakland" {
		t.Errorf("in-dictionary violation: %+v", vs[1])
	}
	if !vs[2].Flagged || vs[2].Violations[0].Actual != "Nowheresville" {
		t.Errorf("out-of-dictionary actual value should decode to the raw string: %+v", vs[2])
	}
	var sum struct {
		Summary batchSummary `json:"summary"`
	}
	if err := json.Unmarshal([]byte(lines[3]), &sum); err != nil {
		t.Fatalf("summary line: %v\n%s", err, lines[3])
	}
	want := batchSummary{Rows: 3, Flagged: 2, Violations: 2, Changed: 0}
	if sum.Summary != want {
		t.Errorf("summary = %+v, want %+v", sum.Summary, want)
	}
}

// TestCSVCheck: a CSV batch produces the same verdict stream, with the
// fixture's known single violation on the last row.
func TestCSVCheck(t *testing.T) {
	s, _ := newPostalServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/check?dataset=postal", "text/csv", strings.NewReader(postalCSV))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 8 {
		t.Fatalf("got %d lines, want 7 verdicts + summary:\n%s", len(lines), body)
	}
	for i := 0; i < 7; i++ {
		var v verdict
		if err := json.Unmarshal([]byte(lines[i]), &v); err != nil {
			t.Fatal(err)
		}
		if wantFlagged := i == 6; v.Flagged != wantFlagged {
			t.Errorf("row %d flagged = %v, want %v", i, v.Flagged, wantFlagged)
		}
	}
	var sum struct {
		Summary batchSummary `json:"summary"`
	}
	if err := json.Unmarshal([]byte(lines[7]), &sum); err != nil {
		t.Fatal(err)
	}
	if want := (batchSummary{Rows: 7, Flagged: 1, Violations: 1}); sum.Summary != want {
		t.Errorf("summary = %+v, want %+v", sum.Summary, want)
	}
}

// TestCSVRectifyMatchesStreamCSV: the daemon's streaming CSV rectify is
// byte-for-byte the offline core.Guard.StreamCSV rectify pass — same
// rows, same repairs, same encoding.
func TestCSVRectifyMatchesStreamCSV(t *testing.T) {
	s, _ := newPostalServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/rectify?dataset=postal", "text/csv", strings.NewReader(postalCSV))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Errorf("Content-Type = %q, want text/csv", ct)
	}

	// The offline pass gets its own relation: StreamCSV interns unseen
	// values into its schema, which must not touch the served entry.
	rel, err := dataset.FromCSV(strings.NewReader(postalCSV), "postal")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := dsl.Parse(postalProg, rel)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if _, err := core.NewGuard(prog, core.Rectify).StreamCSV(strings.NewReader(postalCSV), &want, rel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("serve rectify differs from core.StreamCSV:\nserve:\n%s\ncore:\n%s", got, want.Bytes())
	}
}

// TestRequestErrors: the error contract — unknown dataset 404, unknown
// attribute 400, malformed JSON 400, oversized single-row body 413, bad
// CSV header 400 — all as JSON error objects that bump serve.errors.
func TestRequestErrors(t *testing.T) {
	s, reg := newPostalServer(t, Config{MaxBody: 256})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, url, ct, body string
		status              int
	}{
		{"unknown dataset", "/v1/check?dataset=nope", "application/json", `{"City":"x"}`, http.StatusNotFound},
		{"unknown attribute", "/v1/check?dataset=postal", "application/json", `{"Zip":"94704"}`, http.StatusBadRequest},
		{"malformed JSON", "/v1/check?dataset=postal", "application/json", `{"City":`, http.StatusBadRequest},
		{"oversized body", "/v1/check?dataset=postal", "application/json",
			`{"City":"` + strings.Repeat("x", 512) + `"}`, http.StatusRequestEntityTooLarge},
		{"bad CSV header", "/v1/check?dataset=postal", "text/csv", "PostalCode,City,Elevation\n1,2,3\n", http.StatusBadRequest},
		{"short CSV header", "/v1/check?dataset=postal", "text/csv", "PostalCode,City\n1,2\n", http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.url, tc.ct, strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		body, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d\n%s", tc.name, resp.StatusCode, tc.status, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not a JSON error object: %v\n%s", tc.name, err, body)
		}
	}
	if n := reg.Snapshot().Counters["serve.errors"]; n != int64(len(cases)) {
		t.Errorf("serve.errors = %d, want %d", n, len(cases))
	}
}

// TestBackpressure429: with a single admission slot held by an in-flight
// streaming request, the next request is rejected immediately with 429
// and Retry-After, and serve.rejected counts it. Releasing the slot
// restores service.
func TestBackpressure429(t *testing.T) {
	s, reg := newPostalServer(t, Config{MaxInflight: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the only slot: an NDJSON request whose body stays open parks
	// the handler in its row-decode read.
	pr, pw := io.Pipe()
	type result struct {
		status int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/check?dataset=postal", "application/x-ndjson", pr)
		if err != nil {
			done <- result{err: err}
			return
		}
		_, err = io.Copy(io.Discard, resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		done <- result{status: resp.StatusCode, err: err}
	}()
	if _, err := io.WriteString(pw, `{"PostalCode":"94704","City":"Berkeley","State":"CA"}`+"\n"); err != nil {
		t.Fatal(err)
	}
	waitGauge(t, reg, "serve.inflight", 1)

	resp, body := postJSON(t, ts.URL+"/v1/check?dataset=postal", `{"City":"Berkeley"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated gate: status = %d, want 429\n%s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if n := reg.Snapshot().Counters["serve.rejected"]; n != 1 {
		t.Errorf("serve.rejected = %d, want 1", n)
	}

	// Health and metrics stay reachable while the gate is saturated.
	for _, path := range []string{"/healthz", "/metrics"} {
		hr, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, hr.Body)
		_ = hr.Body.Close()
		if hr.StatusCode != http.StatusOK {
			t.Errorf("%s while saturated: status = %d", path, hr.StatusCode)
		}
	}

	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if got.err != nil || got.status != http.StatusOK {
		t.Fatalf("parked request: status=%d err=%v", got.status, got.err)
	}
	resp, body = postJSON(t, ts.URL+"/v1/check?dataset=postal", `{"PostalCode":"94704","City":"Berkeley"}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("after release: status = %d\n%s", resp.StatusCode, body)
	}
}

// waitGauge polls reg until the named gauge reaches want.
func waitGauge(t *testing.T, reg *obs.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Snapshot().Gauges[name] == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("gauge %s never reached %d", name, want)
}

// TestProgramsCRUD: list/get/put/delete round-trip, including the
// changed=true/false reload contract over the API.
func TestProgramsCRUD(t *testing.T) {
	s, _ := newPostalServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// List: the loaded program with its metadata.
	resp, err := http.Get(ts.URL + "/v1/programs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Programs []programInfo `json:"programs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if len(list.Programs) != 1 || list.Programs[0].Name != "postal" ||
		list.Programs[0].Version != 1 || list.Programs[0].Engine != "compiled" {
		t.Fatalf("programs list = %+v", list.Programs)
	}
	fp1 := list.Programs[0].Fingerprint

	// Get: adds the formatted program text and schema.
	resp, err = http.Get(ts.URL + "/v1/programs/postal")
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		programInfo
		Program string   `json:"program"`
		Schema  []string `json:"schema"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if !strings.Contains(got.Program, "GIVEN PostalCode ON City") {
		t.Errorf("program text = %q", got.Program)
	}
	if len(got.Schema) != 3 || got.Schema[0] != "PostalCode" {
		t.Errorf("schema = %v", got.Schema)
	}

	// Put a semantically different program: changed, version advances.
	upload := func(prog string) (int, map[string]json.RawMessage) {
		t.Helper()
		reqBody, err := json.Marshal(map[string]string{"schema_csv": postalCSV, "program": prog})
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/programs/postal", bytes.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		return resp.StatusCode, m
	}
	shadowed := "GIVEN PostalCode ON City HAVING\n  IF PostalCode = \"94704\" THEN City <- \"Berkeley\";\n"
	status, m := upload(shadowed)
	if status != http.StatusOK {
		t.Fatalf("put: status = %d: %s", status, m["error"])
	}
	if string(m["changed"]) != "true" {
		t.Errorf("first put changed = %s, want true", m["changed"])
	}
	var fp2 string
	_ = json.Unmarshal(m["fingerprint"], &fp2)
	if fp2 == fp1 {
		t.Errorf("fingerprint unchanged across a semantic change: %s", fp2)
	}

	// Same program again: a no-op.
	status, m = upload(shadowed)
	if status != http.StatusOK || string(m["changed"]) != "false" {
		t.Errorf("repeat put: status=%d changed=%s, want 200/false", status, m["changed"])
	}

	// Unparseable program: 422, live entry untouched.
	status, m = upload("GIVEN Nonsense ON")
	if status != http.StatusUnprocessableEntity {
		t.Errorf("bad program: status = %d, want 422", status)
	}
	if e, _ := s.Registry().Get("postal"); e.FingerprintHex() != fp2 {
		t.Errorf("failed upload disturbed the live entry")
	}

	// Delete, then 404 on both get and delete.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/programs/postal", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status = %d", resp.StatusCode)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("second delete: status = %d, want 404", resp.StatusCode)
	}
}

// TestMetricsEndpoint: /metrics renders the serve.* series in Prometheus
// text format on the service port.
func TestMetricsEndpoint(t *testing.T) {
	s, _ := newPostalServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, _ = postJSON(t, ts.URL+"/v1/check?dataset=postal", `{"PostalCode":"94704","City":"Oakland"}`)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Header.Get("Content-Type"), "version=0.0.4") {
		t.Errorf("Content-Type = %q", resp.Header.Get("Content-Type"))
	}
	for _, series := range []string{
		"guardrail_serve_requests 1",
		"guardrail_serve_rows 1",
		"guardrail_serve_flagged 1",
		"guardrail_serve_violations 1",
		"guardrail_serve_reloads 1",
		"guardrail_serve_request_check_seconds_bucket{le=",
		"guardrail_serve_request_check_seconds_count 1",
		`guardrail_serve_endpoint_requests{endpoint="check",status="200"} 1`,
		`guardrail_serve_dataset_rows{dataset="postal",endpoint="check",engine="compiled",verdict="flagged"} 1`,
		`guardrail_serve_request_latency_seconds_bucket{dataset="postal",endpoint="check",engine="compiled",le="+Inf"} 1`,
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("/metrics missing %q:\n%s", series, body)
		}
	}
}

// TestHealthz: liveness probe.
func TestHealthz(t *testing.T) {
	s, _ := newPostalServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Errorf("healthz: %d %q", resp.StatusCode, body)
	}
}

// TestRunDrain: cancelling Run's context while a streaming request is in
// flight lets the request finish its full response, and Run returns nil —
// the clean-drain contract.
func TestRunDrain(t *testing.T) {
	s, _ := newPostalServer(t, Config{DrainTimeout: 5 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ran := make(chan error, 1)
	go func() { ran <- s.Run(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// Park a streaming request via an open pipe body.
	pr, pw := io.Pipe()
	type result struct {
		body string
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/check?dataset=postal", "application/x-ndjson", pr)
		if err != nil {
			done <- result{err: err}
			return
		}
		b, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		done <- result{body: string(b), err: err}
	}()
	if _, err := io.WriteString(pw, `{"PostalCode":"94704","City":"Oakland"}`+"\n"); err != nil {
		t.Fatal(err)
	}
	waitGauge(t, s.cfg.Obs, "serve.inflight", 1)

	cancel() // SIGTERM equivalent: stop accepting, drain in-flight

	// The drain must wait for the parked request; finish it now.
	time.Sleep(20 * time.Millisecond)
	if _, err := io.WriteString(pw, `{"PostalCode":"10001","City":"New York"}`+"\n"); err != nil {
		t.Fatal(err)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}

	got := <-done
	if got.err != nil {
		t.Fatalf("in-flight request dropped during drain: %v", got.err)
	}
	if !strings.Contains(got.body, `"summary"`) || !strings.Contains(got.body, `"rows":2`) {
		t.Errorf("drained response truncated:\n%s", got.body)
	}
	if err := <-ran; err != nil {
		t.Errorf("Run returned %v, want nil (clean drain)", err)
	}
	// New connections are refused after drain.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still accepting after drain")
	}
}

// TestRunDrainDeadline: a request that outlives the drain deadline gets
// force-closed and Run reports the dirty drain.
func TestRunDrainDeadline(t *testing.T) {
	s, _ := newPostalServer(t, Config{DrainTimeout: 50 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ran := make(chan error, 1)
	go func() { ran <- s.Run(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(base+"/v1/check?dataset=postal", "application/x-ndjson", pr)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
	}()
	if _, err := io.WriteString(pw, `{"PostalCode":"94704"}`+"\n"); err != nil {
		t.Fatal(err)
	}
	waitGauge(t, s.cfg.Obs, "serve.inflight", 1)

	cancel()
	err = <-ran
	if err == nil || !strings.Contains(err.Error(), "drain deadline exceeded") {
		t.Errorf("Run = %v, want drain deadline exceeded", err)
	}
	_ = pw.Close()
	<-done
}

// TestFingerprintStability: the same load in a fresh process-independent
// registry produces the same fingerprint — the header is a stable version
// identifier, not a per-boot nonce.
func TestFingerprintStability(t *testing.T) {
	var fps [2]string
	for i := range fps {
		r := NewRegistry(obs.New())
		e, _, err := r.Load("postal", []byte(postalCSV), []byte(postalProg))
		if err != nil {
			t.Fatal(err)
		}
		fps[i] = e.FingerprintHex()
	}
	if fps[0] != fps[1] {
		t.Errorf("fingerprint not stable across loads: %s vs %s", fps[0], fps[1])
	}
	if fps[0] == fmt.Sprintf("%016x", 0) {
		t.Error("fingerprint is zero")
	}
}
