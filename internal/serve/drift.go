package serve

import (
	"net/http"
	"sort"
	"sync"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/synth"
)

// DriftConfig configures the daemon's drift monitor: every validated row
// also feeds a per-dataset synth.Incremental driver, so the live traffic
// itself is the stream that windowed drift detection and warm-started
// re-synthesis run on. The zero value disables monitoring.
type DriftConfig struct {
	// Enabled turns the monitor (and the /v1/drift endpoint's data) on.
	Enabled bool
	// WindowRows, MaxWindows, and Alpha tune the underlying incremental
	// driver; zero selects the synth.IncrOptions defaults (256 rows,
	// 8 windows, 1e-3).
	WindowRows int
	MaxWindows int
	Alpha      float64
}

// driftMonitor owns one incremental synthesis driver per served dataset.
// Incremental is not concurrency-safe, so a single mutex serializes all
// observations; the request that happens to complete a window pays for
// the window merge (and, on drift, the re-synthesis) inline. Monitors
// reset when a hot reload changes the dataset's program, since drift is
// measured against the statistics behind the *current* constraints.
type driftMonitor struct {
	cfg DriftConfig

	mu  sync.Mutex
	per map[string]*datasetDrift
}

type datasetDrift struct {
	// fingerprint pins the program version this monitor's baseline was
	// built under; a reload with a different fingerprint resets the state.
	fingerprint string
	inc         *synth.Incremental
	lastErr     string
}

func newDriftMonitor(cfg DriftConfig) *driftMonitor {
	return &driftMonitor{cfg: cfg, per: make(map[string]*datasetDrift)}
}

// observeDrift feeds one validated row (raw string values in schema
// attribute order, "" for missing) to the drift monitor. A no-op when
// monitoring is disabled.
func (s *Server) observeDrift(e *Entry, raw []string) {
	if s.drift == nil {
		return
	}
	s.drift.observe(e, raw, s.cfg)
}

func (m *driftMonitor) observe(e *Entry, raw []string, cfg Config) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.per[e.Name]
	if d == nil || d.fingerprint != e.FingerprintHex() {
		// First observation, or the program changed under us: the monitor
		// gets its own relation (fresh dictionaries — the served Entry's
		// schema stays frozen) and starts a new baseline.
		rel := dataset.New(e.Name, e.Schema.Attrs())
		d = &datasetDrift{
			fingerprint: e.FingerprintHex(),
			inc: synth.NewIncremental(rel, synth.IncrOptions{
				WindowRows: m.cfg.WindowRows,
				MaxWindows: m.cfg.MaxWindows,
				DriftAlpha: m.cfg.Alpha,
				Synth:      synth.Options{IdentitySampler: true, Obs: cfg.Obs},
			}),
		}
		m.per[e.Name] = d
	}
	// Synthesis failures (e.g. degenerate windows) must not fail the
	// validation request that happened to complete the window; they are
	// surfaced on /v1/drift instead.
	if _, err := d.inc.Observe(raw); err != nil {
		d.lastErr = err.Error()
	}
}

// driftStatus is the wire form of one dataset's monitor state.
type driftStatus struct {
	Dataset string `json:"dataset"`
	// ProgramFingerprint is the served program version the monitor's
	// baseline was built under (not the synthesized program's own
	// fingerprint, which is IncrStatus.Fingerprint).
	ProgramFingerprint string `json:"program_fingerprint"`
	LastError          string `json:"last_error,omitempty"`
	synth.IncrStatus
}

// driftResponse is the GET /v1/drift body.
type driftResponse struct {
	Enabled    bool          `json:"enabled"`
	WindowRows int           `json:"window_rows,omitempty"`
	MaxWindows int           `json:"max_windows,omitempty"`
	Alpha      float64       `json:"alpha,omitempty"`
	Datasets   []driftStatus `json:"datasets"`
}

func (m *driftMonitor) snapshot() []driftStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]driftStatus, 0, len(m.per))
	for name, d := range m.per {
		out = append(out, driftStatus{
			Dataset:            name,
			ProgramFingerprint: d.fingerprint,
			LastError:          d.lastErr,
			IncrStatus:         d.inc.Status(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dataset < out[j].Dataset })
	return out
}

// handleDrift reports the drift monitor's per-dataset status: rows
// observed, windows merged, triggers fired, and the change-event stream
// with old/new program fingerprints.
func (s *Server) handleDrift(w http.ResponseWriter, _ *http.Request, _ *reqInfo) {
	if s.drift == nil {
		writeJSON(w, http.StatusOK, driftResponse{Datasets: []driftStatus{}})
		return
	}
	resp := driftResponse{
		Enabled:    true,
		WindowRows: s.drift.cfg.WindowRows,
		MaxWindows: s.drift.cfg.MaxWindows,
		Alpha:      s.drift.cfg.Alpha,
		Datasets:   s.drift.snapshot(),
	}
	writeJSON(w, http.StatusOK, resp)
}
