package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
)

// flightRecorder keeps the last flightSize requests in a ring, plus two
// always-retained sub-rings that survive ring churn: recent error
// responses (status >= 400) and the slowest requests seen. A busy daemon
// overwrites the main ring in seconds, but the interesting requests — the
// failures and the tail — stay pinned, so a /debug/flight dump (or the
// SIGQUIT dump) taken minutes after an incident still shows it.
type flightRecorder struct {
	mu     sync.Mutex
	recent []reqRecord // ring, pos is the next write slot
	pos    int
	n      int
	errs   []reqRecord // ring of error responses
	epos   int
	en     int
	slow   []reqRecord // unordered top-K by LatencyNS
}

// flightErrsFrac sizes the error sub-ring relative to the main ring.
const (
	flightDefaultSize = 256
	flightErrsMin     = 16
	flightSlowK       = 16
)

// newFlightRecorder builds a recorder holding size recent requests;
// size 0 selects flightDefaultSize, negative disables (returns nil).
func newFlightRecorder(size int) *flightRecorder {
	if size < 0 {
		return nil
	}
	if size == 0 {
		size = flightDefaultSize
	}
	esize := size / 4
	if esize < flightErrsMin {
		esize = flightErrsMin
	}
	return &flightRecorder{
		recent: make([]reqRecord, size),
		errs:   make([]reqRecord, esize),
		slow:   make([]reqRecord, 0, flightSlowK),
	}
}

// record adds one finished request. Nil-safe (disabled recorder).
func (f *flightRecorder) record(rec reqRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recent[f.pos] = rec
	f.pos = (f.pos + 1) % len(f.recent)
	if f.n < len(f.recent) {
		f.n++
	}
	if rec.Status >= 400 {
		f.errs[f.epos] = rec
		f.epos = (f.epos + 1) % len(f.errs)
		if f.en < len(f.errs) {
			f.en++
		}
	}
	if len(f.slow) < cap(f.slow) {
		f.slow = append(f.slow, rec)
		return
	}
	// Replace the fastest of the retained slow set; K is small enough
	// that a linear scan beats heap bookkeeping.
	minAt := 0
	for i := 1; i < len(f.slow); i++ {
		if f.slow[i].LatencyNS < f.slow[minAt].LatencyNS {
			minAt = i
		}
	}
	if rec.LatencyNS > f.slow[minAt].LatencyNS {
		f.slow[minAt] = rec
	}
}

// flightDump is the JSON body of /debug/flight: the retained requests,
// each section ordered oldest-first (slowest section: descending
// latency).
type flightDump struct {
	Size    int         `json:"size"`
	Recent  []reqRecord `json:"recent"`
	Errors  []reqRecord `json:"errors"`
	Slowest []reqRecord `json:"slowest"`
}

// ringSlice unrolls a ring into chronological order.
func ringSlice(ring []reqRecord, pos, n int) []reqRecord {
	out := make([]reqRecord, 0, n)
	start := pos - n
	if start < 0 {
		start += len(ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, ring[(start+i)%len(ring)])
	}
	return out
}

// dump snapshots the recorder. Nil-safe: a disabled recorder dumps empty
// sections.
func (f *flightRecorder) dump() flightDump {
	d := flightDump{Recent: []reqRecord{}, Errors: []reqRecord{}, Slowest: []reqRecord{}}
	if f == nil {
		return d
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	d.Size = len(f.recent)
	d.Recent = ringSlice(f.recent, f.pos, f.n)
	d.Errors = ringSlice(f.errs, f.epos, f.en)
	d.Slowest = append(d.Slowest, f.slow...)
	for i := 1; i < len(d.Slowest); i++ { // insertion sort, K ≤ 16
		for j := i; j > 0 && d.Slowest[j].LatencyNS > d.Slowest[j-1].LatencyNS; j-- {
			d.Slowest[j], d.Slowest[j-1] = d.Slowest[j-1], d.Slowest[j]
		}
	}
	return d
}

// writeTo writes an indented JSON dump (the SIGQUIT path).
func (f *flightRecorder) writeTo(w io.Writer) {
	data, err := json.MarshalIndent(f.dump(), "", "  ")
	if err != nil {
		return
	}
	data = append(data, '\n')
	_, _ = w.Write(data)
}

// handleFlight serves the flight dump. Ungated, like /metrics: the
// recorder is exactly the thing to read while the gate is saturated.
func (s *Server) handleFlight(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.flight.dump())
}

// FlightHandler exposes the flight dump endpoint for mounting on an
// external mux (the -debug-addr server).
func (s *Server) FlightHandler() http.Handler {
	return http.HandlerFunc(s.handleFlight)
}
