package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/guardrail-db/guardrail/internal/obs"
)

// Hot-reload-under-load fixture: one schema that interns both programs'
// literals, two programs that repair the same violation to different
// cities. Any response mixing version A's fingerprint with version B's
// expected value (or vice versa) proves a torn read across the swap.
const reloadCSV = `PostalCode,City
94704,Berkeley
94704,Albany
94704,Oakland
`

const reloadProgA = `GIVEN PostalCode ON City HAVING
  IF PostalCode = "94704" THEN City <- "Berkeley";
`

const reloadProgB = `GIVEN PostalCode ON City HAVING
  IF PostalCode = "94704" THEN City <- "Albany";
`

// TestHotReloadUnderLoad hammers /v1/check from concurrent clients while
// the main goroutine swaps the program between two versions. Every
// response must be internally consistent with exactly one version: the
// fingerprint header matches one of the two known versions, the body
// fingerprint matches the header, and the violation's expected value is
// the one that version assigns. Run under -race this also proves the
// registry swap publishes safely.
func TestHotReloadUnderLoad(t *testing.T) {
	// Precompute both versions' fingerprints on a scratch registry.
	scratch := NewRegistry(obs.New())
	ea, _, err := scratch.Load("postal", []byte(reloadCSV), []byte(reloadProgA))
	if err != nil {
		t.Fatal(err)
	}
	eb, _, err := scratch.Load("postal", []byte(reloadCSV), []byte(reloadProgB))
	if err != nil {
		t.Fatal(err)
	}
	expectedByFP := map[string]string{
		ea.FingerprintHex(): "Berkeley",
		eb.FingerprintHex(): "Albany",
	}
	if len(expectedByFP) != 2 {
		t.Fatalf("versions share a fingerprint: %s", ea.FingerprintHex())
	}

	reg := obs.New()
	registry := NewRegistry(reg)
	if _, _, err := registry.Load("postal", []byte(reloadCSV), []byte(reloadProgA)); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Registry: registry, Obs: reg, MaxInflight: 32})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		clients  = 8
		requests = 100
		swaps    = 50
	)
	body := `{"PostalCode":"94704","City":"Oakland"}`

	var wg sync.WaitGroup
	errs := make(chan error, clients*requests)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				resp, err := http.Post(ts.URL+"/v1/check?dataset=postal", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				b, err := io.ReadAll(resp.Body)
				if cerr := resp.Body.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", resp.StatusCode, b)
					return
				}
				fp := resp.Header.Get(fingerprintHeader)
				want, known := expectedByFP[fp]
				if !known {
					errs <- fmt.Errorf("unknown fingerprint %q", fp)
					return
				}
				var out singleResponse
				if err := json.Unmarshal(b, &out); err != nil {
					errs <- fmt.Errorf("parse response: %v: %s", err, b)
					return
				}
				if out.Fingerprint != fp {
					errs <- fmt.Errorf("torn response: header %s, body %s", fp, out.Fingerprint)
					return
				}
				if !out.Flagged || len(out.Violations) != 1 {
					errs <- fmt.Errorf("fingerprint %s: verdict %+v", fp, out)
					return
				}
				if got := out.Violations[0].Expected; got != want {
					errs <- fmt.Errorf("torn response: fingerprint %s expects %q, got %q", fp, want, got)
					return
				}
			}
		}()
	}

	// Swap versions under the load.
	for i := 0; i < swaps; i++ {
		src := reloadProgB
		if i%2 == 1 {
			src = reloadProgA
		}
		if _, _, err := registry.Load("postal", []byte(reloadCSV), []byte(src)); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Liveness: the swaps all registered (25 A→B/B→A transitions each way,
	// minus no-ops when a swap repeats the live version — here strictly
	// alternating, so every Load is a real reload).
	if n := reg.Snapshot().Counters["serve.reloads"]; n != swaps+1 {
		t.Errorf("serve.reloads = %d, want %d", n, swaps+1)
	}
}
