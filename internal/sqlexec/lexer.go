// Package sqlexec implements the ML-integrated SQL query executor of §7:
// a lexer, recursive-descent parser and evaluator for the SQL subset the
// paper's prototype supports — SELECT with aggregates (AVG, SUM, COUNT,
// MIN, MAX), WHERE, GROUP BY, CASE WHEN, arithmetic/boolean expressions,
// and PREDICT(label) expressions that invoke a registered ML model per row.
// A Guardrail guard can intercept every row before it reaches the model,
// and WHERE conjuncts that do not depend on predictions are pushed below
// the prediction step (predicate pushdown).
package sqlexec

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tSymbol // ( ) , * . = != <> < > <= >= + - /
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(src string) ([]token, error) {
	rs := []rune(src)
	var out []token
	i := 0
	for i < len(rs) {
		c := rs[i]
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for i < len(rs) && rs[i] != '\'' {
				sb.WriteRune(rs[i])
				i++
			}
			if i >= len(rs) {
				return nil, fmt.Errorf("sqlexec: unterminated string at %d", start)
			}
			i++
			out = append(out, token{kind: tString, text: sb.String(), pos: start})
		case unicode.IsDigit(c):
			start := i
			for i < len(rs) && (unicode.IsDigit(rs[i]) || rs[i] == '.') {
				i++
			}
			out = append(out, token{kind: tNumber, text: string(rs[start:i]), pos: start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(rs) && (unicode.IsLetter(rs[i]) || unicode.IsDigit(rs[i]) || rs[i] == '_') {
				i++
			}
			out = append(out, token{kind: tIdent, text: string(rs[start:i]), pos: start})
		case strings.ContainsRune("(),*.=+-/;", c):
			out = append(out, token{kind: tSymbol, text: string(c), pos: i})
			i++
		case c == '!' || c == '<' || c == '>':
			start := i
			i++
			sym := string(c)
			if i < len(rs) && (rs[i] == '=' || (c == '<' && rs[i] == '>')) {
				sym += string(rs[i])
				i++
			}
			if sym == "!" {
				return nil, fmt.Errorf("sqlexec: stray '!' at %d", start)
			}
			out = append(out, token{kind: tSymbol, text: sym, pos: start})
		default:
			return nil, fmt.Errorf("sqlexec: unexpected character %q at %d", c, i)
		}
	}
	out = append(out, token{kind: tEOF, pos: len(rs)})
	return out, nil
}
