package sqlexec

import (
	"math"
	"strings"
	"testing"

	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/core"
	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/ml"
)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// numbersRel is a tiny relation with numeric-looking strings.
func numbersRel() *dataset.Relation {
	r := dataset.New("t", []string{"grp", "age", "city"})
	rows := [][]string{
		{"a", "10", "X"},
		{"a", "20", "Y"},
		{"b", "30", "X"},
		{"b", "50", "X"},
		{"b", "40", "Y"},
	}
	for _, row := range rows {
		r.AppendRow(row)
	}
	return r
}

func TestParseErrorsSurface(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT COUNT( FROM t",
		"SELECT a FROM t GROUP",
		"SELECT 'oops FROM t",
		"SELECT a b c FROM t",
		"SELECT CASE END FROM t",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Fatalf("no parse error for %q", q)
		}
	}
}

func TestSimpleAggregates(t *testing.T) {
	rel := numbersRel()
	res, err := Exec("SELECT COUNT(*), AVG(age), SUM(age), MIN(age), MAX(age) FROM t", rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	got := res.Rows[0]
	want := []float64{5, 30, 150, 10, 50}
	for i, w := range want {
		if !got[i].IsNum || !near(got[i].Num, w) {
			t.Fatalf("col %d = %v, want %g", i, got[i], w)
		}
	}
}

func TestGroupByAndWhere(t *testing.T) {
	rel := numbersRel()
	res, err := Exec("SELECT grp, AVG(age) AS avg_age FROM t WHERE city = 'X' GROUP BY grp", rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Deterministic group order (sorted by key).
	if res.Rows[0][0].Str != "a" || !near(res.Rows[0][1].Num, 10) {
		t.Fatalf("group a wrong: %v", res.Rows[0])
	}
	if res.Rows[1][0].Str != "b" || !near(res.Rows[1][1].Num, 40) {
		t.Fatalf("group b wrong: %v", res.Rows[1])
	}
	if res.Cols[1] != "avg_age" {
		t.Fatalf("alias lost: %v", res.Cols)
	}
}

func TestCaseWhenArithmetic(t *testing.T) {
	rel := numbersRel()
	res, err := Exec("SELECT AVG(CASE WHEN city = 'X' THEN 1 ELSE 0 END) FROM t", rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !near(res.Rows[0][0].Num, 0.6) {
		t.Fatalf("got %v, want 0.6", res.Rows[0][0])
	}
	res, err = Exec("SELECT SUM(age) / COUNT(*) FROM t WHERE age >= 20 AND age <= 40", rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !near(res.Rows[0][0].Num, 30) {
		t.Fatalf("got %v, want 30", res.Rows[0][0])
	}
}

func TestComparisonAndBooleans(t *testing.T) {
	rel := numbersRel()
	cases := []struct {
		q    string
		want float64
	}{
		{"SELECT COUNT(*) FROM t WHERE age != 10", 4},
		{"SELECT COUNT(*) FROM t WHERE age <> 10", 4},
		{"SELECT COUNT(*) FROM t WHERE age > 20 OR city = 'Y'", 4},
		{"SELECT COUNT(*) FROM t WHERE NOT city = 'X'", 2},
		{"SELECT COUNT(*) FROM t WHERE age < 25 AND grp = 'a'", 2},
		{"SELECT COUNT(*) FROM t WHERE age - 5 = 15", 1},
		{"SELECT COUNT(*) FROM t WHERE age * 2 >= 80", 2},
	}
	for _, c := range cases {
		res, err := Exec(c.q, rel, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if !near(res.Rows[0][0].Num, c.want) {
			t.Fatalf("%s = %v, want %g", c.q, res.Rows[0][0], c.want)
		}
	}
}

func TestUnknownColumnAndModel(t *testing.T) {
	rel := numbersRel()
	if _, err := Exec("SELECT nope FROM t", rel, nil); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := Exec("SELECT PREDICT(city) FROM t", rel, nil); err == nil {
		t.Fatal("missing model accepted")
	}
	if _, err := Exec("SELECT age FROM other_table", rel, nil); err == nil {
		t.Fatal("wrong table accepted")
	}
}

// hospitalEnv trains a model on clean hospital data and returns everything
// the ML-integrated tests need.
func hospitalEnv(t *testing.T) (*dataset.Relation, *Env, int) {
	t.Helper()
	rel, err := bn.Hospital().Sample(4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	label := rel.AttrIndex("dysp")
	model, err := ml.Train(rel, label)
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{Models: map[string]ml.Model{"dysp": model}}
	return rel, env, label
}

func TestPredictExpression(t *testing.T) {
	rel, env, _ := hospitalEnv(t)
	q := "SELECT floor, AVG(CASE WHEN PREDICT(dysp) = 'dysp_v0' THEN 1 ELSE 0 END) AS rate FROM hospital GROUP BY floor"
	rel.SetName("hospital")
	res, err := Exec(q, rel, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 floors", len(res.Rows))
	}
	rates, err := res.Column("rate")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rates {
		if r < 0 || r > 1 {
			t.Fatalf("rate %g out of [0,1]", r)
		}
	}
	if res.Stats.PredictCalls == 0 {
		t.Fatal("no predictions made")
	}
}

func TestPredSuffixEquivalent(t *testing.T) {
	rel, env, _ := hospitalEnv(t)
	rel.SetName("hospital")
	a, err := Exec("SELECT COUNT(*) FROM hospital WHERE PREDICT(dysp) = 'dysp_v0'", rel, env)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Exec("SELECT COUNT(*) FROM hospital WHERE hospital.dysp_pred = 'dysp_v0'", rel, env)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows[0][0].Num != b.Rows[0][0].Num {
		t.Fatalf("PREDICT() and _pred disagree: %v vs %v", a.Rows[0][0], b.Rows[0][0])
	}
}

func TestPredicatePushdownSkipsInference(t *testing.T) {
	rel, env, _ := hospitalEnv(t)
	rel.SetName("hospital")
	q := "SELECT COUNT(*) FROM hospital WHERE floor = 'floor_v0' AND PREDICT(dysp) = 'dysp_v0'"
	withPD, err := Exec(q, rel, env)
	if err != nil {
		t.Fatal(err)
	}
	env2 := &Env{Models: env.Models, DisablePushdown: true}
	withoutPD, err := Exec(q, rel, env2)
	if err != nil {
		t.Fatal(err)
	}
	if withPD.Rows[0][0].Num != withoutPD.Rows[0][0].Num {
		t.Fatal("pushdown changed the result")
	}
	if withPD.Stats.PredictCalls >= withoutPD.Stats.PredictCalls {
		t.Fatalf("pushdown did not reduce inference: %d vs %d",
			withPD.Stats.PredictCalls, withoutPD.Stats.PredictCalls)
	}
}

func TestGuardInterception(t *testing.T) {
	rel, env, _ := hospitalEnv(t)
	rel.SetName("hospital")
	// Synthesize constraints on the clean data, then corrupt `either`.
	res, err := core.Synthesize(rel, core.Options{Epsilon: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dirty := rel.Clone()
	eitherIdx := dirty.AttrIndex("either")
	flipped := 0
	for i := 0; i < dirty.NumRows() && flipped < 400; i += 7 {
		dirty.SetCode(i, eitherIdx, 1-dirty.Code(i, eitherIdx))
		flipped++
	}
	q := "SELECT AVG(CASE WHEN PREDICT(dysp) = 'dysp_v0' THEN 1 ELSE 0 END) AS rate FROM hospital"
	truth, err := Exec(q, rel, env)
	if err != nil {
		t.Fatal(err)
	}
	dirtyRes, err := Exec(q, dirty, env)
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := Exec(q, dirty, &Env{Models: env.Models, Guard: core.NewGuard(res.Program, core.Rectify)})
	if err != nil {
		t.Fatal(err)
	}
	tv := truth.Rows[0][0].Num
	errDirty := math.Abs(dirtyRes.Rows[0][0].Num - tv)
	errGuard := math.Abs(guarded.Rows[0][0].Num - tv)
	if errGuard > errDirty {
		t.Fatalf("guard increased error: dirty=%g guarded=%g", errDirty, errGuard)
	}
	if guarded.Stats.GuardTime == 0 {
		t.Fatal("guard time not recorded")
	}
	// The dirty relation itself must be untouched by the guarded query.
	diff := 0
	for i := 0; i < dirty.NumRows(); i++ {
		if dirty.Code(i, eitherIdx) != rel.Code(i, eitherIdx) {
			diff++
		}
	}
	if diff != flipped {
		t.Fatalf("guarded query mutated the source relation: %d vs %d flips", diff, flipped)
	}
}

func TestGuardRaiseAbortsQuery(t *testing.T) {
	rel, env, _ := hospitalEnv(t)
	rel.SetName("hospital")
	res, err := core.Synthesize(rel, core.Options{Epsilon: 0.02, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	dirty := rel.Clone()
	eitherIdx := dirty.AttrIndex("either")
	dirty.SetCode(0, eitherIdx, 1-dirty.Code(0, eitherIdx))
	_, err = Exec("SELECT COUNT(*) FROM hospital WHERE PREDICT(dysp) = 'dysp_v0'", dirty,
		&Env{Models: env.Models, Guard: core.NewGuard(res.Program, core.Raise)})
	if err == nil || !strings.Contains(err.Error(), "guard") {
		t.Fatalf("raise strategy did not abort: %v", err)
	}
}

func TestValueHelpers(t *testing.T) {
	if NumValue(3).String() != "3" || StrValue("x").String() != "x" || NullValue.String() != "NULL" {
		t.Fatal("value rendering wrong")
	}
	if NullValue.truthy() || NumValue(0).truthy() || StrValue("").truthy() {
		t.Fatal("falsy values reported truthy")
	}
	if !NumValue(2).truthy() || !StrValue("a").truthy() {
		t.Fatal("truthy values reported falsy")
	}
}

func TestResultColumnErrors(t *testing.T) {
	rel := numbersRel()
	res, err := Exec("SELECT grp, COUNT(*) FROM t GROUP BY grp", rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Column("nope"); err == nil {
		t.Fatal("missing column accepted")
	}
	if _, err := res.Column("grp"); err == nil {
		t.Fatal("non-numeric column accepted")
	}
	if vals, err := res.Column("COUNT(*)"); err != nil || len(vals) != 2 {
		t.Fatalf("count column: %v %v", vals, err)
	}
}

func TestMissingValuesAreNull(t *testing.T) {
	rel := dataset.New("t", []string{"a", "b"})
	rel.AppendRow([]string{"1", ""})
	rel.AppendRow([]string{"2", "5"})
	res, err := Exec("SELECT AVG(b), COUNT(b) FROM t", rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !near(res.Rows[0][0].Num, 5) || !near(res.Rows[0][1].Num, 1) {
		t.Fatalf("NULL handling wrong: %v", res.Rows[0])
	}
}
