package sqlexec

import (
	"testing"

	"github.com/guardrail-db/guardrail/internal/dataset"
)

func TestHavingFiltersGroups(t *testing.T) {
	rel := numbersRel()
	res, err := Exec("SELECT grp, COUNT(*) AS n FROM t GROUP BY grp HAVING COUNT(*) > 2", rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "b" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	rel := numbersRel()
	res, err := Exec("SELECT age FROM t GROUP BY age ORDER BY age DESC LIMIT 3", rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	want := []float64{50, 40, 30}
	for i, w := range want {
		if !near(res.Rows[i][0].Num, w) {
			t.Fatalf("row %d = %v, want %g", i, res.Rows[i][0], w)
		}
	}
	// Ascending is the default.
	asc, err := Exec("SELECT age FROM t GROUP BY age ORDER BY age LIMIT 1", rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !near(asc.Rows[0][0].Num, 10) {
		t.Fatalf("asc first = %v", asc.Rows[0][0])
	}
}

func TestOrderByAggregateMultiKey(t *testing.T) {
	rel := numbersRel()
	res, err := Exec("SELECT grp, AVG(age) AS a FROM t GROUP BY grp ORDER BY AVG(age) DESC, grp ASC", rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Str != "b" || res.Rows[1][0].Str != "a" {
		t.Fatalf("order = %v", res.Rows)
	}
}

func TestLimitZeroAndParseErrors(t *testing.T) {
	rel := numbersRel()
	res, err := Exec("SELECT age FROM t LIMIT 0", rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("LIMIT 0 returned rows: %v", res.Rows)
	}
	for _, q := range []string{
		"SELECT age FROM t LIMIT x",
		"SELECT age FROM t ORDER age",
		"SELECT age FROM t HAVING",
	} {
		if _, err := Exec(q, rel, nil); err == nil {
			t.Fatalf("no error for %q", q)
		}
	}
}

func TestCompareValues(t *testing.T) {
	if compareValues(NullValue, NumValue(1)) >= 0 {
		t.Fatal("NULL should sort first")
	}
	if compareValues(NumValue(2), NumValue(1)) <= 0 {
		t.Fatal("numeric compare wrong")
	}
	if compareValues(StrValue("a"), StrValue("b")) >= 0 {
		t.Fatal("string compare wrong")
	}
	if compareValues(NullValue, NullValue) != 0 {
		t.Fatal("NULL != NULL")
	}
}

func patientsAndWards() *Catalog {
	patients := dataset.New("patients", []string{"pid", "ward", "age"})
	patients.AppendRow([]string{"p1", "w1", "30"})
	patients.AppendRow([]string{"p2", "w1", "40"})
	patients.AppendRow([]string{"p3", "w2", "50"})
	patients.AppendRow([]string{"p4", "w9", "60"}) // no matching ward
	wards := dataset.New("wards", []string{"wid", "floor"})
	wards.AppendRow([]string{"w1", "f1"})
	wards.AppendRow([]string{"w2", "f2"})
	c := NewCatalog()
	c.Register("patients", patients)
	c.Register("wards", wards)
	return c
}

func TestCatalogExecAndLookup(t *testing.T) {
	c := patientsAndWards()
	res, err := c.Exec("SELECT COUNT(*) FROM patients", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !near(res.Rows[0][0].Num, 4) {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	if _, err := c.Exec("SELECT 1 FROM missing", nil); err == nil {
		t.Fatal("missing table accepted")
	}
	if got := c.Names(); len(got) != 2 || got[0] != "patients" {
		t.Fatalf("names = %v", got)
	}
}

func TestMaterializeJoin(t *testing.T) {
	c := patientsAndWards()
	joined, err := c.MaterializeJoin("pw", "patients", "wards", "ward", "wid")
	if err != nil {
		t.Fatal(err)
	}
	if joined.NumRows() != 3 {
		t.Fatalf("join rows = %d, want 3 (inner join)", joined.NumRows())
	}
	// Query the materialized join like any table.
	res, err := c.Exec("SELECT floor, AVG(age) AS a FROM pw GROUP BY floor ORDER BY floor", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || !near(res.Rows[0][1].Num, 35) || !near(res.Rows[1][1].Num, 50) {
		t.Fatalf("join query = %v", res.Rows)
	}
	// Error paths.
	if _, err := c.MaterializeJoin("x", "nope", "wards", "ward", "wid"); err == nil {
		t.Fatal("missing left table accepted")
	}
	if _, err := c.MaterializeJoin("x", "patients", "wards", "nope", "wid"); err == nil {
		t.Fatal("missing key accepted")
	}
}

func TestMaterializeJoinColumnCollision(t *testing.T) {
	c := NewCatalog()
	a := dataset.New("a", []string{"k", "v"})
	a.AppendRow([]string{"1", "x"})
	b := dataset.New("b", []string{"k", "v"})
	b.AppendRow([]string{"1", "y"})
	c.Register("a", a)
	c.Register("b", b)
	joined, err := c.MaterializeJoin("ab", "a", "b", "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	if joined.AttrIndex("right_v") < 0 {
		t.Fatalf("collision not renamed: %v", joined.Attrs())
	}
	if joined.Value(0, joined.AttrIndex("right_v")) != "y" {
		t.Fatal("right value lost")
	}
}

func TestMaterializeView(t *testing.T) {
	c := patientsAndWards()
	if _, err := c.MaterializeView("old", "SELECT ward, COUNT(*) AS n FROM patients GROUP BY ward", nil); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec("SELECT COUNT(*) FROM old WHERE n >= 2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !near(res.Rows[0][0].Num, 1) {
		t.Fatalf("view query = %v", res.Rows[0][0])
	}
	if _, err := c.MaterializeView("bad", "SELECT nope FROM patients", nil); err == nil {
		t.Fatal("bad view accepted")
	}
}

func TestPlainSelectProjectsPerRow(t *testing.T) {
	rel := numbersRel()
	res, err := Exec("SELECT age FROM t", rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != rel.NumRows() {
		t.Fatalf("rows = %d, want %d", len(res.Rows), rel.NumRows())
	}
}

func TestSelectDistinct(t *testing.T) {
	rel := numbersRel()
	res, err := Exec("SELECT DISTINCT city FROM t", rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("distinct rows = %d, want 2: %v", len(res.Rows), res.Rows)
	}
	res, err = Exec("SELECT DISTINCT grp, city FROM t ORDER BY grp, city", rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("distinct pairs = %d, want 4", len(res.Rows))
	}
}

func TestInList(t *testing.T) {
	rel := numbersRel()
	res, err := Exec("SELECT COUNT(*) FROM t WHERE age IN (10, 30, 50)", rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !near(res.Rows[0][0].Num, 3) {
		t.Fatalf("IN count = %v", res.Rows[0][0])
	}
	res, err = Exec("SELECT COUNT(*) FROM t WHERE city NOT IN ('Y')", rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !near(res.Rows[0][0].Num, 3) {
		t.Fatalf("NOT IN count = %v", res.Rows[0][0])
	}
	if _, err := Exec("SELECT COUNT(*) FROM t WHERE age IN 10", rel, nil); err == nil {
		t.Fatal("IN without parens accepted")
	}
	if _, err := Exec("SELECT COUNT(*) FROM t WHERE age IN (10", rel, nil); err == nil {
		t.Fatal("unclosed IN list accepted")
	}
}
