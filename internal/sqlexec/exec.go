package sqlexec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/guardrail-db/guardrail/internal/core"
	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl/compile"
	"github.com/guardrail-db/guardrail/internal/ml"
	"github.com/guardrail-db/guardrail/internal/obs"
	"github.com/guardrail-db/guardrail/internal/obs/trace"
)

// Value is a SQL value: a number, a string, or NULL.
type Value struct {
	Num   float64
	Str   string
	IsNum bool
	Null  bool
}

// NumValue builds a numeric value.
func NumValue(v float64) Value { return Value{Num: v, IsNum: true} }

// StrValue builds a string value.
func StrValue(s string) Value { return Value{Str: s} }

// NullValue is the SQL NULL.
var NullValue = Value{Null: true}

// String renders the value.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	if v.IsNum {
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	}
	return v.Str
}

// truthy interprets a value as a boolean predicate result.
func (v Value) truthy() bool {
	if v.Null {
		return false
	}
	if v.IsNum {
		return v.Num != 0
	}
	return v.Str != ""
}

// Env supplies models and an optional guard to the executor.
type Env struct {
	// Models maps label attribute names to trained models, consulted by
	// PREDICT(label) / label_pred expressions.
	Models map[string]ml.Model
	// Guard, when non-nil, vets every scanned row before it reaches the
	// model, applying its strategy (raise/ignore/coerce/rectify).
	Guard *core.Guard
	// DisablePushdown turns off predicate pushdown (for the ablation
	// bench); by default WHERE conjuncts that do not reference predictions
	// are evaluated before any model call.
	DisablePushdown bool
	// DisableGuardJIT turns off the executor's scan-triggered guard
	// compilation: by default a still-interpreted guard facing a scan of at
	// least GuardJITRows rows is compiled (open universe, translation
	// validated) before the per-row loop, amortizing the compile over the
	// scan. Compilation failure is not an error — the guard keeps
	// interpreting and sql.guard_jit_failed counts the fallback.
	DisableGuardJIT bool
	// GuardJITRows overrides the scan-size threshold for guard
	// compilation; 0 selects the default of 1024 rows.
	GuardJITRows int
	// Obs receives sql.* counters and the sql.guard / sql.inference stage
	// timings; nil disables instrumentation at zero cost.
	Obs *obs.Registry
	// Trace parents the executor's span tree (sql.query → sql.guard /
	// sql.scan / sql.predict); the zero scope disables tracing at zero
	// cost.
	Trace trace.Scope
}

// Stats reports executor instrumentation (Table 6's breakdown).
type Stats struct {
	RowsScanned   int
	RowsFiltered  int // rows removed by pushed-down predicates before inference
	PredictCalls  int
	GuardTime     time.Duration
	InferenceTime time.Duration
}

// Result is a query result table.
type Result struct {
	Cols  []string
	Rows  [][]Value
	Stats Stats
}

// Column returns the values of a named result column.
func (r *Result) Column(name string) ([]float64, error) {
	idx := -1
	for i, c := range r.Cols {
		if c == name {
			idx = i
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("sqlexec: no result column %q", name)
	}
	out := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		if !row[idx].IsNum {
			return nil, fmt.Errorf("sqlexec: column %q is not numeric", name)
		}
		out[i] = row[idx].Num
	}
	return out, nil
}

// Exec parses and runs query against rel.
func Exec(query string, rel *dataset.Relation, env *Env) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Run(q, rel, env)
}

// Run executes a parsed query.
func Run(q *Query, rel *dataset.Relation, env *Env) (*Result, error) {
	if env == nil {
		env = &Env{}
	}
	if !strings.EqualFold(q.From, rel.Name()) && rel.Name() != "" && q.From != "" {
		// Tolerate mismatches silently only when the query table is the
		// relation's name or the relation is anonymous.
		if !strings.EqualFold(q.From, "t") {
			return nil, fmt.Errorf("sqlexec: query reads table %q, relation is %q", q.From, rel.Name())
		}
	}
	ex := &executor{rel: rel, env: env}
	if err := ex.resolveQuery(q); err != nil {
		return nil, err
	}
	return ex.run(q)
}

type executor struct {
	rel   *dataset.Relation
	env   *Env
	stats Stats
	// preds caches per-row predictions by label attr name.
	preds map[string][]int32
}

// resolveQuery checks every column reference and PREDICT target up front.
func (ex *executor) resolveQuery(q *Query) error {
	var walk func(e Expr) error
	walk = func(e Expr) error {
		switch n := e.(type) {
		case ColRef:
			if ex.rel.AttrIndex(n.Name) < 0 {
				return fmt.Errorf("sqlexec: unknown column %q", n.Name)
			}
			if n.Pred {
				if ex.env.Models == nil || ex.env.Models[n.Name] == nil {
					return fmt.Errorf("sqlexec: no model registered for %q", n.Name)
				}
			}
			return nil
		case Binary:
			if err := walk(n.L); err != nil {
				return err
			}
			return walk(n.R)
		case Unary:
			return walk(n.E)
		case Case:
			for _, w := range n.Whens {
				if err := walk(w.Cond); err != nil {
					return err
				}
				if err := walk(w.Then); err != nil {
					return err
				}
			}
			if n.Else != nil {
				return walk(n.Else)
			}
			return nil
		case Agg:
			if n.Star {
				return nil
			}
			return walk(n.Arg)
		case InList:
			if err := walk(n.E); err != nil {
				return err
			}
			for _, it := range n.Items {
				if err := walk(it); err != nil {
					return err
				}
			}
			return nil
		default:
			return nil
		}
	}
	for _, it := range q.Select {
		if err := walk(it.Expr); err != nil {
			return err
		}
	}
	if q.Where != nil {
		if err := walk(q.Where); err != nil {
			return err
		}
	}
	for _, g := range q.GroupBy {
		if err := walk(g); err != nil {
			return err
		}
	}
	if q.Having != nil {
		if err := walk(q.Having); err != nil {
			return err
		}
	}
	for _, k := range q.OrderBy {
		if err := walk(k.Expr); err != nil {
			return err
		}
	}
	return nil
}

// usesPred reports whether e references any prediction.
func usesPred(e Expr) bool {
	switch n := e.(type) {
	case ColRef:
		return n.Pred
	case Binary:
		return usesPred(n.L) || usesPred(n.R)
	case Unary:
		return usesPred(n.E)
	case Case:
		for _, w := range n.Whens {
			if usesPred(w.Cond) || usesPred(w.Then) {
				return true
			}
		}
		return n.Else != nil && usesPred(n.Else)
	case Agg:
		return !n.Star && usesPred(n.Arg)
	case InList:
		if usesPred(n.E) {
			return true
		}
		for _, it := range n.Items {
			if usesPred(it) {
				return true
			}
		}
	}
	return false
}

// splitConjuncts flattens the AND tree of a WHERE clause.
func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(Binary); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

func (ex *executor) run(q *Query) (*Result, error) {
	rel := ex.rel
	n := rel.NumRows()
	ex.stats.RowsScanned = n
	reg := ex.env.Obs
	reg.Counter("sql.queries").Inc()
	reg.Counter("sql.rows_scanned").Add(int64(n))
	qsp := ex.env.Trace.Start("sql.query").Int("rows", int64(n))
	defer qsp.End()
	tsc := ex.env.Trace.Under(qsp)

	// Stage 0: guard interception — every incoming row is vetted before
	// anything downstream sees it (Example 1.2). Work on copies so Coerce
	// and Rectify do not mutate the caller's relation.
	ssp := tsc.Start("sql.scan")
	rows := make([][]int32, n)
	for i := 0; i < n; i++ {
		rows[i] = rel.Row(i, nil)
	}
	ssp.End()
	if ex.env.Guard != nil {
		// JIT: a big enough scan pays for compiling the guard once. Open
		// universe (nil domains) keeps the compiled form sound for values
		// the guard has never seen; on validation failure the interpreter
		// keeps serving the scan.
		jitRows := ex.env.GuardJITRows
		if jitRows <= 0 {
			jitRows = 1024
		}
		if !ex.env.DisableGuardJIT && n >= jitRows && ex.env.Guard.Engine() == core.EngineAST && !ex.env.Guard.UseCompiled() {
			if _, err := ex.env.Guard.Compile(compile.Options{Obs: reg, Trace: tsc}); err != nil {
				reg.Counter("sql.guard_jit_failed").Inc()
			} else {
				reg.Counter("sql.guard_jit").Inc()
			}
		}
		t0 := time.Now()
		gsp := tsc.Start("sql.guard").Str("engine", ex.env.Guard.Engine().String())
		for i := range rows {
			if _, err := ex.env.Guard.CheckRow(rows[i]); err != nil {
				gsp.End()
				return nil, fmt.Errorf("sqlexec: guard: %w", err)
			}
		}
		gsp.End()
		ex.stats.GuardTime = time.Since(t0)
		reg.Histogram("sql.guard").Observe(int64(ex.stats.GuardTime))
	}

	// Stage 1: predicate pushdown — evaluate prediction-free conjuncts
	// before running the model.
	psp := tsc.Start("sql.plan")
	var pre, post []Expr
	if q.Where != nil {
		for _, c := range splitConjuncts(q.Where) {
			if !ex.env.DisablePushdown && !usesPred(c) {
				pre = append(pre, c)
			} else {
				post = append(post, c)
			}
		}
	}
	var live []int
	for i := range rows {
		keep := true
		for _, c := range pre {
			v, err := ex.evalRow(c, rows[i])
			if err != nil {
				psp.End()
				return nil, err
			}
			if !v.truthy() {
				keep = false
				break
			}
		}
		if keep {
			live = append(live, i)
		}
	}
	ex.stats.RowsFiltered = n - len(live)
	reg.Counter("sql.rows_filtered").Add(int64(ex.stats.RowsFiltered))
	psp.Int("filtered", int64(ex.stats.RowsFiltered)).End()

	// Stage 2: compute needed predictions for surviving rows.
	labels := map[string]bool{}
	collectPredLabels(q, labels)
	ex.preds = map[string][]int32{}
	for label := range labels {
		model := ex.env.Models[label]
		col := make([]int32, n)
		t0 := time.Now()
		msp := tsc.Start("sql.predict").Str("label", label).Int("rows", int64(len(live)))
		for _, i := range live {
			col[i] = model.Predict(rows[i])
			ex.stats.PredictCalls++
		}
		msp.End()
		dt := time.Since(t0)
		ex.stats.InferenceTime += dt
		reg.Histogram("sql.inference").Observe(int64(dt))
		ex.preds[label] = col
	}
	reg.Counter("sql.predict_calls").Add(int64(ex.stats.PredictCalls))

	// Stage 3: residual WHERE.
	var final []int
	for _, i := range live {
		keep := true
		for _, c := range post {
			v, err := ex.evalRowIdx(c, rows[i], i)
			if err != nil {
				return nil, err
			}
			if !v.truthy() {
				keep = false
				break
			}
		}
		if keep {
			final = append(final, i)
		}
	}

	// Stage 4: grouping.
	type grp struct {
		key  string
		rows []int
	}
	var groups []*grp
	if len(q.GroupBy) == 0 && !hasAggregates(q) && q.Having == nil {
		// Plain projection: one output row per input row.
		for _, i := range final {
			groups = append(groups, &grp{rows: []int{i}})
		}
	} else if len(q.GroupBy) == 0 {
		groups = []*grp{{rows: final}}
	} else {
		byKey := map[string]*grp{}
		for _, i := range final {
			var kb strings.Builder
			for _, g := range q.GroupBy {
				v, err := ex.evalRowIdx(g, rows[i], i)
				if err != nil {
					return nil, err
				}
				kb.WriteString(v.String())
				kb.WriteByte('\x00')
			}
			k := kb.String()
			gp := byKey[k]
			if gp == nil {
				gp = &grp{key: k}
				byKey[k] = gp
				groups = append(groups, gp)
			}
			gp.rows = append(gp.rows, i)
		}
		sort.Slice(groups, func(a, b int) bool { return groups[a].key < groups[b].key })
	}

	// Stage 5: HAVING over groups.
	if q.Having != nil {
		var kept []*grp
		for _, g := range groups {
			v, err := ex.evalGroup(q.Having, rows, g.rows)
			if err != nil {
				return nil, err
			}
			if v.truthy() {
				kept = append(kept, g)
			}
		}
		groups = kept
	}

	// Stage 6: ORDER BY over groups (before projection so keys may use
	// expressions that are not projected).
	if len(q.OrderBy) > 0 {
		keys := make([][]Value, len(groups))
		for i, g := range groups {
			keys[i] = make([]Value, len(q.OrderBy))
			for ki, k := range q.OrderBy {
				v, err := ex.evalGroup(k.Expr, rows, g.rows)
				if err != nil {
					return nil, err
				}
				keys[i][ki] = v
			}
		}
		idx := make([]int, len(groups))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			for ki, k := range q.OrderBy {
				c := compareValues(keys[idx[a]][ki], keys[idx[b]][ki])
				if c == 0 {
					continue
				}
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		sorted := make([]*grp, len(groups))
		for i, j := range idx {
			sorted[i] = groups[j]
		}
		groups = sorted
	}

	// Stage 7: projection and LIMIT.
	res := &Result{}
	for ci, it := range q.Select {
		res.Cols = append(res.Cols, columnName(it, ci))
	}
	seen := map[string]bool{}
	for _, g := range groups {
		if len(q.GroupBy) == 0 && len(g.rows) == 0 && !hasAggregates(q) {
			continue
		}
		out := make([]Value, len(q.Select))
		for ci, it := range q.Select {
			v, err := ex.evalGroup(it.Expr, rows, g.rows)
			if err != nil {
				return nil, err
			}
			out[ci] = v
		}
		if q.Distinct {
			key := ""
			for _, v := range out {
				key += v.String() + "\x00"
			}
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		res.Rows = append(res.Rows, out)
		if q.Limit >= 0 && len(res.Rows) >= q.Limit {
			break
		}
	}
	if q.Limit == 0 {
		res.Rows = nil
	}
	res.Stats = ex.stats
	return res, nil
}

// compareValues orders two SQL values: NULL first, then numeric, then
// string comparison.
func compareValues(a, b Value) int {
	switch {
	case a.Null && b.Null:
		return 0
	case a.Null:
		return -1
	case b.Null:
		return 1
	case a.IsNum && b.IsNum:
		switch {
		case a.Num < b.Num:
			return -1
		case a.Num > b.Num:
			return 1
		}
		return 0
	}
	return strings.Compare(a.String(), b.String())
}

func hasAggregates(q *Query) bool {
	for _, it := range q.Select {
		if exprHasAgg(it.Expr) {
			return true
		}
	}
	return false
}

func exprHasAgg(e Expr) bool {
	switch n := e.(type) {
	case Agg:
		return true
	case Binary:
		return exprHasAgg(n.L) || exprHasAgg(n.R)
	case Unary:
		return exprHasAgg(n.E)
	case Case:
		for _, w := range n.Whens {
			if exprHasAgg(w.Cond) || exprHasAgg(w.Then) {
				return true
			}
		}
		return n.Else != nil && exprHasAgg(n.Else)
	}
	return false
}

func collectPredLabels(q *Query, out map[string]bool) {
	var walk func(e Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case ColRef:
			if n.Pred {
				out[n.Name] = true
			}
		case Binary:
			walk(n.L)
			walk(n.R)
		case Unary:
			walk(n.E)
		case Case:
			for _, w := range n.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			if n.Else != nil {
				walk(n.Else)
			}
		case Agg:
			if !n.Star {
				walk(n.Arg)
			}
		case InList:
			walk(n.E)
			for _, it := range n.Items {
				walk(it)
			}
		}
	}
	for _, it := range q.Select {
		walk(it.Expr)
	}
	if q.Where != nil {
		walk(q.Where)
	}
	for _, g := range q.GroupBy {
		walk(g)
	}
	if q.Having != nil {
		walk(q.Having)
	}
	for _, k := range q.OrderBy {
		walk(k.Expr)
	}
}

func columnName(it SelectItem, i int) string {
	if it.Alias != "" {
		return it.Alias
	}
	switch n := it.Expr.(type) {
	case ColRef:
		if n.Pred {
			return n.Name + "_pred"
		}
		return n.Name
	case Agg:
		if n.Star {
			return "COUNT(*)"
		}
		return n.Fn
	}
	return fmt.Sprintf("col%d", i)
}

// evalRow evaluates a prediction-free expression against one row.
func (ex *executor) evalRow(e Expr, row []int32) (Value, error) {
	return ex.evalRowIdx(e, row, -1)
}

// evalRowIdx evaluates e against one row; idx supplies the row's index for
// prediction lookups (-1 when predictions are unavailable).
func (ex *executor) evalRowIdx(e Expr, row []int32, idx int) (Value, error) {
	switch n := e.(type) {
	case NumLit:
		return NumValue(n.V), nil
	case StrLit:
		return StrValue(n.V), nil
	case ColRef:
		a := ex.rel.AttrIndex(n.Name)
		if n.Pred {
			if idx < 0 {
				return NullValue, fmt.Errorf("sqlexec: prediction for %q unavailable in this context", n.Name)
			}
			return ex.attrValue(a, ex.preds[n.Name][idx]), nil
		}
		return ex.attrValue(a, row[a]), nil
	case Unary:
		v, err := ex.evalRowIdx(n.E, row, idx)
		if err != nil {
			return NullValue, err
		}
		if n.Op == "NOT" {
			return boolValue(!v.truthy()), nil
		}
		if !v.IsNum {
			return NullValue, fmt.Errorf("sqlexec: negating non-number")
		}
		return NumValue(-v.Num), nil
	case Binary:
		return ex.evalBinary(n, row, idx)
	case Case:
		for _, w := range n.Whens {
			c, err := ex.evalRowIdx(w.Cond, row, idx)
			if err != nil {
				return NullValue, err
			}
			if c.truthy() {
				return ex.evalRowIdx(w.Then, row, idx)
			}
		}
		if n.Else != nil {
			return ex.evalRowIdx(n.Else, row, idx)
		}
		return NullValue, nil
	case Agg:
		return NullValue, fmt.Errorf("sqlexec: aggregate %s in row context", n.Fn)
	case InList:
		v, err := ex.evalRowIdx(n.E, row, idx)
		if err != nil {
			return NullValue, err
		}
		if v.Null {
			return NullValue, nil
		}
		found := false
		for _, item := range n.Items {
			iv, err := ex.evalRowIdx(item, row, idx)
			if err != nil {
				return NullValue, err
			}
			if iv.Null {
				continue
			}
			if (v.IsNum && iv.IsNum && v.Num == iv.Num) || (!v.IsNum || !iv.IsNum) && v.String() == iv.String() {
				found = true
				break
			}
		}
		return boolValue(found != n.Neg), nil
	}
	return NullValue, fmt.Errorf("sqlexec: unhandled expression %T", e)
}

func (ex *executor) attrValue(attr int, code int32) Value {
	if code == dataset.Missing {
		return NullValue
	}
	s := ex.rel.Dict(attr).Value(code)
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return NumValue(f)
	}
	return StrValue(s)
}

func boolValue(b bool) Value {
	if b {
		return NumValue(1)
	}
	return NumValue(0)
}

func (ex *executor) evalBinary(n Binary, row []int32, idx int) (Value, error) {
	l, err := ex.evalRowIdx(n.L, row, idx)
	if err != nil {
		return NullValue, err
	}
	if n.Op == "AND" {
		if !l.truthy() {
			return boolValue(false), nil
		}
		r, err := ex.evalRowIdx(n.R, row, idx)
		if err != nil {
			return NullValue, err
		}
		return boolValue(r.truthy()), nil
	}
	if n.Op == "OR" {
		if l.truthy() {
			return boolValue(true), nil
		}
		r, err := ex.evalRowIdx(n.R, row, idx)
		if err != nil {
			return NullValue, err
		}
		return boolValue(r.truthy()), nil
	}
	r, err := ex.evalRowIdx(n.R, row, idx)
	if err != nil {
		return NullValue, err
	}
	if l.Null || r.Null {
		return NullValue, nil
	}
	switch n.Op {
	case "=", "!=":
		var eq bool
		if l.IsNum && r.IsNum {
			eq = l.Num == r.Num
		} else {
			eq = l.String() == r.String()
		}
		if n.Op == "!=" {
			eq = !eq
		}
		return boolValue(eq), nil
	case "<", ">", "<=", ">=":
		var cmp int
		if l.IsNum && r.IsNum {
			switch {
			case l.Num < r.Num:
				cmp = -1
			case l.Num > r.Num:
				cmp = 1
			}
		} else {
			cmp = strings.Compare(l.String(), r.String())
		}
		switch n.Op {
		case "<":
			return boolValue(cmp < 0), nil
		case ">":
			return boolValue(cmp > 0), nil
		case "<=":
			return boolValue(cmp <= 0), nil
		default:
			return boolValue(cmp >= 0), nil
		}
	case "+", "-", "*", "/":
		if !l.IsNum || !r.IsNum {
			return NullValue, fmt.Errorf("sqlexec: arithmetic on non-numbers")
		}
		switch n.Op {
		case "+":
			return NumValue(l.Num + r.Num), nil
		case "-":
			return NumValue(l.Num - r.Num), nil
		case "*":
			return NumValue(l.Num * r.Num), nil
		default:
			if r.Num == 0 {
				return NullValue, nil
			}
			return NumValue(l.Num / r.Num), nil
		}
	}
	return NullValue, fmt.Errorf("sqlexec: unknown operator %q", n.Op)
}

// evalGroup evaluates a select expression over a group: aggregates fold
// their argument across the group's rows; bare columns take the first
// row's value (the group key case).
func (ex *executor) evalGroup(e Expr, rows [][]int32, group []int) (Value, error) {
	switch n := e.(type) {
	case Agg:
		return ex.evalAgg(n, rows, group)
	case Binary:
		l, err := ex.evalGroup(n.L, rows, group)
		if err != nil {
			return NullValue, err
		}
		r, err := ex.evalGroup(n.R, rows, group)
		if err != nil {
			return NullValue, err
		}
		return ex.evalBinary(Binary{Op: n.Op, L: litOf(l), R: litOf(r)}, nil, -1)
	case Unary:
		v, err := ex.evalGroup(n.E, rows, group)
		if err != nil {
			return NullValue, err
		}
		return ex.evalRowIdx(Unary{Op: n.Op, E: litOf(v)}, nil, -1)
	default:
		if len(group) == 0 {
			return NullValue, nil
		}
		return ex.evalRowIdx(e, rows[group[0]], group[0])
	}
}

// litOf re-wraps a computed value as a literal for operator reuse.
func litOf(v Value) Expr {
	if v.Null {
		return Case{Whens: []WhenArm{{Cond: NumLit{V: 0}, Then: NumLit{V: 0}}}} // evaluates to NULL
	}
	if v.IsNum {
		return NumLit{V: v.Num}
	}
	return StrLit{V: v.Str}
}

func (ex *executor) evalAgg(n Agg, rows [][]int32, group []int) (Value, error) {
	if n.Star {
		return NumValue(float64(len(group))), nil
	}
	var vals []float64
	count := 0
	for _, i := range group {
		v, err := ex.evalRowIdx(n.Arg, rows[i], i)
		if err != nil {
			return NullValue, err
		}
		if v.Null {
			continue
		}
		count++
		if v.IsNum {
			vals = append(vals, v.Num)
		} else if n.Fn != "COUNT" {
			return NullValue, fmt.Errorf("sqlexec: %s over non-numeric values", n.Fn)
		}
	}
	switch n.Fn {
	case "COUNT":
		return NumValue(float64(count)), nil
	case "SUM", "AVG":
		var s float64
		for _, v := range vals {
			s += v
		}
		if n.Fn == "SUM" {
			return NumValue(s), nil
		}
		if len(vals) == 0 {
			return NullValue, nil
		}
		return NumValue(s / float64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return NullValue, nil
		}
		m := vals[0]
		for _, v := range vals[1:] {
			if (n.Fn == "MIN" && v < m) || (n.Fn == "MAX" && v > m) {
				m = v
			}
		}
		return NumValue(m), nil
	}
	return NullValue, fmt.Errorf("sqlexec: unknown aggregate %q", n.Fn)
}
