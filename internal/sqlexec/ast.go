package sqlexec

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is a SQL expression node.
type Expr interface{ exprNode() }

// ColRef references a column, optionally table-qualified. Pred marks the
// "label_pred" / PREDICT(label) form that resolves to a model prediction.
type ColRef struct {
	Table string
	Name  string
	Pred  bool
}

// NumLit is a numeric literal.
type NumLit struct{ V float64 }

// StrLit is a string literal.
type StrLit struct{ V string }

// Binary is a binary operation: = != < > <= >= AND OR + - * /.
type Binary struct {
	Op   string
	L, R Expr
}

// Unary is NOT or numeric negation.
type Unary struct {
	Op string // "NOT" or "-"
	E  Expr
}

// Case is CASE WHEN cond THEN v [ELSE e] END (single WHEN arm suffices for
// the paper's queries; multiple arms are supported).
type Case struct {
	Whens []WhenArm
	Else  Expr
}

// WhenArm is one WHEN/THEN pair.
type WhenArm struct {
	Cond Expr
	Then Expr
}

// Agg is an aggregate call: AVG, SUM, COUNT, MIN, MAX. Star marks COUNT(*).
type Agg struct {
	Fn   string
	Arg  Expr
	Star bool
}

// InList is "e IN (v1, v2, ...)" or its negation.
type InList struct {
	E     Expr
	Items []Expr
	Neg   bool
}

func (ColRef) exprNode() {}
func (NumLit) exprNode() {}
func (StrLit) exprNode() {}
func (Binary) exprNode() {}
func (Unary) exprNode()  {}
func (Case) exprNode()   {}
func (Agg) exprNode()    {}
func (InList) exprNode() {}

// SelectItem is one projection with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// Query is a parsed SELECT statement.
type Query struct {
	Distinct bool
	Select   []SelectItem
	From     string
	Where    Expr // nil when absent
	GroupBy  []Expr
	Having   Expr // nil when absent
	OrderBy  []OrderKey
	Limit    int // -1 when absent
}

// Parse parses a single SELECT query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &qparser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tEOF && !(p.cur().kind == tSymbol && p.cur().text == ";") {
		return nil, fmt.Errorf("sqlexec: trailing input at %d: %q", p.cur().pos, p.cur().text)
	}
	return q, nil
}

type qparser struct {
	toks []token
	i    int
}

func (p *qparser) cur() token { return p.toks[p.i] }
func (p *qparser) advance()   { p.i++ }

func (p *qparser) isKw(kw string) bool {
	t := p.cur()
	return t.kind == tIdent && strings.EqualFold(t.text, kw)
}

func (p *qparser) expectKw(kw string) error {
	if !p.isKw(kw) {
		return fmt.Errorf("sqlexec: expected %s at %d, got %q", kw, p.cur().pos, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *qparser) isSym(s string) bool {
	t := p.cur()
	return t.kind == tSymbol && t.text == s
}

func (p *qparser) query() (*Query, error) {
	q := &Query{Limit: -1}
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	if p.isKw("DISTINCT") {
		q.Distinct = true
		p.advance()
	}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if !p.isSym(",") {
			break
		}
		p.advance()
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	if p.cur().kind != tIdent {
		return nil, fmt.Errorf("sqlexec: expected table name at %d", p.cur().pos)
	}
	q.From = p.cur().text
	p.advance()
	if p.isKw("WHERE") {
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.isKw("GROUP") {
		p.advance()
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, e)
			if !p.isSym(",") {
				break
			}
			p.advance()
		}
	}
	// Accept the WHERE-after-GROUP-BY order the paper's case study uses.
	if p.isKw("WHERE") && q.Where == nil {
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.isKw("HAVING") {
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		q.Having = e
	}
	if p.isKw("ORDER") {
		p.advance()
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.isKw("ASC") {
				p.advance()
			} else if p.isKw("DESC") {
				key.Desc = true
				p.advance()
			}
			q.OrderBy = append(q.OrderBy, key)
			if !p.isSym(",") {
				break
			}
			p.advance()
		}
	}
	if p.isKw("LIMIT") {
		p.advance()
		if p.cur().kind != tNumber {
			return nil, fmt.Errorf("sqlexec: expected LIMIT count at %d", p.cur().pos)
		}
		n, err := strconv.Atoi(p.cur().text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sqlexec: bad LIMIT %q at %d", p.cur().text, p.cur().pos)
		}
		q.Limit = n
		p.advance()
	}
	return q, nil
}

func (p *qparser) selectItem() (SelectItem, error) {
	e, err := p.expr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.isKw("AS") {
		p.advance()
		if p.cur().kind != tIdent {
			return item, fmt.Errorf("sqlexec: expected alias at %d", p.cur().pos)
		}
		item.Alias = p.cur().text
		p.advance()
	}
	return item, nil
}

func (p *qparser) expr() (Expr, error) { return p.orExpr() }

func (p *qparser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.isKw("OR") {
		p.advance()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *qparser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.isKw("AND") {
		p.advance()
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

// notExpr handles SQL's NOT, which binds looser than comparisons.
func (p *qparser) notExpr() (Expr, error) {
	if p.isKw("NOT") {
		p.advance()
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "NOT", E: e}, nil
	}
	return p.cmpExpr()
}

var cmpOps = map[string]string{"=": "=", "==": "=", "!=": "!=", "<>": "!=", "<": "<", ">": ">", "<=": "<=", ">=": ">="}

func (p *qparser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	neg := false
	if p.isKw("NOT") && p.i+1 < len(p.toks) && p.toks[p.i+1].kind == tIdent && strings.EqualFold(p.toks[p.i+1].text, "IN") {
		neg = true
		p.advance()
	}
	if p.isKw("IN") {
		p.advance()
		if !p.isSym("(") {
			return nil, fmt.Errorf("sqlexec: expected '(' after IN at %d", p.cur().pos)
		}
		p.advance()
		in := InList{E: l, Neg: neg}
		for {
			item, err := p.expr()
			if err != nil {
				return nil, err
			}
			in.Items = append(in.Items, item)
			if !p.isSym(",") {
				break
			}
			p.advance()
		}
		if !p.isSym(")") {
			return nil, fmt.Errorf("sqlexec: expected ')' after IN list at %d", p.cur().pos)
		}
		p.advance()
		return in, nil
	}
	if neg {
		return nil, fmt.Errorf("sqlexec: expected IN after NOT at %d", p.cur().pos)
	}
	if p.cur().kind == tSymbol {
		if op, ok := cmpOps[p.cur().text]; ok {
			p.advance()
			// Tolerate doubled equals written as two tokens ("==").
			if op == "=" && p.isSym("=") {
				p.advance()
			}
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *qparser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.isSym("+") || p.isSym("-") {
		op := p.cur().text
		p.advance()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *qparser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.isSym("*") || p.isSym("/") {
		op := p.cur().text
		p.advance()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *qparser) unary() (Expr, error) {
	if p.isSym("-") {
		p.advance()
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "-", E: e}, nil
	}
	return p.primary()
}

var aggFns = map[string]bool{"AVG": true, "SUM": true, "COUNT": true, "MIN": true, "MAX": true}

func (p *qparser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlexec: bad number %q at %d", t.text, t.pos)
		}
		p.advance()
		return NumLit{V: v}, nil
	case t.kind == tString:
		p.advance()
		return StrLit{V: t.text}, nil
	case t.kind == tSymbol && t.text == "(":
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if !p.isSym(")") {
			return nil, fmt.Errorf("sqlexec: expected ')' at %d", p.cur().pos)
		}
		p.advance()
		return e, nil
	case t.kind == tIdent:
		upper := strings.ToUpper(t.text)
		if p.isKw("CASE") {
			return p.caseExpr()
		}
		if aggFns[upper] {
			p.advance()
			if !p.isSym("(") {
				return nil, fmt.Errorf("sqlexec: expected '(' after %s at %d", upper, p.cur().pos)
			}
			p.advance()
			if upper == "COUNT" && p.isSym("*") {
				p.advance()
				if !p.isSym(")") {
					return nil, fmt.Errorf("sqlexec: expected ')' at %d", p.cur().pos)
				}
				p.advance()
				return Agg{Fn: "COUNT", Star: true}, nil
			}
			arg, err := p.expr()
			if err != nil {
				return nil, err
			}
			if !p.isSym(")") {
				return nil, fmt.Errorf("sqlexec: expected ')' at %d", p.cur().pos)
			}
			p.advance()
			return Agg{Fn: upper, Arg: arg}, nil
		}
		if upper == "PREDICT" {
			p.advance()
			if !p.isSym("(") {
				return nil, fmt.Errorf("sqlexec: expected '(' after PREDICT at %d", p.cur().pos)
			}
			p.advance()
			ref, err := p.colRef()
			if err != nil {
				return nil, err
			}
			if !p.isSym(")") {
				return nil, fmt.Errorf("sqlexec: expected ')' at %d", p.cur().pos)
			}
			p.advance()
			ref.Pred = true
			return ref, nil
		}
		return p.colRef()
	}
	return nil, fmt.Errorf("sqlexec: unexpected token %q at %d", t.text, t.pos)
}

func (p *qparser) colRef() (ColRef, error) {
	if p.cur().kind != tIdent {
		return ColRef{}, fmt.Errorf("sqlexec: expected column at %d", p.cur().pos)
	}
	ref := ColRef{Name: p.cur().text}
	p.advance()
	if p.isSym(".") {
		p.advance()
		if p.cur().kind != tIdent {
			return ColRef{}, fmt.Errorf("sqlexec: expected column after '.' at %d", p.cur().pos)
		}
		ref.Table, ref.Name = ref.Name, p.cur().text
		p.advance()
	}
	// The "<attr>_pred" convention from the paper's case study.
	if strings.HasSuffix(ref.Name, "_pred") {
		ref.Name = strings.TrimSuffix(ref.Name, "_pred")
		ref.Pred = true
	}
	return ref, nil
}

func (p *qparser) caseExpr() (Expr, error) {
	if err := p.expectKw("CASE"); err != nil {
		return nil, err
	}
	var c Case
	for p.isKw("WHEN") {
		p.advance()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		then, err := p.expr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenArm{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, fmt.Errorf("sqlexec: CASE without WHEN at %d", p.cur().pos)
	}
	if p.isKw("ELSE") {
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return c, nil
}
