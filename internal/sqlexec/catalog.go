package sqlexec

import (
	"fmt"
	"sort"
	"strings"

	"github.com/guardrail-db/guardrail/internal/dataset"
)

// Catalog holds named relations, including materialized views. The paper's
// prototype "does not natively support the JOIN operation; one can use
// materialized views to pre-compute the results and use our query executor
// over multiple tables" (§7) — MaterializeJoin and MaterializeView provide
// exactly that workflow.
type Catalog struct {
	tables map[string]*dataset.Relation
}

// NewCatalog builds an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: map[string]*dataset.Relation{}}
}

// Register adds rel under name, replacing any previous table.
func (c *Catalog) Register(name string, rel *dataset.Relation) {
	c.tables[strings.ToLower(name)] = rel
}

// Lookup resolves a table name.
func (c *Catalog) Lookup(name string) (*dataset.Relation, bool) {
	rel, ok := c.tables[strings.ToLower(name)]
	return rel, ok
}

// Names lists registered tables, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Exec runs a query against the catalog, resolving FROM.
func (c *Catalog) Exec(query string, env *Env) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	rel, ok := c.Lookup(q.From)
	if !ok {
		return nil, fmt.Errorf("sqlexec: no table %q in catalog (have %v)", q.From, c.Names())
	}
	return Run(q, rel, env)
}

// MaterializeView executes query and registers its result table under
// name. Every result cell is stored as its string rendering, so views
// compose with further queries (numbers re-parse transparently).
func (c *Catalog) MaterializeView(name, query string, env *Env) (*dataset.Relation, error) {
	res, err := c.Exec(query, env)
	if err != nil {
		return nil, err
	}
	rel := dataset.New(name, res.Cols)
	row := make([]string, len(res.Cols))
	for _, r := range res.Rows {
		for i, v := range r {
			if v.Null {
				row[i] = ""
			} else {
				row[i] = v.String()
			}
		}
		if err := rel.AppendRow(row); err != nil {
			return nil, err
		}
	}
	c.Register(name, rel)
	return rel, nil
}

// MaterializeJoin pre-computes an inner equi-join of two registered tables
// on leftKey = rightKey and registers it under name. Column names from the
// right table that collide with left-table names get a "right_" prefix.
func (c *Catalog) MaterializeJoin(name, left, right, leftKey, rightKey string) (*dataset.Relation, error) {
	lrel, ok := c.Lookup(left)
	if !ok {
		return nil, fmt.Errorf("sqlexec: no table %q", left)
	}
	rrel, ok := c.Lookup(right)
	if !ok {
		return nil, fmt.Errorf("sqlexec: no table %q", right)
	}
	lk := lrel.AttrIndex(leftKey)
	if lk < 0 {
		return nil, fmt.Errorf("sqlexec: %s has no column %q", left, leftKey)
	}
	rk := rrel.AttrIndex(rightKey)
	if rk < 0 {
		return nil, fmt.Errorf("sqlexec: %s has no column %q", right, rightKey)
	}

	cols := append([]string(nil), lrel.Attrs()...)
	taken := map[string]bool{}
	for _, a := range cols {
		taken[a] = true
	}
	var rightCols []int
	for a := 0; a < rrel.NumAttrs(); a++ {
		if a == rk {
			continue
		}
		name := rrel.Attr(a)
		if taken[name] {
			name = "right_" + name
		}
		taken[name] = true
		cols = append(cols, name)
		rightCols = append(rightCols, a)
	}
	out := dataset.New(name, cols)

	// Hash join on string values (codes are not comparable across tables).
	index := map[string][]int{}
	for i := 0; i < rrel.NumRows(); i++ {
		index[rrel.Value(i, rk)] = append(index[rrel.Value(i, rk)], i)
	}
	row := make([]string, len(cols))
	for i := 0; i < lrel.NumRows(); i++ {
		matches := index[lrel.Value(i, lk)]
		for _, j := range matches {
			for a := 0; a < lrel.NumAttrs(); a++ {
				row[a] = lrel.Value(i, a)
			}
			for k, a := range rightCols {
				row[lrel.NumAttrs()+k] = rrel.Value(j, a)
			}
			if err := out.AppendRow(row); err != nil {
				return nil, err
			}
		}
	}
	c.Register(name, out)
	return out, nil
}
