package sqlexec

import "testing"

// FuzzParse feeds arbitrary text to the SQL parser: it must never panic,
// and any accepted query must have a non-empty SELECT list and FROM table.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT COUNT(*), AVG(x) FROM t WHERE a = 'b' GROUP BY c",
		"SELECT CASE WHEN a = 1 THEN 2 ELSE 3 END FROM t",
		"SELECT PREDICT(y) FROM t WHERE NOT a = 'x' OR b < 3",
		"SELECT a FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY a DESC LIMIT 5",
		"SELECT t.a_pred FROM t",
		"SELECT",
		"SELECT FROM",
		"SELECT a FROM t WHERE ((",
		"SELECT 'unterminated FROM t",
		"SELECT a + b * -c / 2 FROM t;",
		"\xff\xfe",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if len(q.Select) == 0 {
			t.Fatalf("accepted query with empty SELECT: %q", src)
		}
		if q.From == "" {
			t.Fatalf("accepted query with empty FROM: %q", src)
		}
	})
}

// FuzzExec executes accepted queries against a tiny relation: the executor
// must never panic regardless of the query shape.
func FuzzExec(f *testing.F) {
	seeds := []string{
		"SELECT grp, AVG(age) FROM t GROUP BY grp",
		"SELECT COUNT(*) FROM t WHERE age > 20 AND city = 'X'",
		"SELECT SUM(age) / COUNT(*) FROM t HAVING SUM(age) > 0",
		"SELECT age FROM t ORDER BY age LIMIT 2",
		"SELECT MIN(age), MAX(age) FROM t WHERE grp != 'a'",
		"SELECT CASE WHEN age > 25 THEN 'old' ELSE 'young' END FROM t GROUP BY grp",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		rel := numbersRel()
		_, _ = Exec(src, rel, nil) // must not panic
	})
}
