package dataset

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Relation {
	r := New("zip", []string{"PostalCode", "City", "State"})
	rows := [][]string{
		{"94704", "Berkeley", "CA"},
		{"94704", "Berkeley", "CA"},
		{"10001", "NewYork", "NY"},
		{"60601", "Chicago", "IL"},
	}
	for _, row := range rows {
		if err := r.AppendRow(row); err != nil {
			panic(err)
		}
	}
	return r
}

func TestBasicShape(t *testing.T) {
	r := sample()
	if got := r.NumRows(); got != 4 {
		t.Fatalf("NumRows = %d, want 4", got)
	}
	if got := r.NumAttrs(); got != 3 {
		t.Fatalf("NumAttrs = %d, want 3", got)
	}
	if got := r.AttrIndex("City"); got != 1 {
		t.Fatalf("AttrIndex(City) = %d, want 1", got)
	}
	if got := r.AttrIndex("missing"); got != -1 {
		t.Fatalf("AttrIndex(missing) = %d, want -1", got)
	}
	if got := r.Value(0, 1); got != "Berkeley" {
		t.Fatalf("Value(0,1) = %q, want Berkeley", got)
	}
	if got := r.Cardinality(0); got != 3 {
		t.Fatalf("Cardinality(PostalCode) = %d, want 3", got)
	}
}

func TestDictInternStable(t *testing.T) {
	d := NewDict()
	a := d.Intern("x")
	b := d.Intern("y")
	if a2 := d.Intern("x"); a2 != a {
		t.Fatalf("re-intern changed code: %d vs %d", a2, a)
	}
	if a == b {
		t.Fatalf("distinct values share code %d", a)
	}
	if d.Value(a) != "x" || d.Value(b) != "y" {
		t.Fatalf("round trip failed: %q %q", d.Value(a), d.Value(b))
	}
	if d.Value(Missing) != "NaN" {
		t.Fatalf("Missing renders as %q, want NaN", d.Value(Missing))
	}
}

func TestAppendRowArity(t *testing.T) {
	r := New("t", []string{"a", "b"})
	if err := r.AppendRow([]string{"1"}); err == nil {
		t.Fatal("expected arity error")
	}
	if err := r.AppendCodes([]int32{0, 0, 0}); err == nil {
		t.Fatal("expected arity error for codes")
	}
}

func TestMissingCell(t *testing.T) {
	r := New("t", []string{"a", "b"})
	if err := r.AppendRow([]string{"x", ""}); err != nil {
		t.Fatal(err)
	}
	if got := r.Code(0, 1); got != Missing {
		t.Fatalf("empty cell code = %d, want Missing", got)
	}
	if got := r.Value(0, 1); got != "NaN" {
		t.Fatalf("empty cell value = %q, want NaN", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := sample()
	c := r.Clone()
	c.SetCode(0, 1, c.Intern(1, "Oakland"))
	if r.Value(0, 1) != "Berkeley" {
		t.Fatalf("mutating clone leaked into original: %q", r.Value(0, 1))
	}
	if c.Value(0, 1) != "Oakland" {
		t.Fatalf("clone mutation lost: %q", c.Value(0, 1))
	}
}

func TestSelectRows(t *testing.T) {
	r := sample()
	s := r.SelectRows([]int{2, 0})
	if s.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", s.NumRows())
	}
	if s.Value(0, 1) != "NewYork" || s.Value(1, 1) != "Berkeley" {
		t.Fatalf("wrong rows selected: %q %q", s.Value(0, 1), s.Value(1, 1))
	}
}

func TestSplitPartitions(t *testing.T) {
	r := sample()
	train, test := r.Split(0.5, 1)
	if train.NumRows()+test.NumRows() != r.NumRows() {
		t.Fatalf("split loses rows: %d + %d != %d", train.NumRows(), test.NumRows(), r.NumRows())
	}
	if train.NumRows() != 2 {
		t.Fatalf("train rows = %d, want 2", train.NumRows())
	}
	// Deterministic for a fixed seed.
	t2, _ := r.Split(0.5, 1)
	for i := 0; i < t2.NumRows(); i++ {
		if t2.Value(i, 0) != train.Value(i, 0) {
			t.Fatalf("split not deterministic at row %d", i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := sample()
	var buf bytes.Buffer
	if err := r.ToCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := FromCSV(&buf, "zip")
	if err != nil {
		t.Fatal(err)
	}
	if r2.NumRows() != r.NumRows() || r2.NumAttrs() != r.NumAttrs() {
		t.Fatalf("shape changed: %v vs %v", r2, r)
	}
	for i := 0; i < r.NumRows(); i++ {
		for j := 0; j < r.NumAttrs(); j++ {
			if r.Value(i, j) != r2.Value(i, j) {
				t.Fatalf("cell (%d,%d) changed: %q vs %q", i, j, r.Value(i, j), r2.Value(i, j))
			}
		}
	}
}

func TestFromCSVErrors(t *testing.T) {
	if _, err := FromCSV(strings.NewReader(""), "x"); err == nil {
		t.Fatal("expected error on empty input")
	}
	if _, err := FromCSV(strings.NewReader("a,b\n1\n"), "x"); err == nil {
		t.Fatal("expected error on ragged row")
	}
}

func TestRowBufferReuse(t *testing.T) {
	r := sample()
	buf := make([]int32, 0, 8)
	row0 := r.Row(0, buf)
	row2 := r.Row(2, row0)
	if r.Dict(1).Value(row2[1]) != "NewYork" {
		t.Fatalf("reused buffer holds wrong row: %v", row2)
	}
}

// Property: interning any sequence of strings round-trips through Value.
func TestDictRoundTripProperty(t *testing.T) {
	f := func(vals []string) bool {
		d := NewDict()
		for _, v := range vals {
			c := d.Intern(v)
			if d.Value(c) != v {
				return false
			}
		}
		return d.Len() <= len(vals)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Split with any fraction partitions rows without loss.
func TestSplitProperty(t *testing.T) {
	f := func(seed int64, fracRaw uint8) bool {
		frac := float64(fracRaw) / 255
		r := sample()
		a, b := r.Split(frac, seed)
		return a.NumRows()+b.NumRows() == r.NumRows()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
