package dataset

import (
	"fmt"
	"sort"
)

// Project returns a new relation containing only the named attributes, in
// the given order, with deep-copied columns and dictionaries.
func (r *Relation) Project(attrs []string) (*Relation, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := r.AttrIndex(a)
		if j < 0 {
			return nil, fmt.Errorf("dataset: project: unknown attribute %q", a)
		}
		idx[i] = j
	}
	out := New(r.name, attrs)
	for i, j := range idx {
		out.dicts[i] = r.dicts[j].clone()
		out.cols[i] = append([]int32(nil), r.cols[j]...)
	}
	out.nrows = r.nrows
	return out, nil
}

// Rename returns a copy of the relation with attribute old renamed to new.
func (r *Relation) Rename(old, new string) (*Relation, error) {
	i := r.AttrIndex(old)
	if i < 0 {
		return nil, fmt.Errorf("dataset: rename: unknown attribute %q", old)
	}
	if r.AttrIndex(new) >= 0 {
		return nil, fmt.Errorf("dataset: rename: attribute %q already exists", new)
	}
	out := r.Clone()
	out.attrs[i] = new
	delete(out.index, old)
	out.index[new] = i
	return out, nil
}

// ValueCounts returns attribute attr's distinct values with their
// frequencies, most frequent first (ties by value string).
func (r *Relation) ValueCounts(attr int) []ValueCount {
	counts := map[int32]int{}
	for _, c := range r.cols[attr] {
		counts[c]++
	}
	out := make([]ValueCount, 0, len(counts))
	for c, n := range counts {
		out = append(out, ValueCount{Value: r.dicts[attr].Value(c), Code: c, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// ValueCount is one entry of ValueCounts.
type ValueCount struct {
	Value string
	Code  int32
	Count int
}

// Filter returns the rows of r for which keep returns true, as a new
// relation.
func (r *Relation) Filter(keep func(row int) bool) *Relation {
	var rows []int
	for i := 0; i < r.nrows; i++ {
		if keep(i) {
			rows = append(rows, i)
		}
	}
	return r.SelectRows(rows)
}
