// Package dataset provides the relational substrate used throughout the
// Guardrail reproduction: an in-memory, column-major, dictionary-encoded
// relation of categorical attributes.
//
// Every attribute value is interned into a per-column dictionary and stored
// as an int32 code. Code -1 is the missing/NaN sentinel produced by the
// coerce error-handling strategy. All synthesis, structure learning and
// query execution operate on codes; strings only appear at the boundary
// (CSV I/O, DSL pretty-printing).
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strings"
)

// Missing is the code used for a missing (NaN) cell, produced by the coerce
// error-handling strategy or by CSV cells equal to the empty string.
const Missing int32 = -1

// Dict interns the string values of a single attribute.
type Dict struct {
	byValue map[string]int32
	values  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byValue: make(map[string]int32)}
}

// Intern returns the code for s, adding it to the dictionary if new.
func (d *Dict) Intern(s string) int32 {
	if c, ok := d.byValue[s]; ok {
		return c
	}
	c := int32(len(d.values))
	d.byValue[s] = c
	d.values = append(d.values, s)
	return c
}

// Lookup returns the code for s and whether it is present.
func (d *Dict) Lookup(s string) (int32, bool) {
	c, ok := d.byValue[s]
	return c, ok
}

// Value returns the string for code c. The Missing code renders as "NaN".
func (d *Dict) Value(c int32) string {
	if c == Missing {
		return "NaN"
	}
	return d.values[c]
}

// Len reports the number of distinct values interned so far.
func (d *Dict) Len() int { return len(d.values) }

// clone returns a deep copy of the dictionary.
func (d *Dict) clone() *Dict {
	nd := &Dict{
		byValue: make(map[string]int32, len(d.byValue)),
		values:  append([]string(nil), d.values...),
	}
	for k, v := range d.byValue {
		nd.byValue[k] = v
	}
	return nd
}

// Relation is an in-memory categorical table. The zero value is not usable;
// construct one with New or FromCSV.
type Relation struct {
	name  string
	attrs []string
	index map[string]int
	dicts []*Dict
	cols  [][]int32
	nrows int
}

// New creates an empty relation with the given attribute names.
func New(name string, attrs []string) *Relation {
	r := &Relation{
		name:  name,
		attrs: append([]string(nil), attrs...),
		index: make(map[string]int, len(attrs)),
		dicts: make([]*Dict, len(attrs)),
		cols:  make([][]int32, len(attrs)),
	}
	for i, a := range attrs {
		r.index[a] = i
		r.dicts[i] = NewDict()
	}
	return r
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// SetName renames the relation.
func (r *Relation) SetName(n string) { r.name = n }

// NumRows reports the number of rows.
func (r *Relation) NumRows() int { return r.nrows }

// NumAttrs reports the number of attributes.
func (r *Relation) NumAttrs() int { return len(r.attrs) }

// Attrs returns the attribute names (do not mutate).
func (r *Relation) Attrs() []string { return r.attrs }

// Attr returns the name of attribute i.
func (r *Relation) Attr(i int) string { return r.attrs[i] }

// AttrIndex returns the position of the named attribute, or -1.
func (r *Relation) AttrIndex(name string) int {
	if i, ok := r.index[name]; ok {
		return i
	}
	return -1
}

// Dict returns the dictionary of attribute i.
func (r *Relation) Dict(i int) *Dict { return r.dicts[i] }

// Cardinality reports the number of distinct interned values of attribute i.
func (r *Relation) Cardinality(i int) int { return r.dicts[i].Len() }

// Column returns the code column for attribute i (do not mutate).
func (r *Relation) Column(i int) []int32 { return r.cols[i] }

// Code returns the code at (row, col).
func (r *Relation) Code(row, col int) int32 { return r.cols[col][row] }

// SetCode overwrites the code at (row, col).
func (r *Relation) SetCode(row, col int, c int32) { r.cols[col][row] = c }

// Value returns the string value at (row, col).
func (r *Relation) Value(row, col int) string {
	return r.dicts[col].Value(r.cols[col][row])
}

// Intern interns s into attribute col's dictionary and returns its code.
func (r *Relation) Intern(col int, s string) int32 { return r.dicts[col].Intern(s) }

// AppendRow appends one row of string values; len(vals) must equal NumAttrs.
// Empty strings intern as the Missing sentinel.
func (r *Relation) AppendRow(vals []string) error {
	if len(vals) != len(r.attrs) {
		return fmt.Errorf("dataset: row has %d values, relation has %d attributes", len(vals), len(r.attrs))
	}
	for i, v := range vals {
		if v == "" {
			r.cols[i] = append(r.cols[i], Missing)
			continue
		}
		r.cols[i] = append(r.cols[i], r.dicts[i].Intern(v))
	}
	r.nrows++
	return nil
}

// AppendCodes appends one row of pre-encoded codes. The caller is
// responsible for the codes being valid for each column's dictionary.
func (r *Relation) AppendCodes(codes []int32) error {
	if len(codes) != len(r.attrs) {
		return fmt.Errorf("dataset: row has %d codes, relation has %d attributes", len(codes), len(r.attrs))
	}
	for i, c := range codes {
		r.cols[i] = append(r.cols[i], c)
	}
	r.nrows++
	return nil
}

// Row copies row i's codes into dst (allocated if nil) and returns it.
func (r *Relation) Row(i int, dst []int32) []int32 {
	if cap(dst) < len(r.attrs) {
		dst = make([]int32, len(r.attrs))
	}
	dst = dst[:len(r.attrs)]
	for c := range r.cols {
		dst[c] = r.cols[c][i]
	}
	return dst
}

// RowStrings returns row i as decoded strings.
func (r *Relation) RowStrings(i int) []string {
	out := make([]string, len(r.attrs))
	for c := range r.cols {
		out[c] = r.dicts[c].Value(r.cols[c][i])
	}
	return out
}

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	nr := &Relation{
		name:  r.name,
		attrs: append([]string(nil), r.attrs...),
		index: make(map[string]int, len(r.index)),
		dicts: make([]*Dict, len(r.dicts)),
		cols:  make([][]int32, len(r.cols)),
		nrows: r.nrows,
	}
	for k, v := range r.index {
		nr.index[k] = v
	}
	for i := range r.dicts {
		nr.dicts[i] = r.dicts[i].clone()
		nr.cols[i] = append([]int32(nil), r.cols[i]...)
	}
	return nr
}

// SelectRows returns a new relation containing the given rows, sharing
// dictionaries by deep copy so the result is independent.
func (r *Relation) SelectRows(rows []int) *Relation {
	nr := &Relation{
		name:  r.name,
		attrs: append([]string(nil), r.attrs...),
		index: make(map[string]int, len(r.index)),
		dicts: make([]*Dict, len(r.dicts)),
		cols:  make([][]int32, len(r.cols)),
		nrows: len(rows),
	}
	for k, v := range r.index {
		nr.index[k] = v
	}
	for i := range r.dicts {
		nr.dicts[i] = r.dicts[i].clone()
		col := make([]int32, len(rows))
		for j, row := range rows {
			col[j] = r.cols[i][row]
		}
		nr.cols[i] = col
	}
	return nr
}

// Split partitions the relation into train/test by shuffling rows with the
// given seed; frac is the fraction of rows assigned to train.
func (r *Relation) Split(frac float64, seed int64) (train, test *Relation) {
	perm := rand.New(rand.NewSource(seed)).Perm(r.nrows)
	k := int(float64(r.nrows) * frac)
	if k < 0 {
		k = 0
	}
	if k > r.nrows {
		k = r.nrows
	}
	return r.SelectRows(perm[:k]), r.SelectRows(perm[k:])
}

// FromCSV reads a relation from CSV with a header row.
func FromCSV(rd io.Reader, name string) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	rel := New(name, header)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV row: %w", err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: CSV row has %d fields, header has %d", len(rec), len(header))
		}
		if err := rel.AppendRow(rec); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// ToCSV writes the relation as CSV with a header row.
func (r *Relation) ToCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.attrs); err != nil {
		return err
	}
	for i := 0; i < r.nrows; i++ {
		if err := cw.Write(r.RowStrings(i)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders a compact summary for debugging.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Relation(%s: %d rows, %d attrs: %s)", r.name, r.nrows, len(r.attrs), strings.Join(r.attrs, ","))
	return b.String()
}
