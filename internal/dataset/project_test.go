package dataset

import "testing"

func TestProject(t *testing.T) {
	r := sample()
	p, err := r.Project([]string{"State", "PostalCode"})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumAttrs() != 2 || p.NumRows() != r.NumRows() {
		t.Fatalf("shape %d x %d", p.NumRows(), p.NumAttrs())
	}
	if p.Attr(0) != "State" || p.Value(0, 0) != "CA" {
		t.Fatalf("projection wrong: %q %q", p.Attr(0), p.Value(0, 0))
	}
	// Deep copy: mutating the projection must not touch the source.
	p.SetCode(0, 0, p.Intern(0, "XX"))
	if r.Value(0, 2) != "CA" {
		t.Fatal("projection shares storage with source")
	}
	if _, err := r.Project([]string{"Nope"}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestRename(t *testing.T) {
	r := sample()
	nr, err := r.Rename("City", "Town")
	if err != nil {
		t.Fatal(err)
	}
	if nr.AttrIndex("Town") != 1 || nr.AttrIndex("City") != -1 {
		t.Fatalf("rename failed: %v", nr.Attrs())
	}
	if r.AttrIndex("City") != 1 {
		t.Fatal("rename mutated source")
	}
	if _, err := r.Rename("Nope", "X"); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	if _, err := r.Rename("City", "State"); err == nil {
		t.Fatal("collision accepted")
	}
}

func TestValueCounts(t *testing.T) {
	r := sample()
	vc := r.ValueCounts(r.AttrIndex("City"))
	if len(vc) != 3 {
		t.Fatalf("counts = %v", vc)
	}
	if vc[0].Value != "Berkeley" || vc[0].Count != 2 {
		t.Fatalf("top value = %+v", vc[0])
	}
	total := 0
	for _, v := range vc {
		total += v.Count
	}
	if total != r.NumRows() {
		t.Fatalf("counts sum to %d", total)
	}
}

func TestFilter(t *testing.T) {
	r := sample()
	ca := r.Filter(func(i int) bool { return r.Value(i, 2) == "CA" })
	if ca.NumRows() != 2 {
		t.Fatalf("filtered rows = %d", ca.NumRows())
	}
	for i := 0; i < ca.NumRows(); i++ {
		if ca.Value(i, 2) != "CA" {
			t.Fatalf("wrong row kept: %v", ca.RowStrings(i))
		}
	}
	none := r.Filter(func(int) bool { return false })
	if none.NumRows() != 0 {
		t.Fatal("empty filter kept rows")
	}
}
