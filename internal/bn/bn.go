// Package bn provides the data-generating substrate for the reproduction:
// discrete Bayesian networks used as ground-truth structural equation
// models (SEMs, Def. 4.3). Sampling a network yields a categorical relation
// whose integrity constraints are known exactly — the deterministic CPT
// rows are the ground-truth DGP statements Guardrail must recover.
//
// The paper evaluates on 12 real datasets (Table 2) that are not available
// offline; Registry defines 12 synthetic analogs with the same schema sizes
// generated from random SEMs (see DESIGN.md §3 for the substitution
// rationale).
package bn

import (
	"fmt"
	"math/rand"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/graph"
)

// Node is one variable of a network.
type Node struct {
	Name    string
	Card    int
	Parents []int // indices of parent nodes; must precede this node
	// CPT holds P(X = v | parents = cfg) in row-major order: for each
	// mixed-radix parent configuration, Card probabilities. A row that puts
	// probability 1 on a single value is deterministic — an integrity
	// constraint in the paper's sense.
	CPT []float64
	// Deterministic marks nodes whose every CPT row is a point mass.
	Deterministic bool
}

// Network is a discrete Bayesian network in topological node order.
type Network struct {
	Nodes []Node
}

// Validate checks structural invariants: parent ordering, CPT shapes, and
// row normalization.
func (nw *Network) Validate() error {
	for i, nd := range nw.Nodes {
		if nd.Card < 1 {
			return fmt.Errorf("bn: node %d (%s) has cardinality %d", i, nd.Name, nd.Card)
		}
		cfgs := 1
		for _, p := range nd.Parents {
			if p >= i {
				return fmt.Errorf("bn: node %d (%s) has parent %d not preceding it", i, nd.Name, p)
			}
			cfgs *= nw.Nodes[p].Card
		}
		if len(nd.CPT) != cfgs*nd.Card {
			return fmt.Errorf("bn: node %d (%s) CPT has %d entries, want %d", i, nd.Name, len(nd.CPT), cfgs*nd.Card)
		}
		for r := 0; r < cfgs; r++ {
			var s float64
			for v := 0; v < nd.Card; v++ {
				s += nd.CPT[r*nd.Card+v]
			}
			if s < 0.999 || s > 1.001 {
				return fmt.Errorf("bn: node %d (%s) CPT row %d sums to %g", i, nd.Name, r, s)
			}
		}
	}
	return nil
}

// TrueDAG returns the network's ground-truth structure.
func (nw *Network) TrueDAG() *graph.DAG {
	d := graph.NewDAG(len(nw.Nodes))
	for i, nd := range nw.Nodes {
		for _, p := range nd.Parents {
			if err := d.AddEdge(p, i); err != nil {
				panic(fmt.Sprintf("bn: invalid network structure: %v", err))
			}
		}
	}
	return d
}

// Sample draws n rows by ancestral sampling, deterministically per seed.
// Value strings are "<name>_v<code>" so dictionaries line up with codes.
func (nw *Network) Sample(n int, seed int64) (*dataset.Relation, error) {
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	names := make([]string, len(nw.Nodes))
	for i, nd := range nw.Nodes {
		names[i] = nd.Name
	}
	rel := dataset.New("bn", names)
	// Pre-intern every value so codes equal sampled category indices.
	for i, nd := range nw.Nodes {
		for v := 0; v < nd.Card; v++ {
			rel.Intern(i, fmt.Sprintf("%s_v%d", nd.Name, v))
		}
	}
	rng := rand.New(rand.NewSource(seed))
	row := make([]int32, len(nw.Nodes))
	for r := 0; r < n; r++ {
		for i, nd := range nw.Nodes {
			cfg := 0
			for _, p := range nd.Parents {
				cfg = cfg*nw.Nodes[p].Card + int(row[p])
			}
			row[i] = drawCategory(nd.CPT[cfg*nd.Card:(cfg+1)*nd.Card], rng)
		}
		if err := rel.AppendCodes(row); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

func drawCategory(probs []float64, rng *rand.Rand) int32 {
	u := rng.Float64()
	var acc float64
	for v, p := range probs {
		acc += p
		if u < acc {
			return int32(v)
		}
	}
	return int32(len(probs) - 1)
}

// uniformCPT returns a CPT with uniform rows.
func uniformCPT(cfgs, card int) []float64 {
	cpt := make([]float64, cfgs*card)
	for i := range cpt {
		cpt[i] = 1 / float64(card)
	}
	return cpt
}

// deterministicCPT returns a CPT where each parent configuration maps to a
// single value chosen by f.
func deterministicCPT(cfgs, card int, f func(cfg int) int) []float64 {
	cpt := make([]float64, cfgs*card)
	for r := 0; r < cfgs; r++ {
		cpt[r*card+f(r)%card] = 1
	}
	return cpt
}

// noisyDeterministicCPT is deterministicCPT with probability 1-noise on the
// functional value and the remainder spread uniformly.
func noisyDeterministicCPT(cfgs, card int, noise float64, f func(cfg int) int) []float64 {
	cpt := make([]float64, cfgs*card)
	for r := 0; r < cfgs; r++ {
		main := f(r) % card
		for v := 0; v < card; v++ {
			if v == main {
				cpt[r*card+v] = 1 - noise + noise/float64(card)
			} else {
				cpt[r*card+v] = noise / float64(card)
			}
		}
	}
	return cpt
}

// randomCPT draws each row from a symmetric Dirichlet via normalized
// exponentials, with a mild concentration so rows are informative.
func randomCPT(cfgs, card int, rng *rand.Rand) []float64 {
	cpt := make([]float64, cfgs*card)
	for r := 0; r < cfgs; r++ {
		var s float64
		for v := 0; v < card; v++ {
			x := rng.ExpFloat64()
			x = x * x // skew toward peaked rows
			cpt[r*card+v] = x
			s += x
		}
		for v := 0; v < card; v++ {
			cpt[r*card+v] /= s
		}
	}
	return cpt
}
