package bn

import (
	"testing"

	"github.com/guardrail-db/guardrail/internal/graph"
)

func TestAsiaValidates(t *testing.T) {
	nw := Asia()
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(nw.Nodes) != 8 {
		t.Fatalf("asia has %d nodes", len(nw.Nodes))
	}
	d := nw.TrueDAG()
	// Canonical edges.
	for _, e := range [][2]int{{0, 2}, {1, 3}, {1, 4}, {2, 5}, {3, 5}, {5, 6}, {5, 7}, {4, 7}} {
		if !d.HasEdge(e[0], e[1]) {
			t.Fatalf("missing edge %v in %s", e, d)
		}
	}
	if d.NumEdges() != 8 {
		t.Fatalf("asia has %d edges, want 8", d.NumEdges())
	}
}

func TestAsiaEitherDeterministic(t *testing.T) {
	rel, err := Asia().Sample(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	tub, lung, either := rel.AttrIndex("tub"), rel.AttrIndex("lung"), rel.AttrIndex("either")
	for i := 0; i < rel.NumRows(); i++ {
		want := int32(1)
		if rel.Code(i, tub) == 0 || rel.Code(i, lung) == 0 {
			want = 0
		}
		if rel.Code(i, either) != want {
			t.Fatalf("either constraint violated at row %d", i)
		}
	}
}

func TestAsiaCPDAGContainsTruth(t *testing.T) {
	// The v-structure tub -> either <- lung is compelled, so every member
	// of the true MEC keeps those two edges.
	d := Asia().TrueDAG()
	cp := graph.CPDAGFromDAG(d)
	if !cp.HasDirected(2, 5) || !cp.HasDirected(3, 5) {
		t.Fatalf("collider not compelled in CPDAG: %s", cp)
	}
	dags, err := graph.EnumerateMEC(cp, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range dags {
		if m.Key() == d.Key() {
			found = true
		}
	}
	if !found {
		t.Fatalf("true Asia DAG not in its own MEC (size %d)", len(dags))
	}
}
