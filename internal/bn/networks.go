package bn

import (
	"math/rand"
)

// Cancer returns a 5-node network with the topology of the classic
// "Cancer" network from the bnlearn repository — the paper's Lung Cancer
// dataset analog (Table 2 row 2, 5 attributes): Pollution and Smoker cause
// Cancer; Cancer causes Xray and Dyspnoea. Following the paper's note that
// "some causal relationships enforce integrity constraints on the data",
// the dysp mechanism is deterministic (dysp = cancer OR smoker) and class
// marginals are kept balanced so the constraint is learnable.
func Cancer() *Network {
	return &Network{Nodes: []Node{
		{Name: "pollution", Card: 2, CPT: []float64{0.6, 0.4}}, // low, high
		{Name: "smoker", Card: 2, CPT: []float64{0.3, 0.7}},    // yes, no
		{Name: "cancer", Card: 2, Parents: []int{0, 1}, CPT: []float64{ // yes, no
			0.55, 0.45, // pollution=low, smoker=yes
			0.2, 0.8, // low, no
			0.75, 0.25, // high, yes
			0.35, 0.65, // high, no
		}},
		{Name: "xray", Card: 2, Parents: []int{2}, CPT: []float64{ // pos, neg
			0.9, 0.1, // cancer=yes
			0.2, 0.8, // cancer=no
		}},
		// dysp = yes iff cancer = yes or smoker = yes: a deterministic
		// integrity constraint GIVEN cancer, smoker ON dysp.
		{Name: "dysp", Card: 2, Parents: []int{2, 1}, Deterministic: true,
			CPT: deterministicCPT(4, 2, func(cfg int) int {
				cancer, smoker := cfg/2, cfg%2
				if cancer == 0 || smoker == 0 {
					return 0
				}
				return 1
			})},
	}}
}

// PostalChain returns the PostalCode -> City -> State -> Country chain of
// Example 3.1: each edge is a deterministic many-to-one map, so the chain's
// statements are exact integrity constraints, while PostalCode -> State is
// only an indirect dependency the synthesizer must not emit.
func PostalChain(numCodes int) *Network {
	if numCodes < 4 {
		numCodes = 4
	}
	cities := numCodes / 2
	states := (cities + 1) / 2
	countries := 2
	return &Network{Nodes: []Node{
		{Name: "PostalCode", Card: numCodes, CPT: uniformCPT(1, numCodes)},
		{Name: "City", Card: cities, Parents: []int{0}, Deterministic: true,
			CPT: deterministicCPT(numCodes, cities, func(cfg int) int { return cfg / 2 })},
		{Name: "State", Card: states, Parents: []int{1}, Deterministic: true,
			CPT: deterministicCPT(cities, states, func(cfg int) int { return cfg / 2 })},
		{Name: "Country", Card: countries, Parents: []int{2}, Deterministic: true,
			CPT: deterministicCPT(states, countries, func(cfg int) int { return cfg % 2 })},
	}}
}

// Hospital returns the Fig. 1 hospital analog: a small medical network with
// a deterministic relationship (relationship -> marital status style) plus
// the dyspnea label depending on clinical attributes, used by the
// ML-integrated query experiments.
func Hospital() *Network {
	return &Network{Nodes: []Node{
		{Name: "floor", Card: 4, CPT: uniformCPT(1, 4)},
		{Name: "smoker", Card: 2, CPT: []float64{0.35, 0.65}},
		{Name: "tub", Card: 2, Parents: []int{1}, CPT: []float64{
			0.1, 0.9,
			0.02, 0.98,
		}},
		{Name: "lung", Card: 2, Parents: []int{1}, CPT: []float64{
			0.2, 0.8,
			0.03, 0.97,
		}},
		// either = tub OR lung, deterministic: a ground-truth constraint.
		{Name: "either", Card: 2, Parents: []int{2, 3}, Deterministic: true,
			CPT: deterministicCPT(4, 2, func(cfg int) int {
				tub, lung := cfg/2, cfg%2
				if tub == 0 || lung == 0 {
					return 0
				}
				return 1
			})},
		{Name: "xray", Card: 2, Parents: []int{4}, CPT: []float64{
			0.98, 0.02,
			0.05, 0.95,
		}},
		{Name: "dysp", Card: 2, Parents: []int{4}, CPT: []float64{
			0.9, 0.1,
			0.2, 0.8,
		}},
	}}
}

// SEMSpec configures RandomSEM.
type SEMSpec struct {
	Attrs      int     // number of endogenous attributes
	MaxParents int     // cap on parent-set size (default 3)
	MaxCard    int     // cap on cardinalities (default 6)
	DetFrac    float64 // fraction of non-root nodes that are deterministic (default 0.5)
	Noise      float64 // CPT noise for noisy-deterministic nodes (default 0.03)
	RootFrac   float64 // fraction of nodes with no parents (default 0.3)
	// HighCardFrac is the fraction of root nodes given a large domain
	// (IDs, zip-code-like attributes) — the overfitting fuel real datasets
	// offer exact-FD miners (default 0.15; larger values starve every
	// method of per-group samples at laptop scales).
	HighCardFrac float64
	// HighCard is the domain size of high-cardinality roots (default 60).
	HighCard int
	Seed     int64
}

func (s *SEMSpec) defaults() {
	if s.MaxParents == 0 {
		s.MaxParents = 3
	}
	if s.MaxCard == 0 {
		s.MaxCard = 6
	}
	if s.DetFrac == 0 {
		s.DetFrac = 0.5
	}
	if s.Noise == 0 {
		s.Noise = 0.03
	}
	if s.RootFrac == 0 {
		s.RootFrac = 0.3
	}
	if s.HighCardFrac == 0 {
		s.HighCardFrac = 0.15
	}
	if s.HighCard == 0 {
		s.HighCard = 60
	}
}

// RandomSEM generates a random ground-truth SEM: a random DAG over Attrs
// nodes where a DetFrac share of non-root nodes are (nearly) deterministic
// functions of their parents — the integrity constraints to recover — and
// the rest carry random CPTs (exogenous noise).
func RandomSEM(spec SEMSpec) *Network {
	spec.defaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	n := spec.Attrs
	nodes := make([]Node, n)
	for i := 0; i < n; i++ {
		card := 2 + rng.Intn(spec.MaxCard-1)
		var parents []int
		isRoot := i == 0 || rng.Float64() < spec.RootFrac
		if isRoot && rng.Float64() < spec.HighCardFrac {
			card = spec.HighCard/2 + rng.Intn(spec.HighCard)
		}
		if !isRoot {
			k := 1 + rng.Intn(spec.MaxParents)
			if k > i {
				k = i
			}
			parents = pickDistinct(i, k, rng)
		}
		cfgs := 1
		for _, p := range parents {
			cfgs *= nodes[p].Card
		}
		nd := Node{Name: attrName(i), Card: card, Parents: parents}
		switch {
		case len(parents) == 0:
			nd.CPT = randomCPT(1, card, rng)
		case rng.Float64() < spec.DetFrac:
			salt := rng.Intn(1 << 16)
			if rng.Float64() < 0.5 {
				nd.Deterministic = true
				nd.CPT = deterministicCPT(cfgs, card, func(cfg int) int { return hashCfg(cfg, salt) })
			} else {
				nd.CPT = noisyDeterministicCPT(cfgs, card, spec.Noise, func(cfg int) int { return hashCfg(cfg, salt) })
			}
		default:
			nd.CPT = randomCPT(cfgs, card, rng)
		}
		nodes[i] = nd
	}
	// Guarantee at least one exactly-deterministic node so every generated
	// dataset contains a ground-truth integrity constraint. If the random
	// draw produced an edgeless graph, first give the last node a parent.
	hasDet := false
	hasEdge := false
	for _, nd := range nodes {
		if nd.Deterministic {
			hasDet = true
		}
		if len(nd.Parents) > 0 {
			hasEdge = true
		}
	}
	if n > 1 && !hasEdge {
		nodes[n-1].Parents = []int{n - 2}
	}
	if !hasDet {
		for i := n - 1; i > 0; i-- {
			if len(nodes[i].Parents) == 0 {
				continue
			}
			cfgs := 1
			for _, p := range nodes[i].Parents {
				cfgs *= nodes[p].Card
			}
			salt := rng.Intn(1 << 16)
			nodes[i].Deterministic = true
			nodes[i].CPT = deterministicCPT(cfgs, nodes[i].Card, func(cfg int) int { return hashCfg(cfg, salt) })
			break
		}
	}
	return &Network{Nodes: nodes}
}

func pickDistinct(limit, k int, rng *rand.Rand) []int {
	perm := rng.Perm(limit)
	out := append([]int(nil), perm[:k]...)
	return out
}

// hashCfg maps a parent configuration to a pseudo-random but fixed value,
// giving deterministic CPT rows that are not merely cfg % card (which would
// alias different parents).
func hashCfg(cfg, salt int) int {
	x := uint64(cfg)*2654435761 + uint64(salt)
	x ^= x >> 16
	x *= 2246822519
	x ^= x >> 13
	return int(x & 0x7fffffff)
}

// attrName names attributes spreadsheet-style: a..z, aa, ab, ...
func attrName(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	if i < len(letters) {
		return "attr_" + string(letters[i])
	}
	i -= len(letters)
	return "attr_" + string(letters[i/len(letters)]) + string(letters[i%len(letters)])
}
