package bn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCancerValidates(t *testing.T) {
	nw := Cancer()
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	d := nw.TrueDAG()
	if !d.HasEdge(0, 2) || !d.HasEdge(1, 2) || !d.HasEdge(2, 3) || !d.HasEdge(2, 4) {
		t.Fatalf("Cancer DAG wrong: %s", d)
	}
}

func TestSampleShapeAndDeterminism(t *testing.T) {
	nw := Cancer()
	rel, err := nw.Sample(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 500 || rel.NumAttrs() != 5 {
		t.Fatalf("shape %d x %d", rel.NumRows(), rel.NumAttrs())
	}
	rel2, _ := nw.Sample(500, 7)
	for i := 0; i < 500; i++ {
		for j := 0; j < 5; j++ {
			if rel.Code(i, j) != rel2.Code(i, j) {
				t.Fatalf("sampling not deterministic at (%d,%d)", i, j)
			}
		}
	}
}

func TestSampleMarginals(t *testing.T) {
	// Smoker marginal should be near 0.3/0.7.
	nw := Cancer()
	rel, err := nw.Sample(20000, 11)
	if err != nil {
		t.Fatal(err)
	}
	smoker := rel.AttrIndex("smoker")
	cnt := 0
	for i := 0; i < rel.NumRows(); i++ {
		if rel.Code(i, smoker) == 0 {
			cnt++
		}
	}
	frac := float64(cnt) / float64(rel.NumRows())
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("smoker=yes fraction = %g, want ~0.3", frac)
	}
}

func TestPostalChainDeterminism(t *testing.T) {
	nw := PostalChain(8)
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	rel, err := nw.Sample(2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	// City must be a function of PostalCode; State of City; Country of State.
	for pair := 0; pair < 3; pair++ {
		seen := map[int32]int32{}
		for i := 0; i < rel.NumRows(); i++ {
			k, v := rel.Code(i, pair), rel.Code(i, pair+1)
			if prev, ok := seen[k]; ok && prev != v {
				t.Fatalf("column %d not functional in column %d", pair+1, pair)
			}
			seen[k] = v
		}
	}
}

func TestHospitalEitherConstraint(t *testing.T) {
	nw := Hospital()
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	rel, err := nw.Sample(5000, 5)
	if err != nil {
		t.Fatal(err)
	}
	tub, lung, either := rel.AttrIndex("tub"), rel.AttrIndex("lung"), rel.AttrIndex("either")
	for i := 0; i < rel.NumRows(); i++ {
		want := int32(1)
		if rel.Code(i, tub) == 0 || rel.Code(i, lung) == 0 {
			want = 0
		}
		if rel.Code(i, either) != want {
			t.Fatalf("either constraint violated at row %d", i)
		}
	}
}

func TestRandomSEMValidates(t *testing.T) {
	for _, attrs := range []int{4, 10, 28, 40} {
		nw := RandomSEM(SEMSpec{Attrs: attrs, Seed: int64(attrs)})
		if err := nw.Validate(); err != nil {
			t.Fatalf("attrs=%d: %v", attrs, err)
		}
		if len(nw.Nodes) != attrs {
			t.Fatalf("attrs=%d: got %d nodes", attrs, len(nw.Nodes))
		}
		hasDet := false
		for _, nd := range nw.Nodes {
			if nd.Deterministic {
				hasDet = true
			}
		}
		if attrs >= 10 && !hasDet {
			t.Fatalf("attrs=%d: no deterministic node — no constraints to find", attrs)
		}
	}
}

func TestRegistryShapes(t *testing.T) {
	if len(Registry) != 12 {
		t.Fatalf("registry has %d entries", len(Registry))
	}
	for _, spec := range Registry {
		nw := spec.Network()
		if err := nw.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if len(nw.Nodes) != spec.Attrs {
			t.Fatalf("%s: %d nodes, spec says %d", spec.Name, len(nw.Nodes), spec.Attrs)
		}
		found := false
		for _, nd := range nw.Nodes {
			if nd.Name == spec.LabelAttr {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: label attr %q not in network", spec.Name, spec.LabelAttr)
		}
	}
}

func TestRegistryGenerate(t *testing.T) {
	spec, err := SpecByID(6)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := spec.Generate(1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != spec.Rows || rel.NumAttrs() != spec.Attrs {
		t.Fatalf("generated %d x %d, want %d x %d", rel.NumRows(), rel.NumAttrs(), spec.Rows, spec.Attrs)
	}
	if _, err := spec.Generate(0, 1); err == nil {
		t.Fatal("scale 0 should error")
	}
	if _, err := SpecByID(99); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestValidateRejectsBadNetworks(t *testing.T) {
	bad := &Network{Nodes: []Node{
		{Name: "x", Card: 2, CPT: []float64{0.5, 0.4}}, // doesn't sum to 1
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("unnormalized CPT accepted")
	}
	bad2 := &Network{Nodes: []Node{
		{Name: "x", Card: 2, Parents: []int{0}, CPT: []float64{1, 0, 0, 1}},
	}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("self-parent accepted")
	}
	bad3 := &Network{Nodes: []Node{
		{Name: "x", Card: 2, CPT: []float64{1}},
	}}
	if err := bad3.Validate(); err == nil {
		t.Fatal("short CPT accepted")
	}
}

// Property: sampled codes are always within each node's cardinality.
func TestSampleRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		nw := RandomSEM(SEMSpec{Attrs: 6, Seed: seed})
		rel, err := nw.Sample(200, seed)
		if err != nil {
			return false
		}
		for i := 0; i < rel.NumRows(); i++ {
			for j := 0; j < rel.NumAttrs(); j++ {
				c := rel.Code(i, j)
				if c < 0 || int(c) >= nw.Nodes[j].Card {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
