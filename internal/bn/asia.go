package bn

// Asia returns the classic 8-node "Asia" network (Lauritzen & Spiegelhalter
// 1988) from the bnlearn repository, the canonical discrete benchmark for
// structure learning. Its "either" node — either = tuberculosis OR lung
// cancer — is exactly deterministic, making Asia a natural integrity-
// constraint benchmark in the paper's sense: GIVEN tub, lung ON either is a
// ground-truth statement every synthesizer should recover.
//
// Node order: asia, smoke, tub, lung, bronc, either, xray, dysp.
// Value 0 = yes, value 1 = no throughout.
func Asia() *Network {
	return &Network{Nodes: []Node{
		{Name: "asia", Card: 2, CPT: []float64{0.01, 0.99}},
		{Name: "smoke", Card: 2, CPT: []float64{0.5, 0.5}},
		{Name: "tub", Card: 2, Parents: []int{0}, CPT: []float64{
			0.05, 0.95, // asia = yes
			0.01, 0.99, // asia = no
		}},
		{Name: "lung", Card: 2, Parents: []int{1}, CPT: []float64{
			0.1, 0.9, // smoke = yes
			0.01, 0.99, // smoke = no
		}},
		{Name: "bronc", Card: 2, Parents: []int{1}, CPT: []float64{
			0.6, 0.4,
			0.3, 0.7,
		}},
		// either = tub OR lung: the deterministic integrity constraint.
		{Name: "either", Card: 2, Parents: []int{2, 3}, Deterministic: true,
			CPT: deterministicCPT(4, 2, func(cfg int) int {
				tub, lung := cfg/2, cfg%2
				if tub == 0 || lung == 0 {
					return 0
				}
				return 1
			})},
		{Name: "xray", Card: 2, Parents: []int{5}, CPT: []float64{
			0.98, 0.02, // either = yes
			0.05, 0.95,
		}},
		{Name: "dysp", Card: 2, Parents: []int{5, 4}, CPT: []float64{
			0.9, 0.1, // either = yes, bronc = yes
			0.7, 0.3, // yes, no
			0.8, 0.2, // no, yes
			0.1, 0.9, // no, no
		}},
	}}
}
