package bn

import (
	"fmt"

	"github.com/guardrail-db/guardrail/internal/dataset"
)

// DatasetSpec describes one of the 12 evaluation datasets (Table 2). The
// real datasets are not available offline; each spec carries a generator
// producing a synthetic analog with the same schema size from a known SEM,
// plus a LabelAttr used as the prediction target in the ML experiments.
type DatasetSpec struct {
	ID        int
	Name      string
	Category  string
	Attrs     int
	Rows      int
	LabelAttr string
	network   func() *Network
}

// Network instantiates the ground-truth SEM for this dataset.
func (s DatasetSpec) Network() *Network { return s.network() }

// Generate samples rows*scale rows from the spec's SEM (scale in (0,1]
// shrinks datasets for fast benchmarking; 1.0 reproduces Table 2 sizes).
func (s DatasetSpec) Generate(scale float64, seed int64) (*dataset.Relation, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("bn: scale %g out of (0,1]", scale)
	}
	n := int(float64(s.Rows) * scale)
	if n < 500 {
		n = 500
	}
	nw := s.network()
	rel, err := nw.Sample(n, seed)
	if err != nil {
		return nil, err
	}
	rel.SetName(s.Name)
	return rel, nil
}

// Registry lists the 12 dataset analogs in Table 2 order. Seeds are fixed
// per dataset so every experiment sees the same ground truth.
var Registry = []DatasetSpec{
	{ID: 1, Name: "Adult", Category: "Demographic", Attrs: 15, Rows: 48842, LabelAttr: "attr_o",
		network: func() *Network { return RandomSEM(SEMSpec{Attrs: 15, Seed: 101, DetFrac: 0.55}) }},
	{ID: 2, Name: "Lung Cancer", Category: "Medical", Attrs: 5, Rows: 20000, LabelAttr: "dysp",
		network: Cancer},
	{ID: 3, Name: "Cylinder Bands", Category: "Manufacturing", Attrs: 40, Rows: 540, LabelAttr: "attr_an",
		network: func() *Network { return RandomSEM(SEMSpec{Attrs: 40, Seed: 103, MaxCard: 8, DetFrac: 0.45}) }},
	{ID: 4, Name: "Diabetes", Category: "Medical", Attrs: 9, Rows: 520, LabelAttr: "attr_i",
		network: func() *Network { return RandomSEM(SEMSpec{Attrs: 9, Seed: 104}) }},
	{ID: 5, Name: "Contraceptive Method Choice", Category: "Demographic", Attrs: 10, Rows: 1473, LabelAttr: "attr_j",
		network: func() *Network { return RandomSEM(SEMSpec{Attrs: 10, Seed: 105}) }},
	{ID: 6, Name: "Blood Transfusion Service Center", Category: "Medical", Attrs: 4, Rows: 748, LabelAttr: "attr_d",
		network: func() *Network { return RandomSEM(SEMSpec{Attrs: 4, Seed: 106, DetFrac: 0.7}) }},
	{ID: 7, Name: "Steel Plates Faults", Category: "Manufacturing", Attrs: 28, Rows: 1941, LabelAttr: "attr_ab",
		network: func() *Network { return RandomSEM(SEMSpec{Attrs: 28, Seed: 107, MaxCard: 5}) }},
	{ID: 8, Name: "Jungle Chess", Category: "Game", Attrs: 7, Rows: 44819, LabelAttr: "attr_g",
		network: func() *Network { return RandomSEM(SEMSpec{Attrs: 7, Seed: 108, MaxCard: 8, DetFrac: 0.6}) }},
	{ID: 9, Name: "Telco Customer Churn", Category: "Business", Attrs: 21, Rows: 7043, LabelAttr: "attr_u",
		network: func() *Network { return RandomSEM(SEMSpec{Attrs: 21, Seed: 109, DetFrac: 0.55}) }},
	{ID: 10, Name: "Bank Marketing", Category: "Business", Attrs: 17, Rows: 45211, LabelAttr: "attr_q",
		network: func() *Network { return RandomSEM(SEMSpec{Attrs: 17, Seed: 110}) }},
	{ID: 11, Name: "Phishing Websites", Category: "Security", Attrs: 31, Rows: 11055, LabelAttr: "attr_ae",
		network: func() *Network { return RandomSEM(SEMSpec{Attrs: 31, Seed: 111, MaxCard: 3, DetFrac: 0.5}) }},
	{ID: 12, Name: "Hotel Reservations", Category: "Business", Attrs: 18, Rows: 36275, LabelAttr: "attr_r",
		network: func() *Network { return RandomSEM(SEMSpec{Attrs: 18, Seed: 112, DetFrac: 0.5}) }},
}

// SpecByID looks up a dataset spec by its Table 2 row id.
func SpecByID(id int) (DatasetSpec, error) {
	for _, s := range Registry {
		if s.ID == id {
			return s, nil
		}
	}
	return DatasetSpec{}, fmt.Errorf("bn: no dataset with id %d", id)
}
