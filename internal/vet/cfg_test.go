package vet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses a function body (placed starting at line 4 of a
// synthetic file, so expected dumps can name lines) and builds its CFG.
func buildFunc(t *testing.T, body string) (*token.FileSet, *Graph) {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == "f" {
			return fset, Build(fn.Body)
		}
	}
	t.Fatal("no func f in source")
	return nil, nil
}

// findNode locates a node by its Describe rendering ("L7:IfStmt").
func findNode(t *testing.T, fset *token.FileSet, g *Graph, desc string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if g.Describe(fset, n) == desc {
			return n
		}
	}
	t.Fatalf("no node %q in graph:\n%s", desc, g.String(fset))
	return nil
}

func assertGraph(t *testing.T, fset *token.FileSet, g *Graph, want string) {
	t.Helper()
	// Trailing per-line whitespace (a childless node renders "exit -> ")
	// is not part of the contract.
	trim := func(s string) string {
		lines := strings.Split(s, "\n")
		for i := range lines {
			lines[i] = strings.TrimRight(lines[i], " ")
		}
		return strings.Join(lines, "\n")
	}
	want = strings.TrimPrefix(want, "\n")
	if got := trim(g.String(fset)); got != trim(want) {
		t.Errorf("graph mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestCFGLabeledBreakContinue: continue outer must edge to the OUTER
// post statement (skipping the inner loop entirely) and break outer to
// the statement after the outer loop.
func TestCFGLabeledBreakContinue(t *testing.T) {
	fset, g := buildFunc(t, `outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == 1 {
				continue outer
			}
			if j == 2 {
				break outer
			}
			sink(i, j)
		}
	}
	sink(0, 0)
`)
	assertGraph(t, fset, g, `
entry -> L5:AssignStmt
exit ->
L5:ForStmt -> L16:ExprStmt, L6:AssignStmt
L5:AssignStmt -> L5:ForStmt
L5:IncDecStmt -> L5:ForStmt
L6:ForStmt -> L5:IncDecStmt, L7:IfStmt
L6:AssignStmt -> L6:ForStmt
L6:IncDecStmt -> L6:ForStmt
L7:IfStmt -> L10:IfStmt, L8:BranchStmt
L8:BranchStmt -> L5:IncDecStmt
L10:IfStmt -> L11:BranchStmt, L13:ExprStmt
L11:BranchStmt -> L16:ExprStmt
L13:ExprStmt -> L6:IncDecStmt
L16:ExprStmt -> exit
`)

	dom := Dominators(g)
	outerFor := findNode(t, fset, g, "L5:ForStmt")
	after := findNode(t, fset, g, "L16:ExprStmt")
	brk := findNode(t, fset, g, "L11:BranchStmt")
	if !dom.Dominates(outerFor, after) {
		t.Error("outer for header should dominate the statement after the loop")
	}
	if dom.Idom(after) != outerFor {
		t.Errorf("Idom(after-loop) = %v, want the outer for header", dom.Idom(after))
	}
	if dom.Dominates(brk, after) {
		t.Error("break outer must not dominate the after-loop statement (the cond-false path bypasses it)")
	}
	pdom := PostDominators(g)
	if !pdom.Dominates(after, outerFor) {
		t.Error("the after-loop statement should postdominate the loop header (no return/panic inside)")
	}
}

// TestCFGGoto: a backward goto forms a loop; the labeled target is the
// entry node of the labeled statement, resolved even though the goto is
// built before the label.
func TestCFGGoto(t *testing.T) {
	fset, g := buildFunc(t, `	i := 0
loop:
	if i < 10 {
		i++
		goto loop
	}
`)
	assertGraph(t, fset, g, `
entry -> L4:AssignStmt
exit ->
L4:AssignStmt -> L6:IfStmt
L6:IfStmt -> L7:IncDecStmt, exit
L7:IncDecStmt -> L8:BranchStmt
L8:BranchStmt -> L6:IfStmt
`)

	dom := Dominators(g)
	cond := findNode(t, fset, g, "L6:IfStmt")
	inc := findNode(t, fset, g, "L7:IncDecStmt")
	gotoN := findNode(t, fset, g, "L8:BranchStmt")
	// The backedge from the goto must not disturb the dominator tree:
	// init → cond → inc → goto is a chain.
	for _, want := range []struct {
		n, idom *Node
	}{
		{cond, findNode(t, fset, g, "L4:AssignStmt")},
		{inc, cond},
		{gotoN, inc},
	} {
		if got := dom.Idom(want.n); got != want.idom {
			t.Errorf("Idom(%s) = %v, want %s", g.Describe(fset, want.n), got, g.Describe(fset, want.idom))
		}
	}
	pdom := PostDominators(g)
	if !pdom.Dominates(cond, gotoN) {
		t.Error("the if header should postdominate the goto (only path to exit re-tests the condition)")
	}
}

// TestCFGSelect: select fans out to one node per comm clause and has no
// follow edge of its own — with a default the default arm is the
// fall-through path; without one the select blocks until an arm is
// ready.
func TestCFGSelect(t *testing.T) {
	fset, g := buildFunc(t, `	select {
	case v := <-ch:
		_ = v
	case ch <- 1:
		sink(1)
	default:
		sink(2)
	}
	sink(3)
`)
	assertGraph(t, fset, g, `
entry -> L4:SelectStmt
exit ->
L4:SelectStmt -> L5:CommClause, L7:CommClause, L9:CommClause
L5:CommClause -> L6:AssignStmt
L6:AssignStmt -> L12:ExprStmt
L7:CommClause -> L8:ExprStmt
L8:ExprStmt -> L12:ExprStmt
L9:CommClause -> L10:ExprStmt
L10:ExprStmt -> L12:ExprStmt
L12:ExprStmt -> exit
`)
	pdom := PostDominators(g)
	sel := findNode(t, fset, g, "L4:SelectStmt")
	after := findNode(t, fset, g, "L12:ExprStmt")
	if !pdom.Dominates(after, sel) {
		t.Error("the statement after the select should postdominate it (every arm falls through)")
	}

	// No arms at all: `select {}` blocks forever, so the following
	// statement is unreachable and the exit node unreached.
	fset2, g2 := buildFunc(t, `	select {}
	sink(1)
`)
	sel2 := findNode(t, fset2, g2, "L4:SelectStmt")
	if len(sel2.Succs) != 0 {
		t.Errorf("select {} has successors: %v", g2.String(fset2))
	}
	dom2 := Dominators(g2)
	after2 := findNode(t, fset2, g2, "L5:ExprStmt")
	if dom2.Dominates(g2.Entry, after2) {
		t.Error("statement after select {} is unreachable; entry must not dominate it")
	}
	if dom2.Idom(after2) != nil {
		t.Error("unreachable node should have no immediate dominator")
	}
}

// TestCFGDeferInLoop: defer is an ordinary straight-line node — control
// passes through it to the loop post statement each iteration; the
// deferred call itself runs at function exit, which is the analyses'
// business (they inspect Node.Stmt), not the graph's.
func TestCFGDeferInLoop(t *testing.T) {
	fset, g := buildFunc(t, `	for i := 0; i < 3; i++ {
		defer sink(i)
	}
	return
`)
	assertGraph(t, fset, g, `
entry -> L4:AssignStmt
exit ->
L4:ForStmt -> L5:DeferStmt, L7:ReturnStmt
L4:AssignStmt -> L4:ForStmt
L4:IncDecStmt -> L4:ForStmt
L5:DeferStmt -> L4:IncDecStmt
L7:ReturnStmt -> exit
`)
	def := findNode(t, fset, g, "L5:DeferStmt")
	post := findNode(t, fset, g, "L4:IncDecStmt")
	if len(def.Succs) != 1 || def.Succs[0] != post {
		t.Errorf("defer node should flow straight to the loop post statement, got %v", def.Succs)
	}
	dom := Dominators(g)
	loop := findNode(t, fset, g, "L4:ForStmt")
	if dom.Idom(def) != loop {
		t.Errorf("Idom(defer) = %v, want the loop header", dom.Idom(def))
	}
}

// TestCFGUnreachableAfterPanic: panic edges to Exit and nowhere else;
// the trailing statement keeps its node but has no predecessors, a nil
// dominator set, and answers false to every dominance query.
func TestCFGUnreachableAfterPanic(t *testing.T) {
	fset, g := buildFunc(t, `	if bad {
		panic("boom")
		sink(1)
	}
	sink(2)
`)
	assertGraph(t, fset, g, `
entry -> L4:IfStmt
exit ->
L4:IfStmt -> L5:ExprStmt, L8:ExprStmt
L5:ExprStmt -> exit
L6:ExprStmt -> L8:ExprStmt
L8:ExprStmt -> exit
`)
	dead := findNode(t, fset, g, "L6:ExprStmt")
	if len(dead.Preds) != 0 {
		t.Errorf("statement after panic should have no predecessors, got %d", len(dead.Preds))
	}
	dom := Dominators(g)
	if dom.Dominates(g.Entry, dead) || dom.Dominates(dead, dead) || dom.Idom(dead) != nil {
		t.Error("dominance must be undefined (all-false) for the unreachable node")
	}
	pdom := PostDominators(g)
	cond := findNode(t, fset, g, "L4:IfStmt")
	after := findNode(t, fset, g, "L8:ExprStmt")
	if pdom.Dominates(after, cond) {
		t.Error("the after-if statement must not postdominate the condition: the panic path bypasses it")
	}
	if !pdom.Dominates(g.Exit, cond) {
		t.Error("exit postdominates everything reachable")
	}
}

// TestCFGInfiniteLoopPostdom: `for {}` has no exit edge, so nothing in
// or before the loop can reach Exit — postdominance queries about those
// nodes are all false rather than vacuously true.
func TestCFGInfiniteLoopPostdom(t *testing.T) {
	fset, g := buildFunc(t, `	for {
		sink(1)
	}
`)
	loop := findNode(t, fset, g, "L4:ForStmt")
	if len(loop.Succs) != 1 {
		t.Errorf("for {} should have only the body successor, got %v", g.String(fset))
	}
	pdom := PostDominators(g)
	if pdom.Dominates(g.Exit, loop) {
		t.Error("exit must not postdominate a node inside an infinite loop")
	}
	if !pdom.Dominates(g.Exit, g.Exit) {
		t.Error("exit postdominates itself")
	}
}

// TestNodeAt: positions inside an expression resolve to the innermost
// owning statement; positions inside a nested function literal resolve
// to the statement holding the literal.
func TestNodeAt(t *testing.T) {
	fset, g := buildFunc(t, `	x := compute(1, 2)
	f := func() {
		inner()
	}
	f()
`)
	assign := findNode(t, fset, g, "L4:AssignStmt")
	// A position inside the call on line 4 belongs to the assignment.
	if n := g.NodeAt(assign.Stmt.(*ast.AssignStmt).Rhs[0].Pos()); n != assign {
		t.Errorf("NodeAt(rhs of line 4) = %v, want the assignment node", n)
	}
	// The literal's interior statement is not a node of THIS graph; its
	// positions resolve to the statement holding the literal.
	lit := findNode(t, fset, g, "L5:AssignStmt")
	litBody := lit.Stmt.(*ast.AssignStmt).Rhs[0].(*ast.FuncLit).Body
	if n := g.NodeAt(litBody.List[0].Pos()); n != lit {
		t.Errorf("NodeAt(inside func literal) = %v, want the holding assignment", n)
	}
	if g.NodeOf(litBody.List[0]) != nil {
		t.Error("NodeOf must not own statements inside nested function literals")
	}
}
