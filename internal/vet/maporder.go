package vet

// maporder: nondeterministic map-iteration order reaching an
// order-sensitive sink. Two layers:
//
// Layer 1 is the original syntactic maprange check, kept verbatim as a
// fast path: a `for ... range m` over a map whose body appends to a
// slice outliving the loop (never sorted afterwards), writes to an
// output stream, or compound-accumulates into a float outliving the
// loop. Go randomizes map order, so the first two sinks differ run to
// run and the third differs in the low bits — float addition is not
// associative, so accumulation order changes the rounding (the
// gFromStrata G² bug: p-values near the alpha threshold flipped
// between runs).
//
// Layer 2 is a forward taint analysis on the CFG that follows
// map-iteration order through assignments the syntactic check cannot
// see. Facts are "this variable's value (or element order) depends on
// which map iteration produced it". Range over a map taints its
// key/value variables; assignment propagates taint from the right-hand
// side; ranging over a tainted slice taints the new iteration
// variables (its element order is the map's order); a sort.*/
// slices.Sort* call launders its argument. Sinks fire outside the map
// loop itself — where layer 1 is blind: a tainted value escaping into
// an output call, an append of tainted values to a slice that is never
// sorted, and float accumulation of tainted values in a later loop.
// Inside the map loop, layer 2 adds only the plain self-referential
// form `g = g + v`, which the compound-only syntactic check misses.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func init() {
	register(Check{
		Name: "maporder",
		Doc:  "map iteration order reaching an order-sensitive sink (output, unsorted append, float accumulation)",
		Run:  runMapOrder,
	})
}

func runMapOrder(p *Pass) {
	// Layer 1: syntactic fast path, scoped exactly like the original —
	// every range statement under a FuncDecl body (nested literals
	// included), sort-laundering scanned across that whole body.
	for _, decl := range p.File.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if rs, ok := n.(*ast.RangeStmt); ok {
				p.mapRangeSyntactic(rs, fn.Body)
			}
			return true
		})
	}

	// Layer 2: flow-sensitive taint, one CFG per body.
	for _, fb := range p.funcBodies() {
		p.mapOrderTaint(fb.body)
	}
}

// --- layer 1: syntactic fast path (original maprange) ---

func (p *Pass) mapRangeSyntactic(rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	t := p.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}

	var appendTargets, floatTargets []string
	var outputCall string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !p.isBuiltinAppend(call) || i >= len(n.Lhs) {
					continue
				}
				tgt := n.Lhs[i]
				if p.declaredWithin(tgt, rs.Body) {
					continue // per-iteration accumulator; order cannot leak
				}
				appendTargets = append(appendTargets, types.ExprString(tgt))
			}
			if tgt := p.floatAccumTarget(n, rs.Body); tgt != "" {
				floatTargets = append(floatTargets, tgt)
			}
		case *ast.CallExpr:
			if outputCall == "" && p.isOutputCall(n) {
				outputCall = calleeName(n)
			}
		}
		return true
	})

	if outputCall != "" {
		p.Reportf(rs.Pos(), "maporder",
			"map iteration writes output via %s in nondeterministic order", outputCall)
	}
	for _, tgt := range appendTargets {
		if p.sortedAfterPos(tgt, rs.End(), fnBody) {
			continue
		}
		p.Reportf(rs.Pos(), "maporder",
			"map iteration appends to %s in nondeterministic order and %s is never sorted afterwards", tgt, tgt)
	}
	for _, tgt := range floatTargets {
		p.Reportf(rs.Pos(), "maporder",
			"map iteration accumulates into float %s in nondeterministic order; float addition is not associative, so the rounding differs run to run — iterate the keys in sorted order", tgt)
	}
}

// floatAccumTarget returns the rendered target of a floating-point
// compound accumulation (+=, -=, *=, /=) whose variable outlives the
// loop body, or "". Integer accumulation commutes exactly and is fine
// in any order; float accumulation picks up order-dependent rounding.
func (p *Pass) floatAccumTarget(n *ast.AssignStmt, body ast.Node) string {
	switch n.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return ""
	}
	if len(n.Lhs) != 1 {
		return ""
	}
	if !p.isFloatExpr(n.Lhs[0]) || p.declaredWithin(n.Lhs[0], body) {
		return ""
	}
	return types.ExprString(n.Lhs[0])
}

func (p *Pass) isFloatExpr(e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&(types.IsFloat|types.IsComplex) != 0
}

func (p *Pass) isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	obj := p.Info.Uses[id]
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin || obj == nil
}

// declaredWithin reports whether expr is an identifier whose declaration
// lies inside node (e.g. a slice created fresh on every loop iteration).
// Selector expressions (struct fields) always count as outer.
func (p *Pass) declaredWithin(expr ast.Expr, node ast.Node) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// isOutputCall reports whether call writes to an output stream: the fmt
// print family or a Write*/print method on any receiver.
func (p *Pass) isOutputCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pkg, ok := p.Info.Uses[selIdent(sel)].(*types.PkgName); ok {
		return pkg.Imported().Path() == "fmt" && fmtPrinters[sel.Sel.Name]
	}
	name := sel.Sel.Name
	return strings.HasPrefix(name, "Write") || name == "Print" || name == "Printf"
}

// sortedAfterPos reports whether a sort or slices package sort call
// mentioning target appears after pos within the enclosing function —
// the canonical collect-then-sort idiom.
func (p *Pass) sortedAfterPos(target string, pos token.Pos, fnBody *ast.BlockStmt) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := p.Info.Uses[selIdent(sel)].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkg.Imported().Path() {
		case "sort":
		case "slices":
			if !strings.HasPrefix(sel.Sel.Name, "Sort") {
				return true
			}
		default:
			return true
		}
		for _, arg := range call.Args {
			if strings.Contains(types.ExprString(arg), target) {
				found = true
				break
			}
		}
		return true
	})
	return found
}

// isSortCall reports whether call is a sort.*/slices.Sort* laundering
// call, returning the argument expressions whose roots it launders.
func (p *Pass) isSortCall(call *ast.CallExpr) ([]ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	pkg, ok := p.Info.Uses[selIdent(sel)].(*types.PkgName)
	if !ok {
		return nil, false
	}
	switch pkg.Imported().Path() {
	case "sort":
	case "slices":
		if !strings.HasPrefix(sel.Sel.Name, "Sort") {
			return nil, false
		}
	default:
		return nil, false
	}
	return call.Args, true
}

// --- layer 2: taint dataflow ---

// mapOrderState carries one body's taint-analysis context.
type mapOrderState struct {
	p         *Pass
	idx       map[types.Object]int // tracked variable -> fact bit
	mapRanges []*ast.RangeStmt     // map-range statements in this body
	loops     []ast.Stmt           // all for/range statements in this body
	ifs       []*ast.IfStmt        // all if statements, for selection detection
}

func (p *Pass) mapOrderTaint(body *ast.BlockStmt) {
	g := p.CFG(body)
	mo := &mapOrderState{p: p, idx: map[types.Object]int{}}

	// Fact universe: every variable mentioned lexically in this body, in
	// first-occurrence order (deterministic bit assignment). Closures can
	// in principle smuggle taint across body boundaries; that flow is out
	// of scope here — each literal body is analyzed on its own.
	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj, ok := p.Info.ObjectOf(n).(*types.Var); ok {
				if _, seen := mo.idx[obj]; !seen {
					mo.idx[obj] = len(mo.idx)
				}
			}
		case *ast.RangeStmt:
			mo.loops = append(mo.loops, n)
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					mo.mapRanges = append(mo.mapRanges, n)
				}
			}
		case *ast.ForStmt:
			mo.loops = append(mo.loops, n)
		case *ast.IfStmt:
			mo.ifs = append(mo.ifs, n)
		}
		return true
	})
	if len(mo.mapRanges) == 0 && len(mo.idx) == 0 {
		return
	}
	// Without a map range in this body no variable can ever become
	// tainted from within, so the sinks cannot fire; skip the solve.
	if len(mo.mapRanges) == 0 {
		return
	}

	width := len(mo.idx)
	flows := Solve(g, Problem{
		Facts:    width,
		Transfer: mo.transfer,
	})

	for _, n := range g.Nodes {
		mo.checkSinks(n, flows[n.Index].In, body)
	}
}

// tainted reports whether any identifier inside e carries taint under
// the fact set in.
func (mo *mapOrderState) tainted(e ast.Expr, in BitSet) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if i, tracked := mo.idx[mo.p.Info.ObjectOf(id)]; tracked && in.Has(i) {
				found = true
			}
		}
		return true
	})
	return found
}

// setVar applies a strong update to a plain identifier target and a
// weak (taint-only-grows) update to a slice or array element write —
// an appended-to or element-written sequence carries its insertion
// order. Writes into maps and struct fields do NOT taint the root: a
// map is an unordered container (storing map-ordered values under
// their keys is deterministic), and without that cutoff a single keyed
// store like preds[label] = col would taint the whole aggregate and
// everything later read through it.
func (mo *mapOrderState) setVar(lhs ast.Expr, taint bool, out BitSet) {
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		if i, tracked := mo.idx[mo.p.Info.ObjectOf(id)]; tracked {
			if taint {
				out.Set(i)
			} else {
				out.Clear(i)
			}
		}
		return
	}
	if !taint {
		return
	}
	if root := rootIdent(lhs); root != nil {
		obj := mo.p.Info.ObjectOf(root)
		if i, tracked := mo.idx[obj]; tracked && isSequence(obj.Type()) {
			out.Set(i)
		}
	}
}

// isSequence reports whether t is an order-bearing container (slice or
// array, possibly behind a pointer).
func isSequence(t types.Type) bool {
	if t == nil {
		return false
	}
	u := t.Underlying()
	if ptr, ok := u.(*types.Pointer); ok {
		u = ptr.Elem().Underlying()
	}
	switch u.(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}

// transfer is the taint transfer function. All right-hand sides are
// evaluated against the incoming facts (Go evaluates every RHS before
// any assignment lands), and each clause is monotone in the input.
func (mo *mapOrderState) transfer(n *Node, in BitSet) BitSet {
	out := in.Clone()
	switch s := n.Stmt.(type) {
	case *ast.RangeStmt:
		t := false
		if typ := mo.p.Info.TypeOf(s.X); typ != nil {
			_, t = typ.Underlying().(*types.Map)
		}
		t = t || mo.tainted(s.X, in)
		if s.Key != nil {
			mo.setVar(s.Key, t, out)
		}
		if s.Value != nil {
			mo.setVar(s.Value, t, out)
		}
	case *ast.AssignStmt:
		if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
			// A comparison-guarded assignment to its own guard variables
			// is a selection (running max/min, argmax with a tie-break):
			// the selected element over an unordered set is deterministic,
			// so the result is laundered rather than tainted.
			launder := mo.selectionGuarded(s)
			if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
				t := !launder && mo.tainted(s.Rhs[0], in)
				for _, l := range s.Lhs {
					mo.setVar(l, t, out)
				}
			} else {
				for i, l := range s.Lhs {
					if i < len(s.Rhs) {
						mo.setVar(l, !launder && mo.tainted(s.Rhs[i], in), out)
					}
				}
			}
		} else if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			// compound op=: the target keeps taint it had and absorbs the
			// operand's.
			mo.setVar(s.Lhs[0], mo.tainted(s.Lhs[0], in) || mo.tainted(s.Rhs[0], in), out)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					t := false
					if len(vs.Values) == 1 && len(vs.Names) > 1 {
						t = mo.tainted(vs.Values[0], in)
					} else if i < len(vs.Values) {
						t = mo.tainted(vs.Values[i], in)
					}
					mo.setVar(name, t, out)
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if args, isSort := mo.p.isSortCall(call); isSort {
				for _, a := range args {
					if root := rootIdent(a); root != nil {
						if i, tracked := mo.idx[mo.p.Info.ObjectOf(root)]; tracked {
							out.Clear(i)
						}
					}
				}
			}
		}
	}
	return out
}

// selectionGuarded reports whether as sits inside an if statement whose
// condition compares against one of as's own targets — the running
// max/min shape:
//
//	if v > max { max = v }
//	if c > modeC || (c == modeC && v < mode) { mode, modeC = v, c }
//
// Selecting an extremum from an unordered set is order-insensitive
// (assuming the comparison totally orders candidates), so the selected
// value is treated as laundered. An incomplete tie-break is a false
// negative this trade accepts to keep real reductions quiet.
func (mo *mapOrderState) selectionGuarded(as *ast.AssignStmt) bool {
	targets := map[types.Object]bool{}
	for _, l := range as.Lhs {
		if id, ok := l.(*ast.Ident); ok {
			if obj := mo.p.Info.ObjectOf(id); obj != nil {
				targets[obj] = true
			}
		}
	}
	if len(targets) == 0 {
		return false
	}
	for _, is := range mo.ifs {
		if !(is.Body.Pos() <= as.Pos() && as.Pos() < is.Body.End()) {
			continue
		}
		compares, mentions := false, false
		ast.Inspect(is.Cond, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.LSS, token.GTR, token.LEQ, token.GEQ:
					compares = true
				}
			case *ast.Ident:
				if targets[mo.p.Info.ObjectOf(n)] {
					mentions = true
				}
			}
			return true
		})
		if compares && mentions {
			return true
		}
	}
	return false
}

// enclosingMapRange returns the innermost map-range statement whose
// body lexically contains pos, or nil.
func (mo *mapOrderState) enclosingMapRange(pos token.Pos) *ast.RangeStmt {
	var best *ast.RangeStmt
	for _, rs := range mo.mapRanges {
		if rs.Body.Pos() <= pos && pos < rs.Body.End() {
			if best == nil || rs.Body.Pos() > best.Body.Pos() {
				best = rs
			}
		}
	}
	return best
}

// enclosingLoop returns the innermost for/range statement whose body
// lexically contains pos, or nil.
func (mo *mapOrderState) enclosingLoop(pos token.Pos) ast.Stmt {
	var best ast.Stmt
	bestPos := token.NoPos
	for _, l := range mo.loops {
		var b *ast.BlockStmt
		switch l := l.(type) {
		case *ast.ForStmt:
			b = l.Body
		case *ast.RangeStmt:
			b = l.Body
		}
		if b.Pos() <= pos && pos < b.End() {
			if best == nil || b.Pos() > bestPos {
				best, bestPos = l, b.Pos()
			}
		}
	}
	return best
}

// checkSinks inspects one CFG node against the solved taint facts.
func (mo *mapOrderState) checkSinks(n *Node, in BitSet, fnBody *ast.BlockStmt) {
	p := mo.p
	if n.Stmt == nil || in == nil {
		return
	}
	pos := n.Stmt.Pos()
	inMap := mo.enclosingMapRange(pos)

	switch s := n.Stmt.(type) {
	case *ast.AssignStmt:
		// Float accumulation of a tainted value. Inside a map loop layer 1
		// already reports every compound form, so only the plain
		// self-referential spelling `g = g + v` is new there; outside,
		// both forms are layer-2 territory (the loop iterating in map
		// order is a later loop over a tainted slice).
		lhs, rhsTaint, compound := mo.floatAccum(s, in)
		if lhs != nil && rhsTaint {
			switch {
			case inMap != nil:
				if !compound && !p.declaredWithin(lhs, inMap.Body) {
					p.Reportf(pos, "maporder",
						"float %s accumulates values in map-iteration order (plain assignment form); float addition is not associative, so the rounding differs run to run — iterate the keys in sorted order",
						types.ExprString(lhs))
				}
			default:
				if loop := mo.enclosingLoop(pos); loop != nil && !mo.loopBodyDeclares(lhs, loop) {
					p.Reportf(pos, "maporder",
						"float %s accumulates values derived from map iteration in nondeterministic order; float addition is not associative, so the rounding differs run to run — sort before accumulating",
						types.ExprString(lhs))
				}
			}
		}
		// Tainted append escaping the map loop: layer 1 only sees appends
		// lexically inside the range body.
		if inMap == nil {
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !p.isBuiltinAppend(call) || i >= len(s.Lhs) {
					continue
				}
				argTainted := false
				for _, a := range call.Args[1:] {
					if mo.tainted(a, in) {
						argTainted = true
						break
					}
				}
				if !argTainted {
					continue
				}
				tgt := types.ExprString(s.Lhs[i])
				if loop := mo.enclosingLoop(pos); loop != nil && mo.loopBodyDeclares(s.Lhs[i], loop) {
					continue
				}
				if p.sortedAfterPos(tgt, s.End(), fnBody) {
					continue
				}
				p.Reportf(pos, "maporder",
					"%s collects values derived from map iteration in nondeterministic order and is never sorted afterwards", tgt)
			}
		}
	case *ast.ExprStmt:
		// Tainted value reaching an output call outside the map loop
		// (inside, layer 1 flags every output call already).
		if inMap != nil {
			return
		}
		call, ok := s.X.(*ast.CallExpr)
		if !ok || !p.isOutputCall(call) {
			return
		}
		for _, a := range call.Args {
			if mo.tainted(a, in) {
				p.Reportf(pos, "maporder",
					"%s is called with a value derived from map iteration; the output is nondeterministic run to run", calleeName(call))
				return
			}
		}
	}
}

// floatAccum recognizes both accumulation spellings on a float target:
// compound (g += v) and plain self-referential (g = g + v). It returns
// the target, whether the accumulated operand is tainted, and which
// spelling it was.
func (mo *mapOrderState) floatAccum(s *ast.AssignStmt, in BitSet) (lhs ast.Expr, rhsTaint, compound bool) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return nil, false, false
	}
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if !mo.p.isFloatExpr(s.Lhs[0]) {
			return nil, false, false
		}
		return s.Lhs[0], mo.tainted(s.Rhs[0], in), true
	case token.ASSIGN:
		id, ok := s.Lhs[0].(*ast.Ident)
		if !ok || !mo.p.isFloatExpr(id) {
			return nil, false, false
		}
		bin, ok := s.Rhs[0].(*ast.BinaryExpr)
		if !ok {
			return nil, false, false
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
		default:
			return nil, false, false
		}
		obj := mo.p.Info.ObjectOf(id)
		selfRef, taintedOther := false, false
		ast.Inspect(bin, func(n ast.Node) bool {
			if other, ok := n.(*ast.Ident); ok {
				o := mo.p.Info.ObjectOf(other)
				if o == obj {
					selfRef = true
				} else if i, tracked := mo.idx[o]; tracked && in.Has(i) {
					taintedOther = true
				}
			}
			return true
		})
		if !selfRef {
			return nil, false, false
		}
		return id, taintedOther, false
	}
	return nil, false, false
}

// loopBodyDeclares reports whether lhs is declared inside loop's body
// (a per-iteration accumulator, which cannot leak order).
func (mo *mapOrderState) loopBodyDeclares(lhs ast.Expr, loop ast.Stmt) bool {
	switch l := loop.(type) {
	case *ast.ForStmt:
		return mo.p.declaredWithin(lhs, l.Body)
	case *ast.RangeStmt:
		return mo.p.declaredWithin(lhs, l.Body)
	}
	return false
}
