package vet

// deaderr: reaching definitions over error-typed locals. A "definition"
// is an assignment of a call result to an error variable; a read of the
// variable consumes (kills) every definition that reaches it. A
// definition that is never consumed is a swallowed error:
//
//	err := step1()
//	err = step2() // step1's error overwritten before anyone read it
//	if err != nil { ... }
//
// or, flow-sensitively, consumed on one path and dropped on another:
//
//	err := f()
//	if fast { return result } // drops f's error on this path
//	return err
//
// Reads kill definitions, so this is not classic reaching-defs: a
// definition reaching a node means it reaches it *unread*. Three report
// shapes fall out: never read + overwritten (reported at the
// definition, naming the overwrite), never read at all (reported at the
// definition), and read on some path but reaching a return unread on
// another (reported at that return). The analysis bails on variables
// whose address is taken or that are captured by a function literal —
// writes through those channels are invisible to the CFG.

import (
	"go/ast"
	"go/token"
	"go/types"
)

func init() {
	register(Check{
		Name: "deaderr",
		Doc:  "error assigned from a call, then overwritten or dropped on some path before being read",
		Run:  runDeadErr,
	})
}

// errDef is one call-result assignment to a tracked error variable.
type errDef struct {
	obj  types.Object
	name string
	node *Node
	pos  token.Pos
}

func runDeadErr(p *Pass) {
	for _, fb := range p.funcBodies() {
		p.deadErrBody(fb.body)
	}
}

func (p *Pass) deadErrBody(body *ast.BlockStmt) {
	g := p.CFG(body)

	// Tracked variables: error-typed locals declared inside this body.
	// Parameters and named results live in the signature (before
	// body.Pos()) and are excluded — a named result is implicitly read
	// by every bare return, which this per-node model does not see.
	tracked := map[types.Object]bool{}
	inspectShallow(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Defs[id].(*types.Var)
		if !ok || id.Name == "_" {
			return true
		}
		if isErrorType(obj.Type()) && obj.Pos() >= body.Pos() && obj.Pos() < body.End() {
			tracked[obj] = true
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	// Bail on aliasing: &err anywhere, or err mentioned inside a nested
	// function literal (the closure can read or write it between any two
	// statements of this body).
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id := rootIdent(n.X); id != nil {
					delete(tracked, p.Info.ObjectOf(id))
				}
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					delete(tracked, p.Info.ObjectOf(id))
				}
				return true
			})
			return false
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	// Definitions (call-bearing assignments) and plain writes, per node.
	var defs []errDef
	writes := map[*Node][]types.Object{} // every assignment, call-bearing or not
	inspectShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
			return true
		}
		node := g.NodeAt(as.Pos())
		if node == nil {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := p.Info.ObjectOf(id)
			if !tracked[obj] {
				continue
			}
			writes[node] = append(writes[node], obj)
			rhs := as.Rhs[0]
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			}
			if containsCall(rhs) {
				defs = append(defs, errDef{obj: obj, name: id.Name, node: node, pos: as.Pos()})
			}
		}
		return true
	})
	if len(defs) == 0 {
		return
	}

	// Reads per node: identifiers resolving to a tracked variable in the
	// expressions the node owns (plain-identifier assignment targets are
	// writes, not reads).
	reads := map[*Node]map[types.Object]bool{}
	for _, n := range g.Nodes {
		if n.Stmt == nil {
			continue
		}
		for _, e := range stmtOwnedReads(n.Stmt) {
			ast.Inspect(e, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := p.Info.ObjectOf(id); tracked[obj] {
						if reads[n] == nil {
							reads[n] = map[types.Object]bool{}
						}
						reads[n][obj] = true
					}
				}
				return true
			})
		}
	}

	width := len(defs)
	gen := map[*Node]BitSet{}
	kill := map[*Node]BitSet{}
	addKill := func(n *Node, obj types.Object) {
		for i, d := range defs {
			if d.obj != obj {
				continue
			}
			if kill[n] == nil {
				kill[n] = NewBitSet(width)
			}
			kill[n].Set(i)
		}
	}
	for i, d := range defs {
		if gen[d.node] == nil {
			gen[d.node] = NewBitSet(width)
		}
		gen[d.node].Set(i)
	}
	for n, objs := range writes {
		for _, obj := range objs {
			addKill(n, obj)
		}
	}
	for n, objs := range reads {
		for obj := range objs {
			addKill(n, obj)
		}
	}

	flows := Solve(g, Problem{
		Facts:    width,
		Transfer: GenKill(gen, kill, width),
	})

	for i, d := range defs {
		// Read anywhere? (The reading node may simultaneously redefine —
		// err = wrap(err) — reads happen first.)
		readSomewhere := false
		for n, objs := range reads {
			if objs[d.obj] && flows[n.Index].In.Has(i) {
				readSomewhere = true
				break
			}
		}
		if !readSomewhere {
			// Prefer naming the overwrite when one exists.
			var over *Node
			for n, objs := range writes {
				if n == d.node || !flows[n.Index].In.Has(i) {
					continue
				}
				for _, obj := range objs {
					if obj == d.obj && (over == nil || n.Stmt.Pos() < over.Stmt.Pos()) {
						over = n
					}
				}
			}
			if over != nil {
				p.Reportf(d.pos, "deaderr",
					"the error assigned to %s is overwritten at line %d before it is ever read",
					d.name, p.Fset.Position(over.Stmt.Pos()).Line)
			} else if flows[g.Exit.Index].In.Has(i) {
				p.Reportf(d.pos, "deaderr",
					"the error assigned to %s is never read; handle it or assign the call to _", d.name)
			}
			continue
		}
		// Read on some path: flag returns a still-unread definition
		// reaches on another — but only returns inside the variable's
		// scope. A scope-confined guard like
		// `if cerr := f.Close(); werr == nil { werr = cerr }` reaches the
		// function's return with cerr unread on the werr != nil path by
		// deliberate construction: the branch priority is the idiom.
		scope := d.obj.Parent()
		for _, n := range g.Nodes {
			if _, isRet := n.Stmt.(*ast.ReturnStmt); !isRet {
				continue
			}
			if scope != nil && !scope.Contains(n.Stmt.Pos()) {
				continue
			}
			reachesExit := false
			for _, s := range n.Succs {
				if s == g.Exit {
					reachesExit = true
				}
			}
			if reachesExit && flows[n.Index].Out.Has(i) {
				p.Reportf(n.Stmt.Pos(), "deaderr",
					"this return discards the error in %s (assigned at line %d) without reading it, though another path does",
					d.name, p.Fset.Position(d.pos).Line)
			}
		}
	}
}

// containsCall reports whether e contains a function or method call —
// the definition filter: only call results are "errors someone produced
// for you to check".
func containsCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// stmtOwnedReads returns the expressions a CFG node's statement
// evaluates itself — compound statements own only their headers (their
// bodies are separate nodes), and plain-identifier assignment targets
// are writes rather than reads.
func stmtOwnedReads(s ast.Stmt) []ast.Expr {
	switch s := s.(type) {
	case *ast.AssignStmt:
		out := append([]ast.Expr(nil), s.Rhs...)
		for _, l := range s.Lhs {
			if _, isIdent := l.(*ast.Ident); !isIdent {
				out = append(out, l)
			}
		}
		return out
	case *ast.ExprStmt:
		return []ast.Expr{s.X}
	case *ast.ReturnStmt:
		return s.Results
	case *ast.IfStmt:
		return []ast.Expr{s.Cond}
	case *ast.ForStmt:
		if s.Cond != nil {
			return []ast.Expr{s.Cond}
		}
	case *ast.RangeStmt:
		return []ast.Expr{s.X}
	case *ast.SwitchStmt:
		if s.Tag != nil {
			return []ast.Expr{s.Tag}
		}
	case *ast.CaseClause:
		return s.List
	case *ast.SendStmt:
		return []ast.Expr{s.Chan, s.Value}
	case *ast.IncDecStmt:
		return []ast.Expr{s.X}
	case *ast.DeferStmt:
		return []ast.Expr{s.Call}
	case *ast.GoStmt:
		return []ast.Expr{s.Call}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			var out []ast.Expr
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					out = append(out, vs.Values...)
				}
			}
			return out
		}
	}
	return nil
}
