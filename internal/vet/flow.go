package vet

// Generic dataflow over the CFG: small fact lattices encoded as bitsets,
// monotone transfer functions, worklist iteration to fixpoint. Forward
// and backward directions share one solver (backward runs on the
// reversed edge accessors).

// BitSet is a fixed-width bitset — the fact lattice element. The zero
// value of width 0 is usable as an always-empty set.
type BitSet []uint64

// NewBitSet returns an empty set able to hold facts [0, n).
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set adds fact i.
func (b BitSet) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Clear removes fact i.
func (b BitSet) Clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether fact i is present.
func (b BitSet) Has(i int) bool {
	w := i / 64
	return w < len(b) && b[w]&(1<<(uint(i)%64)) != 0
}

// Clone copies the set.
func (b BitSet) Clone() BitSet {
	out := make(BitSet, len(b))
	copy(out, b)
	return out
}

// UnionWith adds o's facts, reporting whether b changed.
func (b BitSet) UnionWith(o BitSet) bool {
	changed := false
	for i := range b {
		if i >= len(o) {
			break
		}
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// IntersectWith keeps only facts also in o.
func (b BitSet) IntersectWith(o BitSet) {
	for i := range b {
		if i >= len(o) {
			b[i] = 0
			continue
		}
		b[i] &= o[i]
	}
}

// Equal reports set equality (widths must match by construction).
func (b BitSet) Equal(o BitSet) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// Empty reports whether no fact is set.
func (b BitSet) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of facts set.
func (b BitSet) Count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Problem is one dataflow instance on a Graph.
type Problem struct {
	// Backward solves over reversed edges (facts flow exit → entry).
	Backward bool
	// Facts is the lattice width (number of distinct facts).
	Facts int
	// Must selects intersection meet (a fact holds only if it holds on
	// every incoming path). Default is union meet (may: any path).
	Must bool
	// Transfer computes the node's output facts from its input facts.
	// It must be monotone (growing in never shrinks out) or the solver
	// may not terminate. in is read-only; return a fresh or cached set.
	Transfer func(n *Node, in BitSet) BitSet
	// Boundary is the fact set at the root (Entry forward, Exit
	// backward). Nil means empty.
	Boundary BitSet
}

// Flow holds the fixpoint fact sets around one node.
type Flow struct {
	In  BitSet // facts on entry to the node (exit, when Backward)
	Out BitSet // facts after the node's transfer
}

// Solve iterates p to fixpoint and returns the per-node flows, indexed
// by Node.Index. Iteration order is the deterministic Nodes order, so
// the fixpoint — and any diagnostics derived from it — is byte-stable
// run to run.
func Solve(g *Graph, p Problem) []Flow {
	root := g.Entry
	in := func(n *Node) []*Node { return n.Preds }
	if p.Backward {
		root = g.Exit
		in = func(n *Node) []*Node { return n.Succs }
	}

	flows := make([]Flow, len(g.Nodes))
	for i := range flows {
		flows[i].In = NewBitSet(p.Facts)
		flows[i].Out = NewBitSet(p.Facts)
	}
	boundary := p.Boundary
	if boundary == nil {
		boundary = NewBitSet(p.Facts)
	}

	// For must-problems, uninitialized interior nodes start at ⊤ (all
	// facts) so the first meet does not spuriously erase facts.
	if p.Must {
		for i := range flows {
			if g.Nodes[i] == root {
				continue
			}
			for w := range flows[i].In {
				flows[i].In[w] = ^uint64(0)
			}
		}
	}
	flows[root.Index].In = boundary.Clone()

	changed := true
	for changed {
		changed = false
		for _, n := range g.Nodes {
			f := &flows[n.Index]
			if n != root {
				var meet BitSet
				if p.Must {
					meet = NewBitSet(p.Facts)
					for w := range meet {
						meet[w] = ^uint64(0)
					}
					preds := in(n)
					if len(preds) == 0 {
						meet = NewBitSet(p.Facts)
					}
					for _, m := range preds {
						meet.IntersectWith(flows[m.Index].Out)
					}
				} else {
					meet = NewBitSet(p.Facts)
					for _, m := range in(n) {
						meet.UnionWith(flows[m.Index].Out)
					}
				}
				if !meet.Equal(f.In) {
					f.In = meet
					changed = true
				}
			}
			out := p.Transfer(n, f.In)
			if !out.Equal(f.Out) {
				f.Out = out.Clone()
				changed = true
			}
		}
	}
	return flows
}

// GenKill builds the standard gen/kill transfer: out = (in \ kill) ∪ gen.
// gen and kill may be nil maps or have nil entries (treated as empty).
func GenKill(gen, kill map[*Node]BitSet, width int) func(n *Node, in BitSet) BitSet {
	return func(n *Node, in BitSet) BitSet {
		out := in.Clone()
		if k := kill[n]; k != nil {
			for i := range out {
				if i < len(k) {
					out[i] &^= k[i]
				}
			}
		}
		if g := gen[n]; g != nil {
			out.UnionWith(g)
		}
		if out == nil {
			out = NewBitSet(width)
		}
		return out
	}
}
