package vet

// lockbalance: a forward may-analysis that flags paths on which a
// sync.Mutex / sync.RWMutex acquired in a function is still held when
// the function exits. The classic shape is an early return added
// between Lock and Unlock:
//
//	mu.Lock()
//	if cond {
//		return err // mu still held — every later caller deadlocks
//	}
//	mu.Unlock()
//
// Facts are "lock root R is held (write / read)". Lock/RLock generate
// the fact, Unlock/RUnlock kill it, and a defer that unlocks —
// directly (defer mu.Unlock()) or inside a deferred function literal —
// kills it too, since from the defer statement onward every exit runs
// the unlock. A may-analysis fact surviving to an exit predecessor
// means at least one path reaches that return/fall-through with the
// lock held.
//
// Before solving, a postdominance fast path discharges the common
// balanced case: if every acquisition site of a root is postdominated
// by some release site of that root, no path can leak it, and the root
// is dropped from the lattice (when all roots are discharged the solve
// is skipped entirely).

import (
	"go/ast"
	"go/token"
	"go/types"
)

func init() {
	register(Check{
		Name: "lockbalance",
		Doc:  "sync.Mutex/RWMutex held on some path to return without Unlock",
		Run:  runLockBalance,
	})
}

// lockOpKind distinguishes acquire/release and write/read flavors.
type lockOpKind uint8

const (
	opLock lockOpKind = iota
	opUnlock
	opRLock
	opRUnlock
)

// lockOp is one Lock/Unlock-family call resolved to its receiver root.
type lockOp struct {
	kind lockOpKind
	root string // printable receiver expression, e.g. "s.mu"
	node *Node  // CFG node of the owning statement
	pos  token.Pos
}

// lockMethodKind classifies sel's method if it is one of the
// sync mutex lock/unlock methods (TryLock/TryRLock are conditional
// acquisitions and are deliberately not modeled).
func (p *Pass) lockMethodKind(sel *ast.SelectorExpr) (lockOpKind, bool) {
	var kind lockOpKind
	switch sel.Sel.Name {
	case "Lock":
		kind = opLock
	case "Unlock":
		kind = opUnlock
	case "RLock":
		kind = opRLock
	case "RUnlock":
		kind = opRUnlock
	default:
		return 0, false
	}
	s, ok := p.Info.Selections[sel]
	if !ok {
		return 0, false
	}
	obj := s.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return 0, false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return 0, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return 0, false
	}
	// sync.Locker's methods have an interface receiver; only the concrete
	// *Mutex / *RWMutex methods are modeled.
	ptr, ok := recv.Type().(*types.Pointer)
	if !ok {
		return 0, false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return 0, false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return kind, true
	}
	return 0, false
}

// runLockBalance analyzes each function body independently; a lock
// acquired in one function and released in another (hand-off APIs like
// lock helpers) is out of scope and produces no finding, because the
// receiver root never matches a release in the same body.
func runLockBalance(p *Pass) {
	for _, fb := range p.funcBodies() {
		p.lockBalanceBody(fb.body)
	}
}

func (p *Pass) lockBalanceBody(body *ast.BlockStmt) {
	g := p.CFG(body)

	// Collect lock operations lexically in this body. A release inside a
	// deferred function literal counts as a defer-release of the defer
	// statement's node; literals that are not deferred run at some
	// unknowable time and are ignored (their own body gets its own
	// analysis).
	var ops []lockOp
	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			node := g.NodeOf(ast.Stmt(n))
			if node == nil {
				return true
			}
			for _, rel := range p.deferredReleases(n) {
				rel.node = node
				ops = append(ops, rel)
			}
			return false // the deferred call's interior is handled above
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind, ok := p.lockMethodKind(sel)
			if !ok {
				return true
			}
			if node := g.NodeAt(n.Pos()); node != nil {
				ops = append(ops, lockOp{kind: kind, root: types.ExprString(sel.X), node: node, pos: n.Pos()})
			}
		}
		return true
	})
	if len(ops) == 0 {
		return
	}

	// Index roots: two facts per root, write-held and read-held.
	rootIdx := map[string]int{}
	var roots []string
	for _, op := range ops {
		if _, ok := rootIdx[op.root]; !ok {
			rootIdx[op.root] = len(roots)
			roots = append(roots, op.root)
		}
	}
	factOf := func(op lockOp) int {
		i := rootIdx[op.root] * 2
		if op.kind == opRLock || op.kind == opRUnlock {
			i++
		}
		return i
	}

	// Postdominance fast path: a root whose every acquisition is
	// postdominated by some release of the same flavor cannot leak —
	// every path from the acquisition to Exit passes the release after
	// the acquisition.
	pdom := p.PostDom(g)
	discharged := map[string]bool{}
	for _, root := range roots {
		ok := true
		for _, acq := range ops {
			if acq.root != root || (acq.kind != opLock && acq.kind != opRLock) {
				continue
			}
			covered := false
			for _, rel := range ops {
				if rel.root != root || rel.node == acq.node {
					continue
				}
				match := (acq.kind == opLock && rel.kind == opUnlock) ||
					(acq.kind == opRLock && rel.kind == opRUnlock)
				if match && pdom.Dominates(rel.node, acq.node) {
					covered = true
					break
				}
			}
			if !covered {
				ok = false
				break
			}
		}
		discharged[root] = ok
	}
	allClear := true
	for _, root := range roots {
		if !discharged[root] {
			allClear = false
		}
	}
	if allClear {
		return
	}

	width := len(roots) * 2
	gen := map[*Node]BitSet{}
	kill := map[*Node]BitSet{}
	firstAcq := map[int]token.Pos{} // fact -> earliest acquisition position
	for _, op := range ops {
		if discharged[op.root] {
			continue
		}
		f := factOf(op)
		switch op.kind {
		case opLock, opRLock:
			if gen[op.node] == nil {
				gen[op.node] = NewBitSet(width)
			}
			gen[op.node].Set(f)
			if prev, ok := firstAcq[f]; !ok || op.pos < prev {
				firstAcq[f] = op.pos
			}
		case opUnlock, opRUnlock:
			if kill[op.node] == nil {
				kill[op.node] = NewBitSet(width)
			}
			kill[op.node].Set(f)
		}
	}
	if len(gen) == 0 {
		return
	}

	flows := Solve(g, Problem{
		Facts:    width,
		Transfer: GenKill(gen, kill, width),
	})

	// Report once per (exit predecessor, fact): the path reaches this
	// return / fall-through with the lock held.
	for _, n := range g.Nodes {
		exits := false
		for _, s := range n.Succs {
			if s == g.Exit {
				exits = true
			}
		}
		if !exits || n == g.Entry {
			continue
		}
		out := flows[n.Index].Out
		for f := 0; f < width; f++ {
			if !out.Has(f) {
				continue
			}
			root := roots[f/2]
			verb := "Lock"
			unlock := "Unlock"
			if f%2 == 1 {
				verb, unlock = "RLock", "RUnlock"
			}
			p.Reportf(n.Pos(), "lockbalance",
				"%s.%s (line %d) is still held when this path returns; call %s.%s before returning or defer it",
				root, verb, p.Fset.Position(firstAcq[f]).Line, root, unlock)
		}
	}
}

// deferredReleases extracts the releases a defer statement performs:
// either the deferred call itself (defer mu.Unlock()) or unlock calls
// inside a deferred function literal (defer func() { ...; mu.Unlock() }()).
// Acquisitions inside a defer are not modeled — locking on the way out
// is a hand-off pattern this per-body analysis does not track.
func (p *Pass) deferredReleases(d *ast.DeferStmt) []lockOp {
	var out []lockOp
	collect := func(call *ast.CallExpr) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		kind, ok := p.lockMethodKind(sel)
		if !ok || (kind != opUnlock && kind != opRUnlock) {
			return
		}
		out = append(out, lockOp{kind: kind, root: types.ExprString(sel.X), pos: call.Pos()})
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				collect(call)
			}
			return true
		})
		return out
	}
	collect(d.Call)
	return out
}
