package vet

// Dominance and postdominance on the CFG, computed with the classic
// iterative bitset dataflow:
//
//	dom(entry) = {entry}
//	dom(n)     = {n} ∪ ⋂ dom(p) over predecessors p
//
// to fixpoint, iterating in a deterministic node order. Function CFGs
// are small (tens of nodes), so the O(n²) bitset formulation is both
// simple and fast; no Lengauer-Tarjan needed.

// DomTree answers dominance queries for one direction (forward from
// Entry = dominators; on the reversed graph from Exit = postdominators).
type DomTree struct {
	g *Graph
	// dom[i] = bitset of nodes dominating node i. Nodes unreachable from
	// the root have a nil set: dominance is undefined for them.
	dom []BitSet
}

// Dominators computes the dominator tree: a dominates b iff every path
// from Entry to b passes through a.
func Dominators(g *Graph) *DomTree {
	return solveDom(g, g.Entry, func(n *Node) []*Node { return n.Preds }, func(n *Node) []*Node { return n.Succs })
}

// PostDominators computes the postdominator tree: a postdominates b iff
// every path from b to Exit passes through a. Nodes with no path to
// Exit (infinite loops, blocked selects) are unreachable in the reverse
// graph and report false for every query.
func PostDominators(g *Graph) *DomTree {
	return solveDom(g, g.Exit, func(n *Node) []*Node { return n.Succs }, func(n *Node) []*Node { return n.Preds })
}

// solveDom runs the iterative algorithm from root, where preds/succs
// are the edge accessors of the (possibly reversed) graph.
func solveDom(g *Graph, root *Node, preds, succs func(*Node) []*Node) *DomTree {
	t := &DomTree{g: g, dom: make([]BitSet, len(g.Nodes))}
	n := len(g.Nodes)

	// Reachability first: unreachable nodes keep nil sets.
	reach := make([]bool, n)
	stack := []*Node{root}
	reach[root.Index] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range succs(cur) {
			if !reach[s.Index] {
				reach[s.Index] = true
				stack = append(stack, s)
			}
		}
	}

	full := NewBitSet(n)
	for i := 0; i < n; i++ {
		if reach[i] {
			full.Set(i)
		}
	}
	for _, nd := range g.Nodes {
		if !reach[nd.Index] {
			continue
		}
		if nd == root {
			t.dom[nd.Index] = NewBitSet(n)
			t.dom[nd.Index].Set(nd.Index)
		} else {
			t.dom[nd.Index] = full.Clone()
		}
	}

	changed := true
	for changed {
		changed = false
		for _, nd := range g.Nodes {
			if !reach[nd.Index] || nd == root {
				continue
			}
			next := full.Clone()
			any := false
			for _, p := range preds(nd) {
				if t.dom[p.Index] == nil {
					continue // unreachable predecessor contributes nothing
				}
				next.IntersectWith(t.dom[p.Index])
				any = true
			}
			if !any {
				next = NewBitSet(n)
			}
			next.Set(nd.Index)
			if !next.Equal(t.dom[nd.Index]) {
				t.dom[nd.Index] = next
				changed = true
			}
		}
	}
	return t
}

// Dominates reports whether a dominates (or postdominates) b. Every
// reachable node dominates itself; queries involving unreachable nodes
// are false.
func (t *DomTree) Dominates(a, b *Node) bool {
	d := t.dom[b.Index]
	return d != nil && d.Has(a.Index)
}

// Idom returns the immediate dominator of n: the unique strict
// dominator dominated by every other strict dominator. Nil for the
// root, and for unreachable nodes.
func (t *DomTree) Idom(n *Node) *Node {
	d := t.dom[n.Index]
	if d == nil {
		return nil
	}
	var best *Node
	bestCount := -1
	for _, m := range t.g.Nodes {
		if m == n || !d.Has(m.Index) {
			continue
		}
		// Among strict dominators the immediate one has the largest
		// dominator set (it is dominated by all the others).
		if c := t.dom[m.Index].Count(); c > bestCount {
			best, bestCount = m, c
		}
	}
	return best
}
