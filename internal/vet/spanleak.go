package vet

// spanleak, rewritten onto the CFG engine. The original implementation
// approximated "the close covers the return" with enclosure-chain
// prefixes — a close dominates a return only when every conditional
// construct the close sits in also encloses the return. That is exactly
// CFG dominance, computed here for real: a return path abandons a span
// unless some Stop/End node dominates the return node. The migration is
// proved by cmd/vetguard's oracle test, which runs the original
// chain-prefix implementation side by side on the fixtures and asserts
// byte-identical findings.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func init() {
	register(Check{
		Name: "spanleak",
		Doc:  "span started but abandoned on some return path without Stop/End",
		Run:  runSpanLeak,
	})
}

// isSpanType reports whether t is one of the observability span value
// types — obs.Span (stage timer) or trace.Span (trace-tree node).
// Matched by package-path suffix so the testdata fixtures (whose import
// paths are prefixed with the fixture directory) resolve the same way
// as real code.
func isSpanType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != "Span" {
		return false
	}
	path := obj.Pkg().Path()
	for _, p := range []string{"internal/obs", "internal/obs/trace"} {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

// spanVar tracks one span-typed local between its first call-assignment
// and the analysis against the body's CFG.
type spanVar struct {
	obj       types.Object
	name      string
	assignPos token.Pos
	deferred  bool        // defer sp.Stop() / defer sp.End() anywhere
	returned  bool        // sp appears in a return value: ownership moves out
	endPos    []token.Pos // every non-deferred Stop/End call position
	endNodes  []*Node     // CFG nodes of the ends lexically in this body
}

// runSpanLeak flags span-typed locals received from a call (obs's
// Histogram.Start, trace's Scope.Start, ...) that some path through the
// function abandons without Stop/End: an unclosed obs span never
// records its stage duration, and an unclosed trace span exports as an
// unfinished record with no duration. A span is accounted for when it
// is closed by a defer, closed on the way to each subsequent return
// statement, or handed to the caller in a return value. Chained
// attribute calls (sp.Int(...).End()) count — the receiver chain is
// unwound to its root. Close-site coverage is dominance on the CFG: an
// End inside a conditional does not cover a return outside it.
func runSpanLeak(p *Pass) {
	for _, fb := range p.funcBodies() {
		p.spanLeakBody(fb.body)
	}
}

// spanLeakBody analyzes the spans first-assigned directly in body
// (spans assigned inside nested literals belong to the literal's own
// funcBodies entry).
func (p *Pass) spanLeakBody(body *ast.BlockStmt) {
	g := p.CFG(body)
	vars := map[types.Object]*spanVar{}
	var order []*spanVar

	// Pass 1a: span-typed call-assignments lexically in this body (not
	// in a nested literal).
	inspectShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			rhs := as.Rhs[0]
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			}
			if _, isCall := rhs.(*ast.CallExpr); !isCall {
				continue
			}
			obj := p.Info.ObjectOf(id)
			if obj == nil || !isSpanType(obj.Type()) {
				continue
			}
			if _, seen := vars[obj]; !seen {
				sv := &spanVar{obj: obj, name: id.Name, assignPos: as.Pos()}
				vars[obj] = sv
				order = append(order, sv)
			}
		}
		return true
	})
	if len(vars) == 0 {
		return
	}

	// Pass 1b: closes, defers, and ownership transfers — anywhere in the
	// body's subtree, nested literals included (a close inside a
	// literal still counts toward "closed at least once", it just
	// cannot dominate a return of this body).
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if sv := p.spanEndCallee(n.Call, vars); sv != nil {
				sv.deferred = true
			}
		case *ast.CallExpr:
			if sv := p.spanEndCallee(n, vars); sv != nil {
				sv.endPos = append(sv.endPos, n.Pos())
				if node := g.NodeAt(n.Pos()); node != nil && !insideNestedLit(body, n.Pos()) {
					sv.endNodes = append(sv.endNodes, node)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				ast.Inspect(res, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if sv, tracked := vars[p.Info.ObjectOf(id)]; tracked {
							sv.returned = true
						}
					}
					return true
				})
			}
		}
		return true
	})

	dom := p.Dom(g)
	for _, sv := range order {
		if sv.deferred || sv.returned {
			continue
		}
		if len(sv.endPos) == 0 {
			p.Reportf(sv.assignPos, "spanleak",
				"span %s is started but never closed; call %s.Stop()/%s.End() or defer it",
				sv.name, sv.name, sv.name)
			continue
		}
		scope := sv.obj.Parent()
		for _, n := range g.Nodes {
			ret, ok := n.Stmt.(*ast.ReturnStmt)
			if !ok || ret.Pos() < sv.assignPos {
				continue
			}
			if scope != nil && !scope.Contains(ret.Pos()) {
				continue // span's variable is out of scope here
			}
			closed := false
			for i, end := range sv.endNodes {
				if sv.endPos[i] <= sv.assignPos {
					continue
				}
				if end != n && dom.Dominates(end, n) {
					closed = true
					break
				}
			}
			if !closed {
				p.Reportf(ret.Pos(), "spanleak",
					"return path abandons span %s without Stop/End (started at line %d)",
					sv.name, p.Fset.Position(sv.assignPos).Line)
			}
		}
	}
}

// insideNestedLit reports whether pos sits inside a function literal
// nested in body.
func insideNestedLit(body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit.Pos() <= pos && pos < lit.End() {
			found = true
			return false
		}
		return true
	})
	return found
}

// spanEndCallee returns the tracked span a Stop/End call closes, if
// any: the call's receiver chain (sp.Int(...).End()) is unwound to its
// root identifier and matched against the tracked locals.
func (p *Pass) spanEndCallee(call *ast.CallExpr, vars map[types.Object]*spanVar) *spanVar {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stop" && sel.Sel.Name != "End") {
		return nil
	}
	id := rootIdent(sel.X)
	if id == nil {
		return nil
	}
	return vars[p.Info.ObjectOf(id)]
}
