package vet

// The syntactic hygiene checks: globalrand, ignorederr, nakedgo,
// regcopy. Migrated verbatim from cmd/vetguard's original checker
// except where noted; ignorederr additionally covers defer and go
// statements, whose discarded errors vanish with no caller to notice.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func init() {
	register(Check{
		Name: "globalrand",
		Doc:  "call through the global math/rand source in non-test code",
		Run:  runGlobalRand,
	})
	register(Check{
		Name: "ignorederr",
		Doc:  "call (plain, deferred, or go) whose error result is silently discarded",
		Run:  runIgnoredErr,
	})
	register(Check{
		Name: "nakedgo",
		Doc:  "go statement outside the worker-pool and server packages",
		Run:  runNakedGo,
	})
	register(Check{
		Name: "regcopy",
		Doc:  "by-value move of a type holding sync or sync/atomic state",
		Run:  runRegCopy,
	})
}

// --- check: nakedgo ---

// nakedGoExempt lists the packages allowed to use raw `go` statements:
// the worker pool itself, and the two HTTP server packages (the debug
// server and the validation daemon) whose goroutines live for the whole
// process — http.Server owns its lifecycle, so routing it through a
// par.Pool would add nothing.
var nakedGoExempt = []string{"internal/par", "internal/obs/debug", "internal/serve"}

// runNakedGo flags `go` statements outside the exempt packages. All
// pipeline concurrency must route through the worker pool: the pool is
// what carries the ordered-collection, cancellation, and
// panic-propagation guarantees that keep parallel synthesis
// deterministic and debuggable.
func runNakedGo(p *Pass) {
	for _, e := range nakedGoExempt {
		if p.PkgPath == e || strings.HasSuffix(p.PkgPath, "/"+e) {
			return
		}
	}
	ast.Inspect(p.File, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			p.Reportf(gs.Pos(), "nakedgo",
				"naked go statement outside internal/par; submit the work to a par.Pool (or par.Map) so it inherits ordering, cancellation, and panic propagation")
		}
		return true
	})
}

// --- check: globalrand ---

// constructors of independent sources are the legitimate uses of the
// package-level API; everything else draws from the shared global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// runGlobalRand flags calls through the math/rand package object itself
// (rand.Intn, rand.Shuffle, ...): library code must draw from a seeded
// *rand.Rand so experiments are reproducible.
func runGlobalRand(p *Pass) {
	ast.Inspect(p.File, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkg, ok := p.Info.Uses[ident].(*types.PkgName)
		if !ok {
			return true
		}
		path := pkg.Imported().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			return true
		}
		if randConstructors[sel.Sel.Name] {
			return true
		}
		p.Reportf(call.Pos(), "globalrand",
			"call to global %s.%s breaks seeded reproducibility; draw from a *rand.Rand built with rand.New(rand.NewSource(seed))",
			path, sel.Sel.Name)
		return true
	})
}

// --- check: ignorederr ---

// fmtPrinters are fmt functions whose error returns are discarded by
// convention (writes to stdout/stderr); mirroring errcheck's defaults.
var fmtPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// runIgnoredErr flags statements whose (last) call result is an error
// nobody looks at, in three statement forms:
//
//   - an expression statement: f() — the original check;
//   - a defer statement: defer f.Close() — the error vanishes when the
//     function returns, precisely when a flush/close failure matters;
//   - a go statement: go f() — the error vanishes on a goroutine no one
//     joins.
//
// The deliberate-discard idiom `defer func() { _ = f.Close() }()` (and
// the plain `_ = f()`) assigns the result away explicitly and is not a
// silent discard, so it is the sanctioned escape hatch alongside
// //vetguard:ignore.
func runIgnoredErr(p *Pass) {
	ast.Inspect(p.File, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				p.checkDiscardedError(call, "")
			}
		case *ast.DeferStmt:
			p.checkDiscardedError(n.Call, "deferred call ")
		case *ast.GoStmt:
			p.checkDiscardedError(n.Call, "goroutine call ")
		}
		return true
	})
}

// checkDiscardedError flags call if its final result is a discarded
// error and no allowlist entry applies. kind prefixes the message for
// the defer/go statement forms.
func (p *Pass) checkDiscardedError(call *ast.CallExpr, kind string) {
	t := p.Info.TypeOf(call)
	if t == nil {
		return
	}
	returnsErr := false
	switch tt := t.(type) {
	case *types.Tuple:
		if tt.Len() > 0 {
			returnsErr = isErrorType(tt.At(tt.Len() - 1).Type())
		}
	default:
		returnsErr = isErrorType(t)
	}
	if !returnsErr || p.errExempt(call) {
		return
	}
	p.Reportf(call.Pos(), "ignorederr", "result of %s%s returns an error that is silently discarded", kind, calleeName(call))
}

// errExempt reports whether call's discarded error is conventionally
// safe: the fmt print family and methods on in-memory builders that
// document a nil error.
func (p *Pass) errExempt(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pkg, ok := p.Info.Uses[selIdent(sel)].(*types.PkgName); ok {
		if pkg.Imported().Path() == "fmt" && fmtPrinters[sel.Sel.Name] {
			return true
		}
		return false
	}
	if s, ok := p.Info.Selections[sel]; ok {
		recv := s.Recv().String()
		if strings.Contains(recv, "strings.Builder") || strings.Contains(recv, "bytes.Buffer") {
			return true
		}
	}
	return false
}

// --- check: regcopy ---

// runRegCopy flags receivers, parameters, and results that move a value
// holding sync state (a sync.Mutex, sync.WaitGroup, atomic.Int64, ...)
// by value, plus `for _, v := range xs` iterations copying such a value
// out of a collection. Copying forks the value's internal registers —
// the copy's lock word or counter diverges from the original's, which
// silently breaks mutual exclusion. go vet's copylocks covers
// assignments; this covers the signature and range surfaces, where the
// copy is implied rather than written.
func runRegCopy(p *Pass) {
	for _, decl := range p.File.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		flag := func(fl *ast.FieldList, kind string) {
			if fl == nil {
				return
			}
			for _, field := range fl.List {
				t := p.Info.TypeOf(field.Type)
				if t == nil {
					continue
				}
				if holder := syncStateName(t, nil); holder != "" {
					p.Reportf(field.Pos(), "regcopy",
						"%s of %s is passed by value, copying the %s it holds; use a pointer",
						kind, fn.Name.Name, holder)
				}
			}
		}
		flag(fn.Recv, "receiver")
		flag(fn.Type.Params, "parameter")
		flag(fn.Type.Results, "result")
	}
	ast.Inspect(p.File, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || rs.Value == nil || rs.Tok != token.DEFINE {
			return true
		}
		t := p.Info.TypeOf(rs.Value)
		if t == nil {
			return true
		}
		if holder := syncStateName(t, nil); holder != "" {
			p.Reportf(rs.Value.Pos(), "regcopy",
				"range value copies the %s held by each element; iterate by index or store pointers", holder)
		}
		return true
	})
}

// syncStateName reports the first sync-state type reachable from t by
// value ("" if none): a non-interface named type from sync or
// sync/atomic, found directly, in a struct field, or in an array
// element. Pointers, slices, maps, and channels share state rather than
// copy it, so they are not descended into. The seen set guards against
// recursive types.
func syncStateName(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch tt := t.(type) {
	case *types.Named:
		if obj := tt.Obj(); obj != nil && obj.Pkg() != nil {
			path := obj.Pkg().Path()
			if path == "sync" || path == "sync/atomic" {
				// sync.Locker and friends are interfaces: copying an
				// interface value copies a reference, not the state.
				if _, isIface := tt.Underlying().(*types.Interface); !isIface {
					return path + "." + obj.Name()
				}
				return ""
			}
		}
		return syncStateName(tt.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if name := syncStateName(tt.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return syncStateName(tt.Elem(), seen)
	}
	return ""
}
