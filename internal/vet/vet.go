package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one diagnostic: the shape drivers render as
// "file:line:col: [check] message" or as a -json record.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// SortFindings orders findings by file, line, column, check name, then
// message — a total order independent of package walk order, check
// registration order, and map iteration, so emission is byte-stable no
// matter how the driver collected them.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// Pass is the per-file analysis context handed to every check: the
// parsed file, the package's type information, and memoized CFGs and
// dominator trees shared by the flow-sensitive checks.
type Pass struct {
	Fset    *token.FileSet
	Info    *types.Info
	File    *ast.File
	PkgPath string

	findings []Finding
	cfgs     map[*ast.BlockStmt]*Graph
	doms     map[*Graph]*DomTree
	postdoms map[*Graph]*DomTree
}

// NewPass builds a Pass for one file of a typechecked package.
func NewPass(fset *token.FileSet, info *types.Info, file *ast.File, pkgPath string) *Pass {
	return &Pass{
		Fset: fset, Info: info, File: file, PkgPath: pkgPath,
		cfgs: map[*ast.BlockStmt]*Graph{}, doms: map[*Graph]*DomTree{}, postdoms: map[*Graph]*DomTree{},
	}
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, check, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:     p.Fset.Position(pos),
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	})
}

// CFG returns the memoized control-flow graph of body.
func (p *Pass) CFG(body *ast.BlockStmt) *Graph {
	if g, ok := p.cfgs[body]; ok {
		return g
	}
	g := Build(body)
	p.cfgs[body] = g
	return g
}

// Dom returns the memoized dominator tree of g.
func (p *Pass) Dom(g *Graph) *DomTree {
	if t, ok := p.doms[g]; ok {
		return t
	}
	t := Dominators(g)
	p.doms[g] = t
	return t
}

// PostDom returns the memoized postdominator tree of g.
func (p *Pass) PostDom(g *Graph) *DomTree {
	if t, ok := p.postdoms[g]; ok {
		return t
	}
	t := PostDominators(g)
	p.postdoms[g] = t
	return t
}

// funcBodies enumerates every function-like body in the file — each
// FuncDecl body and each function literal — paired with a printable
// name. Flow-sensitive checks analyze each body against its own CFG;
// a literal's statements never appear in its enclosing body's graph.
type funcBody struct {
	name string
	decl *ast.FuncDecl // nil for literals
	body *ast.BlockStmt
}

func (p *Pass) funcBodies() []funcBody {
	var out []funcBody
	for _, decl := range p.File.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		out = append(out, funcBody{name: fn.Name.Name, decl: fn, body: fn.Body})
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, funcBody{name: fn.Name.Name + ".func", body: lit.Body})
			}
			return true
		})
	}
	return out
}

// inspectShallow walks the statements of body without descending into
// nested function literals: the shape flow-sensitive checks want, since
// a literal's statements belong to its own CFG.
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// Check is one registered analysis.
type Check struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

var registry []Check

// register adds a check at package init.
func register(c Check) { registry = append(registry, c) }

// Checks returns the registered checks sorted by name.
func Checks() []Check {
	out := append([]Check(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RunChecks runs every registered check over one file and returns the
// findings (unsorted; drivers sort the cross-package aggregate with
// SortFindings).
func RunChecks(fset *token.FileSet, info *types.Info, file *ast.File, pkgPath string) []Finding {
	p := NewPass(fset, info, file, pkgPath)
	for _, c := range Checks() {
		c.Run(p)
	}
	return p.findings
}

// --- small shared helpers ---

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeName renders the called expression for messages.
func calleeName(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}

func selIdent(sel *ast.SelectorExpr) *ast.Ident {
	if id, ok := sel.X.(*ast.Ident); ok {
		return id
	}
	return nil
}

// rootIdent unwinds a receiver chain (a.B().C.D(...)) to its leftmost
// identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}
