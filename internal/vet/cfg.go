// Package vet is Guardrail's reusable Go static-analysis engine — the
// library under cmd/vetguard. It is stdlib-only (go/ast, go/token,
// go/types) by the same constraint as the linter itself: the toolchain
// must be the only build dependency.
//
// Three layers:
//
//   - a control-flow graph builder over function bodies (Build), with
//     statement-granularity nodes and explicit Entry/Exit,
//   - dominance and postdominance computation on that graph (Dominators,
//     PostDominators),
//   - a generic forward/backward dataflow framework (Solve) iterating
//     monotone transfer functions over small bitset lattices to fixpoint,
//
// plus the registry of project checks (Register/Checks) the vetguard
// driver runs. Flow-sensitive checks (lockbalance, maporder, deaderr,
// spanleak) are written against the engine; the syntactic hygiene checks
// (globalrand, ignorederr, nakedgo, regcopy) share the same Pass surface.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// NodeKind distinguishes the two synthetic nodes from statement nodes.
type NodeKind uint8

const (
	// KindEntry is the unique function entry node (no statement).
	KindEntry NodeKind = iota
	// KindExit is the unique function exit node: every return, every
	// panic, and the fall-off-the-end path lead here.
	KindExit
	// KindStmt is a node owning one statement (or case/comm clause).
	KindStmt
)

// Node is one CFG node. Statement granularity: a node owns exactly one
// ast.Stmt — compound statements (if/for/switch/...) own only their own
// header (condition, tag, range expression); their bodies are separate
// nodes. CaseClause and CommClause are nodes of their own so analyses
// see per-arm control flow.
type Node struct {
	Index int      // position in Graph.Nodes
	Kind  NodeKind // entry / exit / statement
	Stmt  ast.Stmt // nil for Entry and Exit
	Succs []*Node
	Preds []*Node
}

// Pos returns the node's source position (NoPos for entry/exit).
func (n *Node) Pos() token.Pos {
	if n.Stmt == nil {
		return token.NoPos
	}
	return n.Stmt.Pos()
}

// Graph is the CFG of one function body. Nodes[0] is Entry, Nodes[1] is
// Exit; statement nodes follow in the deterministic order the builder
// created them.
type Graph struct {
	Entry *Node
	Exit  *Node
	Nodes []*Node

	stmtNodes map[ast.Stmt]*Node
}

// NodeOf returns the node owning statement s, or nil if s is not a node
// of this graph (e.g. a block, a labeled wrapper, or a statement inside
// a nested function literal).
func (g *Graph) NodeOf(s ast.Stmt) *Node { return g.stmtNodes[s] }

// NodeAt returns the innermost statement node whose statement encloses
// pos — the node that "owns" an expression at pos. Positions inside a
// nested function literal resolve to the statement holding the literal;
// callers that must distinguish literal interiors check that
// themselves. Nil when pos is outside every node.
func (g *Graph) NodeAt(pos token.Pos) *Node {
	var best *Node
	for _, n := range g.Nodes {
		if n.Stmt == nil || pos < n.Stmt.Pos() || pos >= n.Stmt.End() {
			continue
		}
		if best == nil || (n.Stmt.Pos() >= best.Stmt.Pos() && n.Stmt.End() <= best.Stmt.End()) {
			best = n
		}
	}
	return best
}

// addEdge wires from → to once; duplicate edges are collapsed so meet
// operators see each predecessor exactly once.
func addEdge(from, to *Node) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// builder holds the in-progress graph and control context.
type builder struct {
	g      *Graph
	nodes  map[ast.Stmt]*Node // statement → its (memoized) node
	labels map[string]*Node   // label → entry node of the labeled statement
	// pending goto edges whose label had not been built yet when the
	// goto was; resolved at the end of Build.
	gotos []pendingGoto
}

type pendingGoto struct {
	from  *Node
	label string
}

// ctx carries the break/continue/fallthrough continuations while
// descending. Labeled loop/switch targets are registered in the builder's
// label maps as they are built.
type ctx struct {
	brk  *Node // innermost break target (statement after loop/switch/select)
	cont *Node // innermost continue target (post node, else loop header)
	fall *Node // fallthrough target (next case body), switch bodies only
	// label pending on the statement about to be built: `L: for ...`
	// registers L's break/continue targets while building the for.
	label       string
	labeledBrk  map[string]*Node
	labeledCont map[string]*Node
}

// Build constructs the CFG of one function body. Nested function
// literals are opaque expressions: their statements belong to their own
// graphs (call Build on each literal's body separately).
//
// Modeling decisions, chosen so hand-computed edge sets are checkable:
//
//   - if/for/switch Init statements get their own nodes preceding the
//     header node;
//   - a for node evaluates the condition: succs are body entry and (when
//     a condition exists) the statement after the loop — `for {}` has no
//     exit edge and relies on break;
//   - a range node has both a body edge and an exit edge;
//   - switch/type-switch nodes fan out to one node per case clause, plus
//     an edge to the follow statement when no default clause exists;
//     fallthrough jumps to the next clause's body, skipping its guard;
//   - select fans out to one node per comm clause; with no default the
//     select blocks until an arm is ready, so there is no follow edge
//     (and `select {}` has no successors at all);
//   - return statements edge to Exit; an expression statement that is a
//     direct call to the predeclared panic edges to Exit and nowhere
//     else;
//   - defer and go statements are ordinary straight-line nodes (analyses
//     that care about deferred effects inspect Node.Stmt);
//   - goto edges to the entry node of the labeled statement; code made
//     unreachable (after return/panic/goto) still gets nodes, just with
//     no predecessors.
func Build(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	g.Entry = &Node{Kind: KindEntry}
	g.Exit = &Node{Kind: KindExit}
	g.Nodes = []*Node{g.Entry, g.Exit}
	b := &builder{g: g, nodes: map[ast.Stmt]*Node{}, labels: map[string]*Node{}}

	entry := b.block(body.List, g.Exit, ctx{brk: nil, cont: nil})
	addEdge(g.Entry, entry)

	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			addEdge(pg.from, target)
		}
		// An unresolvable label would not have compiled; nothing to do.
	}
	b.renumber()
	g.stmtNodes = b.nodes
	return g
}

// renumber assigns Node.Index in a deterministic order: entry, exit,
// then statement nodes by source position.
func (b *builder) renumber() {
	stmts := b.g.Nodes[2:]
	sort.SliceStable(stmts, func(i, j int) bool { return stmts[i].Pos() < stmts[j].Pos() })
	for i, n := range b.g.Nodes {
		n.Index = i
	}
}

// nodeFor returns the memoized node owning s, creating it on first use.
// Memoization is what lets loop backedges and gotos reference a node
// before (or after) its edges are wired.
func (b *builder) nodeFor(s ast.Stmt) *Node {
	if n, ok := b.nodes[s]; ok {
		return n
	}
	n := &Node{Kind: KindStmt, Stmt: s}
	b.nodes[s] = n
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

// block wires a statement list and returns its entry node (follow when
// the list is empty). Built back to front so each statement's follow is
// the entry of the rest.
func (b *builder) block(list []ast.Stmt, follow *Node, c ctx) *Node {
	entry := follow
	for i := len(list) - 1; i >= 0; i-- {
		entry = b.stmt(list[i], entry, c)
	}
	return entry
}

// stmt wires one statement's internal edges and its edge(s) toward
// follow, returning the statement's entry node.
func (b *builder) stmt(s ast.Stmt, follow *Node, c ctx) *Node {
	// The pending label (from an enclosing LabeledStmt) applies only to
	// the statement it directly wraps; clear it for children.
	label := c.label
	c.label = ""

	switch s := s.(type) {
	case *ast.LabeledStmt:
		c.label = s.Label.Name
		entry := b.stmt(s.Stmt, follow, c)
		b.labels[s.Label.Name] = entry
		return entry

	case *ast.BlockStmt:
		return b.block(s.List, follow, c)

	case *ast.IfStmt:
		n := b.nodeFor(s)
		addEdge(n, b.stmt(s.Body, follow, c))
		if s.Else != nil {
			addEdge(n, b.stmt(s.Else, follow, c))
		} else {
			addEdge(n, follow)
		}
		if s.Init != nil {
			init := b.nodeFor(s.Init)
			addEdge(init, n)
			return init
		}
		return n

	case *ast.ForStmt:
		loop := b.nodeFor(s)
		cont := loop
		if s.Post != nil {
			cont = b.nodeFor(s.Post)
			addEdge(cont, loop)
		}
		if label != "" {
			b.registerLabel(&c, label, follow, cont)
		}
		bc := c
		bc.brk, bc.cont, bc.fall = follow, cont, nil
		addEdge(loop, b.stmt(s.Body, cont, bc))
		if s.Cond != nil {
			addEdge(loop, follow)
		}
		if s.Init != nil {
			init := b.nodeFor(s.Init)
			addEdge(init, loop)
			return init
		}
		return loop

	case *ast.RangeStmt:
		loop := b.nodeFor(s)
		if label != "" {
			b.registerLabel(&c, label, follow, loop)
		}
		bc := c
		bc.brk, bc.cont, bc.fall = follow, loop, nil
		addEdge(loop, b.stmt(s.Body, loop, bc))
		addEdge(loop, follow)
		return loop

	case *ast.SwitchStmt:
		return b.switchLike(s, s.Init, clauseList(s.Body), true, follow, c, label)

	case *ast.TypeSwitchStmt:
		return b.switchLike(s, s.Init, clauseList(s.Body), false, follow, c, label)

	case *ast.SelectStmt:
		n := b.nodeFor(s)
		if label != "" {
			b.registerLabel(&c, label, follow, nil)
		}
		bc := c
		bc.brk, bc.fall = follow, nil
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			cn := b.nodeFor(cc)
			addEdge(n, cn)
			addEdge(cn, b.block(cc.Body, follow, bc))
		}
		return n

	case *ast.ReturnStmt:
		n := b.nodeFor(s)
		addEdge(n, b.g.Exit)
		return n

	case *ast.BranchStmt:
		n := b.nodeFor(s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if t := c.labeledBrk[s.Label.Name]; t != nil {
					addEdge(n, t)
				}
			} else if c.brk != nil {
				addEdge(n, c.brk)
			}
		case token.CONTINUE:
			if s.Label != nil {
				if t := c.labeledCont[s.Label.Name]; t != nil {
					addEdge(n, t)
				}
			} else if c.cont != nil {
				addEdge(n, c.cont)
			}
		case token.GOTO:
			if t, ok := b.labels[s.Label.Name]; ok {
				addEdge(n, t)
			} else {
				b.gotos = append(b.gotos, pendingGoto{n, s.Label.Name})
			}
		case token.FALLTHROUGH:
			if c.fall != nil {
				addEdge(n, c.fall)
			}
		}
		return n

	case *ast.ExprStmt:
		n := b.nodeFor(s)
		if isPanicCall(s.X) {
			addEdge(n, b.g.Exit)
		} else {
			addEdge(n, follow)
		}
		return n

	default:
		// Assign, Decl, Defer, Go, Send, IncDec, Empty: straight line.
		n := b.nodeFor(s)
		addEdge(n, follow)
		return n
	}
}

// switchLike wires a switch or type-switch: header → each clause node →
// clause body → follow, fallthrough → next clause body, and a follow
// edge from the header iff no default clause exists.
func (b *builder) switchLike(s ast.Stmt, init ast.Stmt, clauses []*ast.CaseClause, allowFall bool, follow *Node, c ctx, label string) *Node {
	n := b.nodeFor(s)
	if label != "" {
		b.registerLabel(&c, label, follow, nil)
	}
	bc := c
	bc.brk = follow

	// Bodies are built back to front so each knows its fallthrough
	// target (the entry of the next clause's body).
	bodyEntries := make([]*Node, len(clauses))
	next := follow
	for i := len(clauses) - 1; i >= 0; i-- {
		cc := bc
		if allowFall {
			cc.fall = next
		}
		bodyEntries[i] = b.block(clauses[i].Body, follow, cc)
		next = bodyEntries[i]
	}
	hasDefault := false
	for i, cl := range clauses {
		cn := b.nodeFor(cl)
		addEdge(n, cn)
		addEdge(cn, bodyEntries[i])
		if cl.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		addEdge(n, follow)
	}
	if init != nil {
		in := b.nodeFor(init)
		addEdge(in, n)
		return in
	}
	return n
}

// registerLabel maps a loop/switch label to its break (and, for loops,
// continue) targets for the statements built beneath it. The maps are
// copy-extended so sibling scopes stay isolated.
func (b *builder) registerLabel(c *ctx, label string, brk, cont *Node) {
	nb := make(map[string]*Node, len(c.labeledBrk)+1)
	for k, v := range c.labeledBrk {
		nb[k] = v
	}
	nb[label] = brk
	c.labeledBrk = nb
	if cont != nil {
		nc := make(map[string]*Node, len(c.labeledCont)+1)
		for k, v := range c.labeledCont {
			nc[k] = v
		}
		nc[label] = cont
		c.labeledCont = nc
	}
}

func clauseList(body *ast.BlockStmt) []*ast.CaseClause {
	out := make([]*ast.CaseClause, 0, len(body.List))
	for _, cl := range body.List {
		out = append(out, cl.(*ast.CaseClause))
	}
	return out
}

// isPanicCall reports whether e is a direct call to the predeclared
// panic. (A shadowed local `panic` would misclassify; the project does
// not shadow builtins, and go vet would flag it if it did.)
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// Describe renders a node for debug output and tests: "entry", "exit",
// or "L<line>:<StmtType>" using fset positions.
func (g *Graph) Describe(fset *token.FileSet, n *Node) string {
	switch n.Kind {
	case KindEntry:
		return "entry"
	case KindExit:
		return "exit"
	}
	t := fmt.Sprintf("%T", n.Stmt)
	t = strings.TrimPrefix(t, "*ast.")
	return fmt.Sprintf("L%d:%s", fset.Position(n.Stmt.Pos()).Line, t)
}

// String dumps the graph as "node -> succ, succ" lines in Nodes order —
// the format the CFG tests assert against.
func (g *Graph) String(fset *token.FileSet) string {
	var sb strings.Builder
	for _, n := range g.Nodes {
		sb.WriteString(g.Describe(fset, n))
		sb.WriteString(" -> ")
		names := make([]string, 0, len(n.Succs))
		for _, s := range n.Succs {
			names = append(names, g.Describe(fset, s))
		}
		sort.Strings(names)
		sb.WriteString(strings.Join(names, ", "))
		sb.WriteByte('\n')
	}
	return sb.String()
}
