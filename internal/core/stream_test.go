package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestStreamCSVRectifies(t *testing.T) {
	f := setup(t)
	var in bytes.Buffer
	if err := f.dirty.ToCSV(&in); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	g := NewGuard(f.prog, Rectify)
	stats, err := g.StreamCSV(&in, &out, f.dirty.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rows != f.dirty.NumRows() {
		t.Fatalf("rows = %d, want %d", stats.Rows, f.dirty.NumRows())
	}
	if stats.Flagged == 0 || stats.Changed == 0 {
		t.Fatalf("stream repaired nothing: %+v", stats)
	}
	// The output must re-parse and be violation-free. Parse against the
	// same dictionaries by streaming it once more in ignore mode.
	var second bytes.Buffer
	stats2, err := NewGuard(f.prog, Ignore).StreamCSV(strings.NewReader(out.String()), &second, f.dirty.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Flagged != 0 {
		t.Fatalf("%d rows still violate after streaming rectify", stats2.Flagged)
	}
}

func TestStreamCSVIgnoreKeepsData(t *testing.T) {
	f := setup(t)
	var in bytes.Buffer
	if err := f.dirty.ToCSV(&in); err != nil {
		t.Fatal(err)
	}
	original := in.String()
	var out bytes.Buffer
	stats, err := NewGuard(f.prog, Ignore).StreamCSV(strings.NewReader(original), &out, f.dirty.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Changed != 0 {
		t.Fatalf("ignore changed %d cells", stats.Changed)
	}
	if out.String() != original {
		t.Fatal("ignore altered the stream")
	}
}

func TestStreamCSVRaiseAborts(t *testing.T) {
	f := setup(t)
	var in bytes.Buffer
	if err := f.dirty.ToCSV(&in); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	_, err := NewGuard(f.prog, Raise).StreamCSV(&in, &out, f.dirty.Clone())
	if err == nil {
		t.Fatal("raise did not abort the stream")
	}
}

func TestStreamCSVErrors(t *testing.T) {
	f := setup(t)
	g := NewGuard(f.prog, Ignore)
	var out bytes.Buffer
	if _, err := g.StreamCSV(strings.NewReader(""), &out, f.dirty); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, err := g.StreamCSV(strings.NewReader("a,b\n1,2\n"), &out, f.dirty); err == nil {
		t.Fatal("wrong header accepted")
	}
}

func TestExplainViolation(t *testing.T) {
	f := setup(t)
	g := NewGuard(f.prog, Ignore)
	rep, err := g.Apply(f.dirty.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for i, fl := range rep.Flagged {
		if !fl {
			continue
		}
		row := f.dirty.Row(i, nil)
		vs := f.prog.Detect(row)
		if len(vs) == 0 {
			t.Fatal("flagged row has no violations")
		}
		msg := ExplainViolation(vs[0], f.dirty)
		if !strings.Contains(msg, "should be") {
			t.Fatalf("explanation malformed: %q", msg)
		}
		return
	}
	t.Fatal("no flagged rows")
}
