// Package core is the public facade of the Guardrail reproduction: it
// synthesizes integrity constraints from a (possibly noisy) relation and
// enforces them at runtime with the paper's four error-handling strategies
// — raise, ignore, coerce, and rectify (§7).
package core

import (
	"errors"
	"fmt"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/dsl/compile"
	"github.com/guardrail-db/guardrail/internal/obs"
	"github.com/guardrail-db/guardrail/internal/obs/trace"
	"github.com/guardrail-db/guardrail/internal/synth"
)

// Engine selects the row-check execution backend.
type Engine int

const (
	// EngineAST walks the DSL syntax tree per row — the reference
	// interpreter and the differential-testing oracle.
	EngineAST Engine = iota
	// EngineCompiled runs the translation-validated form produced by
	// internal/dsl/compile: pruned statements, hoisted guards, and
	// perfect-hashed branch dispatch. Behaviorally identical to EngineAST
	// on every observable (reports, streams, errors) — Compile refuses to
	// activate it otherwise.
	EngineCompiled
)

// String names the engine as the CLI -engine flag spells it.
func (e Engine) String() string {
	if e == EngineCompiled {
		return "compiled"
	}
	return "ast"
}

// ParseEngine converts an engine name to its value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "ast":
		return EngineAST, nil
	case "compiled":
		return EngineCompiled, nil
	}
	return 0, fmt.Errorf("core: unknown engine %q", s)
}

// Strategy selects how the guard handles a row that violates constraints.
type Strategy int

const (
	// Raise returns an error on the first violating row.
	Raise Strategy = iota
	// Ignore reports violations but leaves rows untouched.
	Ignore
	// Coerce replaces each violating cell with the missing sentinel (NaN),
	// matching pandas' errors="coerce".
	Coerce
	// Rectify overwrites each violating cell with the value the constraint
	// assigns — the paper's novel strategy.
	Rectify
)

// String names the strategy as in the paper.
func (s Strategy) String() string {
	switch s {
	case Raise:
		return "raise"
	case Ignore:
		return "ignore"
	case Coerce:
		return "coerce"
	case Rectify:
		return "rectify"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy converts a strategy name to its value.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "raise":
		return Raise, nil
	case "ignore":
		return Ignore, nil
	case "coerce":
		return Coerce, nil
	case "rectify":
		return Rectify, nil
	}
	return 0, fmt.Errorf("core: unknown strategy %q", s)
}

// Options re-exports the synthesizer configuration.
type Options = synth.Options

// Result re-exports the synthesis result.
type Result = synth.Result

// Synthesize learns integrity constraints from rel — the offline step Bob
// runs ahead of time in Example 1.2.
func Synthesize(rel *dataset.Relation, opts Options) (*Result, error) {
	return synth.Synthesize(rel, opts)
}

// ErrViolation is returned by Raise-mode guards; errors.Is matches it.
var ErrViolation = errors.New("guardrail: integrity constraint violated")

// Guard enforces a synthesized program on incoming rows.
type Guard struct {
	prog     *dsl.Program
	strategy Strategy
	metrics  guardMetrics
	// tr parents guard.apply / stream.csv spans; sampleEvery bounds per-row
	// span volume (one guard.row / stream.row span every N rows). The zero
	// scope disables tracing entirely.
	tr          trace.Scope
	sampleEvery int

	// engine/compiled select the execution backend; vbuf is the violation
	// buffer the compiled hot path reuses across CheckRow calls.
	engine   Engine
	compiled *compile.Prog
	cval     *compile.Validation
	vbuf     []dsl.Violation
}

// guardMetrics holds the guard's pre-resolved counter handles; the zero
// value (nil handles) makes every update a no-op, so an uninstrumented
// guard pays nothing per row.
type guardMetrics struct {
	rowsChecked   *obs.Counter
	rowsFlagged   *obs.Counter
	cellsChanged  *obs.Counter
	streamRows    *obs.Counter
	streamFlagged *obs.Counter
	streamChanged *obs.Counter
}

// NewGuard builds a guard. The program must have been validated against the
// schema of the relations it will check.
func NewGuard(prog *dsl.Program, strategy Strategy) *Guard {
	return &Guard{prog: prog, strategy: strategy}
}

// Instrument registers the guard's per-strategy counters on reg
// (guard.<strategy>.* for Apply, stream.<strategy>.* for StreamCSV) and
// returns the guard for chaining. A nil registry leaves the guard
// uninstrumented.
func (g *Guard) Instrument(reg *obs.Registry) *Guard {
	s := g.strategy.String()
	g.metrics = guardMetrics{
		rowsChecked:   reg.Counter("guard." + s + ".rows_checked"),
		rowsFlagged:   reg.Counter("guard." + s + ".rows_flagged"),
		cellsChanged:  reg.Counter("guard." + s + ".cells_changed"),
		streamRows:    reg.Counter("stream." + s + ".rows"),
		streamFlagged: reg.Counter("stream." + s + ".flagged"),
		streamChanged: reg.Counter("stream." + s + ".changed"),
	}
	return g
}

// WithTrace attaches a trace scope and returns the guard for chaining.
// Bulk passes emit one guard.apply / stream.csv span; per-row spans are
// sampled 1-in-every to bound tracing overhead on hot streams (every < 1
// selects the default of 1000). Sampling affects only which rows get
// spans — stats and counters are computed for every row regardless.
func (g *Guard) WithTrace(sc trace.Scope, every int) *Guard {
	if every < 1 {
		every = 1000
	}
	g.tr = sc
	g.sampleEvery = every
	return g
}

// Program returns the guarded constraint program.
func (g *Guard) Program() *dsl.Program { return g.prog }

// Strategy returns the guard's error-handling strategy.
func (g *Guard) Strategy() Strategy { return g.strategy }

// Engine returns the active execution backend.
func (g *Guard) Engine() Engine { return g.engine }

// Validation returns the translation-validation record of the active
// compiled engine, or nil under EngineAST.
func (g *Guard) Validation() *compile.Validation { return g.cval }

// Compile lowers the guard's program through the internal/dsl/compile
// pipeline and, on success, switches the hot path to the compiled engine.
// On error the guard keeps running on the AST interpreter and the returned
// Validation (non-nil when compilation got far enough to record proof
// obligations) says which obligation failed. Compiling with opts.Domains
// nil is always sound; pass bounded domains only for pinned relations
// whose dictionaries will not grow (see compile.Options).
func (g *Guard) Compile(opts compile.Options) (*compile.Validation, error) {
	cp, val, err := compile.Compile(g.prog, opts)
	if err != nil {
		return val, err
	}
	g.compiled, g.cval, g.engine = cp, val, EngineCompiled
	return val, nil
}

// UseAST switches the guard back to the AST interpreter, keeping any
// compiled form around for a later re-switch via UseCompiled.
func (g *Guard) UseAST() { g.engine = EngineAST }

// UseCompiled re-activates a previously compiled engine; it reports false
// when Compile has not succeeded on this guard.
func (g *Guard) UseCompiled() bool {
	if g.compiled == nil {
		return false
	}
	g.engine = EngineCompiled
	return true
}

// detect runs the active engine's detection. Under EngineCompiled the
// returned slice aliases the guard's internal buffer and is valid only
// until the next CheckRow — callers that retain violations must copy.
func (g *Guard) detect(row []int32) []dsl.Violation {
	if g.engine == EngineCompiled {
		g.vbuf = g.compiled.DetectInto(row, g.vbuf[:0])
		return g.vbuf
	}
	return g.prog.Detect(row)
}

// CheckRow applies the guard to one encoded row, possibly mutating it
// (Coerce/Rectify). It reports the violations found; under Raise a non-nil
// error wraps ErrViolation. Under EngineCompiled the returned slice is
// reused by the next CheckRow call.
func (g *Guard) CheckRow(row []int32) ([]dsl.Violation, error) {
	vs := g.detect(row)
	if len(vs) == 0 {
		return nil, nil
	}
	switch g.strategy {
	case Raise:
		return vs, fmt.Errorf("%w: attribute %d expected code %d, got %d",
			ErrViolation, vs[0].Attr, vs[0].Expected, vs[0].Actual)
	case Ignore:
		return vs, nil
	case Coerce:
		for _, v := range vs {
			row[v.Attr] = dataset.Missing
		}
		return vs, nil
	case Rectify:
		if g.engine == EngineCompiled {
			g.compiled.Rectify(row)
		} else {
			g.prog.Rectify(row)
		}
		return vs, nil
	}
	return vs, fmt.Errorf("core: unknown strategy %d", g.strategy)
}

// Report summarizes a relation-level guard pass.
type Report struct {
	// RowsChecked counts rows actually examined: under Raise an abort at
	// row i reports i+1 checked rows, not the relation size.
	RowsChecked  int
	RowsFlagged  int
	CellsChanged int
	// Flagged[i] is true when row i violated at least one constraint.
	Flagged []bool
}

// Apply runs the guard over every row of rel, mutating rel under
// Coerce/Rectify. Under Raise it stops at the first violation; the partial
// Report returned alongside the error covers the rows examined, including
// the violating one.
func (g *Guard) Apply(rel *dataset.Relation) (*Report, error) {
	n := rel.NumRows()
	asp := g.tr.Start("guard.apply").Str("strategy", g.strategy.String()).Str("engine", g.engine.String()).Int("rows", int64(n))
	defer asp.End()
	rsc := g.tr.Under(asp)
	rep := &Report{Flagged: make([]bool, n)}
	row := make([]int32, rel.NumAttrs())
	for i := 0; i < n; i++ {
		var rsp trace.Span
		if g.tr.Enabled() && i%g.sampleEvery == 0 {
			rsp = rsc.Start("guard.row").Int("row", int64(i))
		}
		row = rel.Row(i, row)
		rep.RowsChecked++
		g.metrics.rowsChecked.Inc()
		vs, err := g.CheckRow(row)
		if len(vs) > 0 {
			rep.RowsFlagged++
			rep.Flagged[i] = true
			g.metrics.rowsFlagged.Inc()
		}
		rsp.End()
		if err != nil {
			return rep, fmt.Errorf("row %d: %w", i, err)
		}
		if len(vs) == 0 {
			continue
		}
		if g.strategy == Coerce || g.strategy == Rectify {
			for c := 0; c < rel.NumAttrs(); c++ {
				if rel.Code(i, c) != row[c] {
					rel.SetCode(i, c, row[c])
					rep.CellsChanged++
					g.metrics.cellsChanged.Inc()
				}
			}
		}
	}
	return rep, nil
}
