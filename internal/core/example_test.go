package core_test

import (
	"fmt"
	"strings"

	"github.com/guardrail-db/guardrail/internal/core"
	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
)

// zipCSV is a tiny deterministic table with an exact FD PostalCode -> City.
const zipCSV = `PostalCode,City
94704,Berkeley
94705,Berkeley
10001,NewYork
10002,NewYork
60601,Chicago
60602,Chicago
`

func exampleRelation() *dataset.Relation {
	var b strings.Builder
	b.WriteString("PostalCode,City\n")
	for i := 0; i < 30; i++ {
		b.WriteString(strings.SplitN(zipCSV, "\n", 2)[1])
	}
	rel, err := dataset.FromCSV(strings.NewReader(b.String()), "zip")
	if err != nil {
		panic(err)
	}
	return rel
}

// ExampleSynthesize shows the offline step: learning constraints from data.
func ExampleSynthesize() {
	rel := exampleRelation()
	res, err := core.Synthesize(rel, core.Options{Epsilon: 0.01, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Program.Stmts), "statement(s)")
	fmt.Println(strings.SplitN(dsl.Format(res.Program, rel), "\n", 2)[0])
	// Output:
	// 1 statement(s)
	// GIVEN PostalCode ON City HAVING
}

// ExampleGuard_CheckRow shows the online step: vetting and repairing a row.
func ExampleGuard_CheckRow() {
	rel := exampleRelation()
	res, err := core.Synthesize(rel, core.Options{Epsilon: 0.01, Seed: 1})
	if err != nil {
		panic(err)
	}
	guard := core.NewGuard(res.Program, core.Rectify)

	row := []int32{rel.Intern(0, "94704"), rel.Intern(1, "gibbon")}
	violations, err := guard.CheckRow(row)
	if err != nil {
		panic(err)
	}
	fmt.Println("violations:", len(violations))
	fmt.Println("repaired city:", rel.Dict(1).Value(row[1]))
	// Output:
	// violations: 1
	// repaired city: Berkeley
}

// ExampleParseStrategy shows strategy names.
func ExampleParseStrategy() {
	s, err := core.ParseStrategy("rectify")
	if err != nil {
		panic(err)
	}
	fmt.Println(s)
	// Output:
	// rectify
}
