package core

import (
	"encoding/csv"
	"fmt"
	"io"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/obs/trace"
)

// StreamStats summarizes a streaming guard pass.
type StreamStats struct {
	Rows    int
	Flagged int
	Changed int // cells rewritten by coerce/rectify
}

// StreamCSV vets a CSV stream row by row against the guard, writing the
// (possibly repaired) rows to w — the online half of Example 1.2 for data
// pipelines that never materialize a relation. The header must match
// schema's attributes; unknown values intern into schema's dictionaries.
// Under Raise, the first violating row aborts the stream.
func (g *Guard) StreamCSV(r io.Reader, w io.Writer, schema *dataset.Relation) (*StreamStats, error) {
	ssp := g.tr.Start("stream.csv").Str("strategy", g.strategy.String()).Str("engine", g.engine.String())
	defer ssp.End()
	rsc := g.tr.Under(ssp)
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true // rec is consumed before the next Read
	cw := csv.NewWriter(w)
	defer cw.Flush()

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("core: reading stream header: %w", err)
	}
	if len(header) != schema.NumAttrs() {
		return nil, fmt.Errorf("core: stream has %d columns, schema has %d", len(header), schema.NumAttrs())
	}
	// Map header columns to schema attributes, rejecting duplicates: a
	// duplicated name passes the width check while another attribute is
	// never written, so its slot would silently carry a stale value. With
	// duplicates rejected, width match + pigeonhole guarantees every
	// schema attribute is covered.
	colOf := make([]int, len(header))
	seen := make([]bool, schema.NumAttrs())
	for i, h := range header {
		idx := schema.AttrIndex(h)
		if idx < 0 {
			return nil, fmt.Errorf("core: stream column %q not in schema", h)
		}
		if seen[idx] {
			return nil, fmt.Errorf("core: duplicate stream column %q", h)
		}
		seen[idx] = true
		colOf[i] = idx
	}
	if err := cw.Write(header); err != nil {
		return nil, err
	}

	stats := &StreamStats{}
	row := make([]int32, schema.NumAttrs())
	before := make([]int32, schema.NumAttrs())
	out := make([]string, len(header))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return stats, fmt.Errorf("core: reading stream row %d: %w", stats.Rows, err)
		}
		if len(rec) != len(header) {
			return stats, fmt.Errorf("core: row %d has %d fields, want %d", stats.Rows, len(rec), len(header))
		}
		var rsp trace.Span
		if g.tr.Enabled() && stats.Rows%g.sampleEvery == 0 {
			rsp = rsc.Start("stream.row").Int("row", int64(stats.Rows))
		}
		for i, v := range rec {
			if v == "" {
				row[colOf[i]] = dataset.Missing
			} else {
				row[colOf[i]] = schema.Intern(colOf[i], v)
			}
		}
		copy(before, row)
		vs, err := g.CheckRow(row)
		if len(vs) > 0 {
			// Count the violation before a Raise abort: the row was
			// detected even though it is not written downstream.
			stats.Flagged++
			g.metrics.streamFlagged.Inc()
		}
		rsp.End()
		if err != nil {
			return stats, fmt.Errorf("core: row %d: %w", stats.Rows, err)
		}
		for i := range rec {
			c := row[colOf[i]]
			if c != before[colOf[i]] {
				stats.Changed++
				g.metrics.streamChanged.Inc()
			}
			out[i] = schema.Dict(colOf[i]).Value(c)
			if c == dataset.Missing {
				out[i] = ""
			}
		}
		if err := cw.Write(out); err != nil {
			return stats, err
		}
		stats.Rows++
		g.metrics.streamRows.Inc()
	}
	cw.Flush()
	return stats, cw.Error()
}

// ExplainViolation renders a violation in terms of schema's names, for
// logs and error messages.
func ExplainViolation(v dsl.Violation, schema *dataset.Relation) string {
	return fmt.Sprintf("statement %d: %s should be %q (found %q)",
		v.Stmt, schema.Attr(v.Attr),
		schema.Dict(v.Attr).Value(v.Expected), schema.Dict(v.Attr).Value(v.Actual))
}
