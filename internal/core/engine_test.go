package core

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl/compile"
)

// compiledGuard builds a guard and switches it to the compiled engine,
// failing the test if translation validation does not go through.
func compiledGuard(t *testing.T, f *fixture, s Strategy) *Guard {
	t.Helper()
	g := NewGuard(f.prog, s)
	if _, err := g.Compile(compile.Options{}); err != nil {
		t.Fatalf("compile: %v", err)
	}
	if g.Engine() != EngineCompiled {
		t.Fatal("guard not on compiled engine after Compile")
	}
	return g
}

func TestEngineParseRoundTrip(t *testing.T) {
	for _, e := range []Engine{EngineAST, EngineCompiled} {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Fatalf("round trip failed for %v: %v %v", e, got, err)
		}
	}
	if _, err := ParseEngine("jit"); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestEngineSwitches(t *testing.T) {
	f := setup(t)
	g := NewGuard(f.prog, Ignore)
	if g.Engine() != EngineAST {
		t.Fatal("new guard not on AST engine")
	}
	if g.UseCompiled() {
		t.Fatal("UseCompiled succeeded before Compile")
	}
	if g.Validation() != nil {
		t.Fatal("Validation non-nil before Compile")
	}
	if _, err := g.Compile(compile.Options{}); err != nil {
		t.Fatal(err)
	}
	if g.Validation() == nil || !g.Validation().AllProved() {
		t.Fatal("missing or unproved validation record")
	}
	g.UseAST()
	if g.Engine() != EngineAST {
		t.Fatal("UseAST did not switch back")
	}
	if !g.UseCompiled() || g.Engine() != EngineCompiled {
		t.Fatal("UseCompiled did not re-activate the compiled form")
	}
}

// TestCompiledReportsByteIdentical drives Apply under every strategy on
// both engines and requires identical Reports, identical relation contents
// afterwards, and (under Raise) identical errors.
func TestCompiledReportsByteIdentical(t *testing.T) {
	f := setup(t)
	for _, s := range []Strategy{Raise, Ignore, Coerce, Rectify} {
		t.Run(s.String(), func(t *testing.T) {
			astRel, compRel := f.dirty.Clone(), f.dirty.Clone()
			astRep, astErr := NewGuard(f.prog, s).Apply(astRel)
			compRep, compErr := compiledGuard(t, f, s).Apply(compRel)
			if (astErr == nil) != (compErr == nil) {
				t.Fatalf("error mismatch: ast %v, compiled %v", astErr, compErr)
			}
			if astErr != nil {
				if astErr.Error() != compErr.Error() {
					t.Fatalf("error text differs:\nast:      %v\ncompiled: %v", astErr, compErr)
				}
				if !errors.Is(compErr, ErrViolation) {
					t.Fatal("compiled raise error does not wrap ErrViolation")
				}
			}
			if !reflect.DeepEqual(astRep, compRep) {
				t.Fatalf("reports differ:\nast:      %+v\ncompiled: %+v", astRep, compRep)
			}
			for i := 0; i < astRel.NumRows(); i++ {
				for c := 0; c < astRel.NumAttrs(); c++ {
					if astRel.Code(i, c) != compRel.Code(i, c) {
						t.Fatalf("cell (%d,%d) differs: ast %d, compiled %d",
							i, c, astRel.Code(i, c), compRel.Code(i, c))
					}
				}
			}
		})
	}
}

// TestCompiledStreamByteIdentical requires StreamCSV to produce the same
// bytes, stats, and errors on both engines, for every strategy.
func TestCompiledStreamByteIdentical(t *testing.T) {
	f := setup(t)
	var src bytes.Buffer
	if err := f.dirty.ToCSV(&src); err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{Raise, Ignore, Coerce, Rectify} {
		t.Run(s.String(), func(t *testing.T) {
			var astOut, compOut bytes.Buffer
			astStats, astErr := NewGuard(f.prog, s).StreamCSV(bytes.NewReader(src.Bytes()), &astOut, f.dirty.Clone())
			compStats, compErr := compiledGuard(t, f, s).StreamCSV(bytes.NewReader(src.Bytes()), &compOut, f.dirty.Clone())
			if (astErr == nil) != (compErr == nil) {
				t.Fatalf("error mismatch: ast %v, compiled %v", astErr, compErr)
			}
			if astErr != nil && astErr.Error() != compErr.Error() {
				t.Fatalf("error text differs:\nast:      %v\ncompiled: %v", astErr, compErr)
			}
			if !reflect.DeepEqual(astStats, compStats) {
				t.Fatalf("stats differ: ast %+v, compiled %+v", astStats, compStats)
			}
			if !bytes.Equal(astOut.Bytes(), compOut.Bytes()) {
				t.Fatal("stream output differs between engines")
			}
		})
	}
}

// TestCompiledCheckRowZeroAlloc pins the compiled hot path at zero
// allocations per row: detection into the reused violation buffer plus
// strategy application must not touch the heap (Raise is exercised on
// clean rows only — its error construction allocates by design).
func TestCompiledCheckRowZeroAlloc(t *testing.T) {
	f := setup(t)
	width := f.dirty.NumAttrs()
	clean := f.clean.Row(0, nil)
	var dirtyRow []int32
	for i := 0; i < f.dirty.NumRows(); i++ {
		if r := f.dirty.Row(i, nil); len(f.prog.Detect(r)) > 0 {
			dirtyRow = r
			break
		}
	}
	if dirtyRow == nil {
		t.Fatal("no violating row in the dirty split")
	}
	buf := make([]int32, width)
	for _, tc := range []struct {
		strategy Strategy
		row      []int32
	}{
		{Ignore, dirtyRow}, {Coerce, dirtyRow}, {Rectify, dirtyRow},
		{Ignore, clean}, {Raise, clean},
	} {
		g := compiledGuard(t, f, tc.strategy)
		copy(buf, tc.row)
		if _, err := g.CheckRow(buf); err != nil { // warm the violation buffer
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			copy(buf, tc.row)
			_, _ = g.CheckRow(buf)
		})
		if allocs != 0 {
			t.Errorf("%s on %s row: %.1f allocs/op, want 0",
				tc.strategy, map[bool]string{true: "violating", false: "clean"}[len(f.prog.Detect(tc.row)) > 0], allocs)
		}
	}
}

// TestCompiledApplyAllocsFlat pins Apply's allocation count as independent
// of relation size: the per-row loop reuses every buffer, so doubling the
// rows must not add a single allocation.
func TestCompiledApplyAllocsFlat(t *testing.T) {
	f := setup(t)
	small := f.dirty.SelectRows(seqInts(64))
	big := f.dirty.SelectRows(seqInts(512))
	measure := func(rel *dataset.Relation) float64 {
		g := compiledGuard(t, f, Ignore)
		return testing.AllocsPerRun(10, func() {
			if _, err := g.Apply(rel); err != nil {
				t.Fatal(err)
			}
		})
	}
	if a, b := measure(small), measure(big); a != b {
		t.Fatalf("Apply allocations scale with rows: %v at 64 rows, %v at 512", a, b)
	}
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
