package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/dsl/compile"
)

// TestExamplesSweepBothEngines parses every committed example program and
// requires the two engines to produce identical reports and rectified
// relations on the example data, under every strategy.
func TestExamplesSweepBothEngines(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "constraints")
	csv, err := os.Open(filepath.Join(dir, "postal.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer csv.Close()
	base, err := dataset.FromCSV(csv, "postal.csv")
	if err != nil {
		t.Fatal(err)
	}
	progs, err := filepath.Glob(filepath.Join(dir, "*.gr"))
	if err != nil || len(progs) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	for _, path := range progs {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		rel := base.Clone()
		prog, err := dsl.Parse(string(src), rel)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		cp, _, err := compile.Compile(prog, compile.Options{})
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if err := compile.DifferentialCheck(prog, cp, rel); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, s := range []Strategy{Raise, Ignore, Coerce, Rectify} {
			astRel, compRel := rel.Clone(), rel.Clone()
			astRep, astErr := NewGuard(prog, s).Apply(astRel)
			compGuard := NewGuard(prog, s)
			if _, err := compGuard.Compile(compile.Options{}); err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			compRep, compErr := compGuard.Apply(compRel)
			if (astErr == nil) != (compErr == nil) || (astErr != nil && astErr.Error() != compErr.Error()) {
				t.Fatalf("%s %s: errors differ: %v vs %v", path, s, astErr, compErr)
			}
			if !reflect.DeepEqual(astRep, compRep) {
				t.Fatalf("%s %s: reports differ: %+v vs %+v", path, s, astRep, compRep)
			}
			for i := 0; i < astRel.NumRows(); i++ {
				for c := 0; c < astRel.NumAttrs(); c++ {
					if astRel.Code(i, c) != compRel.Code(i, c) {
						t.Fatalf("%s %s: cell (%d,%d) differs", path, s, i, c)
					}
				}
			}
		}
	}
}

// fuzzByteReader decodes a fuzz payload into small bounded integers.
type fuzzByteReader struct {
	data []byte
	pos  int
}

func (r *fuzzByteReader) next(bound int) int {
	if bound <= 0 {
		return 0
	}
	if r.pos >= len(r.data) {
		r.pos++
		return r.pos % bound
	}
	b := r.data[r.pos]
	r.pos++
	return int(b) % bound
}

const (
	fuzzAttrs   = 4
	fuzzCodes   = 5 // literal codes 0..4; rows also carry Missing and grown codes
	fuzzMaxRows = 12
)

// fuzzProgram decodes an arbitrary guard program over the fixed fuzz
// schema: up to 4 statements, each with up to 4 branches of 1-2 atoms.
// Every decoded program lies inside the compiler's input space, so a
// Compile error is always a finding.
func fuzzProgram(r *fuzzByteReader) *dsl.Program {
	p := &dsl.Program{}
	nStmts := 1 + r.next(4)
	for s := 0; s < nStmts; s++ {
		st := dsl.Statement{On: r.next(fuzzAttrs)}
		nBranches := 1 + r.next(4)
		for b := 0; b < nBranches; b++ {
			br := dsl.Branch{Value: int32(r.next(fuzzCodes+1) - 1)} // Missing is assignable
			nAtoms := 1 + r.next(2)
			for a := 0; a < nAtoms; a++ {
				br.Cond = append(br.Cond, dsl.Pred{
					Attr:  r.next(fuzzAttrs),
					Value: int32(r.next(fuzzCodes+1) - 1),
				})
			}
			st.Branches = append(st.Branches, br)
		}
		seen := map[int]bool{}
		for _, b := range st.Branches {
			for _, pr := range b.Cond {
				if !seen[pr.Attr] {
					seen[pr.Attr] = true
					st.Given = append(st.Given, pr.Attr)
				}
			}
		}
		p.Stmts = append(p.Stmts, st)
	}
	return p
}

// fuzzRows decodes the row set the engines are compared on. Codes range
// over [-1, fuzzCodes+2], deliberately exceeding every program literal to
// model values interned after compilation.
func fuzzRows(r *fuzzByteReader) [][]int32 {
	n := 1 + r.next(fuzzMaxRows)
	rows := make([][]int32, n)
	for i := range rows {
		row := make([]int32, fuzzAttrs)
		for a := range row {
			row[a] = int32(r.next(fuzzCodes+4) - 1)
		}
		rows[i] = row
	}
	return rows
}

// FuzzCompiledEngine is the differential fuzz harness of the compiled
// engine: arbitrary programs × arbitrary rows × all four strategies, with
// the AST interpreter as the oracle. The engines must agree on flagged
// verdicts, error presence and text, and every mutated cell. Seeds include
// the committed example corpus so realistic GIVEN-group shapes are always
// in the initial population.
func FuzzCompiledEngine(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 2, 0, 0, 1, 1, 1, 3, 2, 2, 9, 0, 0})
	f.Add([]byte{3, 0, 1, 0, 0, 2, 1, 0, 0, 1, 0, 0, 2, 2, 2, 255, 7})
	for _, name := range []string{"postal.gr", "shadowed.gr", "postal.csv"} {
		if data, err := os.ReadFile(filepath.Join("..", "..", "examples", "constraints", name)); err == nil {
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzByteReader{data: data}
		prog := fuzzProgram(r)
		rows := fuzzRows(r)

		cp, val, err := compile.Compile(prog, compile.Options{})
		if err != nil {
			t.Fatalf("in-space program failed to compile: %v\nprogram: %+v", err, prog)
		}
		if !val.AllProved() {
			t.Fatalf("unproved obligations on %+v", prog)
		}

		for _, s := range []Strategy{Raise, Ignore, Coerce, Rectify} {
			astGuard := NewGuard(prog, s)
			compGuard := NewGuard(prog, s)
			if _, err := compGuard.Compile(compile.Options{}); err != nil {
				t.Fatal(err)
			}
			for ri, row := range rows {
				astRow := append([]int32(nil), row...)
				compRow := append([]int32(nil), row...)
				astVs, astErr := astGuard.CheckRow(astRow)
				compVs, compErr := compGuard.CheckRow(compRow)
				if (len(astVs) > 0) != (len(compVs) > 0) {
					t.Fatalf("strategy %s row %d %v: flagged mismatch (ast %d vs compiled %d)\nprogram: %+v",
						s, ri, row, len(astVs), len(compVs), prog)
				}
				if (astErr == nil) != (compErr == nil) {
					t.Fatalf("strategy %s row %d %v: error mismatch (%v vs %v)\nprogram: %+v",
						s, ri, row, astErr, compErr, prog)
				}
				if astErr != nil && astErr.Error() != compErr.Error() {
					t.Fatalf("strategy %s row %d: error text differs:\nast:      %v\ncompiled: %v",
						s, ri, astErr, compErr)
				}
				for a := range astRow {
					if astRow[a] != compRow[a] {
						t.Fatalf("strategy %s row %d %v: cell %d differs after check (ast %d vs compiled %d)\nprogram: %+v",
							s, ri, row, a, astRow[a], compRow[a], prog)
					}
				}
			}
		}
		// One pass of the compile package's own oracle over the same rows,
		// exercising Eval and the violation-subsequence contract as well.
		rel := dataset.New("fuzz", []string{"a", "b", "c", "d"})
		for range rows {
			if err := rel.AppendRow([]string{"v0", "v0", "v0", "v0"}); err != nil {
				t.Fatal(err)
			}
		}
		grow := rel.Clone()
		for i, row := range rows {
			for a, c := range row {
				for int(c) >= grow.Cardinality(a) {
					grow.Intern(a, string(rune('A'+grow.Cardinality(a))))
				}
				grow.SetCode(i, a, c)
			}
		}
		if err := compile.DifferentialCheck(prog, cp, grow); err != nil {
			t.Fatalf("%v\nprogram: %+v", err, prog)
		}
	})
}
