package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/obs"
)

// cityFixture is a hand-built relation + program with exactly known
// violation structure, so report fields can be asserted to the row:
//
//	row 0: 10001,NYC      clean (matches branch zip=10001 → NYC)
//	row 1: 10001,LA       violation
//	row 2: 94105,SF       clean
//	row 3: 94105,Oakland  violation
//	row 4: 77777,Houston  no branch matches → clean
type cityFixture struct {
	rel  *dataset.Relation
	prog *dsl.Program
	csv  string
}

func newCityFixture(t *testing.T) *cityFixture {
	t.Helper()
	rel := dataset.New("cities", []string{"zip", "city"})
	rows := [][]string{
		{"10001", "NYC"},
		{"10001", "LA"},
		{"94105", "SF"},
		{"94105", "Oakland"},
		{"77777", "Houston"},
	}
	for _, r := range rows {
		if err := rel.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	code := func(col int, v string) int32 {
		c, ok := rel.Dict(col).Lookup(v)
		if !ok {
			t.Fatalf("fixture value %q not interned in column %d", v, col)
		}
		return c
	}
	prog := &dsl.Program{Stmts: []dsl.Statement{{
		Given: []int{0},
		On:    1,
		Branches: []dsl.Branch{
			{Cond: dsl.Condition{{Attr: 0, Value: code(0, "10001")}}, Value: code(1, "NYC")},
			{Cond: dsl.Condition{{Attr: 0, Value: code(0, "94105")}}, Value: code(1, "SF")},
		},
	}}}
	if err := prog.Validate(rel); err != nil {
		t.Fatal(err)
	}
	return &cityFixture{
		rel:  rel,
		prog: prog,
		csv:  "zip,city\n10001,NYC\n10001,LA\n94105,SF\n94105,Oakland\n77777,Houston\n",
	}
}

// TestCheckRowStrategies: per-strategy semantics of a single violating row.
func TestCheckRowStrategies(t *testing.T) {
	f := newCityFixture(t)
	nyc, _ := f.rel.Dict(1).Lookup("NYC")
	la, _ := f.rel.Dict(1).Lookup("LA")

	cases := []struct {
		strategy Strategy
		wantErr  bool
		wantCity int32
	}{
		{Raise, true, la},
		{Ignore, false, la},
		{Coerce, false, dataset.Missing},
		{Rectify, false, nyc},
	}
	for _, tc := range cases {
		t.Run(tc.strategy.String(), func(t *testing.T) {
			row := f.rel.Row(1, nil) // 10001,LA
			vs, err := NewGuard(f.prog, tc.strategy).CheckRow(row)
			if len(vs) != 1 {
				t.Fatalf("violations = %v, want exactly one", vs)
			}
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tc.wantErr)
			}
			if tc.wantErr && !errors.Is(err, ErrViolation) {
				t.Fatalf("error %v does not wrap ErrViolation", err)
			}
			if row[1] != tc.wantCity {
				t.Errorf("city code after %s = %d, want %d", tc.strategy, row[1], tc.wantCity)
			}
		})
	}
}

// TestApplyReportExact: Apply's report fields across all four strategies,
// including the Raise partial report.
func TestApplyReportExact(t *testing.T) {
	cases := []struct {
		strategy              Strategy
		wantErr               bool
		checked, flagged, chg int
		flaggedRows           []int
	}{
		// Raise examines rows 0 and 1, flags the violating row 1, aborts.
		{Raise, true, 2, 1, 0, []int{1}},
		{Ignore, false, 5, 2, 0, []int{1, 3}},
		{Coerce, false, 5, 2, 2, []int{1, 3}},
		{Rectify, false, 5, 2, 2, []int{1, 3}},
	}
	for _, tc := range cases {
		t.Run(tc.strategy.String(), func(t *testing.T) {
			f := newCityFixture(t)
			rel := f.rel.Clone()
			rep, err := NewGuard(f.prog, tc.strategy).Apply(rel)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tc.wantErr)
			}
			if rep.RowsChecked != tc.checked || rep.RowsFlagged != tc.flagged || rep.CellsChanged != tc.chg {
				t.Fatalf("report = {checked:%d flagged:%d changed:%d}, want {%d %d %d}",
					rep.RowsChecked, rep.RowsFlagged, rep.CellsChanged, tc.checked, tc.flagged, tc.chg)
			}
			want := make([]bool, 5)
			for _, i := range tc.flaggedRows {
				want[i] = true
			}
			for i := range want {
				if rep.Flagged[i] != want[i] {
					t.Errorf("Flagged[%d] = %v, want %v", i, rep.Flagged[i], want[i])
				}
			}
		})
	}
}

// TestApplyRectifyConverges: a rectified relation re-applies clean.
func TestApplyRectifyConverges(t *testing.T) {
	f := newCityFixture(t)
	rel := f.rel.Clone()
	if _, err := NewGuard(f.prog, Rectify).Apply(rel); err != nil {
		t.Fatal(err)
	}
	rep, err := NewGuard(f.prog, Ignore).Apply(rel)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsFlagged != 0 {
		t.Fatalf("%d rows still flagged after rectify", rep.RowsFlagged)
	}
}

// TestStreamStatsExact: StreamCSV stats across all four strategies.
func TestStreamStatsExact(t *testing.T) {
	cases := []struct {
		strategy            Strategy
		wantErr             bool
		rows, flagged, chgd int
	}{
		// Raise writes the clean row 0, flags the violating row 1, aborts.
		{Raise, true, 1, 1, 0},
		{Ignore, false, 5, 2, 0},
		{Coerce, false, 5, 2, 2},
		{Rectify, false, 5, 2, 2},
	}
	for _, tc := range cases {
		t.Run(tc.strategy.String(), func(t *testing.T) {
			f := newCityFixture(t)
			var out bytes.Buffer
			stats, err := NewGuard(f.prog, tc.strategy).StreamCSV(strings.NewReader(f.csv), &out, f.rel.Clone())
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tc.wantErr)
			}
			if tc.wantErr && !errors.Is(err, ErrViolation) {
				t.Fatalf("error %v does not wrap ErrViolation", err)
			}
			got := StreamStats{Rows: stats.Rows, Flagged: stats.Flagged, Changed: stats.Changed}
			want := StreamStats{Rows: tc.rows, Flagged: tc.flagged, Changed: tc.chgd}
			if got != want {
				t.Fatalf("stats = %+v, want %+v", got, want)
			}
		})
	}
}

// TestStreamCoerceRoundTrip: coerce writes empty cells for violating
// values; re-streaming that output under coerce re-flags the same rows
// (Missing still differs from the expected value) but changes nothing,
// and the bytes are a fixed point.
func TestStreamCoerceRoundTrip(t *testing.T) {
	f := newCityFixture(t)
	var first bytes.Buffer
	stats, err := NewGuard(f.prog, Coerce).StreamCSV(strings.NewReader(f.csv), &first, f.rel.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Changed != 2 {
		t.Fatalf("first pass changed %d cells, want 2", stats.Changed)
	}
	if !strings.Contains(first.String(), "10001,\n") || !strings.Contains(first.String(), "94105,\n") {
		t.Fatalf("coerced output missing empty cells:\n%s", first.String())
	}
	var second bytes.Buffer
	stats2, err := NewGuard(f.prog, Coerce).StreamCSV(strings.NewReader(first.String()), &second, f.rel.Clone())
	if err != nil {
		t.Fatal(err)
	}
	want := StreamStats{Rows: 5, Flagged: 2, Changed: 0}
	if *stats2 != want {
		t.Fatalf("round-trip stats = %+v, want %+v", *stats2, want)
	}
	if second.String() != first.String() {
		t.Fatalf("coerce output is not a fixed point:\n%s\nvs\n%s", first.String(), second.String())
	}
}

// TestStreamRectifyConverges: rectified stream output re-streams clean.
func TestStreamRectifyConverges(t *testing.T) {
	f := newCityFixture(t)
	var first bytes.Buffer
	stats, err := NewGuard(f.prog, Rectify).StreamCSV(strings.NewReader(f.csv), &first, f.rel.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Changed != 2 {
		t.Fatalf("rectify changed %d cells, want 2", stats.Changed)
	}
	var second bytes.Buffer
	stats2, err := NewGuard(f.prog, Ignore).StreamCSV(strings.NewReader(first.String()), &second, f.rel.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Flagged != 0 {
		t.Fatalf("%d rows still violate after streaming rectify", stats2.Flagged)
	}
}

// TestStreamDuplicateHeader is the regression test for the duplicate
// header-column bug: "zip,zip" has the right width but never writes the
// city attribute, so it must be rejected up front.
func TestStreamDuplicateHeader(t *testing.T) {
	f := newCityFixture(t)
	var out bytes.Buffer
	_, err := NewGuard(f.prog, Ignore).StreamCSV(
		strings.NewReader("zip,zip\n10001,10001\n"), &out, f.rel.Clone())
	if err == nil {
		t.Fatal("duplicate header column accepted")
	}
	if !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("error %q does not mention the duplicate column", err)
	}
}

// TestGuardInstrumentation: counters mirror the report/stats, keyed by
// strategy, and a nil registry is a safe no-op.
func TestGuardInstrumentation(t *testing.T) {
	f := newCityFixture(t)
	reg := obs.New()
	g := NewGuard(f.prog, Rectify).Instrument(reg)
	if _, err := g.Apply(f.rel.Clone()); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := g.StreamCSV(strings.NewReader(f.csv), &out, f.rel.Clone()); err != nil {
		t.Fatal(err)
	}
	wantCounters := map[string]int64{
		"guard.rectify.rows_checked":  5,
		"guard.rectify.rows_flagged":  2,
		"guard.rectify.cells_changed": 2,
		"stream.rectify.rows":         5,
		"stream.rectify.flagged":      2,
		"stream.rectify.changed":      2,
	}
	snap := reg.Snapshot()
	for name, want := range wantCounters {
		if snap.Counters[name] != want {
			t.Errorf("%s = %d, want %d", name, snap.Counters[name], want)
		}
	}

	// Instrument(nil) must keep the guard fully functional.
	g2 := NewGuard(f.prog, Ignore).Instrument(nil)
	rep, err := g2.Apply(f.rel.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsChecked != 5 || rep.RowsFlagged != 2 {
		t.Fatalf("uninstrumented guard report = %+v", rep)
	}
}
