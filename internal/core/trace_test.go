package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/obs"
	"github.com/guardrail-db/guardrail/internal/obs/trace"
)

// countSpans tallies closed spans by name in a tracer's merged records.
func countSpans(tr *trace.Tracer) map[string]int {
	counts := map[string]int{}
	for _, r := range tr.Records() {
		if !r.Instant {
			counts[r.Name]++
		}
	}
	return counts
}

// TestApplyTracedStatsIdentical: tracing is observation only — a traced
// Apply must produce the exact Report an untraced one does, and per-row
// span volume must stay bounded by the sampling rate.
func TestApplyTracedStatsIdentical(t *testing.T) {
	f := setup(t)
	plain, err := NewGuard(f.prog, Ignore).Apply(f.dirty.Clone())
	if err != nil {
		t.Fatal(err)
	}

	const every = 100
	tr := trace.New(1)
	traced, err := NewGuard(f.prog, Ignore).WithTrace(tr.Root(), every).Apply(f.dirty.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if plain.RowsChecked != traced.RowsChecked || plain.RowsFlagged != traced.RowsFlagged ||
		plain.CellsChanged != traced.CellsChanged {
		t.Fatalf("traced report differs: %+v vs %+v", plain, traced)
	}
	for i := range plain.Flagged {
		if plain.Flagged[i] != traced.Flagged[i] {
			t.Fatalf("row %d flagged %v traced, %v untraced", i, traced.Flagged[i], plain.Flagged[i])
		}
	}

	counts := countSpans(tr)
	if counts["guard.apply"] != 1 {
		t.Errorf("guard.apply spans = %d, want 1", counts["guard.apply"])
	}
	maxRows := (traced.RowsChecked + every - 1) / every
	if got := counts["guard.row"]; got == 0 || got > maxRows {
		t.Errorf("guard.row spans = %d, want in [1,%d] (1-in-%d sampling)", got, maxRows, every)
	}
}

// TestStreamCSVTracedStatsIdentical: same contract for the streaming
// path — identical stats and byte-identical output with tracing on.
func TestStreamCSVTracedStatsIdentical(t *testing.T) {
	f := setup(t)
	var in bytes.Buffer
	if err := f.dirty.ToCSV(&in); err != nil {
		t.Fatal(err)
	}
	input := in.String()

	var plainOut bytes.Buffer
	plain, err := NewGuard(f.prog, Rectify).StreamCSV(strings.NewReader(input), &plainOut, f.dirty.Clone())
	if err != nil {
		t.Fatal(err)
	}

	const every = 50
	tr := trace.New(1)
	var tracedOut bytes.Buffer
	traced, err := NewGuard(f.prog, Rectify).WithTrace(tr.Root(), every).
		StreamCSV(strings.NewReader(input), &tracedOut, f.dirty.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if *plain != *traced {
		t.Fatalf("traced stats differ: %+v vs %+v", plain, traced)
	}
	if plainOut.String() != tracedOut.String() {
		t.Fatal("tracing altered the rectified stream output")
	}

	counts := countSpans(tr)
	if counts["stream.csv"] != 1 {
		t.Errorf("stream.csv spans = %d, want 1", counts["stream.csv"])
	}
	maxRows := (traced.Rows + every - 1) / every
	if got := counts["stream.row"]; got == 0 || got > maxRows {
		t.Errorf("stream.row spans = %d, want in [1,%d] (1-in-%d sampling)", got, maxRows, every)
	}
}

// TestStreamCSVUntracedEmitsNoSpans: a guard without WithTrace must not
// record anything even when a tracer exists in the process.
func TestStreamCSVUntracedEmitsNoSpans(t *testing.T) {
	f := setup(t)
	var in bytes.Buffer
	if err := f.dirty.ToCSV(&in); err != nil {
		t.Fatal(err)
	}
	tr := trace.New(1)
	var out bytes.Buffer
	if _, err := NewGuard(f.prog, Ignore).StreamCSV(&in, &out, f.dirty.Clone()); err != nil {
		t.Fatal(err)
	}
	if n := len(tr.Records()); n != 0 {
		t.Fatalf("untraced guard recorded %d spans", n)
	}
}

// TestExplainViolationExact pins the rendered message against a
// hand-built violation on a tiny schema.
func TestExplainViolationExact(t *testing.T) {
	rel, err := dataset.FromCSV(strings.NewReader("city,zip\nparis,75\nlyon,69\n"), "mini")
	if err != nil {
		t.Fatal(err)
	}
	zip := rel.AttrIndex("zip")
	v := dsl.Violation{Stmt: 3, Attr: zip, Expected: rel.Intern(zip, "75"), Actual: rel.Intern(zip, "69")}
	want := `statement 3: zip should be "75" (found "69")`
	if got := ExplainViolation(v, rel); got != want {
		t.Errorf("ExplainViolation = %q, want %q", got, want)
	}
}

// TestCriticalPathAgreesWithStageTable is the acceptance check tying the
// two observability views together: the synthesis stage the registry's
// stage table reports as dominant must appear on the tracer's critical
// path.
func TestCriticalPathAgreesWithStageTable(t *testing.T) {
	f := setup(t)
	reg := obs.New()
	tr := trace.New(2)
	if _, err := Synthesize(f.clean, Options{Epsilon: 0.02, Seed: 1, Workers: 2, Obs: reg, Trace: tr.Root()}); err != nil {
		t.Fatal(err)
	}

	// Dominant pipeline stage by total time in the metrics table. Only the
	// three synth.* stages are comparable to path steps one-to-one.
	var dominant string
	var dominantNS int64
	for _, st := range reg.Snapshot().Stages {
		switch st.Name {
		case "synth.learn", "synth.enum", "synth.fill":
			if st.TotalNS > dominantNS {
				dominant, dominantNS = st.Name, st.TotalNS
			}
		}
	}
	if dominant == "" {
		t.Fatal("no synth stages in the registry")
	}

	steps := tr.CriticalPath()
	if len(steps) == 0 {
		t.Fatal("traced synthesis produced no critical path")
	}
	if steps[0].Name != "synth.run" {
		t.Errorf("critical path root = %q, want synth.run", steps[0].Name)
	}
	found := false
	for _, s := range steps {
		if s.Name == dominant {
			found = true
			// The path's view of the stage and the table's must describe the
			// same work: same order of magnitude, not wildly apart.
			if s.DurNS < dominantNS/2 {
				t.Errorf("path %s dur %d vs stage total %d: disagree by >2x", dominant, s.DurNS, dominantNS)
			}
		}
	}
	if !found {
		names := make([]string, len(steps))
		for i, s := range steps {
			names[i] = fmt.Sprintf("%s(%d)", s.Name, s.DurNS)
		}
		t.Fatalf("dominant stage %s (%.2fms) not on critical path: %v",
			dominant, float64(dominantNS)/1e6, names)
	}
}
