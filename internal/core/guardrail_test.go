package core

import (
	"errors"
	"testing"

	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/errgen"
)

// fixture synthesizes constraints on a clean postal chain, then corrupts a
// test split.
type fixture struct {
	prog  *dsl.Program
	clean *dataset.Relation
	dirty *dataset.Relation
	mask  *errgen.Mask
}

func setup(t *testing.T) *fixture {
	t.Helper()
	rel, err := bn.PostalChain(8).Sample(3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	train, test := rel.Split(0.6, 1)
	res, err := Synthesize(train, Options{Epsilon: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Program.Stmts) == 0 {
		t.Fatal("no constraints synthesized")
	}
	dirty := test.Clone()
	mask, err := errgen.Inject(dirty, errgen.Options{Rate: 0.05, MinErrors: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{prog: res.Program, clean: test, dirty: dirty, mask: mask}
}

func TestStrategyStringsAndParse(t *testing.T) {
	for _, s := range []Strategy{Raise, Ignore, Coerce, Rectify} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Fatalf("round trip failed for %v: %v %v", s, got, err)
		}
	}
	if _, err := ParseStrategy("explode"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if Strategy(99).String() == "" {
		t.Fatal("unknown strategy has empty name")
	}
}

func TestGuardIgnoreFlagsWithoutMutating(t *testing.T) {
	f := setup(t)
	snapshot := f.dirty.Clone()
	g := NewGuard(f.prog, Ignore)
	rep, err := g.Apply(f.dirty)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsFlagged == 0 {
		t.Fatal("no violations flagged on corrupted data")
	}
	if rep.CellsChanged != 0 {
		t.Fatal("ignore mutated cells")
	}
	for i := 0; i < f.dirty.NumRows(); i++ {
		for j := 0; j < f.dirty.NumAttrs(); j++ {
			if f.dirty.Code(i, j) != snapshot.Code(i, j) {
				t.Fatal("ignore changed the relation")
			}
		}
	}
}

func TestGuardRaiseStopsEarly(t *testing.T) {
	f := setup(t)
	g := NewGuard(f.prog, Raise)
	_, err := g.Apply(f.dirty)
	if err == nil {
		t.Fatal("raise did not error on corrupted data")
	}
	if !errors.Is(err, ErrViolation) {
		t.Fatalf("error does not wrap ErrViolation: %v", err)
	}
	// A clean relation passes.
	if _, err := g.Apply(f.clean.Clone()); err != nil {
		t.Fatalf("clean data raised: %v", err)
	}
}

func TestGuardCoerceInsertsMissing(t *testing.T) {
	f := setup(t)
	g := NewGuard(f.prog, Coerce)
	rep, err := g.Apply(f.dirty)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CellsChanged == 0 {
		t.Fatal("coerce changed nothing")
	}
	found := false
	for i := 0; i < f.dirty.NumRows() && !found; i++ {
		for j := 0; j < f.dirty.NumAttrs(); j++ {
			if f.dirty.Code(i, j) == dataset.Missing {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no Missing sentinel written")
	}
}

func TestGuardRectifyRepairsTowardClean(t *testing.T) {
	f := setup(t)
	before := cellDiff(f.dirty, f.clean)
	g := NewGuard(f.prog, Rectify)
	rep, err := g.Apply(f.dirty)
	if err != nil {
		t.Fatal(err)
	}
	after := cellDiff(f.dirty, f.clean)
	if after >= before {
		t.Fatalf("rectify did not move toward clean data: %d -> %d", before, after)
	}
	if rep.CellsChanged == 0 {
		t.Fatal("rectify reported no changes")
	}
	// Rectified data re-checks clean under the same constraints.
	rep2, err := NewGuard(f.prog, Ignore).Apply(f.dirty)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.RowsFlagged != 0 {
		t.Fatalf("%d rows still violate after rectify", rep2.RowsFlagged)
	}
}

func cellDiff(a, b *dataset.Relation) int {
	n := 0
	for i := 0; i < a.NumRows(); i++ {
		for j := 0; j < a.NumAttrs(); j++ {
			if a.Value(i, j) != b.Value(i, j) {
				n++
			}
		}
	}
	return n
}

func TestGuardDetectionQuality(t *testing.T) {
	// Flagged rows should be enriched in genuinely dirty rows (precision
	// well above the base error rate).
	f := setup(t)
	g := NewGuard(f.prog, Ignore)
	rep, err := g.Apply(f.dirty)
	if err != nil {
		t.Fatal(err)
	}
	tp, fp := 0, 0
	for i, fl := range rep.Flagged {
		if !fl {
			continue
		}
		if f.mask.RowDirty[i] {
			tp++
		} else {
			fp++
		}
	}
	if tp == 0 {
		t.Fatal("no true positives")
	}
	prec := float64(tp) / float64(tp+fp)
	if prec < 0.5 {
		t.Fatalf("precision = %g, want >= 0.5", prec)
	}
}

func TestCheckRowDirect(t *testing.T) {
	f := setup(t)
	g := NewGuard(f.prog, Ignore)
	row := f.clean.Row(0, nil)
	vs, err := g.CheckRow(row)
	if err != nil || len(vs) != 0 {
		t.Fatalf("clean row flagged: %v %v", vs, err)
	}
}
