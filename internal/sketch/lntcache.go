package sketch

import (
	"context"

	"github.com/guardrail-db/guardrail/internal/par"
	"github.com/guardrail-db/guardrail/internal/stats"
)

// LNTCache memoizes LNT outcomes across the DAGs of a Markov equivalence
// class. The statements extracted from different MEC members overlap
// heavily — a (GIVEN set, ON) pair recurs in every DAG that orients the
// same parents — and LNT's G² test depends only on that pair (sorting the
// GIVEN set permutes the composite's category labels without changing the
// contingency table), so one screen per distinct Stmt.Key suffices.
//
// A cache instance is bound to one (data, alpha) configuration; callers
// must not reuse it across datasets or significance levels. It is safe
// for concurrent use and each key is screened exactly once even under
// concurrent requests (sharded singleflight, see par.Cache). The zero
// value is ready to use.
type LNTCache struct {
	cache par.Cache[lntOutcome]
}

type lntOutcome struct {
	ok  bool
	err error
}

// LNT reports the cached local non-triviality of s over d, computing it on
// the first request for s's key.
func (c *LNTCache) LNT(s Stmt, d stats.Data, alpha float64) (bool, error) {
	return c.LNTCtx(context.Background(), s, d, alpha)
}

// LNTCtx is LNT plus cache hit/miss trace instants on the scope carried by
// ctx (see par.Cache.DoTraced); the screen itself is unchanged.
func (c *LNTCache) LNTCtx(ctx context.Context, s Stmt, d stats.Data, alpha float64) (bool, error) {
	out := c.cache.DoTraced(ctx, "lnt", s.Key(), func() lntOutcome {
		ok, err := LNT(s, d, alpha)
		return lntOutcome{ok: ok, err: err}
	})
	return out.ok, out.err
}

// Stats reports cache effectiveness: one miss per distinct statement key.
func (c *LNTCache) Stats() (hits, misses int) { return c.cache.Stats() }
