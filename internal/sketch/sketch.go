// Package sketch implements Guardrail's sketch language (Fig. 3) and the
// non-triviality criteria of §4.1: a program sketch fixes each statement's
// GIVEN and ON clauses and leaves the HAVING clause as a hole. Sketches are
// extracted from DAGs of the learned Markov equivalence class (one
// statement per node with parents, Proposition 1 / Theorem 4.1) and checked
// for local and global non-triviality with G² tests.
package sketch

import (
	"fmt"
	"sort"
	"strings"

	"github.com/guardrail-db/guardrail/internal/graph"
	"github.com/guardrail-db/guardrail/internal/stats"
)

// Stmt is a statement sketch: GIVEN Given ON On HAVING □.
type Stmt struct {
	Given []int
	On    int
}

// Key returns a canonical identifier for the sketch — the statement-level
// cache key used by the synthesizer (§7, "statement-level cache").
func (s Stmt) Key() string {
	g := append([]int(nil), s.Given...)
	sort.Ints(g)
	var b strings.Builder
	for i, a := range g {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", a)
	}
	fmt.Fprintf(&b, "->%d", s.On)
	return b.String()
}

// Prog is a program sketch.
type Prog struct {
	Stmts []Stmt
}

// FromDAG extracts the program sketch entailed by a DAG: one statement per
// node with a non-empty parent set (Alg. 2, lines 4–9).
func FromDAG(d *graph.DAG) Prog {
	var p Prog
	for j := 0; j < d.N(); j++ {
		pa := d.Parents(j)
		if len(pa) == 0 {
			continue
		}
		p.Stmts = append(p.Stmts, Stmt{Given: pa, On: j})
	}
	return p
}

// composite builds a derived stats.Data with one extra variable: the
// mixed-radix composite of the attrs columns, so set-level (in)dependence
// "a_j ⊥ a_k" can be tested with a pairwise G² test.
type composite struct {
	stats.Data
	col  []int32
	card int
}

func (c *composite) NumVars() int { return c.Data.NumVars() + 1 }
func (c *composite) Card(i int) int {
	if i == c.Data.NumVars() {
		return c.card
	}
	return c.Data.Card(i)
}
func (c *composite) Codes(i int) []int32 {
	if i == c.Data.NumVars() {
		return c.col
	}
	return c.Data.Codes(i)
}

// compose builds the composite variable over attrs. Cardinality is the
// product of member cardinalities (missing treated as an extra category).
func compose(d stats.Data, attrs []int) (*composite, error) {
	card := 1
	for _, a := range attrs {
		card *= d.Card(a) + 1
		if card > 1<<20 {
			return nil, fmt.Errorf("sketch: composite cardinality overflow for %v", attrs)
		}
	}
	n := d.N()
	col := make([]int32, n)
	for r := 0; r < n; r++ {
		var key int32
		for _, a := range attrs {
			c := d.Codes(a)[r]
			if c < 0 {
				c = int32(d.Card(a))
			}
			key = key*int32(d.Card(a)+1) + c
		}
		col[r] = key
	}
	return &composite{Data: d, col: col, card: card}, nil
}

// LNT reports local non-triviality of s over d (Def. 4.1): the dependent
// attribute must be statistically dependent on the determinant set as a
// whole. alpha is the significance level of the underlying G² test.
func LNT(s Stmt, d stats.Data, alpha float64) (bool, error) {
	if len(s.Given) == 0 {
		return false, nil
	}
	if len(s.Given) == 1 {
		res, err := stats.GTest(d, s.On, s.Given[0], nil)
		if err != nil {
			return false, err
		}
		return !res.Independent(alpha), nil
	}
	c, err := compose(d, s.Given)
	if err != nil {
		return false, err
	}
	res, err := stats.GTest(c, s.On, c.Data.NumVars(), nil)
	if err != nil {
		return false, err
	}
	return !res.Independent(alpha), nil
}

// GNT reports global non-triviality of p over d (Def. 4.2): every
// statement must remain dependent on its determinant set after
// conditioning on the determinant sets of the other statements. The check
// conditions on each other statement's determinants individually (the
// pairwise projection of the definition), capping the conditioning-set
// size at maxCond to keep tables dense.
func GNT(p Prog, d stats.Data, alpha float64, maxCond int) (bool, error) {
	if maxCond <= 0 {
		maxCond = 2
	}
	for i, s := range p.Stmts {
		lnt, err := LNT(s, d, alpha)
		if err != nil {
			return false, err
		}
		if !lnt {
			return false, nil
		}
		for j, other := range p.Stmts {
			if i == j {
				continue
			}
			cond := conditioningSet(other, s, maxCond)
			if len(cond) == 0 {
				continue
			}
			dep, err := dependentGiven(s, d, alpha, cond)
			if err != nil {
				return false, err
			}
			if !dep {
				return false, nil
			}
		}
	}
	return true, nil
}

// conditioningSet returns other's determinants minus any attribute
// overlapping s, capped at maxCond. Branch conditions range over the
// determinant attributes, so D^b in Def. 4.2 conditions exactly on
// other.Given.
func conditioningSet(other, s Stmt, maxCond int) []int {
	skip := map[int]bool{s.On: true}
	for _, g := range s.Given {
		skip[g] = true
	}
	var out []int
	for _, a := range other.Given {
		if !skip[a] && !contains(out, a) {
			out = append(out, a)
		}
		if len(out) >= maxCond {
			break
		}
	}
	return out
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// dependentGiven tests s.On ⊥̸ s.Given | cond. Deterministic relations
// violate faithfulness: when cond pins down s.Given (e.g. conditioning a
// chain statement on its determinant's own determinant), the determinant is
// constant within every stratum and no test can falsify GNT — such vacuous
// configurations pass. When the determinant still varies but dependence
// vanishes, GNT genuinely fails (Example 4.1).
func dependentGiven(s Stmt, d stats.Data, alpha float64, cond []int) (bool, error) {
	varies, err := variesGiven(d, s.Given, cond)
	if err != nil {
		return false, err
	}
	if !varies {
		return true, nil
	}
	if len(s.Given) == 1 {
		res, err := stats.GTest(d, s.On, s.Given[0], cond)
		if err != nil {
			return false, err
		}
		return !res.Independent(alpha), nil
	}
	c, err := compose(d, s.Given)
	if err != nil {
		return false, err
	}
	res, err := stats.GTest(c, s.On, c.Data.NumVars(), cond)
	if err != nil {
		return false, err
	}
	return !res.Independent(alpha), nil
}

// variesGiven reports whether the composite of attrs takes more than one
// value within the strata defined by cond for a non-negligible share of
// rows (>5%).
func variesGiven(d stats.Data, attrs, cond []int) (bool, error) {
	cg, err := compose(d, attrs)
	if err != nil {
		return false, err
	}
	cc, err := compose(d, cond)
	if err != nil {
		return false, err
	}
	n := d.N()
	if n == 0 {
		return false, nil
	}
	first := map[int32]int32{}
	count := map[int32]int{}
	varying := map[int32]bool{}
	for r := 0; r < n; r++ {
		k, v := cc.col[r], cg.col[r]
		count[k]++
		if f, ok := first[k]; !ok {
			first[k] = v
		} else if f != v {
			varying[k] = true
		}
	}
	vr := 0
	for k, c := range count {
		if varying[k] {
			vr += c
		}
	}
	return float64(vr) > 0.05*float64(n), nil
}
