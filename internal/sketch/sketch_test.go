package sketch

import (
	"testing"

	"github.com/guardrail-db/guardrail/internal/auxdist"
	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/graph"
)

func TestKeyCanonical(t *testing.T) {
	a := Stmt{Given: []int{2, 0}, On: 1}
	b := Stmt{Given: []int{0, 2}, On: 1}
	if a.Key() != b.Key() {
		t.Fatalf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	c := Stmt{Given: []int{0, 2}, On: 3}
	if a.Key() == c.Key() {
		t.Fatal("different sketches share a key")
	}
}

func TestFromDAG(t *testing.T) {
	d := graph.NewDAG(4)
	d.AddEdge(0, 1)
	d.AddEdge(2, 1)
	d.AddEdge(1, 3)
	p := FromDAG(d)
	if len(p.Stmts) != 2 {
		t.Fatalf("got %d statements: %+v", len(p.Stmts), p)
	}
	byOn := map[int]Stmt{}
	for _, s := range p.Stmts {
		byOn[s.On] = s
	}
	if len(byOn[1].Given) != 2 {
		t.Fatalf("node 1 should have 2 determinants: %+v", byOn[1])
	}
	if len(byOn[3].Given) != 1 || byOn[3].Given[0] != 1 {
		t.Fatalf("node 3 determinants wrong: %+v", byOn[3])
	}
}

func TestLNTOnChain(t *testing.T) {
	rel, err := bn.PostalChain(8).Sample(3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := auxdist.Identity(rel)
	// City depends on PostalCode: LNT.
	ok, err := LNT(Stmt{Given: []int{0}, On: 1}, d, 0.01)
	if err != nil || !ok {
		t.Fatalf("PostalCode->City should be LNT: ok=%v err=%v", ok, err)
	}
	// Empty determinant set: never LNT.
	ok, _ = LNT(Stmt{Given: nil, On: 1}, d, 0.01)
	if ok {
		t.Fatal("empty GIVEN reported LNT")
	}
}

func TestLNTIndependentAttrs(t *testing.T) {
	nw := &bn.Network{Nodes: []bn.Node{
		{Name: "a", Card: 3, CPT: []float64{0.3, 0.3, 0.4}},
		{Name: "b", Card: 3, CPT: []float64{0.2, 0.5, 0.3}},
	}}
	rel, err := nw.Sample(5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := LNT(Stmt{Given: []int{0}, On: 1}, auxdist.Identity(rel), 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("independent attributes reported LNT")
	}
}

func TestLNTCompositeDeterminants(t *testing.T) {
	// either = f(tub, lung): LNT with the composite determinant set.
	rel, err := bn.Hospital().Sample(5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	tub, lung, either := rel.AttrIndex("tub"), rel.AttrIndex("lung"), rel.AttrIndex("either")
	ok, err := LNT(Stmt{Given: []int{tub, lung}, On: either}, auxdist.Identity(rel), 0.01)
	if err != nil || !ok {
		t.Fatalf("composite LNT failed: ok=%v err=%v", ok, err)
	}
}

func TestGNTRejectsRedundantSketch(t *testing.T) {
	// Example 4.1: PostalCode->City, City->State are fine, but adding
	// PostalCode->State is not GNT: PostalCode ⟂ State | City.
	rel, err := bn.PostalChain(8).Sample(6000, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := auxdist.Identity(rel)
	good := Prog{Stmts: []Stmt{
		{Given: []int{0}, On: 1},
		{Given: []int{1}, On: 2},
	}}
	ok, err := GNT(good, d, 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("chain sketch should be GNT")
	}
	saturated := Prog{Stmts: []Stmt{
		{Given: []int{0}, On: 1},
		{Given: []int{1}, On: 2},
		{Given: []int{0}, On: 2}, // redundant: screened off by City
	}}
	ok, err = GNT(saturated, d, 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("saturated sketch should not be GNT")
	}
}

func TestGNTRejectsNonLNTMember(t *testing.T) {
	nw := &bn.Network{Nodes: []bn.Node{
		{Name: "a", Card: 3, CPT: []float64{0.3, 0.3, 0.4}},
		{Name: "b", Card: 3, CPT: []float64{0.2, 0.5, 0.3}},
	}}
	rel, err := nw.Sample(4000, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := Prog{Stmts: []Stmt{{Given: []int{0}, On: 1}}}
	ok, err := GNT(p, auxdist.Identity(rel), 0.001, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("sketch over independent attrs should fail GNT")
	}
}

func TestComposeOverflow(t *testing.T) {
	rel, err := bn.RandomSEM(bn.SEMSpec{Attrs: 8, MaxCard: 6, Seed: 9}).Sample(500, 9)
	if err != nil {
		t.Fatal(err)
	}
	d := auxdist.Identity(rel)
	// Composing every attribute overflows the cardinality cap.
	var all []int
	for i := 0; i < 8; i++ {
		all = append(all, i)
	}
	big := make([]int, 0, 40)
	for len(big) < 40 {
		big = append(big, all...)
	}
	if _, err := compose(d, big); err == nil {
		t.Fatal("expected overflow error")
	}
}
