package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterVecDeterministicOrder(t *testing.T) {
	r := New()
	cv := r.CounterVec("serve.endpoint.requests", "endpoint", "status")
	// Touch children in scrambled order; the snapshot must sort them.
	cv.With("violations", "200").Add(3)
	cv.With("check", "429").Inc()
	cv.With("check", "200").Add(7)
	cv.With("drift", "200").Add(2)

	snap := r.Snapshot()
	if len(snap.LabeledCounters) != 4 {
		t.Fatalf("labeled counters = %d, want 4", len(snap.LabeledCounters))
	}
	var got []string
	for _, lc := range snap.LabeledCounters {
		got = append(got, fmt.Sprintf("%s|%s=%s|%s=%s|%d", lc.Name,
			lc.Labels[0].Key, lc.Labels[0].Value, lc.Labels[1].Key, lc.Labels[1].Value, lc.Value))
	}
	want := []string{
		"serve.endpoint.requests|endpoint=check|status=200|7",
		"serve.endpoint.requests|endpoint=check|status=429|1",
		"serve.endpoint.requests|endpoint=drift|status=200|2",
		"serve.endpoint.requests|endpoint=violations|status=200|3",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("order mismatch:\ngot:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}

	// Same name returns the same family and the same child.
	if r.CounterVec("serve.endpoint.requests").With("check", "200") != cv.With("check", "200") {
		t.Fatal("same label set resolved to different counters")
	}
}

func TestVecCardinalityBound(t *testing.T) {
	r := New()
	cv := r.CounterVec("wide", "id")
	for i := 0; i < vecMaxChildren+40; i++ {
		cv.With(fmt.Sprintf("id-%04d", i)).Inc()
	}
	snap := r.Snapshot()
	var total, overflow int64
	children := 0
	for _, lc := range snap.LabeledCounters {
		if lc.Name != "wide" {
			continue
		}
		children++
		total += lc.Value
		if lc.Labels[0].Value == vecOverflowValue {
			overflow = lc.Value
		}
	}
	// vecMaxChildren distinct children, then the overflow child absorbs
	// the remaining 40 increments — no counts dropped.
	if children != vecMaxChildren+1 {
		t.Fatalf("children = %d, want %d", children, vecMaxChildren+1)
	}
	if total != vecMaxChildren+40 {
		t.Fatalf("total = %d, want %d (counts must never be dropped)", total, vecMaxChildren+40)
	}
	if overflow != 40 {
		t.Fatalf("overflow child = %d, want 40", overflow)
	}
}

func TestVecNilAndMiscountedSafe(t *testing.T) {
	var cv *CounterVec
	cv.With("a", "b").Inc() // nil vec → nil counter → no-op
	var hv *HistogramVec
	hv.With("a").Observe(5)

	r := New()
	// Too few and too many values must not panic; both address a child
	// with the value list fixed to the declared key count.
	c := r.CounterVec("pad", "k1", "k2").With("only-one")
	c.Inc()
	r.CounterVec("pad").With("a", "b", "c-extra").Inc()
	snap := r.Snapshot()
	var n int
	for _, lc := range snap.LabeledCounters {
		if lc.Name == "pad" {
			n++
			if len(lc.Labels) != 2 {
				t.Fatalf("child has %d labels, want 2", len(lc.Labels))
			}
		}
	}
	if n != 2 {
		t.Fatalf("pad children = %d, want 2", n)
	}
}

func TestHistogramVecSnapshot(t *testing.T) {
	r := New()
	hv := r.HistogramVec("serve.request.latency", "dataset", "endpoint")
	hv.With("postal", "check").Observe(100)
	hv.With("postal", "check").Observe(200)
	hv.With("postal", "rectify").Observe(300)

	snap := r.Snapshot()
	if len(snap.Hists) != 2 {
		t.Fatalf("hists = %d, want 2", len(snap.Hists))
	}
	h0 := snap.Hists[0]
	if h0.Name != "serve.request.latency" || h0.Count != 2 || h0.SumNS != 300 {
		t.Fatalf("first child = %+v", h0)
	}
	wantLabels := []Label{{Key: "dataset", Value: "postal"}, {Key: "endpoint", Value: "check"}}
	if fmt.Sprint(h0.Labels) != fmt.Sprint(wantLabels) {
		t.Fatalf("labels = %v, want %v", h0.Labels, wantLabels)
	}
}

func TestVecConcurrent(t *testing.T) {
	r := New()
	cv := r.CounterVec("conc", "worker")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := fmt.Sprintf("w%d", w%4)
			for i := 0; i < 1000; i++ {
				cv.With(label).Inc()
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, lc := range r.Snapshot().LabeledCounters {
		total += lc.Value
	}
	if total != 8000 {
		t.Fatalf("total = %d, want 8000", total)
	}
}

// TestSnapshotSortsOutsideLock pins the stage-histogram snapshot
// discipline: the ring copy happens under the mutex but the quantile sort
// must run after release. The hook fires between unlock and sort and
// calls Observe — if the sort (or anything after the copy) ever moves
// back under the lock, this re-entrant Observe deadlocks and the test
// times out instead of passing.
func TestSnapshotSortsOutsideLock(t *testing.T) {
	r := New()
	h := r.Histogram("stage")
	for i := 0; i < 100; i++ {
		h.Observe(int64(100 - i))
	}
	testHookSnapshotUnlocked = func() { h.Observe(1) }
	defer func() { testHookSnapshotUnlocked = nil }()

	done := make(chan StageSnapshot, 1)
	go func() { done <- h.snapshot("stage") }()
	select {
	case snap := <-done:
		// The hook's Observe lands after the aggregate fields and ring
		// were copied, so this snapshot reports the pre-hook state; the
		// next snapshot picks up the extra observation.
		if snap.Count != 100 {
			t.Fatalf("count = %d, want 100", snap.Count)
		}
		if next := h.snapshot("stage"); next.Count != 101 {
			t.Fatalf("next count = %d, want 101 (hook observe must not be lost)", next.Count)
		}
		if snap.P50NS != 50 {
			t.Fatalf("p50 = %d, want 50", snap.P50NS)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("snapshot deadlocked: quantile sort moved back under the histogram mutex")
	}
}
