// Package debug serves live observability over HTTP: the process expvar
// page plus net/http/pprof profiles, and the guardrail metrics registry
// published as an expvar variable. It exists as its own package (rather
// than inside obs) so the single `go` statement that runs the HTTP server
// is confined to one vetguard-exempt leaf — the rest of the pipeline
// still routes all concurrency through internal/par.
package debug

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/guardrail-db/guardrail/internal/obs"
)

// published holds the registry the expvar variable reads from.
// expvar.Publish panics on duplicate names, so the Publish call itself is
// once-guarded while the registry pointer stays swappable: tests (and a
// CLI that serves twice) each see their latest registry.
var published struct {
	once sync.Once
	mu   sync.Mutex
	reg  *obs.Registry
}

func publish(reg *obs.Registry) {
	published.mu.Lock()
	published.reg = reg
	published.mu.Unlock()
	published.once.Do(func() {
		expvar.Publish("guardrail", expvar.Func(func() any {
			published.mu.Lock()
			r := published.reg
			published.mu.Unlock()
			return r.Snapshot()
		}))
	})
}

// extras holds caller-registered handlers (e.g. the serve daemon's
// /debug/flight). The live mux is rebuilt under the mutex and swapped
// atomically, and every debug server consults it per request — so
// registration works before or after Serve, and later registrations of
// the same pattern win instead of panicking like ServeMux.Handle.
var extras struct {
	mu       sync.Mutex
	handlers map[string]http.Handler
	mux      atomic.Pointer[http.ServeMux]
}

// Handle registers handler under pattern on every debug server, current
// and future. Built-in routes (/metrics, /debug/vars, /debug/pprof/*)
// take precedence over extras.
func Handle(pattern string, handler http.Handler) {
	extras.mu.Lock()
	defer extras.mu.Unlock()
	if extras.handlers == nil {
		extras.handlers = map[string]http.Handler{}
	}
	extras.handlers[pattern] = handler
	patterns := make([]string, 0, len(extras.handlers))
	for p := range extras.handlers {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	mux := http.NewServeMux()
	for _, p := range patterns {
		mux.Handle(p, extras.handlers[p])
	}
	extras.mux.Store(mux)
}

// extrasHandler routes a request through the caller-registered handlers,
// 404ing when nothing matches.
func extrasHandler(w http.ResponseWriter, r *http.Request) {
	if m := extras.mux.Load(); m != nil {
		if h, pattern := m.Handler(r); pattern != "" {
			h.ServeHTTP(w, r)
			return
		}
	}
	http.NotFound(w, r)
}

// Server is a running debug HTTP server.
type Server struct {
	// Addr is the resolved listen address (useful with ":0").
	Addr string

	srv *http.Server
	ln  net.Listener
}

// Serve publishes reg under the "guardrail" expvar name and starts an
// HTTP server on addr exposing /debug/vars, /debug/pprof/*, and a
// Prometheus-format /metrics endpoint. It uses a
// private mux so importing net/http/pprof-style handlers never pollutes
// http.DefaultServeMux. The listener is bound synchronously — a bad addr
// fails here, not in the background goroutine.
func Serve(addr string, reg *obs.Registry) (*Server, error) {
	publish(reg)

	mux := http.NewServeMux()
	mux.HandleFunc("/", extrasHandler)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", metricsHandler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug: listen %s: %w", addr, err)
	}
	s := &Server{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
	}
	go s.serve() // nakedgo-exempt package: server lifetime is the process lifetime
	return s, nil
}

func (s *Server) serve() {
	// ErrServerClosed after Close is the expected shutdown path; any other
	// error means the debug server died, which must not take the pipeline
	// down with it.
	_ = s.srv.Serve(s.ln)
}

// closeTimeout bounds how long Close waits for in-flight requests. Debug
// requests are short (a /metrics scrape, an expvar read) — anything still
// running after this is a stuck pprof profile and gets force-closed.
const closeTimeout = 2 * time.Second

// Close stops the server: it drains in-flight requests for up to
// closeTimeout, then force-closes any stragglers. The drain matters at
// test teardown and CLI exit, where a /metrics scrape admitted just
// before Close must be allowed to finish writing rather than racing the
// listener teardown and getting its connection reset mid-body.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), closeTimeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		if cerr := s.srv.Close(); cerr != nil {
			return cerr
		}
		return err
	}
	return nil
}
