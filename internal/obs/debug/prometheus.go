package debug

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"github.com/guardrail-db/guardrail/internal/obs"
)

// metricsHandler renders the currently-published registry in Prometheus
// text exposition format (version 0.0.4), so a long-running guard process
// can be scraped directly: counters and gauges map one-to-one, and each
// stage histogram becomes a summary metric in seconds with
// quantile-labelled samples plus _sum and _count.
// testHookScrape, when non-nil, runs at the top of every /metrics scrape.
// It lets the shutdown regression test hold a scrape in flight while
// Close runs; production leaves it nil.
var testHookScrape func()

func metricsHandler(w http.ResponseWriter, _ *http.Request) {
	if h := testHookScrape; h != nil {
		h()
	}
	published.mu.Lock()
	reg := published.reg
	published.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteMetrics(w, reg.Snapshot())
}

// WriteMetrics renders snap as Prometheus text exposition format. Output
// is deterministic: families are grouped by kind (counters, labeled
// counters, gauges, exact histograms, summaries) and sorted by name (and
// label values) within each group, so the rendering is golden-testable.
func WriteMetrics(w io.Writer, snap obs.Snapshot) {
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m, m, snap.Counters[name])
	}

	// Labeled counter families: children arrive pre-sorted by name then
	// label values, with each family's children adjacent — one TYPE line
	// per family, one sample line per label set.
	prevFamily := ""
	for _, lc := range snap.LabeledCounters {
		m := promName(lc.Name)
		if m != prevFamily {
			fmt.Fprintf(w, "# TYPE %s counter\n", m)
			prevFamily = m
		}
		fmt.Fprintf(w, "%s%s %d\n", m, promLabels(lc.Labels, ""), lc.Value)
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", m, m, snap.Gauges[name])
	}

	// Exact histograms render as classic cumulative histograms: one
	// _bucket{le="..."} line per non-empty bucket (upper bounds converted
	// from nanoseconds to seconds), a +Inf bucket equal to _count, and
	// exact _sum/_count. Empty buckets are elided — cumulative counts at
	// the rendered bounds are unaffected and the line count stays
	// proportional to the latency spread, not the 1249-bucket layout.
	prevFamily = ""
	for _, hs := range snap.Hists {
		m := promName(hs.Name) + "_seconds"
		if m != prevFamily {
			fmt.Fprintf(w, "# TYPE %s histogram\n", m)
			prevFamily = m
		}
		var cum int64
		for _, b := range hs.Buckets {
			cum += b.Count
			if b.UpperNS == math.MaxInt64 {
				continue // the overflow bucket is covered by +Inf below
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", m, promLabels(hs.Labels, promSeconds(b.UpperNS)), cum)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", m, promLabelsInf(hs.Labels), hs.Count)
		fmt.Fprintf(w, "%s_sum%s %s\n", m, promLabels(hs.Labels, ""), promSeconds(hs.SumNS))
		fmt.Fprintf(w, "%s_count%s %d\n", m, promLabels(hs.Labels, ""), hs.Count)
	}

	// Stage histograms record nanoseconds internally; Prometheus convention
	// is base units, so durations are exported as seconds. Quantiles come
	// from the snapshot's bounded recent-sample ring (see StageSnapshot),
	// which matches summary semantics: a windowed estimate, not an exact
	// all-time quantile.
	for _, st := range snap.Stages {
		m := promName(st.Name) + "_seconds"
		fmt.Fprintf(w, "# TYPE %s summary\n", m)
		fmt.Fprintf(w, "%s{quantile=\"0.5\"} %s\n", m, promSeconds(st.P50NS))
		fmt.Fprintf(w, "%s{quantile=\"0.9\"} %s\n", m, promSeconds(st.P90NS))
		fmt.Fprintf(w, "%s{quantile=\"0.99\"} %s\n", m, promSeconds(st.P99NS))
		fmt.Fprintf(w, "%s_sum %s\n", m, promSeconds(st.TotalNS))
		fmt.Fprintf(w, "%s_count %d\n", m, st.Count)
	}
}

// promLabels renders a label set as {k1="v1",...}, appending an le label
// when le is non-empty. An empty label set with no le renders as "".
func promLabels(labels []obs.Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(promEscape(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promLabelsInf is promLabels with le="+Inf" (which promLabels cannot
// express since it escapes nothing into le).
func promLabelsInf(labels []obs.Label) string {
	return promLabels(labels, "+Inf")
}

// promEscape escapes a label value per the text exposition format.
func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promName maps a registry metric name onto the Prometheus namespace:
// prefixed with guardrail_ and with every character outside [a-zA-Z0-9_]
// replaced by an underscore ("pc.ci_tests" → "guardrail_pc_ci_tests").
func promName(name string) string {
	var b strings.Builder
	b.WriteString("guardrail_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promSeconds renders nanoseconds as a seconds float in the shortest
// round-trippable form.
func promSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}
