package debug

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"github.com/guardrail-db/guardrail/internal/obs"
)

// metricsHandler renders the currently-published registry in Prometheus
// text exposition format (version 0.0.4), so a long-running guard process
// can be scraped directly: counters and gauges map one-to-one, and each
// stage histogram becomes a summary metric in seconds with
// quantile-labelled samples plus _sum and _count.
// testHookScrape, when non-nil, runs at the top of every /metrics scrape.
// It lets the shutdown regression test hold a scrape in flight while
// Close runs; production leaves it nil.
var testHookScrape func()

func metricsHandler(w http.ResponseWriter, _ *http.Request) {
	if h := testHookScrape; h != nil {
		h()
	}
	published.mu.Lock()
	reg := published.reg
	published.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteMetrics(w, reg.Snapshot())
}

// WriteMetrics renders snap as Prometheus text exposition format. Output
// is deterministic: families are grouped by kind (counters, gauges,
// summaries) and sorted by name within each group, so the rendering is
// golden-testable.
func WriteMetrics(w io.Writer, snap obs.Snapshot) {
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m, m, snap.Counters[name])
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", m, m, snap.Gauges[name])
	}

	// Stage histograms record nanoseconds internally; Prometheus convention
	// is base units, so durations are exported as seconds. Quantiles come
	// from the snapshot's bounded recent-sample ring (see StageSnapshot),
	// which matches summary semantics: a windowed estimate, not an exact
	// all-time quantile.
	for _, st := range snap.Stages {
		m := promName(st.Name) + "_seconds"
		fmt.Fprintf(w, "# TYPE %s summary\n", m)
		fmt.Fprintf(w, "%s{quantile=\"0.5\"} %s\n", m, promSeconds(st.P50NS))
		fmt.Fprintf(w, "%s{quantile=\"0.9\"} %s\n", m, promSeconds(st.P90NS))
		fmt.Fprintf(w, "%s{quantile=\"0.99\"} %s\n", m, promSeconds(st.P99NS))
		fmt.Fprintf(w, "%s_sum %s\n", m, promSeconds(st.TotalNS))
		fmt.Fprintf(w, "%s_count %d\n", m, st.Count)
	}
}

// promName maps a registry metric name onto the Prometheus namespace:
// prefixed with guardrail_ and with every character outside [a-zA-Z0-9_]
// replaced by an underscore ("pc.ci_tests" → "guardrail_pc_ci_tests").
func promName(name string) string {
	var b strings.Builder
	b.WriteString("guardrail_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promSeconds renders nanoseconds as a seconds float in the shortest
// round-trippable form.
func promSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}
