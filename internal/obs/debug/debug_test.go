package debug

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/guardrail-db/guardrail/internal/obs"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("close body: %v", err)
		}
	}()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestServeExpvar: /debug/vars carries the published registry snapshot
// and reflects live updates.
func TestServeExpvar(t *testing.T) {
	reg := obs.New()
	reg.Counter("guard.raise.rows_checked").Add(7)
	s, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
	}()

	code, body := get(t, "http://"+s.Addr+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("status = %d\n%s", code, body)
	}
	var vars struct {
		Guardrail obs.Snapshot `json:"guardrail"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("expvar output does not parse: %v\n%s", err, body)
	}
	if vars.Guardrail.Counters["guard.raise.rows_checked"] != 7 {
		t.Errorf("counters = %v", vars.Guardrail.Counters)
	}

	// Live: a later increment is visible on the next scrape.
	reg.Counter("guard.raise.rows_checked").Add(3)
	_, body = get(t, "http://"+s.Addr+"/debug/vars")
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatal(err)
	}
	if vars.Guardrail.Counters["guard.raise.rows_checked"] != 10 {
		t.Errorf("live counters = %v, want 10", vars.Guardrail.Counters)
	}
}

// TestServePprof: the pprof index and a cheap profile endpoint respond.
func TestServePprof(t *testing.T) {
	s, err := Serve("127.0.0.1:0", obs.New())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
	}()

	code, body := get(t, "http://"+s.Addr+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index: status %d\n%s", code, body)
	}
	code, _ = get(t, "http://"+s.Addr+"/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK {
		t.Errorf("goroutine profile: status %d", code)
	}
}

// TestServeTwice: publishing is idempotent (expvar.Publish panics on a
// duplicate name if unguarded) and the latest registry wins.
func TestServeTwice(t *testing.T) {
	reg2 := obs.New()
	reg2.Counter("second").Inc()
	for i, reg := range []*obs.Registry{obs.New(), reg2} {
		s, err := Serve("127.0.0.1:0", reg)
		if err != nil {
			t.Fatalf("serve #%d: %v", i, err)
		}
		_, body := get(t, "http://"+s.Addr+"/debug/vars")
		if i == 1 && !strings.Contains(string(body), "second") {
			t.Errorf("latest registry not published:\n%s", body)
		}
		if err := s.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
	}
}

// TestServeBadAddr: listen errors surface synchronously.
func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("127.0.0.1:-1", obs.New()); err == nil {
		t.Fatal("want error for invalid address")
	}
}

// TestCloseDrainsInflightScrape: a /metrics scrape admitted before Close
// must finish with a complete body rather than a reset connection —
// Close drains via Shutdown instead of tearing the listener down under
// the in-flight handler. The scrape handler is parked on a channel via
// the test hook, so Close provably overlaps the request.
func TestCloseDrainsInflightScrape(t *testing.T) {
	reg := obs.New()
	reg.Counter("guard.ignore.rows_checked").Add(42)
	s, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	release := make(chan struct{})
	testHookScrape = func() {
		close(started)
		<-release
	}
	defer func() { testHookScrape = nil }()

	type scrape struct {
		status int
		body   string
		err    error
	}
	scrapes := make(chan scrape, 1)
	go func() {
		resp, err := http.Get("http://" + s.Addr + "/metrics")
		if err != nil {
			scrapes <- scrape{err: err}
			return
		}
		body, err := io.ReadAll(resp.Body)
		cerr := resp.Body.Close()
		if err == nil {
			err = cerr
		}
		scrapes <- scrape{status: resp.StatusCode, body: string(body), err: err}
	}()

	<-started // the scrape is in the handler
	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	// Close (graceful or not) shuts the listener first; wait until new
	// dials are refused so the teardown provably started — only then let
	// the parked handler write. A Close that tears down connections along
	// with the listener has already reset the scrape at this point.
	for {
		conn, err := net.Dial("tcp", s.Addr)
		if err != nil {
			break
		}
		if err := conn.Close(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(release) // let the handler write its response under the drain

	if err := <-closed; err != nil {
		t.Errorf("Close during in-flight scrape: %v", err)
	}
	got := <-scrapes
	if got.err != nil {
		t.Fatalf("in-flight scrape aborted by Close: %v", got.err)
	}
	if got.status != http.StatusOK {
		t.Errorf("scrape status = %d", got.status)
	}
	if !strings.Contains(got.body, "guardrail_guard_ignore_rows_checked 42") {
		t.Errorf("scrape body truncated or wrong:\n%s", got.body)
	}
}

// TestHandleExtras: handlers registered with Handle are reachable on a
// debug server whether registered before or after Serve, unknown paths
// still 404, and built-in routes win over extras.
func TestHandleExtras(t *testing.T) {
	Handle("/debug/before", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("before"))
	}))
	s, err := Serve("127.0.0.1:0", obs.New())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
	}()
	Handle("/debug/after", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("after"))
	}))

	for path, want := range map[string]string{"/debug/before": "before", "/debug/after": "after"} {
		code, body := get(t, "http://"+s.Addr+path)
		if code != http.StatusOK || string(body) != want {
			t.Errorf("GET %s = %d %q, want 200 %q", path, code, body, want)
		}
	}
	if code, _ := get(t, "http://"+s.Addr+"/debug/missing"); code != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", code)
	}
	// /metrics is a built-in and must not be shadowed by extras.
	Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "shadowed", http.StatusTeapot)
	}))
	if code, _ := get(t, "http://"+s.Addr+"/metrics"); code != http.StatusOK {
		t.Errorf("/metrics = %d, want 200 (built-ins take precedence)", code)
	}
}
