package debug

import (
	"net/http"
	"regexp"
	"strings"
	"testing"

	"github.com/guardrail-db/guardrail/internal/obs"
)

// TestWriteMetricsGolden pins the Prometheus text rendering exactly: a
// registry with known contents must produce this byte-for-byte output
// (exposition format 0.0.4 — TYPE lines, counter/gauge samples, stage
// summaries in seconds with quantile labels).
func TestWriteMetricsGolden(t *testing.T) {
	reg := obs.New()
	reg.Counter("pc.ci_tests").Add(42)
	reg.Counter("synth.dags").Add(7)
	reg.Gauge("synth.workers").Set(4)
	h := reg.Histogram("synth.learn")
	// Quantiles are exact here: 100 observations of 1..100 µs fit the ring.
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	cv := reg.CounterVec("serve.endpoint.requests", "endpoint", "status")
	cv.With("check", "429").Inc()
	cv.With("check", "200").Add(5)
	eh := reg.Exact("serve.request.check")
	eh.Observe(10)  // single-value bucket: le 10 ns
	eh.Observe(100) // log-linear bucket [100,101] ns
	reg.HistogramVec("serve.request.latency", "endpoint").With("check").Observe(32)

	var b strings.Builder
	WriteMetrics(&b, reg.Snapshot())
	want := `# TYPE guardrail_pc_ci_tests counter
guardrail_pc_ci_tests 42
# TYPE guardrail_synth_dags counter
guardrail_synth_dags 7
# TYPE guardrail_serve_endpoint_requests counter
guardrail_serve_endpoint_requests{endpoint="check",status="200"} 5
guardrail_serve_endpoint_requests{endpoint="check",status="429"} 1
# TYPE guardrail_synth_workers gauge
guardrail_synth_workers 4
# TYPE guardrail_serve_request_check_seconds histogram
guardrail_serve_request_check_seconds_bucket{le="1e-08"} 1
guardrail_serve_request_check_seconds_bucket{le="1.01e-07"} 2
guardrail_serve_request_check_seconds_bucket{le="+Inf"} 2
guardrail_serve_request_check_seconds_sum 1.1e-07
guardrail_serve_request_check_seconds_count 2
# TYPE guardrail_serve_request_latency_seconds histogram
guardrail_serve_request_latency_seconds_bucket{endpoint="check",le="3.2e-08"} 1
guardrail_serve_request_latency_seconds_bucket{endpoint="check",le="+Inf"} 1
guardrail_serve_request_latency_seconds_sum{endpoint="check"} 3.2e-08
guardrail_serve_request_latency_seconds_count{endpoint="check"} 1
# TYPE guardrail_synth_learn_seconds summary
guardrail_synth_learn_seconds{quantile="0.5"} 5e-05
guardrail_synth_learn_seconds{quantile="0.9"} 9e-05
guardrail_synth_learn_seconds{quantile="0.99"} 9.9e-05
guardrail_synth_learn_seconds_sum 0.00505
guardrail_synth_learn_seconds_count 100
`
	if got := b.String(); got != want {
		t.Errorf("metrics rendering mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// promLine accepts one sample line of the text exposition format:
// metric_name{optional="labels"} value.
var promLine = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})? -?[0-9][0-9eE.+-]*$`)

// TestMetricsEndpoint scrapes /metrics off a live server and validates
// every line parses as Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	reg := obs.New()
	reg.Counter("guard.raise.rows_checked").Add(3)
	reg.Histogram("sql.guard").Observe(1500)
	s, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
	}()

	code, body := get(t, "http://"+s.Addr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d\n%s", code, body)
	}
	text := string(body)
	if !strings.Contains(text, "guardrail_guard_raise_rows_checked 3") {
		t.Errorf("missing counter sample:\n%s", text)
	}
	if !strings.Contains(text, "guardrail_sql_guard_seconds_count 1") {
		t.Errorf("missing summary count:\n%s", text)
	}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# TYPE ") {
				t.Errorf("unexpected comment line %q", line)
			}
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("line does not parse as a Prometheus sample: %q", line)
		}
	}
}

// TestPromName pins the name mapping.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"pc.ci_tests":             "guardrail_pc_ci_tests",
		"guard.raise.rows_ooted":  "guardrail_guard_raise_rows_ooted",
		"weird-name with spaces!": "guardrail_weird_name_with_spaces_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPromEscape pins label-value escaping per the exposition format.
func TestPromEscape(t *testing.T) {
	cases := map[string]string{
		"plain":             "plain",
		`quo"te`:            `quo\"te`,
		`back\slash`:        `back\\slash`,
		"new\nline":         `new\nline`,
		`all"three\` + "\n": `all\"three\\\n`,
	}
	for in, want := range cases {
		if got := promEscape(in); got != want {
			t.Errorf("promEscape(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWriteMetricsEscapedLabels: a hostile label value renders escaped,
// keeping the exposition parseable.
func TestWriteMetricsEscapedLabels(t *testing.T) {
	reg := obs.New()
	reg.CounterVec("esc", "dataset").With("we\"ird\nname").Inc()
	var b strings.Builder
	WriteMetrics(&b, reg.Snapshot())
	want := "# TYPE guardrail_esc counter\nguardrail_esc{dataset=\"we\\\"ird\\nname\"} 1\n"
	if got := b.String(); got != want {
		t.Errorf("escaped rendering:\ngot  %q\nwant %q", got, want)
	}
}

// TestWriteMetricsEmpty: an empty snapshot renders to nothing rather than
// malformed output.
func TestWriteMetricsEmpty(t *testing.T) {
	var b strings.Builder
	var reg *obs.Registry
	WriteMetrics(&b, reg.Snapshot())
	if b.Len() != 0 {
		t.Errorf("empty snapshot rendered %q", b.String())
	}
}
