package obs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync/atomic"
)

// Hist is the exact mergeable latency histogram: a log-linear bucket
// layout over nanoseconds (HDR-style) holding an exact count for every
// observation ever made — no sampling, no recency window, unlike the
// bounded-ring Histogram whose quantiles only describe the most recent
// observations.
//
// The bucket layout is a fixed global constant, not a per-histogram
// parameter: any two Hist values (or their snapshots, possibly shipped
// through the binary codec) merge by summing bucket counts, the same
// mergeable-by-construction discipline as internal/stats/incr tables.
// Quantile queries return exact bounds: the true q-quantile of everything
// ever observed provably lies in the returned [lo, hi] interval, and the
// interval's relative width is at most 1/histSubCount (~3.1%) — values
// below 2*histSubCount ns land in single-value buckets and are exact.
//
// Observe is lock-free: a bucket increment is one atomic add on a
// per-shard counter array, so a scrape (which merges shards into a
// snapshot) never stalls the hot path. Shards follow the same
// single-writer philosophy as trace lanes: callers that own an exclusive
// ticket (the serve admission slot) spread contention with ObserveShard;
// everything else uses Observe (shard 0). Shard placement never affects
// the merged result — only cache-line contention.
//
// The nil *Hist is a no-op, like every other obs handle.
type Hist struct {
	shards []atomic.Pointer[histShard] // power-of-two length, lazily filled
}

// Bucket layout: buckets 0..2*histSubCount-1 hold exactly one value each
// (0..63 ns); above that, each power-of-two octave splits into
// histSubCount linear sub-buckets, so bucket width grows with magnitude
// while relative error stays ≤ 1/histSubCount. Values above histMaxNS
// (~2.4 h) fall into a single overflow bucket whose upper bound is +Inf;
// the exact observed maximum is still tracked separately.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits // 32 linear sub-buckets per octave
	histMaxExp   = 42               // top tracked octave: up to 2^43-1 ns

	histNumBuckets = histSubCount + (histMaxExp-histSubBits+1)*histSubCount + 1
	histOverflow   = histNumBuckets - 1

	// histMaxNS is the largest value the normal buckets track.
	histMaxNS = int64(1)<<(histMaxExp+1) - 1
)

// histIndex maps a value to its bucket. Negative values clamp to 0.
func histIndex(v int64) int {
	if v < histSubCount {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	if exp > histMaxExp {
		return histOverflow
	}
	// Top histSubBits bits after the leading one select the sub-bucket;
	// for exp == histSubBits this degenerates to the identity, stitching
	// seamlessly onto the single-value buckets below histSubCount.
	return (exp-histSubBits)*histSubCount + int(v>>uint(exp-histSubBits))
}

// histLower returns bucket i's smallest value.
func histLower(i int) int64 {
	if i < 2*histSubCount {
		return int64(i)
	}
	o := i/histSubCount - 1
	s := i % histSubCount
	return int64(histSubCount+s) << uint(o)
}

// histUpper returns bucket i's largest value (inclusive); +Inf (MaxInt64)
// for the overflow bucket.
func histUpper(i int) int64 {
	if i >= histOverflow {
		return math.MaxInt64
	}
	return histLower(i+1) - 1
}

// histShard is one writer shard: an atomic counter per bucket plus the
// exact aggregate moments. ~10 KiB, allocated on first use so idle shards
// (and idle vector children) cost one pointer.
type histShard struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [histNumBuckets]atomic.Int64
}

func newHistShard() *histShard {
	s := &histShard{}
	s.min.Store(math.MaxInt64)
	s.max.Store(math.MinInt64)
	return s
}

// defaultHistShards sizes a histogram's shard array to the next power of
// two at or above GOMAXPROCS, capped at 64.
func defaultHistShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewHist builds a histogram with the given shard count (rounded up to a
// power of two, minimum 1). Registry.Exact is the usual constructor.
func NewHist(shards int) *Hist {
	p := 1
	for p < shards {
		p <<= 1
	}
	return &Hist{shards: make([]atomic.Pointer[histShard], p)}
}

// shard returns shard i's storage, installing it on first use. The CAS
// race on first touch is benign: the loser's allocation is dropped.
func (h *Hist) shard(i int) *histShard {
	p := &h.shards[i&(len(h.shards)-1)]
	s := p.Load()
	if s == nil {
		s = newHistShard()
		if !p.CompareAndSwap(nil, s) {
			s = p.Load()
		}
	}
	return s
}

// Observe records one value on shard 0. Safe from any goroutine; callers
// holding an exclusive ticket should prefer ObserveShard to spread
// cache-line contention. No-op on a nil histogram.
func (h *Hist) Observe(v int64) { h.ObserveShard(0, v) }

// ObserveShard records one value on the shard selected by ticket (reduced
// modulo the shard count). Lock-free: one atomic add per bucket/moment.
func (h *Hist) ObserveShard(ticket int, v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	s := h.shard(ticket)
	s.buckets[histIndex(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
	for {
		m := s.min.Load()
		if v >= m || s.min.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := s.max.Load()
		if v <= m || s.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Label is one key/value dimension of a labeled metric.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// HistBucket is one non-empty bucket of a snapshot: the bucket's
// inclusive upper bound in nanoseconds (MaxInt64 for the overflow bucket)
// and its exact (non-cumulative) count.
type HistBucket struct {
	UpperNS int64 `json:"le_ns"`
	Count   int64 `json:"count"`
}

// HistSnapshot is the merged, point-in-time view of a Hist: exact
// aggregate moments plus the sparse non-empty buckets in ascending order.
// Snapshots are the mergeable value — Merge sums two of them, and the
// binary codec ships them between processes — mirroring how
// stats/incr.Table carries sufficient statistics.
type HistSnapshot struct {
	Name    string       `json:"name"`
	Labels  []Label      `json:"labels,omitempty"`
	Count   int64        `json:"count"`
	SumNS   int64        `json:"sum_ns"`
	MinNS   int64        `json:"min_ns"`
	MaxNS   int64        `json:"max_ns"`
	P50NS   int64        `json:"p50_ns"`
	P90NS   int64        `json:"p90_ns"`
	P99NS   int64        `json:"p99_ns"`
	P999NS  int64        `json:"p999_ns"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot merges every shard into one exact view. Concurrent Observes
// land either side of the atomic reads — each observation is counted
// exactly once in some snapshot taken after it.
func (h *Hist) Snapshot(name string) HistSnapshot {
	s := HistSnapshot{Name: name}
	if h == nil {
		return s
	}
	var dense [histNumBuckets]int64
	min, max := int64(math.MaxInt64), int64(math.MinInt64)
	for i := range h.shards {
		sh := h.shards[i].Load()
		if sh == nil {
			continue
		}
		s.Count += sh.count.Load()
		s.SumNS += sh.sum.Load()
		if m := sh.min.Load(); m < min {
			min = m
		}
		if m := sh.max.Load(); m > max {
			max = m
		}
		for b := range sh.buckets {
			dense[b] += sh.buckets[b].Load()
		}
	}
	if s.Count > 0 {
		s.MinNS, s.MaxNS = min, max
	}
	for b, c := range dense {
		if c != 0 {
			s.Buckets = append(s.Buckets, HistBucket{UpperNS: histUpper(b), Count: c})
		}
	}
	s.finalize()
	return s
}

// finalize recomputes the quantile-bound fields from the buckets.
func (s *HistSnapshot) finalize() {
	_, s.P50NS = s.Quantile(0.50)
	_, s.P90NS = s.Quantile(0.90)
	_, s.P99NS = s.Quantile(0.99)
	_, s.P999NS = s.Quantile(0.999)
}

// Quantile returns exact bounds on the q-quantile (nearest-rank over
// every observation ever made): the true quantile lies in [lo, hi]. The
// bounds come from the bucket containing the rank-⌈q·count⌉ observation,
// tightened by the exact min/max. An empty snapshot returns (0, 0).
func (s HistSnapshot) Quantile(q float64) (lo, hi int64) {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0, 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			lo = histLower(histIndex(b.UpperNS))
			if lo < s.MinNS {
				lo = s.MinNS
			}
			hi = b.UpperNS
			if hi > s.MaxNS {
				hi = s.MaxNS
			}
			return lo, hi
		}
	}
	return s.MinNS, s.MaxNS // unreachable when Σ bucket counts == Count
}

// Merge folds o into s: bucket counts and moments sum, exactly as if
// every observation behind o had been recorded into s's histogram.
// Merging is associative and commutative, so any shard/merge tree yields
// bit-identical snapshots.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 {
		name, labels := s.Name, s.Labels
		*s = o
		s.Name, s.Labels = name, labels
		s.Buckets = append([]HistBucket(nil), o.Buckets...)
		return
	}
	merged := make([]HistBucket, 0, len(s.Buckets)+len(o.Buckets))
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].UpperNS < o.Buckets[j].UpperNS):
			merged = append(merged, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].UpperNS < s.Buckets[i].UpperNS:
			merged = append(merged, o.Buckets[j])
			j++
		default:
			merged = append(merged, HistBucket{UpperNS: s.Buckets[i].UpperNS, Count: s.Buckets[i].Count + o.Buckets[j].Count})
			i++
			j++
		}
	}
	s.Buckets = merged
	s.Count += o.Count
	s.SumNS += o.SumNS
	if o.MinNS < s.MinNS {
		s.MinNS = o.MinNS
	}
	if o.MaxNS > s.MaxNS {
		s.MaxNS = o.MaxNS
	}
	s.finalize()
}

// Binary codec for histogram snapshots — the wire format for shipping
// latency sufficient statistics between shards or nodes, mirroring the
// stats/incr table codec. Deterministic: equal snapshots marshal to equal
// bytes (buckets are already in ascending order by construction).
//
//	"GRHX1" | count sum min max uvarint | numBuckets uvarint |
//	per bucket: index delta uvarint (first absolute, then gap), count uvarint
//
// Name and labels are addressing, not statistics, and stay out of the
// payload — like variable names in the table codec.
const histCodecMagic = "GRHX1"

// MarshalBinary serializes the snapshot's statistics.
func (s HistSnapshot) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, len(histCodecMagic)+5*10+len(s.Buckets)*4)
	buf = append(buf, histCodecMagic...)
	buf = binary.AppendUvarint(buf, uint64(s.Count))
	buf = binary.AppendUvarint(buf, uint64(s.SumNS))
	buf = binary.AppendUvarint(buf, uint64(s.MinNS))
	buf = binary.AppendUvarint(buf, uint64(s.MaxNS))
	buf = binary.AppendUvarint(buf, uint64(len(s.Buckets)))
	prev := -1
	for _, b := range s.Buckets {
		idx := histIndex(b.UpperNS)
		if idx <= prev {
			return nil, fmt.Errorf("obs: histogram buckets out of order at le_ns=%d", b.UpperNS)
		}
		if b.Count <= 0 {
			return nil, fmt.Errorf("obs: non-positive bucket count %d", b.Count)
		}
		if prev < 0 {
			buf = binary.AppendUvarint(buf, uint64(idx))
		} else {
			buf = binary.AppendUvarint(buf, uint64(idx-prev))
		}
		buf = binary.AppendUvarint(buf, uint64(b.Count))
		prev = idx
	}
	return buf, nil
}

// UnmarshalBinary replaces the snapshot's statistics (Name and Labels are
// preserved). The total count is validated against the bucket sum, so a
// corrupt payload cannot smuggle in an inconsistent histogram.
func (s *HistSnapshot) UnmarshalBinary(data []byte) error {
	if len(data) < len(histCodecMagic) || string(data[:len(histCodecMagic)]) != histCodecMagic {
		return errors.New("obs: bad histogram magic")
	}
	data = data[len(histCodecMagic):]
	var hdr [5]int64
	for i := range hdr {
		v, n := binary.Uvarint(data)
		if n <= 0 || v > math.MaxInt64 {
			return errors.New("obs: bad histogram header")
		}
		hdr[i] = int64(v)
		data = data[n:]
	}
	count, sum, min, max, nb := hdr[0], hdr[1], hdr[2], hdr[3], hdr[4]
	if nb > histNumBuckets {
		return fmt.Errorf("obs: %d buckets exceeds layout size %d", nb, histNumBuckets)
	}
	if count > 0 && min > max {
		return errors.New("obs: histogram min exceeds max")
	}
	buckets := make([]HistBucket, 0, nb)
	var total int64
	prev := -1
	for i := int64(0); i < nb; i++ {
		d, n := binary.Uvarint(data)
		if n <= 0 {
			return errors.New("obs: truncated bucket index")
		}
		data = data[n:]
		idx := int(d)
		if prev >= 0 {
			if d == 0 {
				return errors.New("obs: non-increasing bucket index")
			}
			idx = prev + int(d)
		}
		if idx >= histNumBuckets {
			return fmt.Errorf("obs: bucket index %d out of range", idx)
		}
		c, n := binary.Uvarint(data)
		if n <= 0 || c == 0 || c > math.MaxInt64 {
			return errors.New("obs: bad bucket count")
		}
		data = data[n:]
		buckets = append(buckets, HistBucket{UpperNS: histUpper(idx), Count: int64(c)})
		total += int64(c)
		if total < 0 {
			return errors.New("obs: bucket count overflow")
		}
		prev = idx
	}
	if len(data) != 0 {
		return errors.New("obs: trailing bytes")
	}
	if total != count {
		return fmt.Errorf("obs: bucket sum %d != count %d", total, count)
	}
	s.Count, s.SumNS = count, sum
	if count > 0 {
		s.MinNS, s.MaxNS = min, max
	} else {
		s.MinNS, s.MaxNS = 0, 0
	}
	s.Buckets = buckets
	s.finalize()
	return nil
}
