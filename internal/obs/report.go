package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/guardrail-db/guardrail/internal/obs/trace"
)

// StageSnapshot is the reduced view of one stage histogram. All values are
// nanoseconds (except Count and Sampled); they are wall-clock derived and
// therefore never diffed by tests — only the counters section is
// deterministic.
//
// Count/TotalNS/MinNS/MaxNS cover every observation ever made, but the
// quantiles are computed over only the histogram's bounded ring of recent
// observations; Sampled reports how many ring entries backed them. When
// Sampled < Count the quantiles describe a recent window, not the full
// history — read them as estimates.
type StageSnapshot struct {
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	Sampled int64  `json:"sampled"`
	TotalNS int64  `json:"total_ns"`
	MinNS   int64  `json:"min_ns"`
	MaxNS   int64  `json:"max_ns"`
	P50NS   int64  `json:"p50_ns"`
	P90NS   int64  `json:"p90_ns"`
	P99NS   int64  `json:"p99_ns"`
}

// Snapshot is a point-in-time copy of a registry. Counters (labeled or
// not) are schedule-independent and identical across worker counts on
// the same seed; gauges, stages, and exact-histogram timings may
// legitimately differ between runs. LabeledCounters and Hists are sorted
// by name then label values, so the sections are deterministic and
// golden-testable.
type Snapshot struct {
	Counters        map[string]int64 `json:"counters"`
	LabeledCounters []LabeledCounter `json:"labeled_counters,omitempty"`
	Gauges          map[string]int64 `json:"gauges,omitempty"`
	Stages          []StageSnapshot  `json:"stages"`
	Hists           []HistSnapshot   `json:"hists,omitempty"`
}

// Snapshot copies the registry's current state. Safe on a nil registry
// (returns an empty snapshot) and concurrently with metric updates.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]int64{}, Gauges: map[string]int64{}, Stages: []StageSnapshot{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	exacts := make(map[string]*Hist, len(r.exacts))
	for name, h := range r.exacts {
		exacts[name] = h
	}
	cvecs := make(map[string]*CounterVec, len(r.cvecs))
	for name, v := range r.cvecs {
		cvecs[name] = v
	}
	hvecs := make(map[string]*HistogramVec, len(r.hvecs))
	for name, v := range r.hvecs {
		hvecs[name] = v
	}
	r.mu.Unlock()

	for name, c := range counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		s.Gauges[name] = g.Value()
	}
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.Stages = append(s.Stages, hists[name].snapshot(name))
	}

	names = names[:0]
	for name := range cvecs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := cvecs[name].v
		for _, c := range v.sortedChildren() {
			s.LabeledCounters = append(s.LabeledCounters, LabeledCounter{
				Name: name, Labels: v.labels(c), Value: c.metric.Value(),
			})
		}
	}

	names = names[:0]
	for name := range exacts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.Hists = append(s.Hists, exacts[name].Snapshot(name))
	}

	names = names[:0]
	for name := range hvecs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := hvecs[name].v
		for _, c := range v.sortedChildren() {
			hs := c.metric.Snapshot(name)
			hs.Labels = v.labels(c)
			s.Hists = append(s.Hists, hs)
		}
	}
	return s
}

// RunReport is the JSON document written by -report: which command ran,
// plus the full metrics snapshot and — when tracing was on — the trace's
// critical path. The critical path, like the stages section, is
// wall-clock derived and never diffed by tests.
type RunReport struct {
	Command string `json:"command"`
	Snapshot
	CriticalPath []trace.PathStep `json:"critical_path,omitempty"`
}

// WriteReport snapshots reg and writes a RunReport to path as indented
// JSON. A nil registry writes an empty (but valid) report.
func WriteReport(path, command string, reg *Registry) error {
	return WriteReportWithTrace(path, command, reg, nil)
}

// WriteReportWithTrace is WriteReport plus the critical path of tr
// embedded as the report's critical_path field; a nil tracer omits it.
func WriteReportWithTrace(path, command string, reg *Registry, tr *trace.Tracer) error {
	rep := RunReport{Command: command, Snapshot: reg.Snapshot(), CriticalPath: tr.CriticalPath()}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: write report: %w", err)
	}
	return nil
}

// StageSummary renders the stage histograms as an aligned human-readable
// table (one line per stage), for printing after synthesis. Empty string
// when no stages were recorded or the registry is nil.
func (r *Registry) StageSummary() string {
	s := r.Snapshot()
	if len(s.Stages) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %8s %8s %12s %12s %12s   (p50 over last %d samples)\n",
		"stage", "count", "sampled", "total", "p50", "max", histRing)
	for _, st := range s.Stages {
		fmt.Fprintf(&b, "%-16s %8d %8d %12s %12s %12s\n",
			st.Name, st.Count, st.Sampled,
			time.Duration(st.TotalNS).Round(time.Microsecond),
			time.Duration(st.P50NS).Round(time.Microsecond),
			time.Duration(st.MaxNS).Round(time.Microsecond))
	}
	return b.String()
}
