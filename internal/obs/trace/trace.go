// Package trace is the hierarchical timing layer of the observability
// stack: where internal/obs answers *how much* (counters, stage
// histograms), trace answers *where the wall-clock went* — which worker
// lane ran which task, how the level-barrier phases overlap, and what the
// critical path through learn → enum → fill → select is.
//
// The data model is an explicit-parent span tree: every span records its
// own ID, its parent's ID, a name, a start offset from the tracer epoch, a
// duration, typed attributes, and instant events. Parents are IDs rather
// than an implicit per-goroutine stack, so a child started on one worker
// lane can hang under a parent started on another — exactly what a
// fork-join pipeline produces.
//
// Spans are recorded into per-lane append-only buffers. A lane is owned by
// exactly one goroutine at a time (lane 0 by the coordinating goroutine,
// lane w+1 by pool worker w; see internal/par), so the hot path takes no
// locks: starting a span is an append plus an atomic ID increment, and
// ending one writes the duration in place. Buffers are merged only at
// flush (Records, WriteChrome, CriticalPath), after the pool has
// quiesced.
//
// Like the rest of the obs stack, the disabled path is free: a nil
// *Tracer hands out nil *Lane values, the zero Scope and zero Span are
// no-ops, and none of them read the clock or allocate
// (TestTraceDisabledZeroAlloc pins this).
package trace

import (
	"context"
	"sort"
	"sync/atomic"
	"time"
)

// SpanID identifies one span within a tracer. 0 means "no span" and is
// the parent of root spans.
type SpanID uint64

// AttrKind discriminates the typed attribute union.
type AttrKind uint8

// Attribute kinds.
const (
	KindString AttrKind = iota
	KindInt
	KindFloat
	KindBool
)

// Attr is one typed key/value attribute attached to a span.
type Attr struct {
	Key   string
	Kind  AttrKind
	Str   string
	Int   int64
	Float float64
	Bool  bool
}

// Value returns the attribute's payload as the dynamic type matching its
// kind — the shape exporters want.
func (a Attr) Value() any {
	switch a.Kind {
	case KindInt:
		return a.Int
	case KindFloat:
		return a.Float
	case KindBool:
		return a.Bool
	}
	return a.Str
}

// openDur marks a span record whose End has not run yet.
const openDur = int64(-1)

// Record is one completed span or instant event as stored in a lane
// buffer. Start is nanoseconds since the tracer epoch; Dur is -1 while
// the span is still open and 0 for instant events.
type Record struct {
	ID      SpanID
	Parent  SpanID
	Name    string
	Lane    int
	Start   int64
	Dur     int64
	Instant bool
	Attrs   []Attr
}

// End reports the record's end offset (ns since epoch); open spans and
// instants end where they start.
func (r Record) End() int64 {
	if r.Dur > 0 {
		return r.Start + r.Dur
	}
	return r.Start
}

// Tracer owns the span ID sequence, the trace epoch, and one buffer per
// lane. Lane 0 belongs to the coordinating goroutine; lanes 1..workers to
// the pool workers. The nil tracer is fully disabled.
type Tracer struct {
	epoch  time.Time
	nextID atomic.Uint64
	lanes  []*Lane
}

// New builds a tracer with workers+1 lanes: lane 0 for the coordinating
// goroutine and one lane per pool worker. workers < 1 is treated as 1.
func New(workers int) *Tracer {
	if workers < 1 {
		workers = 1
	}
	t := &Tracer{epoch: time.Now(), lanes: make([]*Lane, workers+1)}
	for i := range t.lanes {
		t.lanes[i] = &Lane{tr: t, tid: i}
	}
	return t
}

// NumLanes reports the lane count (workers + 1); 0 on a nil tracer.
func (t *Tracer) NumLanes() int {
	if t == nil {
		return 0
	}
	return len(t.lanes)
}

// Lane returns lane i. A nil tracer or an out-of-range index returns nil
// — never a shared fallback lane, since two goroutines writing one buffer
// would race. Callers treat a nil lane as "tracing off".
func (t *Tracer) Lane(i int) *Lane {
	if t == nil || i < 0 || i >= len(t.lanes) {
		return nil
	}
	return t.lanes[i]
}

// Root is the scope a command hands to the pipeline: lane 0, no parent.
// Nil-safe — the zero Scope from a nil tracer disables all span calls.
func (t *Tracer) Root() Scope { return Scope{lane: t.Lane(0)} }

// Records merges every lane's buffer into one slice ordered by start
// offset (ties by ID). Call it only after the traced work has quiesced —
// lanes are single-writer, and the merge reads them without locks.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	var out []Record
	for _, l := range t.lanes {
		out = append(out, l.recs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Lane is one worker's append-only span buffer. All methods must be
// called from the single goroutine that owns the lane; the nil lane is a
// no-op.
type Lane struct {
	tr   *Tracer
	tid  int
	recs []Record
}

// Tracer returns the owning tracer; nil on a nil lane.
func (l *Lane) Tracer() *Tracer {
	if l == nil {
		return nil
	}
	return l.tr
}

// ID reports the lane's track number (the Chrome trace tid).
func (l *Lane) ID() int {
	if l == nil {
		return 0
	}
	return l.tid
}

// Scope binds the lane to a parent span, giving call sites one value to
// thread around.
func (l *Lane) Scope(parent SpanID) Scope { return Scope{lane: l, parent: parent} }

// start appends an open span record and returns its handle.
func (l *Lane) start(name string, parent SpanID) Span {
	if l == nil {
		return Span{}
	}
	id := SpanID(l.tr.nextID.Add(1))
	now := time.Now()
	l.recs = append(l.recs, Record{
		ID: id, Parent: parent, Name: name, Lane: l.tid,
		Start: now.Sub(l.tr.epoch).Nanoseconds(), Dur: openDur,
	})
	return Span{lane: l, idx: int32(len(l.recs) - 1), id: id, t0: now}
}

// instant appends a zero-duration event record.
func (l *Lane) instant(name string, parent SpanID, attrs []Attr) {
	if l == nil {
		return
	}
	l.recs = append(l.recs, Record{
		ID: SpanID(l.tr.nextID.Add(1)), Parent: parent, Name: name, Lane: l.tid,
		Start: time.Since(l.tr.epoch).Nanoseconds(), Instant: true, Attrs: attrs,
	})
}

// Span is an open span handle. The zero Span (from a nil lane) is a no-op
// that never reads the clock. Spans are value types: they index into the
// lane buffer, so copying a handle is safe, but End must run on the
// lane's owning goroutine like every other lane operation.
type Span struct {
	lane *Lane
	idx  int32
	id   SpanID
	t0   time.Time
}

// ID returns the span's ID (0 for the zero span), usable as an explicit
// parent.
func (s Span) ID() SpanID { return s.id }

// Scope returns a scope for children of this span on the same lane.
func (s Span) Scope() Scope { return Scope{lane: s.lane, parent: s.id} }

// End closes the span, recording the elapsed duration, and returns it.
func (s Span) End() time.Duration {
	if s.lane == nil {
		return 0
	}
	d := time.Since(s.t0)
	s.lane.recs[s.idx].Dur = int64(d)
	return d
}

// attr appends one attribute to the open span.
func (s Span) attr(a Attr) Span {
	if s.lane != nil {
		r := &s.lane.recs[s.idx]
		r.Attrs = append(r.Attrs, a)
	}
	return s
}

// Int attaches an integer attribute; chainable, no-op on the zero span.
func (s Span) Int(key string, v int64) Span {
	return s.attr(Attr{Key: key, Kind: KindInt, Int: v})
}

// Str attaches a string attribute.
func (s Span) Str(key, v string) Span {
	return s.attr(Attr{Key: key, Kind: KindString, Str: v})
}

// Float attaches a float attribute.
func (s Span) Float(key string, v float64) Span {
	return s.attr(Attr{Key: key, Kind: KindFloat, Float: v})
}

// Bool attaches a boolean attribute.
func (s Span) Bool(key string, v bool) Span {
	return s.attr(Attr{Key: key, Kind: KindBool, Bool: v})
}

// Event records an instant event under this span.
func (s Span) Event(name string) {
	if s.lane != nil {
		s.lane.instant(name, s.id, nil)
	}
}

// Scope is the unit call sites thread through Options structs and
// contexts: which lane to record on and which span to parent under. The
// zero Scope is disabled; every method is then a free no-op.
type Scope struct {
	lane   *Lane
	parent SpanID
}

// Enabled reports whether spans started from this scope are recorded.
func (s Scope) Enabled() bool { return s.lane != nil }

// Lane returns the scope's lane (nil when disabled).
func (s Scope) Lane() *Lane { return s.lane }

// Start opens a span named name under the scope's parent.
func (s Scope) Start(name string) Span { return s.lane.start(name, s.parent) }

// Under rebinds the scope's parent to sp, keeping the lane. Children of a
// disabled span stay disabled even if the scope's lane was live.
func (s Scope) Under(sp Span) Scope {
	if sp.lane == nil {
		return Scope{}
	}
	return Scope{lane: s.lane, parent: sp.id}
}

// OnLane moves the scope to another lane, keeping the parent — how the
// worker pool attributes a task's spans to the worker that ran it.
func (s Scope) OnLane(l *Lane) Scope {
	if l == nil {
		return Scope{}
	}
	return Scope{lane: l, parent: s.parent}
}

// Event records an instant event under the scope's parent.
func (s Scope) Event(name string) { s.lane.instant(name, s.parent, nil) }

// EventStr records an instant event carrying one string attribute.
func (s Scope) EventStr(name, key, val string) {
	if s.lane == nil {
		return
	}
	s.lane.instant(name, s.parent, []Attr{{Key: key, Kind: KindString, Str: val}})
}

// EventInt records an instant event carrying one integer attribute.
func (s Scope) EventInt(name, key string, val int64) {
	if s.lane == nil {
		return
	}
	s.lane.instant(name, s.parent, []Attr{{Key: key, Kind: KindInt, Int: val}})
}

// scopeKey carries a Scope through a context.
type scopeKey struct{}

// ContextWithScope installs sc into ctx. A disabled scope returns ctx
// unchanged, keeping the disabled path allocation-free.
func ContextWithScope(ctx context.Context, sc Scope) context.Context {
	if sc.lane == nil {
		return ctx
	}
	return context.WithValue(ctx, scopeKey{}, sc)
}

// FromContext extracts the scope installed by ContextWithScope; the zero
// (disabled) scope when absent.
func FromContext(ctx context.Context) Scope {
	sc, _ := ctx.Value(scopeKey{}).(Scope)
	return sc
}
