package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestDisabledZeroAlloc pins the contract that a nil tracer makes every
// hot-path operation free: no allocations for scopes, spans, attributes,
// events, or context plumbing.
func TestDisabledZeroAlloc(t *testing.T) {
	var tr *Tracer
	sc := tr.Root()
	if sc.Enabled() {
		t.Fatal("nil tracer produced an enabled scope")
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := sc.Start("stage").Int("n", 42).Str("k", "v").Float("f", 1.5).Bool("b", true)
		sp.Event("tick")
		sc.Event("hit")
		sc.EventStr("miss", "key", "abc")
		child := sc.Under(sp).OnLane(tr.Lane(3))
		child.Start("inner").End()
		c2 := ContextWithScope(ctx, sc)
		_ = FromContext(c2)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled trace path allocated %.1f times per op, want 0", allocs)
	}
}

// TestSpanTree checks parent linkage, attribute capture, events, and that
// child intervals nest within their parents.
func TestSpanTree(t *testing.T) {
	tr := New(2)
	root := tr.Root()
	outer := root.Start("outer").Int("size", 7)
	inner := root.Under(outer).Start("inner")
	inner.Event("checkpoint")
	time.Sleep(time.Millisecond)
	inner.End()
	outer.End()

	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	o, i, ev := byName["outer"], byName["inner"], byName["checkpoint"]
	if o.Parent != 0 {
		t.Errorf("outer parent = %d, want 0", o.Parent)
	}
	if i.Parent != o.ID {
		t.Errorf("inner parent = %d, want outer id %d", i.Parent, o.ID)
	}
	if ev.Parent != i.ID || !ev.Instant {
		t.Errorf("checkpoint parent/instant = %d/%v, want %d/true", ev.Parent, ev.Instant, i.ID)
	}
	if i.Start < o.Start || i.End() > o.End() {
		t.Errorf("inner [%d,%d] not nested in outer [%d,%d]", i.Start, i.End(), o.Start, o.End())
	}
	if len(o.Attrs) != 1 || o.Attrs[0].Key != "size" || o.Attrs[0].Value() != int64(7) {
		t.Errorf("outer attrs = %+v, want one int size=7", o.Attrs)
	}
	if i.Dur <= 0 {
		t.Errorf("inner dur = %d, want > 0", i.Dur)
	}
}

// TestLaneAttribution checks that spans land on the lane they were
// started from and that out-of-range lanes are dropped, not misfiled.
func TestLaneAttribution(t *testing.T) {
	tr := New(2) // lanes 0,1,2
	tr.Lane(1).Scope(0).Start("a").End()
	tr.Lane(2).Scope(0).Start("b").End()
	if l := tr.Lane(3); l != nil {
		t.Fatalf("out-of-range lane = %v, want nil", l)
	}
	if l := tr.Lane(-1); l != nil {
		t.Fatalf("negative lane = %v, want nil", l)
	}
	lanes := map[string]int{}
	for _, r := range tr.Records() {
		lanes[r.Name] = r.Lane
	}
	if lanes["a"] != 1 || lanes["b"] != 2 {
		t.Errorf("lane attribution = %v, want a:1 b:2", lanes)
	}
}

// TestContextScope round-trips a scope through a context and confirms a
// disabled scope leaves the context untouched.
func TestContextScope(t *testing.T) {
	tr := New(1)
	sc := tr.Root()
	ctx := ContextWithScope(context.Background(), sc)
	if got := FromContext(ctx); got.Lane() != sc.Lane() {
		t.Error("scope did not round-trip through context")
	}
	base := context.Background()
	if ContextWithScope(base, Scope{}) != base {
		t.Error("disabled scope should return the context unchanged")
	}
	if FromContext(base).Enabled() {
		t.Error("empty context should yield a disabled scope")
	}
}

// TestLaneStress drives every lane from its own goroutine under -race:
// the single-writer-per-lane discipline must hold with concurrent Start,
// attribute, event, and End traffic plus the shared atomic ID sequence.
func TestLaneStress(t *testing.T) {
	const workers, spansPer = 8, 200
	tr := New(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := tr.Lane(w + 1).Scope(0)
			for i := 0; i < spansPer; i++ {
				sp := sc.Start("task").Int("i", int64(i))
				sc.Under(sp).Start("sub").End()
				sp.Event("tick")
				sp.End()
			}
		}(w)
	}
	root := tr.Root().Start("root")
	wg.Wait()
	root.End()

	recs := tr.Records()
	want := workers*spansPer*3 + 1
	if len(recs) != want {
		t.Fatalf("got %d records, want %d", len(recs), want)
	}
	seen := map[SpanID]bool{}
	for _, r := range recs {
		if seen[r.ID] {
			t.Fatalf("duplicate span id %d", r.ID)
		}
		seen[r.ID] = true
	}
}

// TestWriteChrome decodes the exporter's output and checks the
// trace-event schema: metadata rows name every lane, complete events
// carry ts/dur/pid/tid, instants carry s:"t", and unfinished spans are
// flagged instead of dropped.
func TestWriteChrome(t *testing.T) {
	tr := New(2)
	root := tr.Root()
	outer := root.Start("outer")
	root.Under(outer).Start("inner").End()
	outer.Scope().Event("blip")
	outer.End()
	tr.Lane(1).Scope(0).Start("dangling") // never ended

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v", err)
	}
	var meta, complete, instant, unfinished int
	threadNames := map[string]bool{}
	for _, ev := range got.TraceEvents {
		for _, k := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event missing required key %q: %v", k, ev)
			}
		}
		switch ev["ph"] {
		case "M":
			meta++
			args := ev["args"].(map[string]any)
			threadNames[args["name"].(string)] = true
		case "X":
			complete++
			if _, ok := ev["dur"]; !ok {
				t.Errorf("complete event missing dur: %v", ev)
			}
			if args, ok := ev["args"].(map[string]any); ok && args["unfinished"] == true {
				unfinished++
			}
		case "i":
			instant++
			if ev["s"] != "t" {
				t.Errorf("instant missing thread scope: %v", ev)
			}
		}
	}
	if meta != 3 || !threadNames["main"] || !threadNames["worker 0"] || !threadNames["worker 1"] {
		t.Errorf("thread metadata = %d rows %v, want main + worker 0 + worker 1", meta, threadNames)
	}
	if complete != 3 {
		t.Errorf("complete events = %d, want 3", complete)
	}
	if instant != 1 {
		t.Errorf("instant events = %d, want 1", instant)
	}
	if unfinished != 1 {
		t.Errorf("unfinished spans = %d, want 1", unfinished)
	}
	if err := tr.Lane(9).Tracer().WriteChrome(&buf); err == nil {
		t.Error("nil tracer WriteChrome should error")
	}
}

// TestCriticalPath builds a known tree and checks the backward walk:
// sequential children each land on the path (not just the last one),
// self times cover the gaps the walk attributes to each span, and path
// self times sum exactly to the root duration.
func TestCriticalPath(t *testing.T) {
	tr := New(1)
	// Hand-build records so durations are exact.
	lane := tr.Lane(0)
	mk := func(name string, parent SpanID, start, dur int64) SpanID {
		id := SpanID(tr.nextID.Add(1))
		lane.recs = append(lane.recs, Record{ID: id, Parent: parent, Name: name, Start: start, Dur: dur})
		return id
	}
	root := mk("run", 0, 0, 1000)
	mk("learn", root, 0, 100)          // first pipeline stage, ends at 100
	long := mk("fill", root, 100, 850) // second stage, ends at 950
	mk("dag", long, 200, 700)          // ends at 900
	mk("open", long, 100, -1)          // still open: skipped
	mk("other-root", 0, 0, 50)

	steps := tr.CriticalPath()
	names := make([]string, len(steps))
	var selfSum int64
	for i, s := range steps {
		names[i] = s.Name
		selfSum += s.SelfNS
	}
	if len(steps) != 4 || names[0] != "run" || names[1] != "learn" || names[2] != "fill" || names[3] != "dag" {
		t.Fatalf("critical path = %v, want [run learn fill dag]", names)
	}
	if steps[0].SelfNS != 50 { // only the 950..1000 tail is run's own
		t.Errorf("run self = %d, want 50", steps[0].SelfNS)
	}
	if steps[1].SelfNS != 100 { // learn is a leaf: full duration
		t.Errorf("learn self = %d, want 100", steps[1].SelfNS)
	}
	if steps[2].SelfNS != 150 { // 100..200 head + 900..950 tail
		t.Errorf("fill self = %d, want 150", steps[2].SelfNS)
	}
	if steps[3].SelfNS != 700 {
		t.Errorf("dag self = %d, want 700", steps[3].SelfNS)
	}
	if selfSum != 1000 {
		t.Errorf("path self times sum to %d, want the root duration 1000", selfSum)
	}
	wantDepths := []int{0, 1, 1, 2}
	for i, s := range steps {
		if s.Depth != wantDepths[i] {
			t.Errorf("step %s depth = %d, want %d", s.Name, s.Depth, wantDepths[i])
		}
	}

	out := FormatCriticalPath(steps)
	for _, want := range []string{"critical path", "run", "fill", "dag"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("formatted path missing %q:\n%s", want, out)
		}
	}
	var empty *Tracer
	if got := empty.CriticalPath(); got != nil {
		t.Errorf("nil tracer critical path = %v, want nil", got)
	}
	if FormatCriticalPath(nil) != "" {
		t.Error("empty path should format to empty string")
	}
}

// BenchmarkSpanEnabled measures the enabled-path cost of one span with an
// attribute — the number the ≤5% end-to-end overhead budget rests on.
func BenchmarkSpanEnabled(b *testing.B) {
	tr := New(1)
	sc := tr.Root()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc.Start("bench").Int("i", int64(i)).End()
	}
}

// BenchmarkSpanDisabled is the nil-tracer counterpart; it must report
// zero allocations.
func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	sc := tr.Root()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc.Start("bench").Int("i", int64(i)).End()
	}
}
