package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event JSON array ("JSON
// Array Format" per the trace-event spec): ph "X" complete events carry
// ts+dur, ph "i" instants carry ts only, ph "M" metadata names the
// threads. Timestamps are microseconds; floats keep sub-µs precision.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level object; the wrapper form (rather than a
// bare array) lets viewers attach display metadata later.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome serializes the merged trace as Chrome trace-event JSON,
// loadable in Perfetto and chrome://tracing. Each lane becomes its own
// thread track (tid = lane index, named via ph:"M" thread_name metadata),
// spans become ph:"X" complete events, and instant events ph:"i". Spans
// still open at export time get duration 0 and an "unfinished" arg so
// they remain visible rather than silently vanishing.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("trace: WriteChrome on nil tracer")
	}
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for i := range t.lanes {
		name := "main"
		if i > 0 {
			name = fmt.Sprintf("worker %d", i-1)
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i,
			Args: map[string]any{"name": name},
		})
	}
	for _, r := range t.Records() {
		ev := chromeEvent{
			Name: r.Name,
			Ts:   float64(r.Start) / 1e3,
			Pid:  1,
			Tid:  r.Lane,
			Args: map[string]any{"span_id": uint64(r.ID)},
		}
		if r.Parent != 0 {
			ev.Args["parent_id"] = uint64(r.Parent)
		}
		for _, a := range r.Attrs {
			ev.Args[a.Key] = a.Value()
		}
		if r.Instant {
			ev.Ph = "i"
			ev.Scope = "t"
		} else {
			ev.Ph = "X"
			dur := 0.0
			if r.Dur >= 0 {
				dur = float64(r.Dur) / 1e3
			} else {
				ev.Args["unfinished"] = true
			}
			ev.Dur = &dur
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
