package trace

import (
	"fmt"
	"sort"
	"strings"
)

// PathStep is one hop on the critical path: a span, its depth below the
// root, its total duration, and its self time (wall-clock on the path
// not covered by deeper steps). Serialized into RunReport as the
// critical_path field.
type PathStep struct {
	Name   string `json:"name"`
	ID     SpanID `json:"span_id"`
	Lane   int    `json:"lane"`
	Depth  int    `json:"depth"`
	DurNS  int64  `json:"dur_ns"`
	SelfNS int64  `json:"self_ns"`
}

// CriticalPath walks the span tree backward from the end of the longest
// root span: at each point in time the path follows the child that was
// last still running, then continues backward from that child's start —
// so sequential children (pipeline stages) each appear on the path, not
// just the final one. Each step's self time is the wall-clock the path
// spent inside that span but outside any deeper step; self times over a
// subtree sum to the subtree's duration. Instant events and still-open
// spans are skipped. Returns nil on a nil or empty trace.
func (t *Tracer) CriticalPath() []PathStep {
	if t == nil {
		return nil
	}
	b := cpBuilder{children: make(map[SpanID][]Record)}
	var roots []Record
	for _, r := range t.Records() {
		if r.Instant || r.Dur < 0 {
			continue
		}
		if r.Parent == 0 {
			roots = append(roots, r)
		} else {
			b.children[r.Parent] = append(b.children[r.Parent], r)
		}
	}
	var root Record
	for _, r := range roots {
		if root.ID == 0 || r.Dur > root.Dur {
			root = r
		}
	}
	if root.ID == 0 {
		return nil
	}
	b.walk(root, 0)
	return b.steps
}

// cpBuilder accumulates path steps in tree order: each span is followed
// by its on-path children in chronological order.
type cpBuilder struct {
	children map[SpanID][]Record
	steps    []PathStep
}

func (b *cpBuilder) walk(r Record, depth int) {
	idx := len(b.steps)
	b.steps = append(b.steps, PathStep{Name: r.Name, ID: r.ID, Lane: r.Lane, Depth: depth, DurNS: r.Dur})

	// Backward scan: repeatedly take the latest-ending unchosen child that
	// finished by the current frontier, credit the gap to r's self time,
	// and move the frontier to that child's start. Children are removed as
	// chosen so zero-duration spans cannot be picked twice.
	kids := append([]Record(nil), b.children[r.ID]...)
	sort.Slice(kids, func(i, j int) bool {
		if kids[i].End() != kids[j].End() {
			return kids[i].End() > kids[j].End()
		}
		return kids[i].Dur > kids[j].Dur
	})
	frontier := r.End()
	self := int64(0)
	var chain []Record
	for _, c := range kids {
		if c.End() > frontier {
			continue // overlaps a child already on the path
		}
		self += frontier - c.End()
		chain = append(chain, c)
		frontier = c.Start
	}
	self += frontier - r.Start
	if self < 0 {
		self = 0
	}

	// chain was collected latest-first; recurse in chronological order so
	// the rendered path reads forward in time.
	for i := len(chain) - 1; i >= 0; i-- {
		b.walk(chain[i], depth+1)
	}
	b.steps[idx].SelfNS = self
}

// formatPathMax bounds the console rendering; the report JSON always
// carries the full path.
const formatPathMax = 24

// FormatCriticalPath renders the chain as an indented table mirroring
// StageSummary's style: one line per step with total and self time. Long
// paths are truncated with a trailing count.
func FormatCriticalPath(steps []PathStep) string {
	if len(steps) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "critical path (total %s):\n", fmtNS(steps[0].DurNS))
	for i, s := range steps {
		if i == formatPathMax {
			fmt.Fprintf(&b, "  … (%d more steps; full path in the -report JSON)\n", len(steps)-i)
			break
		}
		indent := s.Depth
		if indent > 10 {
			indent = 10
		}
		fmt.Fprintf(&b, "  %s%-*s %12s self %12s  lane %d\n",
			strings.Repeat("  ", indent), 24-2*indent, s.Name, fmtNS(s.DurNS), fmtNS(s.SelfNS), s.Lane)
	}
	return b.String()
}

// fmtNS renders nanoseconds with ms/µs/ns units, matching the report's
// human summaries.
func fmtNS(ns int64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	}
	return fmt.Sprintf("%dns", ns)
}
