// Package obs is the stdlib-only observability layer of the pipeline: an
// atomic metrics registry (counters, gauges, bounded histograms with
// quantile snapshots) plus lightweight stage timers, a deterministic JSON
// run-report, and — in the debug subpackage — an expvar/pprof HTTP server.
//
// Every handle is nil-safe: a nil *Registry hands out nil *Counter,
// *Gauge, and *Histogram values whose methods are allocation-free no-ops,
// so instrumented hot paths cost nothing when observability is disabled.
// Callers resolve handles once (outside loops) and mutate them atomically.
//
// Counter content is deterministic for the synthesis pipeline: every
// counter records a schedule-independent quantity (tests run, cache
// misses, rows flagged), so a run-report's counters section is identical
// at any worker count and safe to diff in tests. Wall-clock lives only in
// histograms, which the report keeps in a separate stages section.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The nil counter is a
// no-op; methods never allocate.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can move in both directions (worker counts,
// queue depths). The nil gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set overwrites the gauge.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value reads the gauge; 0 on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histRing bounds a histogram's memory: only the most recent histRing
// observations feed the quantile snapshot, while count/sum/min/max cover
// everything ever observed.
const histRing = 512

// Histogram records int64 observations (the pipeline uses nanoseconds)
// with bounded memory. The nil histogram is a no-op; Observe never
// allocates.
type Histogram struct {
	mu    sync.Mutex
	count int64
	sum   int64
	min   int64
	max   int64
	ring  [histRing]int64
	n     int // filled entries of ring
	pos   int // next write position
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.ring[h.pos] = v
	h.pos = (h.pos + 1) % histRing
	if h.n < histRing {
		h.n++
	}
	h.mu.Unlock()
}

// Span is an in-flight stage timing; Stop records the elapsed time into
// the originating histogram. The zero Span (from a nil histogram) is a
// no-op that never reads the clock.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// Start opens a span on h.
func (h *Histogram) Start() Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, t0: time.Now()}
}

// Stop closes the span, observes the elapsed duration, and returns it.
func (s Span) Stop() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.t0)
	s.h.Observe(int64(d))
	return d
}

// Registry hands out named metric handles. The nil registry hands out nil
// handles, making every downstream mutation free; obtain handles once per
// stage, not per row.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	exacts   map[string]*Hist
	cvecs    map[string]*CounterVec
	hvecs    map[string]*HistogramVec
}

// New builds an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		exacts:   map[string]*Hist{},
		cvecs:    map[string]*CounterVec{},
		hvecs:    map[string]*HistogramVec{},
	}
}

// Counter returns the counter registered under name, creating it on first
// use. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. A nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Exact returns the exact mergeable histogram registered under name,
// creating it (with defaultHistShards writer shards) on first use. A nil
// registry returns a nil (no-op) histogram. Unlike Histogram's bounded
// ring, an exact histogram's quantiles cover every observation ever made
// and its Observe path is lock-free — the serving hot path uses these.
func (r *Registry) Exact(name string) *Hist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.exacts[name]
	if h == nil {
		h = NewHist(defaultHistShards())
		r.exacts[name] = h
	}
	return h
}

// CounterVec returns the labeled counter family registered under name,
// creating it with the given label keys on first use. Label keys are
// fixed at first registration; later calls return the existing vector
// regardless of the keys argument. A nil registry returns a nil vector.
func (r *Registry) CounterVec(name string, keys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.cvecs[name]
	if v == nil {
		v = &CounterVec{v: newVec(name, append([]string(nil), keys...), func() *Counter { return &Counter{} })}
		r.cvecs[name] = v
	}
	return v
}

// HistogramVec returns the labeled exact-histogram family registered
// under name, creating it with the given label keys on first use. A nil
// registry returns a nil vector.
func (r *Registry) HistogramVec(name string, keys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.hvecs[name]
	if v == nil {
		shards := defaultHistShards()
		v = &HistogramVec{
			v:      newVec(name, append([]string(nil), keys...), func() *Hist { return NewHist(shards) }),
			shards: shards,
		}
		r.hvecs[name] = v
	}
	return v
}

// quantile picks the q-quantile from sorted (nearest-rank).
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// testHookSnapshotUnlocked, when non-nil, runs after snapshot has copied
// the ring and released the histogram mutex, immediately before the
// sort. The regression test for scrape-stalls-Observe calls Observe from
// inside the hook — which deadlocks if the quantile work ever moves back
// under the lock. Production leaves it nil.
var testHookSnapshotUnlocked func()

// histSnapshot reduces a histogram: the aggregate fields and the ring
// copy are read under the lock, but the O(n log n) quantile sort runs
// after release — a slow scrape must never stall hot-path Observes.
func (h *Histogram) snapshot(name string) StageSnapshot {
	h.mu.Lock()
	s := StageSnapshot{
		Name:    name,
		Count:   h.count,
		Sampled: int64(h.n),
		TotalNS: h.sum,
		MinNS:   h.min,
		MaxNS:   h.max,
	}
	recent := append([]int64(nil), h.ring[:h.n]...)
	h.mu.Unlock()
	if hook := testHookSnapshotUnlocked; hook != nil {
		hook()
	}
	sort.Slice(recent, func(i, j int) bool { return recent[i] < recent[j] })
	s.P50NS = quantile(recent, 0.50)
	s.P90NS = quantile(recent, 0.90)
	s.P99NS = quantile(recent, 0.99)
	return s
}
