package obs

import (
	"math"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestHistLayout checks the bucket layout invariants exhaustively: every
// bucket's bounds map back to the bucket, buckets tile the value space
// with no gaps or overlaps, and relative width stays within the
// 1/histSubCount design bound.
func TestHistLayout(t *testing.T) {
	for i := 0; i < histNumBuckets; i++ {
		lo, hi := histLower(i), histUpper(i)
		if lo > hi {
			t.Fatalf("bucket %d: lower %d > upper %d", i, lo, hi)
		}
		if got := histIndex(lo); got != i {
			t.Fatalf("histIndex(lower(%d)=%d) = %d", i, lo, got)
		}
		if got := histIndex(hi); got != i {
			t.Fatalf("histIndex(upper(%d)=%d) = %d", i, hi, got)
		}
		if i > 0 {
			if prev := histUpper(i - 1); lo != prev+1 {
				t.Fatalf("gap between bucket %d (upper %d) and %d (lower %d)", i-1, prev, i, lo)
			}
		}
		if i < 2*histSubCount {
			if lo != hi {
				t.Fatalf("bucket %d should be single-value, got [%d,%d]", i, lo, hi)
			}
		} else if i < histOverflow {
			// Relative width: (hi-lo)/lo ≤ 1/histSubCount.
			if (hi-lo)*histSubCount > lo {
				t.Fatalf("bucket %d [%d,%d] wider than 1/%d relative", i, lo, hi, histSubCount)
			}
		}
	}
	if histUpper(histOverflow-1) != histMaxNS {
		t.Fatalf("last normal bucket upper = %d, want histMaxNS %d", histUpper(histOverflow-1), histMaxNS)
	}
	if histUpper(histOverflow) != math.MaxInt64 {
		t.Fatalf("overflow upper = %d, want MaxInt64", histUpper(histOverflow))
	}
	if histIndex(histMaxNS+1) != histOverflow {
		t.Fatalf("histMaxNS+1 should overflow, got bucket %d", histIndex(histMaxNS+1))
	}
	if histIndex(math.MaxInt64) != histOverflow {
		t.Fatalf("MaxInt64 should overflow, got bucket %d", histIndex(math.MaxInt64))
	}
	if histIndex(-7) != 0 {
		t.Fatalf("negative values should clamp to bucket 0, got %d", histIndex(-7))
	}
}

// histTestValues draws a latency-shaped sample: mixed magnitudes from
// single-digit nanoseconds through the overflow region.
func histTestValues(rng *rand.Rand, n int) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		switch rng.Intn(10) {
		case 0:
			vals[i] = rng.Int63n(64) // exact single-value buckets
		case 1:
			vals[i] = histMaxNS + rng.Int63n(1<<20) // overflow
		default:
			vals[i] = rng.Int63n(int64(1) << uint(4+rng.Intn(40)))
		}
	}
	return vals
}

// TestHistShardedMatchesSingleStream is the core mergeable property:
// observations spread across shards (and across separate histograms whose
// snapshots are merged in any order) produce a snapshot bit-identical to
// a single-stream oracle that saw every value on one shard.
func TestHistShardedMatchesSingleStream(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vals := histTestValues(rng, 5000)

	oracle := NewHist(1)
	for _, v := range vals {
		oracle.Observe(v)
	}
	want := oracle.Snapshot("lat")

	sharded := NewHist(8)
	for i, v := range vals {
		sharded.ObserveShard(i, v)
	}
	if got := sharded.Snapshot("lat"); !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded snapshot differs from single-stream oracle:\ngot  %+v\nwant %+v", got, want)
	}

	// Split into uneven chunks, snapshot each independently, then merge
	// left-to-right, right-to-left, and pairwise — associativity and
	// commutativity mean every order is bit-identical.
	bounds := []int{0, 17, 1200, 1201, 3500, 5000}
	snaps := make([]HistSnapshot, 0, len(bounds)-1)
	for i := 1; i < len(bounds); i++ {
		h := NewHist(4)
		for j, v := range vals[bounds[i-1]:bounds[i]] {
			h.ObserveShard(j, v)
		}
		snaps = append(snaps, h.Snapshot("lat"))
	}

	ltr := HistSnapshot{Name: "lat"}
	for _, s := range snaps {
		ltr.Merge(s)
	}
	if !reflect.DeepEqual(ltr, want) {
		t.Fatalf("left-to-right merge differs from oracle:\ngot  %+v\nwant %+v", ltr, want)
	}

	rtl := HistSnapshot{Name: "lat"}
	for i := len(snaps) - 1; i >= 0; i-- {
		rtl.Merge(snaps[i])
	}
	if !reflect.DeepEqual(rtl, want) {
		t.Fatalf("right-to-left merge differs from oracle:\ngot  %+v\nwant %+v", rtl, want)
	}

	// Tree shape: ((s0+s1) + (s2+s3)) + s4.
	left, right := snaps[0], snaps[2]
	left.Merge(snaps[1])
	right.Merge(snaps[3])
	left.Merge(right)
	left.Merge(snaps[4])
	if !reflect.DeepEqual(left, want) {
		t.Fatalf("tree merge differs from oracle:\ngot  %+v\nwant %+v", left, want)
	}
}

// TestHistQuantileBounds checks Quantile against a sorted-slice
// nearest-rank oracle: the true quantile must lie inside [lo, hi], and
// the interval must respect the layout's relative-error bound.
func TestHistQuantileBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 10, 1000, 4096} {
		vals := histTestValues(rng, n)
		h := NewHist(4)
		for i, v := range vals {
			h.ObserveShard(i, v)
		}
		snap := h.Snapshot("q")
		sorted := append([]int64(nil), vals...)
		for i := range sorted {
			if sorted[i] < 0 {
				sorted[i] = 0
			}
		}
		sortInt64s(sorted)
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
			rank := int64(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			truth := sorted[rank-1]
			lo, hi := snap.Quantile(q)
			if truth < lo || truth > hi {
				t.Fatalf("n=%d q=%g: true quantile %d outside [%d,%d]", n, q, truth, lo, hi)
			}
			if hi != math.MaxInt64 && lo > 0 && (hi-lo)*histSubCount > lo {
				t.Fatalf("n=%d q=%g: bound [%d,%d] wider than 1/%d relative", n, q, lo, hi, histSubCount)
			}
		}
	}

	var empty HistSnapshot
	if lo, hi := empty.Quantile(0.5); lo != 0 || hi != 0 {
		t.Fatalf("empty quantile = (%d,%d), want (0,0)", lo, hi)
	}
}

func sortInt64s(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestHistExactBelowSubCount: values under 2*histSubCount land in
// single-value buckets, so quantile bounds collapse to the exact value.
func TestHistExactBelowSubCount(t *testing.T) {
	h := NewHist(2)
	for v := int64(0); v < 64; v++ {
		h.Observe(v)
	}
	snap := h.Snapshot("exact")
	// Nearest rank: ⌈0.5·64⌉ = 32 → the 32nd smallest value, which is 31.
	lo, hi := snap.Quantile(0.5)
	if lo != hi || lo != 31 {
		t.Fatalf("p50 of 0..63 = [%d,%d], want exactly [31,31]", lo, hi)
	}
}

func TestHistCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := NewHist(4)
	for i, v := range histTestValues(rng, 2000) {
		h.ObserveShard(i, v)
	}
	snap := h.Snapshot("wire")
	snap.Labels = []Label{{Key: "endpoint", Value: "check"}}

	data, err := snap.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	data2, err := snap.MarshalBinary()
	if err != nil {
		t.Fatalf("second marshal: %v", err)
	}
	if string(data) != string(data2) {
		t.Fatal("marshal is not deterministic")
	}

	got := HistSnapshot{Name: "wire", Labels: snap.Labels}
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, snap)
	}

	// Empty snapshot round-trips too.
	var empty, emptyOut HistSnapshot
	data, err = empty.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal empty: %v", err)
	}
	if err := emptyOut.UnmarshalBinary(data); err != nil {
		t.Fatalf("unmarshal empty: %v", err)
	}
	if emptyOut.Count != 0 || len(emptyOut.Buckets) != 0 {
		t.Fatalf("empty round trip = %+v", emptyOut)
	}
}

func TestHistCodecRejectsCorruption(t *testing.T) {
	h := NewHist(1)
	for _, v := range []int64{5, 500, 50000, histMaxNS + 1} {
		h.Observe(v)
	}
	snap := h.Snapshot("c")
	good, err := snap.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}

	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      append([]byte("NOPE1"), good[5:]...),
		"truncated":      good[:len(good)-1],
		"trailing bytes": append(append([]byte(nil), good...), 0x00),
	}
	for name, data := range cases {
		var out HistSnapshot
		if err := out.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: unmarshal accepted corrupt payload", name)
		}
	}

	// A payload whose bucket counts do not sum to the header count must be
	// rejected — the total is recomputed, never trusted.
	forged := HistSnapshot{
		Count: 99, SumNS: snap.SumNS, MinNS: snap.MinNS, MaxNS: snap.MaxNS,
		Buckets: append([]HistBucket(nil), snap.Buckets...),
	}
	data, err := forged.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal forged: %v", err)
	}
	var out HistSnapshot
	if err := out.UnmarshalBinary(data); err == nil {
		t.Error("unmarshal accepted bucket-sum/count mismatch")
	}

	// Out-of-order buckets must be rejected at marshal time.
	swapped := snap
	swapped.Buckets = append([]HistBucket(nil), snap.Buckets...)
	swapped.Buckets[0], swapped.Buckets[1] = swapped.Buckets[1], swapped.Buckets[0]
	if _, err := swapped.MarshalBinary(); err == nil {
		t.Error("marshal accepted out-of-order buckets")
	}
}

func FuzzHistCodec(f *testing.F) {
	h := NewHist(2)
	for _, v := range []int64{1, 33, 4096, histMaxNS + 5} {
		h.Observe(v)
	}
	seed, err := h.Snapshot("f").MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(histCodecMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		var s HistSnapshot
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		// Accepted payloads must be internally consistent and re-encode
		// to an equivalent snapshot.
		var total int64
		for _, b := range s.Buckets {
			total += b.Count
		}
		if total != s.Count {
			t.Fatalf("accepted inconsistent snapshot: bucket sum %d != count %d", total, s.Count)
		}
		re, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted payload failed: %v", err)
		}
		var s2 HistSnapshot
		if err := s2.UnmarshalBinary(re); err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("codec not idempotent:\n%+v\n%+v", s, s2)
		}
	})
}

func TestHistNilSafe(t *testing.T) {
	var h *Hist
	h.Observe(5)
	h.ObserveShard(3, 5)
	snap := h.Snapshot("nil")
	if snap.Count != 0 || snap.Name != "nil" {
		t.Fatalf("nil snapshot = %+v", snap)
	}
}

// TestHistObserveZeroAlloc pins the hot path: after the shard is
// installed, ObserveShard must not allocate — the serving loop calls it
// once per request under the admission gate.
func TestHistObserveZeroAlloc(t *testing.T) {
	h := NewHist(4)
	h.ObserveShard(2, 100) // install the shard outside the measured region
	if allocs := testing.AllocsPerRun(1000, func() {
		h.ObserveShard(2, 12345)
	}); allocs != 0 {
		t.Fatalf("ObserveShard allocates %v per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(67890)
	}); allocs != 0 {
		t.Fatalf("Observe allocates %v per op, want 0", allocs)
	}
}

// TestHistConcurrent exercises Observe/Snapshot races under -race and
// checks no observation is lost once writers stop.
func TestHistConcurrent(t *testing.T) {
	h := NewHist(8)
	const writers, per = 8, 2000
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				h.ObserveShard(w, int64(i))
			}
		}(w)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				done <- struct{}{}
				return
			default:
				h.Snapshot("race")
			}
		}
	}()
	for i := 0; i < writers; i++ {
		<-done
	}
	close(stop)
	<-done
	snap := h.Snapshot("race")
	if snap.Count != writers*per {
		t.Fatalf("count = %d, want %d", snap.Count, writers*per)
	}
	if snap.SumNS != writers*int64(per)*(per-1)/2 {
		t.Fatalf("sum = %d, want %d", snap.SumNS, writers*int64(per)*(per-1)/2)
	}
}

func BenchmarkHistObserve(b *testing.B) {
	h := NewHist(defaultHistShards())
	var tickets atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		ticket := int(tickets.Add(1))
		v := int64(1)
		for pb.Next() {
			h.ObserveShard(ticket, v)
			v = (v * 2862933555777941757) & histMaxNS
		}
	})
}
