package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: every handle from a nil registry is a usable no-op.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Errorf("nil counter Value = %d, want 0", c.Value())
	}
	g := r.Gauge("y")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Errorf("nil gauge Value = %d, want 0", g.Value())
	}
	h := r.Histogram("z")
	h.Observe(42)
	sp := h.Start()
	if d := sp.Stop(); d != 0 {
		t.Errorf("nil span Stop = %v, want 0", d)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Stages) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
	if s := r.StageSummary(); s != "" {
		t.Errorf("nil registry StageSummary = %q, want empty", s)
	}
}

// TestCounterGaugeBasics: handles are cached per name and accumulate.
func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("rows")
	c.Inc()
	c.Add(9)
	if r.Counter("rows").Value() != 10 {
		t.Errorf("counter = %d, want 10", r.Counter("rows").Value())
	}
	if r.Counter("rows") != c {
		t.Error("Counter not cached by name")
	}
	g := r.Gauge("workers")
	g.Set(8)
	g.Add(-2)
	if g.Value() != 6 {
		t.Errorf("gauge = %d, want 6", g.Value())
	}
}

// TestHistogramQuantiles: min/max/sum over everything, quantiles over the
// ring, even past the ring boundary.
func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("stage")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	s := h.snapshot("stage")
	if s.Count != 100 || s.MinNS != 1 || s.MaxNS != 100 || s.TotalNS != 5050 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.Sampled != 100 {
		t.Errorf("sampled = %d, want 100 (ring not yet full)", s.Sampled)
	}
	if s.P50NS < 45 || s.P50NS > 55 {
		t.Errorf("p50 = %d, want ~50", s.P50NS)
	}
	if s.P99NS < 95 || s.P99NS > 100 {
		t.Errorf("p99 = %d, want ~99", s.P99NS)
	}

	// Overflow the ring: stats still cover all observations.
	for i := 0; i < histRing*2; i++ {
		h.Observe(7)
	}
	s = h.snapshot("stage")
	if s.Count != int64(100+histRing*2) {
		t.Errorf("count after overflow = %d", s.Count)
	}
	if s.Sampled != histRing {
		t.Errorf("sampled after overflow = %d, want %d (ring capacity)", s.Sampled, histRing)
	}
	if s.P50NS != 7 {
		t.Errorf("p50 after ring overflow = %d, want 7 (ring holds only recent values)", s.P50NS)
	}
	if s.MinNS != 1 || s.MaxNS != 100 {
		t.Errorf("min/max must survive ring eviction: %+v", s)
	}
}

// TestSpan records a plausible duration.
func TestSpan(t *testing.T) {
	r := New()
	sp := r.Histogram("work").Start()
	time.Sleep(time.Millisecond)
	d := sp.Stop()
	if d < time.Millisecond {
		t.Errorf("span duration %v < 1ms", d)
	}
	s := r.Snapshot()
	if len(s.Stages) != 1 || s.Stages[0].Count != 1 || s.Stages[0].TotalNS < int64(time.Millisecond) {
		t.Errorf("stage snapshot = %+v", s.Stages)
	}
}

// TestConcurrentAccess is the -race guard for registry and handles.
func TestConcurrentAccess(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(int64(j))
				r.Histogram("h").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Snapshot().Stages[0].Count; got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

// TestWriteReport round-trips the JSON document.
func TestWriteReport(t *testing.T) {
	r := New()
	r.Counter("pc.ci_tests").Add(12)
	r.Gauge("synth.workers").Set(4)
	r.Histogram("synth.learn").Observe(1000)

	path := filepath.Join(t.TempDir(), "report.json")
	if err := WriteReport(path, "synth", r); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep RunReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Command != "synth" {
		t.Errorf("command = %q", rep.Command)
	}
	if rep.Counters["pc.ci_tests"] != 12 {
		t.Errorf("counters = %v", rep.Counters)
	}
	if rep.Gauges["synth.workers"] != 4 {
		t.Errorf("gauges = %v", rep.Gauges)
	}
	if len(rep.Stages) != 1 || rep.Stages[0].Name != "synth.learn" {
		t.Errorf("stages = %+v", rep.Stages)
	}
	if rep.Stages[0].Sampled != 1 {
		t.Errorf("stage sampled = %d, want 1", rep.Stages[0].Sampled)
	}
	if !strings.Contains(string(data), `"sampled"`) {
		t.Error("report JSON missing the sampled field")
	}
}

// TestWriteReportNilRegistry: -report without instrumentation still emits
// valid JSON.
func TestWriteReportNilRegistry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := WriteReport(path, "check", nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep RunReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Counters == nil || rep.Stages == nil {
		t.Errorf("empty report should have non-nil sections: %+v", rep)
	}
}

// TestStageSummary renders one aligned line per stage.
func TestStageSummary(t *testing.T) {
	r := New()
	r.Histogram("synth.learn").Observe(int64(3 * time.Millisecond))
	r.Histogram("synth.enum").Observe(int64(time.Millisecond))
	got := r.StageSummary()
	if !strings.Contains(got, "synth.learn") || !strings.Contains(got, "synth.enum") {
		t.Errorf("summary missing stages:\n%s", got)
	}
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 3 { // header + 2 stages
		t.Errorf("summary has %d lines, want 3:\n%s", len(lines), got)
	}
	if !strings.Contains(lines[0], "sampled") || !strings.Contains(lines[0], "last 512 samples") {
		t.Errorf("header missing sampled column or window note:\n%s", lines[0])
	}
}

// TestDisabledPathZeroAlloc is the acceptance-criteria check: with a nil
// registry every hot-path operation performs zero allocations.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		h.Observe(5)
		sp := h.Start()
		sp.Stop()
	})
	if allocs != 0 {
		t.Errorf("disabled hot path allocates %v per op, want 0", allocs)
	}
}

// TestEnabledCounterZeroAlloc: even enabled, counter/gauge/histogram
// updates through pre-resolved handles must not allocate.
func TestEnabledCounterZeroAlloc(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(2)
		h.Observe(9)
	})
	if allocs != 0 {
		t.Errorf("enabled hot path allocates %v per op, want 0", allocs)
	}
}

func BenchmarkCounterDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := New().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	var r *Registry
	h := r.Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Start().Stop()
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	h := New().Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
