package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labeled metric vectors: a CounterVec or HistogramVec is one metric
// family whose children are addressed by an ordered tuple of label
// values ({dataset, endpoint, engine, verdict}, ...), so serving metrics
// can be split per dimension instead of one global aggregate.
//
// The read path is lock-free: children live in a copy-on-write map
// behind an atomic pointer (the same idiom as the serve program
// registry), so With on an existing label set is a map lookup. Inserts
// take a mutex and swap a copied map — rare, since label sets are
// request-shaped, not row-shaped.
//
// Cardinality is bounded: once a vector holds vecMaxChildren distinct
// label sets, further new label sets all collapse into a single overflow
// child whose every label value is vecOverflowValue. Counts are never
// dropped — a label-cardinality bug degrades resolution, not totals, and
// cannot grow the registry without bound.

// vecMaxChildren bounds the distinct label sets per vector.
const vecMaxChildren = 64

// vecOverflowValue is the label value of the overflow child.
const vecOverflowValue = "_other"

// vecSep joins label values into a map key; 0x1f (ASCII unit separator)
// cannot collide with printable label values.
const vecSep = "\x1f"

// vecChild pairs a child's label values with its metric.
type vecChild[T any] struct {
	values []string
	metric T
}

// vec is the shared engine behind CounterVec and HistogramVec.
type vec[T any] struct {
	name string
	keys []string
	newT func() T

	mu       sync.Mutex
	children atomic.Pointer[map[string]*vecChild[T]]
}

func newVec[T any](name string, keys []string, newT func() T) *vec[T] {
	v := &vec[T]{name: name, keys: keys, newT: newT}
	m := map[string]*vecChild[T]{}
	v.children.Store(&m)
	return v
}

// with returns the child for the given label values, creating it on
// first use and collapsing into the overflow child once the vector is at
// its cardinality bound. len(values) must equal len(keys); excess values
// are truncated and missing ones filled with "" so a miscounted call
// site degrades rather than panics on the hot path.
func (v *vec[T]) with(values []string) T {
	if len(values) != len(v.keys) {
		fixed := make([]string, len(v.keys))
		copy(fixed, values)
		values = fixed
	}
	key := strings.Join(values, vecSep)
	if c, ok := (*v.children.Load())[key]; ok {
		return c.metric
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	cur := *v.children.Load()
	if c, ok := cur[key]; ok {
		return c.metric
	}
	if len(cur) >= vecMaxChildren {
		overflow := make([]string, len(v.keys))
		for i := range overflow {
			overflow[i] = vecOverflowValue
		}
		key = strings.Join(overflow, vecSep)
		if c, ok := cur[key]; ok {
			return c.metric
		}
		values = overflow
	}
	child := &vecChild[T]{values: append([]string(nil), values...), metric: v.newT()}
	next := make(map[string]*vecChild[T], len(cur)+1)
	for k, c := range cur {
		next[k] = c
	}
	next[key] = child
	v.children.Store(&next)
	return child.metric
}

// sortedChildren returns the children ordered by label values — the
// deterministic order snapshots and renderers use.
func (v *vec[T]) sortedChildren() []*vecChild[T] {
	cur := *v.children.Load()
	keys := make([]string, 0, len(cur))
	for k := range cur {
		keys = append(keys, k)
	}
	// Sorting the joined keys compares label values field by field,
	// because the separator sorts below all printable characters.
	sort.Strings(keys)
	out := make([]*vecChild[T], len(keys))
	for i, k := range keys {
		out[i] = cur[k]
	}
	return out
}

// labels zips the vector's keys with a child's values.
func (v *vec[T]) labels(c *vecChild[T]) []Label {
	out := make([]Label, len(v.keys))
	for i, k := range v.keys {
		out[i] = Label{Key: k, Value: c.values[i]}
	}
	return out
}

// CounterVec is a labeled family of counters. The nil vector hands out
// nil (no-op) counters.
type CounterVec struct {
	v *vec[*Counter]
}

// With returns the counter for the given label values, in the key order
// the vector was declared with.
func (cv *CounterVec) With(values ...string) *Counter {
	if cv == nil {
		return nil
	}
	return cv.v.with(values)
}

// HistogramVec is a labeled family of exact histograms (Hist). The nil
// vector hands out nil (no-op) histograms.
type HistogramVec struct {
	v      *vec[*Hist]
	shards int
}

// With returns the histogram for the given label values.
func (hv *HistogramVec) With(values ...string) *Hist {
	if hv == nil {
		return nil
	}
	return hv.v.with(values)
}

// LabeledCounter is one child of a CounterVec in a snapshot.
type LabeledCounter struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels"`
	Value  int64   `json:"value"`
}
