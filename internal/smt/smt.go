// Package smt implements the OptSMT-style monolithic synthesis baseline of
// §8.3: instead of sketching, the whole program space is encoded as one
// optimization problem — a selector variable per (sketch, condition,
// literal) choice and a soft clause per (row, branch) agreement — and
// solved by exhaustive branch-and-bound under a step budget. The encoder
// reports the clause counts that explode ("tens of millions of clauses")
// and the solver gives up with ErrBudget on anything beyond toy inputs,
// reproducing the paper's finding that monolithic synthesis does not scale.
package smt

import (
	"errors"
	"fmt"
	"math"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/sketch"
	"github.com/guardrail-db/guardrail/internal/synth"
)

// ErrBudget is returned when the solver exceeds its step budget — the
// analogue of the paper's 24-hour timeout.
var ErrBudget = errors.New("smt: step budget exhausted without a satisfying solution")

// Encoding summarizes the monolithic problem size without materializing it.
type Encoding struct {
	NumSketches int
	NumVars     float64 // selector variables
	NumClauses  float64 // one-hot + per-row soft clauses
}

// Encode sizes the monolithic encoding for rel with GIVEN sets up to
// maxGiven attributes. Conditions range over the full Cartesian product of
// determinant domains (comb(det) in Alg. 1), which is what makes the
// encoding explode on real schemas.
func Encode(rel *dataset.Relation, maxGiven int) Encoding {
	if maxGiven <= 0 {
		maxGiven = 3
	}
	m := rel.NumAttrs()
	n := float64(rel.NumRows())
	var e Encoding
	cards := make([]float64, m)
	for a := 0; a < m; a++ {
		cards[a] = float64(rel.Cardinality(a))
		if cards[a] == 0 {
			cards[a] = 1
		}
	}
	var walk func(start int, chosen []int, prod float64)
	walk = func(start int, chosen []int, prod float64) {
		if len(chosen) > 0 {
			for on := 0; on < m; on++ {
				if containsInt(chosen, on) {
					continue
				}
				e.NumSketches++
				conds := prod
				c := cards[on]
				// One selector per (condition, literal); one-hot clauses per
				// condition; one soft clause per (row, literal).
				e.NumVars += conds * c
				e.NumClauses += conds*(c*(c-1)/2+1) + n*c
			}
		}
		if len(chosen) == maxGiven {
			return
		}
		for a := start; a < m; a++ {
			walk(a+1, append(chosen, a), prod*cards[a])
		}
	}
	walk(0, nil, 1)
	return e
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Options tunes the baseline solver.
type Options struct {
	// Epsilon is the ε-validity target the solution must meet.
	Epsilon float64
	// MaxGiven caps GIVEN-set size (default 2).
	MaxGiven int
	// Budget caps elementary solver steps (default 5e6).
	Budget int64
}

func (o *Options) defaults() {
	if o.Epsilon == 0 {
		o.Epsilon = 0.02
	}
	if o.MaxGiven == 0 {
		o.MaxGiven = 2
	}
	if o.Budget == 0 {
		o.Budget = 5_000_000
	}
}

// Result carries the baseline outcome.
type Result struct {
	Program  *dsl.Program
	Encoding Encoding
	Steps    int64
	Coverage float64
}

// Synthesize runs the monolithic baseline: enumerate every sketch, evaluate
// every fill exhaustively, and assemble the loss-minimal ε-valid program.
// Each (row, condition, literal) evaluation costs one step; exceeding the
// budget returns ErrBudget together with the encoding statistics, so
// callers can report the blow-up the way §8.3 does.
func Synthesize(rel *dataset.Relation, opts Options) (*Result, error) {
	opts.defaults()
	res := &Result{Encoding: Encode(rel, opts.MaxGiven)}
	m := rel.NumAttrs()
	n := rel.NumRows()
	if n == 0 || m < 2 {
		return nil, fmt.Errorf("smt: relation too small")
	}

	prog := &dsl.Program{}
	var steps int64
	var sketches []sketch.Stmt
	var walk func(start int, chosen []int)
	walk = func(start int, chosen []int) {
		if len(chosen) > 0 {
			for on := 0; on < m; on++ {
				if containsInt(chosen, on) {
					continue
				}
				sketches = append(sketches, sketch.Stmt{Given: append([]int(nil), chosen...), On: on})
			}
		}
		if len(chosen) == opts.MaxGiven {
			return
		}
		for a := start; a < m; a++ {
			walk(a+1, append(chosen, a))
		}
	}
	walk(0, nil)

	bestCov := map[int]float64{} // dependent attr -> best statement coverage
	bestStmt := map[int]dsl.Statement{}
	for _, sk := range sketches {
		// Cost model: the optimizing solver unit-propagates the sketch's
		// clauses once per warranted condition (the comb(det) Cartesian
		// product), so the per-sketch work is clauses x conditions. This is
		// what buries OptSMT on dataset-scale inputs (§8.3) even though a
		// group-by evaluates the same sketch in O(n).
		c := int64(rel.Cardinality(sk.On))
		conds := int64(1)
		for _, g := range sk.Given {
			conds *= int64(rel.Cardinality(g))
			if conds > 1<<30 {
				break
			}
		}
		clauses := int64(n)*c + conds*(c*(c-1)/2+1)
		steps += clauses * conds
		if steps > opts.Budget {
			res.Steps = steps
			return res, ErrBudget
		}
		stmt, ok := synth.FillStatement(rel, sk, synth.FillOptions{Epsilon: opts.Epsilon, MinSupport: 1})
		if !ok {
			continue
		}
		cov := dsl.StatementCoverage(stmt, rel)
		if cov > bestCov[sk.On] {
			bestCov[sk.On] = cov
			bestStmt[sk.On] = stmt
		}
	}
	for on := 0; on < m; on++ {
		if s, ok := bestStmt[on]; ok {
			prog.Stmts = append(prog.Stmts, s)
		}
	}
	res.Program = prog
	res.Steps = steps
	res.Coverage = dsl.Coverage(prog, rel)
	return res, nil
}

// ClausesHuman renders a clause count like "2.3e7" for reporting.
func ClausesHuman(c float64) string {
	if c < 1e6 {
		return fmt.Sprintf("%.0f", c)
	}
	exp := math.Floor(math.Log10(c))
	return fmt.Sprintf("%.2fe%d", c/math.Pow(10, exp), int(exp))
}
