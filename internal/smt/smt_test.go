package smt

import (
	"errors"
	"testing"

	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/dsl"
)

func TestEncodeGrowsWithSchema(t *testing.T) {
	small, err := bn.PostalChain(4).Sample(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := bn.RandomSEM(bn.SEMSpec{Attrs: 15, Seed: 2}).Sample(200, 2)
	if err != nil {
		t.Fatal(err)
	}
	es := Encode(small, 3)
	eb := Encode(big, 3)
	if es.NumClauses <= 0 || eb.NumClauses <= 0 {
		t.Fatal("no clauses counted")
	}
	if eb.NumClauses < 100*es.NumClauses {
		t.Fatalf("encoding should explode with width: %g vs %g", eb.NumClauses, es.NumClauses)
	}
	if eb.NumSketches <= es.NumSketches {
		t.Fatal("sketch count did not grow")
	}
}

func TestSynthesizeToyInput(t *testing.T) {
	rel, err := bn.PostalChain(6).Sample(300, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(rel, Options{Epsilon: 0.01, MaxGiven: 1, Budget: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Program.Stmts) == 0 {
		t.Fatal("no program found on toy input")
	}
	if !dsl.EpsValid(res.Program, rel, 0.01) {
		t.Fatal("baseline program not ε-valid")
	}
	if res.Coverage <= 0 {
		t.Fatalf("coverage = %g", res.Coverage)
	}
}

func TestSynthesizeBudgetExhaustion(t *testing.T) {
	// Dataset-scale input: the monolithic search must give up (§8.3).
	rel, err := bn.RandomSEM(bn.SEMSpec{Attrs: 12, Seed: 4}).Sample(5000, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Synthesize(rel, Options{MaxGiven: 3, Budget: 100_000})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
}

func TestSynthesizeDegenerate(t *testing.T) {
	rel, err := bn.PostalChain(4).Sample(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Synthesize(rel, Options{}); err == nil {
		t.Fatal("empty relation accepted")
	}
}

func TestClausesHuman(t *testing.T) {
	if got := ClausesHuman(500); got != "500" {
		t.Fatalf("got %q", got)
	}
	if got := ClausesHuman(2.2e13); got != "2.20e13" {
		t.Fatalf("got %q", got)
	}
}
