package sat

import (
	"math/rand"
	"testing"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
)

// The differential oracle: every solver verdict must agree with brute-force
// row enumeration over the full universe. The grid covers 3 attributes with
// domain sizes <= 3, atom literals both inside and outside the dictionary
// (including the Missing sentinel), and both universes (missing-aware and
// values-only). This is the exactness contract the analysis passes build
// on.

// oracleDomains is the grid's schema: cardinalities 2, 3, 2.
var oracleDomains = Domains{2, 3, 2}

// enumerateRows lists every universe row for dom.
func enumerateRows(dom Domains, missing bool) [][]int32 {
	rows := [][]int32{{}}
	for a := 0; a < len(dom); a++ {
		var values []int32
		if missing {
			values = append(values, dataset.Missing)
		}
		for v := int32(0); int(v) < dom.Card(a); v++ {
			values = append(values, v)
		}
		var next [][]int32
		for _, r := range rows {
			for _, v := range values {
				nr := append(append([]int32(nil), r...), v)
				next = append(next, nr)
			}
		}
		rows = next
	}
	return rows
}

// gridConditions enumerates the empty condition, all single atoms, and all
// ordered atom pairs, with literals drawn from {-1, 0, 1, 2, 3} so
// out-of-domain codes and the Missing sentinel are both exercised.
func gridConditions() []dsl.Condition {
	values := []int32{dataset.Missing, 0, 1, 2, 3}
	var atoms []dsl.Pred
	for a := 0; a < len(oracleDomains); a++ {
		for _, v := range values {
			atoms = append(atoms, dsl.Pred{Attr: a, Value: v})
		}
	}
	conds := []dsl.Condition{nil}
	for _, p := range atoms {
		conds = append(conds, dsl.Condition{p})
	}
	for _, p := range atoms {
		for _, q := range atoms {
			conds = append(conds, dsl.Condition{p, q})
		}
	}
	return conds
}

func oracleMatches(c dsl.Condition, row []int32) bool { return c.Matches(row) }

func oracleSatisfiable(c dsl.Condition, rows [][]int32) bool {
	for _, r := range rows {
		if oracleMatches(c, r) {
			return true
		}
	}
	return false
}

func oracleImplies(a, b dsl.Condition, rows [][]int32) bool {
	for _, r := range rows {
		if oracleMatches(a, r) && !oracleMatches(b, r) {
			return false
		}
	}
	return true
}

func oracleSatMinus(pos dsl.Condition, minus []DNF, rows [][]int32) bool {
	for _, r := range rows {
		if !oracleMatches(pos, r) {
			continue
		}
		hit := false
		for _, m := range minus {
			if m.Matches(r) {
				hit = true
				break
			}
		}
		if !hit {
			return true
		}
	}
	return false
}

func oracleImpliesDNF(a, b DNF, rows [][]int32) bool {
	for _, r := range rows {
		if a.Matches(r) && !b.Matches(r) {
			return false
		}
	}
	return true
}

// universes under test: the missing-aware row universe and the values-only
// one.
func oracleUniverses() []struct {
	name    string
	solver  func() *Solver
	missing bool
} {
	return []struct {
		name    string
		solver  func() *Solver
		missing bool
	}{
		{"missing-aware", func() *Solver { return NewSolver(oracleDomains) }, true},
		{"values-only", func() *Solver { return NewValueSolver(oracleDomains) }, false},
	}
}

// TestOracleConditions checks Satisfiable/Implies/Equivalent for every
// condition pair on the grid against brute force.
func TestOracleConditions(t *testing.T) {
	conds := gridConditions()
	for _, u := range oracleUniverses() {
		t.Run(u.name, func(t *testing.T) {
			rows := enumerateRows(oracleDomains, u.missing)
			s := u.solver()
			for _, c := range conds {
				if got, want := s.SatisfiableCond(c), oracleSatisfiable(c, rows); got != want {
					t.Fatalf("SatisfiableCond(%v) = %v, oracle %v", c, got, want)
				}
			}
			for i, a := range conds {
				for j, b := range conds {
					got := s.ImpliesCond(a, b)
					want := oracleImplies(a, b, rows)
					if got != want {
						t.Fatalf("ImpliesCond(%v, %v) = %v, oracle %v (pair %d,%d)", a, b, got, want, i, j)
					}
					if ge, we := s.EquivalentCond(a, b), want && oracleImplies(b, a, rows); ge != we {
						t.Fatalf("EquivalentCond(%v, %v) = %v, oracle %v", a, b, ge, we)
					}
					if go2, wo := s.OverlapCond(a, b), oracleSatMinus(append(append(dsl.Condition{}, a...), b...), nil, rows); go2 != wo {
						t.Fatalf("OverlapCond(%v, %v) = %v, oracle %v", a, b, go2, wo)
					}
				}
			}
		})
	}
}

// gridDNFs builds two-disjunct DNFs from single-atom guards — the shape
// statement branch guards take.
func gridDNFs() []DNF {
	values := []int32{dataset.Missing, 0, 1, 2, 3}
	var guards []dsl.Condition
	for a := 0; a < len(oracleDomains); a++ {
		for _, v := range values {
			guards = append(guards, dsl.Condition{{Attr: a, Value: v}})
		}
	}
	guards = append(guards, dsl.Condition{}) // TRUE guard
	dnfs := []DNF{nil}                       // FALSE
	for _, g := range guards {
		dnfs = append(dnfs, DNF{g})
	}
	for i, g := range guards {
		for _, h := range guards[i+1:] {
			dnfs = append(dnfs, DNF{g, h})
		}
	}
	return dnfs
}

// TestOracleDNF checks the DNF-level decisions — satisfiability,
// implication, equivalence, exhaustiveness — against brute force.
func TestOracleDNF(t *testing.T) {
	dnfs := gridDNFs()
	for _, u := range oracleUniverses() {
		t.Run(u.name, func(t *testing.T) {
			rows := enumerateRows(oracleDomains, u.missing)
			s := u.solver()
			for _, d := range dnfs {
				gotSat := s.Satisfiable(d)
				wantSat := false
				for _, r := range rows {
					if d.Matches(r) {
						wantSat = true
						break
					}
				}
				if gotSat != wantSat {
					t.Fatalf("Satisfiable(%v) = %v, oracle %v", d, gotSat, wantSat)
				}
				if ge, we := s.Exhaustive(d), oracleImpliesDNF(True(), d, rows); ge != we {
					t.Fatalf("Exhaustive(%v) = %v, oracle %v", d, ge, we)
				}
			}
			for _, a := range dnfs {
				for _, b := range dnfs {
					if got, want := s.Implies(a, b), oracleImpliesDNF(a, b, rows); got != want {
						t.Fatalf("Implies(%v, %v) = %v, oracle %v", a, b, got, want)
					}
				}
			}
		})
	}
}

// TestSatMinusExclusionRegression pins the instance that exposed an unsound
// fresh representative in candidates(): the unit clause ¬(a=0) excludes a=0
// at the root frame and is then discharged, so remaining() drops it; at the
// child frame a=0 is no longer mentioned by any clause and used to be
// re-offered as the "fresh" candidate, violating the already-discharged
// clause. Over Domains{3,2,2} values-only, the surviving clauses rule out
// a=1 and a=2 (each needs x outside its 2-value domain), so the instance is
// UNSAT; the missing-aware universe stays SAT via a=Missing.
func TestSatMinusExclusionRegression(t *testing.T) {
	dom := Domains{3, 2, 2}
	minus := []DNF{
		{{{Attr: 0, Value: 0}}},
		{{{Attr: 1, Value: 0}, {Attr: 1, Value: 1}}},
		{{{Attr: 0, Value: 1}, {Attr: 2, Value: 0}}},
		{{{Attr: 0, Value: 1}, {Attr: 2, Value: 1}}},
		{{{Attr: 0, Value: 2}, {Attr: 2, Value: 0}}},
		{{{Attr: 0, Value: 2}, {Attr: 2, Value: 1}}},
	}
	for _, tc := range []struct {
		name    string
		missing bool
		want    bool
	}{
		{"values-only", false, false},
		{"missing-aware", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := &Solver{dom: dom, missing: tc.missing}
			rows := enumerateRows(dom, tc.missing)
			if want := oracleSatMinus(nil, minus, rows); want != tc.want {
				t.Fatalf("oracle disagrees with the hand analysis: got %v, want %v", want, tc.want)
			}
			if got := s.SatMinus(nil, minus...); got != tc.want {
				t.Fatalf("SatMinus(TRUE, %v) = %v, want %v", minus, got, tc.want)
			}
		})
	}
}

// TestOracleRandomSatMinus sweeps the core query with seeded random
// instances deep enough to force exclusion inheritance across branching
// levels — the shape TestOracleSatMinus's thinned grid cannot reach: 3-4
// attributes, 3-6 subtracted DNFs mixing unit clauses (which seed
// exclusions) with conjunctions of up to 3 atoms (which force branching
// after the units are discharged), checked against brute force in both
// universes.
func TestOracleRandomSatMinus(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	atomValues := []int32{dataset.Missing, 0, 1, 2, 3}
	atom := func(nAttrs int) dsl.Pred {
		return dsl.Pred{Attr: rng.Intn(nAttrs), Value: atomValues[rng.Intn(len(atomValues))]}
	}
	cond := func(nAttrs, maxAtoms int) dsl.Condition {
		n := 1 + rng.Intn(maxAtoms)
		c := make(dsl.Condition, 0, n)
		for k := 0; k < n; k++ {
			c = append(c, atom(nAttrs))
		}
		return c
	}
	for iter := 0; iter < 3000; iter++ {
		nAttrs := 3 + rng.Intn(2)
		dom := make(Domains, nAttrs)
		for a := range dom {
			dom[a] = 2 + rng.Intn(2)
		}
		var pos dsl.Condition
		if rng.Intn(2) == 0 {
			pos = cond(nAttrs, 2)
		}
		minus := make([]DNF, 3+rng.Intn(4))
		for m := range minus {
			d := make(DNF, 0, 2)
			for k := 1 + rng.Intn(2); k > 0; k-- {
				if rng.Intn(2) == 0 {
					d = append(d, cond(nAttrs, 1)) // unit clause after negation
				} else {
					d = append(d, cond(nAttrs, 3))
				}
			}
			minus[m] = d
		}
		for _, missing := range []bool{true, false} {
			s := &Solver{dom: dom, missing: missing}
			rows := enumerateRows(dom, missing)
			if got, want := s.SatMinus(pos, minus...), oracleSatMinus(pos, minus, rows); got != want {
				t.Fatalf("iter %d missing=%v dom=%v: SatMinus(%v, %v) = %v, oracle %v",
					iter, missing, dom, pos, minus, got, want)
			}
		}
	}
}

// TestOracleSatMinus checks the core region query — a conjunction minus up
// to two DNFs — against brute force on a thinned grid (single-atom and
// two-atom conjunctions against two-disjunct unions).
func TestOracleSatMinus(t *testing.T) {
	conds := gridConditions()
	dnfs := gridDNFs()
	// Thin both sides to keep the product tractable while covering every
	// attribute/value/shape combination.
	var pos []dsl.Condition
	for i, c := range conds {
		if i%3 == 0 {
			pos = append(pos, c)
		}
	}
	var subs []DNF
	for i, d := range dnfs {
		if i%5 == 0 {
			subs = append(subs, d)
		}
	}
	for _, u := range oracleUniverses() {
		t.Run(u.name, func(t *testing.T) {
			rows := enumerateRows(oracleDomains, u.missing)
			s := u.solver()
			for _, p := range pos {
				for _, m1 := range subs {
					for _, m2 := range subs {
						got := s.SatMinus(p, m1, m2)
						want := oracleSatMinus(p, []DNF{m1, m2}, rows)
						if got != want {
							t.Fatalf("SatMinus(%v, %v, %v) = %v, oracle %v", p, m1, m2, got, want)
						}
					}
				}
			}
		})
	}
}
