// Package sat is the satisfiability core shared by the OptSMT baseline's
// problem encoding and the DSL program verifier. Guardrail conditions are
// conjunctions of equality atoms over categorical attributes, so the full
// decision procedure is tractable: a conjunction is satisfiable iff no
// attribute is bound to two different literals, and implication between
// conjunctions reduces to atom-set containment after normalization.
package sat

import "github.com/guardrail-db/guardrail/internal/dsl"

// Normalize returns c's atoms as a map attr -> literal together with a
// satisfiability verdict. An attribute bound to two different literals makes
// the conjunction unsatisfiable (no categorical row can take both values);
// duplicate identical atoms collapse.
func Normalize(c dsl.Condition) (map[int]int32, bool) {
	bound := make(map[int]int32, len(c))
	for _, p := range c {
		if v, ok := bound[p.Attr]; ok {
			if v != p.Value {
				return bound, false
			}
			continue
		}
		bound[p.Attr] = p.Value
	}
	return bound, true
}

// Satisfiable reports whether some row can satisfy c.
func Satisfiable(c dsl.Condition) bool {
	_, ok := Normalize(c)
	return ok
}

// Implies reports whether every row satisfying a also satisfies b
// (a ⇒ b). For conjunctions of equality atoms this holds iff b's atoms are
// a subset of a's. An unsatisfiable a implies everything (vacuous truth).
func Implies(a, b dsl.Condition) bool {
	na, okA := Normalize(a)
	if !okA {
		return true
	}
	nb, okB := Normalize(b)
	if !okB {
		return false
	}
	for attr, v := range nb {
		if va, ok := na[attr]; !ok || va != v {
			return false
		}
	}
	return true
}

// Equivalent reports whether a and b are satisfied by exactly the same rows.
func Equivalent(a, b dsl.Condition) bool {
	return Implies(a, b) && Implies(b, a)
}

// Overlap reports whether the conjunction a AND b is satisfiable — i.e.
// whether some row matches both conditions. Two conditions overlap iff they
// are individually satisfiable and agree on every shared attribute.
func Overlap(a, b dsl.Condition) bool {
	na, okA := Normalize(a)
	if !okA {
		return false
	}
	nb, okB := Normalize(b)
	if !okB {
		return false
	}
	for attr, v := range nb {
		if va, ok := na[attr]; ok && va != v {
			return false
		}
	}
	return true
}
