// Finite-domain equality solver over disjunctions of conjunctions.
//
// The conjunction-only helpers in sat.go decide satisfiability and
// implication by atom-set algebra, which is exact but blind to two things
// the program analyzer needs: per-attribute domain cardinalities ("the
// guard a=x fails for every row because x is not in a's dictionary";
// "branches a=x and a=y are exhaustive because dom(a)={x,y}") and
// disjunction (the branch guards of a statement form a DNF, and shadowing
// is implication into the *union* of earlier guards, not into any single
// one). The Solver closes both gaps with a small DPLL-style search: unit
// propagation over equality atoms plus finite-domain pruning, branching on
// the mentioned-values-or-fresh partition of one attribute at a time. The
// procedure is exact — internal/smt/sat's differential oracle tests check
// it against brute-force row enumeration on every small-domain instance.

package sat

import (
	"math"
	"sort"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
)

// Domains maps an attribute index to its dictionary cardinality.
// Domains[a] <= 0, or an index outside the slice, means the attribute's
// domain is unknown and treated as unbounded. The nil Domains treats every
// attribute as unbounded, which reduces the Solver to pure atom algebra.
type Domains []int

// Card reports the cardinality of attribute a's value domain, 0 when
// unbounded/unknown.
func (d Domains) Card(a int) int {
	if a < 0 || a >= len(d) || d[a] < 0 {
		return 0
	}
	return d[a]
}

// DomainsOf snapshots rel's per-attribute dictionary sizes; nil rel yields
// nil Domains (every attribute unbounded).
func DomainsOf(rel *dataset.Relation) Domains {
	if rel == nil {
		return nil
	}
	d := make(Domains, rel.NumAttrs())
	for a := range d {
		d[a] = rel.Cardinality(a)
	}
	return d
}

// DNF is a disjunction of conjunctions of equality atoms — the branch
// guards of one statement, in guard order. The empty DNF is FALSE (no row
// matches); DNF{dsl.Condition{}} is TRUE (the empty conjunction matches
// every row).
type DNF []dsl.Condition

// True returns the DNF matched by every row.
func True() DNF { return DNF{dsl.Condition{}} }

// Matches reports whether some conjunct of d matches row.
func (d DNF) Matches(row []int32) bool {
	for _, c := range d {
		if c.Matches(row) {
			return true
		}
	}
	return false
}

// Solver decides satisfiability, implication, and equivalence of DNFs over
// a finite-domain row universe. Each attribute ranges over its dictionary
// codes {0..card-1} (all of int32 >= 0 when unbounded) plus, when
// includeMissing is set, the dataset.Missing sentinel — rows at runtime can
// carry missing cells, so the missing-aware universe is the sound default
// for program equivalence. A Solver is not safe for concurrent use; the
// parallel pipeline gives each worker its own and sums Calls at the
// barrier.
type Solver struct {
	dom     Domains
	missing bool
	calls   int64
}

// NewSolver builds a solver over dom whose universe includes the Missing
// sentinel for every attribute (the runtime row universe).
func NewSolver(dom Domains) *Solver { return &Solver{dom: dom, missing: true} }

// NewValueSolver builds a solver over the values-only universe (no Missing
// sentinel) — the universe of relations without missing cells, used for
// exhaustiveness reporting over observed domains.
func NewValueSolver(dom Domains) *Solver { return &Solver{dom: dom} }

// Calls reports how many core satisfiability queries the solver has run —
// the analysis.solver_calls metric. Every public decision method funnels
// into one or more core queries.
func (s *Solver) Calls() int64 {
	if s == nil {
		return 0
	}
	return s.calls
}

// universeSize returns the number of values attribute a can take, or
// math.MaxInt for an unbounded domain.
func (s *Solver) universeSize(a int) int {
	card := s.dom.Card(a)
	if card == 0 {
		return math.MaxInt
	}
	if s.missing {
		return card + 1
	}
	return card
}

// inUniverse reports whether value v is in attribute a's universe.
func (s *Solver) inUniverse(a int, v int32) bool {
	if v == dataset.Missing {
		return s.missing
	}
	if v < 0 {
		return false
	}
	card := s.dom.Card(a)
	return card == 0 || int(v) < card
}

// SatisfiableCond reports whether some row in the universe satisfies the
// conjunction c — domain-aware, so an atom whose literal falls outside the
// attribute's dictionary makes c unsatisfiable.
func (s *Solver) SatisfiableCond(c dsl.Condition) bool { return s.SatMinus(c) }

// OverlapCond reports whether some row satisfies both a and b.
func (s *Solver) OverlapCond(a, b dsl.Condition) bool {
	both := make(dsl.Condition, 0, len(a)+len(b))
	both = append(both, a...)
	both = append(both, b...)
	return s.SatMinus(both)
}

// ImpliesCond reports a ⇒ b for conjunctions over the universe.
func (s *Solver) ImpliesCond(a, b dsl.Condition) bool { return !s.SatMinus(a, DNF{b}) }

// EquivalentCond reports whether conjunctions a and b match exactly the
// same universe rows.
func (s *Solver) EquivalentCond(a, b dsl.Condition) bool {
	return s.ImpliesCond(a, b) && s.ImpliesCond(b, a)
}

// Satisfiable reports whether some universe row matches d.
func (s *Solver) Satisfiable(d DNF) bool {
	for _, c := range d {
		if s.SatMinus(c) {
			return true
		}
	}
	return false
}

// Implies reports a ⇒ b over DNFs: every universe row matching a matches
// b. Decided one conjunct at a time: a ⇒ b iff each conjunct of a is
// unsatisfiable after subtracting b.
func (s *Solver) Implies(a, b DNF) bool {
	for _, c := range a {
		if s.SatMinus(c, b) {
			return false
		}
	}
	return true
}

// Equivalent reports whether a and b match exactly the same universe rows.
func (s *Solver) Equivalent(a, b DNF) bool { return s.Implies(a, b) && s.Implies(b, a) }

// Exhaustive reports whether d covers the entire universe — every row
// matches some conjunct.
func (s *Solver) Exhaustive(d DNF) bool { return s.Implies(True(), d) }

// SatMinus is the core decision procedure: whether some universe row
// satisfies the conjunction pos while matching none of the subtracted
// DNFs, i.e. sat(pos ∧ ¬minus₀ ∧ ¬minus₁ ∧ …). Negating a DNF yields a
// CNF whose clauses are disjunctions of disequality literals, decided by
// unit propagation plus finite-domain branching. Branch regions (guard k
// minus the union of earlier guards), implication, and statement
// subsumption are all instances of this query.
func (s *Solver) SatMinus(pos dsl.Condition, minus ...DNF) bool {
	s.calls++
	fixed := make(map[int]int32, len(pos))
	for _, p := range pos {
		if !s.inUniverse(p.Attr, p.Value) {
			return false
		}
		if v, ok := fixed[p.Attr]; ok {
			if v != p.Value {
				return false
			}
			continue
		}
		fixed[p.Attr] = p.Value
	}
	var clauses [][]dsl.Pred
	for _, m := range minus {
		for _, conj := range m {
			clause := make([]dsl.Pred, 0, len(conj))
			trivially := false
			for _, p := range conj {
				if !s.inUniverse(p.Attr, p.Value) {
					// The literal attr≠v holds for every universe row, so
					// the clause ¬conj is trivially satisfied.
					trivially = true
					break
				}
				clause = append(clause, p)
			}
			if trivially {
				continue
			}
			if len(clause) == 0 {
				return false // ¬TRUE: no row can avoid the empty conjunction
			}
			clauses = append(clauses, clause)
		}
	}
	return s.search(fixed, map[int]map[int32]bool{}, clauses)
}

// search decides sat(fixed ∧ exclusions ∧ clauses) by unit propagation to
// fixpoint followed by branching on one attribute's mentioned-or-fresh
// value partition. fixed and excl are owned by the caller frame and copied
// before each recursive branch.
func (s *Solver) search(fixed map[int]int32, excl map[int]map[int32]bool, clauses [][]dsl.Pred) bool {
	satisfied := make([]bool, len(clauses))
	for {
		changed := false
		for ci, clause := range clauses {
			if satisfied[ci] {
				continue
			}
			undetermined := 0
			var unit dsl.Pred
			clauseSat := false
			for _, lit := range clause {
				if v, ok := fixed[lit.Attr]; ok {
					if v != lit.Value {
						clauseSat = true
						break
					}
					continue // literal false under the assignment
				}
				if excl[lit.Attr][lit.Value] {
					clauseSat = true // the value is already ruled out
					break
				}
				undetermined++
				unit = lit
			}
			if clauseSat {
				satisfied[ci] = true
				continue
			}
			switch undetermined {
			case 0:
				return false // every literal false: conflict
			case 1:
				// Forced: the remaining literal must hold, excluding one
				// value from unit.Attr's domain.
				ex := excl[unit.Attr]
				if ex == nil {
					ex = map[int32]bool{}
					excl[unit.Attr] = ex
				}
				ex[unit.Value] = true
				satisfied[ci] = true
				changed = true
				if !s.propagateDomain(unit.Attr, fixed, excl) {
					return false
				}
			}
		}
		if !changed {
			break
		}
	}

	// Pick the first clause still undecided and branch on one of its
	// attributes. If none remains, every clause is satisfied (or will be
	// satisfiable by leaving free attributes at any fresh value).
	branchAttr, ok := s.pickBranch(fixed, excl, clauses, satisfied)
	if !ok {
		return true
	}
	for _, v := range s.candidates(branchAttr, fixed, excl, clauses) {
		nf := make(map[int]int32, len(fixed)+1)
		for k, val := range fixed {
			nf[k] = val
		}
		nf[branchAttr] = v
		ne := make(map[int]map[int32]bool, len(excl))
		for k, ex := range excl {
			if k == branchAttr {
				// Safe to drop: candidates() filters every candidate, the
				// fresh representative included, against excl[branchAttr],
				// so the assignment satisfies all of these exclusions.
				continue
			}
			cp := make(map[int32]bool, len(ex))
			for val := range ex {
				cp[val] = true
			}
			ne[k] = cp
		}
		if s.search(nf, ne, remaining(clauses, satisfied)) {
			return true
		}
	}
	return false
}

// propagateDomain applies finite-domain pruning to attribute a after a new
// exclusion: if exclusions cover the whole universe the state is
// unsatisfiable; if they leave exactly one value, a is fixed to it.
func (s *Solver) propagateDomain(a int, fixed map[int]int32, excl map[int]map[int32]bool) bool {
	size := s.universeSize(a)
	if size == math.MaxInt {
		return true
	}
	ex := excl[a]
	live := make([]int32, 0, 2)
	if s.missing && !ex[dataset.Missing] {
		live = append(live, dataset.Missing)
	}
	for v := int32(0); int(v) < s.dom.Card(a) && len(live) < 2; v++ {
		if !ex[v] {
			live = append(live, v)
		}
	}
	switch len(live) {
	case 0:
		return false
	case 1:
		fixed[a] = live[0]
	}
	return true
}

// pickBranch returns an unfixed attribute from the first unsatisfied
// clause, or ok=false when no clause is left undecided.
func (s *Solver) pickBranch(fixed map[int]int32, excl map[int]map[int32]bool, clauses [][]dsl.Pred, satisfied []bool) (int, bool) {
	for ci, clause := range clauses {
		if satisfied[ci] {
			continue
		}
		for _, lit := range clause {
			if _, ok := fixed[lit.Attr]; !ok && !excl[lit.Attr][lit.Value] {
				return lit.Attr, true
			}
		}
	}
	return 0, false
}

// candidates partitions attribute a's universe into the values mentioned
// by some clause literal plus, when the universe is strictly larger, one
// fresh representative (all unmentioned values satisfy exactly the same
// disequality literals, so a single representative is exhaustive).
func (s *Solver) candidates(a int, fixed map[int]int32, excl map[int]map[int32]bool, clauses [][]dsl.Pred) []int32 {
	mentioned := map[int32]bool{}
	var order []int32
	for _, clause := range clauses {
		for _, lit := range clause {
			if lit.Attr == a && s.inUniverse(a, lit.Value) && !mentioned[lit.Value] {
				mentioned[lit.Value] = true
				order = append(order, lit.Value)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	ex := excl[a]
	out := make([]int32, 0, len(order)+1)
	for _, v := range order {
		if !ex[v] {
			out = append(out, v)
		}
	}
	// Fresh representative: any universe value neither mentioned by a
	// current clause literal nor ruled out by an inherited exclusion.
	// Exclusions can outlive the unit clause that forced them — once the
	// clause is satisfied it is dropped by remaining(), so at deeper frames
	// an excluded value is not necessarily mentioned anymore and must be
	// filtered here explicitly; re-assigning it would silently violate the
	// already-discharged clause.
	card := s.dom.Card(a)
	if card == 0 {
		var max int32 = -1
		for _, v := range order {
			if v > max {
				max = v
			}
		}
		for v := range ex {
			if v > max {
				max = v
			}
		}
		out = append(out, max+1)
	} else {
		if s.missing && !mentioned[dataset.Missing] && !ex[dataset.Missing] {
			out = append(out, dataset.Missing)
		} else {
			for v := int32(0); int(v) < card; v++ {
				if !mentioned[v] && !ex[v] {
					out = append(out, v)
					break
				}
			}
		}
	}
	return out
}

// remaining filters out clauses already satisfied, for the recursive call.
func remaining(clauses [][]dsl.Pred, satisfied []bool) [][]dsl.Pred {
	out := make([][]dsl.Pred, 0, len(clauses))
	for i, c := range clauses {
		if !satisfied[i] {
			out = append(out, c)
		}
	}
	return out
}
