package sat

import (
	"testing"

	"github.com/guardrail-db/guardrail/internal/dsl"
)

// FuzzSolver decodes arbitrary bytes into a small instance — domains, a
// positive conjunction, and up to three subtracted DNFs of up to three
// conjunctions x three atoms — and asserts the solver (a) never panics and
// (b) agrees with brute-force row enumeration, on both universes. Domains
// are capped at 3 attributes x cardinality 3 so the oracle stays
// exhaustive; literals may still fall outside the domain. The clause depth
// matters: unit clauses seed exclusions that outlive their clause, and
// multi-atom clauses then force branching under those inherited exclusions
// (the candidates() fresh-representative regression).
func FuzzSolver(f *testing.F) {
	f.Add([]byte{2, 2, 1, 0, 0, 1, 1, 1, 0})
	f.Add([]byte{3, 1, 2, 3, 0, 0, 0, 2, 1, 1, 2, 2, 0, 1})
	f.Add([]byte{1, 3, 0})
	f.Add([]byte{3, 3, 3, 3, 9, 9, 9, 9, 9, 9, 9, 9, 0, 1, 2, 3, 4, 5})
	// The TestSatMinusExclusionRegression instance: ¬(a=0) as a unit clause
	// plus two-atom clauses pinning a=1/a=2 against x's whole domain.
	f.Add([]byte{
		2, 2, 1, 1, // 3 attrs, domains 3,2,2
		0,             // pos: TRUE
		3,             // m1: 3 conjuncts
		1, 0, 1,       // {a=0}
		2, 1, 1, 1, 2, // {b=0 ∧ b=1}
		2, 0, 2, 2, 1, // {a=1 ∧ x=0}
		3,             // m2: 3 conjuncts
		2, 0, 2, 2, 2, // {a=1 ∧ x=1}
		2, 0, 3, 2, 1, // {a=2 ∧ x=0}
		2, 0, 3, 2, 2, // {a=2 ∧ x=1}
		0, // m3: FALSE
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		i := 0
		next := func() int {
			if i >= len(data) {
				return 0
			}
			b := data[i]
			i++
			return int(b)
		}
		nAttrs := 1 + next()%3
		dom := make(Domains, nAttrs)
		for a := range dom {
			dom[a] = 1 + next()%3
		}
		// Literals in [-1, 4]: Missing, in-domain, and out-of-domain codes.
		atom := func() dsl.Pred {
			return dsl.Pred{Attr: next() % nAttrs, Value: int32(next()%6) - 1}
		}
		cond := func() dsl.Condition {
			n := next() % 4
			c := make(dsl.Condition, 0, n)
			for k := 0; k < n; k++ {
				c = append(c, atom())
			}
			return c
		}
		decodeDNF := func() DNF {
			n := next() % 4
			d := make(DNF, 0, n)
			for k := 0; k < n; k++ {
				d = append(d, cond())
			}
			return d
		}
		pos := cond()
		m1, m2, m3 := decodeDNF(), decodeDNF(), decodeDNF()

		for _, missing := range []bool{true, false} {
			s := &Solver{dom: dom, missing: missing}
			rows := enumerateRows(dom, missing)
			if got, want := s.SatMinus(pos, m1, m2, m3), oracleSatMinus(pos, []DNF{m1, m2, m3}, rows); got != want {
				t.Fatalf("missing=%v dom=%v: SatMinus(%v, %v, %v, %v) = %v, oracle %v",
					missing, dom, pos, m1, m2, m3, got, want)
			}
			if got, want := s.Implies(m1, m2), oracleImpliesDNF(m1, m2, rows); got != want {
				t.Fatalf("missing=%v dom=%v: Implies(%v, %v) = %v, oracle %v",
					missing, dom, m1, m2, got, want)
			}
			if got, want := s.Exhaustive(m1), oracleImpliesDNF(True(), m1, rows); got != want {
				t.Fatalf("missing=%v dom=%v: Exhaustive(%v) = %v, oracle %v",
					missing, dom, m1, got, want)
			}
		}
	})
}
