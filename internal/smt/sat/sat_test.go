package sat

import (
	"testing"

	"github.com/guardrail-db/guardrail/internal/dsl"
)

func cond(pairs ...int32) dsl.Condition {
	var c dsl.Condition
	for i := 0; i+1 < len(pairs); i += 2 {
		c = append(c, dsl.Pred{Attr: int(pairs[i]), Value: pairs[i+1]})
	}
	return c
}

func TestSatisfiable(t *testing.T) {
	cases := []struct {
		name string
		c    dsl.Condition
		want bool
	}{
		{"empty", nil, true},
		{"single", cond(0, 1), true},
		{"duplicate atom", cond(0, 1, 0, 1), true},
		{"conflicting atoms", cond(0, 1, 0, 2), false},
		{"conflict after others", cond(1, 5, 2, 7, 1, 6), false},
	}
	for _, tc := range cases {
		if got := Satisfiable(tc.c); got != tc.want {
			t.Errorf("%s: Satisfiable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestImplies(t *testing.T) {
	cases := []struct {
		name string
		a, b dsl.Condition
		want bool
	}{
		{"everything implies empty", cond(0, 1), nil, true},
		{"empty does not imply atom", nil, cond(0, 1), false},
		{"superset implies subset", cond(0, 1, 1, 2), cond(0, 1), true},
		{"subset does not imply superset", cond(0, 1), cond(0, 1, 1, 2), false},
		{"same attr different value", cond(0, 1), cond(0, 2), false},
		{"equal", cond(0, 1, 1, 2), cond(1, 2, 0, 1), true},
		{"unsat a implies anything", cond(0, 1, 0, 2), cond(3, 3), true},
		{"nothing sat implies unsat b", cond(0, 1), cond(2, 1, 2, 2), false},
	}
	for _, tc := range cases {
		if got := Implies(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: Implies = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestEquivalent(t *testing.T) {
	if !Equivalent(cond(0, 1, 1, 2), cond(1, 2, 0, 1, 0, 1)) {
		t.Error("permuted + duplicated atoms should be equivalent")
	}
	if Equivalent(cond(0, 1), cond(0, 1, 1, 2)) {
		t.Error("strict subset is not equivalent")
	}
}

func TestOverlap(t *testing.T) {
	cases := []struct {
		name string
		a, b dsl.Condition
		want bool
	}{
		{"disjoint attrs overlap", cond(0, 1), cond(1, 2), true},
		{"agreeing shared attr", cond(0, 1, 1, 2), cond(0, 1, 2, 3), true},
		{"conflicting shared attr", cond(0, 1), cond(0, 2), false},
		{"unsat side", cond(0, 1, 0, 2), cond(1, 1), false},
		{"both empty", nil, nil, true},
	}
	for _, tc := range cases {
		if got := Overlap(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: Overlap = %v, want %v", tc.name, got, tc.want)
		}
	}
}
