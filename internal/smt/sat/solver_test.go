package sat

import (
	"testing"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
)

func dnf(conds ...dsl.Condition) DNF { return DNF(conds) }

func TestSolverDomainAwareSatisfiability(t *testing.T) {
	s := NewSolver(Domains{2, 3})
	cases := []struct {
		name string
		c    dsl.Condition
		want bool
	}{
		{"in domain", cond(0, 1), true},
		{"literal outside domain", cond(0, 2), false},
		{"second attr wide enough", cond(1, 2), true},
		{"unknown attr unbounded", cond(9, 100), true},
		{"conflicting atoms", cond(0, 0, 0, 1), false},
		{"negative literal", dsl.Condition{{Attr: 0, Value: -7}}, false},
		{"missing literal allowed", dsl.Condition{{Attr: 0, Value: dataset.Missing}}, true},
	}
	for _, tc := range cases {
		if got := s.SatisfiableCond(tc.c); got != tc.want {
			t.Errorf("%s: SatisfiableCond = %v, want %v", tc.name, got, tc.want)
		}
	}
	vs := NewValueSolver(Domains{2})
	if vs.SatisfiableCond(dsl.Condition{{Attr: 0, Value: dataset.Missing}}) {
		t.Error("values-only universe accepted a Missing literal")
	}
}

// TestSolverUnionShadowing: the DNF power the conjunction API lacks — a
// guard covered only by the union of earlier guards.
func TestSolverUnionShadowing(t *testing.T) {
	s := NewValueSolver(Domains{2, 2})
	// Guards a=0 and a=1 jointly cover TRUE over dom(a)={0,1}; neither does
	// alone.
	union := dnf(cond(0, 0), cond(0, 1))
	if !s.Implies(True(), union) {
		t.Error("a=0 ∨ a=1 should be exhaustive over a two-value domain")
	}
	if s.Implies(True(), dnf(cond(0, 0))) {
		t.Error("a=0 alone is not exhaustive")
	}
	// The later guard b=1 is shadowed by the union though implied by
	// neither disjunct individually.
	if !s.Implies(dnf(cond(1, 1)), union) {
		t.Error("b=1 should be covered by the exhaustive union")
	}
	// With the Missing sentinel in the universe the union is no longer
	// exhaustive: a row with a=NaN matches neither guard.
	ms := NewSolver(Domains{2, 2})
	if ms.Exhaustive(union) {
		t.Error("missing-aware universe: a=0 ∨ a=1 must not be exhaustive")
	}
}

func TestSolverSatMinusRegions(t *testing.T) {
	s := NewValueSolver(Domains{2, 2})
	// Region of guard (a=0 ∧ b=0) minus earlier guard (a=0): empty.
	if s.SatMinus(cond(0, 0, 1, 0), dnf(cond(0, 0))) {
		t.Error("a=0∧b=0 minus a=0 should be empty")
	}
	// Region of guard (b=0) minus earlier guard (a=0): row a=1,b=0 remains.
	if !s.SatMinus(cond(1, 0), dnf(cond(0, 0))) {
		t.Error("b=0 minus a=0 should keep the a=1 row")
	}
	// Subtracting an exhaustive union empties everything.
	if s.SatMinus(nil, dnf(cond(0, 0), cond(0, 1))) {
		t.Error("TRUE minus an exhaustive union should be empty")
	}
	// Subtracting TRUE empties everything.
	if s.SatMinus(cond(0, 0), True()) {
		t.Error("anything minus TRUE should be empty")
	}
	// Subtracting FALSE (empty DNF) removes nothing.
	if !s.SatMinus(cond(0, 0), DNF{}) {
		t.Error("subtracting the empty DNF should keep the region")
	}
}

func TestSolverEquivalentDNF(t *testing.T) {
	s := NewValueSolver(Domains{2, 2})
	// Over dom(b)={0,1}: a=0 ≡ (a=0∧b=0) ∨ (a=0∧b=1).
	split := dnf(cond(0, 0, 1, 0), cond(0, 0, 1, 1))
	if !s.Equivalent(dnf(cond(0, 0)), split) {
		t.Error("case split over b should be equivalent to a=0")
	}
	// Not equivalent once one case is dropped.
	if s.Equivalent(dnf(cond(0, 0)), dnf(cond(0, 0, 1, 0))) {
		t.Error("half the case split is not equivalent")
	}
	// Unbounded b: the case split no longer covers a=0.
	u := NewValueSolver(Domains{2})
	if u.Equivalent(dnf(cond(0, 0)), split) {
		t.Error("case split cannot cover an unbounded attribute")
	}
}

func TestSolverCallsCount(t *testing.T) {
	s := NewSolver(nil)
	if s.Calls() != 0 {
		t.Fatalf("fresh solver has %d calls", s.Calls())
	}
	s.SatisfiableCond(cond(0, 1))
	s.Implies(dnf(cond(0, 1), cond(0, 2)), dnf(cond(0, 1)))
	if s.Calls() < 2 {
		t.Errorf("Calls = %d, want >= 2", s.Calls())
	}
	var nilSolver *Solver
	if nilSolver.Calls() != 0 {
		t.Error("nil solver Calls should be 0")
	}
}

func TestDomainsOf(t *testing.T) {
	rel := dataset.New("t", []string{"a", "b"})
	rel.AppendRow([]string{"x", "p"})
	rel.AppendRow([]string{"y", "p"})
	d := DomainsOf(rel)
	if d.Card(0) != 2 || d.Card(1) != 1 {
		t.Errorf("DomainsOf = %v", d)
	}
	if d.Card(7) != 0 || d.Card(-1) != 0 {
		t.Error("out-of-range attrs must be unbounded")
	}
	if DomainsOf(nil) != nil {
		t.Error("nil relation should give nil domains")
	}
}

// TestSolverBacktracking forces the search past pure unit propagation:
// clauses with two undetermined literals each, satisfiable only by a
// specific joint assignment.
func TestSolverBacktracking(t *testing.T) {
	s := NewValueSolver(Domains{2, 2, 2})
	// ¬(a=0∧b=0) ∧ ¬(a=1∧b=1) ∧ ¬(b=0∧c=0) ∧ ¬(b=1∧c=1) is satisfiable
	// (e.g. a=0,b=1,c=0).
	if !s.SatMinus(nil, dnf(cond(0, 0, 1, 0)), dnf(cond(0, 1, 1, 1)), dnf(cond(1, 0, 2, 0)), dnf(cond(1, 1, 2, 1))) {
		t.Error("expected satisfiable after backtracking")
	}
	// Add the two remaining mixed pairs on (a,b) and it becomes unsat:
	// every (a,b) combination is excluded.
	if s.SatMinus(nil, dnf(cond(0, 0, 1, 0)), dnf(cond(0, 1, 1, 1)), dnf(cond(0, 0, 1, 1)), dnf(cond(0, 1, 1, 0))) {
		t.Error("all four (a,b) cells excluded: expected unsat")
	}
}
