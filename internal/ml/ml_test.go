package ml

import (
	"testing"

	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/errgen"
)

func hospitalSplit(t *testing.T) (train, test *dataset.Relation, label int) {
	t.Helper()
	rel, err := bn.Hospital().Sample(6000, 1)
	if err != nil {
		t.Fatal(err)
	}
	train, test = rel.Split(0.7, 1)
	return train, test, rel.AttrIndex("dysp")
}

func TestNaiveBayesLearnsSignal(t *testing.T) {
	train, test, label := hospitalSplit(t)
	nb, err := TrainNaiveBayes(train, label)
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(nb, test)
	if acc < 0.7 {
		t.Fatalf("NB accuracy = %g, want >= 0.7", acc)
	}
	if nb.Label() != label {
		t.Fatal("label mismatch")
	}
}

func TestTreeLearnsSignal(t *testing.T) {
	train, test, label := hospitalSplit(t)
	tr, err := TrainTree(train, label, 4)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(tr, test); acc < 0.7 {
		t.Fatalf("tree accuracy = %g", acc)
	}
}

func TestTreePureAndUnseenValues(t *testing.T) {
	rel := dataset.New("t", []string{"x", "y"})
	for i := 0; i < 20; i++ {
		rel.AppendRow([]string{"a", "p"})
		rel.AppendRow([]string{"b", "q"})
	}
	tr, err := TrainTree(rel, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if Accuracy(tr, rel) != 1 {
		t.Fatal("tree failed on separable data")
	}
	// Unseen split value falls back to the node's mode.
	row := []int32{rel.Intern(0, "zzz"), 0}
	_ = tr.Predict(row) // must not panic
}

func TestEnsembleBeatsWorstMember(t *testing.T) {
	train, test, label := hospitalSplit(t)
	ens, err := Train(train, label)
	if err != nil {
		t.Fatal(err)
	}
	accE := Accuracy(ens, test)
	if accE < 0.7 {
		t.Fatalf("ensemble accuracy = %g", accE)
	}
}

func TestTrainErrors(t *testing.T) {
	empty := dataset.New("e", []string{"a", "b"})
	if _, err := TrainNaiveBayes(empty, 1); err == nil {
		t.Fatal("empty relation accepted")
	}
	if _, err := TrainTree(empty, 1, 3); err == nil {
		t.Fatal("empty relation accepted by tree")
	}
	rel := dataset.New("one", []string{"a", "b"})
	rel.AppendRow([]string{"x", "y"})
	if _, err := TrainNaiveBayes(rel, 5); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := TrainNaiveBayes(rel, 1); err == nil {
		t.Fatal("single-class label accepted")
	}
}

func TestErrorsCauseMispredictions(t *testing.T) {
	// The §5 premise: corrupting model inputs flips predictions.
	train, test, label := hospitalSplit(t)
	ens, err := Train(train, label)
	if err != nil {
		t.Fatal(err)
	}
	dirty := test.Clone()
	var inputCols []int
	for c := 0; c < test.NumAttrs(); c++ {
		if c != label {
			inputCols = append(inputCols, c)
		}
	}
	if _, err := errgen.Inject(dirty, errgen.Options{Rate: 0.3, MinErrors: 100, Columns: inputCols, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	flips := 0
	rowA := make([]int32, test.NumAttrs())
	rowB := make([]int32, test.NumAttrs())
	for i := 0; i < test.NumRows(); i++ {
		rowA = test.Row(i, rowA)
		rowB = dirty.Row(i, rowB)
		if ens.Predict(rowA) != ens.Predict(rowB) {
			flips++
		}
	}
	if flips == 0 {
		t.Fatal("30% corruption flipped no predictions")
	}
}

func TestPredictDeterministic(t *testing.T) {
	train, test, label := hospitalSplit(t)
	a, _ := Train(train, label)
	b, _ := Train(train, label)
	row := make([]int32, test.NumAttrs())
	for i := 0; i < 100 && i < test.NumRows(); i++ {
		row = test.Row(i, row)
		if a.Predict(row) != b.Predict(row) {
			t.Fatalf("non-deterministic prediction at row %d", i)
		}
	}
}

func TestNaiveBayesMissingValues(t *testing.T) {
	rel := dataset.New("m", []string{"x", "y"})
	rel.AppendRow([]string{"a", "p"})
	rel.AppendRow([]string{"", "q"})
	rel.AppendRow([]string{"a", "p"})
	rel.AppendRow([]string{"b", "q"})
	nb, err := TrainNaiveBayes(rel, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Predicting with a missing input must not panic.
	_ = nb.Predict([]int32{dataset.Missing, 0})
}
