package ml

import (
	"testing"

	"github.com/guardrail-db/guardrail/internal/dataset"
)

func TestLogisticLearnsSignal(t *testing.T) {
	train, test, label := hospitalSplit(t)
	lr, err := TrainLogistic(train, label, LogisticOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(lr, test); acc < 0.7 {
		t.Fatalf("logistic accuracy = %g", acc)
	}
	if lr.Label() != label {
		t.Fatal("label mismatch")
	}
}

func TestLogisticSeparableData(t *testing.T) {
	rel := dataset.New("t", []string{"x", "y"})
	for i := 0; i < 50; i++ {
		rel.AppendRow([]string{"a", "p"})
		rel.AppendRow([]string{"b", "q"})
		rel.AppendRow([]string{"c", "q"})
	}
	lr, err := TrainLogistic(rel, 1, LogisticOptions{Epochs: 200})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(lr, rel); acc < 0.99 {
		t.Fatalf("separable accuracy = %g", acc)
	}
}

func TestLogisticUnseenAndMissingValues(t *testing.T) {
	rel := dataset.New("t", []string{"x", "y"})
	rel.AppendRow([]string{"a", "p"})
	rel.AppendRow([]string{"b", "q"})
	rel.AppendRow([]string{"a", "p"})
	rel.AppendRow([]string{"b", "q"})
	lr, err := TrainLogistic(rel, 1, LogisticOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Unseen code and missing must route to the spare slot, not panic.
	_ = lr.Predict([]int32{99, 0})
	_ = lr.Predict([]int32{dataset.Missing, 0})
}

func TestLogisticErrors(t *testing.T) {
	empty := dataset.New("e", []string{"a", "b"})
	if _, err := TrainLogistic(empty, 1, LogisticOptions{}); err == nil {
		t.Fatal("empty relation accepted")
	}
	rel := dataset.New("one", []string{"a", "b"})
	rel.AppendRow([]string{"x", "y"})
	if _, err := TrainLogistic(rel, 9, LogisticOptions{}); err == nil {
		t.Fatal("bad label accepted")
	}
	if _, err := TrainLogistic(rel, 1, LogisticOptions{}); err == nil {
		t.Fatal("single-class label accepted")
	}
}

func TestLogisticDeterministic(t *testing.T) {
	train, test, label := hospitalSplit(t)
	a, err := TrainLogistic(train, label, LogisticOptions{Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainLogistic(train, label, LogisticOptions{Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	row := make([]int32, test.NumAttrs())
	for i := 0; i < 50 && i < test.NumRows(); i++ {
		row = test.Row(i, row)
		if a.Predict(row) != b.Predict(row) {
			t.Fatalf("non-deterministic at row %d", i)
		}
	}
}

func TestEnsembleWithLogistic(t *testing.T) {
	train, test, label := hospitalSplit(t)
	nb, err := TrainNaiveBayes(train, label)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TrainTree(train, label, 4)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := TrainLogistic(train, label, LogisticOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ens := NewEnsemble(label, nb, tr, lr)
	if acc := Accuracy(ens, test); acc < 0.7 {
		t.Fatalf("3-model ensemble accuracy = %g", acc)
	}
}
