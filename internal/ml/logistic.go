package ml

import (
	"fmt"
	"math"

	"github.com/guardrail-db/guardrail/internal/dataset"
)

// Logistic is a one-vs-rest multinomial logistic-regression classifier over
// one-hot-encoded categorical features, trained with deterministic
// full-batch gradient descent. Together with the naive Bayes and decision
// tree models it mirrors the model diversity of the paper's autogluon
// ensemble ("NN, tree-based models, etc.").
type Logistic struct {
	label      int
	numClasses int
	offsets    []int // feature offset per attribute (-1 for the label)
	dim        int
	weights    [][]float64 // per class: dim+1 (bias last)
}

// LogisticOptions tunes training.
type LogisticOptions struct {
	// Epochs of full-batch gradient descent (default 50).
	Epochs int
	// LearningRate (default 0.5).
	LearningRate float64
	// L2 regularization strength (default 1e-4).
	L2 float64
}

func (o *LogisticOptions) defaults() {
	if o.Epochs == 0 {
		o.Epochs = 50
	}
	if o.LearningRate == 0 {
		o.LearningRate = 0.5
	}
	if o.L2 == 0 {
		o.L2 = 1e-4
	}
}

// TrainLogistic fits the classifier on rel predicting labelAttr.
func TrainLogistic(rel *dataset.Relation, labelAttr int, opts LogisticOptions) (*Logistic, error) {
	opts.defaults()
	n := rel.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("ml: empty training relation")
	}
	if labelAttr < 0 || labelAttr >= rel.NumAttrs() {
		return nil, fmt.Errorf("ml: label attribute %d out of range", labelAttr)
	}
	k := rel.Cardinality(labelAttr)
	if k < 2 {
		return nil, fmt.Errorf("ml: label has %d classes", k)
	}
	m := rel.NumAttrs()
	lr := &Logistic{label: labelAttr, numClasses: k, offsets: make([]int, m)}
	dim := 0
	for a := 0; a < m; a++ {
		if a == labelAttr {
			lr.offsets[a] = -1
			continue
		}
		lr.offsets[a] = dim
		dim += rel.Cardinality(a) + 1 // +1 missing slot
	}
	lr.dim = dim
	lr.weights = make([][]float64, k)
	for c := range lr.weights {
		lr.weights[c] = make([]float64, dim+1)
	}

	labels := rel.Column(labelAttr)
	// Feature index list per row (sparse one-hot).
	features := make([][]int, n)
	row := make([]int32, m)
	for i := 0; i < n; i++ {
		row = rel.Row(i, row)
		features[i] = lr.featureIdx(row, nil)
	}
	grad := make([]float64, dim+1)
	invN := 1 / float64(n)
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		for c := 0; c < k; c++ {
			w := lr.weights[c]
			for j := range grad {
				grad[j] = 0
			}
			for i := 0; i < n; i++ {
				z := w[dim]
				for _, f := range features[i] {
					z += w[f]
				}
				p := sigmoid(z)
				y := 0.0
				if labels[i] == int32(c) {
					y = 1
				}
				d := (p - y) * invN
				for _, f := range features[i] {
					grad[f] += d
				}
				grad[dim] += d
			}
			for j := 0; j <= dim; j++ {
				w[j] -= opts.LearningRate * (grad[j] + opts.L2*w[j])
			}
		}
	}
	return lr, nil
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// featureIdx maps a row to its active one-hot feature indices.
func (lr *Logistic) featureIdx(row []int32, buf []int) []int {
	buf = buf[:0]
	for a, off := range lr.offsets {
		if off < 0 {
			continue
		}
		v := row[a]
		width := lr.width(a)
		if v < 0 || int(v) >= width-1 {
			buf = append(buf, off+width-1) // missing / unseen slot
		} else {
			buf = append(buf, off+int(v))
		}
	}
	return buf
}

// width returns attribute a's one-hot width (cardinality + missing slot).
func (lr *Logistic) width(a int) int {
	next := lr.dim
	for b := a + 1; b < len(lr.offsets); b++ {
		if lr.offsets[b] >= 0 {
			next = lr.offsets[b]
			break
		}
	}
	return next - lr.offsets[a]
}

// Label returns the predicted attribute index.
func (lr *Logistic) Label() int { return lr.label }

// Predict returns the class with the highest one-vs-rest score.
func (lr *Logistic) Predict(row []int32) int32 {
	feats := lr.featureIdx(row, nil)
	best, bestZ := int32(0), math.Inf(-1)
	for c := 0; c < lr.numClasses; c++ {
		w := lr.weights[c]
		z := w[lr.dim]
		for _, f := range feats {
			z += w[f]
		}
		if z > bestZ {
			best, bestZ = int32(c), z
		}
	}
	return best
}
