package ml

import (
	"fmt"
	"math"
	"slices"

	"github.com/guardrail-db/guardrail/internal/dataset"
)

// Tree is a depth-limited ID3-style decision tree over categorical
// attributes.
type Tree struct {
	label int
	root  *treeNode
}

type treeNode struct {
	// leaf prediction when children is nil.
	pred int32
	// split attribute and per-value children otherwise.
	attr     int
	children map[int32]*treeNode
	fallback int32 // prediction for unseen split values
}

// TrainTree fits a decision tree of at most maxDepth splits.
func TrainTree(rel *dataset.Relation, labelAttr, maxDepth int) (*Tree, error) {
	n := rel.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("ml: empty training relation")
	}
	if labelAttr < 0 || labelAttr >= rel.NumAttrs() {
		return nil, fmt.Errorf("ml: label attribute %d out of range", labelAttr)
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	used := make([]bool, rel.NumAttrs())
	used[labelAttr] = true
	t := &Tree{label: labelAttr}
	t.root = buildNode(rel, labelAttr, rows, used, maxDepth)
	return t, nil
}

// Label returns the predicted attribute index.
func (t *Tree) Label() int { return t.label }

// Predict walks the tree.
func (t *Tree) Predict(row []int32) int32 {
	nd := t.root
	for nd.children != nil {
		child, ok := nd.children[row[nd.attr]]
		if !ok {
			return nd.fallback
		}
		nd = child
	}
	return nd.pred
}

func buildNode(rel *dataset.Relation, label int, rows []int, used []bool, depth int) *treeNode {
	mode := modeOf(rel.Column(label), rows)
	if depth == 0 || len(rows) < 4 || pure(rel.Column(label), rows) {
		return &treeNode{pred: mode}
	}
	bestAttr, bestGain := -1, 1e-9
	base := entropyOf(rel.Column(label), rows)
	for a := 0; a < rel.NumAttrs(); a++ {
		if used[a] {
			continue
		}
		gain := base - splitEntropy(rel, label, a, rows)
		if gain > bestGain {
			bestAttr, bestGain = a, gain
		}
	}
	if bestAttr < 0 {
		return &treeNode{pred: mode}
	}
	groups := map[int32][]int{}
	col := rel.Column(bestAttr)
	for _, r := range rows {
		groups[col[r]] = append(groups[col[r]], r)
	}
	used[bestAttr] = true
	nd := &treeNode{attr: bestAttr, fallback: mode, children: map[int32]*treeNode{}}
	for v, g := range groups {
		nd.children[v] = buildNode(rel, label, g, used, depth-1)
	}
	used[bestAttr] = false
	return nd
}

func modeOf(col []int32, rows []int) int32 {
	counts := map[int32]int{}
	best, bestC := int32(0), -1
	for _, r := range rows {
		counts[col[r]]++
		if c := counts[col[r]]; c > bestC || (c == bestC && col[r] < best) {
			best, bestC = col[r], c
		}
	}
	return best
}

func pure(col []int32, rows []int) bool {
	if len(rows) == 0 {
		return true
	}
	first := col[rows[0]]
	for _, r := range rows[1:] {
		if col[r] != first {
			return false
		}
	}
	return true
}

// entropyOf and splitEntropy accumulate over sorted keys: float addition
// is not associative, so summing in map order would make entropies — and
// near-tie split choices — differ run to run.
func entropyOf(col []int32, rows []int) float64 {
	counts := map[int32]int{}
	for _, r := range rows {
		counts[col[r]]++
	}
	n := float64(len(rows))
	var h float64
	for _, k := range sortedKeys(counts) {
		p := float64(counts[k]) / n
		h -= p * math.Log2(p)
	}
	return h
}

func splitEntropy(rel *dataset.Relation, label, attr int, rows []int) float64 {
	groups := map[int32][]int{}
	col := rel.Column(attr)
	for _, r := range rows {
		groups[col[r]] = append(groups[col[r]], r)
	}
	n := float64(len(rows))
	labelCol := rel.Column(label)
	var h float64
	for _, k := range sortedKeys(groups) {
		g := groups[k]
		h += float64(len(g)) / n * entropyOf(labelCol, g)
	}
	return h
}

func sortedKeys[V any](m map[int32]V) []int32 {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
