// Package ml is the tabular-ML substrate replacing the paper's autogluon
// dependency (§7): a categorical naive Bayes classifier, a depth-limited
// decision tree, and a majority-vote ensemble of both. All models are
// deterministic given their training data, so the evaluation pipeline is
// fully reproducible.
package ml

import (
	"fmt"
	"math"

	"github.com/guardrail-db/guardrail/internal/dataset"
)

// Model predicts a label code from an encoded row.
type Model interface {
	// Predict returns the predicted code for the label attribute.
	Predict(row []int32) int32
	// Label returns the index of the predicted attribute.
	Label() int
}

// Train fits the default ensemble on rel predicting labelAttr from every
// other attribute.
func Train(rel *dataset.Relation, labelAttr int) (Model, error) {
	nb, err := TrainNaiveBayes(rel, labelAttr)
	if err != nil {
		return nil, err
	}
	t1, err := TrainTree(rel, labelAttr, 3)
	if err != nil {
		return nil, err
	}
	t2, err := TrainTree(rel, labelAttr, 5)
	if err != nil {
		return nil, err
	}
	return &Ensemble{models: []Model{nb, t1, t2}, label: labelAttr}, nil
}

// Accuracy evaluates a model's 0/1 accuracy over rel.
func Accuracy(m Model, rel *dataset.Relation) float64 {
	n := rel.NumRows()
	if n == 0 {
		return 0
	}
	correct := 0
	row := make([]int32, rel.NumAttrs())
	for i := 0; i < n; i++ {
		row = rel.Row(i, row)
		if m.Predict(row) == rel.Code(i, m.Label()) {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// --- naive Bayes ---

// NaiveBayes is a categorical naive Bayes classifier with Laplace
// smoothing.
type NaiveBayes struct {
	label      int
	numClasses int
	prior      []float64   // log prior per class
	likelihood [][]float64 // [attr][class*card + value] log likelihood
	cards      []int
}

// TrainNaiveBayes fits the classifier.
func TrainNaiveBayes(rel *dataset.Relation, labelAttr int) (*NaiveBayes, error) {
	n := rel.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("ml: empty training relation")
	}
	if labelAttr < 0 || labelAttr >= rel.NumAttrs() {
		return nil, fmt.Errorf("ml: label attribute %d out of range", labelAttr)
	}
	k := rel.Cardinality(labelAttr)
	if k < 2 {
		return nil, fmt.Errorf("ml: label has %d classes", k)
	}
	m := rel.NumAttrs()
	nb := &NaiveBayes{label: labelAttr, numClasses: k, cards: make([]int, m)}
	classCount := make([]float64, k)
	labels := rel.Column(labelAttr)
	for _, c := range labels {
		if c >= 0 {
			classCount[c]++
		}
	}
	nb.prior = make([]float64, k)
	for c := 0; c < k; c++ {
		nb.prior[c] = math.Log((classCount[c] + 1) / (float64(n) + float64(k)))
	}
	nb.likelihood = make([][]float64, m)
	for a := 0; a < m; a++ {
		if a == labelAttr {
			continue
		}
		card := rel.Cardinality(a) + 1 // +1 slot for missing
		nb.cards[a] = card
		counts := make([]float64, k*card)
		col := rel.Column(a)
		for r := 0; r < n; r++ {
			c := labels[r]
			if c < 0 {
				continue
			}
			v := col[r]
			if v < 0 {
				v = int32(card - 1)
			}
			counts[int(c)*card+int(v)]++
		}
		ll := make([]float64, k*card)
		for c := 0; c < k; c++ {
			var tot float64
			for v := 0; v < card; v++ {
				tot += counts[c*card+v]
			}
			for v := 0; v < card; v++ {
				ll[c*card+v] = math.Log((counts[c*card+v] + 1) / (tot + float64(card)))
			}
		}
		nb.likelihood[a] = ll
	}
	return nb, nil
}

// Label returns the predicted attribute index.
func (nb *NaiveBayes) Label() int { return nb.label }

// Predict returns the maximum-posterior class.
func (nb *NaiveBayes) Predict(row []int32) int32 {
	best, bestScore := int32(0), math.Inf(-1)
	for c := 0; c < nb.numClasses; c++ {
		score := nb.prior[c]
		for a, ll := range nb.likelihood {
			if ll == nil {
				continue
			}
			card := nb.cards[a]
			v := row[a]
			if v < 0 || int(v) >= card {
				v = int32(card - 1)
			}
			score += ll[c*card+int(v)]
		}
		if score > bestScore {
			best, bestScore = int32(c), score
		}
	}
	return best
}

// --- ensemble ---

// Ensemble majority-votes over member models, breaking ties toward the
// first member's prediction.
type Ensemble struct {
	models []Model
	label  int
}

// NewEnsemble wraps models predicting the same label.
func NewEnsemble(label int, models ...Model) *Ensemble {
	return &Ensemble{models: models, label: label}
}

// Label returns the predicted attribute index.
func (e *Ensemble) Label() int { return e.label }

// Predict returns the majority vote.
func (e *Ensemble) Predict(row []int32) int32 {
	votes := map[int32]int{}
	first := int32(0)
	for i, m := range e.models {
		p := m.Predict(row)
		if i == 0 {
			first = p
		}
		votes[p]++
	}
	best, bestC := first, votes[first]
	for v, c := range votes {
		if c > bestC {
			best, bestC = v, c
		}
	}
	return best
}
