package repair

import (
	"testing"

	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/core"
	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/errgen"
)

// chainFixture synthesizes the postal-chain program and returns program +
// relation.
func chainFixture(t *testing.T) (*dsl.Program, *dataset.Relation) {
	t.Helper()
	rel, err := bn.PostalChain(8).Sample(3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Synthesize(rel, core.Options{Epsilon: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Program.Stmts) < 2 {
		t.Fatalf("fixture synthesized only %d statements", len(res.Program.Stmts))
	}
	return res.Program, rel
}

func TestRepairCleanRowIsNoop(t *testing.T) {
	prog, rel := chainFixture(t)
	r := New(prog, Options{})
	row := rel.Row(0, nil)
	before := append([]int32(nil), row...)
	edits, ok := r.Repair(row)
	if !ok || len(edits) != 0 {
		t.Fatalf("clean row repaired: %v ok=%v", edits, ok)
	}
	for i := range row {
		if row[i] != before[i] {
			t.Fatal("clean row mutated")
		}
	}
}

func TestRepairSingleCorruption(t *testing.T) {
	prog, rel := chainFixture(t)
	r := New(prog, Options{})
	row := rel.Row(0, nil)
	want := row[1]
	row[1] = rel.Intern(1, "gibbon")
	edits, ok := r.Repair(row)
	if !ok {
		t.Fatal("single corruption not repaired")
	}
	if len(edits) != 1 || edits[0].Attr != 1 {
		t.Fatalf("edits = %v", edits)
	}
	if row[1] != want {
		t.Fatalf("repaired to %d, want %d", row[1], want)
	}
	if len(prog.Detect(row)) != 0 {
		t.Fatal("row still violates after repair")
	}
}

func TestRepairDoubleCorruption(t *testing.T) {
	// The Appendix F scenario: corrupt a cell and its determinant; plain
	// per-statement rectify fixes one and may leave an inconsistency, the
	// holistic repair makes the whole row consistent.
	prog, rel := chainFixture(t)
	r := New(prog, Options{MaxEdits: 2})
	row := rel.Row(0, nil)
	row[1] = rel.Intern(1, "gibbon1") // City corrupted
	row[2] = rel.Intern(2, "gibbon2") // State corrupted too
	if _, ok := r.Repair(row); !ok {
		t.Fatal("double corruption not repaired within 2 edits")
	}
	if len(prog.Detect(row)) != 0 {
		t.Fatal("row inconsistent after holistic repair")
	}
}

func TestRepairBudgetRespected(t *testing.T) {
	prog, rel := chainFixture(t)
	r := New(prog, Options{MaxEdits: 1})
	row := rel.Row(0, nil)
	row[1] = rel.Intern(1, "x1")
	row[2] = rel.Intern(2, "x2")
	row[3] = rel.Intern(3, "x3")
	before := append([]int32(nil), row...)
	if _, ok := r.Repair(row); ok {
		// A 1-edit repair of a triple corruption is only possible if the
		// program does not govern all three cells; in that case the row
		// must at least be consistent now.
		if len(prog.Detect(row)) != 0 {
			t.Fatal("claimed repair leaves violations")
		}
		return
	}
	for i := range row {
		if row[i] != before[i] {
			t.Fatal("failed repair mutated the row")
		}
	}
}

func TestApplyOverRelation(t *testing.T) {
	prog, rel := chainFixture(t)
	dirty := rel.Clone()
	if _, err := errgen.Inject(dirty, errgen.Options{Rate: 0.03, MinErrors: 20, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	r := New(prog, Options{MaxEdits: 2})
	repaired, unrepairable, err := r.Apply(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if repaired == 0 {
		t.Fatal("nothing repaired")
	}
	// Every touched row must now be consistent.
	rep, err := core.NewGuard(prog, core.Ignore).Apply(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsFlagged > unrepairable {
		t.Fatalf("flagged %d rows > unrepairable %d", rep.RowsFlagged, unrepairable)
	}
}

func TestHolisticBeatsNaiveOnDeterminantCorruption(t *testing.T) {
	// Corrupt a determinant (PostalCode). Naive rectify rewrites the
	// dependent City to match the corrupted PostalCode's branch — if one
	// exists — or leaves an inconsistency. Holistic repair may instead fix
	// the PostalCode itself; either way the row ends consistent.
	prog, rel := chainFixture(t)
	r := New(prog, Options{MaxEdits: 2})
	row := rel.Row(0, nil)
	row[0] = rel.Intern(0, "badcode")
	if _, ok := r.Repair(row); ok {
		if len(prog.Detect(row)) != 0 {
			t.Fatal("repair left violations")
		}
	}
}

func TestExplain(t *testing.T) {
	_, rel := chainFixture(t)
	msg := Explain(Edit{Attr: 1, From: 0, To: 1}, rel)
	if msg == "" {
		t.Fatal("empty explanation")
	}
}
