package repair

import (
	"sort"
	"testing"

	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/obs"
)

// fanFixture is a hand-built program with known branching, so search-cost
// assertions are exact. Four attributes: a determinant d (attr 0) and
// three dependents x1..x3 (attrs 1..3). Each dependent has one statement
// with four branches (one per determinant value), giving every dependent
// four candidate values and the determinant four — a wide, fully known
// search tree. Codes are chosen so the correct value (3) sorts last among
// equal-weight candidates, forcing the DFS to exhaust the wrong ones
// first.
func fanFixture() *dsl.Program {
	stmts := make([]dsl.Statement, 3)
	for i := range stmts {
		on := i + 1
		branches := make([]dsl.Branch, 4)
		for dv := int32(0); dv < 4; dv++ {
			// Under determinant value dv, dependent must be dv ^ 3: value 3
			// when d=0 (the row under test), other codes otherwise.
			branches[dv] = dsl.Branch{
				Cond:  dsl.Condition{{Attr: 0, Value: dv}},
				Value: dv ^ 3,
			}
		}
		stmts[i] = dsl.Statement{Given: []int{0}, On: on, Branches: branches}
	}
	return &dsl.Program{Stmts: stmts}
}

// detectCalls runs fn on an instrumented clone of r and reports how many
// times the program's Detect was invoked.
func detectCalls(prog *dsl.Program, opts Options, fn func(r *Repairer)) int64 {
	reg := obs.New()
	fn(New(prog, opts).Instrument(reg))
	return reg.Counter("repair.detect_calls").Value()
}

// refRepairNestedDeepening reproduces the pre-fix algorithm — iterative
// deepening nested inside every recursion level — against the same
// candidate tables, counting Detect calls. It exists only as the
// regression baseline for TestSearchNoNestedDeepening.
func refRepairNestedDeepening(r *Repairer, row []int32) (edits []Edit, detects int) {
	var search func(row []int32, acc []Edit, budget int) []Edit
	search = func(row []int32, acc []Edit, budget int) []Edit {
		detects++
		vs := r.prog.Detect(row)
		if len(vs) == 0 {
			return append([]Edit(nil), acc...)
		}
		if budget == 0 {
			return nil
		}
		touch := map[int]bool{}
		for _, v := range vs {
			touch[v.Attr] = true
			for _, g := range r.prog.Stmts[v.Stmt].Given {
				touch[g] = true
			}
		}
		attrs := make([]int, 0, len(touch))
		for a := range touch {
			if edited(acc, a) {
				continue
			}
			attrs = append(attrs, a)
		}
		sort.Ints(attrs)
		for depth := 1; depth <= budget; depth++ {
			for _, a := range attrs {
				orig := row[a]
				for _, cand := range r.candidates[a] {
					if cand == orig {
						continue
					}
					row[a] = cand
					if res := search(row, append(acc, Edit{Attr: a, From: orig, To: cand}), depth-1); res != nil {
						row[a] = orig
						return res
					}
				}
				row[a] = orig
			}
		}
		return nil
	}
	detects++ // the Repair-level clean check
	if len(r.prog.Detect(row)) == 0 {
		return nil, detects
	}
	work := append([]int32(nil), row...)
	best := search(work, nil, r.opts.MaxEdits)
	if best == nil {
		return nil, detects
	}
	for _, e := range best {
		row[e.Attr] = e.To
	}
	return best, detects
}

// TestRepairTwoEditMinimal: with a generous budget (MaxEdits 3) a 2-edit
// repair is found as exactly 2 edits — deepening runs outermost, so the
// depth-2 round fires before any 3-edit state is ever generated.
func TestRepairTwoEditMinimal(t *testing.T) {
	prog := fanFixture()
	// d=0: all dependents must be 3. x3 is already correct; x1, x2 hold the
	// out-of-domain code 4 → minimal repair is exactly {x1→3, x2→3}.
	row := []int32{0, 4, 4, 3}
	r := New(prog, Options{MaxEdits: 3})
	edits, ok := r.Repair(row)
	if !ok {
		t.Fatal("2-edit repair not found")
	}
	if len(edits) != 2 {
		t.Fatalf("edits = %v, want exactly 2 (fewer-edits-first)", edits)
	}
	if len(prog.Detect(row)) != 0 {
		t.Fatalf("row still violates after repair: %v", row)
	}
	if row[1] != 3 || row[2] != 3 {
		t.Fatalf("row repaired to %v, want [0 3 3 3]", row)
	}
}

// TestSearchNoNestedDeepening is the cost regression test: on a 3-edit
// repair the pre-fix algorithm re-runs shallow deepening rounds inside
// every budget>=2 recursion, re-visiting 1-edit child states already
// covered by the outer rounds. The fixed search must find the identical
// repair with strictly fewer Detect calls than the nested-deepening
// reference.
func TestSearchNoNestedDeepening(t *testing.T) {
	prog := fanFixture()
	opts := Options{MaxEdits: 3}
	dirty := []int32{0, 4, 4, 4} // all three dependents corrupted

	row := append([]int32(nil), dirty...)
	var edits []Edit
	var ok bool
	got := detectCalls(prog, opts, func(r *Repairer) {
		edits, ok = r.Repair(row)
	})
	if !ok || len(edits) != 3 {
		t.Fatalf("repair = %v ok=%v, want 3 edits", edits, ok)
	}
	if len(prog.Detect(row)) != 0 {
		t.Fatal("row still violates after repair")
	}

	refRow := append([]int32(nil), dirty...)
	refEdits, refDetects := refRepairNestedDeepening(New(prog, opts), refRow)
	if len(refEdits) != len(edits) {
		t.Fatalf("reference found %v, fixed found %v", refEdits, edits)
	}
	for i := range edits {
		if edits[i] != refEdits[i] {
			t.Fatalf("edit %d differs: %v vs reference %v", i, edits[i], refEdits[i])
		}
	}
	if got >= int64(refDetects) {
		t.Fatalf("fixed search used %d Detect calls, reference (nested deepening) used %d — want strictly fewer", got, refDetects)
	}
	t.Logf("detect calls: fixed=%d, nested-deepening reference=%d", got, refDetects)
}
