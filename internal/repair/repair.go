// Package repair implements holistic row repair on top of the DSL: where
// core.Rectify fixes each violated statement independently (and, as the
// paper's Appendix F case study notes, can be defeated when several cells
// of one row are corrupted), the holistic repairer searches for a minimal
// set of cell edits that makes the whole row consistent with the program.
// This is the natural extension of the paper's rectify strategy and is
// exposed as a fifth strategy for the guard.
package repair

import (
	"fmt"
	"sort"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/obs"
)

// Options bounds the search.
type Options struct {
	// MaxEdits caps the repair size (default 2): a repair that rewrites
	// more than MaxEdits cells is rejected as implausible.
	MaxEdits int
	// MaxCandidates caps the candidate values tried per cell (default 8),
	// taken from the values the program's branches mention for that
	// attribute.
	MaxCandidates int
}

func (o *Options) defaults() {
	if o.MaxEdits == 0 {
		o.MaxEdits = 2
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 8
	}
}

// Edit is one proposed cell change.
type Edit struct {
	Attr int
	From int32
	To   int32
}

// Repairer precomputes per-attribute candidate values from a program.
type Repairer struct {
	prog       *dsl.Program
	opts       Options
	candidates map[int][]int32 // attr -> candidate codes, deterministic order
	attrs      []int           // attrs mentioned anywhere in the program
	metrics    repairMetrics
}

// repairMetrics holds pre-resolved counters; the zero value no-ops.
type repairMetrics struct {
	attempts     *obs.Counter
	repaired     *obs.Counter
	unrepairable *obs.Counter
	detectCalls  *obs.Counter
}

// New builds a repairer for prog.
func New(prog *dsl.Program, opts Options) *Repairer {
	opts.defaults()
	cands := map[int]map[int32]int{} // attr -> code -> weight (mention count)
	bump := func(attr int, v int32) {
		m := cands[attr]
		if m == nil {
			m = map[int32]int{}
			cands[attr] = m
		}
		m[v]++
	}
	for _, s := range prog.Stmts {
		for _, b := range s.Branches {
			bump(s.On, b.Value)
			for _, p := range b.Cond {
				bump(p.Attr, p.Value)
			}
		}
	}
	r := &Repairer{prog: prog, opts: opts, candidates: map[int][]int32{}}
	for attr, m := range cands {
		type wv struct {
			v int32
			w int
		}
		list := make([]wv, 0, len(m))
		for v, w := range m {
			list = append(list, wv{v, w})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].w != list[j].w {
				return list[i].w > list[j].w
			}
			return list[i].v < list[j].v
		})
		if len(list) > opts.MaxCandidates {
			list = list[:opts.MaxCandidates]
		}
		codes := make([]int32, len(list))
		for i, e := range list {
			codes[i] = e.v
		}
		r.candidates[attr] = codes
		r.attrs = append(r.attrs, attr)
	}
	sort.Ints(r.attrs)
	return r
}

// Instrument registers the repairer's counters (repair.*) on reg and
// returns the repairer for chaining. A nil registry is a no-op.
func (r *Repairer) Instrument(reg *obs.Registry) *Repairer {
	r.metrics = repairMetrics{
		attempts:     reg.Counter("repair.attempts"),
		repaired:     reg.Counter("repair.repaired"),
		unrepairable: reg.Counter("repair.unrepairable"),
		detectCalls:  reg.Counter("repair.detect_calls"),
	}
	return r
}

// violationCount counts statement violations of row.
func (r *Repairer) violationCount(row []int32) int {
	r.metrics.detectCalls.Inc()
	return len(r.prog.Detect(row))
}

// Repair searches for the smallest edit set (up to MaxEdits cells) that
// leaves row violation-free, preferring (a) fewer edits, (b) edits whose
// candidate values are mentioned more often by the program. On success the
// row is modified in place and the edits returned; ok is false when no
// bounded repair exists (the row is left untouched).
//
// Iterative deepening lives here and only here: each depth bound runs one
// plain depth-bounded DFS, so states at depth d are visited once per
// deepening round, never re-explored by nested deepening loops inside the
// recursion.
func (r *Repairer) Repair(row []int32) (edits []Edit, ok bool) {
	if r.violationCount(row) == 0 {
		return nil, true
	}
	r.metrics.attempts.Inc()
	work := append([]int32(nil), row...)
	var best []Edit
	for depth := 1; depth <= r.opts.MaxEdits; depth++ {
		if best = r.search(work, nil, depth); best != nil {
			break
		}
	}
	if best == nil {
		return nil, false
	}
	for _, e := range best {
		row[e.Attr] = e.To
	}
	return best, true
}

// search is a plain depth-bounded DFS over edit sets on the attributes
// involved in current violations (and their statements' determinants).
// Candidate order encodes preference; the first full repair found within
// the budget wins. Fewer-edits-first is the caller's responsibility
// (Repair deepens the budget one edit at a time).
func (r *Repairer) search(row []int32, acc []Edit, budget int) []Edit {
	r.metrics.detectCalls.Inc()
	vs := r.prog.Detect(row)
	if len(vs) == 0 {
		return append([]Edit(nil), acc...)
	}
	if budget == 0 {
		return nil
	}
	// Attributes worth editing: the violated dependents and the
	// determinants of violated statements.
	touch := map[int]bool{}
	for _, v := range vs {
		touch[v.Attr] = true
		for _, g := range r.prog.Stmts[v.Stmt].Given {
			touch[g] = true
		}
	}
	attrs := make([]int, 0, len(touch))
	for a := range touch {
		if edited(acc, a) {
			continue
		}
		attrs = append(attrs, a)
	}
	sort.Ints(attrs)
	for _, a := range attrs {
		orig := row[a]
		for _, cand := range r.candidates[a] {
			if cand == orig {
				continue
			}
			row[a] = cand
			if res := r.search(row, append(acc, Edit{Attr: a, From: orig, To: cand}), budget-1); res != nil {
				row[a] = orig
				return res
			}
		}
		row[a] = orig
	}
	return nil
}

func edited(acc []Edit, attr int) bool {
	for _, e := range acc {
		if e.Attr == attr {
			return true
		}
	}
	return false
}

// Apply runs holistic repair over every row of rel, returning per-row
// outcomes: the number of repaired rows and rows left unrepairable.
func (r *Repairer) Apply(rel *dataset.Relation) (repaired, unrepairable int, err error) {
	row := make([]int32, rel.NumAttrs())
	for i := 0; i < rel.NumRows(); i++ {
		row = rel.Row(i, row)
		if r.violationCount(row) == 0 {
			continue
		}
		edits, ok := r.Repair(row)
		if !ok {
			unrepairable++
			r.metrics.unrepairable.Inc()
			continue
		}
		repaired++
		r.metrics.repaired.Inc()
		for _, e := range edits {
			rel.SetCode(i, e.Attr, e.To)
		}
	}
	return repaired, unrepairable, nil
}

// Explain renders an edit with names from schema.
func Explain(e Edit, schema *dataset.Relation) string {
	return fmt.Sprintf("%s: %q -> %q", schema.Attr(e.Attr),
		schema.Dict(e.Attr).Value(e.From), schema.Dict(e.Attr).Value(e.To))
}
