package experiments

import (
	"math"
	"strings"
	"testing"
)

// fastCfg restricts integration tests to the two smallest schemas at a
// small scale so the full evaluation pipeline still runs in seconds.
func fastCfg() Config {
	return Config{Scale: 0.05, Seed: 1, Datasets: []int{2, 6}}
}

func TestTable1(t *testing.T) {
	res, err := Table1(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Errors <= 0 {
			t.Fatalf("dataset %d: no errors injected", r.ID)
		}
		if r.Mispred < 0 || r.Mispred > r.Errors*2 {
			t.Fatalf("dataset %d: implausible mispred count %d for %d errors", r.ID, r.Mispred, r.Errors)
		}
	}
	if !strings.Contains(res.Render(), "Spearman") {
		t.Fatal("render missing correlation line")
	}
}

func TestTable3ShapeHolds(t *testing.T) {
	res, err := Table3(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Comparisons != 4 {
		t.Fatalf("rows=%d comparisons=%d", len(res.Rows), res.Comparisons)
	}
	// Guardrail must produce a usable (non-failed) detector on these
	// datasets and win at least one comparison.
	for _, r := range res.Rows {
		if r.Guardrail.Failed {
			t.Fatalf("dataset %d: guardrail failed: %s", r.ID, r.Guardrail.Reason)
		}
		if !r.Guardrail.Failed && !math.IsNaN(r.Guardrail.F1) && (r.Guardrail.F1 < 0 || r.Guardrail.F1 > 1) {
			t.Fatalf("dataset %d: F1 out of range: %g", r.ID, r.Guardrail.F1)
		}
	}
	if !strings.Contains(res.Render(), "Guardrail") {
		t.Fatal("render broken")
	}
}

// TestTable3GuardrailWins checks the headline shape on datasets large
// enough for the statistical synthesis to find structure: Guardrail must
// win comparisons there (at full scale it ranks first in the majority of
// the 24 comparisons; see EXPERIMENTS.md).
func TestTable3GuardrailWins(t *testing.T) {
	res, err := Table3(Config{Scale: 0.05, Seed: 1, Datasets: []int{1, 11}})
	if err != nil {
		t.Fatal(err)
	}
	if res.GuardrailFirst == 0 {
		t.Fatalf("guardrail won no comparisons on large datasets:\n%s", res.Render())
	}
}

func TestTable4(t *testing.T) {
	res, err := Table4(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Total <= 0 {
			t.Fatalf("dataset %d: no time recorded", r.ID)
		}
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestTable5(t *testing.T) {
	res, err := Table5(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.P < 0 || r.P > 1 {
			t.Fatalf("dataset %d: P = %g", r.ID, r.P)
		}
		if r.HasMissed && (r.R < 0 || r.R > 1) {
			t.Fatalf("dataset %d: R = %g", r.ID, r.R)
		}
	}
	_ = res.Render()
}

func TestTable6(t *testing.T) {
	res, err := Table6(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.InferenceTime <= 0 {
			t.Fatalf("dataset %d: no inference time", r.ID)
		}
	}
	_ = res.Render()
}

func TestFig6RectificationHelps(t *testing.T) {
	res, err := Fig6(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 8 { // 2 datasets x 4 queries
		t.Fatalf("points = %d", len(res.Points))
	}
	var dirtySum, rectSum float64
	for _, pt := range res.Points {
		dirtySum += pt.ErrDirty
		rectSum += pt.ErrRect
	}
	if rectSum > dirtySum {
		t.Fatalf("rectification increased total error: %g -> %g", dirtySum, rectSum)
	}
	if !strings.Contains(res.Render(), "Mean error reduction") {
		t.Fatal("render broken")
	}
}

func TestTable7SearchSpaceReduction(t *testing.T) {
	res, err := Table7(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.DAGsWithMEC < 1 {
			t.Fatalf("dataset %d: empty MEC", r.ID)
		}
		if float64(r.DAGsWithMEC) > r.DAGsWithout {
			t.Fatalf("dataset %d: MEC (%d) larger than orientation space (%g)",
				r.ID, r.DAGsWithMEC, r.DAGsWithout)
		}
	}
	_ = res.Render()
}

func TestTable8AuxAtLeastIdentity(t *testing.T) {
	res, err := Table8(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	var auxSum, idSum float64
	for _, r := range res.Rows {
		auxSum += r.CovAux
		idSum += r.CovIdentity
	}
	if auxSum+0.05 < idSum {
		t.Fatalf("aux sampler coverage (%g) trails identity (%g)", auxSum, idSum)
	}
	_ = res.Render()
}

func TestFig7CoverageLossTradeoff(t *testing.T) {
	res, err := Fig7(fastCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(Fig7Epsilons) {
		t.Fatalf("points = %d", len(res.Points))
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	// The paper's Fig. 7 shape: both coverage and loss grow with ε for
	// most datasets (saturated datasets can plateau, hence the slack).
	if last.Coverage < first.Coverage-0.05 {
		t.Fatalf("coverage shrank across the sweep: %g -> %g", first.Coverage, last.Coverage)
	}
	if last.LossRate < first.LossRate-1e-9 {
		t.Fatalf("loss rate shrank across the sweep: %g -> %g", first.LossRate, last.LossRate)
	}
	for _, pt := range res.Points {
		if pt.Coverage < 0 || pt.Coverage > 1 || pt.LossRate < 0 {
			t.Fatalf("point out of range: %+v", pt)
		}
	}
	_ = res.Render()
}

func TestSMTBaselineBlowUp(t *testing.T) {
	res, err := SMTBaseline(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Clauses <= 0 {
			t.Fatalf("dataset %d: no clauses", r.ID)
		}
	}
	_ = res.Render()
}

func TestAblationGNT(t *testing.T) {
	res, err := AblationGNT(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.StmtsOn > r.StmtsOff {
			t.Fatalf("dataset %d: GNT pruning grew the program (%d vs %d)", r.ID, r.StmtsOn, r.StmtsOff)
		}
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}
