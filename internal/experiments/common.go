// Package experiments reproduces every table and figure in the paper's
// evaluation (§8) on the 12 synthetic dataset analogs: error detection
// quality (Tables 1, 3, 5), synthesis cost (Tables 4, 7), the auxiliary
// sampler and ε ablations (Table 8, Fig. 7), ML-integrated query accuracy
// and overhead (Table 6, Fig. 6), and the OptSMT baseline blow-up (§8.3).
// Each experiment is deterministic given its Config.
package experiments

import (
	"fmt"
	"strings"

	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/core"
	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/dsl/compile"
	"github.com/guardrail-db/guardrail/internal/errgen"
	"github.com/guardrail-db/guardrail/internal/ml"
	"github.com/guardrail-db/guardrail/internal/obs"
	"github.com/guardrail-db/guardrail/internal/obs/trace"
)

// Config scales the experiments. Scale 1.0 reproduces Table 2 row counts;
// the default 0.1 keeps a full run in CI territory while preserving every
// qualitative shape.
type Config struct {
	Scale float64
	Seed  int64
	// Datasets restricts the run to these Table 2 ids; nil means all 12.
	Datasets []int
	// Epsilon for Guardrail synthesis (default 0.05, the top of the
	// paper's recommended range).
	Epsilon float64
	// NaturalNoise is the unlabeled background corruption rate applied to
	// the whole dataset before splitting (default 0.02), modelling the
	// real-world noise the paper's datasets carry.
	NaturalNoise float64
	// MinSupportOverride overrides the synthesizer's branch support floor
	// when positive (used by calibration sweeps).
	MinSupportOverride int
	// AlphaOverride / MaxCondOverride override the structure learner's
	// significance level and conditioning-set cap when positive.
	AlphaOverride   float64
	MaxCondOverride int
	// AuxShiftsOverride overrides the auxiliary sampler's shift count.
	AuxShiftsOverride int
	// Workers bounds each synthesis stage's worker pool; <= 0 uses every
	// core, 1 forces the serial pipeline. Results are identical at any
	// value — only wall-clock changes.
	Workers int
	// Obs receives pipeline counters and stage timings from every
	// synthesis run an experiment performs; nil disables instrumentation.
	Obs *obs.Registry
	// Trace parents every synthesis run's span tree; the zero scope
	// disables tracing.
	Trace trace.Scope
	// Engine selects the guard execution backend for every guard an
	// experiment builds. EngineCompiled lowers each synthesized program
	// through internal/dsl/compile (open universe); a guard whose
	// translation validation fails silently keeps the AST interpreter, so
	// results are engine-independent by construction.
	Engine core.Engine
}

// newGuard builds a guard for prog on the configured engine.
func (c Config) newGuard(prog *dsl.Program, strategy core.Strategy) *core.Guard {
	g := core.NewGuard(prog, strategy)
	if c.Engine == core.EngineCompiled {
		if _, err := g.Compile(compile.Options{Obs: c.Obs, Trace: c.Trace}); err != nil && c.Obs != nil {
			c.Obs.Counter("experiments.guard_compile_failed").Inc()
		}
	}
	return g
}

func (c Config) alphaOrDefault() float64 {
	if c.AlphaOverride > 0 {
		return c.AlphaOverride
	}
	return 0.005
}

func (c Config) maxCondOrDefault() int {
	if c.MaxCondOverride > 0 {
		return c.MaxCondOverride
	}
	return 3
}

func (c Config) auxShiftsOrDefault() int {
	if c.AuxShiftsOverride > 0 {
		return c.AuxShiftsOverride
	}
	return 16
}

func (c *Config) defaults() {
	if c.Scale == 0 {
		c.Scale = 0.1
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.05
	}
	if c.NaturalNoise == 0 {
		c.NaturalNoise = 0.02
	}
}

func (c Config) specs() []bn.DatasetSpec {
	if len(c.Datasets) == 0 {
		return bn.Registry
	}
	var out []bn.DatasetSpec
	for _, id := range c.Datasets {
		if s, err := bn.SpecByID(id); err == nil {
			out = append(out, s)
		}
	}
	return out
}

// prepared bundles the per-dataset artifacts shared across experiments.
type prepared struct {
	spec     bn.DatasetSpec
	train    *dataset.Relation
	test     *dataset.Relation // test split (carries natural background noise)
	pristine *dataset.Relation // test split before any noise — Fig. 6's ground truth
	dirty    *dataset.Relation // test split with injected (gold-masked) errors
	mask     *errgen.Mask
	label    int // label attribute index
}

// prepare generates, splits and corrupts one dataset following the §8
// protocol. Real-world datasets are inherently noisy — the paper's premise
// — so a small unlabeled background-noise rate is applied to the whole
// relation first (it is part of the data, not of the gold error mask).
// Constraints are then mined on the "error-free" split (free of *injected*
// errors) and evaluated against errors injected into the test split at 1%
// (floored for small datasets).
func prepare(spec bn.DatasetSpec, cfg Config) (*prepared, error) {
	cfg.defaults()
	rel, err := spec.Generate(cfg.Scale, cfg.Seed+int64(spec.ID))
	if err != nil {
		return nil, fmt.Errorf("experiments: generating %s: %w", spec.Name, err)
	}
	noiseless := rel.Clone()
	if _, err := errgen.Inject(rel, errgen.Options{
		Rate: cfg.NaturalNoise, MinErrors: 1, RandomStringProb: 0.05,
		Seed: cfg.Seed + 7777 + int64(spec.ID),
	}); err != nil {
		return nil, fmt.Errorf("experiments: background noise for %s: %w", spec.Name, err)
	}
	// Identical split seeds keep the noisy and pristine splits row-aligned.
	train, test := rel.Split(0.6, cfg.Seed+int64(spec.ID))
	_, pristine := noiseless.Split(0.6, cfg.Seed+int64(spec.ID))
	dirty := test.Clone()
	mask, err := errgen.Inject(dirty, errgen.Options{Rate: 0.01, MinErrors: 30, Seed: cfg.Seed + int64(spec.ID)})
	if err != nil {
		return nil, fmt.Errorf("experiments: injecting errors into %s: %w", spec.Name, err)
	}
	label := rel.AttrIndex(spec.LabelAttr)
	if label < 0 {
		return nil, fmt.Errorf("experiments: %s: label attribute %q missing", spec.Name, spec.LabelAttr)
	}
	return &prepared{spec: spec, train: train, test: test, pristine: pristine, dirty: dirty, mask: mask, label: label}, nil
}

// synthOptions are the Guardrail settings used across the evaluation.
func synthOptions(cfg Config, seed int64) core.Options {
	cfg.defaults()
	ms := 2
	if cfg.MinSupportOverride > 0 {
		ms = cfg.MinSupportOverride
	}
	return core.Options{
		Epsilon:       cfg.Epsilon,
		MinSupport:    ms,
		Alpha:         cfg.alphaOrDefault(),
		MaxCond:       cfg.maxCondOrDefault(),
		MaxDAGs:       256,
		AuxShifts:     cfg.auxShiftsOrDefault(),
		AuxMaxSamples: 120000,
		Seed:          seed,
		Workers:       cfg.Workers,
		Obs:           cfg.Obs,
		Trace:         cfg.Trace,
	}
}

// trainModel fits the ML substrate on the training split. A depth-limited
// decision tree stands in for the paper's autogluon models: like real
// tabular models it leans on a few strong features, so single-cell
// corruption flips a realistic share of predictions (§5's premise);
// the naive-Bayes ensemble averages corruption away and would understate
// the error/mis-prediction coupling of Tables 1 and 5.
func trainModel(p *prepared) (ml.Model, error) {
	return ml.TrainTree(p.train, p.label, 6)
}

// mispredictions counts rows of dirty whose model prediction differs from
// the prediction on the corresponding clean row — the error-induced
// mis-predictions of §5 — and returns the per-row mask.
func mispredictions(model ml.Model, clean, dirty *dataset.Relation) (int, []bool) {
	n := clean.NumRows()
	mask := make([]bool, n)
	count := 0
	rowC := make([]int32, clean.NumAttrs())
	rowD := make([]int32, clean.NumAttrs())
	for i := 0; i < n; i++ {
		rowC = clean.Row(i, rowC)
		rowD = dirty.Row(i, rowD)
		if model.Predict(rowC) != model.Predict(rowD) {
			mask[i] = true
			count++
		}
	}
	return count, mask
}

// renderTable formats rows of cells with a header, aligned by column.
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
