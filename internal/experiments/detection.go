package experiments

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/guardrail-db/guardrail/internal/core"
	"github.com/guardrail-db/guardrail/internal/errgen"
	"github.com/guardrail-db/guardrail/internal/fd"
	"github.com/guardrail-db/guardrail/internal/stats"
)

// Table1Row reports injected errors vs error-induced mis-predictions for
// one dataset (Table 1).
type Table1Row struct {
	ID      int
	Name    string
	Errors  int
	Mispred int
}

// Table1Result aggregates Table 1 plus the §5 Spearman correlation.
type Table1Result struct {
	Rows     []Table1Row
	Spearman float64
	PValue   float64
}

// Table1 reproduces Table 1: per dataset, the number of injected errors
// and the number of mis-predictions they induce, with the Spearman rank
// correlation between the two series.
func Table1(cfg Config) (*Table1Result, error) {
	cfg.defaults()
	res := &Table1Result{}
	var errsF, misF []float64
	for _, spec := range cfg.specs() {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		model, err := trainModel(p)
		if err != nil {
			return nil, fmt.Errorf("experiments: training on %s: %w", spec.Name, err)
		}
		// Table 1 studies how error volume drives mis-predictions, so the
		// injected count must track dataset size: a proportional rate with
		// a small floor (the paper's 30-error cap only binds at full scale).
		dirty := p.test.Clone()
		mask, err := errgen.Inject(dirty, errgen.Options{
			Rate: 0.02, MinErrors: 5, Seed: cfg.Seed + 31 + int64(spec.ID),
		})
		if err != nil {
			return nil, err
		}
		mis, _ := mispredictions(model, p.test, dirty)
		row := Table1Row{ID: spec.ID, Name: spec.Name, Errors: mask.NumErrors(), Mispred: mis}
		res.Rows = append(res.Rows, row)
		errsF = append(errsF, float64(row.Errors))
		misF = append(misF, float64(row.Mispred))
	}
	if len(res.Rows) >= 3 {
		rho, pv, err := stats.Spearman(errsF, misF)
		if err == nil {
			res.Spearman, res.PValue = rho, pv
		}
	}
	return res, nil
}

// Render formats the result like the paper's Table 1.
func (r *Table1Result) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{fmt.Sprintf("%d", row.ID), row.Name,
			fmt.Sprintf("%d", row.Errors), fmt.Sprintf("%d", row.Mispred)})
	}
	s := renderTable([]string{"ID", "Dataset", "# Errors", "# Mis-pred"}, rows)
	return s + fmt.Sprintf("Spearman rho = %.3f (p = %.3g)\n", r.Spearman, r.PValue)
}

// Table3Cell is one method's detection quality on one dataset; Failed
// marks the "-" cells (method crashed / exceeded its budget).
type Table3Cell struct {
	F1, MCC float64
	Failed  bool
	Reason  string
}

// Table3Row is one dataset's comparison line.
type Table3Row struct {
	ID        int
	Name      string
	Guardrail Table3Cell
	TANE      Table3Cell
	CTANE     Table3Cell
	FDX       Table3Cell
}

// Table3Result aggregates Table 3 plus the rank-first count the paper
// quotes ("ranks first in 17 of 24 comparisons").
type Table3Result struct {
	Rows           []Table3Row
	GuardrailFirst int
	Comparisons    int
}

// score computes F1/MCC of a flag vector against the gold row mask.
func score(flags, gold []bool) Table3Cell {
	var c stats.Confusion
	for i := range gold {
		c.Add(flags[i], gold[i])
	}
	return Table3Cell{F1: c.F1(), MCC: c.MCC()}
}

// Table3 reproduces Table 3: error-detection F1 and MCC for Guardrail vs
// the TANE, CTANE and FDX baselines. Constraints are mined on the clean
// training split and evaluated on the error-injected test split.
func Table3(cfg Config) (*Table3Result, error) {
	cfg.defaults()
	out := &Table3Result{}
	for _, spec := range cfg.specs() {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		row := Table3Row{ID: spec.ID, Name: spec.Name}
		gold := p.mask.RowDirty

		// Guardrail.
		if res, err := core.Synthesize(p.train, synthOptions(cfg, cfg.Seed+int64(spec.ID))); err != nil {
			row.Guardrail = Table3Cell{Failed: true, Reason: err.Error()}
		} else {
			guard := cfg.newGuard(res.Program, core.Ignore)
			rep, err := guard.Apply(p.dirty.Clone())
			if err != nil {
				row.Guardrail = Table3Cell{Failed: true, Reason: err.Error()}
			} else {
				row.Guardrail = score(rep.Flagged, gold)
			}
		}
		// TANE.
		if fds, err := fd.TANE(p.train, fd.TANEOptions{Epsilon: 0.001, MaxLHS: 2}); err != nil {
			row.TANE = Table3Cell{Failed: true, Reason: err.Error()}
		} else {
			row.TANE = score(fd.NewDetector(fds, p.train).Flag(p.dirty), gold)
		}
		// CTANE.
		if cfds, err := fd.CTANE(p.train, fd.CTANEOptions{Epsilon: 0.001, MinSupport: 0.0001, MaxLHS: 2}); err != nil {
			row.CTANE = Table3Cell{Failed: true, Reason: err.Error()}
		} else {
			row.CTANE = score(fd.NewCFDDetector(cfds).Flag(p.dirty), gold)
		}
		// FDX.
		if fds, err := fd.FDX(p.train, fd.FDXOptions{Seed: cfg.Seed + int64(spec.ID)}); err != nil {
			row.FDX = Table3Cell{Failed: true, Reason: err.Error()}
		} else {
			row.FDX = score(fd.NewDetector(fds, p.train).Flag(p.dirty), gold)
		}

		out.Rows = append(out.Rows, row)
		// Rank-first counting per metric.
		for _, metric := range []func(Table3Cell) float64{
			func(c Table3Cell) float64 { return c.F1 },
			func(c Table3Cell) float64 { return c.MCC },
		} {
			out.Comparisons++
			g := metricOrNeg(row.Guardrail, metric)
			if g >= metricOrNeg(row.TANE, metric) &&
				g >= metricOrNeg(row.CTANE, metric) &&
				g >= metricOrNeg(row.FDX, metric) {
				out.GuardrailFirst++
			}
		}
	}
	return out, nil
}

func metricOrNeg(c Table3Cell, f func(Table3Cell) float64) float64 {
	if c.Failed {
		return math.Inf(-1)
	}
	v := f(c)
	if math.IsNaN(v) {
		return math.Inf(-1)
	}
	return v
}

func cellString(c Table3Cell, f func(Table3Cell) float64) string {
	if c.Failed {
		return "-"
	}
	v := f(c)
	if math.IsNaN(v) {
		return "NaN"
	}
	return f3(v)
}

// Render formats the result like the paper's Table 3.
func (r *Table3Result) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		f1 := func(c Table3Cell) float64 { return c.F1 }
		mcc := func(c Table3Cell) float64 { return c.MCC }
		rows = append(rows,
			[]string{fmt.Sprintf("%d", row.ID), "F1", cellString(row.Guardrail, f1), cellString(row.TANE, f1), cellString(row.CTANE, f1), cellString(row.FDX, f1)},
			[]string{"", "MCC", cellString(row.Guardrail, mcc), cellString(row.TANE, mcc), cellString(row.CTANE, mcc), cellString(row.FDX, mcc)},
		)
	}
	s := renderTable([]string{"Dataset", "Metric", "Guardrail", "TANE", "CTANE", "FDX"}, rows)
	return s + fmt.Sprintf("Guardrail ranks first in %d of %d comparisons\n", r.GuardrailFirst, r.Comparisons)
}

// Table4Row is one dataset's offline synthesis cost (Table 4).
type Table4Row struct {
	ID    int
	Attrs int
	Total time.Duration
}

// Table4Result aggregates the synthesis-time table.
type Table4Result struct{ Rows []Table4Row }

// Table4 reproduces Table 4: offline synthesis time per dataset.
func Table4(cfg Config) (*Table4Result, error) {
	cfg.defaults()
	out := &Table4Result{}
	for _, spec := range cfg.specs() {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		res, err := core.Synthesize(p.train, synthOptions(cfg, cfg.Seed+int64(spec.ID)))
		if err != nil {
			return nil, fmt.Errorf("experiments: synthesizing %s: %w", spec.Name, err)
		}
		out.Rows = append(out.Rows, Table4Row{ID: spec.ID, Attrs: spec.Attrs, Total: res.TotalTime()})
	}
	return out, nil
}

// Render formats the result like the paper's Table 4.
func (r *Table4Result) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{fmt.Sprintf("#%d", row.ID), fmt.Sprintf("%d", row.Attrs),
			fmt.Sprintf("%.3fs", row.Total.Seconds())})
	}
	return renderTable([]string{"Dataset", "# Attr.", "Total Time"}, rows)
}

// Table5Row reports mis-prediction detection quality (Table 5): P is the
// share of Guardrail-detected errors that caused a mis-prediction; R is
// the share of missed errors that caused one (the paper reports ~0).
type Table5Row struct {
	ID        int
	Mispred   int
	Detected  int
	P         float64
	R         float64
	HasMissed bool
}

// Table5Result aggregates the rows.
type Table5Result struct{ Rows []Table5Row }

// Table5 reproduces Table 5.
func Table5(cfg Config) (*Table5Result, error) {
	cfg.defaults()
	out := &Table5Result{}
	for _, spec := range cfg.specs() {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		model, err := trainModel(p)
		if err != nil {
			return nil, err
		}
		// Follow Table 1's proportional protocol but at a higher volume so
		// the error/mis-prediction coupling is measurable at every scale.
		dirty := p.test.Clone()
		mask, err := errgen.Inject(dirty, errgen.Options{
			Rate: 0.05, MinErrors: 30, Seed: cfg.Seed + 53 + int64(spec.ID),
		})
		if err != nil {
			return nil, err
		}
		misCount, misMask := mispredictions(model, p.test, dirty)
		res, err := core.Synthesize(p.train, synthOptions(cfg, cfg.Seed+int64(spec.ID)))
		if err != nil {
			return nil, err
		}
		rep, err := cfg.newGuard(res.Program, core.Ignore).Apply(dirty.Clone())
		if err != nil {
			return nil, err
		}
		row := Table5Row{ID: spec.ID, Mispred: misCount}
		detectedMis, missedErrs, missedMis := 0, 0, 0
		for i, dirty := range mask.RowDirty {
			detected := rep.Flagged[i]
			if detected {
				row.Detected++
				if misMask[i] {
					detectedMis++
				}
			}
			if dirty && !detected {
				missedErrs++
				if misMask[i] {
					missedMis++
				}
			}
		}
		if row.Detected > 0 {
			row.P = float64(detectedMis) / float64(row.Detected)
		}
		if missedErrs > 0 {
			row.HasMissed = true
			row.R = float64(missedMis) / float64(missedErrs)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render formats the result like the paper's Table 5.
func (r *Table5Result) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rr := "-"
		if row.HasMissed {
			rr = fmt.Sprintf("%.2f", row.R)
		}
		rows = append(rows, []string{fmt.Sprintf("%d", row.ID),
			fmt.Sprintf("%d", row.Mispred), fmt.Sprintf("%d", row.Detected),
			fmt.Sprintf("%.2f", row.P), rr})
	}
	return renderTable([]string{"ID", "# Mis-pred", "# Detected", "P", "R"}, rows)
}

// ErrNoDatasets is returned when the config selects nothing.
var ErrNoDatasets = errors.New("experiments: no datasets selected")
