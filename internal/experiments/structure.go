package experiments

import (
	"errors"
	"fmt"
	"time"

	"github.com/guardrail-db/guardrail/internal/auxdist"
	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/core"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/graph"
	"github.com/guardrail-db/guardrail/internal/pc"
	"github.com/guardrail-db/guardrail/internal/smt"
)

// Table7Row reports the search-space reduction for one dataset (Table 7).
type Table7Row struct {
	ID          int
	Attrs       int
	DAGsWithMEC int
	EnumTime    time.Duration
	Truncated   bool
	DAGsWithout float64 // acyclic orientations of the skeleton
	WithoutIsUB bool    // true when DAGsWithout is the 2^m upper bound
}

// Table7Result aggregates the table.
type Table7Result struct{ Rows []Table7Row }

// Table7 reproduces Table 7: the number of DAGs Alg. 2 enumerates inside
// the learned MEC (with timing) against the acyclic-orientation count of
// the same skeleton — the search space a structure-agnostic enumeration
// would face.
func Table7(cfg Config) (*Table7Result, error) {
	cfg.defaults()
	out := &Table7Result{}
	for _, spec := range cfg.specs() {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		aux, err := auxdist.Sample(p.train, auxdist.Options{MaxSamples: 30000, Seed: cfg.Seed + int64(spec.ID), Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		learned, err := pc.Learn(aux, pc.Options{Alpha: 0.01, MaxCond: 2, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		row := Table7Row{ID: spec.ID, Attrs: spec.Attrs}
		t0 := time.Now()
		count, err := graph.CountMEC(learned.CPDAG, 10000)
		row.EnumTime = time.Since(t0)
		if err == graph.ErrEnumLimit {
			row.Truncated = true
		} else if err != nil {
			return nil, err
		}
		row.DAGsWithMEC = count
		oc := graph.CountAcyclicOrientations(learned.CPDAG, 1<<22)
		row.DAGsWithout = oc.Count
		row.WithoutIsUB = !oc.Exact
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render formats the result like the paper's Table 7.
func (r *Table7Result) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		with := fmt.Sprintf("%d", row.DAGsWithMEC)
		if row.Truncated {
			with = ">=" + with
		}
		without := smt.ClausesHuman(row.DAGsWithout)
		if row.WithoutIsUB {
			without = "<=" + without
		}
		rows = append(rows, []string{fmt.Sprintf("#%d", row.ID), fmt.Sprintf("%d", row.Attrs),
			with, fmt.Sprintf("%.3fs", row.EnumTime.Seconds()), without})
	}
	return renderTable([]string{"Dataset", "# Attr.", "# DAGs (w/ MEC)", "Time (w/ MEC)", "# DAGs (w/o MEC)"}, rows)
}

// Table8Row compares the auxiliary vs identity samplers (Table 8).
type Table8Row struct {
	ID          int
	CovIdentity float64
	CovAux      float64
}

// Table8Result aggregates the ablation.
type Table8Result struct{ Rows []Table8Row }

// Table8 reproduces Table 8: synthesized-constraint coverage with and
// without the auxiliary-distribution sampler.
func Table8(cfg Config) (*Table8Result, error) {
	cfg.defaults()
	out := &Table8Result{}
	for _, spec := range cfg.specs() {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		opts := synthOptions(cfg, cfg.Seed+int64(spec.ID))
		aux, err := core.Synthesize(p.train, opts)
		if err != nil {
			return nil, err
		}
		opts.IdentitySampler = true
		id, err := core.Synthesize(p.train, opts)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Table8Row{ID: spec.ID, CovAux: aux.Coverage, CovIdentity: id.Coverage})
	}
	return out, nil
}

// Render formats the result like the paper's Table 8.
func (r *Table8Result) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{fmt.Sprintf("#%d", row.ID), f3(row.CovIdentity), f3(row.CovAux)})
	}
	return renderTable([]string{"Dataset", "w/o Auxiliary Sampler", "w/ Auxiliary Sampler"}, rows)
}

// Fig7Point is one ε setting's coverage/loss trade-off (Fig. 7).
type Fig7Point struct {
	Epsilon  float64
	Coverage float64
	LossRate float64 // violations per matched row
}

// Fig7Result holds one dataset's sweep.
type Fig7Result struct {
	DatasetID int
	Points    []Fig7Point
}

// Fig7Epsilons is the sweep grid.
var Fig7Epsilons = []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3}

// Fig7 reproduces Fig. 7 for one dataset: coverage and loss both grow with
// the tolerance ε.
func Fig7(cfg Config, datasetID int) (*Fig7Result, error) {
	cfg.defaults()
	spec := cfg.specs()[0]
	for _, s := range cfg.specs() {
		if s.ID == datasetID {
			spec = s
		}
	}
	p, err := prepare(spec, cfg)
	if err != nil {
		return nil, err
	}
	out := &Fig7Result{DatasetID: spec.ID}
	for _, eps := range Fig7Epsilons {
		opts := synthOptions(cfg, cfg.Seed+int64(spec.ID))
		opts.Epsilon = eps
		res, err := core.Synthesize(p.train, opts)
		if err != nil {
			return nil, err
		}
		pt := Fig7Point{Epsilon: eps, Coverage: res.Coverage}
		matched := 0
		for _, s := range res.Program.Stmts {
			for _, b := range s.Branches {
				matched += dsl.BranchSupport(b, p.train)
			}
		}
		if matched > 0 {
			pt.LossRate = float64(dsl.Loss(res.Program, p.train)) / float64(matched)
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// Render formats the sweep like the paper's Fig. 7.
func (r *Fig7Result) Render() string {
	var rows [][]string
	for _, pt := range r.Points {
		rows = append(rows, []string{fmt.Sprintf("%.3f", pt.Epsilon), f3(pt.Coverage), fmt.Sprintf("%.4f", pt.LossRate)})
	}
	return fmt.Sprintf("Dataset #%d\n", r.DatasetID) +
		renderTable([]string{"epsilon", "coverage", "loss rate"}, rows)
}

// SMTRow reports the monolithic encoding size for one dataset (§8.3).
type SMTRow struct {
	ID      int
	Attrs   int
	Clauses float64
	Vars    float64
}

// SMTSolve is one budgeted solve attempt.
type SMTSolve struct {
	Dataset  int
	Attrs    int
	Exceeded bool
	Steps    int64
}

// SMTResult aggregates the encoding study plus budgeted solve outcomes on
// the smallest schema (barely solvable) and a mid-size one (budget
// exhausted) — the §8.3 scalability wall.
type SMTResult struct {
	Rows   []SMTRow
	Solves []SMTSolve
}

// SMTBaseline reproduces the §8.3 finding: monolithic OptSMT-style
// encodings reach tens of millions of clauses even on small datasets, and
// the budgeted solver gives up.
func SMTBaseline(cfg Config) (*SMTResult, error) {
	cfg.defaults()
	out := &SMTResult{}
	smallest := -1
	smallestAttrs := 1 << 30
	for _, spec := range cfg.specs() {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		enc := smt.Encode(p.train, 3)
		out.Rows = append(out.Rows, SMTRow{ID: spec.ID, Attrs: spec.Attrs, Clauses: enc.NumClauses, Vars: enc.NumVars})
		if spec.Attrs < smallestAttrs {
			smallest, smallestAttrs = spec.ID, spec.Attrs
		}
	}
	mid := -1
	midAttrs := 0
	for _, spec := range cfg.specs() {
		if spec.Attrs > smallestAttrs && (mid < 0 || spec.Attrs < midAttrs) && spec.Attrs >= 7 {
			mid, midAttrs = spec.ID, spec.Attrs
		}
	}
	for _, id := range []int{smallest, mid} {
		if id < 0 {
			continue
		}
		spec, err := bn.SpecByID(id)
		if err != nil {
			return nil, err
		}
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		solve := SMTSolve{Dataset: id, Attrs: spec.Attrs}
		res, err := smt.Synthesize(p.train, smt.Options{MaxGiven: 3, Budget: 2_000_000})
		if errors.Is(err, smt.ErrBudget) {
			solve.Exceeded = true
			solve.Steps = res.Steps
		} else if err != nil {
			return nil, err
		} else {
			solve.Steps = res.Steps
		}
		out.Solves = append(out.Solves, solve)
	}
	return out, nil
}

// Render formats the §8.3 study.
func (r *SMTResult) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{fmt.Sprintf("#%d", row.ID), fmt.Sprintf("%d", row.Attrs),
			smt.ClausesHuman(row.Vars), smt.ClausesHuman(row.Clauses)})
	}
	s := renderTable([]string{"Dataset", "# Attr.", "# Vars", "# Clauses"}, rows)
	for _, sv := range r.Solves {
		verdict := "solved within budget"
		if sv.Exceeded {
			verdict = "budget exhausted without a satisfying solution (timeout)"
		}
		s += fmt.Sprintf("Budgeted solve on dataset #%d (%d attrs): %s after %d steps\n", sv.Dataset, sv.Attrs, verdict, sv.Steps)
	}
	return s
}
