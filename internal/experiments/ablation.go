package experiments

import (
	"fmt"

	"github.com/guardrail-db/guardrail/internal/core"
	"github.com/guardrail-db/guardrail/internal/stats"
)

// GNTRow compares synthesis with and without the non-triviality pruning of
// §4.1 on one dataset.
type GNTRow struct {
	ID int
	// Statements / F1 with the LNT/GNT screening on (the default).
	StmtsOn int
	F1On    float64
	// Statements / F1 with the screening off (SkipGNT).
	StmtsOff int
	F1Off    float64
}

// GNTResult aggregates the ablation.
type GNTResult struct{ Rows []GNTRow }

// AblationGNT ablates the non-triviality screening: without it, every
// statement a MEC member entails is filled, including the trivial ones
// Def. 4.1 rules out, inflating program size without improving — and often
// hurting — detection quality.
func AblationGNT(cfg Config) (*GNTResult, error) {
	cfg.defaults()
	out := &GNTResult{}
	for _, spec := range cfg.specs() {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		row := GNTRow{ID: spec.ID}
		opts := synthOptions(cfg, cfg.Seed+int64(spec.ID))
		for _, skip := range []bool{false, true} {
			opts.SkipGNT = skip
			res, err := core.Synthesize(p.train, opts)
			if err != nil {
				return nil, err
			}
			rep, err := cfg.newGuard(res.Program, core.Ignore).Apply(p.dirty.Clone())
			if err != nil {
				return nil, err
			}
			var c stats.Confusion
			for i, f := range rep.Flagged {
				c.Add(f, p.mask.RowDirty[i])
			}
			if skip {
				row.StmtsOff, row.F1Off = len(res.Program.Stmts), c.F1()
			} else {
				row.StmtsOn, row.F1On = len(res.Program.Stmts), c.F1()
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render formats the ablation.
func (r *GNTResult) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{fmt.Sprintf("#%d", row.ID),
			fmt.Sprintf("%d", row.StmtsOn), f3(row.F1On),
			fmt.Sprintf("%d", row.StmtsOff), f3(row.F1Off)})
	}
	return renderTable([]string{"Dataset", "Stmts (GNT)", "F1 (GNT)", "Stmts (no GNT)", "F1 (no GNT)"}, rows)
}
