package experiments

import (
	"fmt"
	"sort"
	"time"

	"github.com/guardrail-db/guardrail/internal/core"
	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/errgen"
	"github.com/guardrail-db/guardrail/internal/ml"
	"github.com/guardrail-db/guardrail/internal/sqlexec"
	"github.com/guardrail-db/guardrail/internal/stats"
)

// governedAttrs lists the dependent (ON) attributes of a program's
// well-covered statements — the attributes whose errors the constraints
// can detect and repair.
func governedAttrs(prog *dsl.Program, rel *dataset.Relation) []int {
	var out []int
	for _, s := range prog.Stmts {
		if dsl.StatementCoverage(s, rel) >= 0.7 {
			out = append(out, s.On)
		}
	}
	if len(out) == 0 {
		for _, s := range prog.Stmts {
			out = append(out, s.On)
		}
	}
	return out
}

// datasetQueries builds the four ML-integrated SQL queries per dataset
// (48 across the registry), mirroring the varied complexity of §8.2:
// a global aggregate, a filtered count, a grouped rate, and a
// predicate+prediction conjunction.
func datasetQueries(p *prepared) []string {
	label := p.train.Attr(p.label)
	labelV0 := fmt.Sprintf("%s_v0", label)
	grp := pickAttr(p.train, p.label, 2, 8)
	constAttr := grp
	constVal := modeValue(p.train, constAttr)
	return []string{
		fmt.Sprintf("SELECT AVG(CASE WHEN PREDICT(%s) = '%s' THEN 1 ELSE 0 END) AS m FROM t", label, labelV0),
		fmt.Sprintf("SELECT %s, COUNT(*) AS m FROM t WHERE PREDICT(%s) = '%s' GROUP BY %s", grpName(p, grp), label, labelV0, grpName(p, grp)),
		fmt.Sprintf("SELECT %s, AVG(CASE WHEN PREDICT(%s) = '%s' THEN 1 ELSE 0 END) AS m FROM t GROUP BY %s", grpName(p, grp), label, labelV0, grpName(p, grp)),
		fmt.Sprintf("SELECT COUNT(*) AS m FROM t WHERE %s = '%s' AND PREDICT(%s) = '%s'", grpName(p, constAttr), constVal, label, labelV0),
	}
}

func grpName(p *prepared, attr int) string { return p.train.Attr(attr) }

// pickAttr returns the first non-label attribute with cardinality in
// [lo, hi], falling back to the first non-label attribute.
func pickAttr(rel *dataset.Relation, label, lo, hi int) int {
	fallback := -1
	for a := 0; a < rel.NumAttrs(); a++ {
		if a == label {
			continue
		}
		if fallback < 0 {
			fallback = a
		}
		if c := rel.Cardinality(a); c >= lo && c <= hi {
			return a
		}
	}
	return fallback
}

// modeValue returns the most frequent value string of attr.
func modeValue(rel *dataset.Relation, attr int) string {
	counts := map[int32]int{}
	best, bestC := int32(0), -1
	for _, v := range rel.Column(attr) {
		counts[v]++
		if c := counts[v]; c > bestC || (c == bestC && v < best) {
			best, bestC = v, c
		}
	}
	return rel.Dict(attr).Value(best)
}

// resultVectors aligns two query results into comparable numeric vectors:
// rows are keyed by their non-numeric cells, and numeric cells of rows
// missing on either side count as zeros.
func resultVectors(a, b *sqlexec.Result) (va, vb []float64) {
	keyed := func(r *sqlexec.Result) map[string][]float64 {
		out := map[string][]float64{}
		for _, row := range r.Rows {
			key := ""
			var nums []float64
			for _, v := range row {
				if v.IsNum {
					nums = append(nums, v.Num)
				} else {
					key += v.String() + "\x00"
				}
			}
			out[key] = nums
		}
		return out
	}
	ka, kb := keyed(a), keyed(b)
	keys := map[string]int{}
	for k, v := range ka {
		if n := len(v); n > keys[k] {
			keys[k] = n
		}
	}
	for k, v := range kb {
		if n := len(v); n > keys[k] {
			keys[k] = n
		}
	}
	// Emit groups in sorted key order: map iteration order is randomized,
	// and the vectors must be stable so downstream metrics are reproducible.
	ordered := make([]string, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)
	for _, k := range ordered {
		width := keys[k]
		va = append(va, padded(ka[k], width)...)
		vb = append(vb, padded(kb[k], width)...)
	}
	return va, vb
}

func padded(v []float64, n int) []float64 {
	out := make([]float64, n)
	copy(out, v)
	return out
}

// relativeError is the paper's §8.2 metric: L1 distance between the query
// outcome on reference data and on candidate data, over the L1 norm of the
// reference outcome.
func relativeError(ref, cand *sqlexec.Result) float64 {
	va, vb := resultVectors(ref, cand)
	d, err := stats.L1Distance(va, vb)
	if err != nil {
		return 0
	}
	norm := stats.L1Norm(va)
	if norm == 0 {
		if d == 0 {
			return 0
		}
		return 1
	}
	return d / norm
}

// Table6Row reports per-dataset query overheads (Table 6).
type Table6Row struct {
	ID            int
	GuardTime     time.Duration
	InferenceTime time.Duration
}

// Table6Result aggregates the overhead table.
type Table6Result struct{ Rows []Table6Row }

// Table6 reproduces Table 6: guardrail check time vs model inference time,
// summed over the dataset's four queries executed with the rectify guard.
func Table6(cfg Config) (*Table6Result, error) {
	cfg.defaults()
	out := &Table6Result{}
	for _, spec := range cfg.specs() {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		model, err := trainModel(p)
		if err != nil {
			return nil, err
		}
		res, err := core.Synthesize(p.train, synthOptions(cfg, cfg.Seed+int64(spec.ID)))
		if err != nil {
			return nil, err
		}
		env := &sqlexec.Env{
			Models: map[string]ml.Model{p.train.Attr(p.label): model},
			Guard:  cfg.newGuard(res.Program, core.Rectify),
		}
		row := Table6Row{ID: spec.ID}
		for _, q := range datasetQueries(p) {
			qr, err := sqlexec.Exec(q, p.dirty, env)
			if err != nil {
				return nil, fmt.Errorf("experiments: dataset %d query %q: %w", spec.ID, q, err)
			}
			row.GuardTime += qr.Stats.GuardTime
			row.InferenceTime += qr.Stats.InferenceTime
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render formats the result like the paper's Table 6.
func (r *Table6Result) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{fmt.Sprintf("#%d", row.ID),
			fmt.Sprintf("%.4fs", row.GuardTime.Seconds()),
			fmt.Sprintf("%.4fs", row.InferenceTime.Seconds())})
	}
	return renderTable([]string{"Dataset", "Guardrail Time", "Inference Time"}, rows)
}

// Fig6Point is one query's outcome in Fig. 6: normalized relative error on
// dirty data (red dot) and after rectification (blue dot).
type Fig6Point struct {
	DatasetID int
	Query     int
	ErrDirty  float64
	ErrRect   float64
}

// Fig6Result aggregates the 48-query rectification study.
type Fig6Result struct {
	Points        []Fig6Point
	MeanReduction float64
	StdReduction  float64
}

// Fig6 reproduces Fig. 6: for each of the 4 queries on each dataset,
// the min-max-normalized relative error of the query over dirty data vs
// over data rectified by Guardrail, plus the paper's headline mean
// reduction (0.87 ± 0.25 there). Following §8.2, errors are injected into
// the attributes the synthesized constraints govern ("we focus on errors
// that are caused by the integrity constraints to isolate the impact of
// undetectable errors").
func Fig6(cfg Config) (*Fig6Result, error) {
	cfg.defaults()
	out := &Fig6Result{}
	var reductions []float64
	for _, spec := range cfg.specs() {
		p, err := prepare(spec, cfg)
		if err != nil {
			return nil, err
		}
		model, err := trainModel(p)
		if err != nil {
			return nil, err
		}
		res, err := core.Synthesize(p.train, synthOptions(cfg, cfg.Seed+int64(spec.ID)))
		if err != nil {
			return nil, err
		}
		if governed := governedAttrs(res.Program, p.train); len(governed) > 0 {
			dirty := p.test.Clone()
			if _, err := errgen.Inject(dirty, errgen.Options{
				Rate: 0.05, MinErrors: 30, Columns: governed,
				Seed: cfg.Seed + 99 + int64(spec.ID),
			}); err != nil {
				return nil, err
			}
			p.dirty = dirty
		}
		label := p.train.Attr(p.label)
		plain := &sqlexec.Env{Models: map[string]ml.Model{label: model}}
		guarded := &sqlexec.Env{Models: plain.Models, Guard: cfg.newGuard(res.Program, core.Rectify)}
		for qi, q := range datasetQueries(p) {
			truth, err := sqlexec.Exec(q, p.pristine, plain)
			if err != nil {
				return nil, fmt.Errorf("experiments: dataset %d query %d: %w", spec.ID, qi, err)
			}
			dirty, err := sqlexec.Exec(q, p.dirty, plain)
			if err != nil {
				return nil, err
			}
			rect, err := sqlexec.Exec(q, p.dirty, guarded)
			if err != nil {
				return nil, err
			}
			pt := Fig6Point{
				DatasetID: spec.ID,
				Query:     qi + 1,
				ErrDirty:  relativeError(truth, dirty),
				ErrRect:   relativeError(truth, rect),
			}
			out.Points = append(out.Points, pt)
			// Aggregate the headline reduction over queries the errors
			// materially affect; sub-1% relative errors are dominated by
			// ratio noise and would swamp the mean either way.
			if pt.ErrDirty >= 0.01 {
				reductions = append(reductions, (pt.ErrDirty-pt.ErrRect)/pt.ErrDirty)
			}
		}
	}
	// Min-max normalize the two series jointly so all queries share scale.
	all := make([]float64, 0, 2*len(out.Points))
	for _, pt := range out.Points {
		all = append(all, pt.ErrDirty, pt.ErrRect)
	}
	stats.MinMaxNormalize(all)
	for i := range out.Points {
		out.Points[i].ErrDirty = all[2*i]
		out.Points[i].ErrRect = all[2*i+1]
	}
	out.MeanReduction, out.StdReduction = stats.MeanStd(reductions)
	return out, nil
}

// Render formats the result like the paper's Fig. 6 (as a table of dots).
func (r *Fig6Result) Render() string {
	var rows [][]string
	for _, pt := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("#%d", pt.DatasetID), fmt.Sprintf("Q%d", pt.Query),
			f3(pt.ErrDirty), f3(pt.ErrRect)})
	}
	s := renderTable([]string{"Dataset", "Query", "Err(dirty)", "Err(rectified)"}, rows)
	return s + fmt.Sprintf("Mean error reduction = %.2f +/- %.2f\n", r.MeanReduction, r.StdReduction)
}
