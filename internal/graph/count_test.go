package graph

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestCountLabeledDAGs(t *testing.T) {
	// OEIS A003024: 1, 1, 3, 25, 543, 29281, 3781503.
	want := []int64{1, 1, 3, 25, 543, 29281, 3781503}
	for n, w := range want {
		got := CountLabeledDAGs(n)
		if got.Cmp(big.NewInt(w)) != 0 {
			t.Fatalf("a(%d) = %s, want %d", n, got, w)
		}
	}
	if CountLabeledDAGs(-1).Sign() != 0 {
		t.Fatal("negative n should count zero")
	}
	// n=40 must not overflow and must be astronomically larger than the
	// Table 7 search spaces.
	big40 := CountLabeledDAGs(40)
	if big40.BitLen() < 100 {
		t.Fatalf("a(40) suspiciously small: %s", big40)
	}
}

func TestTransitiveClosure(t *testing.T) {
	d := NewDAG(4)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(2, 3)
	c := d.TransitiveClosure()
	if !c[0][3] || !c[0][1] || !c[1][3] {
		t.Fatalf("closure wrong: %v", c)
	}
	if c[3][0] || c[0][0] {
		t.Fatalf("spurious reachability: %v", c)
	}
}

func TestTransitiveReductionChain(t *testing.T) {
	// Example 3.1: chain plus the transitive PostalCode -> State edge.
	d := NewDAG(4)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(2, 3)
	d.AddEdge(0, 2) // transitive
	d.AddEdge(0, 3) // transitive
	r := d.TransitiveReduction()
	if r.NumEdges() != 3 {
		t.Fatalf("reduction kept %d edges: %s", r.NumEdges(), r)
	}
	if !r.HasEdge(0, 1) || !r.HasEdge(1, 2) || !r.HasEdge(2, 3) {
		t.Fatalf("chain edges lost: %s", r)
	}
}

// Property: transitive reduction preserves reachability and never adds
// edges.
func TestTransitiveReductionProperty(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDAG(5, seed)
		r := d.TransitiveReduction()
		if r.NumEdges() > d.NumEdges() {
			return false
		}
		ca, cb := d.TransitiveClosure(), r.TransitiveClosure()
		for i := range ca {
			for j := range ca[i] {
				if ca[i][j] != cb[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func randomDAG(n int, seed int64) *DAG {
	d := NewDAG(n)
	x := uint64(seed)*2654435761 + 12345
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if next()%3 == 0 {
				d.AddEdge(i, j)
			}
		}
	}
	return d
}

func TestAncestralSubgraph(t *testing.T) {
	d := NewDAG(5)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(3, 4)
	anc := d.AncestralSubgraph([]int{2})
	if !anc[0] || !anc[1] || !anc[2] {
		t.Fatalf("ancestors missing: %v", anc)
	}
	if anc[3] || anc[4] {
		t.Fatalf("unrelated nodes included: %v", anc)
	}
	if got := d.AncestralSubgraph([]int{99}); len(got) != 0 {
		t.Fatalf("out-of-range node produced %v", got)
	}
}
