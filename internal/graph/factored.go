package graph

import (
	"math"
)

// This file implements the factored MEC counting optimization the paper
// leaves as future work in §4.5 ("it is possible to further optimize it
// with sophisticated search strategies"): the undirected part of a CPDAG
// decomposes into connected chain components whose orientations are
// independent, so the MEC size is the product of per-component counts and
// enumeration cost drops from the product to the sum of component costs.

// UndirectedComponents returns the connected components of p's undirected
// part, each as a sorted node list; isolated nodes (no undirected edges)
// are omitted.
func (p *PDAG) UndirectedComponents() [][]int {
	seen := make([]bool, p.n)
	var out [][]int
	for start := 0; start < p.n; start++ {
		if seen[start] || len(p.UndirectedNeighbors(start)) == 0 {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range p.UndirectedNeighbors(u) {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		sortInts(comp)
		out = append(out, comp)
	}
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// CountMECFactored counts the DAGs in the MEC of p as the product of
// per-chain-component counts, capped at cap (0 = unlimited; the returned
// bool is false when the cap truncated the count). For valid CPDAGs the
// result equals CountMEC at a fraction of the cost on graphs with many
// components.
func CountMECFactored(p *PDAG, cap int) (float64, bool) {
	ref := p.Clone()
	MeekClose(ref)
	total := 1.0
	exact := true
	for _, comp := range ref.UndirectedComponents() {
		sub := inducedPDAG(ref, comp)
		limit := 0
		if cap > 0 {
			limit = cap
		}
		count, err := CountMEC(sub, limit)
		if err == ErrEnumLimit {
			exact = false
		}
		total *= float64(count)
		if cap > 0 && total > float64(cap) {
			return total, false
		}
		if math.IsInf(total, 1) {
			return total, false
		}
	}
	return total, exact
}

// inducedPDAG extracts the subgraph of p induced by nodes (undirected and
// directed edges among them), with nodes renumbered 0..len(nodes)-1.
func inducedPDAG(p *PDAG, nodes []int) *PDAG {
	idx := make(map[int]int, len(nodes))
	for i, v := range nodes {
		idx[v] = i
	}
	sub := NewPDAG(len(nodes))
	for _, u := range nodes {
		for _, v := range nodes {
			if u == v {
				continue
			}
			if p.HasUndirected(u, v) && idx[u] < idx[v] {
				sub.AddUndirected(idx[u], idx[v])
			}
			if p.HasDirected(u, v) {
				sub.AddDirected(idx[u], idx[v])
			}
		}
	}
	return sub
}
