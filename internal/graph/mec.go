package graph

import (
	"errors"
	"math"
)

// ErrEnumLimit is returned when enumeration exceeds the caller's budget.
var ErrEnumLimit = errors.New("graph: enumeration limit exceeded")

// EnumerateMEC returns every consistent DAG extension of the (C)PDAG p,
// up to maxDAGs (0 means unlimited). This is the enumeration step of
// Alg. 2 in the paper, implemented like the PDAG-enumeration library [36]
// the paper adapts: orient one undirected edge at a time and close under
// the Meek rules, which both prunes inconsistent branches early and — for
// a valid CPDAG — yields exactly the Markov equivalence class (Meek's
// rules are sound and complete there). For the imperfect PDAGs a
// finite-sample PC run can emit, the same search degrades gracefully to
// the acyclic extensions that respect every compelled edge.
func EnumerateMEC(p *PDAG, maxDAGs int) ([]*DAG, error) {
	ref := p.Clone()
	MeekClose(ref)
	if ref.HasDirectedCycle() {
		return nil, errors.New("graph: CPDAG has a directed cycle")
	}
	var out []*DAG
	var walk func(q *PDAG) error
	walk = func(q *PDAG) error {
		a, b, ok := q.UndirectedEdge()
		if !ok {
			d, err := q.ToDAG()
			if err != nil {
				return nil // cyclic completion; not an extension
			}
			out = append(out, d)
			if maxDAGs > 0 && len(out) >= maxDAGs {
				return ErrEnumLimit
			}
			return nil
		}
		for _, or := range [2][2]int{{a, b}, {b, a}} {
			next := q.Clone()
			next.AddDirected(or[0], or[1])
			MeekClose(next)
			if next.HasDirectedCycle() {
				continue
			}
			if err := walk(next); err != nil {
				return err
			}
		}
		return nil
	}
	err := walk(ref)
	if err == ErrEnumLimit {
		return out, ErrEnumLimit
	}
	return out, err
}

// CountMEC reports the number of DAGs in the MEC of p, stopping at cap
// (0 = unlimited). It shares EnumerateMEC's search but does not retain the
// DAGs.
func CountMEC(p *PDAG, cap int) (int, error) {
	dags, err := EnumerateMEC(p, cap)
	if err == ErrEnumLimit {
		return len(dags), ErrEnumLimit
	}
	return len(dags), err
}

// samePDAG reports structural equality of two PDAGs.
func samePDAG(a, b *PDAG) bool {
	if a.n != b.n {
		return false
	}
	for i := 0; i < a.n; i++ {
		for j := 0; j < a.n; j++ {
			if a.dir[i][j] != b.dir[i][j] || a.und[i][j] != b.und[i][j] {
				return false
			}
		}
	}
	return true
}

// OrientationCount is the result of counting the acyclic orientations of a
// skeleton — the paper's "# DAGs (w/o MEC)" search space in Table 7.
type OrientationCount struct {
	Count float64 // exact when Exact, otherwise the 2^m upper bound
	Exact bool
}

// CountAcyclicOrientations counts the acyclic orientations of the skeleton
// underlying p (all edges treated as undirected). When the backtracking
// search exceeds budget node visits the count is estimated as 2^m (m =
// number of skeleton edges) with Exact=false — the upper bound the
// unconstrained search would have to consider.
func CountAcyclicOrientations(p *PDAG, budget int) OrientationCount {
	n := p.n
	type edge struct{ a, b int }
	var edges []edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if p.Adjacent(i, j) {
				edges = append(edges, edge{i, j})
			}
		}
	}
	m := len(edges)
	if budget <= 0 {
		budget = 1 << 20
	}
	// 2^m leaves is a hard lower bound on work; bail to the estimate early.
	if m > 40 || math.Pow(2, float64(m)) > float64(budget)*64 {
		return OrientationCount{Count: math.Pow(2, float64(m)), Exact: false}
	}
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	visits := 0
	var count float64
	var reach func(u, v int) bool
	reach = func(u, v int) bool {
		if u == v {
			return true
		}
		seen := make([]bool, n)
		stack := []int{u}
		seen[u] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for y := 0; y < n; y++ {
				if adj[x][y] && !seen[y] {
					if y == v {
						return true
					}
					seen[y] = true
					stack = append(stack, y)
				}
			}
		}
		return false
	}
	var walk func(k int) bool
	walk = func(k int) bool {
		visits++
		if visits > budget {
			return false
		}
		if k == m {
			count++
			return true
		}
		e := edges[k]
		ok := true
		if !reach(e.b, e.a) { // e.a -> e.b keeps acyclicity
			adj[e.a][e.b] = true
			ok = walk(k + 1)
			adj[e.a][e.b] = false
		}
		if ok && !reach(e.a, e.b) {
			adj[e.b][e.a] = true
			ok = walk(k + 1)
			adj[e.b][e.a] = false
		}
		return ok
	}
	if walk(0) {
		return OrientationCount{Count: count, Exact: true}
	}
	return OrientationCount{Count: math.Pow(2, float64(m)), Exact: false}
}
