// Package graph implements the graphical substrate of Guardrail's sketch
// learner: DAGs, partially directed acyclic graphs (PDAGs/CPDAGs),
// v-structure orientation, the Meek completion rules, and enumeration and
// counting of the Markov equivalence class (MEC) — the search space
// reduction that Table 7 of the paper reports.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// PDAG is a partially directed graph over n nodes. Edges are either
// directed (i -> j) or undirected (i - j); at most one edge connects any
// pair.
type PDAG struct {
	n   int
	dir [][]bool // dir[i][j]: directed edge i -> j
	und [][]bool // und[i][j] == und[j][i]: undirected edge i - j
}

// NewPDAG creates an edgeless PDAG on n nodes.
func NewPDAG(n int) *PDAG {
	p := &PDAG{n: n, dir: make([][]bool, n), und: make([][]bool, n)}
	for i := 0; i < n; i++ {
		p.dir[i] = make([]bool, n)
		p.und[i] = make([]bool, n)
	}
	return p
}

// N reports the number of nodes.
func (p *PDAG) N() int { return p.n }

// Clone deep-copies the PDAG.
func (p *PDAG) Clone() *PDAG {
	q := NewPDAG(p.n)
	for i := 0; i < p.n; i++ {
		copy(q.dir[i], p.dir[i])
		copy(q.und[i], p.und[i])
	}
	return q
}

// AddDirected inserts i -> j, replacing any existing edge between i and j.
func (p *PDAG) AddDirected(i, j int) {
	p.und[i][j], p.und[j][i] = false, false
	p.dir[j][i] = false
	p.dir[i][j] = true
}

// AddUndirected inserts i - j, replacing any existing edge between i and j.
func (p *PDAG) AddUndirected(i, j int) {
	p.dir[i][j], p.dir[j][i] = false, false
	p.und[i][j], p.und[j][i] = true, true
}

// RemoveEdge deletes any edge between i and j.
func (p *PDAG) RemoveEdge(i, j int) {
	p.dir[i][j], p.dir[j][i] = false, false
	p.und[i][j], p.und[j][i] = false, false
}

// HasDirected reports whether i -> j exists.
func (p *PDAG) HasDirected(i, j int) bool { return p.dir[i][j] }

// HasUndirected reports whether i - j exists.
func (p *PDAG) HasUndirected(i, j int) bool { return p.und[i][j] }

// Adjacent reports whether any edge connects i and j.
func (p *PDAG) Adjacent(i, j int) bool {
	return p.dir[i][j] || p.dir[j][i] || p.und[i][j]
}

// Parents returns all k with k -> i.
func (p *PDAG) Parents(i int) []int {
	var out []int
	for k := 0; k < p.n; k++ {
		if p.dir[k][i] {
			out = append(out, k)
		}
	}
	return out
}

// Children returns all k with i -> k.
func (p *PDAG) Children(i int) []int {
	var out []int
	for k := 0; k < p.n; k++ {
		if p.dir[i][k] {
			out = append(out, k)
		}
	}
	return out
}

// UndirectedNeighbors returns all k with i - k.
func (p *PDAG) UndirectedNeighbors(i int) []int {
	var out []int
	for k := 0; k < p.n; k++ {
		if p.und[i][k] {
			out = append(out, k)
		}
	}
	return out
}

// AdjacentNodes returns all nodes connected to i by any edge.
func (p *PDAG) AdjacentNodes(i int) []int {
	var out []int
	for k := 0; k < p.n; k++ {
		if p.Adjacent(i, k) {
			out = append(out, k)
		}
	}
	return out
}

// UndirectedEdge returns some undirected edge (i < j) and true, or false if
// the graph is fully directed.
func (p *PDAG) UndirectedEdge() (int, int, bool) {
	for i := 0; i < p.n; i++ {
		for j := i + 1; j < p.n; j++ {
			if p.und[i][j] {
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

// NumEdges counts edges of both kinds.
func (p *PDAG) NumEdges() (directed, undirected int) {
	for i := 0; i < p.n; i++ {
		for j := 0; j < p.n; j++ {
			if p.dir[i][j] {
				directed++
			}
			if j > i && p.und[i][j] {
				undirected++
			}
		}
	}
	return directed, undirected
}

// HasDirectedCycle reports whether the directed part contains a cycle
// (undirected edges are ignored).
func (p *PDAG) HasDirectedCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, p.n)
	var visit func(u int) bool
	visit = func(u int) bool {
		color[u] = gray
		for v := 0; v < p.n; v++ {
			if !p.dir[u][v] {
				continue
			}
			if color[v] == gray {
				return true
			}
			if color[v] == white && visit(v) {
				return true
			}
		}
		color[u] = black
		return false
	}
	for u := 0; u < p.n; u++ {
		if color[u] == white && visit(u) {
			return true
		}
	}
	return false
}

// ToDAG converts a fully directed PDAG into a DAG; it returns an error if
// undirected edges remain or a cycle exists.
func (p *PDAG) ToDAG() (*DAG, error) {
	if _, _, ok := p.UndirectedEdge(); ok {
		return nil, fmt.Errorf("graph: PDAG still has undirected edges")
	}
	if p.HasDirectedCycle() {
		return nil, fmt.Errorf("graph: directed part is cyclic")
	}
	d := NewDAG(p.n)
	for i := 0; i < p.n; i++ {
		for j := 0; j < p.n; j++ {
			if p.dir[i][j] {
				if err := d.AddEdge(i, j); err != nil {
					return nil, err
				}
			}
		}
	}
	return d, nil
}

// String renders the PDAG compactly, e.g. "0->1, 1-2".
func (p *PDAG) String() string {
	var parts []string
	for i := 0; i < p.n; i++ {
		for j := 0; j < p.n; j++ {
			if p.dir[i][j] {
				parts = append(parts, fmt.Sprintf("%d->%d", i, j))
			}
			if j > i && p.und[i][j] {
				parts = append(parts, fmt.Sprintf("%d-%d", i, j))
			}
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

// DAG is a directed acyclic graph with adjacency-matrix representation.
type DAG struct {
	n   int
	adj [][]bool // adj[i][j]: edge i -> j
}

// NewDAG creates an edgeless DAG on n nodes.
func NewDAG(n int) *DAG {
	d := &DAG{n: n, adj: make([][]bool, n)}
	for i := range d.adj {
		d.adj[i] = make([]bool, n)
	}
	return d
}

// N reports the number of nodes.
func (d *DAG) N() int { return d.n }

// AddEdge inserts i -> j, rejecting self-loops and edges that close a cycle.
func (d *DAG) AddEdge(i, j int) error {
	if i == j {
		return fmt.Errorf("graph: self-loop %d", i)
	}
	if d.reachable(j, i) {
		return fmt.Errorf("graph: edge %d->%d would create a cycle", i, j)
	}
	d.adj[i][j] = true
	return nil
}

// HasEdge reports whether i -> j exists.
func (d *DAG) HasEdge(i, j int) bool { return d.adj[i][j] }

// Parents returns all k with k -> i.
func (d *DAG) Parents(i int) []int {
	var out []int
	for k := 0; k < d.n; k++ {
		if d.adj[k][i] {
			out = append(out, k)
		}
	}
	return out
}

// Children returns all k with i -> k.
func (d *DAG) Children(i int) []int {
	var out []int
	for k := 0; k < d.n; k++ {
		if d.adj[i][k] {
			out = append(out, k)
		}
	}
	return out
}

// NumEdges counts the edges.
func (d *DAG) NumEdges() int {
	n := 0
	for i := range d.adj {
		for j := range d.adj[i] {
			if d.adj[i][j] {
				n++
			}
		}
	}
	return n
}

// reachable reports whether v is reachable from u along directed edges.
func (d *DAG) reachable(u, v int) bool {
	if u == v {
		return true
	}
	seen := make([]bool, d.n)
	stack := []int{u}
	seen[u] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for y := 0; y < d.n; y++ {
			if d.adj[x][y] && !seen[y] {
				if y == v {
					return true
				}
				seen[y] = true
				stack = append(stack, y)
			}
		}
	}
	return false
}

// TopoSort returns a topological order of the nodes.
func (d *DAG) TopoSort() ([]int, error) {
	indeg := make([]int, d.n)
	for i := 0; i < d.n; i++ {
		for j := 0; j < d.n; j++ {
			if d.adj[i][j] {
				indeg[j]++
			}
		}
	}
	var queue []int
	for i := 0; i < d.n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	var order []int
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for v := 0; v < d.n; v++ {
			if d.adj[u][v] {
				indeg[v]--
				if indeg[v] == 0 {
					queue = append(queue, v)
				}
			}
		}
	}
	if len(order) != d.n {
		return nil, fmt.Errorf("graph: cycle detected in DAG")
	}
	return order, nil
}

// String renders the DAG as its sorted edge list.
func (d *DAG) String() string {
	var parts []string
	for i := 0; i < d.n; i++ {
		for j := 0; j < d.n; j++ {
			if d.adj[i][j] {
				parts = append(parts, fmt.Sprintf("%d->%d", i, j))
			}
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

// Key returns a canonical string identifying the DAG's edge set, usable as
// a map key for dedup in enumeration tests.
func (d *DAG) Key() string { return d.String() }
