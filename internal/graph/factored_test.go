package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUndirectedComponents(t *testing.T) {
	p := NewPDAG(6)
	p.AddUndirected(0, 1)
	p.AddUndirected(1, 2)
	p.AddUndirected(3, 4)
	p.AddDirected(4, 5) // directed edges don't join components
	comps := p.UndirectedComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Fatalf("first component = %v", comps[0])
	}
	if len(comps[1]) != 2 || comps[1][0] != 3 {
		t.Fatalf("second component = %v", comps[1])
	}
}

func TestCountMECFactoredMatchesDirect(t *testing.T) {
	// Two disjoint chains: each has 3 extensions, the MEC has 9.
	p := NewPDAG(6)
	p.AddUndirected(0, 1)
	p.AddUndirected(1, 2)
	p.AddUndirected(3, 4)
	p.AddUndirected(4, 5)
	direct, err := CountMEC(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	factored, exact := CountMECFactored(p, 0)
	if !exact || factored != float64(direct) {
		t.Fatalf("factored = %g (exact=%v), direct = %d", factored, exact, direct)
	}
	if direct != 9 {
		t.Fatalf("two chains should give 9 extensions, got %d", direct)
	}
}

func TestCountMECFactoredFullyDirected(t *testing.T) {
	p := NewPDAG(3)
	p.AddDirected(0, 1)
	p.AddDirected(1, 2)
	count, exact := CountMECFactored(p, 0)
	if !exact || count != 1 {
		t.Fatalf("fully directed PDAG: count=%g exact=%v", count, exact)
	}
}

// Property: on random CPDAGs the factored count equals the direct count.
func TestCountMECFactoredProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDAG(6)
		for i := 0; i < 6; i++ {
			for j := i + 1; j < 6; j++ {
				if rng.Float64() < 0.3 {
					d.AddEdge(i, j)
				}
			}
		}
		cp := CPDAGFromDAG(d)
		direct, err := CountMEC(cp, 0)
		if err != nil {
			return false
		}
		factored, exact := CountMECFactored(cp, 0)
		return exact && factored == float64(direct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCountMECFactoredCap(t *testing.T) {
	// Complete graph on 5 nodes has 5! = 120 members; cap below that.
	p := NewPDAG(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			p.AddUndirected(i, j)
		}
	}
	_, exact := CountMECFactored(p, 10)
	if exact {
		t.Fatal("cap not reported")
	}
}
