package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDAGBasics(t *testing.T) {
	d := NewDAG(3)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(2, 0); err == nil {
		t.Fatal("cycle not rejected")
	}
	if err := d.AddEdge(1, 1); err == nil {
		t.Fatal("self-loop not rejected")
	}
	if d.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", d.NumEdges())
	}
	order, err := d.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, 3)
	for i, v := range order {
		pos[v] = i
	}
	if pos[0] > pos[1] || pos[1] > pos[2] {
		t.Fatalf("bad topo order %v", order)
	}
}

func TestPDAGEdgeOps(t *testing.T) {
	p := NewPDAG(3)
	p.AddUndirected(0, 1)
	if !p.HasUndirected(0, 1) || !p.HasUndirected(1, 0) {
		t.Fatal("undirected edge not symmetric")
	}
	p.AddDirected(0, 1)
	if p.HasUndirected(0, 1) {
		t.Fatal("AddDirected did not replace undirected edge")
	}
	if !p.HasDirected(0, 1) || p.HasDirected(1, 0) {
		t.Fatal("directed edge wrong")
	}
	p.RemoveEdge(0, 1)
	if p.Adjacent(0, 1) {
		t.Fatal("RemoveEdge failed")
	}
}

func TestHasDirectedCycle(t *testing.T) {
	p := NewPDAG(3)
	p.AddDirected(0, 1)
	p.AddDirected(1, 2)
	if p.HasDirectedCycle() {
		t.Fatal("false positive cycle")
	}
	p.AddDirected(2, 0)
	if !p.HasDirectedCycle() {
		t.Fatal("missed cycle")
	}
}

// chainCPDAG builds the CPDAG of the chain 0 - 1 - 2 (no v-structure, so
// fully undirected).
func TestCPDAGChain(t *testing.T) {
	d := NewDAG(3)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	p := CPDAGFromDAG(d)
	if p.HasDirected(0, 1) || p.HasDirected(1, 2) {
		t.Fatalf("chain CPDAG should be undirected: %s", p)
	}
	if !p.HasUndirected(0, 1) || !p.HasUndirected(1, 2) {
		t.Fatalf("chain CPDAG missing edges: %s", p)
	}
}

func TestCPDAGCollider(t *testing.T) {
	// 0 -> 2 <- 1 is a v-structure: both edges compelled.
	d := NewDAG(3)
	d.AddEdge(0, 2)
	d.AddEdge(1, 2)
	p := CPDAGFromDAG(d)
	if !p.HasDirected(0, 2) || !p.HasDirected(1, 2) {
		t.Fatalf("collider not preserved: %s", p)
	}
}

func TestMeekR1Propagation(t *testing.T) {
	// 0 -> 1 - 2 with 0 not adjacent 2: R1 compels 1 -> 2.
	p := NewPDAG(3)
	p.AddDirected(0, 1)
	p.AddUndirected(1, 2)
	MeekClose(p)
	if !p.HasDirected(1, 2) {
		t.Fatalf("R1 failed: %s", p)
	}
}

func TestMeekR2Propagation(t *testing.T) {
	// 0 -> 1 -> 2 and 0 - 2: R2 compels 0 -> 2.
	p := NewPDAG(3)
	p.AddDirected(0, 1)
	p.AddDirected(1, 2)
	p.AddUndirected(0, 2)
	MeekClose(p)
	if !p.HasDirected(0, 2) {
		t.Fatalf("R2 failed: %s", p)
	}
}

func TestMeekR3Propagation(t *testing.T) {
	// a=0 with 0-1, 0-2, 0-3; 2 -> 1, 3 -> 1, 2 and 3 non-adjacent: R3
	// compels 0 -> 1.
	p := NewPDAG(4)
	p.AddUndirected(0, 1)
	p.AddUndirected(0, 2)
	p.AddUndirected(0, 3)
	p.AddDirected(2, 1)
	p.AddDirected(3, 1)
	MeekClose(p)
	if !p.HasDirected(0, 1) {
		t.Fatalf("R3 failed: %s", p)
	}
}

func TestOrientVStructures(t *testing.T) {
	// Skeleton 0 - 2 - 1 with sepset(0,1) = {} (2 not in it): collider.
	sk := NewPDAG(3)
	sk.AddUndirected(0, 2)
	sk.AddUndirected(1, 2)
	sep := map[int64][]int{PairKey(0, 1): {}}
	p := OrientVStructures(sk, sep)
	if !p.HasDirected(0, 2) || !p.HasDirected(1, 2) {
		t.Fatalf("v-structure not oriented: %s", p)
	}
	// With 2 in the sepset there is no collider.
	sep2 := map[int64][]int{PairKey(0, 1): {2}}
	p2 := OrientVStructures(sk, sep2)
	if p2.HasDirected(0, 2) || p2.HasDirected(1, 2) {
		t.Fatalf("spurious v-structure: %s", p2)
	}
}

func TestEnumerateMECChain(t *testing.T) {
	// CPDAG 0 - 1 - 2 has 3 members: 0->1->2, 0<-1<-2, 0<-1->2
	// (0->1<-2 is excluded: it is a new v-structure).
	p := NewPDAG(3)
	p.AddUndirected(0, 1)
	p.AddUndirected(1, 2)
	dags, err := EnumerateMEC(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dags) != 3 {
		t.Fatalf("chain MEC size = %d, want 3; got %v", len(dags), dags)
	}
	seen := map[string]bool{}
	for _, d := range dags {
		seen[d.Key()] = true
	}
	if seen["0->1, 2->1"] {
		t.Fatal("enumeration produced the forbidden collider")
	}
}

func TestEnumerateMECCollider(t *testing.T) {
	d := NewDAG(3)
	d.AddEdge(0, 2)
	d.AddEdge(1, 2)
	p := CPDAGFromDAG(d)
	dags, err := EnumerateMEC(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dags) != 1 {
		t.Fatalf("collider MEC size = %d, want 1", len(dags))
	}
}

func TestEnumerateMECComplete3(t *testing.T) {
	// Complete undirected graph on 3 nodes: all 6 orderings are Markov
	// equivalent (every DAG is a complete DAG, no v-structures).
	p := NewPDAG(3)
	p.AddUndirected(0, 1)
	p.AddUndirected(0, 2)
	p.AddUndirected(1, 2)
	dags, err := EnumerateMEC(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dags) != 6 {
		t.Fatalf("K3 MEC size = %d, want 6", len(dags))
	}
}

func TestEnumerateMECLimit(t *testing.T) {
	p := NewPDAG(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			p.AddUndirected(i, j)
		}
	}
	dags, err := EnumerateMEC(p, 5)
	if err != ErrEnumLimit {
		t.Fatalf("expected ErrEnumLimit, got %v", err)
	}
	if len(dags) != 5 {
		t.Fatalf("limited enumeration returned %d", len(dags))
	}
}

// Property: every enumerated member of a random DAG's MEC has the same
// CPDAG, and the original DAG is among the members.
func TestEnumerateMECRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(2)
		d := NewDAG(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					d.AddEdge(i, j)
				}
			}
		}
		cp := CPDAGFromDAG(d)
		dags, err := EnumerateMEC(cp, 0)
		if err != nil {
			return false
		}
		found := false
		for _, m := range dags {
			if m.Key() == d.Key() {
				found = true
			}
			if !samePDAG(CPDAGFromDAG(m), cp) {
				return false
			}
		}
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCountAcyclicOrientations(t *testing.T) {
	// Triangle: 6 acyclic orientations (8 total minus 2 cyclic).
	p := NewPDAG(3)
	p.AddUndirected(0, 1)
	p.AddUndirected(1, 2)
	p.AddUndirected(0, 2)
	oc := CountAcyclicOrientations(p, 0)
	if !oc.Exact || oc.Count != 6 {
		t.Fatalf("triangle = %+v, want exact 6", oc)
	}
	// Path of 2 edges: all 4 orientations acyclic.
	q := NewPDAG(3)
	q.AddUndirected(0, 1)
	q.AddUndirected(1, 2)
	oc = CountAcyclicOrientations(q, 0)
	if !oc.Exact || oc.Count != 4 {
		t.Fatalf("path = %+v, want exact 4", oc)
	}
}

func TestCountAcyclicOrientationsEstimate(t *testing.T) {
	// Dense graph beyond budget falls back to the 2^m estimate.
	n := 12
	p := NewPDAG(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p.AddUndirected(i, j)
		}
	}
	oc := CountAcyclicOrientations(p, 1000)
	if oc.Exact {
		t.Fatal("expected estimate for dense graph with tiny budget")
	}
	m := n * (n - 1) / 2
	if oc.Count != math.Pow(2, float64(m)) {
		t.Fatalf("estimate = %g, want 2^%d", oc.Count, m)
	}
}

// Property: the MEC of a DAG never contains a graph with different skeleton
// size, and MEC size >= 1.
func TestMECSkeletonProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDAG(4)
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if rng.Float64() < 0.5 {
					d.AddEdge(i, j)
				}
			}
		}
		dags, err := EnumerateMEC(CPDAGFromDAG(d), 0)
		if err != nil || len(dags) < 1 {
			return false
		}
		for _, m := range dags {
			if m.NumEdges() != d.NumEdges() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
