package graph

import (
	"math/big"
)

// CountLabeledDAGs returns the number of labeled DAGs on n nodes via
// Robinson's recurrence
//
//	a(n) = Σ_{k=1..n} (-1)^(k+1) · C(n,k) · 2^(k(n-k)) · a(n-k),
//
// the size of the completely unconstrained structure space that both the
// MEC enumeration (Table 7) and the skeleton-orientation space are tiny
// fractions of. Exact for any n via math/big.
func CountLabeledDAGs(n int) *big.Int {
	if n < 0 {
		return big.NewInt(0)
	}
	a := make([]*big.Int, n+1)
	a[0] = big.NewInt(1)
	for m := 1; m <= n; m++ {
		sum := new(big.Int)
		for k := 1; k <= m; k++ {
			term := new(big.Int).Binomial(int64(m), int64(k))
			pow := new(big.Int).Lsh(big.NewInt(1), uint(k*(m-k)))
			term.Mul(term, pow)
			term.Mul(term, a[m-k])
			if k%2 == 1 {
				sum.Add(sum, term)
			} else {
				sum.Sub(sum, term)
			}
		}
		a[m] = sum
	}
	return a[n]
}

// TransitiveClosure returns the reachability matrix of d: out[i][j] is true
// when j is reachable from i along directed edges (i != j).
func (d *DAG) TransitiveClosure() [][]bool {
	n := d.n
	out := make([][]bool, n)
	for i := range out {
		out[i] = make([]bool, n)
		copy(out[i], d.adj[i])
	}
	// Floyd–Warshall style closure.
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !out[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if out[k][j] {
					out[i][j] = true
				}
			}
		}
	}
	return out
}

// TransitiveReduction returns a copy of d with every edge implied by a
// longer path removed — the DAG analogue of a minimal FD cover, and the
// structural counterpart of the succinctness Example 3.1 demands (the
// PostalCode -> State edge is exactly a transitively-reducible edge).
func (d *DAG) TransitiveReduction() *DAG {
	n := d.n
	out := NewDAG(n)
	closure := d.TransitiveClosure()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !d.adj[i][j] {
				continue
			}
			// Edge i->j is redundant if some other successor k of i
			// reaches j.
			redundant := false
			for k := 0; k < n && !redundant; k++ {
				if k != j && d.adj[i][k] && closure[k][j] {
					redundant = true
				}
			}
			if !redundant {
				if err := out.AddEdge(i, j); err != nil {
					// d is acyclic, so its subgraphs are too.
					panic("graph: transitive reduction of a DAG created a cycle")
				}
			}
		}
	}
	return out
}

// AncestralSubgraph returns the subgraph of d induced by nodes and all
// their ancestors, as a node set (useful for scoping structure queries to
// one attribute's generating process).
func (d *DAG) AncestralSubgraph(nodes []int) map[int]bool {
	out := map[int]bool{}
	var visit func(v int)
	visit = func(v int) {
		if out[v] {
			return
		}
		out[v] = true
		for _, p := range d.Parents(v) {
			visit(p)
		}
	}
	for _, v := range nodes {
		if v >= 0 && v < d.n {
			visit(v)
		}
	}
	return out
}
