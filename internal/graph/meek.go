package graph

// MeekClose applies Meek's completion rules R1–R4 to p until fixpoint,
// orienting undirected edges whose direction is compelled. It mutates p.
//
//	R1: a -> b, b - c, a not adjacent c      => b -> c
//	R2: a -> b, b -> c, a - c                => a -> c
//	R3: a - b, a - c, a - d, c -> b, d -> b,
//	    c not adjacent d                     => a -> b
//	R4: a - b, a - c (or a adj c), c -> d, d -> b, b - a,
//	    c adjacent a, b not adjacent? (standard form below)
func MeekClose(p *PDAG) {
	for changed := true; changed; {
		changed = false
		n := p.n
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if !p.und[a][b] {
					continue
				}
				if meekR1(p, a, b) || meekR2(p, a, b) || meekR3(p, a, b) || meekR4(p, a, b) {
					if directedReach(p, b, a) {
						continue // conflicting evidence; refuse to close a cycle
					}
					p.AddDirected(a, b)
					changed = true
				}
			}
		}
	}
}

// meekR1: exists c with c -> a and c not adjacent to b  =>  a -> b.
func meekR1(p *PDAG, a, b int) bool {
	for c := 0; c < p.n; c++ {
		if p.dir[c][a] && !p.Adjacent(c, b) {
			return true
		}
	}
	return false
}

// meekR2: exists c with a -> c and c -> b  =>  a -> b.
func meekR2(p *PDAG, a, b int) bool {
	for c := 0; c < p.n; c++ {
		if p.dir[a][c] && p.dir[c][b] {
			return true
		}
	}
	return false
}

// meekR3: exist non-adjacent c, d with a - c, a - d, c -> b, d -> b
// => a -> b.
func meekR3(p *PDAG, a, b int) bool {
	for c := 0; c < p.n; c++ {
		if !(p.und[a][c] && p.dir[c][b]) {
			continue
		}
		for d := c + 1; d < p.n; d++ {
			if p.und[a][d] && p.dir[d][b] && !p.Adjacent(c, d) {
				return true
			}
		}
	}
	return false
}

// meekR4: exist c, d with a - d (or a adjacent d), d -> c, c -> b, and
// a - c undirected with c,... — we use the standard formulation: a - b
// orients to a -> b if there are c, d such that a - c (any adjacency),
// c -> d, d -> b, and c not adjacent to b... The commonly implemented
// version: b - a, a adjacent d, d -> c, c -> b, and d not adjacent b.
func meekR4(p *PDAG, a, b int) bool {
	for d := 0; d < p.n; d++ {
		if !p.Adjacent(a, d) {
			continue
		}
		for c := 0; c < p.n; c++ {
			if p.dir[d][c] && p.dir[c][b] && p.und[a][c] && !p.Adjacent(d, b) {
				return true
			}
		}
	}
	return false
}

// OrientVStructures turns an undirected skeleton plus separation sets into
// a PDAG by orienting every unshielded collider a -> c <- b where c is not
// in sepset(a, b). sepsets maps the unordered pair key PairKey(a,b) to the
// separating set found during skeleton discovery.
func OrientVStructures(skeleton *PDAG, sepsets map[int64][]int) *PDAG {
	p := skeleton.Clone()
	n := p.n
	for c := 0; c < n; c++ {
		for a := 0; a < n; a++ {
			if a == c || !p.Adjacent(a, c) {
				continue
			}
			for b := a + 1; b < n; b++ {
				if b == c || !p.Adjacent(b, c) || p.Adjacent(a, b) {
					continue
				}
				sep, ok := sepsets[PairKey(a, b)]
				if !ok {
					continue
				}
				if !contains(sep, c) {
					// Orient the collider unless a previous (conflicting)
					// orientation or a directed cycle forbids it — the
					// conservative finite-sample PC rule.
					if !p.HasDirected(c, a) && !directedReach(p, c, a) {
						p.AddDirected(a, c)
					}
					if !p.HasDirected(c, b) && !directedReach(p, c, b) {
						p.AddDirected(b, c)
					}
				}
			}
		}
	}
	return p
}

// PairKey encodes the unordered pair {a, b} as a single int64 key.
func PairKey(a, b int) int64 {
	if a > b {
		a, b = b, a
	}
	return int64(a)<<32 | int64(b)
}

// directedReach reports whether v is reachable from u along directed edges.
func directedReach(p *PDAG, u, v int) bool {
	if u == v {
		return true
	}
	seen := make([]bool, p.n)
	stack := []int{u}
	seen[u] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for y := 0; y < p.n; y++ {
			if p.dir[x][y] && !seen[y] {
				if y == v {
					return true
				}
				seen[y] = true
				stack = append(stack, y)
			}
		}
	}
	return false
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// CPDAGFromDAG computes the completed PDAG (the canonical representative of
// d's Markov equivalence class): keep the skeleton, orient exactly the
// v-structure edges, then close under the Meek rules.
func CPDAGFromDAG(d *DAG) *PDAG {
	n := d.n
	p := NewPDAG(n)
	// Skeleton as undirected edges.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d.adj[i][j] {
				p.AddUndirected(i, j)
			}
		}
	}
	// Orient v-structures of d.
	for c := 0; c < n; c++ {
		pa := d.Parents(c)
		for x := 0; x < len(pa); x++ {
			for y := x + 1; y < len(pa); y++ {
				a, b := pa[x], pa[y]
				if !d.adj[a][b] && !d.adj[b][a] {
					p.AddDirected(a, c)
					p.AddDirected(b, c)
				}
			}
		}
	}
	MeekClose(p)
	return p
}

// vStructures returns the set of v-structures (a -> c <- b with a, b
// non-adjacent), keyed canonically, of either a DAG or the directed part of
// a PDAG.
func vStructuresOfDAG(d *DAG) map[[3]int]bool {
	out := map[[3]int]bool{}
	for c := 0; c < d.n; c++ {
		pa := d.Parents(c)
		for x := 0; x < len(pa); x++ {
			for y := x + 1; y < len(pa); y++ {
				a, b := pa[x], pa[y]
				if !d.adj[a][b] && !d.adj[b][a] {
					if a > b {
						a, b = b, a
					}
					out[[3]int{a, c, b}] = true
				}
			}
		}
	}
	return out
}
