package pc

import (
	"fmt"
	"sort"
	"testing"

	"github.com/guardrail-db/guardrail/internal/auxdist"
	"github.com/guardrail-db/guardrail/internal/bn"
)

// TestLearnParallelMatchesSerial: the level-barrier parallel CI sweep must
// produce exactly the serial learner's output — CPDAG, skeleton, sepsets,
// and test count — at every worker count. This is the order-independence
// property of stable PC made into a regression gate.
func TestLearnParallelMatchesSerial(t *testing.T) {
	rel, err := bn.RandomSEM(bn.SEMSpec{Attrs: 10, Seed: 3}).Sample(1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	aux, err := auxdist.Sample(rel, auxdist.Options{Shifts: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Learn(aux, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := Learn(aux, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.CPDAG.String() != serial.CPDAG.String() {
			t.Errorf("workers=%d CPDAG differs:\nserial:\n%s\nparallel:\n%s", workers, serial.CPDAG, got.CPDAG)
		}
		if got.Skeleton.String() != serial.Skeleton.String() {
			t.Errorf("workers=%d skeleton differs", workers)
		}
		if got.Tests != serial.Tests {
			t.Errorf("workers=%d ran %d tests, serial ran %d", workers, got.Tests, serial.Tests)
		}
		if fmtSepSets(got.SepSets) != fmtSepSets(serial.SepSets) {
			t.Errorf("workers=%d sepsets differ:\nserial:  %s\nparallel: %s",
				workers, fmtSepSets(serial.SepSets), fmtSepSets(got.SepSets))
		}
	}
}

// TestLearnStableParallelMatchesSerial repeats the check for the
// bootstrap-aggregated learner, whose resamples are drawn serially before
// the rounds fan out.
func TestLearnStableParallelMatchesSerial(t *testing.T) {
	rel, err := bn.RandomSEM(bn.SEMSpec{Attrs: 8, Seed: 9}).Sample(800, 9)
	if err != nil {
		t.Fatal(err)
	}
	aux, err := auxdist.Sample(rel, auxdist.Options{Shifts: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	opts := StableOptions{Rounds: 6, Seed: 5}
	opts.Workers = 1
	serial, err := LearnStable(aux, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		opts.Workers = workers
		got, err := LearnStable(aux, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.CPDAG.String() != serial.CPDAG.String() {
			t.Errorf("workers=%d stable CPDAG differs:\nserial:\n%s\nparallel:\n%s", workers, serial.CPDAG, got.CPDAG)
		}
	}
}

// fmtSepSets renders a sepset map in sorted key order for comparison.
func fmtSepSets(sep map[int64][]int) string {
	keys := make([]int64, 0, len(sep))
	for k := range sep {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%d:%v;", k, sep[k])
	}
	return out
}
