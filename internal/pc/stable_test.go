package pc

import (
	"math/rand"
	"testing"

	"github.com/guardrail-db/guardrail/internal/auxdist"
	"github.com/guardrail-db/guardrail/internal/bn"
)

func TestLearnStableRecoversAsiaCollider(t *testing.T) {
	rel, err := bn.Asia().Sample(8000, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LearnStable(auxdist.Identity(rel), StableOptions{
		Options: Options{Alpha: 0.01, MaxCond: 2},
		Rounds:  8,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tub, lung, either := 2, 3, 5
	if !res.Skeleton.Adjacent(tub, either) || !res.Skeleton.Adjacent(lung, either) {
		t.Fatalf("collider edges missing: %s", res.Skeleton)
	}
}

func TestLearnStableNoFewerSpuriousEdges(t *testing.T) {
	// On independent attributes the stable learner must keep the skeleton
	// (near-)empty — at worst as sparse as a single run.
	nw := &bn.Network{Nodes: []bn.Node{
		{Name: "a", Card: 3, CPT: []float64{0.3, 0.3, 0.4}},
		{Name: "b", Card: 3, CPT: []float64{0.2, 0.5, 0.3}},
		{Name: "c", Card: 2, CPT: []float64{0.6, 0.4}},
		{Name: "d", Card: 4, CPT: []float64{0.25, 0.25, 0.25, 0.25}},
	}}
	rel, err := nw.Sample(3000, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LearnStable(auxdist.Identity(rel), StableOptions{
		Options: Options{Alpha: 0.05, MaxCond: 2},
		Rounds:  8,
		Seed:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d, u := res.Skeleton.NumEdges(); d+u > 1 {
		t.Fatalf("stable skeleton has %d spurious edges: %s", d+u, res.Skeleton)
	}
}

func TestLearnStableDeterministicPerSeed(t *testing.T) {
	rel, err := bn.PostalChain(8).Sample(1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := LearnStable(auxdist.Identity(rel), StableOptions{Rounds: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LearnStable(auxdist.Identity(rel), StableOptions{Rounds: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Skeleton.String() != b.Skeleton.String() {
		t.Fatalf("not deterministic:\n%s\nvs\n%s", a.Skeleton, b.Skeleton)
	}
}

func TestResampleView(t *testing.T) {
	rel, err := bn.PostalChain(8).Sample(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	base := auxdist.Identity(rel)
	r := newResample(base, randSource(5))
	if r.N() != base.N() || r.NumVars() != base.NumVars() {
		t.Fatal("resample shape mismatch")
	}
	col := r.Codes(0)
	if len(col) != base.N() {
		t.Fatal("resampled column length wrong")
	}
	// Codes are cached: second call returns the same slice.
	if &r.Codes(0)[0] != &col[0] {
		t.Fatal("resample column not cached")
	}
}

func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
