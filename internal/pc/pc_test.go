package pc

import (
	"testing"

	"github.com/guardrail-db/guardrail/internal/auxdist"
	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/graph"
)

func learnFromNetwork(t *testing.T, nw *bn.Network, n int, seed int64, opts Options) *Result {
	t.Helper()
	rel, err := nw.Sample(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Learn(auxdist.Identity(rel), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLearnChainSkeleton(t *testing.T) {
	// x -> y -> z chain: skeleton must be x-y, y-z with no x-z edge.
	nw := &bn.Network{Nodes: []bn.Node{
		{Name: "x", Card: 3, CPT: []float64{0.3, 0.3, 0.4}},
		{Name: "y", Card: 3, Parents: []int{0}, CPT: []float64{
			0.85, 0.1, 0.05,
			0.05, 0.9, 0.05,
			0.1, 0.05, 0.85,
		}},
		{Name: "z", Card: 3, Parents: []int{1}, CPT: []float64{
			0.9, 0.05, 0.05,
			0.05, 0.9, 0.05,
			0.05, 0.05, 0.9,
		}},
	}}
	res := learnFromNetwork(t, nw, 8000, 1, Options{})
	if !res.Skeleton.HasUndirected(0, 1) || !res.Skeleton.HasUndirected(1, 2) {
		t.Fatalf("chain edges missing: %s", res.Skeleton)
	}
	if res.Skeleton.Adjacent(0, 2) {
		t.Fatalf("indirect edge x-z not removed: %s", res.Skeleton)
	}
	// The chain has no v-structure, so the CPDAG stays undirected.
	if res.CPDAG.HasDirected(0, 1) && res.CPDAG.HasDirected(1, 0) {
		t.Fatalf("chain should not be fully compelled: %s", res.CPDAG)
	}
}

func TestLearnColliderOrientation(t *testing.T) {
	// x -> z <- y with x, y independent roots: PC must orient the collider.
	nw := &bn.Network{Nodes: []bn.Node{
		{Name: "x", Card: 2, CPT: []float64{0.5, 0.5}},
		{Name: "y", Card: 2, CPT: []float64{0.5, 0.5}},
		{Name: "z", Card: 2, Parents: []int{0, 1}, CPT: []float64{
			0.95, 0.05, // x=0,y=0 -> z mostly 0
			0.6, 0.4,
			0.6, 0.4,
			0.05, 0.95, // x=1,y=1 -> z mostly 1
		}},
	}}
	res := learnFromNetwork(t, nw, 10000, 2, Options{})
	if !res.CPDAG.HasDirected(0, 2) || !res.CPDAG.HasDirected(1, 2) {
		t.Fatalf("collider not oriented: %s", res.CPDAG)
	}
	if res.CPDAG.Adjacent(0, 1) {
		t.Fatalf("spurious x-y edge: %s", res.CPDAG)
	}
}

func TestLearnCancerRecovery(t *testing.T) {
	// On generous samples the Cancer network's skeleton should be close to
	// the truth: cancer adjacent to xray and dysp, and no xray-dysp edge.
	res := learnFromNetwork(t, bn.Cancer(), 20000, 3, Options{Alpha: 0.01})
	cancer, xray, dysp := 2, 3, 4
	if !res.Skeleton.Adjacent(cancer, xray) {
		t.Fatalf("cancer-xray edge missing: %s", res.Skeleton)
	}
	if !res.Skeleton.Adjacent(cancer, dysp) {
		t.Fatalf("cancer-dysp edge missing: %s", res.Skeleton)
	}
	if res.Skeleton.Adjacent(xray, dysp) {
		t.Fatalf("xray-dysp edge not screened off by cancer: %s", res.Skeleton)
	}
}

func TestLearnOnAuxiliaryDistribution(t *testing.T) {
	// The auxiliary transform preserves CI structure (Prop. 5); a
	// deterministic chain learned over aux samples keeps the chain skeleton.
	nw := bn.PostalChain(12)
	rel, err := nw.Sample(4000, 4)
	if err != nil {
		t.Fatal(err)
	}
	aux, err := auxdist.Sample(rel, auxdist.Options{Shifts: 12, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Learn(aux, Options{Alpha: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Skeleton.Adjacent(0, 1) || !res.Skeleton.Adjacent(1, 2) || !res.Skeleton.Adjacent(2, 3) {
		t.Fatalf("chain edges missing on aux data: %s", res.Skeleton)
	}
	if res.Skeleton.Adjacent(0, 2) || res.Skeleton.Adjacent(0, 3) || res.Skeleton.Adjacent(1, 3) {
		t.Fatalf("transitive edges not removed on aux data: %s", res.Skeleton)
	}
}

func TestLearnIndependentVars(t *testing.T) {
	nw := &bn.Network{Nodes: []bn.Node{
		{Name: "a", Card: 3, CPT: []float64{0.2, 0.3, 0.5}},
		{Name: "b", Card: 2, CPT: []float64{0.6, 0.4}},
		{Name: "c", Card: 4, CPT: []float64{0.25, 0.25, 0.25, 0.25}},
	}}
	res := learnFromNetwork(t, nw, 5000, 5, Options{Alpha: 0.001})
	if d, u := res.CPDAG.NumEdges(); d+u != 0 {
		t.Fatalf("independent vars produced edges: %s", res.CPDAG)
	}
}

func TestLearnErrorsAndCounters(t *testing.T) {
	if _, err := Learn(&auxdist.Binary{}, Options{}); err == nil {
		t.Fatal("expected error on zero variables")
	}
	res := learnFromNetwork(t, bn.Cancer(), 2000, 6, Options{})
	if res.Tests <= 0 {
		t.Fatal("test counter not incremented")
	}
}

func TestForEachSubset(t *testing.T) {
	var got [][]int
	forEachSubset([]int{1, 2, 3}, 2, func(s []int) bool {
		got = append(got, append([]int(nil), s...))
		return true
	})
	want := [][]int{{1, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	// k = 0 visits the empty set exactly once.
	count := 0
	forEachSubset([]int{1, 2}, 0, func(s []int) bool { count++; return true })
	if count != 1 {
		t.Fatalf("empty subset visited %d times", count)
	}
	// Early stop.
	count = 0
	forEachSubset([]int{1, 2, 3, 4}, 1, func(s []int) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop failed: %d", count)
	}
	// k > len yields nothing.
	forEachSubset([]int{1}, 2, func(s []int) bool { t.Fatal("unexpected subset"); return false })
}

func TestLearnedMECContainsTruth(t *testing.T) {
	// For the collider network, the MEC has exactly one member — the truth.
	nw := &bn.Network{Nodes: []bn.Node{
		{Name: "x", Card: 2, CPT: []float64{0.5, 0.5}},
		{Name: "y", Card: 2, CPT: []float64{0.5, 0.5}},
		{Name: "z", Card: 2, Parents: []int{0, 1}, CPT: []float64{
			0.95, 0.05,
			0.6, 0.4,
			0.6, 0.4,
			0.05, 0.95,
		}},
	}}
	res := learnFromNetwork(t, nw, 10000, 7, Options{})
	dags, err := graph.EnumerateMEC(res.CPDAG, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth := nw.TrueDAG()
	found := false
	for _, d := range dags {
		if d.Key() == truth.Key() {
			found = true
		}
	}
	if !found {
		t.Fatalf("true DAG %s not in learned MEC (size %d)", truth, len(dags))
	}
}
