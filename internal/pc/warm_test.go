package pc

import (
	"errors"
	"testing"

	"github.com/guardrail-db/guardrail/internal/auxdist"
	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/obs"
	"github.com/guardrail-db/guardrail/internal/stats"
)

// flakyTester delegates to a real tester but rejects every conditioning
// set of size failLevel as malformed, the way a corrupted sepset or a
// stats-layer bug would.
type flakyTester struct {
	stats.CITester
	failLevel int
}

func (f flakyTester) Test(x, y int, z []int) (stats.TestResult, error) {
	if len(z) == f.failLevel {
		return stats.TestResult{}, errors.New("malformed separating set")
	}
	return f.CITester.Test(x, y, z)
}

func TestMalformedSepsetsCounted(t *testing.T) {
	rel, err := bn.Cancer().Sample(4000, 9)
	if err != nil {
		t.Fatal(err)
	}
	ct := flakyTester{CITester: stats.Tester(auxdist.Identity(rel)), failLevel: 1}

	var counts []int
	for _, workers := range []int{1, 4, 8} {
		reg := obs.New()
		res, err := LearnFrom(ct, Options{Workers: workers, Obs: reg})
		if err != nil {
			t.Fatal(err)
		}
		if res.SepsetSkips == 0 {
			t.Fatalf("workers=%d: malformed sets were skipped silently", workers)
		}
		if got := reg.Counter("pc.sepsets_skipped").Value(); got != int64(res.SepsetSkips) {
			t.Fatalf("workers=%d: counter %d != result %d", workers, got, res.SepsetSkips)
		}
		counts = append(counts, res.SepsetSkips)
	}
	// Schedule independence: the count is merged at the level barrier in
	// edge order, so it cannot depend on the worker schedule.
	if counts[0] != counts[1] || counts[0] != counts[2] {
		t.Fatalf("skip count depends on schedule: %v", counts)
	}

	// A healthy run records zero skips.
	reg := obs.New()
	res, err := LearnFrom(stats.Tester(auxdist.Identity(rel)), Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.SepsetSkips != 0 || reg.Counter("pc.sepsets_skipped").Value() != 0 {
		t.Fatalf("healthy run reported skips: %d", res.SepsetSkips)
	}
}

func TestLearnWarmMatchesCold(t *testing.T) {
	rel, err := bn.Cancer().Sample(6000, 10)
	if err != nil {
		t.Fatal(err)
	}
	ct := stats.Tester(auxdist.Identity(rel))
	cold, err := LearnFrom(ct, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := ct.NumVars()

	// All-dirty warm start forgets everything: identical to cold.
	allDirty := make([]bool, n)
	for i := range allDirty {
		allDirty[i] = true
	}
	warm, err := LearnWarm(ct, cold, allDirty, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.CPDAG.String() != cold.CPDAG.String() {
		t.Fatalf("all-dirty warm start diverged:\nwarm %s\ncold %s", warm.CPDAG, cold.CPDAG)
	}

	// Nothing dirty: the previous structure survives untouched, with
	// (nearly) zero tests spent.
	frozen, err := LearnWarm(ct, cold, make([]bool, n), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if frozen.CPDAG.String() != cold.CPDAG.String() {
		t.Fatalf("clean warm start changed the CPDAG:\n%s\nvs\n%s", frozen.CPDAG, cold.CPDAG)
	}
	if frozen.Tests != 0 {
		t.Fatalf("clean warm start ran %d tests", frozen.Tests)
	}

	// Unchanged data with a dirty subset: re-deciding only the dirty
	// edges must reproduce the cold structure, with fewer tests.
	partial := make([]bool, n)
	partial[2] = true // "cancer", the hub of the network
	pres, err := LearnWarm(ct, cold, partial, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pres.CPDAG.String() != cold.CPDAG.String() {
		t.Fatalf("partial warm start diverged:\nwarm %s\ncold %s", pres.CPDAG, cold.CPDAG)
	}
	if pres.Tests >= cold.Tests {
		t.Fatalf("warm start did not save tests: %d vs cold %d", pres.Tests, cold.Tests)
	}

	// Shape mismatches are rejected.
	if _, err := LearnWarm(ct, cold, make([]bool, n+1), Options{}); err == nil {
		t.Fatal("expected error on dirty-flag length mismatch")
	}
	// Nil prev is a plain cold start.
	fromNil, err := LearnWarm(ct, nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fromNil.CPDAG.String() != cold.CPDAG.String() {
		t.Fatal("nil-prev warm start is not a cold start")
	}
}

func TestLearnWarmDeterministicAcrossWorkers(t *testing.T) {
	rel, err := bn.Cancer().Sample(5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	ct := stats.Tester(auxdist.Identity(rel))
	cold, err := LearnFrom(ct, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dirty := make([]bool, ct.NumVars())
	dirty[0], dirty[3] = true, true
	var ref string
	for _, workers := range []int{1, 4, 8} {
		res, err := LearnWarm(ct, cold, dirty, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if ref == "" {
			ref = res.CPDAG.String()
		} else if res.CPDAG.String() != ref {
			t.Fatalf("workers=%d: warm CPDAG diverged", workers)
		}
	}
}
