// Package pc implements the PC structure-learning algorithm used by
// Guardrail's sketch learner (§4): starting from a complete undirected
// graph, it deletes edges between conditionally independent variables with
// conditioning sets of growing size, records separation sets, orients
// v-structures, and closes under the Meek rules, producing the CPDAG that
// represents the Markov equivalence class of the data's PGM.
package pc

import (
	"context"
	"fmt"
	"sort"

	"github.com/guardrail-db/guardrail/internal/graph"
	"github.com/guardrail-db/guardrail/internal/obs"
	"github.com/guardrail-db/guardrail/internal/obs/trace"
	"github.com/guardrail-db/guardrail/internal/par"
	"github.com/guardrail-db/guardrail/internal/stats"
)

// Options tunes the learner.
type Options struct {
	// Alpha is the significance level of the G² tests (default 0.01).
	Alpha float64
	// MaxCond caps the conditioning-set size (default 3).
	MaxCond int
	// MaxCard skips variables with more categories than this when forming
	// conditioning sets, a standard guard against sparse strata (default 64).
	MaxCard int
	// Workers bounds the concurrency of each level's CI sweep; <= 0 uses
	// every core, 1 forces the serial path. Any value yields the same
	// Result: edge decisions within a level are independent (the stable-PC
	// order-independence property) and are merged at the level barrier in
	// a fixed edge order.
	Workers int
	// Obs receives pc.ci_tests / pc.edges_removed counters and the
	// pc.learn stage timing; nil disables instrumentation at zero cost.
	Obs *obs.Registry
	// Trace parents the learner's span tree (pc.learn → pc.level →
	// pc.edge); the zero scope disables tracing at zero cost. Timings are
	// wall-clock and never feed back into results.
	Trace trace.Scope
}

func (o *Options) defaults() {
	if o.Alpha == 0 {
		o.Alpha = 0.01
	}
	if o.MaxCond == 0 {
		o.MaxCond = 3
	}
	if o.MaxCard == 0 {
		o.MaxCard = 64
	}
}

// Result carries the learned structure and bookkeeping for reporting.
type Result struct {
	// CPDAG is the learned equivalence class.
	CPDAG *graph.PDAG
	// Skeleton is the undirected graph before orientation.
	Skeleton *graph.PDAG
	// SepSets maps graph.PairKey(a,b) to the separating set that removed
	// the edge a-b.
	SepSets map[int64][]int
	// Tests counts the independence tests performed.
	Tests int
	// SepsetSkips counts candidate separating sets a test rejected as
	// malformed (GTest returned an error). Summed at the level barrier in
	// edge order, so the count is a function of the data and options
	// alone, never of the worker schedule.
	SepsetSkips int
}

// Learn runs the PC algorithm over d's raw columns.
func Learn(d stats.Data, opts Options) (*Result, error) {
	return LearnFrom(stats.Tester(d), opts)
}

// LearnFrom runs the PC algorithm against any CI-test provider — raw
// columns via stats.Tester, or merged windowed contingency tables via
// internal/stats/incr, which is what makes incremental re-learning cost
// O(window change) instead of O(data).
func LearnFrom(t stats.CITester, opts Options) (*Result, error) {
	return learn(t, nil, nil, opts)
}

// LearnWarm re-learns warm-started from a previous result: edges between
// two clean variables keep their previous decision (present, or absent
// with its recorded separating set), and only edges with at least one
// dirty endpoint are re-decided from scratch. dirty[i] marks variable i
// as having drifted statistics; len(dirty) must equal t.NumVars(), which
// must match prev's variable count. A nil prev falls back to LearnFrom.
//
// Soundness: a CI decision i ⟂ j | S only reads the joint distribution
// of {i, j} ∪ S. Conditioning candidates are drawn from the endpoints'
// neighborhoods, so when neither endpoint is dirty and the statistics of
// clean variables are unchanged, every test that decided the edge in the
// previous run returns the same answer — re-running it is pure waste.
// Edges with a dirty endpoint start from the complete-graph state and go
// through the full level sweep, with conditioning candidates drawn from
// the current (partially frozen) adjacency.
func LearnWarm(t stats.CITester, prev *Result, dirty []bool, opts Options) (*Result, error) {
	if prev == nil {
		return LearnFrom(t, opts)
	}
	if len(dirty) != t.NumVars() || prev.Skeleton == nil || prev.Skeleton.N() != t.NumVars() {
		return nil, fmt.Errorf("pc: warm start shape mismatch: %d vars, %d dirty flags, prev %v",
			t.NumVars(), len(dirty), prev.Skeleton != nil)
	}
	return learn(t, prev, dirty, opts)
}

// learn is the shared PC core. With prev == nil it is plain stable-PC
// from the complete graph; with prev and dirty it is the warm-started
// variant described on LearnWarm.
func learn(t stats.CITester, prev *Result, dirty []bool, opts Options) (*Result, error) {
	opts.defaults()
	span := opts.Obs.Histogram("pc.learn").Start()
	defer span.Stop()
	n := t.NumVars()
	tsp := opts.Trace.Start("pc.learn").Int("vars", int64(n))
	defer tsp.End()
	lsc := opts.Trace.Under(tsp)
	if n == 0 {
		return nil, fmt.Errorf("pc: no variables")
	}
	eligible := func(i, j int) bool { return true }
	skel := graph.NewPDAG(n)
	sep := make(map[int64][]int)
	if prev == nil {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				skel.AddUndirected(i, j)
			}
		}
	} else {
		eligible = func(i, j int) bool { return dirty[i] || dirty[j] }
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				switch {
				case eligible(i, j):
					// Dirty pair: forget the old decision, re-decide from
					// the complete-graph state.
					skel.AddUndirected(i, j)
				case prev.Skeleton.HasUndirected(i, j):
					skel.AddUndirected(i, j)
				default:
					if s, ok := prev.SepSets[graph.PairKey(i, j)]; ok {
						sep[graph.PairKey(i, j)] = append([]int(nil), s...)
					}
				}
			}
		}
	}
	tests := 0
	skips := 0

	for level := 0; level <= opts.MaxCond; level++ {
		// Collect the current adjacency before this level's deletions, as
		// in the stable PC variant, so results do not depend on edge order.
		adj := make([][]int, n)
		for i := 0; i < n; i++ {
			adj[i] = skel.UndirectedNeighbors(i)
		}
		type edge struct{ i, j int }
		var edges []edge
		for i := 0; i < n; i++ {
			for _, j := range adj[i] {
				if j > i && eligible(i, j) {
					edges = append(edges, edge{i, j})
				}
			}
		}
		// Decide every edge of the level against the frozen adjacency
		// snapshot concurrently — decisions are independent because no
		// deletion is applied until the level barrier below.
		lsp := lsc.Start("pc.level").Int("level", int64(level)).Int("edges", int64(len(edges)))
		decisions, err := par.Map(trace.ContextWithScope(context.Background(), lsc.Under(lsp)),
			opts.Workers, len(edges),
			func(ctx context.Context, k int) (edgeDecision, error) {
				esp := trace.FromContext(ctx).Start("pc.edge").
					Int("i", int64(edges[k].i)).Int("j", int64(edges[k].j))
				dec := decideEdge(t, edges[k].i, edges[k].j, adj, level, opts)
				esp.Int("tests", int64(dec.tests)).Bool("removed", dec.remove).End()
				return dec, nil
			})
		if err != nil {
			lsp.End()
			return nil, err
		}
		// Level barrier: merge deletions and sepsets in edge order.
		removedAny := false
		removed := 0
		for k, dec := range decisions {
			tests += dec.tests
			skips += dec.skips
			if dec.remove {
				skel.RemoveEdge(edges[k].i, edges[k].j)
				sep[graph.PairKey(edges[k].i, edges[k].j)] = dec.sep
				removedAny = true
				removed++
			}
		}
		lsp.Int("removed", int64(removed)).End()
		if !removedAny && level > 0 {
			break
		}
	}

	cp := graph.OrientVStructures(skel, sep)
	graph.MeekClose(cp)
	opts.Obs.Counter("pc.ci_tests").Add(int64(tests))
	opts.Obs.Counter("pc.edges_removed").Add(int64(len(sep)))
	opts.Obs.Counter("pc.sepsets_skipped").Add(int64(skips))
	return &Result{CPDAG: cp, Skeleton: skel, SepSets: sep, Tests: tests, SepsetSkips: skips}, nil
}

// edgeDecision is the outcome of one edge's CI sweep at one level: whether
// the edge goes, the separating set that removed it, how many tests it
// took to decide, and how many candidate sets were skipped as malformed.
type edgeDecision struct {
	remove bool
	sep    []int
	tests  int
	skips  int
}

// decideEdge tests i ⟂ j | S for all size-level subsets S of each
// endpoint's snapshot neighborhood; the first independence wins. It reads
// the shared statistics and adjacency snapshot but mutates nothing, so the
// per-level sweep can fan out across workers.
func decideEdge(t stats.CITester, i, j int, adj [][]int, level int, opts Options) edgeDecision {
	dec := edgeDecision{}
	for _, base := range [2][2]int{{i, j}, {j, i}} {
		cands := filterCard(t, exclude(adj[base[0]], base[1]), opts.MaxCard)
		if len(cands) < level {
			continue
		}
		forEachSubset(cands, level, func(s []int) bool {
			dec.tests++
			res, err := t.Test(i, j, s)
			if err != nil {
				// A malformed separating set (a tester error) must not pass
				// silently: it is counted per edge and surfaced through the
				// pc.sepsets_skipped counter and Result.SepsetSkips so run
				// reports show when the search space was quietly narrowed.
				dec.skips++
				return true // keep searching the remaining sets
			}
			if res.Independent(opts.Alpha) {
				dec.remove = true
				dec.sep = append([]int(nil), s...)
				return false
			}
			return true
		})
		if dec.remove {
			return dec
		}
		if base[0] == j && base[1] == i && sameSet(adj[i], adj[j], i, j) {
			break // symmetric neighborhoods: second pass is redundant
		}
	}
	return dec
}

func exclude(xs []int, v int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func filterCard(t stats.CITester, xs []int, maxCard int) []int {
	out := xs[:0:0]
	for _, x := range xs {
		if t.Card(x) <= maxCard {
			out = append(out, x)
		}
	}
	return out
}

func sameSet(a, b []int, skipA, skipB int) bool {
	fa := exclude(a, skipB)
	fb := exclude(b, skipA)
	if len(fa) != len(fb) {
		return false
	}
	sa := append([]int(nil), fa...)
	sb := append([]int(nil), fb...)
	sort.Ints(sa)
	sort.Ints(sb)
	for k := range sa {
		if sa[k] != sb[k] {
			return false
		}
	}
	return true
}

// forEachSubset invokes f on every size-k subset of xs until f returns
// false.
func forEachSubset(xs []int, k int, f func([]int) bool) {
	if k == 0 {
		f(nil)
		return
	}
	if k > len(xs) {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	buf := make([]int, k)
	for {
		for i, v := range idx {
			buf[i] = xs[v]
		}
		if !f(buf) {
			return
		}
		// Advance the combination.
		i := k - 1
		for i >= 0 && idx[i] == len(xs)-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
