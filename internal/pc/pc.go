// Package pc implements the PC structure-learning algorithm used by
// Guardrail's sketch learner (§4): starting from a complete undirected
// graph, it deletes edges between conditionally independent variables with
// conditioning sets of growing size, records separation sets, orients
// v-structures, and closes under the Meek rules, producing the CPDAG that
// represents the Markov equivalence class of the data's PGM.
package pc

import (
	"context"
	"fmt"
	"sort"

	"github.com/guardrail-db/guardrail/internal/graph"
	"github.com/guardrail-db/guardrail/internal/obs"
	"github.com/guardrail-db/guardrail/internal/obs/trace"
	"github.com/guardrail-db/guardrail/internal/par"
	"github.com/guardrail-db/guardrail/internal/stats"
)

// Options tunes the learner.
type Options struct {
	// Alpha is the significance level of the G² tests (default 0.01).
	Alpha float64
	// MaxCond caps the conditioning-set size (default 3).
	MaxCond int
	// MaxCard skips variables with more categories than this when forming
	// conditioning sets, a standard guard against sparse strata (default 64).
	MaxCard int
	// Workers bounds the concurrency of each level's CI sweep; <= 0 uses
	// every core, 1 forces the serial path. Any value yields the same
	// Result: edge decisions within a level are independent (the stable-PC
	// order-independence property) and are merged at the level barrier in
	// a fixed edge order.
	Workers int
	// Obs receives pc.ci_tests / pc.edges_removed counters and the
	// pc.learn stage timing; nil disables instrumentation at zero cost.
	Obs *obs.Registry
	// Trace parents the learner's span tree (pc.learn → pc.level →
	// pc.edge); the zero scope disables tracing at zero cost. Timings are
	// wall-clock and never feed back into results.
	Trace trace.Scope
}

func (o *Options) defaults() {
	if o.Alpha == 0 {
		o.Alpha = 0.01
	}
	if o.MaxCond == 0 {
		o.MaxCond = 3
	}
	if o.MaxCard == 0 {
		o.MaxCard = 64
	}
}

// Result carries the learned structure and bookkeeping for reporting.
type Result struct {
	// CPDAG is the learned equivalence class.
	CPDAG *graph.PDAG
	// Skeleton is the undirected graph before orientation.
	Skeleton *graph.PDAG
	// SepSets maps graph.PairKey(a,b) to the separating set that removed
	// the edge a-b.
	SepSets map[int64][]int
	// Tests counts the independence tests performed.
	Tests int
}

// Learn runs the PC algorithm over d.
func Learn(d stats.Data, opts Options) (*Result, error) {
	opts.defaults()
	span := opts.Obs.Histogram("pc.learn").Start()
	defer span.Stop()
	n := d.NumVars()
	tsp := opts.Trace.Start("pc.learn").Int("vars", int64(n))
	defer tsp.End()
	lsc := opts.Trace.Under(tsp)
	if n == 0 {
		return nil, fmt.Errorf("pc: no variables")
	}
	skel := graph.NewPDAG(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			skel.AddUndirected(i, j)
		}
	}
	sep := make(map[int64][]int)
	tests := 0

	for level := 0; level <= opts.MaxCond; level++ {
		// Collect the current adjacency before this level's deletions, as
		// in the stable PC variant, so results do not depend on edge order.
		adj := make([][]int, n)
		for i := 0; i < n; i++ {
			adj[i] = skel.UndirectedNeighbors(i)
		}
		type edge struct{ i, j int }
		var edges []edge
		for i := 0; i < n; i++ {
			for _, j := range adj[i] {
				if j > i {
					edges = append(edges, edge{i, j})
				}
			}
		}
		// Decide every edge of the level against the frozen adjacency
		// snapshot concurrently — decisions are independent because no
		// deletion is applied until the level barrier below.
		lsp := lsc.Start("pc.level").Int("level", int64(level)).Int("edges", int64(len(edges)))
		decisions, err := par.Map(trace.ContextWithScope(context.Background(), lsc.Under(lsp)),
			opts.Workers, len(edges),
			func(ctx context.Context, k int) (edgeDecision, error) {
				esp := trace.FromContext(ctx).Start("pc.edge").
					Int("i", int64(edges[k].i)).Int("j", int64(edges[k].j))
				dec := decideEdge(d, edges[k].i, edges[k].j, adj, level, opts)
				esp.Int("tests", int64(dec.tests)).Bool("removed", dec.remove).End()
				return dec, nil
			})
		if err != nil {
			lsp.End()
			return nil, err
		}
		// Level barrier: merge deletions and sepsets in edge order.
		removedAny := false
		removed := 0
		for k, dec := range decisions {
			tests += dec.tests
			if dec.remove {
				skel.RemoveEdge(edges[k].i, edges[k].j)
				sep[graph.PairKey(edges[k].i, edges[k].j)] = dec.sep
				removedAny = true
				removed++
			}
		}
		lsp.Int("removed", int64(removed)).End()
		if !removedAny && level > 0 {
			break
		}
	}

	cp := graph.OrientVStructures(skel, sep)
	graph.MeekClose(cp)
	opts.Obs.Counter("pc.ci_tests").Add(int64(tests))
	opts.Obs.Counter("pc.edges_removed").Add(int64(len(sep)))
	return &Result{CPDAG: cp, Skeleton: skel, SepSets: sep, Tests: tests}, nil
}

// edgeDecision is the outcome of one edge's CI sweep at one level: whether
// the edge goes, the separating set that removed it, and how many tests it
// took to decide.
type edgeDecision struct {
	remove bool
	sep    []int
	tests  int
}

// decideEdge tests i ⟂ j | S for all size-level subsets S of each
// endpoint's snapshot neighborhood; the first independence wins. It reads
// the shared data and adjacency snapshot but mutates nothing, so the
// per-level sweep can fan out across workers.
func decideEdge(d stats.Data, i, j int, adj [][]int, level int, opts Options) edgeDecision {
	dec := edgeDecision{}
	for _, base := range [2][2]int{{i, j}, {j, i}} {
		cands := filterCard(d, exclude(adj[base[0]], base[1]), opts.MaxCard)
		if len(cands) < level {
			continue
		}
		forEachSubset(cands, level, func(s []int) bool {
			dec.tests++
			res, err := stats.GTest(d, i, j, s)
			if err != nil {
				return true // skip malformed set, keep searching
			}
			if res.Independent(opts.Alpha) {
				dec.remove = true
				dec.sep = append([]int(nil), s...)
				return false
			}
			return true
		})
		if dec.remove {
			return dec
		}
		if base[0] == j && base[1] == i && sameSet(adj[i], adj[j], i, j) {
			break // symmetric neighborhoods: second pass is redundant
		}
	}
	return dec
}

func exclude(xs []int, v int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func filterCard(d stats.Data, xs []int, maxCard int) []int {
	out := xs[:0:0]
	for _, x := range xs {
		if d.Card(x) <= maxCard {
			out = append(out, x)
		}
	}
	return out
}

func sameSet(a, b []int, skipA, skipB int) bool {
	fa := exclude(a, skipB)
	fb := exclude(b, skipA)
	if len(fa) != len(fb) {
		return false
	}
	sa := append([]int(nil), fa...)
	sb := append([]int(nil), fb...)
	sort.Ints(sa)
	sort.Ints(sb)
	for k := range sa {
		if sa[k] != sb[k] {
			return false
		}
	}
	return true
}

// forEachSubset invokes f on every size-k subset of xs until f returns
// false.
func forEachSubset(xs []int, k int, f func([]int) bool) {
	if k == 0 {
		f(nil)
		return
	}
	if k > len(xs) {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	buf := make([]int, k)
	for {
		for i, v := range idx {
			buf[i] = xs[v]
		}
		if !f(buf) {
			return
		}
		// Advance the combination.
		i := k - 1
		for i >= 0 && idx[i] == len(xs)-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
