// Package pc implements the PC structure-learning algorithm used by
// Guardrail's sketch learner (§4): starting from a complete undirected
// graph, it deletes edges between conditionally independent variables with
// conditioning sets of growing size, records separation sets, orients
// v-structures, and closes under the Meek rules, producing the CPDAG that
// represents the Markov equivalence class of the data's PGM.
package pc

import (
	"fmt"
	"sort"

	"github.com/guardrail-db/guardrail/internal/graph"
	"github.com/guardrail-db/guardrail/internal/stats"
)

// Options tunes the learner.
type Options struct {
	// Alpha is the significance level of the G² tests (default 0.01).
	Alpha float64
	// MaxCond caps the conditioning-set size (default 3).
	MaxCond int
	// MaxCard skips variables with more categories than this when forming
	// conditioning sets, a standard guard against sparse strata (default 64).
	MaxCard int
}

func (o *Options) defaults() {
	if o.Alpha == 0 {
		o.Alpha = 0.01
	}
	if o.MaxCond == 0 {
		o.MaxCond = 3
	}
	if o.MaxCard == 0 {
		o.MaxCard = 64
	}
}

// Result carries the learned structure and bookkeeping for reporting.
type Result struct {
	// CPDAG is the learned equivalence class.
	CPDAG *graph.PDAG
	// Skeleton is the undirected graph before orientation.
	Skeleton *graph.PDAG
	// SepSets maps graph.PairKey(a,b) to the separating set that removed
	// the edge a-b.
	SepSets map[int64][]int
	// Tests counts the independence tests performed.
	Tests int
}

// Learn runs the PC algorithm over d.
func Learn(d stats.Data, opts Options) (*Result, error) {
	opts.defaults()
	n := d.NumVars()
	if n == 0 {
		return nil, fmt.Errorf("pc: no variables")
	}
	skel := graph.NewPDAG(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			skel.AddUndirected(i, j)
		}
	}
	sep := make(map[int64][]int)
	tests := 0

	for level := 0; level <= opts.MaxCond; level++ {
		// Collect the current adjacency before this level's deletions, as
		// in the stable PC variant, so results do not depend on edge order.
		adj := make([][]int, n)
		for i := 0; i < n; i++ {
			adj[i] = skel.UndirectedNeighbors(i)
		}
		removedAny := false
		for i := 0; i < n; i++ {
			for _, j := range adj[i] {
				if j < i || !skel.HasUndirected(i, j) {
					continue
				}
				// Candidate conditioning sets: subsets of adj(i)\{j} and
				// adj(j)\{i} of the current level size.
				if removeEdge(d, skel, sep, i, j, adj, level, opts, &tests) {
					removedAny = true
				}
			}
		}
		if !removedAny && level > 0 {
			break
		}
	}

	cp := graph.OrientVStructures(skel, sep)
	graph.MeekClose(cp)
	return &Result{CPDAG: cp, Skeleton: skel, SepSets: sep, Tests: tests}, nil
}

// removeEdge tests i ⟂ j | S for all size-level subsets S of each
// endpoint's neighborhood; on the first independence it deletes the edge
// and records the sepset.
func removeEdge(d stats.Data, skel *graph.PDAG, sep map[int64][]int, i, j int, adj [][]int, level int, opts Options, tests *int) bool {
	for _, base := range [2][2]int{{i, j}, {j, i}} {
		cands := filterCard(d, exclude(adj[base[0]], base[1]), opts.MaxCard)
		if len(cands) < level {
			continue
		}
		found := false
		forEachSubset(cands, level, func(s []int) bool {
			*tests++
			res, err := stats.GTest(d, i, j, s)
			if err != nil {
				return true // skip malformed set, keep searching
			}
			if res.Independent(opts.Alpha) {
				skel.RemoveEdge(i, j)
				sep[graph.PairKey(i, j)] = append([]int(nil), s...)
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
		if base[0] == j && base[1] == i && sameSet(adj[i], adj[j], i, j) {
			break // symmetric neighborhoods: second pass is redundant
		}
	}
	return false
}

func exclude(xs []int, v int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func filterCard(d stats.Data, xs []int, maxCard int) []int {
	out := xs[:0:0]
	for _, x := range xs {
		if d.Card(x) <= maxCard {
			out = append(out, x)
		}
	}
	return out
}

func sameSet(a, b []int, skipA, skipB int) bool {
	fa := exclude(a, skipB)
	fb := exclude(b, skipA)
	if len(fa) != len(fb) {
		return false
	}
	sa := append([]int(nil), fa...)
	sb := append([]int(nil), fb...)
	sort.Ints(sa)
	sort.Ints(sb)
	for k := range sa {
		if sa[k] != sb[k] {
			return false
		}
	}
	return true
}

// forEachSubset invokes f on every size-k subset of xs until f returns
// false.
func forEachSubset(xs []int, k int, f func([]int) bool) {
	if k == 0 {
		f(nil)
		return
	}
	if k > len(xs) {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	buf := make([]int, k)
	for {
		for i, v := range idx {
			buf[i] = xs[v]
		}
		if !f(buf) {
			return
		}
		// Advance the combination.
		i := k - 1
		for i >= 0 && idx[i] == len(xs)-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
