package pc

import (
	"context"
	"math/rand"
	"sync"

	"github.com/guardrail-db/guardrail/internal/graph"
	"github.com/guardrail-db/guardrail/internal/obs/trace"
	"github.com/guardrail-db/guardrail/internal/par"
	"github.com/guardrail-db/guardrail/internal/stats"
)

// StableOptions configures the bootstrap-aggregated learner.
type StableOptions struct {
	// Options for each base PC run.
	Options
	// Rounds of bootstrap resampling (default 10).
	Rounds int
	// KeepFraction: an edge survives when present in at least this share
	// of bootstrap skeletons (default 0.6).
	KeepFraction float64
	// Seed drives the resampling.
	Seed int64
}

func (o *StableOptions) defaults() {
	if o.Rounds == 0 {
		o.Rounds = 10
	}
	if o.KeepFraction == 0 {
		o.KeepFraction = 0.6
	}
}

// resample is a bootstrap view of a stats.Data: rows drawn with
// replacement. Columns materialize lazily under a sync.Once each, so the
// parallel CI sweep inside Learn can share one resample across workers.
type resample struct {
	base stats.Data
	rows []int
	cols [][]int32
	once []sync.Once
}

func newResample(base stats.Data, rng *rand.Rand) *resample {
	n := base.N()
	rows := make([]int, n)
	for i := range rows {
		rows[i] = rng.Intn(n)
	}
	m := base.NumVars()
	return &resample{base: base, rows: rows, cols: make([][]int32, m), once: make([]sync.Once, m)}
}

func (r *resample) NumVars() int   { return r.base.NumVars() }
func (r *resample) N() int         { return len(r.rows) }
func (r *resample) Card(i int) int { return r.base.Card(i) }

func (r *resample) Codes(i int) []int32 {
	r.once[i].Do(func() {
		src := r.base.Codes(i)
		col := make([]int32, len(r.rows))
		for j, row := range r.rows {
			col[j] = src[row]
		}
		r.cols[i] = col
	})
	return r.cols[i]
}

// LearnStable runs PC on bootstrap resamples of d and keeps only the edges
// that recur in at least KeepFraction of the skeletons, then re-orients the
// aggregated skeleton using sepsets from a final full-data pass. Bootstrap
// aggregation trades a little recall for considerably fewer spurious edges
// on noisy data — a standard stabilization of constraint-based learners.
//
// The rounds are independent given their resamples, so they run on the
// worker pool; the resamples themselves are drawn serially up front to
// keep the RNG consumption order — and therefore the result — identical
// at every worker count.
func LearnStable(d stats.Data, opts StableOptions) (*Result, error) {
	opts.defaults()
	opts.Obs.Counter("pc.bootstrap_rounds").Add(int64(opts.Rounds))
	tsp := opts.Trace.Start("pc.stable").Int("rounds", int64(opts.Rounds))
	defer tsp.End()
	rng := rand.New(rand.NewSource(opts.Seed))
	n := d.NumVars()
	samples := make([]*resample, opts.Rounds)
	for round := range samples {
		samples[round] = newResample(d, rng)
	}
	// Each round is one worker-pool task; the per-level sweep inside these
	// Learn calls stays serial so the pool is not oversubscribed. Each
	// round's Learn inherits the worker's own trace lane from the task
	// context, keeping every lane single-writer even though the inner
	// learner also starts spans.
	roundOpts := opts.Options
	roundOpts.Workers = 1
	results, err := par.Map(trace.ContextWithScope(context.Background(), opts.Trace.Under(tsp)),
		opts.Workers, opts.Rounds,
		func(ctx context.Context, round int) (*Result, error) {
			sc := trace.FromContext(ctx)
			rsp := sc.Start("pc.round").Int("round", int64(round))
			ro := roundOpts
			ro.Trace = sc.Under(rsp)
			res, rerr := Learn(samples[round], ro)
			rsp.End()
			return res, rerr
		})
	if err != nil {
		return nil, err
	}
	votes := make([][]int, n)
	for i := range votes {
		votes[i] = make([]int, n)
	}
	for _, res := range results {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if res.Skeleton.Adjacent(i, j) {
					votes[i][j]++
				}
			}
		}
	}
	// Full-data pass supplies sepsets and the tie-breaking skeleton.
	fullOpts := opts.Options
	fullOpts.Trace = opts.Trace.Under(tsp)
	full, err := Learn(d, fullOpts)
	if err != nil {
		return nil, err
	}
	need := int(opts.KeepFraction*float64(opts.Rounds) + 0.5)
	skel := graph.NewPDAG(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if votes[i][j] >= need {
				skel.AddUndirected(i, j)
			}
		}
	}
	cp := graph.OrientVStructures(skel, full.SepSets)
	graph.MeekClose(cp)
	return &Result{CPDAG: cp, Skeleton: skel, SepSets: full.SepSets, Tests: full.Tests}, nil
}
