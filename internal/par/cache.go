package par

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/guardrail-db/guardrail/internal/obs/trace"
)

// cacheShards keeps lock contention low without bloating the zero value;
// shard choice only affects performance, never results.
const cacheShards = 32

// Cache is a sharded, string-keyed memo table safe for concurrent use.
// The compute function for a key runs exactly once across all callers —
// concurrent requesters of an in-flight key block until the first
// computation finishes (singleflight) — so expensive work is never
// duplicated and the cached value is independent of the worker schedule.
// The zero value is ready to use.
type Cache[V any] struct {
	shards [cacheShards]cacheShard[V]
	hits   atomic.Int64
	misses atomic.Int64
}

type cacheShard[V any] struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry[V]
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
}

// Do returns the value cached under key, computing it with fn on the first
// request. Exactly one caller per key runs fn; the miss is charged to that
// caller and every other access counts as a hit, matching the serial
// map-semantics of a single-threaded memo table.
func (c *Cache[V]) Do(key string, fn func() V) V {
	v, _ := c.do(key, fn)
	return v
}

// DoTraced is Do plus a trace instant on the scope carried by ctx: a
// "cache.hit" or "cache.miss" event tagged with the cache's name, so a
// trace shows exactly which pool slots paid for computation and which rode
// the memo table. Tracing disabled (no scope in ctx) costs nothing extra.
func (c *Cache[V]) DoTraced(ctx context.Context, name, key string, fn func() V) V {
	v, hit := c.do(key, fn)
	if sc := trace.FromContext(ctx); sc.Enabled() {
		if hit {
			sc.EventStr("cache.hit", "cache", name)
		} else {
			sc.EventStr("cache.miss", "cache", name)
		}
	}
	return v
}

// do is the shared lookup; the second result reports whether the key was
// already present (a hit).
func (c *Cache[V]) do(key string, fn func() V) (V, bool) {
	sh := &c.shards[fnv1a(key)%cacheShards]
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if !ok {
		if sh.entries == nil {
			sh.entries = map[string]*cacheEntry[V]{}
		}
		e = &cacheEntry[V]{}
		sh.entries[key] = e
	}
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.val = fn() })
	return e.val, ok
}

// Stats reports cache effectiveness so far. The counts are deterministic
// at any worker count: one miss per distinct key, hits for the rest.
func (c *Cache[V]) Stats() (hits, misses int) {
	return int(c.hits.Load()), int(c.misses.Load())
}

// fnv1a is the 32-bit FNV-1a hash, inlined to avoid the per-call
// allocation of hash/fnv's Hash32 on the cache hot path.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
