// Package par is the concurrency substrate of the synthesis pipeline: a
// bounded worker pool whose results come back in submission order, no
// matter which worker finishes first. Every goroutine in the project goes
// through this package (enforced by vetguard's nakedgo check), which keeps
// the determinism argument local: callers submit pure tasks, the pool
// schedules them arbitrarily, and the ordered collection step makes the
// merged outcome independent of that schedule.
//
// Workers == 1 is a true serial fast path — tasks run inline on the
// submitting goroutine with no channels or goroutines involved — so a
// single-worker pipeline reproduces pre-pool behavior exactly.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"github.com/guardrail-db/guardrail/internal/obs/trace"
)

// Resolve normalizes a Workers option: values <= 0 select
// runtime.GOMAXPROCS(0); anything positive is returned unchanged.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// PanicError carries a worker panic across goroutines; Pool.Wait re-panics
// with it so a crash in a worker crashes the caller, stack attached.
type PanicError struct {
	// Value is the original panic value.
	Value any
	// Stack is the worker goroutine's stack at recovery time.
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("par: worker panicked: %v\n%s", p.Value, p.Stack)
}

// cell receives one task's outcome. The submitting goroutine owns the
// slice of cells; exactly one worker writes each cell's fields, and Wait
// reads them only after every worker has exited, so no field needs a lock.
type cell[T any] struct {
	val      T
	err      error
	panicked *PanicError
}

type item[T any] struct {
	cell *cell[T]
	fn   func(context.Context) (T, error)
	idx  int
}

// Pool runs submitted tasks on a bounded set of workers. Submit and Wait
// must be called from a single goroutine; after Wait the pool is spent.
// The first task error (or panic) cancels the pool's context, so
// still-queued tasks are skipped and in-flight tasks can exit early.
type Pool[T any] struct {
	ctx     context.Context
	cancel  context.CancelFunc
	workers int
	tasks   chan item[T]
	wg      sync.WaitGroup
	cells   []*cell[T]
	serial  bool
	// sc is the submitting goroutine's trace scope, captured at New. Each
	// worker rebinds it onto its own tracer lane (worker w → lane w+1), so
	// every span a task emits lands in a buffer only that worker writes.
	sc trace.Scope

	failOnce sync.Once
	batchErr error // first task error observed; set before cancelling
}

// New builds a pool of Resolve(workers) workers bound to ctx.
func New[T any](ctx context.Context, workers int) *Pool[T] {
	workers = Resolve(workers)
	sc := trace.FromContext(ctx)
	ctx, cancel := context.WithCancel(ctx)
	p := &Pool[T]{ctx: ctx, cancel: cancel, workers: workers, sc: sc}
	if workers == 1 {
		p.serial = true
		return p
	}
	p.tasks = make(chan item[T])
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker(w)
	}
	return p
}

// Submit queues fn. With one worker it runs inline immediately; otherwise
// Submit blocks until a worker is free, bounding queued work.
func (p *Pool[T]) Submit(fn func(context.Context) (T, error)) {
	c := &cell[T]{}
	p.cells = append(p.cells, c)
	it := item[T]{cell: c, fn: fn, idx: len(p.cells) - 1}
	if p.serial {
		// Same skip rule as the worker loop: a failed or cancelled batch
		// marks the remaining cells instead of running them.
		if err := p.ctx.Err(); err != nil {
			c.err = err
			return
		}
		// Inline tasks run on the submitting goroutine, so they keep its
		// lane — correct even when that goroutine is itself a worker of an
		// outer pool (nested pools stay single-writer per lane).
		p.run(it, p.ctx, p.sc)
		return
	}
	p.tasks <- it
}

func (p *Pool[T]) worker(w int) {
	defer p.wg.Done()
	// Attribute this worker's spans to its own lane: lane 0 belongs to the
	// coordinating goroutine, worker w owns lane w+1. A tracer with fewer
	// lanes than workers yields a nil lane, which disables tracing for the
	// surplus workers rather than racing two writers on one buffer.
	sc := p.sc.OnLane(p.sc.Lane().Tracer().Lane(w + 1))
	ctx := trace.ContextWithScope(p.ctx, sc)
	for it := range p.tasks {
		if err := p.ctx.Err(); err != nil {
			it.cell.err = err
			continue
		}
		p.run(it, ctx, sc)
	}
}

// run executes one task, converting a panic into a recorded PanicError and
// cancelling the batch on any failure. Each task gets a "par.task" span on
// the running goroutine's lane, and the task context's scope is re-rooted
// under it so spans the task emits nest inside their pool slot.
func (p *Pool[T]) run(it item[T], ctx context.Context, sc trace.Scope) {
	sp := sc.Start("par.task").Int("idx", int64(it.idx))
	defer sp.End()
	defer func() {
		if r := recover(); r != nil {
			it.cell.panicked = &PanicError{Value: r, Stack: debug.Stack()}
			p.cancel()
		}
	}()
	v, err := it.fn(trace.ContextWithScope(ctx, sc.Under(sp)))
	if err != nil {
		it.cell.err = err
		p.fail(err)
		return
	}
	it.cell.val = v
}

// fail records the batch's first task error and cancels the rest, so Wait
// can report the root cause rather than the context.Canceled the
// cancellation itself induces in still-queued tasks.
func (p *Pool[T]) fail(err error) {
	p.failOnce.Do(func() {
		p.batchErr = err
		p.cancel()
	})
}

// Wait blocks until every submitted task has finished or been skipped and
// returns the results in submission order. If a worker panicked, Wait
// re-panics with the first PanicError in submission order. Otherwise the
// first error in submission order is returned and the results are nil —
// partial output is never exposed.
func (p *Pool[T]) Wait() ([]T, error) {
	if !p.serial {
		close(p.tasks)
		p.wg.Wait()
	}
	p.cancel()
	out := make([]T, len(p.cells))
	for _, c := range p.cells {
		if c.panicked != nil {
			panic(c.panicked)
		}
	}
	for i, c := range p.cells {
		if c.err != nil {
			if p.batchErr != nil {
				return nil, p.batchErr
			}
			return nil, c.err
		}
		out[i] = c.val
	}
	return out, nil
}

// Map evaluates f over the indices [0, n) on a pool of workers and returns
// the n results in index order. It is the package's workhorse: every
// pipeline stage reduces to "decide all items independently, merge at the
// barrier in index order".
func Map[T any](ctx context.Context, workers, n int, f func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if w := Resolve(workers); w > n {
		workers = n
		if workers < 1 {
			workers = 1
		}
	}
	p := New[T](ctx, workers)
	for i := 0; i < n; i++ {
		p.Submit(func(ctx context.Context) (T, error) { return f(ctx, i) })
	}
	return p.Wait()
}
