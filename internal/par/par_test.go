package par

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrdered is the ordered-collection property test: whatever the
// completion schedule, results come back in submission order. Tasks sleep
// pseudo-random amounts so completion order is scrambled relative to
// submission order.
func TestMapOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 64
	delays := make([]time.Duration, n)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(3)) * time.Millisecond
	}
	for _, workers := range []int{1, 2, 4, 8, 33} {
		out, err := Map(context.Background(), workers, n, func(_ context.Context, i int) (int, error) {
			time.Sleep(delays[i])
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(out), n)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapSerialInline: one worker runs tasks inline on the submitting
// goroutine in submission order — the serial fast path the determinism
// guarantee leans on.
func TestMapSerialInline(t *testing.T) {
	var order []int
	out, err := Map(context.Background(), 1, 10, func(_ context.Context, i int) (int, error) {
		order = append(order, i) // safe only because execution is inline
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != i || order[i] != i {
			t.Fatalf("serial execution out of order: out=%v order=%v", out, order)
		}
	}
}

// TestMapError: a failing task cancels the batch; Map reports the task's
// own error, not the context.Canceled its cancellation induces, and skips
// most of the remaining work.
func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	var executed atomic.Int32
	for _, workers := range []int{1, 4} {
		executed.Store(0)
		_, err := Map(context.Background(), workers, 100, func(ctx context.Context, i int) (int, error) {
			executed.Add(1)
			if i == 3 {
				return 0, boom
			}
			// Give the cancellation a moment to win the race for the queue.
			select {
			case <-ctx.Done():
			case <-time.After(time.Millisecond):
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, boom)
		}
		if got := executed.Load(); got == 100 {
			t.Errorf("workers=%d: cancellation did not skip any of the remaining tasks", workers)
		}
	}
}

// TestMapCancellation: cancelling the parent context mid-batch unblocks
// Submit, skips queued tasks, and surfaces context.Canceled.
func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int32
	started := make(chan struct{}, 1)
	go func() {
		<-started
		cancel()
	}()
	_, err := Map(ctx, 2, 200, func(ctx context.Context, i int) (int, error) {
		executed.Add(1)
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done() // block until the batch is cancelled
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := executed.Load(); got == 200 {
		t.Error("cancellation did not skip any queued tasks")
	}
}

// TestPanicPropagation: a panicking worker crashes the caller at Wait with
// the original value and the worker's stack.
func TestPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: expected panic, got none", workers)
				}
				pe, ok := r.(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *PanicError", workers, r)
				}
				if fmt.Sprint(pe.Value) != "kaboom" {
					t.Errorf("workers=%d: panic value = %v, want kaboom", workers, pe.Value)
				}
				if !strings.Contains(pe.Error(), "kaboom") || len(pe.Stack) == 0 {
					t.Errorf("workers=%d: PanicError missing value or stack: %v", workers, pe)
				}
			}()
			_, _ = Map(context.Background(), workers, 8, func(_ context.Context, i int) (int, error) {
				if i == 2 {
					panic("kaboom")
				}
				return i, nil
			})
		}()
	}
}

// TestResolve pins the Workers-option normalization the whole pipeline
// relies on.
func TestResolve(t *testing.T) {
	if Resolve(0) < 1 || Resolve(-3) < 1 {
		t.Error("Resolve of non-positive workers must be at least 1")
	}
	if Resolve(7) != 7 {
		t.Error("Resolve must pass positive values through")
	}
}
