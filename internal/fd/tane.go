package fd

import (
	"fmt"
	"sort"

	"github.com/guardrail-db/guardrail/internal/dataset"
)

// TANEOptions tunes the TANE miner.
type TANEOptions struct {
	// Epsilon is the g3 error tolerance for approximate FDs (default 0.01).
	Epsilon float64
	// MaxLHS caps the LHS size (default 3).
	MaxLHS int
	// MaxCells bounds the lattice memory (nodes x rows); exceeding it
	// aborts with an error, mirroring the resource failures ("-" cells)
	// TANE hits on wide datasets in Table 3 (default 40e6).
	MaxCells int
}

func (o *TANEOptions) defaults() {
	if o.Epsilon == 0 {
		o.Epsilon = 0.01
	}
	if o.MaxLHS == 0 {
		o.MaxLHS = 3
	}
	if o.MaxCells == 0 {
		o.MaxCells = 40_000_000
	}
}

// partition is a stripped partition: equivalence classes of rows sharing
// the same value tuple, with singleton classes removed (they can never
// violate an FD).
type partition struct {
	classes [][]int
	n       int // number of rows in the relation
}

// singleAttrPartition builds the partition of one attribute.
func singleAttrPartition(rel *dataset.Relation, attr int) partition {
	groups := map[int32][]int{}
	col := rel.Column(attr)
	for r, v := range col {
		groups[v] = append(groups[v], r)
	}
	p := partition{n: rel.NumRows()}
	keys := make([]int32, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if len(groups[k]) > 1 {
			p.classes = append(p.classes, groups[k])
		}
	}
	return p
}

// product refines p by q (the TANE stripped-partition product): rows are in
// the same output class iff they share classes in both inputs.
func (p partition) product(q partition, scratch []int) partition {
	out := partition{n: p.n}
	// scratch maps row -> q-class id + 1 (0 = singleton in q).
	for i := range scratch {
		scratch[i] = 0
	}
	for ci, cls := range q.classes {
		for _, r := range cls {
			scratch[r] = ci + 1
		}
	}
	for _, cls := range p.classes {
		sub := map[int][]int{}
		for _, r := range cls {
			if qc := scratch[r]; qc != 0 {
				sub[qc] = append(sub[qc], r)
			}
		}
		keys := make([]int, 0, len(sub))
		for k := range sub {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			if len(sub[k]) > 1 {
				out.classes = append(out.classes, sub[k])
			}
		}
	}
	return out
}

// g3Error computes the fraction of rows that must be removed for X -> a to
// hold exactly, given X's partition: within each class, all but the modal
// a-value are violations.
func g3Error(p partition, rel *dataset.Relation, a int) float64 {
	if p.n == 0 {
		return 0
	}
	col := rel.Column(a)
	violations := 0
	counts := map[int32]int{}
	for _, cls := range p.classes {
		for k := range counts {
			delete(counts, k)
		}
		mode := 0
		for _, r := range cls {
			counts[col[r]]++
			if counts[col[r]] > mode {
				mode = counts[col[r]]
			}
		}
		violations += len(cls) - mode
	}
	return float64(violations) / float64(p.n)
}

// TANE discovers minimal approximate FDs X -> a with g3 error <= Epsilon
// using levelwise search over stripped partitions, in the spirit of
// Huhtala et al. [19].
func TANE(rel *dataset.Relation, opts TANEOptions) ([]FD, error) {
	opts.defaults()
	m := rel.NumAttrs()
	if rel.NumRows() == 0 || m < 2 {
		return nil, nil
	}
	scratch := make([]int, rel.NumRows())

	type node struct {
		attrs []int
		part  partition
	}
	level := make([]node, 0, m)
	for a := 0; a < m; a++ {
		level = append(level, node{attrs: []int{a}, part: singleAttrPartition(rel, a)})
	}

	var found []FD
	for size := 1; size <= opts.MaxLHS; size++ {
		for _, nd := range level {
			// A key (empty stripped partition) determines everything; keep
			// minimality pruning via subsumes.
			for a := 0; a < m; a++ {
				if containsInt(nd.attrs, a) || subsumes(found, nd.attrs, a) {
					continue
				}
				if g3Error(nd.part, rel, a) <= opts.Epsilon {
					found = append(found, FD{LHS: append([]int(nil), nd.attrs...), RHS: a})
				}
			}
		}
		if size == opts.MaxLHS {
			break
		}
		// Generate the next level: extend each node with a larger attribute.
		nextCount := 0
		for _, nd := range level {
			nextCount += m - 1 - nd.attrs[len(nd.attrs)-1]
		}
		if nextCount*rel.NumRows() > opts.MaxCells {
			return nil, fmt.Errorf("fd: TANE lattice budget exceeded (%d nodes x %d rows)", nextCount, rel.NumRows())
		}
		var next []node
		for _, nd := range level {
			last := nd.attrs[len(nd.attrs)-1]
			for a := last + 1; a < m; a++ {
				attrs := append(append([]int(nil), nd.attrs...), a)
				part := nd.part.product(singleAttrPartition(rel, a), scratch)
				next = append(next, node{attrs: attrs, part: part})
			}
		}
		level = next
	}
	sortFDs(found)
	return found, nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
