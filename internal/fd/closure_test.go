package fd

import (
	"testing"
	"testing/quick"
)

// chainFDs is the Example 3.1 chain: 0 -> 1 -> 2 -> 3.
func chainFDs() []FD {
	return []FD{
		{LHS: []int{0}, RHS: 1},
		{LHS: []int{1}, RHS: 2},
		{LHS: []int{2}, RHS: 3},
	}
}

func TestClosure(t *testing.T) {
	fds := chainFDs()
	got := Closure([]int{0}, fds)
	want := []int{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("closure = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("closure = %v, want %v", got, want)
		}
	}
	if got := Closure([]int{2}, fds); len(got) != 2 {
		t.Fatalf("closure(2) = %v", got)
	}
	if got := Closure(nil, fds); len(got) != 0 {
		t.Fatalf("closure(∅) = %v", got)
	}
}

func TestImplies(t *testing.T) {
	fds := chainFDs()
	if !Implies(fds, []int{0}, 3) {
		t.Fatal("transitivity not derived")
	}
	if Implies(fds, []int{3}, 0) {
		t.Fatal("reverse direction wrongly implied")
	}
	// Augmentation: {0, 5} -> 2.
	if !Implies(fds, []int{0, 5}, 2) {
		t.Fatal("augmentation not derived")
	}
}

func TestMinimalCoverRemovesTransitive(t *testing.T) {
	// The saturated set of Example 3.1.
	saturated := append(chainFDs(),
		FD{LHS: []int{0}, RHS: 2},       // Stmt4: PostalCode -> State
		FD{LHS: []int{0}, RHS: 3},       // Stmt5: PostalCode -> Country
		FD{LHS: []int{0, 1, 2}, RHS: 3}, // Stmtk
	)
	cover := MinimalCover(saturated)
	if len(cover) != 3 {
		t.Fatalf("cover = %v, want the 3 chain FDs", cover)
	}
	if !Equivalent(cover, saturated) {
		t.Fatal("cover not equivalent to the original set")
	}
}

func TestMinimalCoverRemovesExtraneousLHS(t *testing.T) {
	fds := []FD{
		{LHS: []int{0}, RHS: 1},
		{LHS: []int{0, 2}, RHS: 1}, // redundant and with extraneous 2
		{LHS: []int{0, 1}, RHS: 3}, // 1 is extraneous given 0 -> 1
	}
	cover := MinimalCover(fds)
	for _, f := range cover {
		if len(f.LHS) != 1 || f.LHS[0] != 0 {
			t.Fatalf("extraneous attribute kept: %v", cover)
		}
	}
	if !Equivalent(cover, fds) {
		t.Fatal("cover changed semantics")
	}
}

func TestTransitiveEdges(t *testing.T) {
	saturated := append(chainFDs(), FD{LHS: []int{0}, RHS: 2})
	tr := TransitiveEdges(saturated)
	if len(tr) != 1 || tr[0].RHS != 2 || tr[0].LHS[0] != 0 {
		t.Fatalf("transitive edges = %v", tr)
	}
	if got := TransitiveEdges(chainFDs()); len(got) != 0 {
		t.Fatalf("chain has no transitive edges, got %v", got)
	}
}

func TestEquivalentDirections(t *testing.T) {
	a := chainFDs()
	b := append(chainFDs(), FD{LHS: []int{0}, RHS: 3}) // implied extra
	if !Equivalent(a, b) {
		t.Fatal("sets with implied extras should be equivalent")
	}
	c := []FD{{LHS: []int{0}, RHS: 1}}
	if Equivalent(a, c) {
		t.Fatal("weaker set reported equivalent")
	}
}

// Property: a minimal cover is always equivalent to its input and never
// larger.
func TestMinimalCoverProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var fds []FD
		for i := 0; i+2 < len(raw) && len(fds) < 8; i += 3 {
			lhs := []int{int(raw[i]) % 5}
			if raw[i+1]%2 == 0 {
				extra := int(raw[i+1]) % 5
				if extra != lhs[0] {
					lhs = append(lhs, extra)
				}
			}
			rhs := int(raw[i+2]) % 5
			if rhs == lhs[0] {
				continue
			}
			fds = append(fds, FD{LHS: lhs, RHS: rhs})
		}
		cover := MinimalCover(fds)
		return len(cover) <= len(fds) && Equivalent(cover, fds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
