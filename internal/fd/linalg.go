package fd

import "errors"

// ErrIllConditioned is returned when a linear system's pivot collapses —
// the "ill-conditioned matrix inversion" failure mode the paper observes
// for FDX on dataset #3.
var ErrIllConditioned = errors.New("fd: ill-conditioned linear system")

// solve performs Gaussian elimination with partial pivoting on a copy of
// (A | b), returning x with A x = b. A must be square.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, errors.New("fd: solve shape mismatch")
	}
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, errors.New("fd: solve requires a square matrix")
		}
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	const pivotTol = 1e-10
	for col := 0; col < n; col++ {
		// Partial pivot.
		best, bestAbs := col, abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if v := abs(m[r][col]); v > bestAbs {
				best, bestAbs = r, v
			}
		}
		if bestAbs < pivotTol {
			return nil, ErrIllConditioned
		}
		m[col], m[best] = m[best], m[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := m[r][n]
		for c := r + 1; c < n; c++ {
			s -= m[r][c] * x[c]
		}
		x[r] = s / m[r][r]
	}
	return x, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
