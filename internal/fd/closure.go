package fd

import (
	"sort"
)

// This file implements classical FD inference (Armstrong's axioms), which
// §3.1 of the paper contrasts with Guardrail's GNT criterion: for plain
// FDs, redundancy is resolved with attribute-set closures and minimal
// covers; the DSL's conditional statements need the statistical machinery
// instead. The utilities here back the baselines and their tests.

// Closure computes the attribute closure attrs⁺ under fds: the set of
// attributes functionally determined by attrs.
func Closure(attrs []int, fds []FD) []int {
	closure := map[int]bool{}
	for _, a := range attrs {
		closure[a] = true
	}
	for changed := true; changed; {
		changed = false
		for _, f := range fds {
			if closure[f.RHS] {
				continue
			}
			all := true
			for _, a := range f.LHS {
				if !closure[a] {
					all = false
					break
				}
			}
			if all {
				closure[f.RHS] = true
				changed = true
			}
		}
	}
	out := make([]int, 0, len(closure))
	for a := range closure {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// Implies reports whether fds entail the dependency lhs -> rhs
// (equivalently, rhs ∈ lhs⁺).
func Implies(fds []FD, lhs []int, rhs int) bool {
	for _, a := range Closure(lhs, fds) {
		if a == rhs {
			return true
		}
	}
	return false
}

// MinimalCover reduces fds to an equivalent set with no redundant
// dependencies and no extraneous LHS attributes — the FD analogue of the
// paper's global non-triviality (Example 3.1's Stmt₄…Stmt_k would all be
// removed here).
func MinimalCover(fds []FD) []FD {
	// Copy and canonicalize.
	work := make([]FD, len(fds))
	for i, f := range fds {
		lhs := append([]int(nil), f.LHS...)
		sort.Ints(lhs)
		work[i] = FD{LHS: lhs, RHS: f.RHS}
	}
	// Remove extraneous LHS attributes: a ∈ LHS is extraneous when
	// (LHS \ {a}) -> RHS already follows from the full set.
	for i := range work {
		lhs := work[i].LHS
		for k := 0; k < len(lhs); {
			reduced := make([]int, 0, len(lhs)-1)
			reduced = append(reduced, lhs[:k]...)
			reduced = append(reduced, lhs[k+1:]...)
			if len(reduced) > 0 && Implies(work, reduced, work[i].RHS) {
				lhs = reduced
				work[i].LHS = lhs
				continue
			}
			k++
		}
	}
	// Remove redundant dependencies: f is redundant when the others imply it.
	var out []FD
	for i := range work {
		rest := make([]FD, 0, len(work)-1)
		rest = append(rest, out...)
		rest = append(rest, work[i+1:]...)
		if !Implies(rest, work[i].LHS, work[i].RHS) {
			out = append(out, work[i])
		}
	}
	sortFDs(out)
	return out
}

// Equivalent reports whether two FD sets entail each other.
func Equivalent(a, b []FD) bool {
	for _, f := range a {
		if !Implies(b, f.LHS, f.RHS) {
			return false
		}
	}
	for _, f := range b {
		if !Implies(a, f.LHS, f.RHS) {
			return false
		}
	}
	return true
}

// TransitiveEdges returns the FDs in fds that are implied by the others —
// the analogue of the indirect dependencies (PostalCode -> State) that
// Alg. 2's MEC-based selection avoids emitting.
func TransitiveEdges(fds []FD) []FD {
	var out []FD
	for i, f := range fds {
		rest := make([]FD, 0, len(fds)-1)
		rest = append(rest, fds[:i]...)
		rest = append(rest, fds[i+1:]...)
		if Implies(rest, f.LHS, f.RHS) {
			out = append(out, f)
		}
	}
	return out
}
