// Package fd implements the functional-dependency discovery baselines the
// paper compares against (§8.1): TANE [19] (approximate FDs via partition
// refinement), CTANE [9] (conditional FDs with constant pattern tableaux),
// and FDX [43] (structure estimation over the auxiliary distribution with a
// linear structural-equation model). Each baseline also ships the
// corresponding row-level error detector used in Table 3: constraints are
// mined on a clean split and violations flagged on a test split.
package fd

import (
	"fmt"
	"sort"
	"strings"

	"github.com/guardrail-db/guardrail/internal/dataset"
)

// FD is a functional dependency LHS -> RHS over attribute indices.
type FD struct {
	LHS []int
	RHS int
}

// String renders the FD with attribute indices.
func (f FD) String() string {
	parts := make([]string, len(f.LHS))
	for i, a := range f.LHS {
		parts[i] = fmt.Sprintf("%d", a)
	}
	return fmt.Sprintf("[%s]->%d", strings.Join(parts, ","), f.RHS)
}

// Name renders the FD with attribute names from rel.
func (f FD) Name(rel *dataset.Relation) string {
	parts := make([]string, len(f.LHS))
	for i, a := range f.LHS {
		parts[i] = rel.Attr(a)
	}
	return fmt.Sprintf("%s -> %s", strings.Join(parts, ","), rel.Attr(f.RHS))
}

// lhsKey builds a string key from the LHS values of row r.
func lhsKey(rel *dataset.Relation, lhs []int, r int) (string, bool) {
	var b []byte
	for _, a := range lhs {
		v := rel.Code(r, a)
		if v == dataset.Missing {
			return "", false
		}
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ':')
	}
	return string(b), true
}

// Detector flags test rows that violate FDs mined from a training split:
// for each FD, the training data defines a lookup from LHS tuple to the
// majority RHS value; a test row is flagged when its LHS tuple is known and
// its RHS value disagrees.
type Detector struct {
	fds     []FD
	lookups []map[string]int32
}

// NewDetector builds the lookup tables from train.
func NewDetector(fds []FD, train *dataset.Relation) *Detector {
	d := &Detector{fds: fds, lookups: make([]map[string]int32, len(fds))}
	for i, f := range fds {
		counts := map[string]map[int32]int{}
		for r := 0; r < train.NumRows(); r++ {
			k, ok := lhsKey(train, f.LHS, r)
			if !ok {
				continue
			}
			m := counts[k]
			if m == nil {
				m = map[int32]int{}
				counts[k] = m
			}
			m[train.Code(r, f.RHS)]++
		}
		lk := make(map[string]int32, len(counts))
		for k, m := range counts {
			best, bestC := int32(-1), -1
			for v, c := range m {
				if c > bestC || (c == bestC && v < best) {
					best, bestC = v, c
				}
			}
			lk[k] = best
		}
		d.lookups[i] = lk
	}
	return d
}

// FDs returns the detector's dependency set.
func (d *Detector) FDs() []FD { return d.fds }

// Flag returns a per-row violation mask over test. Test values must share
// train's dictionaries (clone the relation before corrupting it).
func (d *Detector) Flag(test *dataset.Relation) []bool {
	out := make([]bool, test.NumRows())
	for i, f := range d.fds {
		lk := d.lookups[i]
		for r := 0; r < test.NumRows(); r++ {
			if out[r] {
				continue
			}
			k, ok := lhsKey(test, f.LHS, r)
			if !ok {
				continue
			}
			if want, known := lk[k]; known && want != test.Code(r, f.RHS) {
				out[r] = true
			}
		}
	}
	return out
}

// sortFDs orders FDs canonically for deterministic output.
func sortFDs(fds []FD) {
	sort.Slice(fds, func(i, j int) bool {
		a, b := fds[i], fds[j]
		if a.RHS != b.RHS {
			return a.RHS < b.RHS
		}
		if len(a.LHS) != len(b.LHS) {
			return len(a.LHS) < len(b.LHS)
		}
		for k := range a.LHS {
			if a.LHS[k] != b.LHS[k] {
				return a.LHS[k] < b.LHS[k]
			}
		}
		return false
	})
}

// subsumes reports whether some existing FD for the same RHS has an LHS
// that is a subset of lhs (minimality pruning).
func subsumes(found []FD, lhs []int, rhs int) bool {
	set := map[int]bool{}
	for _, a := range lhs {
		set[a] = true
	}
	for _, f := range found {
		if f.RHS != rhs {
			continue
		}
		all := true
		for _, a := range f.LHS {
			if !set[a] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}
