package fd

import (
	"fmt"
	"sort"

	"github.com/guardrail-db/guardrail/internal/auxdist"
	"github.com/guardrail-db/guardrail/internal/dataset"
)

// FDXOptions tunes the FDX baseline [43].
type FDXOptions struct {
	// Threshold on absolute regression coefficients for declaring a parent
	// (default 0.12).
	Threshold float64
	// Ridge is the L2 regularization added to the normal equations. The
	// paper's FDX uses none (default 0), which exposes the ill-conditioned
	// inversion failure mode Table 3 reports; set a small positive value to
	// stabilize.
	Ridge float64
	// Shifts/MaxSamples/Seed tune the auxiliary sampler.
	Shifts     int
	MaxSamples int
	Seed       int64
}

func (o *FDXOptions) defaults() {
	if o.Threshold == 0 {
		o.Threshold = 0.12
	}
}

// FDX discovers FDs by fitting a linear structural-equation model over the
// auxiliary distribution, following Zhang et al. [43]: estimate a variable
// ordering by ascending conditional variance, regress each variable on its
// predecessors, and threshold the autoregressive coefficients to obtain
// parent sets. As discussed in §6 of the Guardrail paper, the linear
// additive-noise assumption is misspecified for binary indicator data —
// the source of FDX's failures in Table 3 (ill-conditioned inversion,
// all-rows-as-errors).
func FDX(rel *dataset.Relation, opts FDXOptions) ([]FD, error) {
	opts.defaults()
	aux, err := auxdist.Sample(rel, auxdist.Options{Shifts: opts.Shifts, MaxSamples: opts.MaxSamples, Seed: opts.Seed})
	if err != nil {
		return nil, fmt.Errorf("fd: FDX sampling: %w", err)
	}
	m := aux.NumVars()
	n := aux.N()
	// Column means and centered data.
	x := make([][]float64, m)
	for j := 0; j < m; j++ {
		col := aux.Codes(j)
		mean := 0.0
		for _, v := range col {
			mean += float64(v)
		}
		mean /= float64(n)
		cx := make([]float64, n)
		for i, v := range col {
			cx[i] = float64(v) - mean
		}
		x[j] = cx
	}
	// Covariance matrix.
	cov := make([][]float64, m)
	for i := range cov {
		cov[i] = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			var s float64
			for r := 0; r < n; r++ {
				s += x[i][r] * x[j][r]
			}
			s /= float64(n)
			cov[i][j], cov[j][i] = s, s
		}
	}

	order, err := varianceOrdering(cov, opts.Ridge)
	if err != nil {
		return nil, err
	}

	var fds []FD
	for pos := 1; pos < m; pos++ {
		k := order[pos]
		preds := order[:pos]
		coef, err := regress(cov, preds, k, opts.Ridge)
		if err != nil {
			return nil, fmt.Errorf("fd: FDX regression for variable %d: %w", k, err)
		}
		var lhs []int
		for i, p := range preds {
			if abs(coef[i]) >= opts.Threshold {
				lhs = append(lhs, p)
			}
		}
		if len(lhs) > 0 {
			sort.Ints(lhs)
			fds = append(fds, FD{LHS: lhs, RHS: k})
		}
	}
	sortFDs(fds)
	return fds, nil
}

// varianceOrdering greedily orders variables by ascending residual
// variance given the already-selected prefix — the autoregressive ordering
// heuristic of FDX.
func varianceOrdering(cov [][]float64, ridge float64) ([]int, error) {
	m := len(cov)
	order := make([]int, 0, m)
	used := make([]bool, m)
	for len(order) < m {
		bestVar, bestResid := -1, 0.0
		for k := 0; k < m; k++ {
			if used[k] {
				continue
			}
			resid := cov[k][k]
			if len(order) > 0 {
				coef, err := regress(cov, order, k, ridge)
				if err != nil {
					return nil, err
				}
				for i, p := range order {
					resid -= coef[i] * cov[p][k]
				}
			}
			if bestVar < 0 || resid < bestResid {
				bestVar, bestResid = k, resid
			}
		}
		used[bestVar] = true
		order = append(order, bestVar)
	}
	return order, nil
}

// regress solves the normal equations for predicting variable k from preds
// using the covariance matrix.
func regress(cov [][]float64, preds []int, k int, ridge float64) ([]float64, error) {
	p := len(preds)
	a := make([][]float64, p)
	b := make([]float64, p)
	for i, pi := range preds {
		a[i] = make([]float64, p)
		for j, pj := range preds {
			a[i][j] = cov[pi][pj]
			if i == j {
				a[i][j] += ridge
			}
		}
		b[i] = cov[pi][k]
	}
	return solve(a, b)
}
