package fd

import (
	"fmt"
	"sort"

	"github.com/guardrail-db/guardrail/internal/dataset"
)

// CFD is a constant conditional functional dependency: within rows
// matching Pattern (values over LHS attributes), RHS equals Value.
type CFD struct {
	LHS     []int
	Pattern []int32
	RHS     int
	Value   int32
}

// Name renders the CFD with names and values from rel.
func (c CFD) Name(rel *dataset.Relation) string {
	s := ""
	for i, a := range c.LHS {
		if i > 0 {
			s += " AND "
		}
		s += fmt.Sprintf("%s=%s", rel.Attr(a), rel.Dict(a).Value(c.Pattern[i]))
	}
	return fmt.Sprintf("[%s] -> %s=%s", s, rel.Attr(c.RHS), rel.Dict(c.RHS).Value(c.Value))
}

// CTANEOptions tunes the conditional-FD miner.
type CTANEOptions struct {
	// Epsilon is the per-pattern error tolerance (default 0.01).
	Epsilon float64
	// MinSupport is the minimum fraction of rows a pattern must cover
	// (default 0.01).
	MinSupport float64
	// MaxLHS caps the pattern width (default 2).
	MaxLHS int
	// MaxPatterns bounds the tableau size; exceeding it aborts, mirroring
	// the blow-ups CTANE hits on wide data (default 100000).
	MaxPatterns int
}

func (o *CTANEOptions) defaults() {
	if o.Epsilon == 0 {
		o.Epsilon = 0.01
	}
	if o.MinSupport == 0 {
		o.MinSupport = 0.01
	}
	if o.MaxLHS == 0 {
		o.MaxLHS = 2
	}
	if o.MaxPatterns == 0 {
		o.MaxPatterns = 100000
	}
}

// CTANE mines constant CFDs levelwise in the spirit of Fan et al. [9]:
// patterns of width 1..MaxLHS whose matching rows are (1-ε)-pure in some
// RHS attribute, with support above MinSupport. Patterns subsumed by an
// already-found narrower pattern for the same RHS are pruned.
func CTANE(rel *dataset.Relation, opts CTANEOptions) ([]CFD, error) {
	opts.defaults()
	n := rel.NumRows()
	m := rel.NumAttrs()
	if n == 0 || m < 2 {
		return nil, nil
	}
	minRows := int(opts.MinSupport * float64(n))
	if minRows < 2 {
		minRows = 2
	}

	type pat struct {
		lhs  []int
		vals []int32
		rows []int
	}
	// Level 1: single-attribute patterns with enough support.
	var level []pat
	for a := 0; a < m; a++ {
		groups := map[int32][]int{}
		col := rel.Column(a)
		for r, v := range col {
			if v != dataset.Missing {
				groups[v] = append(groups[v], r)
			}
		}
		keys := make([]int32, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, v := range keys {
			if len(groups[v]) >= minRows {
				level = append(level, pat{lhs: []int{a}, vals: []int32{v}, rows: groups[v]})
			}
		}
	}

	var found []CFD
	emit := func(p pat) {
		for rhs := 0; rhs < m; rhs++ {
			if containsInt(p.lhs, rhs) || cfdSubsumed(found, p.lhs, p.vals, rhs) {
				continue
			}
			counts := map[int32]int{}
			col := rel.Column(rhs)
			for _, r := range p.rows {
				counts[col[r]]++
			}
			mode, modeC := int32(-1), -1
			for v, c := range counts {
				if c > modeC || (c == modeC && v < mode) {
					mode, modeC = v, c
				}
			}
			if mode == dataset.Missing {
				continue
			}
			if float64(len(p.rows)-modeC) <= opts.Epsilon*float64(len(p.rows)) {
				found = append(found, CFD{
					LHS:     append([]int(nil), p.lhs...),
					Pattern: append([]int32(nil), p.vals...),
					RHS:     rhs,
					Value:   mode,
				})
			}
		}
	}

	for width := 1; width <= opts.MaxLHS; width++ {
		if len(level) > opts.MaxPatterns {
			return nil, fmt.Errorf("fd: CTANE tableau budget exceeded (%d patterns)", len(level))
		}
		for _, p := range level {
			emit(p)
		}
		if width == opts.MaxLHS {
			break
		}
		var next []pat
		for _, p := range level {
			last := p.lhs[len(p.lhs)-1]
			for a := last + 1; a < m; a++ {
				groups := map[int32][]int{}
				col := rel.Column(a)
				for _, r := range p.rows {
					if v := col[r]; v != dataset.Missing {
						groups[v] = append(groups[v], r)
					}
				}
				keys := make([]int32, 0, len(groups))
				for k := range groups {
					keys = append(keys, k)
				}
				sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
				for _, v := range keys {
					if len(groups[v]) >= minRows {
						next = append(next, pat{
							lhs:  append(append([]int(nil), p.lhs...), a),
							vals: append(append([]int32(nil), p.vals...), v),
							rows: groups[v],
						})
					}
				}
			}
		}
		level = next
	}
	return found, nil
}

// cfdSubsumed reports whether a narrower pattern for the same RHS already
// covers (lhs, vals).
func cfdSubsumed(found []CFD, lhs []int, vals []int32, rhs int) bool {
	val := map[int]int32{}
	for i, a := range lhs {
		val[a] = vals[i]
	}
	for _, c := range found {
		if c.RHS != rhs {
			continue
		}
		all := true
		for i, a := range c.LHS {
			if v, ok := val[a]; !ok || v != c.Pattern[i] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// CFDDetector flags rows violating a CFD tableau.
type CFDDetector struct {
	cfds []CFD
}

// NewCFDDetector wraps a tableau.
func NewCFDDetector(cfds []CFD) *CFDDetector { return &CFDDetector{cfds: cfds} }

// CFDs returns the tableau.
func (d *CFDDetector) CFDs() []CFD { return d.cfds }

// Flag returns a per-row violation mask over test.
func (d *CFDDetector) Flag(test *dataset.Relation) []bool {
	out := make([]bool, test.NumRows())
	for _, c := range d.cfds {
		for r := 0; r < test.NumRows(); r++ {
			if out[r] {
				continue
			}
			match := true
			for i, a := range c.LHS {
				if test.Code(r, a) != c.Pattern[i] {
					match = false
					break
				}
			}
			if match && test.Code(r, c.RHS) != c.Value {
				out[r] = true
			}
		}
	}
	return out
}
