package fd

import (
	"errors"
	"testing"

	"github.com/guardrail-db/guardrail/internal/bn"
	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/errgen"
)

func postal(t *testing.T, n int, seed int64) *dataset.Relation {
	t.Helper()
	rel, err := bn.PostalChain(8).Sample(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func hasFD(fds []FD, lhs []int, rhs int) bool {
	for _, f := range fds {
		if f.RHS != rhs || len(f.LHS) != len(lhs) {
			continue
		}
		same := true
		for i := range lhs {
			if f.LHS[i] != lhs[i] {
				same = false
			}
		}
		if same {
			return true
		}
	}
	return false
}

func TestTANEFindsChainFDs(t *testing.T) {
	rel := postal(t, 2000, 1)
	fds, err := TANE(rel, TANEOptions{Epsilon: 0.001, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !hasFD(fds, []int{0}, 1) {
		t.Fatalf("PostalCode -> City missing: %v", fds)
	}
	if !hasFD(fds, []int{1}, 2) {
		t.Fatalf("City -> State missing: %v", fds)
	}
	if !hasFD(fds, []int{2}, 3) {
		t.Fatalf("State -> Country missing: %v", fds)
	}
	// Minimality: [0 1] -> 2 must be pruned because [1] -> 2 holds.
	if hasFD(fds, []int{0, 1}, 2) {
		t.Fatalf("non-minimal FD kept: %v", fds)
	}
}

func TestTANEApproximateTolerance(t *testing.T) {
	rel := postal(t, 2000, 2)
	if _, err := errgen.Inject(rel, errgen.Options{Rate: 0.005, MinErrors: 5, Columns: []int{1}, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	strict, err := TANE(rel, TANEOptions{Epsilon: 1e-9, MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := TANE(rel, TANEOptions{Epsilon: 0.02, MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if hasFD(strict, []int{0}, 1) {
		t.Fatal("exact TANE found the corrupted FD")
	}
	if !hasFD(loose, []int{0}, 1) {
		t.Fatal("approximate TANE missed the corrupted FD")
	}
}

func TestTANEBudget(t *testing.T) {
	rel, err := bn.RandomSEM(bn.SEMSpec{Attrs: 20, Seed: 3}).Sample(500, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = TANE(rel, TANEOptions{MaxLHS: 3, MaxCells: 1000})
	if err == nil {
		t.Fatal("budget not enforced")
	}
}

func TestTANEEmptyInputs(t *testing.T) {
	empty := dataset.New("e", []string{"a", "b"})
	fds, err := TANE(empty, TANEOptions{})
	if err != nil || fds != nil {
		t.Fatalf("empty relation: %v %v", fds, err)
	}
}

func TestDetectorFlagsInjectedErrors(t *testing.T) {
	rel := postal(t, 3000, 4)
	train, test := rel.Split(0.6, 4)
	fds, err := TANE(train, TANEOptions{Epsilon: 0.001, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	det := NewDetector(fds, train)
	if len(det.FDs()) == 0 {
		t.Fatal("no FDs for detector")
	}
	cleanFlags := det.Flag(test)
	for i, f := range cleanFlags {
		if f {
			t.Fatalf("clean row %d flagged", i)
		}
	}
	dirty := test.Clone()
	mask, err := errgen.Inject(dirty, errgen.Options{Rate: 0.05, MinErrors: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	flags := det.Flag(dirty)
	tp := 0
	for i, f := range flags {
		if f && mask.RowDirty[i] {
			tp++
		}
	}
	if tp == 0 {
		t.Fatal("detector found no injected errors")
	}
}

func TestCTANEFindsConditionalRules(t *testing.T) {
	rel := postal(t, 2000, 5)
	cfds, err := CTANE(rel, CTANEOptions{Epsilon: 0.001, MinSupport: 0.02, MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfds) == 0 {
		t.Fatal("no CFDs found on deterministic data")
	}
	// Every postal code value determines a city value.
	foundCity := false
	for _, c := range cfds {
		if len(c.LHS) == 1 && c.LHS[0] == 0 && c.RHS == 1 {
			foundCity = true
		}
	}
	if !foundCity {
		t.Fatalf("no PostalCode=v -> City=w rule: %v", cfds)
	}
	// Detector flags corrupted rows.
	dirty := rel.Clone()
	mask, _ := errgen.Inject(dirty, errgen.Options{Rate: 0.03, MinErrors: 10, Seed: 5})
	flags := NewCFDDetector(cfds).Flag(dirty)
	tp := 0
	for i, f := range flags {
		if f && mask.RowDirty[i] {
			tp++
		}
	}
	if tp == 0 {
		t.Fatal("CFD detector found no injected errors")
	}
}

func TestCTANESubsumption(t *testing.T) {
	rel := postal(t, 1500, 6)
	cfds, err := CTANE(rel, CTANEOptions{Epsilon: 0.001, MinSupport: 0.02, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	// No width-2 pattern whose width-1 projection already decides the RHS.
	for _, c := range cfds {
		if len(c.LHS) != 2 {
			continue
		}
		if cfdSubsumed(cfds[:indexOf(cfds, c)], c.LHS[:1], c.Pattern[:1], c.RHS) {
			t.Fatalf("subsumed pattern kept: %+v", c)
		}
	}
}

func indexOf(cs []CFD, target CFD) int {
	for i := range cs {
		if &cs[i] == &target {
			return i
		}
	}
	return len(cs)
}

func TestCTANEBudget(t *testing.T) {
	rel, err := bn.RandomSEM(bn.SEMSpec{Attrs: 12, MaxCard: 8, Seed: 7}).Sample(2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CTANE(rel, CTANEOptions{MaxPatterns: 3, MaxLHS: 2, MinSupport: 0.001}); err == nil {
		t.Fatal("pattern budget not enforced")
	}
}

func TestFDXRecoversChainStructure(t *testing.T) {
	rel := postal(t, 3000, 8)
	fds, err := FDX(rel, FDXOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(fds) == 0 {
		t.Fatal("FDX found nothing on a deterministic chain")
	}
	// The chain attributes should appear linked (any direction).
	linked := func(a, b int) bool {
		for _, f := range fds {
			if f.RHS == b && containsInt(f.LHS, a) || f.RHS == a && containsInt(f.LHS, b) {
				return true
			}
		}
		return false
	}
	if !linked(0, 1) {
		t.Fatalf("PostalCode and City unlinked: %v", fds)
	}
}

func TestFDXDetectorWorks(t *testing.T) {
	rel := postal(t, 3000, 9)
	train, test := rel.Split(0.6, 9)
	fds, err := FDX(train, FDXOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	dirty := test.Clone()
	mask, _ := errgen.Inject(dirty, errgen.Options{Rate: 0.05, MinErrors: 20, Seed: 9})
	flags := NewDetector(fds, train).Flag(dirty)
	tp := 0
	for i, f := range flags {
		if f && mask.RowDirty[i] {
			tp++
		}
	}
	if tp == 0 {
		t.Fatal("FDX detector found no injected errors")
	}
}

func TestSolve(t *testing.T) {
	x, err := solve([][]float64{{2, 1}, {1, 3}}, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if abs(x[0]-1) > 1e-9 || abs(x[1]-3) > 1e-9 {
		t.Fatalf("x = %v, want [1 3]", x)
	}
	// Singular system reports ill-conditioning.
	_, err = solve([][]float64{{1, 2}, {2, 4}}, []float64{1, 2})
	if !errors.Is(err, ErrIllConditioned) {
		t.Fatalf("singular system: %v", err)
	}
	if _, err := solve([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestFDXIllConditioned(t *testing.T) {
	// Two perfectly identical columns make the covariance singular.
	rel := dataset.New("dup", []string{"a", "b", "c"})
	for i := 0; i < 400; i++ {
		v := "x"
		if i%2 == 0 {
			v = "y"
		}
		w := "p"
		if i%3 == 0 {
			w = "q"
		}
		rel.AppendRow([]string{v, v, w})
	}
	_, err := FDX(rel, FDXOptions{Seed: 10})
	if !errors.Is(err, ErrIllConditioned) {
		t.Fatalf("expected ill-conditioned failure, got %v", err)
	}
}

func TestFDStringers(t *testing.T) {
	rel := postal(t, 100, 11)
	f := FD{LHS: []int{0, 1}, RHS: 2}
	if f.String() == "" || f.Name(rel) == "" {
		t.Fatal("empty rendering")
	}
	c := CFD{LHS: []int{0}, Pattern: []int32{0}, RHS: 1, Value: 0}
	if c.Name(rel) == "" {
		t.Fatal("empty CFD rendering")
	}
}
