package dsl

import (
	"bytes"
	"testing"
)

func TestAnalyze(t *testing.T) {
	rel := zipRel(t)
	p := zipProgram(t, rel)
	st := Analyze(p)
	if st.Statements != 1 || st.Branches != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.GovernedAttrs) != 1 || st.GovernedAttrs[0] != rel.AttrIndex("City") {
		t.Fatalf("governed = %v", st.GovernedAttrs)
	}
	if len(st.DeterminantAttrs) != 1 || st.DeterminantAttrs[0] != rel.AttrIndex("PostalCode") {
		t.Fatalf("determinants = %v", st.DeterminantAttrs)
	}
	if st.MaxGiven != 1 || st.MaxCondWidth != 1 {
		t.Fatalf("widths = %+v", st)
	}
	empty := Analyze(&Program{})
	if empty.Statements != 0 || empty.Branches != 0 {
		t.Fatalf("empty stats = %+v", empty)
	}
}

func TestSimplifyMergesAndDedupes(t *testing.T) {
	rel := zipRel(t)
	p := zipProgram(t, rel)
	// Duplicate the statement, duplicate a branch, and add an unreachable
	// branch with the same condition but a different value.
	dup := p.Stmts[0]
	dup.Branches = append(append([]Branch(nil), dup.Branches...),
		dup.Branches[0], // exact duplicate
		Branch{Cond: dup.Branches[0].Cond, Value: dup.Branches[1].Value}, // unreachable
	)
	messy := &Program{Stmts: []Statement{p.Stmts[0], dup}}
	clean := Simplify(messy)
	if len(clean.Stmts) != 1 {
		t.Fatalf("statements = %d, want 1", len(clean.Stmts))
	}
	if len(clean.Stmts[0].Branches) != 3 {
		t.Fatalf("branches = %d, want 3", len(clean.Stmts[0].Branches))
	}
	if !Equivalent(messy, clean, rel) {
		t.Fatal("simplified program not equivalent")
	}
}

func TestSimplifyDropsEmptyStatements(t *testing.T) {
	p := &Program{Stmts: []Statement{{Given: []int{0}, On: 1}}}
	if got := Simplify(p); len(got.Stmts) != 0 {
		t.Fatalf("empty statement kept: %+v", got)
	}
}

func TestSimplifyGivenOrderInsensitive(t *testing.T) {
	a := Statement{Given: []int{0, 2}, On: 1, Branches: []Branch{{Cond: Condition{{0, 0}, {2, 0}}, Value: 0}}}
	b := Statement{Given: []int{2, 0}, On: 1, Branches: []Branch{{Cond: Condition{{2, 1}, {0, 1}}, Value: 1}}}
	p := Simplify(&Program{Stmts: []Statement{a, b}})
	if len(p.Stmts) != 1 {
		t.Fatalf("reordered GIVEN not merged: %d statements", len(p.Stmts))
	}
	if len(p.Stmts[0].Branches) != 2 {
		t.Fatalf("branches = %d", len(p.Stmts[0].Branches))
	}
}

func TestEquivalentDetectsDifferences(t *testing.T) {
	rel := zipRel(t)
	p := zipProgram(t, rel)
	if !Equivalent(p, p, rel) {
		t.Fatal("program not equivalent to itself")
	}
	// Dropping the Berkeley branch removes the violation on the corrupted
	// row, an observable behavioural difference on this relation.
	other := &Program{Stmts: []Statement{{
		Given:    p.Stmts[0].Given,
		On:       p.Stmts[0].On,
		Branches: p.Stmts[0].Branches[1:],
	}}}
	if Equivalent(p, other, rel) {
		t.Fatal("different programs reported equivalent")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rel := zipRel(t)
	p := zipProgram(t, rel)
	data, err := MarshalJSON(p, rel)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := UnmarshalJSON(data, rel)
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(p, p2, rel) {
		t.Fatal("JSON round trip changed behaviour")
	}
	// Streaming variants.
	var buf bytes.Buffer
	if err := WriteJSON(&buf, p, rel); err != nil {
		t.Fatal(err)
	}
	p3, err := ReadJSON(&buf, rel)
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(p, p3, rel) {
		t.Fatal("streamed JSON round trip changed behaviour")
	}
}

func TestJSONErrors(t *testing.T) {
	rel := zipRel(t)
	if _, err := UnmarshalJSON([]byte("{"), rel); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	bad := `{"statements":[{"given":["Nope"],"on":"City","branches":[{"if":[{"attr":"Nope","value":"x"}],"then":"y"}]}]}`
	if _, err := UnmarshalJSON([]byte(bad), rel); err == nil {
		t.Fatal("unknown GIVEN attribute accepted")
	}
	bad2 := `{"statements":[{"given":["PostalCode"],"on":"Nope","branches":[]}]}`
	if _, err := UnmarshalJSON([]byte(bad2), rel); err == nil {
		t.Fatal("unknown ON attribute accepted")
	}
	bad3 := `{"statements":[{"given":["PostalCode"],"on":"City","branches":[{"if":[{"attr":"Nope","value":"x"}],"then":"y"}]}]}`
	if _, err := UnmarshalJSON([]byte(bad3), rel); err == nil {
		t.Fatal("unknown IF attribute accepted")
	}
	// New literal values intern rather than erroring.
	ok := `{"statements":[{"given":["PostalCode"],"on":"City","branches":[{"if":[{"attr":"PostalCode","value":"00000"}],"then":"Nowhere"}]}]}`
	if _, err := UnmarshalJSON([]byte(ok), rel); err != nil {
		t.Fatalf("new literal rejected: %v", err)
	}
}
