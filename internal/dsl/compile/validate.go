// Translation validation: the proof-obligation record every compilation
// carries, and the row-level differential oracle that replays a relation
// through both engines.

package compile

import (
	"fmt"
	"strings"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
)

// Obligation is one proof obligation a pass emitted and the independent
// check that discharged (or failed to discharge) it.
type Obligation struct {
	Pass   string // "deadbranch", "subsume", "hoist", "dispatch"
	Stmt   int    // source statement index, -1 for program-level obligations
	Kind   string // e.g. "stmt-equivalence", "canon-fingerprint", "table-semantics"
	Proved bool
	Detail string
}

// Validation records everything a compilation proved and measured. A
// caller holding a *Prog also holds the Validation that certifies it;
// Compile refuses to return a Prog whose obligations are not all proved.
type Validation struct {
	Obligations []Obligation
	SolverCalls int64

	// Canon fingerprints over the shared widened universe, before any
	// pass and after the last pruning pass.
	FingerprintBefore uint64
	FingerprintAfter  uint64

	// Pipeline shape accounting.
	StmtsIn, StmtsOut int
	BranchesIn        int
	BranchesOut       int
	BranchesPruned    int
	StmtsPruned       int // statements with no live branch
	StmtsSubsumed     int // statements removed by passSubsumption
	AtomsHoisted      int // atom occurrences removed from branch guards
	TableStmts        int // statements lowered to dense or sparse tables
	LinearStmts       int // statements on the first-match fallback
}

func (v *Validation) record(o Obligation) { v.Obligations = append(v.Obligations, o) }

func (v *Validation) proved() int {
	n := 0
	for _, o := range v.Obligations {
		if o.Proved {
			n++
		}
	}
	return n
}

// AllProved reports whether every recorded obligation was discharged.
func (v *Validation) AllProved() bool { return v.proved() == len(v.Obligations) }

func (v *Validation) firstUnproved() string {
	for _, o := range v.Obligations {
		if !o.Proved {
			return fmt.Sprintf("pass %s stmt %d (%s): %s", o.Pass, o.Stmt, o.Kind, o.Detail)
		}
	}
	return "all obligations proved"
}

// Summary renders the one-line-per-fact pass report the CLI prints on
// stderr when -engine=compiled is selected.
func (v *Validation) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "compile: %d stmt(s) in, %d out (%d branch-dead, %d subsumed); %d branch(es) pruned, %d atom(s) hoisted\n",
		v.StmtsIn, v.StmtsOut, v.StmtsPruned, v.StmtsSubsumed, v.BranchesPruned, v.AtomsHoisted)
	fmt.Fprintf(&b, "compile: dispatch %d table / %d linear; %d/%d obligation(s) proved, %d solver call(s)\n",
		v.TableStmts, v.LinearStmts, v.proved(), len(v.Obligations), v.SolverCalls)
	fmt.Fprintf(&b, "compile: canon fingerprint %016x -> %016x", v.FingerprintBefore, v.FingerprintAfter)
	return b.String()
}

// DifferentialCheck replays every row of rel through the AST interpreter
// and the compiled engine and reports the first behavioral divergence:
// flagged-row verdicts, the full violation list projected to surviving
// statements plus first-violation identity (the Raise observable),
// Rectify results, and Eval results. A nil error certifies rel as a
// witness set on which the two engines are observationally identical.
func DifferentialCheck(p *dsl.Program, cp *Prog, rel *dataset.Relation) error {
	if rel.NumAttrs() < cp.MinWidth() {
		return fmt.Errorf("compile: relation has %d attribute(s), program needs %d", rel.NumAttrs(), cp.MinWidth())
	}
	var row, crow []int32
	var cbuf []dsl.Violation
	for i := 0; i < rel.NumRows(); i++ {
		row = rel.Row(i, row)

		astVs := p.Detect(row)
		cbuf = cp.DetectInto(row, cbuf[:0])
		if (len(astVs) > 0) != (len(cbuf) > 0) {
			return fmt.Errorf("compile: row %d: AST flags %d violation(s), compiled flags %d", i, len(astVs), len(cbuf))
		}
		if len(astVs) > 0 {
			if astVs[0] != cbuf[0] {
				return fmt.Errorf("compile: row %d: first violation differs: AST %+v, compiled %+v", i, astVs[0], cbuf[0])
			}
			ci := 0
			for _, av := range astVs {
				if ci < len(cbuf) && cbuf[ci] == av {
					ci++
				}
			}
			if ci != len(cbuf) {
				return fmt.Errorf("compile: row %d: compiled violations are not a subsequence of AST violations", i)
			}
		}

		astEval := p.Eval(row)
		cEval := cp.Eval(row)
		for a := range astEval {
			if astEval[a] != cEval[a] {
				return fmt.Errorf("compile: row %d: Eval differs at attribute %d: AST %d, compiled %d", i, a, astEval[a], cEval[a])
			}
		}

		crow = append(crow[:0], row...)
		astRow := append([]int32(nil), row...)
		astN := p.Rectify(astRow)
		cN := cp.Rectify(crow)
		if astN != cN {
			return fmt.Errorf("compile: row %d: Rectify changed %d cell(s) under AST, %d compiled", i, astN, cN)
		}
		for a := range astRow {
			if astRow[a] != crow[a] {
				return fmt.Errorf("compile: row %d: Rectify differs at attribute %d: AST %d, compiled %d", i, a, astRow[a], crow[a])
			}
		}
	}
	return nil
}
