// Lowering: guard hoisting/factoring followed by dispatch selection, with
// the per-statement proof obligations that validate each rewrite.

package compile

import (
	"fmt"

	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/smt/sat"
)

// lowerStatement emits the compiled form of one IR statement and records
// the factoring and table obligations on val.
func lowerStatement(st irStmt, wdom sat.Domains, opts Options, val *Validation) cstmt {
	common, residual := hoistCommon(st)
	validateFactoring(st, common, residual, wdom, val)
	val.AtomsHoisted += len(common) * len(st.branches)

	out := cstmt{orig: int32(st.orig), on: int32(st.on), common: common, kind: dispatchLinear}
	det, ok := determinantOf(residual)
	if ok {
		if buildTable(&out, det, residual, opts) {
			validateTable(&out, residual, val)
			switch out.kind {
			case dispatchDense:
				val.TableStmts++
			case dispatchSparse:
				val.TableStmts++
			}
			return out
		}
	}
	out.kind = dispatchLinear
	out.branches = make([]cbranch, len(residual))
	for k, b := range residual {
		out.branches[k] = cbranch{atoms: b.atoms, value: b.value}
	}
	val.LinearStmts++
	return out
}

// determinantOf reports the shared determinant attribute set when every
// residual branch binds exactly the same attributes, each exactly once —
// the GIVEN-group shape table dispatch requires. A branch binding an
// attribute twice (a contradictory guard the pruning passes were disabled
// for) or branches binding different sets disqualify the statement.
func determinantOf(residual []irBranch) ([]int32, bool) {
	if len(residual) == 0 {
		return nil, false
	}
	first := residual[0].atoms
	if len(first) == 0 {
		return nil, false
	}
	det := make([]int32, len(first))
	for i, p := range first {
		if i > 0 && p.Attr <= first[i-1].Attr { // sorted IR: equal means duplicate attr
			return nil, false
		}
		det[i] = int32(p.Attr)
	}
	for _, b := range residual[1:] {
		if len(b.atoms) != len(det) {
			return nil, false
		}
		for i, p := range b.atoms {
			if int32(p.Attr) != det[i] {
				return nil, false
			}
			if i > 0 && p.Attr == b.atoms[i-1].Attr {
				return nil, false
			}
		}
	}
	return det, true
}

// buildTable lowers residual onto a mixed-radix decision table keyed by
// the determinant codes. Radix k is one past the largest shifted literal
// (code+1, so Missing keys slot 0) any branch binds on determinant k:
// codes outside a bound cannot match any branch and the dispatch loop
// rejects them before keying, so the table is a perfect hash of every row
// that can possibly match. Returns false when multipliers would overflow,
// leaving the statement on the linear path.
func buildTable(out *cstmt, det []int32, residual []irBranch, opts Options) bool {
	radix := make([]int64, len(det))
	for _, b := range residual {
		for i, p := range b.atoms {
			if shifted := int64(p.Value) + 2; shifted > radix[i] {
				radix[i] = shifted
			}
		}
	}
	mult := make([]uint64, len(det))
	total := uint64(1)
	for i, r := range radix {
		mult[i] = total
		next, ok := mulCap(total, uint64(r))
		if !ok {
			return false
		}
		total = next
	}
	out.det = det
	out.radix = radix
	out.mult = mult

	if total <= uint64(opts.denseLimit()) {
		out.kind = dispatchDense
		out.dense = make([]int32, total)
		for i := range out.dense {
			out.dense[i] = noMatch
		}
		for _, b := range residual {
			key := branchKey(b, mult)
			if out.dense[key] == noMatch { // first match wins on duplicate keys
				out.dense[key] = b.value
			}
		}
		return true
	}
	out.kind = dispatchSparse
	out.sparse = make(map[uint64]int32, len(residual))
	for _, b := range residual {
		key := branchKey(b, mult)
		if _, dup := out.sparse[key]; !dup {
			out.sparse[key] = b.value
		}
	}
	return true
}

// branchKey computes the mixed-radix key of a residual branch's full
// determinant assignment.
func branchKey(b irBranch, mult []uint64) uint64 {
	var key uint64
	for i, p := range b.atoms {
		key += uint64(int64(p.Value)+1) * mult[i]
	}
	return key
}

// validateFactoring proves, per branch, that the hoisted common atoms
// conjoined with the residual atoms match exactly the rows the original
// guard matched — an independent solver equivalence on the touched
// fragment.
func validateFactoring(st irStmt, common []dsl.Pred, residual []irBranch, wdom sat.Domains, val *Validation) {
	if len(common) == 0 {
		return // nothing hoisted, guards are untouched
	}
	s := sat.NewSolver(wdom)
	ok := true
	for k, b := range st.branches {
		refactored := make(dsl.Condition, 0, len(common)+len(residual[k].atoms))
		refactored = append(refactored, common...)
		refactored = append(refactored, residual[k].atoms...)
		if !s.EquivalentCond(refactored, dsl.Condition(b.atoms)) {
			ok = false
			break
		}
	}
	val.SolverCalls += s.Calls()
	val.record(Obligation{
		Pass: "hoist", Stmt: st.orig, Kind: "guard-factoring", Proved: ok,
		Detail: fmt.Sprintf("%d atom(s) hoisted across %d branch(es), conjunctions re-proved equivalent", len(common), len(st.branches)),
	})
}

// validateTable proves the emitted decision table agrees with first-match
// evaluation of the residual branch list. Dense tables are verified by
// exhaustive enumeration of every key in the radix grid — a complete
// proof, since the dispatch loop rejects out-of-grid codes before keying
// and every branch literal lies inside the grid by construction. Sparse
// tables are verified per branch key plus the structural argument that a
// full-assignment residual matches exactly one key.
func validateTable(out *cstmt, residual []irBranch, val *Validation) {
	probe := make([]int32, 0, len(out.det))
	ok := true
	detail := ""
	switch out.kind {
	case dispatchDense:
		total := uint64(len(out.dense))
		for key := uint64(0); key < total && ok; key++ {
			probe = probe[:0]
			rem := key
			for i := range out.det {
				r := uint64(out.radix[i])
				probe = append(probe, int32(rem%r)-1)
				rem /= r
			}
			want, found := firstMatchResidual(residual, out.det, probe)
			got := out.dense[key]
			if found != (got != noMatch) || (found && want != got) {
				ok = false
				detail = fmt.Sprintf("key %d: table %d, first-match %d", key, got, want)
			}
		}
		if ok {
			detail = fmt.Sprintf("dense table of %d entries exhaustively matches first-match evaluation", total)
		}
	case dispatchSparse:
		for _, b := range residual {
			probe = probe[:0]
			for _, p := range b.atoms {
				probe = append(probe, p.Value)
			}
			want, found := firstMatchResidual(residual, out.det, probe)
			got, present := out.sparse[branchKey(b, out.mult)]
			if !found || !present || want != got {
				ok = false
				detail = fmt.Sprintf("branch key %d: map %d (present %v), first-match %d", branchKey(b, out.mult), got, present, want)
				break
			}
		}
		if ok {
			detail = fmt.Sprintf("%d branch key(s) verified; non-branch keys match no full-assignment residual structurally", len(residual))
		}
	default:
		return
	}
	val.record(Obligation{
		Pass: "dispatch", Stmt: int(out.orig), Kind: "table-semantics", Proved: ok, Detail: detail,
	})
}

// firstMatchResidual evaluates the residual branch list on a probe of
// determinant codes (probe[i] is the code of attribute det[i]) and
// returns the first matching branch's value.
func firstMatchResidual(residual []irBranch, det []int32, probe []int32) (int32, bool) {
	for _, b := range residual {
		matched := true
		for i, p := range b.atoms {
			if probe[i] != p.Value {
				matched = false
				break
			}
		}
		if matched {
			return b.value, true
		}
	}
	return 0, false
}
