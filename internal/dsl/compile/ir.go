// Package compile is the optimizing backend of Guardrail's guard runtime:
// a static-analysis-and-lowering pipeline that turns a DSL program into a
// dictionary-coded row-check engine. Where internal/dsl walks the AST per
// row, compile lowers each statement into a typed IR over encoded column
// values — equality atoms become integer comparisons against dictionary
// codes — and runs an ordered pass pipeline before emitting the runtime
// form:
//
//  1. dead-branch elimination   (solver-backed, agrees with analysis.LiveMask)
//  2. statement subsumption     (prune statements a preceding statement covers,
//     pruning                    guarded by a syntactic non-interference check
//     that keeps sequential Rectify/Eval semantics)
//  3. guard hoisting/factoring  (atoms shared by every branch are checked once)
//  4. dispatch selection        (branches binding one determinant set become a
//     perfect-hashed decision table — dense
//     mixed-radix or sparse keyed map — with a
//     first-match linear fallback)
//
// Every compilation is translation-validated: each pass emits proof
// obligations discharged by independent finite-domain solver queries
// (internal/smt/sat) and analysis.Canon fingerprints, and the decision
// tables are verified against their branch lists by exhaustive key
// enumeration. The AST interpreter remains the differential-testing
// oracle (DifferentialCheck, plus the fuzz harnesses in this package and
// internal/core).
package compile

import (
	"fmt"
	"sort"

	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/dsl/analysis"
	"github.com/guardrail-db/guardrail/internal/obs"
	"github.com/guardrail-db/guardrail/internal/obs/trace"
	"github.com/guardrail-db/guardrail/internal/smt/sat"
)

// Options configures a compilation.
type Options struct {
	// Domains bounds each attribute's value domain for the solver-backed
	// passes. The nil default compiles over the open universe (every
	// attribute unbounded), which is sound even when dictionaries grow
	// after compilation — StreamCSV interns unseen values, so open is the
	// only safe choice for long-lived guards. Pass sat.DomainsOf(rel) only
	// when every row the compiled program will ever see is encoded against
	// rel's frozen dictionaries; the bounded universe lets the passes
	// prune more aggressively.
	Domains sat.Domains
	// Obs receives the compile.* counters; nil disables instrumentation.
	Obs *obs.Registry
	// Trace parents the per-pass spans; the zero scope disables tracing.
	Trace trace.Scope
	// DenseTableLimit caps the entry count of a dense decision table
	// before the lowering falls back to a sparse keyed map; 0 selects the
	// default of 16384 entries (64 KiB of int32 per statement at most).
	DenseTableLimit int
	// NoPrune disables the dead-branch and subsumption passes, leaving
	// only hoisting and dispatch selection — the ablation configuration.
	NoPrune bool
}

func (o Options) denseLimit() int {
	if o.DenseTableLimit > 0 {
		return o.DenseTableLimit
	}
	return 1 << 14
}

// irBranch is one lowered branch: canonical sorted atoms plus the value
// the branch assigns.
type irBranch struct {
	atoms []dsl.Pred
	value int32
}

// irStmt is one statement in the dataflow IR, tagged with its position in
// the source program so violations keep their original statement indices.
type irStmt struct {
	orig     int
	on       int
	given    []int
	branches []irBranch
}

// asStatement reconstructs the dsl form of the IR statement, for solver
// proofs and fingerprinting.
func (st irStmt) asStatement() dsl.Statement {
	out := dsl.Statement{Given: st.given, On: st.on}
	for _, b := range st.branches {
		out.Branches = append(out.Branches, dsl.Branch{Cond: dsl.Condition(b.atoms), Value: b.value})
	}
	return out
}

// canonicalAtoms sorts c by (attr, value) and drops exact duplicates —
// conjunction semantics are order- and multiplicity-insensitive, so this
// preserves the matched row set exactly.
func canonicalAtoms(c dsl.Condition) []dsl.Pred {
	atoms := append([]dsl.Pred(nil), c...)
	sort.Slice(atoms, func(i, j int) bool {
		if atoms[i].Attr != atoms[j].Attr {
			return atoms[i].Attr < atoms[j].Attr
		}
		return atoms[i].Value < atoms[j].Value
	})
	out := atoms[:0]
	for i, a := range atoms {
		if i > 0 && a == atoms[i-1] {
			continue
		}
		out = append(out, a)
	}
	return out
}

// buildIR lowers p into the IR, rejecting programs whose literals fall
// outside the encoded-value space the engine dispatches over (attribute
// indices must be non-negative; values must be dictionary codes or the
// Missing sentinel, i.e. >= -1).
func buildIR(p *dsl.Program) ([]irStmt, error) {
	stmts := make([]irStmt, 0, len(p.Stmts))
	for si, s := range p.Stmts {
		if s.On < 0 {
			return nil, fmt.Errorf("compile: statement %d: ON attribute %d is negative", si, s.On)
		}
		ir := irStmt{orig: si, on: s.On, given: append([]int(nil), s.Given...)}
		for bi, b := range s.Branches {
			if b.Value < -1 {
				return nil, fmt.Errorf("compile: statement %d branch %d: assigned value %d below the code space", si, bi, b.Value)
			}
			for _, pr := range b.Cond {
				if pr.Attr < 0 {
					return nil, fmt.Errorf("compile: statement %d branch %d: attribute %d is negative", si, bi, pr.Attr)
				}
				if pr.Value < -1 {
					return nil, fmt.Errorf("compile: statement %d branch %d: literal %d below the code space", si, bi, pr.Value)
				}
			}
			ir.branches = append(ir.branches, irBranch{atoms: canonicalAtoms(b.Cond), value: b.Value})
		}
		stmts = append(stmts, ir)
	}
	return stmts, nil
}

// asProgram reconstructs a dsl.Program from the IR statement list.
func asProgram(stmts []irStmt) *dsl.Program {
	p := &dsl.Program{}
	for _, st := range stmts {
		p.Stmts = append(p.Stmts, st.asStatement())
	}
	return p
}

// maxAttrOf returns one past the highest attribute index the IR touches —
// the minimum row width the engine requires.
func maxAttrOf(stmts []irStmt) int {
	max := -1
	for _, st := range stmts {
		if st.on > max {
			max = st.on
		}
		for _, b := range st.branches {
			for _, pr := range b.atoms {
				if pr.Attr > max {
					max = pr.Attr
				}
			}
		}
	}
	return max + 1
}

// Compile runs the full pipeline over p and returns the executable form
// together with the translation-validation record. A non-nil error means
// the program is outside the engine's input space or an obligation failed
// to prove — the caller must keep using the AST interpreter. The returned
// Validation is non-nil whenever compilation ran far enough to record
// obligations, even on error, so callers can report what failed.
func Compile(p *dsl.Program, opts Options) (*Prog, *Validation, error) {
	csp := opts.Trace.Start("compile.program").Int("stmts", int64(len(p.Stmts)))
	defer csp.End()
	sc := opts.Trace.Under(csp)

	ir, err := buildIR(p)
	if err != nil {
		return nil, nil, err
	}
	val := &Validation{}
	reg := opts.Obs

	// One widened universe for every pass and proof: the original
	// program's literals fix it, so pruning never narrows the row set the
	// later obligations quantify over.
	wdom := analysis.Widen(opts.Domains, p)
	canonBefore, calls := analysis.Canon(p, wdom)
	val.SolverCalls += calls
	val.FingerprintBefore = analysis.Fingerprint(canonBefore)
	val.StmtsIn = len(ir)
	val.BranchesIn = countBranches(ir)

	if !opts.NoPrune {
		psp := sc.Start("compile.deadbranch")
		ir = passDeadBranches(ir, wdom, val)
		psp.Int("branches_pruned", int64(val.BranchesPruned)).Int("stmts_pruned", int64(val.StmtsPruned)).End()

		// The dead-branch pass only erases regions Canon also erases, so
		// the fingerprint must survive it; Canon runs its own solver, so
		// this is an independent check.
		canonMid, calls := analysis.Canon(asProgram(ir), wdom)
		val.SolverCalls += calls
		val.record(Obligation{
			Pass: "deadbranch", Stmt: -1, Kind: "canon-fingerprint",
			Proved: canonMid == canonBefore,
			Detail: fmt.Sprintf("fingerprint %016x preserved", analysis.Fingerprint(canonMid)),
		})

		ssp := sc.Start("compile.subsume")
		ir = passSubsumption(ir, wdom, val)
		ssp.Int("stmts_pruned", int64(val.StmtsSubsumed)).End()
	}

	canonAfter, calls := analysis.Canon(asProgram(ir), wdom)
	val.SolverCalls += calls
	val.FingerprintAfter = analysis.Fingerprint(canonAfter)

	lsp := sc.Start("compile.lower")
	prog := &Prog{srcStmts: len(p.Stmts), minWidth: maxAttrOf(ir)}
	for _, st := range ir {
		prog.stmts = append(prog.stmts, lowerStatement(st, wdom, opts, val))
	}
	lsp.Int("table", int64(val.TableStmts)).Int("linear", int64(val.LinearStmts)).End()

	val.StmtsOut = len(prog.stmts)
	val.BranchesOut = countBranches(ir)

	if reg != nil {
		reg.Counter("compile.programs").Inc()
		reg.Counter("compile.stmts_in").Add(int64(val.StmtsIn))
		reg.Counter("compile.stmts_out").Add(int64(val.StmtsOut))
		reg.Counter("compile.branches_pruned").Add(int64(val.BranchesPruned))
		reg.Counter("compile.stmts_pruned").Add(int64(val.StmtsPruned + val.StmtsSubsumed))
		reg.Counter("compile.atoms_hoisted").Add(int64(val.AtomsHoisted))
		reg.Counter("compile.stmts_table").Add(int64(val.TableStmts))
		reg.Counter("compile.stmts_linear").Add(int64(val.LinearStmts))
		reg.Counter("compile.obligations").Add(int64(len(val.Obligations)))
		reg.Counter("compile.obligations_proved").Add(int64(val.proved()))
		reg.Counter("compile.solver_calls").Add(val.SolverCalls)
	}

	if !val.AllProved() {
		return nil, val, fmt.Errorf("compile: translation validation failed: %s", val.firstUnproved())
	}
	return prog, val, nil
}

func countBranches(stmts []irStmt) int {
	n := 0
	for _, st := range stmts {
		n += len(st.branches)
	}
	return n
}

// keyLimit bounds mixed-radix keys so multiplier products cannot
// overflow uint64.
const keyLimit = uint64(1) << 62

// overflow-safe multiply for radix products; ok=false when the product
// would exceed keyLimit.
func mulCap(a, b uint64) (uint64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a > keyLimit/b {
		return 0, false
	}
	return a * b, true
}
