// The compiled row-check engine: the executable form the pipeline emits
// and the tight dispatch loop that interprets it. A compiled statement is
// a hoisted common-atom prefix plus one of three dispatch forms over the
// residual guards:
//
//   - dense:  a mixed-radix perfect hash of the determinant codes into a
//     flat decision table (one int32 load per row, no probing)
//   - sparse: the same key into a Go map when the radix product is too
//     large to materialize
//   - linear: first-match scan over flat atom arrays (general fallback)
//
// Codes are offset by +1 when keyed so the Missing sentinel (-1) lands on
// slot 0; any code at or beyond an attribute's radix bound matches no
// branch literal and short-circuits to "no match", which keeps dispatch
// correct even for codes interned after compilation.

package compile

import (
	"math"

	"github.com/guardrail-db/guardrail/internal/dsl"
)

type dispatchKind uint8

const (
	dispatchLinear dispatchKind = iota
	dispatchDense
	dispatchSparse
)

func (k dispatchKind) String() string {
	switch k {
	case dispatchDense:
		return "dense"
	case dispatchSparse:
		return "sparse"
	}
	return "linear"
}

// noMatch marks an empty dense-table slot. Assigned values are dictionary
// codes or Missing (>= -1), so the sentinel can never collide.
const noMatch = int32(math.MinInt32)

// cstmt is one compiled statement.
type cstmt struct {
	orig   int32 // statement index in the source program
	on     int32 // dependent attribute
	kind   dispatchKind
	common []dsl.Pred // hoisted atoms, checked before dispatch

	// dense/sparse dispatch over the determinant attribute set.
	det    []int32  // determinant attributes, ascending
	radix  []int64  // per det attr: exclusive bound on code+1
	mult   []uint64 // mixed-radix multipliers
	dense  []int32  // assigned value per key, noMatch when empty
	sparse map[uint64]int32

	// linear dispatch.
	branches []cbranch
}

type cbranch struct {
	atoms []dsl.Pred
	value int32
}

// Prog is a compiled program. It implements the same row semantics as the
// *dsl.Program it was compiled from (the translation validator and the
// differential oracle hold it to that) with O(1) branch dispatch on
// table-shaped statements. A Prog is immutable after Compile and safe for
// concurrent use.
type Prog struct {
	stmts    []cstmt
	srcStmts int
	minWidth int
}

// SourceStmts reports the statement count of the source program.
func (p *Prog) SourceStmts() int { return p.srcStmts }

// NumStmts reports the compiled statement count (after pruning).
func (p *Prog) NumStmts() int { return len(p.stmts) }

// MinWidth reports the minimum row length the engine requires — one past
// the highest attribute index the compiled program touches.
func (p *Prog) MinWidth() int { return p.minWidth }

// Layout reports how many statements compiled into each dispatch form.
func (p *Prog) Layout() (dense, sparse, linear int) {
	for i := range p.stmts {
		switch p.stmts[i].kind {
		case dispatchDense:
			dense++
		case dispatchSparse:
			sparse++
		default:
			linear++
		}
	}
	return
}

// match returns the value the statement's first matching branch assigns
// to row, if any. The hot path: no allocation, no indirect calls.
func (st *cstmt) match(row []int32) (int32, bool) {
	for _, p := range st.common {
		if row[p.Attr] != p.Value {
			return 0, false
		}
	}
	switch st.kind {
	case dispatchDense:
		var key uint64
		for k, a := range st.det {
			u := int64(row[a]) + 1
			if uint64(u) >= uint64(st.radix[k]) { // negative u wraps huge
				return 0, false
			}
			key += uint64(u) * st.mult[k]
		}
		if v := st.dense[key]; v != noMatch {
			return v, true
		}
		return 0, false
	case dispatchSparse:
		var key uint64
		for k, a := range st.det {
			u := int64(row[a]) + 1
			if uint64(u) >= uint64(st.radix[k]) {
				return 0, false
			}
			key += uint64(u) * st.mult[k]
		}
		v, ok := st.sparse[key]
		return v, ok
	default:
		for i := range st.branches {
			b := &st.branches[i]
			matched := true
			for _, p := range b.atoms {
				if row[p.Attr] != p.Value {
					matched = false
					break
				}
			}
			if matched {
				return b.value, true
			}
		}
		return 0, false
	}
}

// DetectInto appends every violation of the compiled program by row to
// buf and returns the extended slice — the zero-allocation counterpart of
// dsl.Program.Detect when the caller reuses buf across rows. Statements
// pruned as provably redundant contribute no entries; the violations that
// remain carry source-program statement indices, and a row is flagged,
// coerced, raised-on, and rectified exactly as the interpreter would.
func (p *Prog) DetectInto(row []int32, buf []dsl.Violation) []dsl.Violation {
	for i := range p.stmts {
		st := &p.stmts[i]
		if v, ok := st.match(row); ok && row[st.on] != v {
			buf = append(buf, dsl.Violation{Stmt: int(st.orig), Attr: int(st.on), Expected: v, Actual: row[st.on]})
		}
	}
	return buf
}

// Rectify overwrites each violated dependent attribute in place, in
// statement order against the mutating row — same sequential semantics as
// dsl.Program.Rectify — and reports how many cells changed.
func (p *Prog) Rectify(row []int32) int {
	changed := 0
	for i := range p.stmts {
		st := &p.stmts[i]
		if v, ok := st.match(row); ok && row[st.on] != v {
			row[st.on] = v
			changed++
		}
	}
	return changed
}

// Eval executes the compiled program on row, returning the updated state
// without mutating the input — the compiled ⟦p⟧_t.
func (p *Prog) Eval(row []int32) []int32 {
	out := append([]int32(nil), row...)
	for i := range p.stmts {
		st := &p.stmts[i]
		if v, ok := st.match(out); ok {
			out[st.on] = v
		}
	}
	return out
}
