// The analysis-pass pipeline: program-level rewrites that shrink the IR
// before lowering. Every rewrite carries a proof obligation discharged by
// an independent solver query (see validate.go); an unproved obligation
// aborts the compilation rather than shipping a miscompiled guard.

package compile

import (
	"fmt"

	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/dsl/analysis"
	"github.com/guardrail-db/guardrail/internal/smt/sat"
)

// passDeadBranches removes branches that can never fire — unsatisfiable
// guards, or regions covered by the union of earlier guards (first match
// wins) — and statements left with no live branch. The liveness judgment
// is exactly analysis.LiveMask over the widened universe, and every
// modified statement is re-proved equivalent to its original by a fresh
// solver (subsumption in both directions, the Minimize idiom).
func passDeadBranches(ir []irStmt, wdom sat.Domains, val *Validation) []irStmt {
	s := sat.NewSolver(wdom)
	proof := sat.NewSolver(wdom) // independent solver for the obligations
	out := make([]irStmt, 0, len(ir))
	for _, st := range ir {
		full := st.asStatement()
		live := analysis.LiveMask(s, full)
		pruned := irStmt{orig: st.orig, on: st.on, given: st.given}
		for bi, b := range st.branches {
			if live[bi] {
				pruned.branches = append(pruned.branches, b)
			}
		}
		removed := len(st.branches) - len(pruned.branches)
		if removed == 0 {
			out = append(out, st)
			continue
		}
		val.BranchesPruned += removed
		prunedStmt := pruned.asStatement()
		ok := analysis.StatementSubsumes(proof, full, prunedStmt) &&
			analysis.StatementSubsumes(proof, prunedStmt, full)
		val.record(Obligation{
			Pass: "deadbranch", Stmt: st.orig, Kind: "stmt-equivalence", Proved: ok,
			Detail: fmt.Sprintf("%d dead branch(es) removed, statement re-proved equivalent", removed),
		})
		if len(pruned.branches) == 0 {
			val.StmtsPruned++
			continue // a statement with no live branch never fires
		}
		out = append(out, pruned)
	}
	val.SolverCalls += s.Calls() + proof.Calls()
	return out
}

// atomAttrs collects the set of attributes read by any guard atom of st.
func atomAttrs(st irStmt, into map[int]bool) map[int]bool {
	if into == nil {
		into = make(map[int]bool)
	}
	for _, b := range st.branches {
		for _, p := range b.atoms {
			into[p.Attr] = true
		}
	}
	return into
}

// passSubsumption prunes statement j when an earlier statement i provably
// covers it. Soundness needs two facts:
//
//   - Subsumption (solver-proved): on every universe row where some branch
//     of j fires, some branch of i fires and assigns the same value. This
//     alone preserves Detect/Coerce/Raise observables — j's violation is
//     always accompanied by i's identical one, and i precedes j so the
//     first violation is unchanged.
//
//   - Non-interference (syntactic): sequential Rectify/Eval match each
//     statement against the *mutated* row, so between i's turn and j's
//     turn nothing may invalidate the subsumption argument. Statements
//     write only their ON attribute; it therefore suffices that no
//     statement k in [i, j) writes an attribute read by i's or j's guards
//     (so i fires at its own turn exactly when it would fire at j's turn,
//     leaving ON already holding j's value) and that no statement strictly
//     between writes ON itself (so the value survives until j's turn,
//     making j's assignment a no-op).
//
// Pruning commits one statement at a time against the current program, so
// each proof's interference window contains only statements that still
// execute.
func passSubsumption(ir []irStmt, wdom sat.Domains, val *Validation) []irStmt {
	s := sat.NewSolver(wdom)
	proof := sat.NewSolver(wdom)
	kept := append([]irStmt(nil), ir...)
	for j := 0; j < len(kept); j++ {
		for i := 0; i < j; i++ {
			if kept[i].on != kept[j].on {
				continue
			}
			if !nonInterfering(kept, i, j) {
				continue
			}
			a, b := kept[i].asStatement(), kept[j].asStatement()
			if !analysis.StatementSubsumes(s, a, b) {
				continue
			}
			// Independent re-proof with a fresh solver plus a re-check of
			// the interference window — the pass's decision is never its
			// own evidence.
			ok := analysis.StatementSubsumes(proof, a, b) && nonInterfering(kept, i, j)
			val.record(Obligation{
				Pass: "subsume", Stmt: kept[j].orig, Kind: "subsumption+non-interference", Proved: ok,
				Detail: fmt.Sprintf("covered by statement %d; window [%d,%d) writes no read attribute", kept[i].orig, kept[i].orig, kept[j].orig),
			})
			val.StmtsSubsumed++
			kept = append(kept[:j], kept[j+1:]...)
			j--
			break
		}
	}
	val.SolverCalls += s.Calls() + proof.Calls()
	return kept
}

// nonInterfering reports the syntactic side condition of passSubsumption
// for the pair (i, j) within the current statement list: no statement in
// [i, j) writes an attribute read by i's or j's guards, and no statement
// strictly between writes the shared ON attribute.
func nonInterfering(stmts []irStmt, i, j int) bool {
	read := atomAttrs(stmts[i], nil)
	read = atomAttrs(stmts[j], read)
	for k := i; k < j; k++ {
		if read[stmts[k].on] {
			return false
		}
		if k > i && stmts[k].on == stmts[j].on {
			return false
		}
	}
	return true
}

// hoistCommon factors the atoms shared by every branch of st out of the
// branch guards: the common prefix is checked once per row, and dispatch
// runs over the residual atoms. Returns the common atoms and the residual
// branches; the conjunction common ∧ residual_k equals branch k's guard
// atom-for-atom, which validateFactoring re-proves with the solver.
func hoistCommon(st irStmt) (common []dsl.Pred, residual []irBranch) {
	if len(st.branches) == 0 {
		return nil, nil
	}
	for _, atom := range st.branches[0].atoms {
		inAll := true
		for _, b := range st.branches[1:] {
			if !hasAtom(b.atoms, atom) {
				inAll = false
				break
			}
		}
		if inAll {
			common = append(common, atom)
		}
	}
	residual = make([]irBranch, len(st.branches))
	for k, b := range st.branches {
		res := make([]dsl.Pred, 0, len(b.atoms))
		for _, atom := range b.atoms {
			if !hasAtom(common, atom) {
				res = append(res, atom)
			}
		}
		residual[k] = irBranch{atoms: res, value: b.value}
	}
	return common, residual
}

// hasAtom reports whether atoms (sorted or not) contains exactly a.
func hasAtom(atoms []dsl.Pred, a dsl.Pred) bool {
	for _, p := range atoms {
		if p == a {
			return true
		}
	}
	return false
}
