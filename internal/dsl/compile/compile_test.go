package compile

import (
	"strings"
	"testing"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/smt/sat"
)

// prog builds a program from compact statement specs.
func prog(stmts ...dsl.Statement) *dsl.Program { return &dsl.Program{Stmts: stmts} }

func branch(value int32, atoms ...dsl.Pred) dsl.Branch {
	return dsl.Branch{Cond: dsl.Condition(atoms), Value: value}
}

func at(attr int, value int32) dsl.Pred { return dsl.Pred{Attr: attr, Value: value} }

// enumRelation materializes every row of a small grid universe (codes -1
// .. card-1 per attribute) so differential checks are exhaustive.
func enumRelation(t *testing.T, attrs int, card int32) *dataset.Relation {
	t.Helper()
	names := make([]string, attrs)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	rel := dataset.New("enum", names)
	// Intern codes 0..card-1 in order so code k is the string of k.
	pad := make([]string, attrs)
	for c := int32(0); c < card; c++ {
		for i := range pad {
			pad[i] = strings.Repeat("x", int(c)+1)
		}
		if err := rel.AppendRow(pad); err != nil {
			t.Fatal(err)
		}
	}
	// Enumerate the full grid including Missing.
	total := 1
	for i := 0; i < attrs; i++ {
		total *= int(card) + 1
	}
	codes := make([]int32, attrs)
	for k := 0; k < total; k++ {
		rem := k
		for i := range codes {
			codes[i] = int32(rem%(int(card)+1)) - 1
			rem /= int(card) + 1
		}
		if err := rel.AppendCodes(codes); err != nil {
			t.Fatal(err)
		}
	}
	return rel
}

func mustCompile(t *testing.T, p *dsl.Program, opts Options) (*Prog, *Validation) {
	t.Helper()
	cp, val, err := Compile(p, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if !val.AllProved() {
		t.Fatalf("unproved obligations: %s", val.firstUnproved())
	}
	return cp, val
}

func TestTableDispatchMatchesInterpreter(t *testing.T) {
	// Two GIVEN-group statements: every branch binds the same determinant,
	// so both should lower to dense tables.
	p := prog(
		dsl.Statement{Given: []int{0}, On: 1, Branches: []dsl.Branch{
			branch(0, at(0, 0)), branch(1, at(0, 1)), branch(2, at(0, 2)),
		}},
		dsl.Statement{Given: []int{1}, On: 2, Branches: []dsl.Branch{
			branch(1, at(1, 0)), branch(1, at(1, 1)), branch(0, at(1, 2)),
		}},
	)
	cp, val := mustCompile(t, p, Options{})
	dense, sparse, linear := cp.Layout()
	if dense != 2 || sparse != 0 || linear != 0 {
		t.Fatalf("layout = %d/%d/%d, want 2 dense", dense, sparse, linear)
	}
	if val.TableStmts != 2 || val.LinearStmts != 0 {
		t.Fatalf("validation layout = %d table / %d linear", val.TableStmts, val.LinearStmts)
	}
	if err := DifferentialCheck(p, cp, enumRelation(t, 3, 4)); err != nil {
		t.Fatal(err)
	}
}

func TestSparseAndLinearFallbacks(t *testing.T) {
	shared := []dsl.Branch{branch(0, at(0, 0)), branch(1, at(0, 1))}
	p := prog(
		// Forced sparse via a tiny dense limit.
		dsl.Statement{Given: []int{0}, On: 1, Branches: shared},
		// Mixed determinants: branches bind different attributes → linear.
		dsl.Statement{Given: []int{0, 2}, On: 1, Branches: []dsl.Branch{
			branch(0, at(0, 0)), branch(1, at(2, 1)),
		}},
	)
	cp, val := mustCompile(t, p, Options{DenseTableLimit: 1})
	dense, sparse, linear := cp.Layout()
	if dense != 0 || sparse != 1 || linear != 1 {
		t.Fatalf("layout = %d/%d/%d, want 0 dense, 1 sparse, 1 linear", dense, sparse, linear)
	}
	if val.LinearStmts != 1 {
		t.Fatalf("LinearStmts = %d, want 1", val.LinearStmts)
	}
	if err := DifferentialCheck(p, cp, enumRelation(t, 3, 3)); err != nil {
		t.Fatal(err)
	}
}

func TestDeadBranchEliminationProved(t *testing.T) {
	// Branch 1 binds the same determinant value as branch 0, so first-match
	// semantics make it unreachable; branch 2 stays live.
	p := prog(dsl.Statement{Given: []int{0}, On: 1, Branches: []dsl.Branch{
		branch(5, at(0, 0)), branch(7, at(0, 0)), branch(3, at(0, 1)),
	}})
	cp, val := mustCompile(t, p, Options{})
	if val.BranchesPruned != 1 {
		t.Fatalf("BranchesPruned = %d, want 1", val.BranchesPruned)
	}
	if val.FingerprintBefore != val.FingerprintAfter {
		t.Fatalf("fingerprint changed: %016x -> %016x", val.FingerprintBefore, val.FingerprintAfter)
	}
	if err := DifferentialCheck(p, cp, enumRelation(t, 2, 3)); err != nil {
		t.Fatal(err)
	}
}

func TestSubsumptionPrunesDuplicate(t *testing.T) {
	st := dsl.Statement{Given: []int{0}, On: 1, Branches: []dsl.Branch{
		branch(4, at(0, 0)), branch(5, at(0, 1)),
	}}
	p := prog(st, st) // identical statements: the second is redundant
	cp, val := mustCompile(t, p, Options{})
	if val.StmtsSubsumed != 1 {
		t.Fatalf("StmtsSubsumed = %d, want 1", val.StmtsSubsumed)
	}
	if cp.NumStmts() != 1 || cp.SourceStmts() != 2 {
		t.Fatalf("NumStmts = %d (src %d), want 1 (src 2)", cp.NumStmts(), cp.SourceStmts())
	}
	if err := DifferentialCheck(p, cp, enumRelation(t, 2, 3)); err != nil {
		t.Fatal(err)
	}
}

func TestInterferenceBlocksSubsumptionPrune(t *testing.T) {
	// Statements 0 and 2 are identical, so the solver happily proves
	// subsumption — but statement 1 writes attribute 0, which both guards
	// read. Sequentially, a row {a:0, b:1, c:0} only triggers statement 2
	// *after* statement 1 rewrites a to 1; pruning statement 2 would leave
	// c unrepaired. The non-interference side condition must refuse.
	dup := dsl.Statement{Given: []int{0}, On: 2, Branches: []dsl.Branch{branch(5, at(0, 1))}}
	p := prog(
		dup,
		dsl.Statement{Given: []int{1}, On: 0, Branches: []dsl.Branch{branch(1, at(1, 1))}},
		dup,
	)
	cp, val := mustCompile(t, p, Options{})
	if val.StmtsSubsumed != 0 {
		t.Fatalf("interfering statement was pruned (StmtsSubsumed = %d)", val.StmtsSubsumed)
	}
	if cp.NumStmts() != 3 {
		t.Fatalf("NumStmts = %d, want 3", cp.NumStmts())
	}
	// The witness row of the comment, checked explicitly on top of the
	// exhaustive sweep.
	row := []int32{0, 1, 0}
	ast := append([]int32(nil), row...)
	comp := append([]int32(nil), row...)
	p.Rectify(ast)
	cp.Rectify(comp)
	if ast[2] != 5 || comp[2] != 5 {
		t.Fatalf("Rectify: ast c=%d compiled c=%d, want 5", ast[2], comp[2])
	}
	if err := DifferentialCheck(p, cp, enumRelation(t, 3, 3)); err != nil {
		t.Fatal(err)
	}
}

func TestHoistedGuardsStayEquivalent(t *testing.T) {
	// Every branch shares the a=1 atom: it should hoist, leaving b as the
	// dispatch determinant.
	p := prog(dsl.Statement{Given: []int{0, 1}, On: 2, Branches: []dsl.Branch{
		branch(0, at(0, 1), at(1, 0)),
		branch(1, at(0, 1), at(1, 1)),
		branch(2, at(0, 1), at(1, 2)),
	}})
	cp, val := mustCompile(t, p, Options{})
	if val.AtomsHoisted != 3 {
		t.Fatalf("AtomsHoisted = %d, want 3", val.AtomsHoisted)
	}
	if dense, _, _ := cp.Layout(); dense != 1 {
		t.Fatalf("hoisted statement did not reach dense dispatch")
	}
	if err := DifferentialCheck(p, cp, enumRelation(t, 3, 4)); err != nil {
		t.Fatal(err)
	}
}

func TestGrownCodesNeverMatchTables(t *testing.T) {
	// Codes interned after compilation exceed every radix bound; dispatch
	// must treat them as "no branch matches", exactly like the interpreter.
	p := prog(dsl.Statement{Given: []int{0}, On: 1, Branches: []dsl.Branch{
		branch(3, at(0, 0)), branch(4, at(0, 1)),
	}})
	cp, _ := mustCompile(t, p, Options{})
	for _, code := range []int32{2, 99, 1 << 20, dataset.Missing} {
		row := []int32{code, 0}
		if got := p.Detect(row); len(got) != len(cp.DetectInto(row, nil)) {
			t.Fatalf("code %d: engines disagree", code)
		}
		if len(cp.DetectInto(row, nil)) != 0 {
			t.Fatalf("code %d: unexpected match", code)
		}
	}
}

func TestBoundedDomainsPruneMore(t *testing.T) {
	// Under the closed universe {0,1} for attribute 0, the two branches
	// cover every non-missing code... the third (value 7 literal) is
	// outside the domain, hence unsatisfiable and dead.
	p := prog(dsl.Statement{Given: []int{0}, On: 1, Branches: []dsl.Branch{
		branch(3, at(0, 0)), branch(4, at(0, 1)), branch(5, at(0, 7)),
	}})
	dom := sat.Domains{0: 2, 1: 8}
	cp, val := mustCompile(t, p, Options{Domains: dom})
	if val.BranchesPruned != 0 {
		// Widen extends the domain with the program's own literals, so the
		// 7-branch stays satisfiable and live — document the behavior.
		t.Fatalf("BranchesPruned = %d; widened domains must keep literal 7 alive", val.BranchesPruned)
	}
	if err := DifferentialCheck(p, cp, enumRelation(t, 2, 8)); err != nil {
		t.Fatal(err)
	}
}

func TestBuildIRRejectsOutOfSpacePrograms(t *testing.T) {
	cases := []*dsl.Program{
		prog(dsl.Statement{On: -1, Branches: []dsl.Branch{branch(0)}}),
		prog(dsl.Statement{On: 0, Branches: []dsl.Branch{branch(-2)}}),
		prog(dsl.Statement{On: 0, Branches: []dsl.Branch{branch(0, dsl.Pred{Attr: -3, Value: 0})}}),
		prog(dsl.Statement{On: 0, Branches: []dsl.Branch{branch(0, dsl.Pred{Attr: 1, Value: -9})}}),
	}
	for i, p := range cases {
		if _, _, err := Compile(p, Options{}); err == nil {
			t.Fatalf("case %d: out-of-space program compiled", i)
		}
	}
}

func TestValidationSummaryMentionsEverything(t *testing.T) {
	p := prog(dsl.Statement{Given: []int{0}, On: 1, Branches: []dsl.Branch{
		branch(0, at(0, 0)), branch(1, at(0, 1)),
	}})
	_, val := mustCompile(t, p, Options{})
	s := val.Summary()
	for _, want := range []string{"stmt(s) in", "obligation(s) proved", "canon fingerprint", "solver call"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestMinWidthAndMissingRows(t *testing.T) {
	p := prog(dsl.Statement{Given: []int{3}, On: 5, Branches: []dsl.Branch{branch(1, at(3, 0))}})
	cp, _ := mustCompile(t, p, Options{})
	if cp.MinWidth() != 6 {
		t.Fatalf("MinWidth = %d, want 6", cp.MinWidth())
	}
	row := []int32{0, 0, 0, dataset.Missing, 0, dataset.Missing}
	if vs := cp.DetectInto(row, nil); len(vs) != 0 {
		t.Fatalf("missing determinant matched: %+v", vs)
	}
}
