// Package verify is the semantic verifier for synthesized DSL programs —
// the first layer of Guardrail's static-analysis subsystem. A program that
// parses and validates (dsl.Validate) can still be degenerate: branches can
// contradict or shadow each other, statements can form cyclic determinant
// chains, literals can fall outside the dataset dictionary, and whole
// statements can be dead. Such programs silently weaken the runtime
// guardrail (a shadowed branch never fires; a contradictory pair rectifies
// rows to the wrong value), so the synthesizer prunes candidates the
// verifier rejects before coverage scoring, and `guardrail lint` exposes
// the same checks on constraint files.
//
// Decision procedures come from the finite-domain solver in
// internal/smt/sat, run here without domain bounds (the verifier's
// contract predates dictionary-aware reasoning; internal/dsl/analysis
// layers the domain- and disjunction-aware passes on top); messages are
// rendered through internal/dsl/text.go so findings read in the paper's
// surface syntax.
package verify

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/smt/sat"
)

// Severity grades a finding.
type Severity int

const (
	// Warning marks redundancy or suspicious structure that does not change
	// runtime behavior (duplicate branches, cyclic determinant chains).
	Warning Severity = iota
	// Error marks semantic defects that make the program untrustworthy as a
	// guardrail (contradictions, domain violations, dead statements).
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// MarshalJSON renders the severity as its string name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Class identifies the diagnostic.
type Class int

const (
	// Contradiction: a branch whose condition is subsumed by an earlier
	// branch of the same statement but assigns a different value — the
	// later branch can never take effect and disagrees with the one that
	// shadows it.
	Contradiction Class = iota
	// Unreachable: a branch that can never fire — its condition is
	// unsatisfiable, or an earlier branch with the same assignment already
	// matches every row it would match (subsumption).
	Unreachable
	// SelfDependency: a statement whose dependent attribute appears in its
	// own GIVEN set or is tested by one of its branch conditions.
	SelfDependency
	// Cycle: statements whose determinant chains form a directed cycle
	// (a determines b, b determines a), making rectification order-sensitive.
	Cycle
	// DomainViolation: an attribute index or literal code outside the
	// dataset dictionary, a condition atom on an attribute outside GIVEN,
	// or a branch asserting missingness.
	DomainViolation
	// DeadStatement: a statement with no branches, or whose every branch is
	// unreachable.
	DeadStatement
)

func (c Class) String() string {
	switch c {
	case Contradiction:
		return "contradiction"
	case Unreachable:
		return "unreachable"
	case SelfDependency:
		return "self-dependency"
	case Cycle:
		return "cycle"
	case DomainViolation:
		return "domain-violation"
	case DeadStatement:
		return "dead-statement"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// MarshalJSON renders the class as its string name.
func (c Class) MarshalJSON() ([]byte, error) { return json.Marshal(c.String()) }

// Finding is one diagnostic with its location inside the program.
type Finding struct {
	Class    Class    `json:"class"`
	Severity Severity `json:"severity"`
	// Stmt is the statement index within the program.
	Stmt int `json:"stmt"`
	// Branch is the branch index within the statement, or -1 for
	// statement-level findings.
	Branch int `json:"branch"`
	// Other is the index of the related branch (Contradiction/Unreachable)
	// or statement (Cycle), or -1.
	Other int `json:"other"`
	// Message is the human-readable diagnosis in the surface syntax.
	Message string `json:"message"`
}

// String renders the finding as "severity stmt 2 branch 1 [class]: message".
func (f Finding) String() string {
	loc := fmt.Sprintf("stmt %d", f.Stmt)
	if f.Branch >= 0 {
		loc += fmt.Sprintf(" branch %d", f.Branch)
	}
	return fmt.Sprintf("%s %s [%s]: %s", f.Severity, loc, f.Class, f.Message)
}

// HasErrors reports whether any finding is Error-severity.
func HasErrors(fs []Finding) bool {
	for _, f := range fs {
		if f.Severity == Error {
			return true
		}
	}
	return false
}

// Program runs every check over p. rel supplies the dataset dictionary for
// domain checks and attribute/literal names in messages; it may be nil, in
// which case domain bounds are not checked and messages fall back to
// positional names. The returned findings are ordered by statement, then
// branch, then class.
func Program(p *dsl.Program, rel *dataset.Relation) []Finding {
	var out []Finding
	if p == nil {
		return nil
	}
	// The verifier reasons over the unbounded missing-aware universe: a
	// nil-domain solver reduces the finite-domain procedure to exact atom
	// algebra, preserving the historical conjunction-only verdicts.
	slv := sat.NewSolver(nil)
	for si := range p.Stmts {
		out = append(out, checkStatement(slv, p, si, rel)...)
	}
	out = append(out, checkCycles(p, rel)...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Stmt != b.Stmt {
			return a.Stmt < b.Stmt
		}
		if a.Branch != b.Branch {
			return a.Branch < b.Branch
		}
		return a.Class < b.Class
	})
	return out
}

func checkStatement(slv *sat.Solver, p *dsl.Program, si int, rel *dataset.Relation) []Finding {
	s := &p.Stmts[si]
	var out []Finding

	// Self-dependency: ON inside GIVEN.
	for _, g := range s.Given {
		if g == s.On {
			out = append(out, Finding{
				Class: SelfDependency, Severity: Error, Stmt: si, Branch: -1, Other: -1,
				Message: fmt.Sprintf("dependent attribute %s appears in its own GIVEN set",
					dsl.AttrName(s.On, rel)),
			})
			break
		}
	}

	if len(s.Branches) == 0 {
		out = append(out, Finding{
			Class: DeadStatement, Severity: Error, Stmt: si, Branch: -1, Other: -1,
			Message: fmt.Sprintf("statement ON %s has no branches", dsl.AttrName(s.On, rel)),
		})
		return out
	}

	given := make(map[int]bool, len(s.Given))
	for _, g := range s.Given {
		given[g] = true
	}

	dead := make([]bool, len(s.Branches))
	for bi, b := range s.Branches {
		// Self-dependency: a condition atom testing the dependent attribute.
		for _, pr := range b.Cond {
			if pr.Attr == s.On {
				out = append(out, Finding{
					Class: SelfDependency, Severity: Error, Stmt: si, Branch: bi, Other: -1,
					Message: fmt.Sprintf("condition tests the dependent attribute %s",
						dsl.AttrName(s.On, rel)),
				})
			} else if !given[pr.Attr] {
				out = append(out, Finding{
					Class: DomainViolation, Severity: Warning, Stmt: si, Branch: bi, Other: -1,
					Message: fmt.Sprintf("condition tests %s, which is outside the GIVEN set",
						dsl.AttrName(pr.Attr, rel)),
				})
			}
		}

		// Domain checks against the dictionary.
		out = append(out, checkDomain(s, si, bi, rel)...)

		// Unsatisfiable condition: same attribute bound to two literals.
		if !slv.SatisfiableCond(b.Cond) {
			dead[bi] = true
			out = append(out, Finding{
				Class: Unreachable, Severity: Error, Stmt: si, Branch: bi, Other: -1,
				Message: fmt.Sprintf("condition %s is unsatisfiable (conflicting atoms on one attribute)",
					dsl.FormatCondition(b.Cond, rel)),
			})
			continue
		}

		// Subsumption against earlier live branches: first match wins, so a
		// branch implied by an earlier one never fires.
		for ei := 0; ei < bi; ei++ {
			if dead[ei] {
				continue
			}
			if !slv.ImpliesCond(b.Cond, s.Branches[ei].Cond) {
				continue
			}
			dead[bi] = true
			if s.Branches[ei].Value != b.Value {
				out = append(out, Finding{
					Class: Contradiction, Severity: Error, Stmt: si, Branch: bi, Other: ei,
					Message: fmt.Sprintf("%s is shadowed by branch %d, which assigns %s <- %s instead",
						dsl.FormatBranch(b, s.On, rel), ei,
						dsl.AttrName(s.On, rel), dsl.LiteralString(s.On, s.Branches[ei].Value, rel)),
				})
			} else {
				out = append(out, Finding{
					Class: Unreachable, Severity: Warning, Stmt: si, Branch: bi, Other: ei,
					Message: fmt.Sprintf("%s duplicates branch %d and never fires",
						dsl.FormatBranch(b, s.On, rel), ei),
				})
			}
			break
		}
	}

	// Dead statement: every branch unreachable.
	allDead := true
	for _, d := range dead {
		if !d {
			allDead = false
			break
		}
	}
	if allDead {
		out = append(out, Finding{
			Class: DeadStatement, Severity: Error, Stmt: si, Branch: -1, Other: -1,
			Message: fmt.Sprintf("statement ON %s has no reachable branch", dsl.AttrName(s.On, rel)),
		})
	}
	return out
}

// checkDomain validates branch bi of statement s (index si in the program)
// against rel's dictionary.
func checkDomain(s *dsl.Statement, si, bi int, rel *dataset.Relation) []Finding {
	var out []Finding
	b := s.Branches[bi]
	bad := func(attr int, v int32, what string) *Finding {
		if rel != nil {
			if attr < 0 || attr >= rel.NumAttrs() {
				return &Finding{Severity: Error, Message: fmt.Sprintf("%s attribute index %d is outside the schema", what, attr)}
			}
			if v != dataset.Missing && (v < 0 || int(v) >= rel.Cardinality(attr)) {
				return &Finding{Severity: Error, Message: fmt.Sprintf("%s literal code %d is not in the dictionary of %s (cardinality %d)",
					what, v, rel.Attr(attr), rel.Cardinality(attr))}
			}
		}
		if v == dataset.Missing {
			return &Finding{Severity: Warning, Message: fmt.Sprintf("%s asserts missingness of %s, which a constraint cannot test",
				what, dsl.AttrName(attr, rel))}
		}
		return nil
	}
	if f := bad(s.On, b.Value, "THEN"); f != nil {
		f.Class, f.Stmt, f.Branch, f.Other = DomainViolation, si, bi, -1
		out = append(out, *f)
	}
	for _, pr := range b.Cond {
		if f := bad(pr.Attr, pr.Value, "IF"); f != nil {
			f.Class, f.Stmt, f.Branch, f.Other = DomainViolation, si, bi, -1
			out = append(out, *f)
		}
	}
	return out
}

// checkCycles finds directed cycles in the determinant graph: an edge g → on
// for every statement "GIVEN ... g ... ON on". A cycle means rectification
// output depends on statement order (a determines b while b determines a),
// so the program is not a well-founded data-generating process.
func checkCycles(p *dsl.Program, rel *dataset.Relation) []Finding {
	type edge struct {
		to   int // dependent attribute
		stmt int // statement inducing the edge
	}
	adj := map[int][]edge{}
	for si, s := range p.Stmts {
		for _, g := range s.Given {
			adj[g] = append(adj[g], edge{to: s.On, stmt: si})
		}
	}
	nodes := make([]int, 0, len(adj))
	for a := range adj {
		nodes = append(nodes, a)
	}
	sort.Ints(nodes)

	const (
		unvisited = iota
		inStack
		done
	)
	state := map[int]int{}
	var pathAttrs []int // attributes on the current DFS path
	var pathStmts []int // pathStmts[i] is the statement of the edge into pathAttrs[i+1]
	var out []Finding
	seen := map[string]bool{} // canonical statement-set key -> reported

	var dfs func(a int)
	dfs = func(a int) {
		state[a] = inStack
		for _, e := range adj[a] {
			switch state[e.to] {
			case unvisited:
				pathAttrs = append(pathAttrs, e.to)
				pathStmts = append(pathStmts, e.stmt)
				dfs(e.to)
				pathAttrs = pathAttrs[:len(pathAttrs)-1]
				pathStmts = pathStmts[:len(pathStmts)-1]
			case inStack:
				// The cycle is the path suffix starting at e.to, closed by e.
				start := 0
				for i, pa := range pathAttrs {
					if pa == e.to {
						start = i
						break
					}
				}
				attrs := append([]int(nil), pathAttrs[start:]...)
				attrs = append(attrs, e.to)
				stmts := append([]int(nil), pathStmts[start:]...)
				stmts = append(stmts, e.stmt)
				out = append(out, reportCycle(attrs, stmts, rel, seen)...)
			}
		}
		state[a] = done
	}
	for _, a := range nodes {
		if state[a] == unvisited {
			pathAttrs = []int{a}
			pathStmts = nil
			dfs(a)
		}
	}
	return out
}

// reportCycle emits one Cycle finding per distinct statement set, anchored
// at the smallest statement index involved. attrs is the closed attribute
// walk (first == last); stmts the statements inducing each edge.
func reportCycle(attrs, stmts []int, rel *dataset.Relation, seen map[string]bool) []Finding {
	uniq := map[int]bool{}
	for _, s := range stmts {
		uniq[s] = true
	}
	ids := make([]int, 0, len(uniq))
	for s := range uniq {
		ids = append(ids, s)
	}
	sort.Ints(ids)
	key := fmt.Sprint(ids)
	if seen[key] {
		return nil
	}
	seen[key] = true

	var chain strings.Builder
	for i, a := range attrs {
		if i > 0 {
			chain.WriteString(" -> ")
		}
		chain.WriteString(dsl.AttrName(a, rel))
	}
	return []Finding{{
		Class: Cycle, Severity: Warning, Stmt: ids[0], Branch: -1, Other: -1,
		Message: fmt.Sprintf("determinant chain is cyclic (%s) across statements %v; rectification becomes order-sensitive",
			chain.String(), ids),
	}}
}
