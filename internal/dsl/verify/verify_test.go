package verify

import (
	"strings"
	"testing"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
)

// testRel builds a small relation: a,b,c,d each with 3 values "0","1","2".
func testRel(t *testing.T) *dataset.Relation {
	t.Helper()
	rel := dataset.New("t", []string{"a", "b", "c", "d"})
	for _, row := range [][]string{
		{"0", "0", "0", "0"},
		{"1", "1", "1", "1"},
		{"2", "2", "2", "2"},
	} {
		rel.AppendRow(row)
	}
	return rel
}

func branch(val int32, pairs ...int32) dsl.Branch {
	var c dsl.Condition
	for i := 0; i+1 < len(pairs); i += 2 {
		c = append(c, dsl.Pred{Attr: int(pairs[i]), Value: pairs[i+1]})
	}
	return dsl.Branch{Cond: c, Value: val}
}

// classes extracts the set of (class, severity) pairs found.
func classes(fs []Finding) map[Class][]Severity {
	out := map[Class][]Severity{}
	for _, f := range fs {
		out[f.Class] = append(out[f.Class], f.Severity)
	}
	return out
}

func TestDiagnostics(t *testing.T) {
	cases := []struct {
		name      string
		prog      *dsl.Program
		wantClass Class
		wantSev   Severity
		// wantStmt/wantBranch anchor the first finding of wantClass.
		wantStmt   int
		wantBranch int
	}{
		{
			name: "contradiction: equal conditions conflicting THEN",
			prog: &dsl.Program{Stmts: []dsl.Statement{{
				Given: []int{0}, On: 1,
				Branches: []dsl.Branch{
					branch(0, 0, 0),
					branch(1, 0, 0), // same condition a=0, assigns 1 instead of 0
				},
			}}},
			wantClass: Contradiction, wantSev: Error, wantStmt: 0, wantBranch: 1,
		},
		{
			name: "contradiction: more specific later branch shadowed with different value",
			prog: &dsl.Program{Stmts: []dsl.Statement{{
				Given: []int{0, 2}, On: 1,
				Branches: []dsl.Branch{
					branch(0, 0, 0),
					branch(1, 0, 0, 2, 1), // implies a=0, conflicting assignment
				},
			}}},
			wantClass: Contradiction, wantSev: Error, wantStmt: 0, wantBranch: 1,
		},
		{
			name: "unreachable: duplicate branch same value",
			prog: &dsl.Program{Stmts: []dsl.Statement{{
				Given: []int{0}, On: 1,
				Branches: []dsl.Branch{
					branch(0, 0, 0),
					branch(0, 0, 0),
				},
			}}},
			wantClass: Unreachable, wantSev: Warning, wantStmt: 0, wantBranch: 1,
		},
		{
			name: "unreachable: unsatisfiable condition",
			prog: &dsl.Program{Stmts: []dsl.Statement{{
				Given: []int{0}, On: 1,
				Branches: []dsl.Branch{
					branch(0, 0, 0, 0, 1), // a=0 AND a=1
					branch(1, 0, 2),
				},
			}}},
			wantClass: Unreachable, wantSev: Error, wantStmt: 0, wantBranch: 0,
		},
		{
			name: "self-dependency: ON inside GIVEN",
			prog: &dsl.Program{Stmts: []dsl.Statement{{
				Given: []int{0, 1}, On: 1,
				Branches: []dsl.Branch{branch(0, 0, 0)},
			}}},
			wantClass: SelfDependency, wantSev: Error, wantStmt: 0, wantBranch: -1,
		},
		{
			name: "self-dependency: condition tests ON",
			prog: &dsl.Program{Stmts: []dsl.Statement{{
				Given: []int{0}, On: 1,
				Branches: []dsl.Branch{branch(0, 1, 2)}, // IF b=2 THEN b<-0
			}}},
			wantClass: SelfDependency, wantSev: Error, wantStmt: 0, wantBranch: 0,
		},
		{
			name: "cycle: a determines b, b determines a",
			prog: &dsl.Program{Stmts: []dsl.Statement{
				{Given: []int{0}, On: 1, Branches: []dsl.Branch{branch(0, 0, 0)}},
				{Given: []int{1}, On: 0, Branches: []dsl.Branch{branch(0, 1, 0)}},
			}},
			wantClass: Cycle, wantSev: Warning, wantStmt: 0, wantBranch: -1,
		},
		{
			name: "domain violation: literal outside dictionary",
			prog: &dsl.Program{Stmts: []dsl.Statement{{
				Given: []int{0}, On: 1,
				Branches: []dsl.Branch{branch(9, 0, 0)}, // THEN b <- code 9, card 3
			}}},
			wantClass: DomainViolation, wantSev: Error, wantStmt: 0, wantBranch: 0,
		},
		{
			name: "domain violation: condition literal outside dictionary",
			prog: &dsl.Program{Stmts: []dsl.Statement{{
				Given: []int{0}, On: 1,
				Branches: []dsl.Branch{branch(0, 0, 77)},
			}}},
			wantClass: DomainViolation, wantSev: Error, wantStmt: 0, wantBranch: 0,
		},
		{
			name: "dead statement: no branches",
			prog: &dsl.Program{Stmts: []dsl.Statement{{
				Given: []int{0}, On: 1,
			}}},
			wantClass: DeadStatement, wantSev: Error, wantStmt: 0, wantBranch: -1,
		},
		{
			name: "dead statement: every branch unreachable",
			prog: &dsl.Program{Stmts: []dsl.Statement{{
				Given: []int{0}, On: 1,
				Branches: []dsl.Branch{
					branch(0, 0, 0, 0, 1), // unsatisfiable
					branch(1, 0, 2, 0, 1), // unsatisfiable
				},
			}}},
			wantClass: DeadStatement, wantSev: Error, wantStmt: 0, wantBranch: -1,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rel := testRel(t)
			fs := Program(tc.prog, rel)
			var hit *Finding
			for i := range fs {
				if fs[i].Class == tc.wantClass {
					hit = &fs[i]
					break
				}
			}
			if hit == nil {
				t.Fatalf("no %v finding; got %v", tc.wantClass, fs)
			}
			if hit.Severity != tc.wantSev {
				t.Errorf("severity = %v, want %v (%s)", hit.Severity, tc.wantSev, hit)
			}
			if hit.Stmt != tc.wantStmt || hit.Branch != tc.wantBranch {
				t.Errorf("location = stmt %d branch %d, want stmt %d branch %d (%s)",
					hit.Stmt, hit.Branch, tc.wantStmt, tc.wantBranch, hit)
			}
			if hit.Message == "" {
				t.Error("finding has empty message")
			}
		})
	}
}

func TestCleanProgramHasNoFindings(t *testing.T) {
	rel := testRel(t)
	prog := &dsl.Program{Stmts: []dsl.Statement{
		{Given: []int{0}, On: 1, Branches: []dsl.Branch{
			branch(0, 0, 0), branch(1, 0, 1), branch(2, 0, 2),
		}},
		{Given: []int{1, 2}, On: 3, Branches: []dsl.Branch{
			branch(0, 1, 0, 2, 0), branch(1, 1, 1, 2, 1),
		}},
	}}
	if fs := Program(prog, rel); len(fs) != 0 {
		t.Fatalf("clean program produced findings: %v", fs)
	}
}

func TestFindingsUseSurfaceNames(t *testing.T) {
	rel := testRel(t)
	prog := &dsl.Program{Stmts: []dsl.Statement{{
		Given: []int{0}, On: 1,
		Branches: []dsl.Branch{branch(0, 0, 0), branch(1, 0, 0)},
	}}}
	fs := Program(prog, rel)
	if len(fs) == 0 {
		t.Fatal("expected findings")
	}
	joined := ""
	for _, f := range fs {
		joined += f.String() + "\n"
	}
	for _, want := range []string{"IF a =", "b <-", "[contradiction]"} {
		if !strings.Contains(joined, want) {
			t.Errorf("rendered findings missing %q:\n%s", want, joined)
		}
	}
}

func TestNilRelFallsBackToPositionalNames(t *testing.T) {
	prog := &dsl.Program{Stmts: []dsl.Statement{{
		Given: []int{0}, On: 1,
		Branches: []dsl.Branch{branch(0, 0, 0), branch(1, 0, 0)},
	}}}
	fs := Program(prog, nil)
	if !HasErrors(fs) {
		t.Fatalf("contradiction not found without rel: %v", fs)
	}
	found := false
	for _, f := range fs {
		if strings.Contains(f.Message, "attr#") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected positional attr names in %v", fs)
	}
}

func TestHasErrors(t *testing.T) {
	if HasErrors(nil) {
		t.Error("empty findings should have no errors")
	}
	if HasErrors([]Finding{{Severity: Warning}}) {
		t.Error("warnings alone are not errors")
	}
	if !HasErrors([]Finding{{Severity: Warning}, {Severity: Error}}) {
		t.Error("error finding not detected")
	}
}

// TestThreeStatementCycle exercises cycle detection beyond the pairwise case.
func TestThreeStatementCycle(t *testing.T) {
	rel := testRel(t)
	prog := &dsl.Program{Stmts: []dsl.Statement{
		{Given: []int{0}, On: 1, Branches: []dsl.Branch{branch(0, 0, 0)}},
		{Given: []int{1}, On: 2, Branches: []dsl.Branch{branch(0, 1, 0)}},
		{Given: []int{2}, On: 0, Branches: []dsl.Branch{branch(0, 2, 0)}},
	}}
	fs := Program(prog, rel)
	cycles := 0
	for _, f := range fs {
		if f.Class == Cycle {
			cycles++
			if !strings.Contains(f.Message, "a -> b -> c -> a") {
				t.Errorf("unexpected cycle chain: %s", f.Message)
			}
		}
	}
	if cycles != 1 {
		t.Fatalf("want exactly 1 cycle finding, got %d: %v", cycles, fs)
	}
}

// TestAcyclicChainHasNoCycleFinding: a -> b -> c is a chain, not a cycle.
func TestAcyclicChainHasNoCycleFinding(t *testing.T) {
	rel := testRel(t)
	prog := &dsl.Program{Stmts: []dsl.Statement{
		{Given: []int{0}, On: 1, Branches: []dsl.Branch{branch(0, 0, 0)}},
		{Given: []int{1}, On: 2, Branches: []dsl.Branch{branch(0, 1, 0)}},
	}}
	for _, f := range Program(prog, rel) {
		if f.Class == Cycle {
			t.Fatalf("chain flagged as cycle: %s", f)
		}
	}
}
