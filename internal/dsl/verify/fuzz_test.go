package verify

import (
	"testing"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
)

// FuzzVerify decodes arbitrary bytes into a program (mirroring the grammar
// the way dsl.FuzzParse mirrors the surface syntax) and asserts the
// verifier never panics and anchors every finding inside the program —
// even on programs whose indices stray outside the schema.
func FuzzVerify(f *testing.F) {
	f.Add([]byte{1, 1, 0, 1, 1, 0, 0})
	f.Add([]byte{2, 1, 0, 1, 2, 0, 0, 1, 0, 0, 1, 1, 1, 0, 2, 1, 1, 0})
	f.Add([]byte{0})
	f.Add([]byte{3, 0, 9, 0, 200, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		prog := decodeProgram(data)
		rel := dataset.New("t", []string{"a", "b", "c", "d"})
		rel.AppendRow([]string{"0", "0", "0", "0"})
		rel.AppendRow([]string{"1", "1", "1", "1"})

		for _, r := range []*dataset.Relation{rel, nil} {
			fs := Program(prog, r)
			for _, fd := range fs {
				if fd.Stmt < 0 || fd.Stmt >= len(prog.Stmts) {
					t.Fatalf("finding outside program: %+v (program has %d stmts)", fd, len(prog.Stmts))
				}
				if fd.Branch >= len(prog.Stmts[fd.Stmt].Branches) {
					t.Fatalf("finding outside statement: %+v", fd)
				}
				if fd.Message == "" {
					t.Fatalf("empty message: %+v", fd)
				}
			}
		}
	})
}

// decodeProgram deterministically maps bytes to a program. Attribute and
// literal values are taken modulo a range slightly larger than the test
// schema so out-of-domain indices are exercised too.
func decodeProgram(data []byte) *dsl.Program {
	i := 0
	next := func() int {
		if i >= len(data) {
			return 0
		}
		v := int(data[i])
		i++
		return v
	}
	prog := &dsl.Program{}
	nStmts := next() % 5
	for s := 0; s < nStmts; s++ {
		var st dsl.Statement
		nGiven := next() % 4
		for g := 0; g < nGiven; g++ {
			st.Given = append(st.Given, next()%6-1)
		}
		st.On = next()%6 - 1
		nBranches := next() % 5
		for b := 0; b < nBranches; b++ {
			var br dsl.Branch
			nAtoms := next() % 4
			for a := 0; a < nAtoms; a++ {
				br.Cond = append(br.Cond, dsl.Pred{
					Attr:  next()%6 - 1,
					Value: int32(next()%5 - 2),
				})
			}
			br.Value = int32(next()%5 - 2)
			st.Branches = append(st.Branches, br)
		}
		prog.Stmts = append(prog.Stmts, st)
	}
	return prog
}
