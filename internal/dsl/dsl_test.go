package dsl

import (
	"testing"

	"github.com/guardrail-db/guardrail/internal/dataset"
)

// zipRel builds the running PostalCode/City/State example with one
// corrupted row ("gibbon").
func zipRel(t *testing.T) *dataset.Relation {
	t.Helper()
	r := dataset.New("zip", []string{"PostalCode", "City", "State"})
	rows := [][]string{
		{"94704", "Berkeley", "CA"},
		{"94704", "Berkeley", "CA"},
		{"94704", "gibbon", "CA"}, // corrupted City
		{"10001", "NewYork", "NY"},
		{"10001", "NewYork", "NY"},
		{"60601", "Chicago", "IL"},
	}
	for _, row := range rows {
		if err := r.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// zipProgram builds GIVEN PostalCode ON City with one branch per code.
func zipProgram(t *testing.T, rel *dataset.Relation) *Program {
	t.Helper()
	pc, city := rel.AttrIndex("PostalCode"), rel.AttrIndex("City")
	mk := func(code, val string) Branch {
		c, ok := rel.Dict(pc).Lookup(code)
		if !ok {
			t.Fatalf("code %s missing", code)
		}
		v, ok := rel.Dict(city).Lookup(val)
		if !ok {
			t.Fatalf("city %s missing", val)
		}
		return Branch{Cond: Condition{{Attr: pc, Value: c}}, Value: v}
	}
	return &Program{Stmts: []Statement{{
		Given:    []int{pc},
		On:       city,
		Branches: []Branch{mk("94704", "Berkeley"), mk("10001", "NewYork"), mk("60601", "Chicago")},
	}}}
}

func TestEvalAssignsDependent(t *testing.T) {
	rel := zipRel(t)
	p := zipProgram(t, rel)
	row := rel.Row(2, nil) // the gibbon row
	out := p.Eval(row)
	city := rel.AttrIndex("City")
	if rel.Dict(city).Value(out[city]) != "Berkeley" {
		t.Fatalf("Eval assigned %q", rel.Dict(city).Value(out[city]))
	}
	// Input must be untouched.
	if rel.Dict(city).Value(row[city]) != "gibbon" {
		t.Fatal("Eval mutated its input")
	}
}

func TestDetectFindsOnlyCorruptedRow(t *testing.T) {
	rel := zipRel(t)
	p := zipProgram(t, rel)
	for i := 0; i < rel.NumRows(); i++ {
		v := p.Detect(rel.Row(i, nil))
		if i == 2 && len(v) != 1 {
			t.Fatalf("row 2 should have 1 violation, got %v", v)
		}
		if i != 2 && len(v) != 0 {
			t.Fatalf("row %d should be clean, got %v", i, v)
		}
	}
	v := p.Detect(rel.Row(2, nil))[0]
	if v.Attr != rel.AttrIndex("City") {
		t.Fatalf("violation attr = %d", v.Attr)
	}
	if rel.Dict(v.Attr).Value(v.Expected) != "Berkeley" {
		t.Fatalf("expected value = %q", rel.Dict(v.Attr).Value(v.Expected))
	}
}

func TestRectify(t *testing.T) {
	rel := zipRel(t)
	p := zipProgram(t, rel)
	row := rel.Row(2, nil)
	n := p.Rectify(row)
	if n != 1 {
		t.Fatalf("Rectify changed %d cells, want 1", n)
	}
	city := rel.AttrIndex("City")
	if rel.Dict(city).Value(row[city]) != "Berkeley" {
		t.Fatal("Rectify did not fix the city")
	}
	if p.Rectify(row) != 0 {
		t.Fatal("second Rectify should be a no-op")
	}
}

func TestBranchLossAndSupport(t *testing.T) {
	rel := zipRel(t)
	p := zipProgram(t, rel)
	s := p.Stmts[0]
	// Branch 0 (94704 -> Berkeley): 3 matching rows, 1 wrong.
	loss, support := BranchLoss(s.Branches[0], s.On, rel)
	if support != 3 || loss != 1 {
		t.Fatalf("loss=%d support=%d, want 1/3", loss, support)
	}
	if got := BranchSupport(s.Branches[0], rel); got != 3 {
		t.Fatalf("BranchSupport = %d", got)
	}
}

func TestEpsValidity(t *testing.T) {
	rel := zipRel(t)
	p := zipProgram(t, rel)
	if EpsValid(p, rel, 0.1) {
		t.Fatal("program should not be 0.1-valid (1/3 loss on branch 0)")
	}
	if !EpsValid(p, rel, 0.5) {
		t.Fatal("program should be 0.5-valid")
	}
	if !EpsValidStatement(p.Stmts[0], rel, 0.34) {
		t.Fatal("statement should be 0.34-valid")
	}
}

func TestCoverage(t *testing.T) {
	rel := zipRel(t)
	p := zipProgram(t, rel)
	// All 6 rows match some branch: coverage 1.
	if got := Coverage(p, rel); got != 1 {
		t.Fatalf("coverage = %g, want 1", got)
	}
	if got := StatementCoverage(p.Stmts[0], rel); got != 1 {
		t.Fatalf("stmt coverage = %g", got)
	}
	// Empty program covers nothing.
	if got := Coverage(&Program{}, rel); got != 0 {
		t.Fatalf("empty coverage = %g", got)
	}
	// Drop one branch: coverage 5/6.
	p2 := &Program{Stmts: []Statement{{
		Given:    p.Stmts[0].Given,
		On:       p.Stmts[0].On,
		Branches: p.Stmts[0].Branches[:2],
	}}}
	if got := Coverage(p2, rel); got < 0.83 || got > 0.84 {
		t.Fatalf("partial coverage = %g, want 5/6", got)
	}
}

func TestLossTotal(t *testing.T) {
	rel := zipRel(t)
	p := zipProgram(t, rel)
	if got := Loss(p, rel); got != 1 {
		t.Fatalf("Loss = %d, want 1", got)
	}
}

func TestValidate(t *testing.T) {
	rel := zipRel(t)
	p := zipProgram(t, rel)
	if err := p.Validate(rel); err != nil {
		t.Fatal(err)
	}
	bad := &Program{Stmts: []Statement{{Given: []int{0}, On: 99, Branches: []Branch{{Value: 0}}}}}
	if err := bad.Validate(rel); err == nil {
		t.Fatal("out-of-range ON accepted")
	}
	bad2 := &Program{Stmts: []Statement{{Given: nil, On: 1, Branches: []Branch{{Value: 0}}}}}
	if err := bad2.Validate(rel); err == nil {
		t.Fatal("empty GIVEN accepted")
	}
	bad3 := &Program{Stmts: []Statement{{Given: []int{1}, On: 1, Branches: []Branch{{Value: 0}}}}}
	if err := bad3.Validate(rel); err == nil {
		t.Fatal("ON in GIVEN accepted")
	}
	bad4 := &Program{Stmts: []Statement{{Given: []int{0}, On: 1, Branches: nil}}}
	if err := bad4.Validate(rel); err == nil {
		t.Fatal("empty HAVING accepted")
	}
	bad5 := &Program{Stmts: []Statement{{Given: []int{0}, On: 1, Branches: []Branch{{Value: 999}}}}}
	if err := bad5.Validate(rel); err == nil {
		t.Fatal("out-of-dictionary literal accepted")
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	rel := zipRel(t)
	p := zipProgram(t, rel)
	text := Format(p, rel)
	p2, err := Parse(text, rel)
	if err != nil {
		t.Fatalf("parse error: %v\n%s", err, text)
	}
	if Format(p2, rel) != text {
		t.Fatalf("round trip changed program:\n%s\nvs\n%s", text, Format(p2, rel))
	}
	// Behaviourally identical on every row.
	for i := 0; i < rel.NumRows(); i++ {
		if len(p.Detect(rel.Row(i, nil))) != len(p2.Detect(rel.Row(i, nil))) {
			t.Fatalf("round-tripped program behaves differently on row %d", i)
		}
	}
}

func TestParseMultiStatementAndConjunction(t *testing.T) {
	rel := zipRel(t)
	src := `
GIVEN PostalCode ON City HAVING
  IF PostalCode = "94704" THEN City <- "Berkeley";
GIVEN City, State ON PostalCode HAVING
  IF City = "Berkeley" AND State = "CA" THEN PostalCode <- "94704";
`
	p, err := Parse(src, rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stmts) != 2 {
		t.Fatalf("parsed %d statements", len(p.Stmts))
	}
	if len(p.Stmts[1].Given) != 2 || len(p.Stmts[1].Branches[0].Cond) != 2 {
		t.Fatalf("conjunction not parsed: %+v", p.Stmts[1])
	}
}

func TestParseErrors(t *testing.T) {
	rel := zipRel(t)
	cases := []string{
		`GIVEN Nope ON City HAVING IF Nope = "x" THEN City <- "y";`,
		`GIVEN PostalCode ON City HAVING`,
		`IF PostalCode = "94704" THEN City <- "Berkeley";`,
		`GIVEN PostalCode ON City HAVING IF PostalCode = "1" THEN State <- "CA";`,
		`GIVEN PostalCode ON City HAVING IF PostalCode "1" THEN City <- "x";`,
		`GIVEN PostalCode ON City HAVING IF PostalCode = "unterminated`,
	}
	for _, src := range cases {
		if _, err := Parse(src, rel); err == nil {
			t.Fatalf("no error for %q", src)
		}
	}
}

func TestParseInternsNewLiterals(t *testing.T) {
	rel := zipRel(t)
	before := rel.Cardinality(rel.AttrIndex("City"))
	if _, err := Parse(`GIVEN PostalCode ON City HAVING IF PostalCode = "94704" THEN City <- "Oakland";`, rel); err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality(rel.AttrIndex("City")) != before+1 {
		t.Fatal("new literal not interned")
	}
}
