package dsl

import (
	"sort"

	"github.com/guardrail-db/guardrail/internal/dataset"
)

// ProgramStats summarizes a program's shape for reporting and tooling.
type ProgramStats struct {
	Statements int
	Branches   int
	// GovernedAttrs are the dependent (ON) attributes, ascending.
	GovernedAttrs []int
	// DeterminantAttrs are all attributes used in GIVEN clauses, ascending.
	DeterminantAttrs []int
	// MaxGiven is the widest determinant set.
	MaxGiven int
	// MaxCondWidth is the widest branch condition.
	MaxCondWidth int
}

// Analyze computes ProgramStats.
func Analyze(p *Program) ProgramStats {
	st := ProgramStats{Statements: len(p.Stmts)}
	governed := map[int]bool{}
	determinants := map[int]bool{}
	for _, s := range p.Stmts {
		st.Branches += len(s.Branches)
		governed[s.On] = true
		if len(s.Given) > st.MaxGiven {
			st.MaxGiven = len(s.Given)
		}
		for _, g := range s.Given {
			determinants[g] = true
		}
		for _, b := range s.Branches {
			if len(b.Cond) > st.MaxCondWidth {
				st.MaxCondWidth = len(b.Cond)
			}
		}
	}
	st.GovernedAttrs = sortedKeys(governed)
	st.DeterminantAttrs = sortedKeys(determinants)
	return st
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Simplify returns a semantically equivalent program with redundancy
// removed:
//
//   - duplicate branches (same condition and value) within a statement
//     collapse to one;
//   - branches whose condition duplicates an earlier branch's condition
//     are unreachable (the first match wins) and are dropped;
//   - statements with identical (GIVEN, ON) clauses merge;
//   - statements left with no branches are dropped.
//
// Equivalence holds because Eval/Detect/Rectify all use first-match branch
// semantics within a statement and apply statements independently.
func Simplify(p *Program) *Program {
	merged := map[string]*Statement{}
	var order []string
	for _, s := range p.Stmts {
		key := stmtKey(s)
		if existing, ok := merged[key]; ok {
			existing.Branches = append(existing.Branches, s.Branches...)
			continue
		}
		cp := Statement{
			Given:    append([]int(nil), s.Given...),
			On:       s.On,
			Branches: append([]Branch(nil), s.Branches...),
		}
		merged[key] = &cp
		order = append(order, key)
	}
	out := &Program{}
	for _, key := range order {
		s := merged[key]
		seenCond := map[string]bool{}
		var kept []Branch
		for _, b := range s.Branches {
			ck := condKey(b.Cond)
			if seenCond[ck] {
				continue // unreachable: an earlier branch owns this condition
			}
			seenCond[ck] = true
			kept = append(kept, b)
		}
		if len(kept) == 0 {
			continue
		}
		out.Stmts = append(out.Stmts, Statement{Given: s.Given, On: s.On, Branches: kept})
	}
	return out
}

func stmtKey(s Statement) string {
	g := append([]int(nil), s.Given...)
	sort.Ints(g)
	key := make([]byte, 0, 4*(len(g)+1))
	for _, a := range g {
		key = appendInt(key, a)
		key = append(key, ',')
	}
	key = append(key, '>')
	return string(appendInt(key, s.On))
}

func condKey(c Condition) string {
	sorted := append(Condition(nil), c...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Attr < sorted[j].Attr })
	key := make([]byte, 0, 8*len(sorted))
	for _, p := range sorted {
		key = appendInt(key, p.Attr)
		key = append(key, '=')
		key = appendInt(key, int(p.Value))
		key = append(key, ';')
	}
	return string(key)
}

func appendInt(b []byte, v int) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var digits [12]byte
	i := len(digits)
	for {
		i--
		digits[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, digits[i:]...)
}

// Equivalent reports whether two programs behave identically on every row
// of rel: the same violation verdict per row (duplicate statements fire
// duplicate violations, so counts are not compared) and the same rectified
// output.
func Equivalent(a, b *Program, rel *dataset.Relation) bool {
	rowA := make([]int32, rel.NumAttrs())
	rowB := make([]int32, rel.NumAttrs())
	for i := 0; i < rel.NumRows(); i++ {
		rowA = rel.Row(i, rowA)
		rowB = rel.Row(i, rowB)
		va, vb := a.Detect(rowA), b.Detect(rowB)
		if (len(va) > 0) != (len(vb) > 0) {
			return false
		}
		a.Rectify(rowA)
		b.Rectify(rowB)
		for c := range rowA {
			if rowA[c] != rowB[c] {
				return false
			}
		}
	}
	return true
}
