package analysis

import (
	"testing"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/smt/sat"
)

// fuzzRows enumerates every row over dom plus the Missing sentinel.
func fuzzRows(dom sat.Domains) [][]int32 {
	rows := [][]int32{{}}
	for a := 0; a < len(dom); a++ {
		values := []int32{dataset.Missing}
		for v := int32(0); int(v) < dom.Card(a); v++ {
			values = append(values, v)
		}
		var next [][]int32
		for _, r := range rows {
			for _, v := range values {
				next = append(next, append(append([]int32(nil), r...), v))
			}
		}
		rows = next
	}
	return rows
}

func sameBehavior(a, b *dsl.Program, row []int32) bool {
	ea, eb := a.Eval(row), b.Eval(row)
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return (len(a.Detect(row)) > 0) == (len(b.Detect(row)) > 0)
}

// FuzzAnalysis decodes arbitrary bytes into one or two small programs over
// a 3-attribute schema and asserts the semantic guarantees the synthesizer
// relies on: the passes never panic, minimization is behavior-preserving
// (checked by brute-force row enumeration over the widened universe, not
// by the solver that produced it), the minimizer's own proof bit agrees,
// and equal canonical forms imply programs that behave identically on
// every universe row.
func FuzzAnalysis(f *testing.F) {
	f.Add([]byte{1, 0, 2, 2, 1, 0, 0, 1, 1, 1, 0})
	f.Add([]byte{2, 0, 2, 1, 1, 0, 0, 1, 2, 2, 2, 0, 1, 1, 2})
	f.Add([]byte{0})
	f.Add([]byte{2, 2, 2, 3, 9, 9, 9, 9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8})
	dom := sat.Domains{2, 3, 2}
	rel := dataset.New("t", []string{"a", "b", "c"})
	rel.AppendRow([]string{"a0", "b0", "c0"})
	rel.AppendRow([]string{"a1", "b1", "c1"})
	rel.AppendRow([]string{"a0", "b2", "c0"})
	f.Fuzz(func(t *testing.T, data []byte) {
		i := 0
		next := func() int {
			if i >= len(data) {
				return 0
			}
			b := data[i]
			i++
			return int(b)
		}
		decode := func() *dsl.Program {
			p := &dsl.Program{}
			nStmts := 1 + next()%2
			for s := 0; s < nStmts; s++ {
				st := dsl.Statement{Given: []int{next() % 3}, On: next() % 3}
				nBr := next() % 4
				for b := 0; b < nBr; b++ {
					br := dsl.Branch{Value: int32(next()%6) - 1}
					nAtoms := next() % 3
					for a := 0; a < nAtoms; a++ {
						br.Cond = append(br.Cond, dsl.Pred{Attr: next() % 3, Value: int32(next()%6) - 1})
					}
					st.Branches = append(st.Branches, br)
				}
				p.Stmts = append(p.Stmts, st)
			}
			return p
		}
		p1, p2 := decode(), decode()

		// Crash-freedom of the full pass pipeline, arbitrary program.
		rpt := Program(p1, rel)
		if rpt.Fingerprint != Fingerprint(rpt.Canon) {
			t.Fatal("report fingerprint does not hash its canonical form")
		}

		// Minimization: proved, and actually behavior-preserving over the
		// widened universe the liveness verdicts were judged in.
		min, proved, _ := Minimize(p1, dom)
		if !proved {
			t.Fatalf("minimizer proof failed for %+v", p1)
		}
		for _, row := range fuzzRows(widen(dom, p1)) {
			if !sameBehavior(p1, min, row) {
				t.Fatalf("minimized program diverges on row %v:\norig %+v\nmin  %+v", row, p1, min)
			}
		}

		// Equal canonical forms must mean equal behavior on every base row.
		c1, _ := Canon(p1, dom)
		c2, _ := Canon(p2, dom)
		if c1 == c2 {
			for _, row := range fuzzRows(dom) {
				if !sameBehavior(p1, p2, row) {
					t.Fatalf("canon-equal programs diverge on row %v (canon %q):\np1 %+v\np2 %+v", row, c1, p1, p2)
				}
			}
		}
	})
}
