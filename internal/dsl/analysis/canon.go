// Canonical semantic forms, fingerprints, and the semantics-preserving
// minimizer.
//
// The canonical form of a program keeps exactly what determines its
// runtime behavior and nothing else: statement order (Rectify mutates the
// row sequentially, so interfering statements are order-sensitive), each
// statement's dependent attribute, and its live branches in order with
// guards rendered as sorted atom sets. GIVEN clauses, dead branches, and
// no-op statements are erased. Equal canonical forms therefore imply
// semantically equivalent programs — the property the synthesizer's
// dedup pass relies on.
//
// Soundness of the erasures is judged over a *widened* universe: each
// attribute's domain is raised to include every literal the program
// mentions (guards and assigned values), plus the Missing sentinel. Any
// row the program can ever see — an input row over the dictionary, or an
// intermediate state produced by its own assignments — lies inside that
// universe, so a branch whose region is empty over it can truly never
// fire.

package analysis

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/smt/sat"
)

// widen raises each bounded attribute domain of dom to cover every
// non-Missing literal p mentions, extending the slice when p names
// attributes beyond it. Unbounded domains stay unbounded.
func widen(dom sat.Domains, p *dsl.Program) sat.Domains {
	need := func(a int, v int32) int {
		if v < 0 { // Missing or invalid: never enlarges a value domain
			return 0
		}
		return int(v) + 1
	}
	maxAttr := len(dom) - 1
	for _, st := range p.Stmts {
		if st.On > maxAttr {
			maxAttr = st.On
		}
		for _, b := range st.Branches {
			for _, pr := range b.Cond {
				if pr.Attr > maxAttr {
					maxAttr = pr.Attr
				}
			}
		}
	}
	out := make(sat.Domains, maxAttr+1)
	for a := range out {
		out[a] = dom.Card(a)
	}
	bump := func(a int, v int32) {
		if a < 0 || out[a] == 0 { // unbounded already covers every value
			return
		}
		if n := need(a, v); n > out[a] {
			out[a] = n
		}
	}
	for _, st := range p.Stmts {
		for _, b := range st.Branches {
			bump(st.On, b.Value)
			for _, pr := range b.Cond {
				bump(pr.Attr, pr.Value)
			}
		}
	}
	return out
}

// Widen exposes the canonicalizer's universe widening: each bounded
// attribute domain of dom is raised to cover every literal p mentions, so
// any row the program can see — input or intermediate state — lies inside
// the returned Domains. The compiler's translation validator shares this
// universe so its equivalence proofs quantify over the same row set as
// Canon.
func Widen(dom sat.Domains, p *dsl.Program) sat.Domains { return widen(dom, p) }

// Canon returns the canonical semantic form of p over the runtime row
// universe derived from dom, plus the number of solver queries spent.
// Equal canonical forms imply semantically equivalent programs; the
// converse does not hold (canonicalization is sound, not complete).
func Canon(p *dsl.Program, dom sat.Domains) (string, int64) {
	if p == nil {
		return "", 0
	}
	s := sat.NewSolver(widen(dom, p))
	var b strings.Builder
	for _, st := range p.Stmts {
		live := liveMask(s, st)
		if !hasLive(live) {
			continue // no-op statement
		}
		fmt.Fprintf(&b, "S%d[", st.On)
		for bi, br := range st.Branches {
			if !live[bi] {
				continue
			}
			b.WriteByte('(')
			for ai, atom := range canonAtoms(br.Cond) {
				if ai > 0 {
					b.WriteByte('&')
				}
				fmt.Fprintf(&b, "%d=%d", atom.Attr, atom.Value)
			}
			fmt.Fprintf(&b, ">%d)", br.Value)
		}
		b.WriteByte(']')
	}
	return b.String(), s.Calls()
}

// canonAtoms sorts a guard's atoms by (attr, value) and drops exact
// duplicates. A live guard binds each attribute to at most one value
// (conflicting atoms make it unsatisfiable), so the sorted unique atom
// list is a canonical representation of the matched row set.
func canonAtoms(c dsl.Condition) []dsl.Pred {
	atoms := append([]dsl.Pred(nil), c...)
	sort.Slice(atoms, func(i, j int) bool {
		if atoms[i].Attr != atoms[j].Attr {
			return atoms[i].Attr < atoms[j].Attr
		}
		return atoms[i].Value < atoms[j].Value
	})
	out := atoms[:0]
	for i, a := range atoms {
		if i > 0 && a == atoms[i-1] {
			continue
		}
		out = append(out, a)
	}
	return out
}

// Fingerprint hashes a canonical form to 64 bits (FNV-1a) for compact
// reporting. Dedup decisions compare full canonical strings, never
// fingerprints, so hash collisions cannot merge inequivalent programs.
func Fingerprint(canon string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(canon)) // fnv.Write is documented to never fail
	return h.Sum64()
}

// Minimize returns p with dead branches and no-op statements removed —
// the executable counterpart of Canon — together with a proof bit and
// the solver queries spent. The proof re-derives equivalence from
// scratch: every kept statement is checked to subsume its original and
// vice versa, so a minimizer bug cannot silently change semantics
// (proved=false flags it instead). The input program is not mutated.
func Minimize(p *dsl.Program, dom sat.Domains) (min *dsl.Program, proved bool, calls int64) {
	min = &dsl.Program{}
	if p == nil {
		return min, true, 0
	}
	s := sat.NewSolver(widen(dom, p))
	proved = true
	for _, st := range p.Stmts {
		live := liveMask(s, st)
		pruned := dsl.Statement{Given: append([]int(nil), st.Given...), On: st.On}
		for bi, b := range st.Branches {
			if live[bi] {
				pruned.Branches = append(pruned.Branches, b)
			}
		}
		// Independent equivalence proof for this statement: recompute both
		// live masks and check containment in both directions. For a
		// dropped statement (no live branches) both checks are vacuous and
		// the liveness recomputation itself is the no-op proof.
		origLive := liveMask(s, st)
		prunedLive := liveMask(s, pruned)
		if !subsumes(s, st, origLive, pruned, prunedLive) ||
			!subsumes(s, pruned, prunedLive, st, origLive) {
			proved = false
		}
		if len(pruned.Branches) > 0 {
			min.Stmts = append(min.Stmts, pruned)
		}
	}
	return min, proved, s.Calls()
}
