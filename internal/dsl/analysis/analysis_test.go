package analysis

import (
	"testing"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/smt/sat"
)

// cond builds a conjunction from (attr, value) pairs.
func cond(kv ...int) dsl.Condition {
	c := make(dsl.Condition, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		c = append(c, dsl.Pred{Attr: kv[i], Value: int32(kv[i+1])})
	}
	return c
}

// testRel: attributes a (cardinality 2), b (3), c (2).
func testRel() *dataset.Relation {
	rel := dataset.New("t", []string{"a", "b", "c"})
	rel.AppendRow([]string{"a0", "b0", "c0"})
	rel.AppendRow([]string{"a1", "b1", "c1"})
	rel.AppendRow([]string{"a0", "b2", "c0"})
	return rel
}

func find(fs []Finding, cl Class, stmt, branch int) *Finding {
	for i := range fs {
		if fs[i].Class == cl && fs[i].Stmt == stmt && fs[i].Branch == branch {
			return &fs[i]
		}
	}
	return nil
}

func TestDeadBranchUnsatAndShadow(t *testing.T) {
	p := &dsl.Program{Stmts: []dsl.Statement{{
		Given: []int{0, 1}, On: 2,
		Branches: []dsl.Branch{
			{Cond: cond(0, 0), Value: 0},
			{Cond: cond(0, 0, 1, 1), Value: 1}, // shadowed by branch 0
			{Cond: cond(0, 5), Value: 0},       // literal outside dom(a)={a0,a1}
		},
	}}}
	rpt := Program(p, testRel())
	sh := find(rpt.Findings, DeadBranch, 0, 1)
	if sh == nil || sh.Severity != Warning || sh.Other != 0 {
		t.Errorf("shadowed branch finding = %+v, want warning with Other=0", sh)
	}
	un := find(rpt.Findings, DeadBranch, 0, 2)
	if un == nil || un.Severity != Error {
		t.Errorf("unsatisfiable branch finding = %+v, want error", un)
	}
}

// TestUnionShadowing: the DNF-level verdict verify's pairwise check cannot
// reach — a guard dead only because the union of earlier guards is
// exhaustive.
func TestUnionShadowing(t *testing.T) {
	p := &dsl.Program{Stmts: []dsl.Statement{{
		Given: []int{0, 1}, On: 2,
		Branches: []dsl.Branch{
			{Cond: cond(1, 0), Value: 0},
			{Cond: cond(1, 1), Value: 0},
			{Cond: cond(1, 2), Value: 0},
			{Cond: cond(1, -1), Value: 0}, // b is missing
			{Cond: cond(0, 0), Value: 1},  // covered by the union over dom(b)
		},
	}}}
	rpt := Program(p, testRel())
	f := find(rpt.Findings, DeadBranch, 0, 4)
	if f == nil || f.Severity != Warning || f.Other != -1 {
		t.Fatalf("union-shadowed branch finding = %+v, want warning with Other=-1", f)
	}
	if find(rpt.Findings, ExhaustiveGuards, 0, -1) == nil {
		t.Error("expected an exhaustive-guards info finding")
	}
	// No single earlier branch implies the dead one.
	for _, other := range rpt.Findings {
		if other.Class == DeadBranch && other.Branch != 4 {
			t.Errorf("unexpected dead-branch finding: %v", other)
		}
	}
}

func TestStatementContradiction(t *testing.T) {
	p := &dsl.Program{Stmts: []dsl.Statement{
		{Given: []int{0}, On: 2, Branches: []dsl.Branch{{Cond: cond(0, 0), Value: 0}}},
		{Given: []int{0}, On: 2, Branches: []dsl.Branch{{Cond: cond(0, 0), Value: 1}}},
	}}
	rpt := Program(p, testRel())
	f := find(rpt.Findings, StatementContradiction, 1, 0)
	if f == nil || f.Severity != Error || f.Other != 0 {
		t.Fatalf("contradiction finding = %+v, want error on stmt 1 with Other=0", f)
	}
	if !HasErrors(rpt.Findings) {
		t.Error("HasErrors should be true")
	}
	for _, g := range rpt.Findings {
		if g.Class == SubsumedStatement {
			t.Errorf("contradictory statements must not also report subsumption: %v", g)
		}
	}
}

func TestSubsumedStatement(t *testing.T) {
	p := &dsl.Program{Stmts: []dsl.Statement{
		{Given: []int{0}, On: 2, Branches: []dsl.Branch{
			{Cond: cond(0, 0), Value: 0},
			{Cond: cond(0, 1), Value: 1},
		}},
		{Given: []int{0, 1}, On: 2, Branches: []dsl.Branch{
			{Cond: cond(0, 0, 1, 0), Value: 0},
		}},
	}}
	rpt := Program(p, testRel())
	f := find(rpt.Findings, SubsumedStatement, 1, -1)
	if f == nil || f.Severity != Warning || f.Other != 0 {
		t.Fatalf("subsumption finding = %+v, want warning on stmt 1 with Other=0", f)
	}
	if g := find(rpt.Findings, SubsumedStatement, 0, -1); g != nil {
		t.Errorf("the wider statement must not be reported as contained: %v", g)
	}
}

func TestEquivalentStatementsReportedOnce(t *testing.T) {
	st := dsl.Statement{Given: []int{0}, On: 2, Branches: []dsl.Branch{{Cond: cond(0, 0), Value: 0}}}
	p := &dsl.Program{Stmts: []dsl.Statement{st, st}}
	rpt := Program(p, testRel())
	f := find(rpt.Findings, SubsumedStatement, 1, -1)
	if f == nil || f.Other != 0 {
		t.Fatalf("duplicate statement finding = %+v, want one on stmt 1", f)
	}
	if g := find(rpt.Findings, SubsumedStatement, 0, -1); g != nil {
		t.Errorf("duplicate pair reported twice: %v", g)
	}
}

func TestCanonDedupsEquivalentPrograms(t *testing.T) {
	dom := sat.DomainsOf(testRel())
	p1 := &dsl.Program{Stmts: []dsl.Statement{{
		Given: []int{0}, On: 2,
		Branches: []dsl.Branch{{Cond: cond(0, 0), Value: 0}, {Cond: cond(0, 1), Value: 1}},
	}}}
	// Same semantics: different GIVEN set, an extra shadowed branch.
	p2 := &dsl.Program{Stmts: []dsl.Statement{{
		Given: []int{0, 1}, On: 2,
		Branches: []dsl.Branch{
			{Cond: cond(0, 0), Value: 0},
			{Cond: cond(0, 1), Value: 1},
			{Cond: cond(0, 0, 1, 2), Value: 1}, // dead: shadowed by branch 0
		},
	}}}
	c1, calls := Canon(p1, dom)
	c2, _ := Canon(p2, dom)
	if c1 != c2 {
		t.Errorf("canonical forms differ:\n%s\n%s", c1, c2)
	}
	if Fingerprint(c1) != Fingerprint(c2) {
		t.Error("fingerprints differ for equal canonical forms")
	}
	if calls == 0 {
		t.Error("Canon should spend solver calls")
	}
	// A different assigned value must change the canonical form.
	p3 := &dsl.Program{Stmts: []dsl.Statement{{
		Given: []int{0}, On: 2,
		Branches: []dsl.Branch{{Cond: cond(0, 0), Value: 1}, {Cond: cond(0, 1), Value: 1}},
	}}}
	if c3, _ := Canon(p3, dom); c3 == c1 {
		t.Error("programs with different values share a canonical form")
	}
	// Atom order within a guard must not matter.
	p4 := &dsl.Program{Stmts: []dsl.Statement{{
		Given: []int{0, 1}, On: 2,
		Branches: []dsl.Branch{{Cond: cond(1, 2, 0, 0), Value: 0}},
	}}}
	p5 := &dsl.Program{Stmts: []dsl.Statement{{
		Given: []int{0, 1}, On: 2,
		Branches: []dsl.Branch{{Cond: cond(0, 0, 1, 2), Value: 0}},
	}}}
	c4, _ := Canon(p4, dom)
	c5, _ := Canon(p5, dom)
	if c4 != c5 {
		t.Errorf("atom order changed the canonical form:\n%s\n%s", c4, c5)
	}
}

func TestMinimize(t *testing.T) {
	rel := testRel()
	p := &dsl.Program{Stmts: []dsl.Statement{
		{Given: []int{0, 1}, On: 2, Branches: []dsl.Branch{
			{Cond: cond(0, 0), Value: 0},
			{Cond: cond(0, 0, 1, 1), Value: 1}, // shadowed
		}},
		{Given: []int{0}, On: 2, Branches: []dsl.Branch{
			{Cond: cond(0, 0, 0, 1), Value: 0}, // conflicting atoms: dead in any universe
		}},
	}}
	rpt := Program(p, rel)
	if rpt.Minimized == nil || len(rpt.Minimized.Stmts) != 1 {
		t.Fatalf("minimized = %+v, want the dead statement dropped", rpt.Minimized)
	}
	if n := len(rpt.Minimized.Stmts[0].Branches); n != 1 {
		t.Errorf("minimized statement has %d branches, want 1", n)
	}
	if !rpt.MinimizeProved {
		t.Error("minimization should be proved equivalent")
	}
	if rpt.BranchesRemoved != 2 || rpt.StmtsRemoved != 1 {
		t.Errorf("removed = (%d branches, %d stmts), want (2, 1)", rpt.BranchesRemoved, rpt.StmtsRemoved)
	}
	if len(p.Stmts) != 2 || len(p.Stmts[0].Branches) != 2 {
		t.Error("Minimize mutated its input")
	}
	if !dsl.Equivalent(p, rpt.Minimized, rel) {
		t.Error("minimized program behaves differently on the relation")
	}
}

// TestMinimizeConservativeOnWideLiterals: a guard using a literal outside
// the dictionary is dead over the dataset, but the minimizer judges
// liveness over the widened universe (the program could only ever see
// such a row if it wrote the value itself) and must keep it.
func TestMinimizeConservativeOnWideLiterals(t *testing.T) {
	dom := sat.Domains{2}
	p := &dsl.Program{Stmts: []dsl.Statement{{
		Given: []int{0}, On: 1,
		Branches: []dsl.Branch{{Cond: cond(0, 7), Value: 0}},
	}}}
	min, proved, _ := Minimize(p, dom)
	if !proved || len(min.Stmts) != 1 || len(min.Stmts[0].Branches) != 1 {
		t.Errorf("minimizer dropped a branch that is live over the widened universe: %+v", min)
	}
}

func TestWiden(t *testing.T) {
	dom := sat.Domains{2, 3, 0} // attr 2 unbounded
	p := &dsl.Program{Stmts: []dsl.Statement{{
		Given: []int{0}, On: 3,
		Branches: []dsl.Branch{{Cond: cond(0, 5, 2, 9, 1, -1), Value: 4}},
	}}}
	w := widen(dom, p)
	if w.Card(0) != 6 {
		t.Errorf("Card(0) = %d, want 6 (literal 5 mentioned)", w.Card(0))
	}
	if w.Card(1) != 3 {
		t.Errorf("Card(1) = %d, want 3 (Missing literal never widens)", w.Card(1))
	}
	if w.Card(2) != 0 {
		t.Errorf("Card(2) = %d, want 0 (unbounded stays unbounded)", w.Card(2))
	}
	if w.Card(3) != 0 {
		t.Errorf("Card(3) = %d, want 0 (attributes outside the schema stay unbounded)", w.Card(3))
	}
}

func TestReportFingerprintMatchesCanon(t *testing.T) {
	p := &dsl.Program{Stmts: []dsl.Statement{{
		Given: []int{0}, On: 2,
		Branches: []dsl.Branch{{Cond: cond(0, 0), Value: 0}},
	}}}
	rpt := Program(p, testRel())
	if rpt.Fingerprint != Fingerprint(rpt.Canon) {
		t.Error("report fingerprint does not hash its own canonical form")
	}
	if rpt.SolverCalls == 0 {
		t.Error("report should account solver calls")
	}
	if Program(nil, nil).Fingerprint != 0 {
		t.Error("nil program should have the empty fingerprint")
	}
}
