// Package analysis is the semantic analyzer for DSL programs — the layer
// of Guardrail's static-analysis subsystem built on the exact
// finite-domain solver in internal/smt/sat. Where internal/dsl/verify
// reasons about single conjunctions (a branch shadowed by one earlier
// branch), analysis reasons about disjunctions and domains: a branch can
// be dead because the *union* of earlier guards covers it, a statement's
// guards can be exhaustive over the observed value domain, one statement
// can semantically contain another, and two statements can force
// different values onto the same satisfiable region. The same machinery
// yields a whole-program semantic fingerprint (equal fingerprints imply
// equivalent programs) that the synthesizer uses to dedupe candidate
// programs before coverage scoring, and a semantics-preserving minimizer
// whose output is re-proved equivalent by independent solver queries.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"

	"github.com/guardrail-db/guardrail/internal/dataset"
	"github.com/guardrail-db/guardrail/internal/dsl"
	"github.com/guardrail-db/guardrail/internal/smt/sat"
)

// Severity grades a finding.
type Severity int

const (
	// Info marks structural facts worth surfacing that are not defects
	// (exhaustive branch guards).
	Info Severity = iota
	// Warning marks redundancy that does not change runtime behavior
	// (shadowed branches, subsumed statements).
	Warning
	// Error marks semantic defects (unsatisfiable guards, contradictory
	// statements).
	Error
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	}
	return "info"
}

// MarshalJSON renders the severity as its string name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Class identifies the diagnostic.
type Class int

const (
	// DeadBranch: a branch that can never fire — its guard is
	// unsatisfiable over the row universe, or the union of earlier guards
	// covers its entire region (first match wins).
	DeadBranch Class = iota
	// ExhaustiveGuards: a statement whose branch guards cover every
	// fully-observed row of the value domain, so the statement always
	// fires on complete rows.
	ExhaustiveGuards
	// SubsumedStatement: a statement semantically contained in another
	// with the same dependent attribute — wherever it fires, the other
	// fires and assigns the same value.
	SubsumedStatement
	// StatementContradiction: two statements with the same dependent
	// attribute that assign different values on a satisfiable region
	// overlap, guaranteeing a violation on every such row.
	StatementContradiction
)

func (c Class) String() string {
	switch c {
	case DeadBranch:
		return "dead-branch"
	case ExhaustiveGuards:
		return "exhaustive-guards"
	case SubsumedStatement:
		return "subsumed-statement"
	case StatementContradiction:
		return "statement-contradiction"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// MarshalJSON renders the class as its string name.
func (c Class) MarshalJSON() ([]byte, error) { return json.Marshal(c.String()) }

// Finding is one diagnostic with its location inside the program.
type Finding struct {
	Class    Class    `json:"class"`
	Severity Severity `json:"severity"`
	// Stmt is the statement index within the program.
	Stmt int `json:"stmt"`
	// Branch is the branch index within the statement, or -1 for
	// statement-level findings.
	Branch int `json:"branch"`
	// Other is the index of the related branch (DeadBranch) or statement
	// (SubsumedStatement, StatementContradiction), or -1.
	Other int `json:"other"`
	// Message is the human-readable diagnosis in the surface syntax.
	Message string `json:"message"`
}

// String renders the finding as "severity stmt 2 branch 1 [class]: message".
func (f Finding) String() string {
	loc := fmt.Sprintf("stmt %d", f.Stmt)
	if f.Branch >= 0 {
		loc += fmt.Sprintf(" branch %d", f.Branch)
	}
	return fmt.Sprintf("%s %s [%s]: %s", f.Severity, loc, f.Class, f.Message)
}

// HasErrors reports whether any finding is Error-severity.
func HasErrors(fs []Finding) bool {
	for _, f := range fs {
		if f.Severity == Error {
			return true
		}
	}
	return false
}

// Report is the result of running every analysis pass over one program.
type Report struct {
	Findings []Finding
	// Canon is the canonical semantic form of the program; equal canonical
	// forms imply semantically equivalent programs. Fingerprint is its
	// 64-bit FNV-1a hash, for compact reporting.
	Canon       string
	Fingerprint uint64
	// Minimized is the program with dead branches and no-op statements
	// removed; MinimizeProved reports that the minimizer's output was
	// independently re-proved equivalent to the input (solver queries
	// plus, when the relation is available, row-by-row execution).
	Minimized       *dsl.Program
	MinimizeProved  bool
	BranchesRemoved int
	StmtsRemoved    int
	// SolverCalls counts the core satisfiability queries the passes ran —
	// the analysis.solver_calls metric.
	SolverCalls int64
}

// Program runs every analysis pass over p. rel supplies per-attribute
// domain cardinalities (nil leaves every domain unbounded, which disables
// union-exhaustiveness reasoning) and attribute/literal names for
// messages. Findings are ordered by statement, then branch, then class.
func Program(p *dsl.Program, rel *dataset.Relation) *Report {
	rpt := &Report{}
	if p == nil {
		return rpt
	}
	dom := sat.DomainsOf(rel)
	s := sat.NewSolver(dom)       // runtime universe: dictionary codes plus Missing
	vs := sat.NewValueSolver(dom) // observed values only, for exhaustiveness

	live := make([][]bool, len(p.Stmts))
	for si := range p.Stmts {
		st := p.Stmts[si]
		live[si] = make([]bool, len(st.Branches))
		for bi, b := range st.Branches {
			if !s.SatisfiableCond(b.Cond) {
				rpt.Findings = append(rpt.Findings, Finding{
					Class: DeadBranch, Severity: Error, Stmt: si, Branch: bi, Other: -1,
					Message: fmt.Sprintf("guard %s is unsatisfiable over the row universe",
						dsl.FormatCondition(b.Cond, rel)),
				})
				continue
			}
			if !s.SatMinus(b.Cond, guardsUpto(st, bi)) {
				// Prefer naming a single shadowing branch; fall back to the
				// union when no individual earlier guard implies this one.
				other := -1
				for ei := 0; ei < bi; ei++ {
					if live[si][ei] && s.ImpliesCond(b.Cond, st.Branches[ei].Cond) {
						other = ei
						break
					}
				}
				msg := fmt.Sprintf("guard %s is covered by the union of earlier guards and never fires",
					dsl.FormatCondition(b.Cond, rel))
				if other >= 0 {
					msg = fmt.Sprintf("guard %s is shadowed by branch %d and never fires",
						dsl.FormatCondition(b.Cond, rel), other)
				}
				rpt.Findings = append(rpt.Findings, Finding{
					Class: DeadBranch, Severity: Warning, Stmt: si, Branch: bi, Other: other,
					Message: msg,
				})
				continue
			}
			live[si][bi] = true
		}
		if len(st.Branches) > 0 && vs.Exhaustive(guardsUpto(st, len(st.Branches))) {
			rpt.Findings = append(rpt.Findings, Finding{
				Class: ExhaustiveGuards, Severity: Info, Stmt: si, Branch: -1, Other: -1,
				Message: fmt.Sprintf("branch guards cover every fully-observed row, so %s is always constrained",
					dsl.AttrName(st.On, rel)),
			})
		}
	}

	// Cross-statement passes over pairs sharing a dependent attribute.
	for i := range p.Stmts {
		for j := i + 1; j < len(p.Stmts); j++ {
			a, b := p.Stmts[i], p.Stmts[j]
			if a.On != b.On {
				continue
			}
			if f, found := contradiction(s, i, a, live[i], j, b, live[j], rel); found {
				rpt.Findings = append(rpt.Findings, f)
				continue // contradictory statements cannot subsume each other
			}
			fwd := hasLive(live[j]) && subsumes(s, a, live[i], b, live[j])
			back := hasLive(live[i]) && subsumes(s, b, live[j], a, live[i])
			switch {
			case fwd && back:
				rpt.Findings = append(rpt.Findings, Finding{
					Class: SubsumedStatement, Severity: Warning, Stmt: j, Branch: -1, Other: i,
					Message: fmt.Sprintf("statement is semantically equivalent to statement %d (same value on every row it fires on)", i),
				})
			case fwd:
				rpt.Findings = append(rpt.Findings, Finding{
					Class: SubsumedStatement, Severity: Warning, Stmt: j, Branch: -1, Other: i,
					Message: fmt.Sprintf("statement is semantically contained in statement %d: wherever it fires, statement %d assigns the same value", i, i),
				})
			case back:
				rpt.Findings = append(rpt.Findings, Finding{
					Class: SubsumedStatement, Severity: Warning, Stmt: i, Branch: -1, Other: j,
					Message: fmt.Sprintf("statement is semantically contained in statement %d: wherever it fires, statement %d assigns the same value", j, j),
				})
			}
		}
	}

	sort.SliceStable(rpt.Findings, func(i, j int) bool {
		a, b := rpt.Findings[i], rpt.Findings[j]
		if a.Stmt != b.Stmt {
			return a.Stmt < b.Stmt
		}
		if a.Branch != b.Branch {
			return a.Branch < b.Branch
		}
		return a.Class < b.Class
	})

	canon, canonCalls := Canon(p, dom)
	rpt.Canon = canon
	rpt.Fingerprint = Fingerprint(canon)

	min, proved, minCalls := Minimize(p, dom)
	rpt.Minimized = min
	rpt.MinimizeProved = proved
	rpt.BranchesRemoved = p.NumBranches() - min.NumBranches()
	rpt.StmtsRemoved = len(p.Stmts) - len(min.Stmts)
	// Second, independent opinion when the dataset is at hand and the
	// program is executable over it: replay every row through both
	// programs.
	if proved && rel != nil && p.Validate(rel) == nil {
		rpt.MinimizeProved = dsl.Equivalent(p, min, rel)
	}

	rpt.SolverCalls = s.Calls() + vs.Calls() + canonCalls + minCalls
	return rpt
}

// guardsUpto collects the guards of branches [0, k) of st as a DNF — the
// union of conditions an earlier branch would have matched first.
func guardsUpto(st dsl.Statement, k int) sat.DNF {
	g := make(sat.DNF, 0, k)
	for i := 0; i < k; i++ {
		g = append(g, st.Branches[i].Cond)
	}
	return g
}

// LiveMask marks each branch of st whose region (guard minus the union of
// earlier guards) contains at least one row of s's universe. Exported for
// the compiler's dead-branch pass, which must agree exactly with the
// analyzer's notion of liveness.
func LiveMask(s *sat.Solver, st dsl.Statement) []bool { return liveMask(s, st) }

// StatementSubsumes reports a ⊒ b over s's universe: on every row where
// some branch of b fires, some branch of a fires and assigns the same
// value. Exported for the compiler's subsumption pass and its independent
// re-proof during translation validation.
func StatementSubsumes(s *sat.Solver, a, b dsl.Statement) bool {
	return subsumes(s, a, liveMask(s, a), b, liveMask(s, b))
}

// liveMask marks each branch of st whose region (guard minus the union of
// earlier guards) contains at least one universe row.
func liveMask(s *sat.Solver, st dsl.Statement) []bool {
	live := make([]bool, len(st.Branches))
	for bi, b := range st.Branches {
		live[bi] = s.SatMinus(b.Cond, guardsUpto(st, bi))
	}
	return live
}

func hasLive(mask []bool) bool {
	for _, l := range mask {
		if l {
			return true
		}
	}
	return false
}

// subsumes reports a ⊒ b: on every universe row where some branch of b
// fires, some branch of a fires and assigns the same value. Each live
// branch of b must have its region covered by a's guard union, and must
// not overlap any region of a that assigns a different value.
func subsumes(s *sat.Solver, a dsl.Statement, liveA []bool, b dsl.Statement, liveB []bool) bool {
	allA := guardsUpto(a, len(a.Branches))
	for bk, bb := range b.Branches {
		if !liveB[bk] {
			continue
		}
		earlierB := guardsUpto(b, bk)
		if s.SatMinus(bb.Cond, earlierB, allA) {
			return false // some row of b's region escapes a entirely
		}
		for al, ab := range a.Branches {
			if !liveA[al] || ab.Value == bb.Value {
				continue
			}
			both := make(dsl.Condition, 0, len(bb.Cond)+len(ab.Cond))
			both = append(both, bb.Cond...)
			both = append(both, ab.Cond...)
			if s.SatMinus(both, earlierB, guardsUpto(a, al)) {
				return false // regions overlap but values disagree
			}
		}
	}
	return true
}

// contradiction looks for a pair of live branches (one per statement)
// that assign different values on overlapping regions, which guarantees
// a violation on every row of the overlap.
func contradiction(s *sat.Solver, i int, a dsl.Statement, liveA []bool, j int, b dsl.Statement, liveB []bool, rel *dataset.Relation) (Finding, bool) {
	for bk, bb := range b.Branches {
		if !liveB[bk] {
			continue
		}
		for al, ab := range a.Branches {
			if !liveA[al] || ab.Value == bb.Value {
				continue
			}
			both := make(dsl.Condition, 0, len(bb.Cond)+len(ab.Cond))
			both = append(both, bb.Cond...)
			both = append(both, ab.Cond...)
			if s.SatMinus(both, guardsUpto(b, bk), guardsUpto(a, al)) {
				return Finding{
					Class: StatementContradiction, Severity: Error, Stmt: j, Branch: bk, Other: i,
					Message: fmt.Sprintf("assigns %s <- %s on rows where statement %d branch %d assigns %s: every overlapping row violates one of them",
						dsl.AttrName(b.On, rel), dsl.LiteralString(b.On, bb.Value, rel),
						i, al, dsl.LiteralString(a.On, ab.Value, rel)),
				}, true
			}
		}
	}
	return Finding{}, false
}
