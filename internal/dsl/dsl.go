// Package dsl implements Guardrail's domain-specific language for
// data-generating processes (§2.2 of the paper):
//
//	p ∈ Prog      := s*
//	s ∈ Stmt      := GIVEN a+ ON a HAVING b+
//	b ∈ Branch    := IF c THEN a <- l
//	c ∈ Condition := a = l | c AND c
//
// Programs operate on encoded rows (slices of dataset codes). The package
// provides the denotational semantics (execution, violation detection,
// rectification), the branch-level 0/1 loss (Eqn. 2), ε-validity
// (Eqn. 3–4), and coverage (Eqn. 5–6), plus a textual surface syntax with a
// parser and printer.
package dsl

import (
	"fmt"

	"github.com/guardrail-db/guardrail/internal/dataset"
)

// Pred is one equality atom "attr = literal" over encoded values.
type Pred struct {
	Attr  int   // attribute index
	Value int32 // literal code in the attribute's dictionary
}

// Condition is a conjunction of equality atoms (the "c AND c" production).
type Condition []Pred

// Matches reports whether row satisfies every atom.
func (c Condition) Matches(row []int32) bool {
	for _, p := range c {
		if row[p.Attr] != p.Value {
			return false
		}
	}
	return true
}

// Branch is "IF c THEN On <- Value"; On is carried by the statement.
type Branch struct {
	Cond  Condition
	Value int32
}

// Statement is "GIVEN Given ON On HAVING Branches".
type Statement struct {
	Given    []int
	On       int
	Branches []Branch
}

// Program is a sequence of statements describing the whole DGP.
type Program struct {
	Stmts []Statement
}

// Violation records one row/statement disagreement found by Detect.
type Violation struct {
	Stmt     int   // statement index within the program
	Attr     int   // the dependent attribute
	Expected int32 // the code the matched branch assigns
	Actual   int32 // the code observed in the row
}

// matchBranch returns the first branch of s whose condition matches row.
func (s *Statement) matchBranch(row []int32) (Branch, bool) {
	for _, b := range s.Branches {
		if b.Cond.Matches(row) {
			return b, true
		}
	}
	return Branch{}, false
}

// Eval executes p on row, returning the updated state (⟦p⟧_t): each
// statement whose branch condition matches assigns the dependent
// attribute. The input row is not mutated.
func (p *Program) Eval(row []int32) []int32 {
	out := append([]int32(nil), row...)
	for _, s := range p.Stmts {
		if b, ok := s.matchBranch(out); ok {
			out[s.On] = b.Value
		}
	}
	return out
}

// Detect returns every violation of p by row — the assertion ⟦p⟧_t = t of
// Eqn. 1 evaluated per statement. Matching uses the original row so
// violations are independent of statement order.
func (p *Program) Detect(row []int32) []Violation {
	var out []Violation
	for i, s := range p.Stmts {
		if b, ok := s.matchBranch(row); ok && row[s.On] != b.Value {
			out = append(out, Violation{Stmt: i, Attr: s.On, Expected: b.Value, Actual: row[s.On]})
		}
	}
	return out
}

// Rectify overwrites each violated dependent attribute with the value the
// matched branch assigns, in place, and reports how many cells changed.
func (p *Program) Rectify(row []int32) int {
	changed := 0
	for _, s := range p.Stmts {
		if b, ok := s.matchBranch(row); ok && row[s.On] != b.Value {
			row[s.On] = b.Value
			changed++
		}
	}
	return changed
}

// NumBranches counts branches across all statements.
func (p *Program) NumBranches() int {
	n := 0
	for _, s := range p.Stmts {
		n += len(s.Branches)
	}
	return n
}

// BranchSupport counts the rows of rel matching b's condition (|D^b|).
func BranchSupport(b Branch, rel *dataset.Relation) int {
	n := rel.NumRows()
	count := 0
	for i := 0; i < n; i++ {
		if matchesRel(b.Cond, rel, i) {
			count++
		}
	}
	return count
}

func matchesRel(c Condition, rel *dataset.Relation, row int) bool {
	for _, p := range c {
		if rel.Code(row, p.Attr) != p.Value {
			return false
		}
	}
	return true
}

// BranchLoss computes the 0/1 loss of Eqn. 2 together with the branch
// support |D^b|: the number of matching rows whose dependent value differs
// from the branch's assignment.
func BranchLoss(b Branch, on int, rel *dataset.Relation) (loss, support int) {
	n := rel.NumRows()
	for i := 0; i < n; i++ {
		if !matchesRel(b.Cond, rel, i) {
			continue
		}
		support++
		if rel.Code(i, on) != b.Value {
			loss++
		}
	}
	return loss, support
}

// EpsValidStatement reports whether every branch of s satisfies
// L(b, D) <= |D^b|·ε (Eqn. 4).
func EpsValidStatement(s Statement, rel *dataset.Relation, eps float64) bool {
	for _, b := range s.Branches {
		loss, support := BranchLoss(b, s.On, rel)
		if float64(loss) > float64(support)*eps {
			return false
		}
	}
	return true
}

// EpsValid reports whether every branch of p is ε-valid on rel (Eqn. 3).
func EpsValid(p *Program, rel *dataset.Relation, eps float64) bool {
	for _, s := range p.Stmts {
		if !EpsValidStatement(s, rel, eps) {
			return false
		}
	}
	return true
}

// StatementCoverage computes cov(s, D) = |D^s| / |D| (Eqn. 6), where D^s is
// the union of branch supports. Branch conditions within one statement
// share a determinant set, so their supports are disjoint and summing is
// exact.
func StatementCoverage(s Statement, rel *dataset.Relation) float64 {
	if rel.NumRows() == 0 {
		return 0
	}
	total := 0
	for _, b := range s.Branches {
		total += BranchSupport(b, rel)
	}
	return float64(total) / float64(rel.NumRows())
}

// Coverage computes the program coverage: the average statement coverage
// (the paper's program-level definition).
func Coverage(p *Program, rel *dataset.Relation) float64 {
	if len(p.Stmts) == 0 {
		return 0
	}
	var sum float64
	for _, s := range p.Stmts {
		sum += StatementCoverage(s, rel)
	}
	return sum / float64(len(p.Stmts))
}

// Loss sums the branch losses of p over rel.
func Loss(p *Program, rel *dataset.Relation) int {
	total := 0
	for _, s := range p.Stmts {
		for _, b := range s.Branches {
			l, _ := BranchLoss(b, s.On, rel)
			total += l
		}
	}
	return total
}

// Validate checks that every attribute index and literal code in p is
// within rel's bounds, so Eval/Detect cannot panic.
func (p *Program) Validate(rel *dataset.Relation) error {
	na := rel.NumAttrs()
	check := func(attr int, v int32, what string) error {
		if attr < 0 || attr >= na {
			return fmt.Errorf("dsl: %s attribute %d out of range [0,%d)", what, attr, na)
		}
		if v != dataset.Missing && (v < 0 || int(v) >= rel.Cardinality(attr)) {
			return fmt.Errorf("dsl: %s literal %d out of range for attribute %s", what, v, rel.Attr(attr))
		}
		return nil
	}
	for si, s := range p.Stmts {
		if s.On < 0 || s.On >= na {
			return fmt.Errorf("dsl: statement %d ON attribute %d out of range", si, s.On)
		}
		if len(s.Given) == 0 {
			return fmt.Errorf("dsl: statement %d has empty GIVEN clause", si)
		}
		for _, g := range s.Given {
			if g < 0 || g >= na {
				return fmt.Errorf("dsl: statement %d GIVEN attribute %d out of range", si, g)
			}
			if g == s.On {
				return fmt.Errorf("dsl: statement %d GIVEN contains its ON attribute", si)
			}
		}
		if len(s.Branches) == 0 {
			return fmt.Errorf("dsl: statement %d has no branches", si)
		}
		for _, b := range s.Branches {
			if err := check(s.On, b.Value, "THEN"); err != nil {
				return err
			}
			for _, pr := range b.Cond {
				if err := check(pr.Attr, pr.Value, "IF"); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
