package dsl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"github.com/guardrail-db/guardrail/internal/dataset"
)

// Format renders p in the paper's surface syntax, resolving attribute names
// and literal strings through rel's dictionaries:
//
//	GIVEN PostalCode ON City HAVING
//	  IF PostalCode = "94704" THEN City <- "Berkeley";
func Format(p *Program, rel *dataset.Relation) string {
	var b strings.Builder
	for i, s := range p.Stmts {
		if i > 0 {
			b.WriteByte('\n')
		}
		FormatStatement(&b, s, rel)
	}
	return b.String()
}

// FormatStatement renders one statement into b.
func FormatStatement(b *strings.Builder, s Statement, rel *dataset.Relation) {
	b.WriteString("GIVEN ")
	for i, g := range s.Given {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(rel.Attr(g))
	}
	fmt.Fprintf(b, " ON %s HAVING\n", rel.Attr(s.On))
	for _, br := range s.Branches {
		b.WriteString("  IF ")
		for i, pr := range br.Cond {
			if i > 0 {
				b.WriteString(" AND ")
			}
			fmt.Fprintf(b, "%s = %q", rel.Attr(pr.Attr), rel.Dict(pr.Attr).Value(pr.Value))
		}
		fmt.Fprintf(b, " THEN %s <- %q;\n", rel.Attr(s.On), rel.Dict(s.On).Value(br.Value))
	}
}

// AttrName resolves attribute index a through rel, falling back to a
// positional placeholder when rel is nil (tooling over schema-less
// programs, e.g. the verifier's unit tests).
func AttrName(a int, rel *dataset.Relation) string {
	if rel == nil || a < 0 || a >= rel.NumAttrs() {
		return fmt.Sprintf("attr#%d", a)
	}
	return rel.Attr(a)
}

// LiteralString resolves literal code v of attribute a through rel's
// dictionary, falling back to the raw code when rel is nil or the code is
// out of range.
func LiteralString(a int, v int32, rel *dataset.Relation) string {
	if rel != nil && a >= 0 && a < rel.NumAttrs() && (v == dataset.Missing || (v >= 0 && int(v) < rel.Cardinality(a))) {
		return fmt.Sprintf("%q", rel.Dict(a).Value(v))
	}
	return fmt.Sprintf("code(%d)", v)
}

// FormatCondition renders c in the surface syntax ('a = "x" AND b = "y"'),
// resolving names through rel when non-nil. The empty condition renders as
// "TRUE" (it matches every row).
func FormatCondition(c Condition, rel *dataset.Relation) string {
	if len(c) == 0 {
		return "TRUE"
	}
	var b strings.Builder
	for i, pr := range c {
		if i > 0 {
			b.WriteString(" AND ")
		}
		fmt.Fprintf(&b, "%s = %s", AttrName(pr.Attr, rel), LiteralString(pr.Attr, pr.Value, rel))
	}
	return b.String()
}

// FormatBranch renders one branch ("IF c THEN a <- l") for diagnostics.
func FormatBranch(br Branch, on int, rel *dataset.Relation) string {
	return fmt.Sprintf("IF %s THEN %s <- %s",
		FormatCondition(br.Cond, rel), AttrName(on, rel), LiteralString(on, br.Value, rel))
}

// --- parser ---

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokEq
	tokArrow
	tokSemi
	tokComma
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src []rune
	i   int
}

func (l *lexer) next() (token, error) {
	for l.i < len(l.src) && unicode.IsSpace(l.src[l.i]) {
		l.i++
	}
	if l.i >= len(l.src) {
		return token{kind: tokEOF, pos: l.i}, nil
	}
	start := l.i
	c := l.src[l.i]
	switch {
	case c == '=':
		l.i++
		return token{kind: tokEq, text: "=", pos: start}, nil
	case c == ';':
		l.i++
		return token{kind: tokSemi, text: ";", pos: start}, nil
	case c == ',':
		l.i++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '<':
		if l.i+1 < len(l.src) && l.src[l.i+1] == '-' {
			l.i += 2
			return token{kind: tokArrow, text: "<-", pos: start}, nil
		}
		return token{}, fmt.Errorf("dsl: unexpected '<' at %d", start)
	case c == '"':
		// Scan to the matching unescaped quote, then decode with
		// strconv.Unquote so the lexer exactly inverts Format's %q.
		j := l.i + 1
		for j < len(l.src) && l.src[j] != '"' {
			if l.src[j] == '\\' && j+1 < len(l.src) {
				j++
			}
			j++
		}
		if j >= len(l.src) {
			return token{}, fmt.Errorf("dsl: unterminated string at %d", start)
		}
		raw := string(l.src[l.i : j+1])
		decoded, err := strconv.Unquote(raw)
		if err != nil {
			return token{}, fmt.Errorf("dsl: bad string literal at %d: %v", start, err)
		}
		l.i = j + 1
		return token{kind: tokString, text: decoded, pos: start}, nil
	case unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_':
		for l.i < len(l.src) && (unicode.IsLetter(l.src[l.i]) || unicode.IsDigit(l.src[l.i]) || l.src[l.i] == '_' || l.src[l.i] == '-' && l.i+1 < len(l.src) && unicode.IsDigit(l.src[l.i+1])) {
			l.i++
		}
		return token{kind: tokIdent, text: string(l.src[start:l.i]), pos: start}, nil
	default:
		return token{}, fmt.Errorf("dsl: unexpected character %q at %d", c, start)
	}
}

type parser struct {
	lex lexer
	cur token
	rel *dataset.Relation
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	if p.cur.kind != tokIdent || !strings.EqualFold(p.cur.text, kw) {
		return fmt.Errorf("dsl: expected %q at %d, got %q", kw, p.cur.pos, p.cur.text)
	}
	return p.advance()
}

func (p *parser) isKeyword(kw string) bool {
	return p.cur.kind == tokIdent && strings.EqualFold(p.cur.text, kw)
}

func (p *parser) attr() (int, error) {
	if p.cur.kind != tokIdent {
		return 0, fmt.Errorf("dsl: expected attribute name at %d, got %q", p.cur.pos, p.cur.text)
	}
	idx := p.rel.AttrIndex(p.cur.text)
	if idx < 0 {
		return 0, fmt.Errorf("dsl: unknown attribute %q at %d", p.cur.text, p.cur.pos)
	}
	return idx, p.advance()
}

// literal reads a quoted string or bare identifier and interns it into the
// given attribute's dictionary (interning never changes existing codes).
func (p *parser) literal(attr int) (int32, error) {
	if p.cur.kind != tokString && p.cur.kind != tokIdent {
		return 0, fmt.Errorf("dsl: expected literal at %d, got %q", p.cur.pos, p.cur.text)
	}
	code := p.rel.Intern(attr, p.cur.text)
	return code, p.advance()
}

// Parse reads a program in the surface syntax, resolving names against rel.
// Literal values not yet present in a column's dictionary are interned.
func Parse(src string, rel *dataset.Relation) (*Program, error) {
	p := &parser{lex: lexer{src: []rune(src)}, rel: rel}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.cur.kind != tokEOF {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, s)
	}
	if err := prog.Validate(rel); err != nil {
		return nil, err
	}
	return prog, nil
}

func (p *parser) statement() (Statement, error) {
	var s Statement
	if err := p.expectKeyword("GIVEN"); err != nil {
		return s, err
	}
	for {
		a, err := p.attr()
		if err != nil {
			return s, err
		}
		s.Given = append(s.Given, a)
		if p.cur.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return s, err
		}
	}
	if err := p.expectKeyword("ON"); err != nil {
		return s, err
	}
	on, err := p.attr()
	if err != nil {
		return s, err
	}
	s.On = on
	if err := p.expectKeyword("HAVING"); err != nil {
		return s, err
	}
	for p.isKeyword("IF") {
		b, err := p.branch(on)
		if err != nil {
			return s, err
		}
		s.Branches = append(s.Branches, b)
	}
	if len(s.Branches) == 0 {
		return s, fmt.Errorf("dsl: statement for %s has no branches", p.rel.Attr(on))
	}
	return s, nil
}

func (p *parser) branch(on int) (Branch, error) {
	var b Branch
	if err := p.expectKeyword("IF"); err != nil {
		return b, err
	}
	for {
		a, err := p.attr()
		if err != nil {
			return b, err
		}
		if p.cur.kind != tokEq {
			return b, fmt.Errorf("dsl: expected '=' at %d", p.cur.pos)
		}
		if err := p.advance(); err != nil {
			return b, err
		}
		v, err := p.literal(a)
		if err != nil {
			return b, err
		}
		b.Cond = append(b.Cond, Pred{Attr: a, Value: v})
		if !p.isKeyword("AND") {
			break
		}
		if err := p.advance(); err != nil {
			return b, err
		}
	}
	if err := p.expectKeyword("THEN"); err != nil {
		return b, err
	}
	onAttr, err := p.attr()
	if err != nil {
		return b, err
	}
	if onAttr != on {
		return b, fmt.Errorf("dsl: THEN assigns %s, statement is ON %s", p.rel.Attr(onAttr), p.rel.Attr(on))
	}
	if p.cur.kind != tokArrow {
		return b, fmt.Errorf("dsl: expected '<-' at %d", p.cur.pos)
	}
	if err := p.advance(); err != nil {
		return b, err
	}
	v, err := p.literal(on)
	if err != nil {
		return b, err
	}
	b.Value = v
	if p.cur.kind == tokSemi {
		if err := p.advance(); err != nil {
			return b, err
		}
	}
	return b, nil
}
