package dsl

import (
	"testing"

	"github.com/guardrail-db/guardrail/internal/dataset"
)

// FuzzParse feeds arbitrary text to the DSL parser: it must never panic,
// and any program it accepts must validate and round-trip through Format.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`GIVEN PostalCode ON City HAVING IF PostalCode = "94704" THEN City <- "Berkeley";`,
		`GIVEN a, b ON c HAVING IF a = "1" AND b = "2" THEN c <- "3";`,
		`GIVEN`,
		`GIVEN x ON y HAVING`,
		`IF a = b THEN`,
		"GIVEN PostalCode ON City HAVING\n  IF PostalCode = \"1\" THEN City <- \"x\";\nGIVEN City ON State HAVING\n  IF City = \"x\" THEN State <- \"y\";",
		`GIVEN a ON b HAVING IF a = "unterminated`,
		`GIVEN a ON b HAVING IF a <- "wrong" THEN b = "arrow";`,
		"\x00\x01\x02",
		`GIVEN a ON b HAVING IF a = "v" THEN b <- "w"; trailing garbage`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		rel := dataset.New("t", []string{"PostalCode", "City", "State", "a", "b", "c", "x", "y"})
		rel.AppendRow([]string{"94704", "Berkeley", "CA", "1", "2", "3", "4", "5"})
		p, err := Parse(src, rel)
		if err != nil {
			return
		}
		if err := p.Validate(rel); err != nil {
			t.Fatalf("accepted program fails validation: %v\nsource: %q", err, src)
		}
		// Accepted programs must round-trip.
		text := Format(p, rel)
		p2, err := Parse(text, rel)
		if err != nil {
			t.Fatalf("formatted program does not re-parse: %v\n%s", err, text)
		}
		if Format(p2, rel) != text {
			t.Fatalf("format not a fixpoint:\n%s\nvs\n%s", text, Format(p2, rel))
		}
	})
}
