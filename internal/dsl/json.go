package dsl

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/guardrail-db/guardrail/internal/dataset"
)

// jsonProgram is the stable on-disk JSON encoding of a Program: names and
// value strings rather than codes, so a serialized program is portable
// across re-encoded relations with the same schema.
type jsonProgram struct {
	Statements []jsonStatement `json:"statements"`
}

type jsonStatement struct {
	Given    []string     `json:"given"`
	On       string       `json:"on"`
	Branches []jsonBranch `json:"branches"`
}

type jsonBranch struct {
	If   []jsonPred `json:"if"`
	Then string     `json:"then"`
}

type jsonPred struct {
	Attr  string `json:"attr"`
	Value string `json:"value"`
}

// MarshalJSON encodes p using rel's attribute names and value strings.
func MarshalJSON(p *Program, rel *dataset.Relation) ([]byte, error) {
	out := jsonProgram{Statements: make([]jsonStatement, 0, len(p.Stmts))}
	for _, s := range p.Stmts {
		js := jsonStatement{On: rel.Attr(s.On)}
		for _, g := range s.Given {
			js.Given = append(js.Given, rel.Attr(g))
		}
		for _, b := range s.Branches {
			jb := jsonBranch{Then: rel.Dict(s.On).Value(b.Value)}
			for _, pr := range b.Cond {
				jb.If = append(jb.If, jsonPred{Attr: rel.Attr(pr.Attr), Value: rel.Dict(pr.Attr).Value(pr.Value)})
			}
			js.Branches = append(js.Branches, jb)
		}
		out.Statements = append(out.Statements, js)
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalJSON decodes a program against rel, interning literal values not
// yet present in the dictionaries, and validates the result.
func UnmarshalJSON(data []byte, rel *dataset.Relation) (*Program, error) {
	var in jsonProgram
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("dsl: decoding program JSON: %w", err)
	}
	p := &Program{}
	for si, js := range in.Statements {
		on := rel.AttrIndex(js.On)
		if on < 0 {
			return nil, fmt.Errorf("dsl: statement %d: unknown ON attribute %q", si, js.On)
		}
		s := Statement{On: on}
		for _, g := range js.Given {
			gi := rel.AttrIndex(g)
			if gi < 0 {
				return nil, fmt.Errorf("dsl: statement %d: unknown GIVEN attribute %q", si, g)
			}
			s.Given = append(s.Given, gi)
		}
		for _, jb := range js.Branches {
			b := Branch{Value: rel.Intern(on, jb.Then)}
			for _, jp := range jb.If {
				a := rel.AttrIndex(jp.Attr)
				if a < 0 {
					return nil, fmt.Errorf("dsl: statement %d: unknown IF attribute %q", si, jp.Attr)
				}
				b.Cond = append(b.Cond, Pred{Attr: a, Value: rel.Intern(a, jp.Value)})
			}
			s.Branches = append(s.Branches, b)
		}
		p.Stmts = append(p.Stmts, s)
	}
	if err := p.Validate(rel); err != nil {
		return nil, err
	}
	return p, nil
}

// WriteJSON streams the JSON encoding to w.
func WriteJSON(w io.Writer, p *Program, rel *dataset.Relation) error {
	data, err := MarshalJSON(p, rel)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadJSON decodes a program from r against rel.
func ReadJSON(r io.Reader, rel *dataset.Relation) (*Program, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return UnmarshalJSON(data, rel)
}
