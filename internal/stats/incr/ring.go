package incr

import "fmt"

// Ring maintains a sliding view over the most recent windows: pushing a
// per-window table merges it into a running aggregate, and once more
// than cap windows are live the oldest is subtracted back out. Keeping
// the per-window tables (not their rows) is what makes the slide cost
// O(window change): expiry is one Subtract, never a rescan.
type Ring struct {
	cap     int
	windows []*Table
	agg     *Table
}

// NewRing builds a ring holding at most cap windows (cap >= 1).
func NewRing(cap int) *Ring {
	if cap < 1 {
		panic(fmt.Sprintf("incr: ring capacity %d", cap))
	}
	return &Ring{cap: cap}
}

// Push merges w into the aggregate and retires the oldest window when
// the ring is over capacity, returning the retired table (nil when none
// expired). The ring owns w after the call.
func (r *Ring) Push(w *Table) (expired *Table, err error) {
	if r.agg == nil {
		r.agg = w.Clone()
	} else if err := r.agg.Merge(w); err != nil {
		return nil, err
	}
	r.windows = append(r.windows, w)
	if len(r.windows) <= r.cap {
		return nil, nil
	}
	expired = r.windows[0]
	r.windows = r.windows[1:]
	if err := r.agg.Subtract(expired); err != nil {
		return nil, err
	}
	return expired, nil
}

// Aggregate returns the live merged view over the ring's windows. The
// caller must not mutate it; Clone first to keep a snapshot across
// pushes. Nil until the first Push.
func (r *Ring) Aggregate() *Table { return r.agg }

// Len reports the number of live windows.
func (r *Ring) Len() int { return len(r.windows) }

// N reports the total observations across live windows.
func (r *Ring) N() int {
	if r.agg == nil {
		return 0
	}
	return r.agg.N()
}

// Window returns the i-th oldest live window.
func (r *Ring) Window(i int) *Table { return r.windows[i] }
