package incr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Binary codec for tables, for shipping sufficient statistics between
// shards or checkpointing a ring. The format is deterministic — cells
// serialize in sorted key order — so equal tables marshal to equal
// bytes.
//
//	"GRIT1" | numVars uvarint | cards... uvarint |
//	numCells uvarint | per cell: 4*numVars key bytes, count uvarint
//
// The total observation count is recomputed on decode rather than
// stored, keeping the invariant n == Σ counts unforgeable.
const codecMagic = "GRIT1"

// MarshalBinary serializes the table.
func (t *Table) MarshalBinary() ([]byte, error) {
	keys := make([]string, 0, len(t.cells))
	for k := range t.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := make([]byte, 0, len(codecMagic)+10*(len(t.cards)+2)+len(keys)*(4*len(t.cards)+5))
	buf = append(buf, codecMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(t.cards)))
	for _, c := range t.cards {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = append(buf, k...)
		buf = binary.AppendUvarint(buf, uint64(t.cells[k]))
	}
	return buf, nil
}

// UnmarshalBinary replaces t's contents with the serialized table.
func (t *Table) UnmarshalBinary(data []byte) error {
	if len(data) < len(codecMagic) || string(data[:len(codecMagic)]) != codecMagic {
		return errors.New("incr: bad table magic")
	}
	data = data[len(codecMagic):]
	nv, n := binary.Uvarint(data)
	if n <= 0 || nv > 1<<20 {
		return errors.New("incr: bad variable count")
	}
	data = data[n:]
	cards := make([]int, nv)
	for i := range cards {
		c, n := binary.Uvarint(data)
		if n <= 0 || c > 1<<31 {
			return fmt.Errorf("incr: bad cardinality for variable %d", i)
		}
		cards[i] = int(c)
		data = data[n:]
	}
	nc, n := binary.Uvarint(data)
	if n <= 0 {
		return errors.New("incr: bad cell count")
	}
	data = data[n:]
	keyLen := int(nv) * 4
	if uint64(len(data)) < nc*uint64(keyLen+1) {
		return errors.New("incr: truncated cells")
	}
	cells := make(map[string]int64, nc)
	var total int64
	for i := uint64(0); i < nc; i++ {
		if len(data) < keyLen {
			return errors.New("incr: truncated cell key")
		}
		key := string(data[:keyLen])
		data = data[keyLen:]
		cnt, n := binary.Uvarint(data)
		if n <= 0 || cnt == 0 || cnt > 1<<62 {
			return errors.New("incr: bad cell count value")
		}
		data = data[n:]
		if _, dup := cells[key]; dup {
			return errors.New("incr: duplicate cell key")
		}
		// Codes beyond the declared cardinality would break the CI tests'
		// table bounds; only the missing sentinel may sit outside [0, card).
		for v := 0; v < int(nv); v++ {
			if c := codeAt(key, v); c < 0 && c != -1 || c >= 0 && int(c) >= cards[v] {
				return fmt.Errorf("incr: cell code %d out of range for variable %d", c, v)
			}
		}
		cells[key] = int64(cnt)
		total += int64(cnt)
		if total < 0 {
			return errors.New("incr: total count overflow")
		}
	}
	if len(data) != 0 {
		return errors.New("incr: trailing bytes")
	}
	t.cards = cards
	t.cells = cells
	t.n = total
	return nil
}
