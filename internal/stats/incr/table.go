// Package incr makes PC's sufficient statistics first-class mergeable
// values. A Table is a sparse joint contingency table over all variables
// of a dataset: adding a row, merging two tables, and subtracting one
// table from another are all integer cell-count arithmetic, which
// commutes and associates exactly — so any partition of the rows yields
// bit-identical statistics to a single batch pass. That algebra is what
// the windowed/sliding view (Ring), drift detection, and the scale-out
// story (partition rows → merge tables → synthesize once) are built on.
//
// A Table implements stats.CITester by marginalizing its cells into the
// same per-stratum cx×cy tables that stats.GTest builds from raw columns
// and finishing through the shared stats.TestFromStrata tail, so PC run
// over merged tables produces the same CPDAG as a from-scratch run over
// the equivalent concatenated rows.
package incr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/guardrail-db/guardrail/internal/stats"
)

// Table is a sparse joint contingency table: a multiset of full row
// assignments with integer multiplicities. The zero value is not usable;
// construct with New.
type Table struct {
	// cards holds the declared cardinality of each variable. Cell keys do
	// not depend on cards, so tables over the same variables but grown
	// dictionaries still merge; Merge takes the elementwise max.
	cards []int
	n     int64
	cells map[string]int64 // packed row codes -> count, never <= 0
}

// New builds an empty table over variables with the given cardinalities.
func New(cards []int) *Table {
	return &Table{
		cards: append([]int(nil), cards...),
		cells: map[string]int64{},
	}
}

// CardsOf reads the declared cardinalities from any CI tester.
func CardsOf(t stats.CITester) []int {
	cards := make([]int, t.NumVars())
	for i := range cards {
		cards[i] = t.Card(i)
	}
	return cards
}

// FromData accumulates every row of d into a fresh table.
func FromData(d stats.Data) *Table {
	return FromRows(d, 0, d.N())
}

// FromRows accumulates rows [lo, hi) of d into a fresh table, declared
// with d's current cardinalities. This is how per-window tables are built
// from a growing relation: each window snapshot carries the dictionary
// cardinalities as of its creation, and merging windows takes the max,
// so the aggregate over the newest windows matches the live dictionary.
func FromRows(d stats.Data, lo, hi int) *Table {
	nv := d.NumVars()
	cards := make([]int, nv)
	cols := make([][]int32, nv)
	for i := 0; i < nv; i++ {
		cards[i] = d.Card(i)
		cols[i] = d.Codes(i)
	}
	t := New(cards)
	row := make([]int32, nv)
	for r := lo; r < hi; r++ {
		for i := 0; i < nv; i++ {
			row[i] = cols[i][r]
		}
		t.Add(row)
	}
	return t
}

// NumVars reports the number of variables.
func (t *Table) NumVars() int { return len(t.cards) }

// N reports the total observation count behind the table.
func (t *Table) N() int { return int(t.n) }

// Card reports the declared cardinality of variable i.
func (t *Table) Card(i int) int { return t.cards[i] }

// Cells reports the number of distinct row assignments with mass.
func (t *Table) Cells() int { return len(t.cells) }

// keyOf packs a full row assignment into a card-independent cell key:
// four little-endian bytes per code. A fixed-width binary key (rather
// than a mixed-radix integer) cannot overflow however many variables or
// categories the dataset has, and sorts variables-major for the
// deterministic serialization order.
func keyOf(row []int32) string {
	buf := make([]byte, 4*len(row))
	for i, c := range row {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(c))
	}
	return string(buf)
}

// codeAt unpacks variable i's code from a cell key.
func codeAt(key string, i int) int32 {
	return int32(binary.LittleEndian.Uint32([]byte(key[4*i : 4*i+4])))
}

// Add accumulates one row assignment (codes per variable, -1 for
// missing). Codes beyond the declared cardinality grow it, so a table
// stays valid while the underlying dictionary interns new values.
func (t *Table) Add(row []int32) { t.AddN(row, 1) }

// AddN accumulates a row assignment with multiplicity k (k > 0).
func (t *Table) AddN(row []int32, k int64) {
	if len(row) != len(t.cards) {
		panic(fmt.Sprintf("incr: AddN row width %d, table has %d vars", len(row), len(t.cards)))
	}
	if k <= 0 {
		panic("incr: AddN with non-positive multiplicity")
	}
	for i, c := range row {
		if int(c) >= t.cards[i] {
			t.cards[i] = int(c) + 1
		}
	}
	t.cells[keyOf(row)] += k
	t.n += k
}

// Merge adds every cell of o into t. Tables must agree on variable
// count; cardinalities take the elementwise max. o is unchanged.
func (t *Table) Merge(o *Table) error {
	if len(o.cards) != len(t.cards) {
		return fmt.Errorf("incr: merge %d vars into %d", len(o.cards), len(t.cards))
	}
	for i, c := range o.cards {
		if c > t.cards[i] {
			t.cards[i] = c
		}
	}
	for k, v := range o.cells {
		t.cells[k] += v
	}
	t.n += o.n
	return nil
}

// Subtract removes every cell of o from t — the inverse of Merge, used
// to expire a window from a sliding aggregate. It fails (leaving t
// partially modified only in never-observable ways: the check runs
// before any mutation) when o has mass t does not, which means o was
// never merged in. Cardinalities are not shrunk: a dictionary never
// forgets codes, so neither does the table.
func (t *Table) Subtract(o *Table) error {
	if len(o.cards) != len(t.cards) {
		return fmt.Errorf("incr: subtract %d vars from %d", len(o.cards), len(t.cards))
	}
	for k, v := range o.cells {
		if t.cells[k] < v {
			return errors.New("incr: subtracting a table that was never merged (cell underflow)")
		}
	}
	for k, v := range o.cells {
		if rest := t.cells[k] - v; rest == 0 {
			delete(t.cells, k)
		} else {
			t.cells[k] = rest
		}
	}
	t.n -= o.n
	return nil
}

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	c := &Table{
		cards: append([]int(nil), t.cards...),
		n:     t.n,
		cells: make(map[string]int64, len(t.cells)),
	}
	for k, v := range t.cells {
		c.cells[k] = v
	}
	return c
}

// Equal reports whether two tables carry identical statistics: same
// variable count, cardinalities, and cell masses.
func (t *Table) Equal(o *Table) bool {
	if len(t.cards) != len(o.cards) || t.n != o.n || len(t.cells) != len(o.cells) {
		return false
	}
	for i, c := range t.cards {
		if o.cards[i] != c {
			return false
		}
	}
	for k, v := range t.cells {
		if o.cells[k] != v {
			return false
		}
	}
	return true
}

// Marginal returns variable i's category counts — card+1 slots, the
// final one holding the missing-value mass, mirroring the extra slot the
// CI tests reserve. Drift detection compares these between baseline and
// window.
func (t *Table) Marginal(i int) []int64 {
	card := t.cards[i]
	out := make([]int64, card+1)
	for k, v := range t.cells {
		out[stats.CatOf(codeAt(k, i), card)] += v
	}
	return out
}

// Test computes the G² independence test of x and y given z by
// marginalizing the table into per-stratum contingency tables and
// finishing through stats.TestFromStrata — the exact tail stats.GTest
// uses, so the result is bit-identical to a from-scratch pass over rows
// carrying the same joint counts.
func (t *Table) Test(x, y int, z []int) (stats.TestResult, error) {
	nv := len(t.cards)
	if x == y {
		return stats.TestResult{}, errors.New("incr: Test with x == y")
	}
	if x < 0 || x >= nv || y < 0 || y >= nv {
		return stats.TestResult{}, fmt.Errorf("incr: variable out of range (%d, %d of %d)", x, y, nv)
	}
	for _, zi := range z {
		if zi == x || zi == y {
			return stats.TestResult{}, fmt.Errorf("incr: conditioning set contains tested variable %d", zi)
		}
		if zi < 0 || zi >= nv {
			return stats.TestResult{}, fmt.Errorf("incr: conditioning variable %d out of range", zi)
		}
	}
	cx := t.cards[x] + 1
	cy := t.cards[y] + 1
	radix := make([]int64, len(z))
	for i, zi := range z {
		radix[i] = int64(t.cards[zi] + 1)
	}
	// Integer accumulation commutes, so ranging over the cell map in
	// arbitrary order still yields exactly the strata a row scan builds.
	strata := map[int64][]int32{}
	for key, cnt := range t.cells {
		var sk int64
		for i, zi := range z {
			sk = sk*radix[i] + int64(stats.CatOf(codeAt(key, zi), int(radix[i])-1))
		}
		tab := strata[sk]
		if tab == nil {
			tab = make([]int32, cx*cy)
			strata[sk] = tab
		}
		idx := stats.CatOf(codeAt(key, x), cx-1)*cy + stats.CatOf(codeAt(key, y), cy-1)
		if int64(tab[idx])+cnt > math.MaxInt32 {
			return stats.TestResult{}, errors.New("incr: cell count overflows the test's int32 tables")
		}
		tab[idx] += int32(cnt)
	}
	return stats.TestFromStrata(strata, int(t.n), cx, cy)
}

var _ stats.CITester = (*Table)(nil)

// Slice views rows [lo, hi) of d as a stats.Data, sharing d's columns
// and cardinalities. It is the from-scratch counterpart of a windowed
// table built with FromRows over the same range — tests pin that the two
// agree bit-for-bit.
func Slice(d stats.Data, lo, hi int) stats.Data {
	return sliceData{d: d, lo: lo, hi: hi}
}

type sliceData struct {
	d      stats.Data
	lo, hi int
}

func (s sliceData) NumVars() int        { return s.d.NumVars() }
func (s sliceData) N() int              { return s.hi - s.lo }
func (s sliceData) Card(i int) int      { return s.d.Card(i) }
func (s sliceData) Codes(i int) []int32 { return s.d.Codes(i)[s.lo:s.hi] }
